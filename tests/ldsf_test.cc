#include "plan/ldsf.h"

#include <gtest/gtest.h>

#include <numeric>

#include "plan/descendants.h"
#include "tests/test_util.h"

namespace csce {
namespace {

std::vector<VertexId> IdentityOrder(uint32_t n) {
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

bool IsTopologicalOrder(const DependencyDag& dag,
                        const std::vector<VertexId>& order) {
  std::vector<uint32_t> pos(dag.NumVertices(), 0);
  for (uint32_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (VertexId u = 0; u < dag.NumVertices(); ++u) {
    for (VertexId c : dag.Children(u)) {
      if (pos[u] >= pos[c]) return false;
    }
  }
  return true;
}

TEST(LdsfTest, ProducesTopologicalOrder) {
  Rng rng(23);
  for (int i = 0; i < 15; ++i) {
    Graph p = testing::RandomGraph(rng, 10, 0.3, 3, 1, i % 2 == 0);
    DependencyDag dag = DependencyDag::Build(
        p, IdentityOrder(p.NumVertices()), MatchVariant::kEdgeInduced,
        nullptr);
    auto sizes = ComputeDescendantSizes(dag);
    auto order = LargestDescendantFirstOrder(dag, p, nullptr, sizes);
    ASSERT_EQ(order.size(), p.NumVertices());
    EXPECT_TRUE(IsTopologicalOrder(dag, order));
  }
}

TEST(LdsfTest, PrefersLargerDescendantSize) {
  // Dag: 0 -> {1, 2}; 1 -> {3, 4}; 2 has no children. After 0, vertex 1
  // (descendant size 2) must precede vertex 2 (size 0).
  Graph p = testing::MakeGraph(
      false, {0, 0, 0, 0, 0},
      {{0, 1, 0}, {0, 2, 0}, {1, 3, 0}, {1, 4, 0}});
  DependencyDag dag = DependencyDag::Build(p, IdentityOrder(5),
                                           MatchVariant::kEdgeInduced,
                                           nullptr);
  auto sizes = ComputeDescendantSizes(dag);
  auto order = LargestDescendantFirstOrder(dag, p, nullptr, sizes);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
}

TEST(LdsfTest, LabelFrequencyBreaksFinalTies) {
  // Star with two leaves of different labels; equal descendant sizes
  // and no earlier-cluster difference -> rarer label goes first.
  Graph p = testing::MakeGraph(false, {0, 1, 2}, {{0, 1, 0}, {0, 2, 0}});
  Graph data = testing::MakeGraph(
      false, {0, 1, 1, 1, 2}, {{0, 1, 0}, {0, 2, 0}, {0, 3, 0}, {0, 4, 0}});
  Ccsr gc = Ccsr::Build(data);
  DependencyDag dag = DependencyDag::Build(p, IdentityOrder(3),
                                           MatchVariant::kEdgeInduced, &gc);
  auto sizes = ComputeDescendantSizes(dag);
  auto order = LargestDescendantFirstOrder(dag, p, &gc, sizes);
  ASSERT_EQ(order[0], 0u);
  // Label 2 occurs once in the data, label 1 three times; the (0,2)
  // cluster is also smaller, so vertex 2 precedes vertex 1.
  EXPECT_EQ(order[1], 2u);
}

TEST(LdsfTest, DeterministicOutput) {
  Rng rng(29);
  Graph p = testing::RandomGraph(rng, 9, 0.4, 2, 1, false);
  DependencyDag dag = DependencyDag::Build(
      p, IdentityOrder(9), MatchVariant::kEdgeInduced, nullptr);
  auto sizes = ComputeDescendantSizes(dag);
  auto a = LargestDescendantFirstOrder(dag, p, nullptr, sizes);
  auto b = LargestDescendantFirstOrder(dag, p, nullptr, sizes);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace csce
