// ShardPlan contract tests: every vertex has exactly one owning shard,
// every edge is materialized in exactly the shards owning an endpoint,
// boundary replicas are flagged exactly, owned vertices keep complete
// adjacency (the property the sharded executor's routing relies on),
// and the whole partition is deterministic and round-trips through its
// binary format.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

#include "gen/datasets.h"
#include "shard/shard_plan.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace csce {
namespace shard {
namespace {

std::vector<Graph> TestGraphs() {
  std::vector<Graph> graphs;
  graphs.push_back(datasets::Yeast());
  Rng rng(42);
  graphs.push_back(csce::testing::RandomGraph(rng, 200, 0.05, 5, 2, false));
  graphs.push_back(csce::testing::RandomGraph(rng, 150, 0.04, 4, 2, true));
  return graphs;
}

const uint32_t kShardCounts[] = {1, 2, 4};
const PartitionStrategy kStrategies[] = {PartitionStrategy::kHash,
                                         PartitionStrategy::kLabelAware};

TEST(ShardPlanTest, EveryVertexOwnedByExactlyOneShard) {
  for (const Graph& g : TestGraphs()) {
    for (uint32_t shards : kShardCounts) {
      for (PartitionStrategy strategy : kStrategies) {
        ShardPlanOptions options{shards, strategy};
        ShardPlan plan = ShardPlan::Build(g, options);
        ASSERT_EQ(plan.NumVertices(), g.NumVertices());
        ASSERT_EQ(plan.num_shards(), shards);
        std::vector<uint64_t> counts(shards, 0);
        for (VertexId v = 0; v < g.NumVertices(); ++v) {
          ASSERT_LT(plan.Owner(v), shards);
          ++counts[plan.Owner(v)];
        }
        uint64_t total = 0;
        for (uint32_t s = 0; s < shards; ++s) {
          EXPECT_EQ(plan.OwnedCount(s), counts[s]);
          total += counts[s];
        }
        EXPECT_EQ(total, g.NumVertices());
      }
    }
  }
}

TEST(ShardPlanTest, DeterministicAcrossRepeatedBuilds) {
  for (const Graph& g : TestGraphs()) {
    for (uint32_t shards : kShardCounts) {
      for (PartitionStrategy strategy : kStrategies) {
        ShardPlanOptions options{shards, strategy};
        ShardPlan a = ShardPlan::Build(g, options);
        ShardPlan b = ShardPlan::Build(g, options);
        EXPECT_TRUE(a == b);
      }
    }
  }
}

TEST(ShardPlanTest, BoundaryReplicasFlaggedExactly) {
  for (const Graph& g : TestGraphs()) {
    for (uint32_t shards : kShardCounts) {
      ShardPlanOptions options{shards, PartitionStrategy::kLabelAware};
      ShardPlan plan = ShardPlan::Build(g, options);

      // Ground truth from the graph: shard s replicates exactly the
      // non-owned endpoints of edges it owns an endpoint of, and a
      // boundary edge is one whose endpoints live on different shards.
      std::vector<std::set<VertexId>> expected(shards);
      uint64_t boundary = 0;
      g.ForEachEdge([&](const Edge& e) {
        uint32_t so = plan.Owner(e.src);
        uint32_t to = plan.Owner(e.dst);
        if (so != to) {
          ++boundary;
          expected[so].insert(e.dst);
          expected[to].insert(e.src);
        }
      });
      EXPECT_EQ(plan.boundary_edges(), boundary);
      ASSERT_EQ(plan.replicas().size(), shards);
      for (uint32_t s = 0; s < shards; ++s) {
        const std::vector<VertexId>& got = plan.replicas()[s];
        EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
        std::vector<VertexId> want(expected[s].begin(), expected[s].end());
        EXPECT_EQ(got, want) << "shard " << s << " of " << shards;
        for (VertexId v : got) EXPECT_NE(plan.Owner(v), s);
      }
      if (shards == 1) {
        EXPECT_EQ(plan.boundary_edges(), 0u);
        EXPECT_TRUE(plan.replicas()[0].empty());
      }
    }
  }
}

TEST(ShardPlanTest, ExtractShardKeepsOwnedAdjacencyComplete) {
  for (const Graph& g : TestGraphs()) {
    for (uint32_t shards : kShardCounts) {
      ShardPlanOptions options{shards, PartitionStrategy::kHash};
      ShardPlan plan = ShardPlan::Build(g, options);
      uint64_t edges_across_shards = 0;
      for (uint32_t s = 0; s < shards; ++s) {
        Graph shard_graph;
        ASSERT_TRUE(plan.ExtractShard(g, s, &shard_graph).ok());
        // Global ids: every vertex present, labels unchanged.
        ASSERT_EQ(shard_graph.NumVertices(), g.NumVertices());
        ASSERT_EQ(shard_graph.directed(), g.directed());
        for (VertexId v = 0; v < g.NumVertices(); ++v) {
          EXPECT_EQ(shard_graph.VertexLabel(v), g.VertexLabel(v));
        }
        // Edge set == edges incident to an owned endpoint, exactly.
        uint64_t expected_edges = 0;
        g.ForEachEdge([&](const Edge& e) {
          bool incident =
              plan.Owner(e.src) == s || plan.Owner(e.dst) == s;
          if (incident) ++expected_edges;
          EXPECT_EQ(shard_graph.HasEdge(e.src, e.dst, e.elabel), incident);
        });
        EXPECT_EQ(shard_graph.NumEdges(), expected_edges);
        edges_across_shards += expected_edges;
        // 1-hop replication: owned vertices keep their full degrees.
        for (VertexId v = 0; v < g.NumVertices(); ++v) {
          if (plan.Owner(v) != s) continue;
          EXPECT_EQ(shard_graph.OutDegree(v), g.OutDegree(v));
          EXPECT_EQ(shard_graph.InDegree(v), g.InDegree(v));
        }
      }
      // Each edge lands once per endpoint-owning shard: interior edges
      // once, boundary edges twice.
      EXPECT_EQ(edges_across_shards, g.NumEdges() + plan.boundary_edges());
    }
  }
}

TEST(ShardPlanTest, SaveLoadRoundTrip) {
  Rng rng(7);
  Graph g = csce::testing::RandomGraph(rng, 120, 0.06, 3, 2, false);
  for (PartitionStrategy strategy : kStrategies) {
    ShardPlanOptions options{4, strategy};
    ShardPlan plan = ShardPlan::Build(g, options);
    std::ostringstream out;
    ASSERT_TRUE(plan.Save(out).ok());
    std::istringstream in(out.str());
    ShardPlan loaded;
    ASSERT_TRUE(ShardPlan::Load(in, &loaded).ok());
    EXPECT_TRUE(plan == loaded);
  }
}

TEST(ShardPlanTest, LoadRejectsCorruptedBytes) {
  Rng rng(7);
  Graph g = csce::testing::RandomGraph(rng, 60, 0.08, 3, 2, false);
  ShardPlan plan = ShardPlan::Build(g, ShardPlanOptions{2,
                                    PartitionStrategy::kHash});
  std::ostringstream out;
  ASSERT_TRUE(plan.Save(out).ok());
  std::string bytes = out.str();
  // Every truncation either fails or (never) succeeds silently wrong.
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::istringstream in(bytes.substr(0, len));
    ShardPlan loaded;
    EXPECT_FALSE(ShardPlan::Load(in, &loaded).ok()) << "len=" << len;
  }
  // Bad magic.
  std::string bad = bytes;
  bad[0] ^= 0xFF;
  std::istringstream in(bad);
  ShardPlan loaded;
  EXPECT_FALSE(ShardPlan::Load(in, &loaded).ok());
}

TEST(ShardPlanTest, PathHelpers) {
  EXPECT_EQ(ShardPlan::PlanPath("g.ccsr"), "g.ccsr.shardplan");
  EXPECT_EQ(ShardPlan::ShardCcsrPath("g.ccsr", 3), "g.ccsr.shard3");
}

}  // namespace
}  // namespace shard
}  // namespace csce
