#include "graph/components.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace csce {
namespace {

using testing::MakeGraph;

TEST(ComponentsTest, SingleComponent) {
  std::vector<uint32_t> comp;
  EXPECT_EQ(ConnectedComponents(testing::Cycle(5), &comp), 1u);
  for (uint32_t c : comp) EXPECT_EQ(c, 0u);
}

TEST(ComponentsTest, TwoComponents) {
  Graph g = MakeGraph(false, {0, 0, 0, 0, 0},
                      {{0, 1, 0}, {2, 3, 0}, {3, 4, 0}});
  std::vector<uint32_t> comp;
  EXPECT_EQ(ConnectedComponents(g, &comp), 2u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(ComponentsTest, IsolatedVerticesAreOwnComponents) {
  Graph g = MakeGraph(false, {0, 0, 0}, {{0, 1, 0}});
  std::vector<uint32_t> comp;
  EXPECT_EQ(ConnectedComponents(g, &comp), 2u);
}

TEST(ComponentsTest, DirectionIgnored) {
  Graph g = MakeGraph(true, {0, 0, 0}, {{1, 0, 0}, {1, 2, 0}});
  std::vector<uint32_t> comp;
  EXPECT_EQ(ConnectedComponents(g, &comp), 1u);
}

TEST(ComponentsTest, LargestComponentPicksBiggest) {
  Graph g = MakeGraph(false, {0, 0, 0, 0, 0, 0},
                      {{0, 1, 0}, {2, 3, 0}, {3, 4, 0}, {4, 5, 0}});
  std::vector<VertexId> largest = LargestComponent(g);
  std::vector<VertexId> expected = {2, 3, 4, 5};
  EXPECT_EQ(largest, expected);
}

TEST(ComponentsTest, EmptyGraph) {
  GraphBuilder b(false);
  Graph g;
  ASSERT_TRUE(b.Build(&g).ok());
  std::vector<uint32_t> comp;
  EXPECT_EQ(ConnectedComponents(g, &comp), 0u);
  EXPECT_TRUE(LargestComponent(g).empty());
}

}  // namespace
}  // namespace csce
