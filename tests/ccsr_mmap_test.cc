// Out-of-core differential crosscheck: a v2 artifact opened through
// MmapCcsr must be indistinguishable from the same index built in
// memory — identical deep validation, identical embeddings and
// deterministic ExecStats at 1 and 8 threads, with and without a
// memory cap — and structural damage (directory byte surgery,
// truncation, format confusion) must be rejected at Open() time.

#include "ccsr/ccsr_mmap.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "ccsr/ccsr.h"
#include "ccsr/ccsr_io.h"
#include "ccsr/ccsr_v2_format.h"
#include "engine/matcher.h"
#include "gen/datasets.h"
#include "gen/pattern_gen.h"
#include "tests/test_util.h"
#include "util/mutex.h"
#include "util/rng.h"

namespace csce {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CSCE_CHECK(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  CSCE_CHECK(out.good());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  CSCE_CHECK(out.good());
}

struct RunOutcome {
  uint64_t embeddings = 0;
  uint64_t search_nodes = 0;
  uint64_t candidate_sets_computed = 0;
  uint64_t candidate_sets_reused = 0;
  std::vector<std::vector<VertexId>> rows;  // sorted
};

RunOutcome RunMatch(const Ccsr& index, const Graph& pattern,
                    uint32_t threads) {
  CsceMatcher matcher(&index);
  MatchOptions options;
  options.num_threads = threads;
  std::vector<VertexId> flat;
  Mutex mu;
  MatchResult result;
  Status st = matcher.MatchWithCallback(
      pattern, options,
      [&](std::span<const VertexId> mapping) {
        MutexLock lock(mu);
        flat.insert(flat.end(), mapping.begin(), mapping.end());
        return true;
      },
      &result);
  CSCE_CHECK(st.ok());
  RunOutcome out;
  out.embeddings = result.embeddings;
  out.search_nodes = result.search_nodes;
  out.candidate_sets_computed = result.candidate_sets_computed;
  out.candidate_sets_reused = result.candidate_sets_reused;
  const uint32_t width = pattern.NumVertices();
  for (size_t off = 0; off + width <= flat.size(); off += width) {
    out.rows.emplace_back(flat.begin() + static_cast<ptrdiff_t>(off),
                          flat.begin() + static_cast<ptrdiff_t>(off + width));
  }
  std::sort(out.rows.begin(), out.rows.end());
  return out;
}

class CcsrMmapTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new Graph(datasets::Patent(18));
    index_ = new Ccsr(Ccsr::Build(*data_));
    // Per-process artifact name: under `ctest -j` every TEST of this
    // fixture runs as its own process, and a shared path would race
    // SetUpTestSuite's write against another process's teardown.
    path_ = new std::string(::testing::TempDir() + "/ccsr_mmap_test." +
                            std::to_string(::getpid()) + ".ccsr");
    CSCE_CHECK(SaveCcsrToFileV2(*index_, *path_).ok());
  }
  static void TearDownTestSuite() {
    std::remove(path_->c_str());
    delete path_;
    path_ = nullptr;
    delete index_;
    index_ = nullptr;
    delete data_;
    data_ = nullptr;
  }

  static Graph* data_;
  static Ccsr* index_;
  static std::string* path_;
};

Graph* CcsrMmapTest::data_ = nullptr;
Ccsr* CcsrMmapTest::index_ = nullptr;
std::string* CcsrMmapTest::path_ = nullptr;

TEST_F(CcsrMmapTest, MappedViewPassesDeepValidation) {
  std::unique_ptr<MmapCcsr> mapped;
  ASSERT_TRUE(MmapCcsr::Open(*path_, &mapped).ok());
  EXPECT_TRUE(mapped->ccsr().mapped());
  EXPECT_EQ(mapped->ccsr().NumVertices(), index_->NumVertices());
  EXPECT_EQ(mapped->ccsr().NumEdges(), index_->NumEdges());
  EXPECT_EQ(mapped->ccsr().NumClusters(), index_->NumClusters());
  Status deep = mapped->ccsr().Validate();
  EXPECT_TRUE(deep.ok()) << deep.ToString();
}

TEST_F(CcsrMmapTest, MatchesInMemoryAtOneAndEightThreads) {
  Rng rng(31);
  Graph pattern;
  ASSERT_TRUE(
      SamplePattern(*data_, 5, PatternDensity::kSparse, rng, &pattern).ok());
  std::unique_ptr<MmapCcsr> mapped;
  ASSERT_TRUE(MmapCcsr::Open(*path_, &mapped).ok());
  for (uint32_t threads : {1u, 8u}) {
    RunOutcome want = RunMatch(*index_, pattern, threads);
    RunOutcome got = RunMatch(mapped->ccsr(), pattern, threads);
    EXPECT_EQ(got.embeddings, want.embeddings) << "threads=" << threads;
    EXPECT_EQ(got.search_nodes, want.search_nodes) << "threads=" << threads;
    EXPECT_EQ(got.rows, want.rows) << "threads=" << threads;
    if (threads == 1) {
      // Serial ExecStats are fully deterministic; parallel candidate
      // reuse depends on morsel-to-thread assignment.
      EXPECT_EQ(got.candidate_sets_computed, want.candidate_sets_computed);
      EXPECT_EQ(got.candidate_sets_reused, want.candidate_sets_reused);
    }
  }
}

TEST_F(CcsrMmapTest, MemoryCapModeAgreesAndDrainsAdviseWindow) {
  Rng rng(47);
  Graph pattern;
  ASSERT_TRUE(
      SamplePattern(*data_, 5, PatternDensity::kSparse, rng, &pattern).ok());
  RunOutcome want = RunMatch(*index_, pattern, 1);
  MmapCcsr::Options opts;
  opts.memory_cap_bytes = 1u << 20;  // 1 MiB: forces FIFO eviction
  std::unique_ptr<MmapCcsr> mapped;
  ASSERT_TRUE(MmapCcsr::Open(*path_, opts, &mapped).ok());
  RunOutcome got = RunMatch(mapped->ccsr(), pattern, 1);
  EXPECT_EQ(got.embeddings, want.embeddings);
  EXPECT_EQ(got.rows, want.rows);
  // The matcher's AdviseDoneGuard must have closed the query window.
  EXPECT_EQ(mapped->AdvisedWindowBytes(), 0u);
}

TEST_F(CcsrMmapTest, MaterializingLoaderAgreesWithMapping) {
  // LoadCcsrFromFile on a v2 artifact deep-copies into owned storage;
  // the result must behave exactly like the original in-memory build.
  Ccsr materialized;
  ASSERT_TRUE(LoadCcsrFromFile(*path_, &materialized).ok());
  EXPECT_FALSE(materialized.mapped());
  EXPECT_TRUE(materialized.Validate().ok());
  Rng rng(59);
  Graph pattern;
  ASSERT_TRUE(
      SamplePattern(*data_, 4, PatternDensity::kDense, rng, &pattern).ok());
  RunOutcome want = RunMatch(*index_, pattern, 1);
  RunOutcome got = RunMatch(materialized, pattern, 1);
  EXPECT_EQ(got.embeddings, want.embeddings);
  EXPECT_EQ(got.rows, want.rows);
}

TEST_F(CcsrMmapTest, MappedViewRefusesMutationUntilOwned) {
  std::unique_ptr<MmapCcsr> mapped;
  ASSERT_TRUE(MmapCcsr::Open(*path_, &mapped).ok());
  Ccsr view = mapped->Release();
  EXPECT_EQ(view.InsertEdges({{0, 1, 0}}).code(), StatusCode::kNotSupported);
  view.EnsureOwnedStorage();
  EXPECT_FALSE(view.mapped());
  const uint64_t before = view.NumEdges();
  Status st = view.InsertEdges({{0, 1, 0}});
  EXPECT_TRUE(st.ok() || st.code() == StatusCode::kInvalidArgument)
      << st.ToString();
  if (st.ok()) EXPECT_GE(view.NumEdges(), before);
}

TEST_F(CcsrMmapTest, DirectoryByteSurgeryTripsCrc) {
  const std::string bytes = ReadFileBytes(*path_);
  V2Header header;
  ASSERT_GE(bytes.size(), sizeof(V2Header));
  std::memcpy(&header, bytes.data(), sizeof(V2Header));
  ASSERT_GT(header.directory.length, 0u);
  const std::string surgical = ::testing::TempDir() + "/ccsr_mmap_surgery";
  // Flip one byte in the middle of the cluster directory: the entry
  // stays structurally plausible, so only the CRC can catch it.
  std::string mutated = bytes;
  const size_t target = static_cast<size_t>(header.directory.offset +
                                            header.directory.length / 2);
  mutated[target] = static_cast<char>(mutated[target] ^ 0x01);
  WriteFileBytes(surgical, mutated);
  std::unique_ptr<MmapCcsr> mapped;
  Status st = MmapCcsr::Open(surgical, &mapped);
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_NE(st.ToString().find("directory"), std::string::npos)
      << st.ToString();
  // The materializing loader must refuse the same artifact — a
  // corrupted artifact never loads through any path.
  Ccsr out;
  EXPECT_EQ(LoadCcsrFromFile(surgical, &out).code(), StatusCode::kCorruption);
  std::remove(surgical.c_str());
}

TEST_F(CcsrMmapTest, TruncationRejectedAtOpen) {
  const std::string bytes = ReadFileBytes(*path_);
  const std::string chopped = ::testing::TempDir() + "/ccsr_mmap_truncated";
  for (size_t keep :
       {bytes.size() - 1, bytes.size() / 2, sizeof(V2Header), size_t{4}}) {
    WriteFileBytes(chopped, bytes.substr(0, keep));
    std::unique_ptr<MmapCcsr> mapped;
    Status st = MmapCcsr::Open(chopped, &mapped);
    EXPECT_FALSE(st.ok()) << "prefix of " << keep << " bytes accepted";
  }
  std::remove(chopped.c_str());
}

TEST_F(CcsrMmapTest, FormatConfusionNamesBothVersions) {
  // A v1 stream artifact handed to the mmap loader.
  Rng rng(61);
  Graph small = testing::RandomGraph(rng, 12, 0.3, 2, 1, false);
  Ccsr small_index = Ccsr::Build(small);
  const std::string v1_path = ::testing::TempDir() + "/ccsr_mmap_v1.ccsr";
  ASSERT_TRUE(SaveCcsrToFile(small_index, v1_path).ok());
  std::unique_ptr<MmapCcsr> mapped;
  Status st = MmapCcsr::Open(v1_path, &mapped);
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_NE(st.ToString().find("v1"), std::string::npos) << st.ToString();
  EXPECT_NE(st.ToString().find("v2"), std::string::npos) << st.ToString();
  std::remove(v1_path.c_str());

  // A v2 artifact handed to the v1 stream loader.
  std::ifstream in(*path_, std::ios::binary);
  Ccsr out;
  Status sst = LoadCcsrFromStream(in, &out);
  EXPECT_EQ(sst.code(), StatusCode::kCorruption);
  EXPECT_NE(sst.ToString().find("v2"), std::string::npos) << sst.ToString();

  // An unknown v2 version must name found vs expected.
  std::string bytes = ReadFileBytes(*path_);
  V2Header header;
  std::memcpy(&header, bytes.data(), sizeof(V2Header));
  header.version = kV2Version + 7;
  std::memcpy(bytes.data(), &header, sizeof(V2Header));
  const std::string vpath = ::testing::TempDir() + "/ccsr_mmap_badver";
  WriteFileBytes(vpath, bytes);
  Status vst = MmapCcsr::Open(vpath, &mapped);
  EXPECT_FALSE(vst.ok());
  EXPECT_NE(vst.ToString().find(std::to_string(kV2Version + 7)),
            std::string::npos)
      << vst.ToString();
  EXPECT_NE(vst.ToString().find(std::to_string(kV2Version)),
            std::string::npos)
      << vst.ToString();
  std::remove(vpath.c_str());
}

}  // namespace
}  // namespace csce
