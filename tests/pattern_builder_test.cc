#include "graph/pattern_builder.h"

#include <gtest/gtest.h>

#include "graph/isomorphism.h"
#include "tests/test_util.h"

namespace csce {
namespace {

TEST(PatternBuilderTest, NamedVerticesAndEdges) {
  Graph p;
  Status st = PatternBuilder(/*directed=*/false)
                  .Vertex("a", 1)
                  .Vertex("b", 2)
                  .Edge("a", "b", 5)
                  .Build(&p);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(p.NumVertices(), 2u);
  EXPECT_EQ(p.NumEdges(), 1u);
  EXPECT_EQ(p.VertexLabel(0), 1u);
  EXPECT_EQ(p.VertexLabel(1), 2u);
  EXPECT_TRUE(p.HasEdge(0, 1, 5));
}

TEST(PatternBuilderTest, EdgeCreatesVerticesLazily) {
  PatternBuilder b(/*directed=*/true);
  Graph p;
  ASSERT_TRUE(b.Edge("x", "y").Edge("y", "z").Build(&p).ok());
  EXPECT_EQ(p.NumVertices(), 3u);
  EXPECT_EQ(b.VertexIdOf("x"), 0u);
  EXPECT_EQ(b.VertexIdOf("z"), 2u);
  EXPECT_EQ(b.VertexIdOf("unknown"), kInvalidVertex);
  EXPECT_TRUE(p.HasEdge(0, 1));
  EXPECT_FALSE(p.HasEdge(1, 0));
}

TEST(PatternBuilderTest, LateVertexRelabels) {
  Graph p;
  ASSERT_TRUE(PatternBuilder(false)
                  .Edge("a", "b")   // both created with label 0
                  .Vertex("b", 7)   // relabel afterwards
                  .Build(&p)
                  .ok());
  EXPECT_EQ(p.VertexLabel(0), kNoLabel);
  EXPECT_EQ(p.VertexLabel(1), 7u);
}

TEST(PatternBuilderTest, SelfLoopRejected) {
  Graph p;
  EXPECT_EQ(PatternBuilder(false).Edge("a", "a").Build(&p).code(),
            StatusCode::kInvalidArgument);
}

TEST(PatternBuilderTest, EquivalentToGraphBuilder) {
  Graph via_names;
  ASSERT_TRUE(PatternBuilder(false)
                  .Vertex("u0", 1)
                  .Vertex("u1", 2)
                  .Vertex("u2", 3)
                  .Edge("u0", "u1")
                  .Edge("u1", "u2")
                  .Build(&via_names)
                  .ok());
  Graph via_ids =
      testing::MakeGraph(false, {1, 2, 3}, {{0, 1, 0}, {1, 2, 0}});
  EXPECT_TRUE(AreIsomorphic(via_names, via_ids));
}

}  // namespace
}  // namespace csce
