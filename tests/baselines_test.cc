#include <gtest/gtest.h>

#include "baselines/backtracking.h"
#include "baselines/graphpi_like.h"
#include "baselines/join.h"
#include "baselines/vf2.h"
#include "graph/isomorphism.h"
#include "tests/test_util.h"

namespace csce {
namespace {

TEST(BacktrackingTest, TrianglesInClique) {
  Graph data = testing::Clique(5);
  BacktrackingMatcher bt(&data);
  BaselineOptions options;
  BaselineResult result;
  ASSERT_TRUE(bt.Match(testing::Cycle(3), options, &result).ok());
  EXPECT_EQ(result.embeddings, 60u);
}

TEST(BacktrackingTest, FspPreservesCounts) {
  Rng rng(83);
  for (int i = 0; i < 8; ++i) {
    Graph data = testing::RandomGraph(rng, 16, 0.25, 2, 1, false);
    Graph pattern = testing::RandomGraph(rng, 5, 0.5, 2, 1, false);
    BacktrackingMatcher bt(&data);
    BaselineOptions plain;
    BaselineOptions fsp;
    fsp.use_fsp = true;
    BaselineResult a;
    BaselineResult b;
    ASSERT_TRUE(bt.Match(pattern, plain, &a).ok());
    ASSERT_TRUE(bt.Match(pattern, fsp, &b).ok());
    EXPECT_EQ(a.embeddings, b.embeddings) << "iteration " << i;
    EXPECT_LE(b.search_nodes, a.search_nodes + 1);  // FSP only prunes
  }
}

TEST(BacktrackingTest, FspPrunesHopelessSubtrees) {
  // A data graph where many partial embeddings die for a reason
  // independent of recent choices: star pattern needing a rare leaf.
  GraphBuilder b(false);
  VertexId hub = b.AddVertex(0);
  for (int i = 0; i < 30; ++i) b.AddEdge(hub, b.AddVertex(1));
  b.AddEdge(hub, b.AddVertex(2));
  Graph data;
  ASSERT_TRUE(b.Build(&data).ok());
  // Pattern: hub + 3 label-1 leaves + 2 label-2 leaves (impossible:
  // only one label-2 vertex exists).
  Graph pattern = testing::MakeGraph(
      false, {0, 1, 1, 1, 2, 2},
      {{0, 1, 0}, {0, 2, 0}, {0, 3, 0}, {0, 4, 0}, {0, 5, 0}});
  BacktrackingMatcher bt(&data);
  BaselineOptions plain;
  plain.use_nlf = false;  // let the search actually explore
  BaselineOptions fsp = plain;
  fsp.use_fsp = true;
  BaselineResult a;
  BaselineResult f;
  ASSERT_TRUE(bt.Match(pattern, plain, &a).ok());
  ASSERT_TRUE(bt.Match(pattern, fsp, &f).ok());
  EXPECT_EQ(a.embeddings, 0u);
  EXPECT_EQ(f.embeddings, 0u);
  EXPECT_LT(f.search_nodes, a.search_nodes);
}

TEST(BacktrackingTest, NlfTogglePreservesCounts) {
  Rng rng(89);
  Graph data = testing::RandomGraph(rng, 15, 0.3, 3, 1, false);
  Graph pattern = testing::RandomGraph(rng, 4, 0.6, 3, 1, false);
  BacktrackingMatcher bt(&data);
  BaselineOptions with;
  BaselineOptions without;
  without.use_nlf = false;
  BaselineResult a;
  BaselineResult b;
  ASSERT_TRUE(bt.Match(pattern, with, &a).ok());
  ASSERT_TRUE(bt.Match(pattern, without, &b).ok());
  EXPECT_EQ(a.embeddings, b.embeddings);
}

TEST(BacktrackingTest, MaxEmbeddingsAndTimeout) {
  Graph data = testing::Clique(10);
  BacktrackingMatcher bt(&data);
  BaselineOptions options;
  options.max_embeddings = 7;
  BaselineResult result;
  ASSERT_TRUE(bt.Match(testing::Cycle(3), options, &result).ok());
  EXPECT_EQ(result.embeddings, 7u);
  EXPECT_TRUE(result.limit_reached);
}

TEST(JoinTest, MatchesBruteForce) {
  Rng rng(91);
  Graph data = testing::RandomGraph(rng, 14, 0.3, 2, 2, true);
  Graph pattern = testing::RandomGraph(rng, 4, 0.5, 2, 2, true);
  JoinMatcher jm(&data);
  for (auto variant :
       {MatchVariant::kEdgeInduced, MatchVariant::kHomomorphic}) {
    BaselineOptions options;
    options.variant = variant;
    BaselineResult result;
    ASSERT_TRUE(jm.Match(pattern, options, &result).ok());
    EXPECT_EQ(result.embeddings,
              CountEmbeddingsBruteForce(data, pattern, variant));
  }
}

TEST(JoinTest, VertexInducedUnsupported) {
  Graph data = testing::Clique(4);
  JoinMatcher jm(&data);
  BaselineOptions options;
  options.variant = MatchVariant::kVertexInduced;
  BaselineResult result;
  EXPECT_EQ(jm.Match(testing::Path(3), options, &result).code(),
            StatusCode::kNotSupported);
}

TEST(Vf2Test, VertexInducedCounts) {
  Graph data = testing::Clique(5);
  Vf2Matcher vf(&data);
  BaselineOptions options;
  options.variant = MatchVariant::kVertexInduced;
  BaselineResult result;
  ASSERT_TRUE(vf.Match(testing::Cycle(3), options, &result).ok());
  EXPECT_EQ(result.embeddings, 60u);
  // A path is never induced in a clique.
  ASSERT_TRUE(vf.Match(testing::Path(3), options, &result).ok());
  EXPECT_EQ(result.embeddings, 0u);
}

TEST(Vf2Test, HomomorphicUnsupported) {
  Graph data = testing::Clique(4);
  Vf2Matcher vf(&data);
  BaselineOptions options;
  options.variant = MatchVariant::kHomomorphic;
  BaselineResult result;
  EXPECT_EQ(vf.Match(testing::Path(2), options, &result).code(),
            StatusCode::kNotSupported);
}

TEST(GraphPiLikeTest, CountsMatchPlainEnumeration) {
  Rng rng(97);
  Graph data = testing::RandomGraph(rng, 14, 0.3, 1, 1, false);
  GraphPiLikeMatcher gp(&data);
  BacktrackingMatcher bt(&data);
  for (const Graph& pattern :
       {testing::Cycle(4), testing::Star(3), testing::Clique(3)}) {
    BaselineOptions options;
    BaselineResult sym;
    BaselineResult plain;
    ASSERT_TRUE(gp.Match(pattern, options, &sym).ok());
    ASSERT_TRUE(bt.Match(pattern, options, &plain).ok());
    EXPECT_EQ(sym.embeddings, plain.embeddings);
  }
}

TEST(GraphPiLikeTest, OnlyEdgeInduced) {
  Graph data = testing::Clique(4);
  GraphPiLikeMatcher gp(&data);
  BaselineOptions options;
  options.variant = MatchVariant::kHomomorphic;
  BaselineResult result;
  EXPECT_EQ(gp.Match(testing::Path(2), options, &result).code(),
            StatusCode::kNotSupported);
}

TEST(BaselineTest, DirectednessMismatchRejected) {
  Graph data = testing::Clique(4);
  Graph directed_pattern =
      testing::MakeGraph(true, {0, 0}, {{0, 1, 0}});
  BacktrackingMatcher bt(&data);
  JoinMatcher jm(&data);
  Vf2Matcher vf(&data);
  BaselineOptions options;
  BaselineResult result;
  EXPECT_FALSE(bt.Match(directed_pattern, options, &result).ok());
  EXPECT_FALSE(jm.Match(directed_pattern, options, &result).ok());
  EXPECT_FALSE(vf.Match(directed_pattern, options, &result).ok());
}

}  // namespace
}  // namespace csce
