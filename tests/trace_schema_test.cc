// Schema validation of every machine-readable artifact the
// observability layer emits: Chrome trace JSON (well-formed, required
// event keys, spans properly nested per track), csce.metrics.v1 files,
// and csce.bench.v1 documents. Each artifact is serialized by the real
// writer and parsed back through the strict JsonParse — the same
// round-trip the CI bench-smoke job performs on the produced files.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "ccsr/ccsr.h"
#include "engine/matcher.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tests/test_util.h"

namespace csce {
namespace obs {
namespace {

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// A real enumeration with tracing on, from two threads, so the trace
// has multiple tracks and nested spans (match.query > engine.run).
JsonValue RecordedTraceDoc(TraceRecorder* recorder) {
  TraceRecorder::Install(recorder);
  Ccsr gc = Ccsr::Build(testing::Clique(6));
  CsceMatcher matcher(&gc);
  auto run = [&] {
    MatchOptions options;
    options.variant = MatchVariant::kEdgeInduced;
    MatchResult result;
    ASSERT_TRUE(matcher.Match(testing::Cycle(3), options, &result).ok());
  };
  std::thread other(run);
  run();
  other.join();
  TraceRecorder::Install(nullptr);
  return recorder->ToChromeJson();
}

TEST(TraceSchemaTest, ChromeJsonRoundTripsAndHasRequiredKeys) {
  TraceRecorder recorder;
  JsonValue doc = RecordedTraceDoc(&recorder);
  ASSERT_GT(recorder.NumEvents(), 0u);

  // Round-trip through the strict parser.
  JsonValue parsed;
  ASSERT_TRUE(JsonParse(doc.Dump(1), &parsed).ok());
  const JsonValue* events = parsed.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  size_t complete_events = 0;
  size_t metadata_events = 0;
  for (const JsonValue& event : events->items()) {
    ASSERT_TRUE(event.is_object());
    for (const char* key : {"name", "ph", "pid", "tid"}) {
      EXPECT_TRUE(event.Has(key)) << event.Dump();
    }
    const std::string& ph = event.Find("ph")->AsString();
    if (ph == "X") {
      ++complete_events;
      ASSERT_TRUE(event.Has("ts"));
      ASSERT_TRUE(event.Has("dur"));
      EXPECT_GE(event.Find("ts")->AsDouble(), 0.0);
      EXPECT_GE(event.Find("dur")->AsDouble(), 0.0);
    } else {
      ASSERT_EQ(ph, "M");
      ++metadata_events;
      EXPECT_EQ(event.Find("name")->AsString(), "thread_name");
    }
  }
  EXPECT_EQ(complete_events, recorder.NumEvents());
  // Two enumeration threads -> at least two named tracks.
  EXPECT_GE(metadata_events, 2u);
}

TEST(TraceSchemaTest, SpansAreProperlyNestedPerTrack) {
  TraceRecorder recorder;
  JsonValue doc = RecordedTraceDoc(&recorder);

  struct SpanInterval {
    int64_t tid;
    double begin;
    double end;
  };
  std::vector<SpanInterval> spans;
  for (const JsonValue& event : doc.Find("traceEvents")->items()) {
    if (event.Find("ph")->AsString() != "X") continue;
    double ts = event.Find("ts")->AsDouble();
    spans.push_back({event.Find("tid")->AsInt(), ts,
                     ts + event.Find("dur")->AsDouble()});
  }
  ASSERT_GT(spans.size(), 1u);
  // On one thread's track, any two spans are disjoint or nested —
  // a scope timer cannot partially overlap another.
  for (size_t i = 0; i < spans.size(); ++i) {
    for (size_t j = i + 1; j < spans.size(); ++j) {
      if (spans[i].tid != spans[j].tid) continue;
      const SpanInterval& a = spans[i];
      const SpanInterval& b = spans[j];
      bool disjoint = a.end <= b.begin || b.end <= a.begin;
      bool a_in_b = b.begin <= a.begin && a.end <= b.end;
      bool b_in_a = a.begin <= b.begin && b.end <= a.end;
      EXPECT_TRUE(disjoint || a_in_b || b_in_a)
          << "[" << a.begin << "," << a.end << ") vs [" << b.begin << ","
          << b.end << ") on tid " << a.tid;
    }
  }
}

TEST(TraceSchemaTest, WriteFileProducesParseableJson) {
  TraceRecorder recorder;
  TraceRecorder::Install(&recorder);
  { Span span("test.span"); }
  TraceRecorder::Install(nullptr);
  std::string path = ::testing::TempDir() + "/trace_schema_test.trace.json";
  ASSERT_TRUE(recorder.WriteFile(path).ok());
  JsonValue parsed;
  EXPECT_TRUE(JsonParse(ReadWholeFile(path), &parsed).ok());
  EXPECT_TRUE(parsed.Has("traceEvents"));
  std::remove(path.c_str());
}

TEST(MetricsSchemaTest, MetricsFileMatchesSchema) {
  MetricRegistry registry;
  registry.counter("test.counter").Add(3);
  registry.gauge("test.gauge").Set(1.5);
  registry.histogram("test.hist").Record(2.0);

  std::string path = ::testing::TempDir() + "/trace_schema_test.metrics.json";
  ASSERT_TRUE(WriteMetricsFile(registry, path).ok());
  JsonValue doc;
  ASSERT_TRUE(JsonParse(ReadWholeFile(path), &doc).ok());
  std::remove(path.c_str());

  ASSERT_TRUE(doc.Has("schema"));
  EXPECT_EQ(doc.Find("schema")->AsString(), "csce.metrics.v1");
  const JsonValue* metrics = doc.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  for (const char* section : {"counters", "gauges", "histograms"}) {
    ASSERT_TRUE(metrics->Has(section)) << section;
    EXPECT_TRUE(metrics->Find(section)->is_object());
  }
  EXPECT_EQ(metrics->Find("counters")->Find("test.counter")->AsUint(), 3u);
  const JsonValue* hist = metrics->Find("histograms")->Find("test.hist");
  ASSERT_NE(hist, nullptr);
  for (const char* key : {"count", "sum", "mean", "min", "max"}) {
    ASSERT_TRUE(hist->Has(key)) << key;
    EXPECT_GE(hist->Find(key)->AsDouble(), 0.0) << key;
  }
}

TEST(BenchSchemaTest, BenchDocMatchesEnvelope) {
  bench::BenchJson json("schema_test");
  json.Config("knob", 7);
  JsonValue row = JsonValue::Object();
  row.Set("pattern_size", 8u);
  row.Set("seconds", 0.25);
  json.AddRow(std::move(row));
  ASSERT_EQ(json.NumRows(), 1u);

  JsonValue parsed;
  ASSERT_TRUE(JsonParse(json.ToJson().Dump(1), &parsed).ok());
  ASSERT_TRUE(parsed.Has("schema"));
  EXPECT_EQ(parsed.Find("schema")->AsString(), "csce.bench.v1");
  EXPECT_EQ(parsed.Find("bench")->AsString(), "schema_test");
  ASSERT_TRUE(parsed.Has("quick"));
  ASSERT_TRUE(parsed.Find("config")->is_object());
  const JsonValue* rows = parsed.Find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_TRUE(rows->is_array());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(rows->items()[0].Find("pattern_size")->AsUint(), 8u);

  // Write to a temp dir and round-trip the file form too.
  std::string dir = ::testing::TempDir();
  ASSERT_EQ(setenv("CSCE_BENCH_JSON_DIR", dir.c_str(), 1), 0);
  ASSERT_TRUE(json.Write().ok());
  ASSERT_EQ(unsetenv("CSCE_BENCH_JSON_DIR"), 0);
  std::string path = dir + "/BENCH_schema_test.json";
  JsonValue from_file;
  EXPECT_TRUE(JsonParse(ReadWholeFile(path), &from_file).ok());
  EXPECT_EQ(from_file.Find("schema")->AsString(), "csce.bench.v1");
  std::remove(path.c_str());
}

TEST(BenchSchemaTest, WriteToggleDisablesOutput) {
  ASSERT_EQ(setenv("CSCE_BENCH_JSON", "0", 1), 0);
  ASSERT_EQ(setenv("CSCE_BENCH_JSON_DIR", ::testing::TempDir().c_str(), 1),
            0);
  {
    bench::BenchJson json("schema_toggle_test");
    ASSERT_TRUE(json.Write().ok());
  }
  ASSERT_EQ(unsetenv("CSCE_BENCH_JSON"), 0);
  std::string path =
      ::testing::TempDir() + "/BENCH_schema_toggle_test.json";
  std::ifstream in(path);
  EXPECT_FALSE(in.good()) << "file written despite CSCE_BENCH_JSON=0";
  ASSERT_EQ(unsetenv("CSCE_BENCH_JSON_DIR"), 0);
}

}  // namespace
}  // namespace obs
}  // namespace csce
