#include "ccsr/csr.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.h"

namespace csce {
namespace {

std::vector<Edge> SortedArcs(std::vector<Edge> arcs) {
  std::sort(arcs.begin(), arcs.end());
  return arcs;
}

TEST(CsrIndexTest, BasicNeighbors) {
  std::vector<Edge> arcs =
      SortedArcs({{0, 1, 0}, {0, 5, 0}, {3, 2, 0}, {3, 4, 0}});
  CsrIndex csr = CsrIndex::FromArcs(6, arcs);
  EXPECT_EQ(csr.NumArcs(), 4u);
  auto n0 = csr.Neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 5u);
  EXPECT_TRUE(csr.Neighbors(1).empty());
  EXPECT_EQ(csr.Neighbors(3).size(), 2u);
}

TEST(CsrIndexTest, HasArc) {
  CsrIndex csr = CsrIndex::FromArcs(4, SortedArcs({{0, 1, 0}, {0, 3, 0}}));
  EXPECT_TRUE(csr.HasArc(0, 1));
  EXPECT_TRUE(csr.HasArc(0, 3));
  EXPECT_FALSE(csr.HasArc(0, 2));
  EXPECT_FALSE(csr.HasArc(1, 0));
}

TEST(CsrIndexTest, NonEmptyVertices) {
  CsrIndex csr = CsrIndex::FromArcs(10, SortedArcs({{2, 0, 0}, {7, 1, 0}}));
  std::vector<VertexId> expected = {2, 7};
  EXPECT_EQ(csr.NonEmptyVertices(), expected);
}

TEST(CsrIndexTest, SparseLayoutForSmallClusters) {
  // 2 sources out of 10000 vertices: far below the density threshold.
  CsrIndex csr =
      CsrIndex::FromArcs(10000, SortedArcs({{5, 6, 0}, {9000, 3, 0}}));
  EXPECT_FALSE(csr.dense());
  EXPECT_EQ(csr.Neighbors(5).size(), 1u);
  EXPECT_EQ(csr.Neighbors(9000)[0], 3u);
  EXPECT_TRUE(csr.Neighbors(4).empty());
}

TEST(CsrIndexTest, DenseLayoutForBigClusters) {
  std::vector<Edge> arcs;
  for (VertexId v = 0; v < 100; ++v) arcs.push_back({v, (v + 1) % 100, 0});
  CsrIndex csr = CsrIndex::FromArcs(100, SortedArcs(arcs));
  EXPECT_TRUE(csr.dense());
  for (VertexId v = 0; v < 100; ++v) {
    ASSERT_EQ(csr.Neighbors(v).size(), 1u);
    EXPECT_EQ(csr.Neighbors(v)[0], (v + 1) % 100);
  }
}

class CsrLayoutAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsrLayoutAgreementTest, DenseAndSparseAgree) {
  Rng rng(GetParam());
  // Vertex count chosen so some instances are dense and some sparse.
  uint32_t n = 50 + static_cast<uint32_t>(rng.Uniform(5000));
  size_t m = 1 + rng.Uniform(200);
  std::set<std::pair<VertexId, VertexId>> arc_set;
  for (size_t i = 0; i < m; ++i) {
    VertexId a = static_cast<VertexId>(rng.Uniform(n));
    VertexId b = static_cast<VertexId>(rng.Uniform(n));
    if (a != b) arc_set.insert({a, b});
  }
  std::vector<Edge> arcs;
  for (auto [a, b] : arc_set) arcs.push_back({a, b, 0});
  CsrIndex csr = CsrIndex::FromArcs(n, arcs);
  EXPECT_EQ(csr.NumArcs(), arcs.size());
  // Every arc must be found; every probed non-arc must not.
  for (const Edge& e : arcs) EXPECT_TRUE(csr.HasArc(e.src, e.dst));
  for (int probe = 0; probe < 100; ++probe) {
    VertexId a = static_cast<VertexId>(rng.Uniform(n));
    VertexId b = static_cast<VertexId>(rng.Uniform(n));
    bool expected = arc_set.count({a, b}) > 0;
    EXPECT_EQ(csr.HasArc(a, b), expected);
  }
  // NonEmptyVertices == distinct sources.
  std::set<VertexId> sources;
  for (const Edge& e : arcs) sources.insert(e.src);
  std::vector<VertexId> expected_sources(sources.begin(), sources.end());
  EXPECT_EQ(csr.NonEmptyVertices(), expected_sources);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrLayoutAgreementTest,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace csce
