#include "graph/isomorphism.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace csce {
namespace {

using testing::Clique;
using testing::Cycle;
using testing::MakeGraph;
using testing::Path;
using testing::Star;

TEST(AutomorphismTest, KnownGroupSizes) {
  EXPECT_EQ(CountAutomorphisms(Path(2)), 2u);
  EXPECT_EQ(CountAutomorphisms(Path(3)), 2u);
  EXPECT_EQ(CountAutomorphisms(Cycle(3)), 6u);   // S3
  EXPECT_EQ(CountAutomorphisms(Cycle(4)), 8u);   // dihedral D4
  EXPECT_EQ(CountAutomorphisms(Cycle(5)), 10u);  // D5
  EXPECT_EQ(CountAutomorphisms(Clique(4)), 24u);
  EXPECT_EQ(CountAutomorphisms(Star(4)), 24u);   // leaves permute freely
}

TEST(AutomorphismTest, LabelsBreakSymmetry) {
  Graph labeled_path = MakeGraph(false, {1, 0, 2}, {{0, 1, 0}, {1, 2, 0}});
  EXPECT_EQ(CountAutomorphisms(labeled_path), 1u);
}

TEST(AutomorphismTest, EdgeLabelsBreakSymmetry) {
  Graph g = MakeGraph(false, {0, 0, 0}, {{0, 1, 1}, {1, 2, 2}});
  EXPECT_EQ(CountAutomorphisms(g), 1u);
}

TEST(AutomorphismTest, DirectionBreaksSymmetry) {
  Graph cycle3 = MakeGraph(true, {0, 0, 0}, {{0, 1, 0}, {1, 2, 0}, {2, 0, 0}});
  EXPECT_EQ(CountAutomorphisms(cycle3), 3u);  // rotations only
}

TEST(AutomorphismTest, IdentityAlwaysPresent) {
  Rng rng(5);
  Graph g = testing::RandomGraph(rng, 7, 0.4, 2, 1, false);
  auto autos = EnumerateAutomorphisms(g);
  ASSERT_GE(autos.size(), 1u);
  bool has_identity = false;
  for (const auto& f : autos) {
    bool id = true;
    for (VertexId v = 0; v < g.NumVertices(); ++v) id = id && f[v] == v;
    has_identity = has_identity || id;
  }
  EXPECT_TRUE(has_identity);
}

TEST(IsomorphismTest, DetectsIsomorphicRelabeling) {
  Graph a = MakeGraph(false, {1, 2, 3}, {{0, 1, 0}, {1, 2, 0}});
  Graph b = MakeGraph(false, {3, 2, 1}, {{2, 1, 0}, {1, 0, 0}});
  EXPECT_TRUE(AreIsomorphic(a, b));
}

TEST(IsomorphismTest, RejectsDifferentStructure) {
  EXPECT_FALSE(AreIsomorphic(Path(4), Star(3)));  // same size, diff degrees
  EXPECT_FALSE(AreIsomorphic(Path(3), Path(4)));
  EXPECT_FALSE(AreIsomorphic(Cycle(4), Path(4)));
}

TEST(IsomorphismTest, RespectsLimit) {
  auto all = EnumerateIsomorphisms(Clique(4), Clique(4));
  EXPECT_EQ(all.size(), 24u);
  auto limited = EnumerateIsomorphisms(Clique(4), Clique(4), 5);
  EXPECT_EQ(limited.size(), 5u);
}

TEST(BruteForceTest, TriangleInClique4) {
  // K4 contains 4 triangles, each matched by 3! = 6 mappings.
  EXPECT_EQ(CountEmbeddingsBruteForce(Clique(4), Cycle(3),
                                      MatchVariant::kEdgeInduced),
            24u);
  EXPECT_EQ(CountEmbeddingsBruteForce(Clique(4), Cycle(3),
                                      MatchVariant::kVertexInduced),
            24u);
}

TEST(BruteForceTest, EdgeInHomVsInjective) {
  Graph edge = Path(2);
  Graph triangle = Cycle(3);
  // Hom: any arc of the triangle (6 ordered pairs).
  EXPECT_EQ(
      CountEmbeddingsBruteForce(triangle, edge, MatchVariant::kHomomorphic),
      6u);
  EXPECT_EQ(
      CountEmbeddingsBruteForce(triangle, edge, MatchVariant::kEdgeInduced),
      6u);
}

TEST(BruteForceTest, VertexInducedExcludesExtraEdges) {
  // Path 0-1-2 inside a triangle: edge-induced yes, vertex-induced no
  // (the chord closes the triangle).
  Graph triangle = Cycle(3);
  Graph path3 = Path(3);
  EXPECT_EQ(
      CountEmbeddingsBruteForce(triangle, path3, MatchVariant::kEdgeInduced),
      6u);
  EXPECT_EQ(
      CountEmbeddingsBruteForce(triangle, path3, MatchVariant::kVertexInduced),
      0u);
}

TEST(BruteForceTest, HomomorphismFoldsVertices) {
  // A 2-path can fold both endpoints onto the same vertex of an edge.
  Graph edge = Path(2);
  Graph path3 = Path(3);
  EXPECT_EQ(CountEmbeddingsBruteForce(edge, path3, MatchVariant::kHomomorphic),
            2u);  // 0->1->0 and 1->0->1
  EXPECT_EQ(CountEmbeddingsBruteForce(edge, path3, MatchVariant::kEdgeInduced),
            0u);  // no injective image
}

TEST(BruteForceTest, DirectedEdgesRespectOrientation) {
  Graph arc = MakeGraph(true, {0, 0}, {{0, 1, 0}});
  Graph two_cycle = MakeGraph(true, {0, 0}, {{0, 1, 0}, {1, 0, 0}});
  EXPECT_EQ(CountEmbeddingsBruteForce(two_cycle, arc,
                                      MatchVariant::kEdgeInduced),
            2u);
  // Vertex-induced: the pattern pair has only one arc but the data pair
  // has both, so exact adjacency fails.
  EXPECT_EQ(CountEmbeddingsBruteForce(two_cycle, arc,
                                      MatchVariant::kVertexInduced),
            0u);
}

TEST(BruteForceTest, EdgeLabelsMustMatch) {
  Graph data = MakeGraph(false, {0, 0}, {{0, 1, 7}});
  Graph right = MakeGraph(false, {0, 0}, {{0, 1, 7}});
  Graph wrong = MakeGraph(false, {0, 0}, {{0, 1, 8}});
  EXPECT_EQ(
      CountEmbeddingsBruteForce(data, right, MatchVariant::kEdgeInduced), 2u);
  EXPECT_EQ(
      CountEmbeddingsBruteForce(data, wrong, MatchVariant::kEdgeInduced), 0u);
}

}  // namespace
}  // namespace csce
