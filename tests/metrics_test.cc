// The observability layer's load-bearing guarantee: metrics are pure
// observers. The registry must aggregate exactly (unit tests below),
// and the engine counters it exposes must equal the uninstrumented
// ExecStats — serially with exact golden values, and at 8 threads with
// the same totals (the deterministic-counter contract the trace/bench
// pipeline rests on). The multithreaded cases double as the TSan proof
// that thread-local sharding is race-free.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "ccsr/ccsr.h"
#include "engine/matcher.h"
#include "obs/trace.h"
#include "tests/test_util.h"

namespace csce {
namespace obs {
namespace {

TEST(MetricRegistryTest, CounterAddsAndSnapshots) {
  MetricRegistry registry;
  Counter c = registry.counter("test.counter");
  c.Increment();
  c.Add(41);
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.count("test.counter"), 1u);
  EXPECT_EQ(snap.counters["test.counter"], 42u);
}

TEST(MetricRegistryTest, RegistrationIsIdempotent) {
  // Two call sites registering the same name share one slot — the
  // mechanism the parallel executor uses to flush its probe into the
  // executor's counter.
  MetricRegistry registry;
  Counter a = registry.counter("shared");
  Counter b = registry.counter("shared");
  a.Add(2);
  b.Add(3);
  EXPECT_EQ(registry.Snapshot().counters["shared"], 5u);
}

TEST(MetricRegistryTest, GaugeSetAndSetMax) {
  MetricRegistry registry;
  Gauge g = registry.gauge("test.gauge");
  g.Set(7.5);
  EXPECT_DOUBLE_EQ(registry.Snapshot().gauges["test.gauge"], 7.5);
  g.SetMax(3.0);  // below current: no change
  EXPECT_DOUBLE_EQ(registry.Snapshot().gauges["test.gauge"], 7.5);
  g.SetMax(9.0);
  EXPECT_DOUBLE_EQ(registry.Snapshot().gauges["test.gauge"], 9.0);
}

TEST(MetricRegistryTest, HistogramAggregates) {
  MetricRegistry registry;
  Histogram h = registry.histogram("test.hist");
  h.Record(1.0);   // bucket 0: <= 1
  h.Record(3.0);   // bucket 2: (2, 4]
  h.Record(3.5);   // bucket 2
  h.Record(100.0); // bucket 7: (64, 128]
  HistogramData data = registry.Snapshot().histograms["test.hist"];
  EXPECT_EQ(data.count, 4u);
  EXPECT_DOUBLE_EQ(data.sum, 107.5);
  EXPECT_DOUBLE_EQ(data.Mean(), 107.5 / 4);
  EXPECT_DOUBLE_EQ(data.min, 1.0);
  EXPECT_DOUBLE_EQ(data.max, 100.0);
  EXPECT_EQ(data.buckets[0], 1u);
  EXPECT_EQ(data.buckets[2], 2u);
  EXPECT_EQ(data.buckets[7], 1u);
}

TEST(MetricRegistryTest, ResetKeepsRegistrations) {
  MetricRegistry registry;
  Counter c = registry.counter("test.counter");
  Histogram h = registry.histogram("test.hist");
  c.Add(5);
  h.Record(2.0);
  registry.ResetForTesting();
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.count("test.counter"), 1u);
  EXPECT_EQ(snap.counters["test.counter"], 0u);
  EXPECT_EQ(snap.histograms["test.hist"].count, 0u);
  c.Add(1);  // handles stay valid across resets
  EXPECT_EQ(registry.Snapshot().counters["test.counter"], 1u);
}

TEST(MetricRegistryTest, ConcurrentCountersSumExactly) {
  MetricRegistry registry;
  Counter c = registry.counter("test.concurrent");
  Histogram h = registry.histogram("test.concurrent_hist");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 50'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        c.Increment();
        if (i % 1000 == 0) h.Record(static_cast<double>(i));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  // Shards are owned by the registry, so counts survive thread exit.
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters["test.concurrent"],
            static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(snap.histograms["test.concurrent_hist"].count,
            static_cast<uint64_t>(kThreads) * (kIncrements / 1000));
}

TEST(MetricRegistryTest, SnapshotDuringConcurrentWrites) {
  // Snapshotting must not block or race writers; totals are only
  // checked after the join, but TSan watches the overlap.
  MetricRegistry registry;
  Counter c = registry.counter("test.live");
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 20'000; ++i) c.Increment();
    });
  }
  for (int i = 0; i < 50; ++i) {
    MetricsSnapshot snap = registry.Snapshot();
    EXPECT_LE(snap.counters["test.live"], 80'000u);
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(registry.Snapshot().counters["test.live"], 80'000u);
}

// --- Deterministic engine counters ----------------------------------

uint64_t GlobalCounter(const MetricsSnapshot& snap, const std::string& name) {
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

TEST(EngineMetricsTest, SerialCountersMatchUninstrumentedStats) {
  MetricRegistry::Global().ResetForTesting();
  Ccsr gc = Ccsr::Build(testing::Clique(4));
  CsceMatcher matcher(&gc);
  MatchOptions options;
  options.variant = MatchVariant::kEdgeInduced;
  MatchResult result;
  ASSERT_TRUE(matcher.Match(testing::Cycle(3), options, &result).ok());
  // C(4,3) triangles * 3! mappings — a golden value, so a metrics bug
  // cannot hide behind "both sides drifted together".
  EXPECT_EQ(result.embeddings, 24u);

  MetricsSnapshot snap = MetricRegistry::Global().Snapshot();
  EXPECT_EQ(GlobalCounter(snap, "engine.runs"), 1u);
  EXPECT_EQ(GlobalCounter(snap, "engine.embeddings"), result.embeddings);
  EXPECT_EQ(GlobalCounter(snap, "engine.search_nodes"), result.search_nodes);
  EXPECT_EQ(GlobalCounter(snap, "engine.sce_recomputes"),
            result.candidate_sets_computed);
  EXPECT_EQ(GlobalCounter(snap, "engine.sce_reuses"),
            result.candidate_sets_reused);
  EXPECT_EQ(GlobalCounter(snap, "engine.morsels_claimed"), 0u);
  EXPECT_EQ(GlobalCounter(snap, "match.queries"), 1u);
  EXPECT_GT(snap.histograms["engine.candidate_set_size"].count, 0u);
}

TEST(EngineMetricsTest, ParallelCountersMatchSerial) {
  Ccsr gc = Ccsr::Build(testing::Clique(8));
  CsceMatcher matcher(&gc);
  Graph pattern = testing::Cycle(3);

  MetricRegistry::Global().ResetForTesting();
  MatchOptions serial;
  serial.variant = MatchVariant::kEdgeInduced;
  MatchResult serial_result;
  ASSERT_TRUE(matcher.Match(pattern, serial, &serial_result).ok());
  MetricsSnapshot serial_snap = MetricRegistry::Global().Snapshot();

  MetricRegistry::Global().ResetForTesting();
  MatchOptions parallel = serial;
  parallel.num_threads = 8;
  parallel.morsel_size = 2;
  MatchResult parallel_result;
  ASSERT_TRUE(matcher.Match(pattern, parallel, &parallel_result).ok());
  MetricsSnapshot parallel_snap = MetricRegistry::Global().Snapshot();

  // The work-defining counters are sharding-invariant...
  EXPECT_EQ(parallel_result.embeddings, serial_result.embeddings);
  EXPECT_EQ(GlobalCounter(parallel_snap, "engine.embeddings"),
            GlobalCounter(serial_snap, "engine.embeddings"));
  EXPECT_EQ(GlobalCounter(parallel_snap, "engine.search_nodes"),
            GlobalCounter(serial_snap, "engine.search_nodes"));
  EXPECT_EQ(GlobalCounter(parallel_snap, "engine.sce_recomputes") +
                GlobalCounter(parallel_snap, "engine.sce_reuses"),
            GlobalCounter(serial_snap, "engine.sce_recomputes") +
                GlobalCounter(serial_snap, "engine.sce_reuses"));
  // ...and the metrics mirror the run's own ExecStats exactly, even
  // when eight workers flush concurrently.
  EXPECT_EQ(GlobalCounter(parallel_snap, "engine.embeddings"),
            parallel_result.embeddings);
  EXPECT_EQ(GlobalCounter(parallel_snap, "engine.search_nodes"),
            parallel_result.search_nodes);
  EXPECT_EQ(GlobalCounter(parallel_snap, "engine.sce_recomputes"),
            parallel_result.candidate_sets_computed);
  EXPECT_EQ(GlobalCounter(parallel_snap, "engine.sce_reuses"),
            parallel_result.candidate_sets_reused);
  // 8 root candidates / morsel_size 2.
  EXPECT_EQ(GlobalCounter(parallel_snap, "engine.morsels_claimed"), 4u);
  EXPECT_EQ(parallel_result.morsels_claimed, 4u);
  EXPECT_EQ(GlobalCounter(parallel_snap, "runtime.parallel_runs"), 1u);
}

// --- Prune counter invariance ---------------------------------------
//
// prune.candidates_removed, prune.extensions_skipped and the
// prune.shrink_ratio_pct sample count are work-defining: they depend
// only on the (graph, pattern, plan), never on how the search tree is
// split over workers. (prune.aux_hits and engine.intersect_elements
// are deliberately NOT asserted — morsel splitting legitimately moves
// work between the aux-projection and per-morsel recomputation paths.)

constexpr Label kLA = 0, kLB = 1, kLC = 2, kLD = 3;

// N disjoint copies of the star-decoy gadget (see prune_test.cc): six
// B-decoys per copy that the lpi mask removes, with enough root
// candidates that an 8-thread run genuinely splits into morsels.
Graph PruneStarCopies(uint32_t copies) {
  std::vector<Label> vlabels;
  std::vector<Edge> edges;
  for (uint32_t k = 0; k < copies; ++k) {
    const VertexId base = static_cast<VertexId>(vlabels.size());
    // a, c, c', d, b_good
    vlabels.insert(vlabels.end(), {kLA, kLC, kLC, kLD, kLB});
    edges.push_back({base + 4, base + 0});
    edges.push_back({base + 4, base + 1});
    edges.push_back({base + 4, base + 3});
    for (uint32_t i = 0; i < 6; ++i) {
      const VertexId b = static_cast<VertexId>(vlabels.size());
      vlabels.push_back(kLB);
      edges.push_back({b, base + 0});
      edges.push_back({b, base + 1});
      edges.push_back({b, base + 2});
    }
    for (uint32_t i = 0; i < 10; ++i) {
      const VertexId b = static_cast<VertexId>(vlabels.size());
      vlabels.push_back(kLB);
      vlabels.push_back(kLD);
      edges.push_back({b, b + 1});
    }
  }
  return testing::MakeGraph(false, vlabels, edges);
}

// N disjoint copies of the triangle-plus-pendant gadget whose decoy
// subtrees are skipped by ree/aux (see prune_test.cc).
Graph PruneTriCopies(uint32_t copies) {
  std::vector<Label> vlabels;
  std::vector<Edge> edges;
  for (uint32_t k = 0; k < copies; ++k) {
    const VertexId base = static_cast<VertexId>(vlabels.size());
    // a, b_good, c_good, pendant d, cj, dj
    vlabels.insert(vlabels.end(), {kLA, kLB, kLC, kLD, kLC, kLD});
    edges.push_back({base + 0, base + 1});
    edges.push_back({base + 0, base + 2});
    edges.push_back({base + 1, base + 2});
    edges.push_back({base + 0, base + 3});
    for (uint32_t i = 0; i < 6; ++i) {
      const VertexId b = static_cast<VertexId>(vlabels.size());
      vlabels.push_back(kLB);
      edges.push_back({base + 0, b});
      edges.push_back({b, base + 4});
    }
    for (uint32_t i = 0; i < 6; ++i) {
      const VertexId c = static_cast<VertexId>(vlabels.size());
      vlabels.push_back(kLC);
      edges.push_back({base + 0, c});
      edges.push_back({c, base + 5});
    }
  }
  return testing::MakeGraph(false, vlabels, edges);
}

MetricsSnapshot RunPruneWorkload(uint32_t threads) {
  MetricRegistry::Global().ResetForTesting();
  MatchOptions options;
  options.variant = MatchVariant::kEdgeInduced;
  options.num_threads = threads;
  options.morsel_size = 1;
  options.plan.prune = AllPruneOptions();

  Ccsr star = Ccsr::Build(PruneStarCopies(8));
  Graph star_pattern = testing::MakeGraph(false, {kLA, kLB, kLC, kLD},
                                          {{0, 1}, {1, 2}, {1, 3}});
  MatchResult result;
  CSCE_CHECK(CsceMatcher(&star).Match(star_pattern, options, &result).ok());

  Ccsr tri = Ccsr::Build(PruneTriCopies(8));
  Graph tri_pattern = testing::MakeGraph(
      false, {kLA, kLB, kLC, kLD}, {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  CSCE_CHECK(CsceMatcher(&tri).Match(tri_pattern, options, &result).ok());

  return MetricRegistry::Global().Snapshot();
}

TEST(EngineMetricsTest, PruneCountersThreadCountInvariant) {
  MetricsSnapshot serial = RunPruneWorkload(1);
  // The workload actually prunes: 6 lpi removals and >=5 skipped
  // extensions per gadget copy.
  EXPECT_GE(GlobalCounter(serial, "prune.candidates_removed"), 8u * 6u);
  EXPECT_GE(GlobalCounter(serial, "prune.extensions_skipped"), 8u * 5u);
  EXPECT_GT(serial.histograms["prune.shrink_ratio_pct"].count, 0u);

  MetricsSnapshot parallel = RunPruneWorkload(8);
  EXPECT_EQ(GlobalCounter(parallel, "prune.candidates_removed"),
            GlobalCounter(serial, "prune.candidates_removed"));
  EXPECT_EQ(GlobalCounter(parallel, "prune.extensions_skipped"),
            GlobalCounter(serial, "prune.extensions_skipped"));
  EXPECT_EQ(parallel.histograms["prune.shrink_ratio_pct"].count,
            serial.histograms["prune.shrink_ratio_pct"].count);
}

TEST(EngineMetricsTest, RepeatedRunsAccumulate) {
  MetricRegistry::Global().ResetForTesting();
  Ccsr gc = Ccsr::Build(testing::Clique(4));
  CsceMatcher matcher(&gc);
  MatchOptions options;
  options.variant = MatchVariant::kEdgeInduced;
  for (int i = 0; i < 3; ++i) {
    MatchResult result;
    ASSERT_TRUE(matcher.Match(testing::Cycle(3), options, &result).ok());
  }
  MetricsSnapshot snap = MetricRegistry::Global().Snapshot();
  EXPECT_EQ(GlobalCounter(snap, "engine.runs"), 3u);
  EXPECT_EQ(GlobalCounter(snap, "engine.embeddings"), 72u);
  EXPECT_EQ(GlobalCounter(snap, "match.queries"), 3u);
}

}  // namespace
}  // namespace obs
}  // namespace csce
