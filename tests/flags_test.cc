#include "util/flags.h"

#include <gtest/gtest.h>

#include "engine/prune/prune.h"

namespace csce {
namespace {

FlagParser Parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"tool"};
  argv.insert(argv.end(), args.begin(), args.end());
  FlagParser parser;
  Status st = parser.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(st.ok());
  return parser;
}

TEST(FlagsTest, KeyValuePairs) {
  FlagParser flags = Parse({"--graph=data.txt", "--limit=5"});
  EXPECT_EQ(flags.GetString("graph", ""), "data.txt");
  EXPECT_EQ(flags.GetInt("limit", 0), 5);
  EXPECT_EQ(flags.GetString("missing", "fallback"), "fallback");
}

TEST(FlagsTest, BareSwitches) {
  FlagParser flags = Parse({"--verbose", "--quiet=false"});
  EXPECT_TRUE(flags.GetBool("verbose"));
  EXPECT_FALSE(flags.GetBool("quiet"));
  EXPECT_FALSE(flags.GetBool("absent"));
  EXPECT_TRUE(flags.GetBool("absent", true));
}

TEST(FlagsTest, BoolSpellings) {
  EXPECT_TRUE(Parse({"--x=true"}).GetBool("x"));
  EXPECT_TRUE(Parse({"--x=1"}).GetBool("x"));
  EXPECT_TRUE(Parse({"--x=yes"}).GetBool("x"));
  EXPECT_FALSE(Parse({"--x=0"}).GetBool("x"));
}

TEST(FlagsTest, Doubles) {
  FlagParser flags = Parse({"--ratio=0.25"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio", 0), 0.25);
  EXPECT_DOUBLE_EQ(flags.GetDouble("other", 1.5), 1.5);
}

TEST(FlagsTest, MalformedNumbersFallBack) {
  FlagParser flags = Parse({"--n=abc"});
  EXPECT_EQ(flags.GetInt("n", 42), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("n", 2.5), 2.5);
}

TEST(FlagsTest, PositionalArguments) {
  FlagParser flags = Parse({"a.txt", "--k=v", "b.txt"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "a.txt");
  EXPECT_EQ(flags.positional()[1], "b.txt");
}

TEST(FlagsTest, DoubleDashEndsFlags) {
  FlagParser flags = Parse({"--k=v", "--", "--not-a-flag"});
  EXPECT_EQ(flags.GetString("k", ""), "v");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "--not-a-flag");
}

TEST(FlagsTest, UnusedFlagsReported) {
  FlagParser flags = Parse({"--used=1", "--typo=2"});
  EXPECT_EQ(flags.GetInt("used", 0), 1);
  auto unused = flags.UnusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(FlagsTest, LastValueWins) {
  FlagParser flags = Parse({"--k=1", "--k=2"});
  EXPECT_EQ(flags.GetInt("k", 0), 2);
}

TEST(FlagsTest, EmptyFlagNameRejected) {
  std::vector<const char*> argv = {"tool", "--=v"};
  FlagParser parser;
  EXPECT_EQ(parser.Parse(2, argv.data()).code(),
            StatusCode::kInvalidArgument);
}

// --- --prune / CSCE_PRUNE pass-list parsing (csce_match, csce_serve) -

TEST(PruneListTest, IndividualPassesAndCombinations) {
  PruneOptions p;
  ASSERT_TRUE(ParsePruneList("aux", &p).ok());
  EXPECT_TRUE(p.aux);
  EXPECT_FALSE(p.ree);
  EXPECT_FALSE(p.lpi);

  p = PruneOptions{};
  ASSERT_TRUE(ParsePruneList("ree,lpi", &p).ok());
  EXPECT_FALSE(p.aux);
  EXPECT_TRUE(p.ree);
  EXPECT_TRUE(p.lpi);

  p = PruneOptions{};
  ASSERT_TRUE(ParsePruneList("aux,ree,lpi", &p).ok());
  EXPECT_EQ(p, AllPruneOptions());
}

TEST(PruneListTest, AllNoneAndEmptySpellings) {
  PruneOptions p;
  ASSERT_TRUE(ParsePruneList("all", &p).ok());
  EXPECT_EQ(p, AllPruneOptions());

  ASSERT_TRUE(ParsePruneList("none", &p).ok());
  EXPECT_FALSE(p.any());

  p = AllPruneOptions();
  ASSERT_TRUE(ParsePruneList("", &p).ok());
  EXPECT_FALSE(p.any());
}

TEST(PruneListTest, UnknownPassRejectedAndOutUntouched) {
  PruneOptions p;
  p.aux = true;
  Status st = ParsePruneList("aux,cemr", &p);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.ToString().find("cemr"), std::string::npos) << st.ToString();
  // Out-parameter untouched on error.
  EXPECT_TRUE(p.aux);
  EXPECT_FALSE(p.ree);
  EXPECT_FALSE(p.lpi);

  EXPECT_EQ(ParsePruneList("aux,,lpi", &p).code(),
            StatusCode::kInvalidArgument);
}

TEST(PruneListTest, RoundTripsThroughToString) {
  for (const char* spec : {"none", "aux", "ree", "lpi", "aux,ree", "aux,lpi",
                           "ree,lpi", "aux,ree,lpi"}) {
    PruneOptions p;
    ASSERT_TRUE(ParsePruneList(spec, &p).ok()) << spec;
    EXPECT_EQ(PruneOptionsToString(p), spec);
    PruneOptions q;
    ASSERT_TRUE(ParsePruneList(PruneOptionsToString(p), &q).ok()) << spec;
    EXPECT_EQ(p, q);
  }
}

}  // namespace
}  // namespace csce
