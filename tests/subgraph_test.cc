#include "graph/subgraph.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace csce {
namespace {

using testing::MakeGraph;

TEST(SubgraphTest, InducedKeepsAllInternalEdges) {
  Graph g = testing::Clique(5);
  Graph sub = InducedSubgraph(g, {0, 2, 4});
  EXPECT_EQ(sub.NumVertices(), 3u);
  EXPECT_EQ(sub.NumEdges(), 3u);  // triangle
}

TEST(SubgraphTest, InducedPreservesLabels) {
  Graph g = MakeGraph(false, {7, 8, 9}, {{0, 1, 3}, {1, 2, 4}});
  Graph sub = InducedSubgraph(g, {2, 1});
  EXPECT_EQ(sub.VertexLabel(0), 9u);
  EXPECT_EQ(sub.VertexLabel(1), 8u);
  EXPECT_TRUE(sub.HasEdge(0, 1, 4));
}

TEST(SubgraphTest, InducedDirectedKeepsDirections) {
  Graph g = MakeGraph(true, {0, 0, 0}, {{0, 1, 0}, {2, 1, 0}});
  Graph sub = InducedSubgraph(g, {0, 1});
  EXPECT_TRUE(sub.directed());
  EXPECT_TRUE(sub.HasEdge(0, 1));
  EXPECT_FALSE(sub.HasEdge(1, 0));
}

TEST(SubgraphTest, EdgeInducedCollectsEndpoints) {
  Graph g = testing::Clique(4);
  Graph sub = EdgeInducedSubgraph(g, {{0, 1, 0}, {2, 3, 0}});
  EXPECT_EQ(sub.NumVertices(), 4u);
  EXPECT_EQ(sub.NumEdges(), 2u);  // only the chosen edges survive
}

TEST(SubgraphTest, IsConnectedPositive) {
  EXPECT_TRUE(IsConnected(testing::Path(6)));
  EXPECT_TRUE(IsConnected(testing::Cycle(4)));
}

TEST(SubgraphTest, IsConnectedNegative) {
  Graph g = MakeGraph(false, {0, 0, 0, 0}, {{0, 1, 0}, {2, 3, 0}});
  EXPECT_FALSE(IsConnected(g));
}

TEST(SubgraphTest, IsConnectedIgnoresDirection) {
  Graph g = MakeGraph(true, {0, 0, 0}, {{1, 0, 0}, {1, 2, 0}});
  EXPECT_TRUE(IsConnected(g));
}

TEST(SubgraphTest, EmptyGraphIsConnected) {
  GraphBuilder b(false);
  Graph g;
  ASSERT_TRUE(b.Build(&g).ok());
  EXPECT_TRUE(IsConnected(g));
}

}  // namespace
}  // namespace csce
