#include "ccsr/ccsr_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "tests/test_util.h"

namespace csce {
namespace {

void ExpectCcsrEqual(const Ccsr& a, const Ccsr& b) {
  EXPECT_EQ(a.directed(), b.directed());
  EXPECT_EQ(a.NumVertices(), b.NumVertices());
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_TRUE(std::ranges::equal(a.vertex_labels(), b.vertex_labels()));
  ASSERT_EQ(a.NumClusters(), b.NumClusters());
  for (size_t i = 0; i < a.NumClusters(); ++i) {
    const CompressedCluster& ca = a.clusters()[i];
    const CompressedCluster& cb = b.clusters()[i];
    EXPECT_EQ(ca.id, cb.id);
    EXPECT_EQ(ca.num_edges, cb.num_edges);
    EXPECT_TRUE(std::ranges::equal(ca.out_rows.runs(), cb.out_rows.runs()));
    EXPECT_EQ(ca.out_cols, cb.out_cols);
    EXPECT_TRUE(std::ranges::equal(ca.in_rows.runs(), cb.in_rows.runs()));
    EXPECT_EQ(ca.in_cols, cb.in_cols);
  }
}

TEST(CcsrIoTest, RoundTripsUndirected) {
  Rng rng(31);
  Graph g = testing::RandomGraph(rng, 50, 0.15, 4, 2, false);
  Ccsr gc = Ccsr::Build(g);
  std::stringstream buffer;
  ASSERT_TRUE(SaveCcsrToStream(gc, buffer).ok());
  Ccsr back;
  ASSERT_TRUE(LoadCcsrFromStream(buffer, &back).ok());
  ExpectCcsrEqual(gc, back);
  // The loaded index must answer lookups identically.
  for (const CompressedCluster& c : gc.clusters()) {
    EXPECT_EQ(back.ClusterSize(c.id), c.num_edges);
  }
}

TEST(CcsrIoTest, RoundTripsDirected) {
  Rng rng(32);
  Graph g = testing::RandomGraph(rng, 50, 0.15, 4, 2, true);
  Ccsr gc = Ccsr::Build(g);
  std::stringstream buffer;
  ASSERT_TRUE(SaveCcsrToStream(gc, buffer).ok());
  Ccsr back;
  ASSERT_TRUE(LoadCcsrFromStream(buffer, &back).ok());
  ExpectCcsrEqual(gc, back);
}

TEST(CcsrIoTest, RoundTripsEmptyGraph) {
  GraphBuilder b(false);
  Graph g;
  ASSERT_TRUE(b.Build(&g).ok());
  Ccsr gc = Ccsr::Build(g);
  std::stringstream buffer;
  ASSERT_TRUE(SaveCcsrToStream(gc, buffer).ok());
  Ccsr back;
  ASSERT_TRUE(LoadCcsrFromStream(buffer, &back).ok());
  EXPECT_EQ(back.NumClusters(), 0u);
  EXPECT_EQ(back.NumVertices(), 0u);
}

TEST(CcsrIoTest, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "this is not a ccsr file at all";
  Ccsr back;
  EXPECT_EQ(LoadCcsrFromStream(buffer, &back).code(),
            StatusCode::kCorruption);
}

TEST(CcsrIoTest, RejectsTruncatedFile) {
  Rng rng(33);
  Graph g = testing::RandomGraph(rng, 30, 0.2, 3, 1, false);
  Ccsr gc = Ccsr::Build(g);
  std::stringstream buffer;
  ASSERT_TRUE(SaveCcsrToStream(gc, buffer).ok());
  std::string full = buffer.str();
  // Chop off the tail.
  std::stringstream truncated(full.substr(0, full.size() / 2));
  Ccsr back;
  EXPECT_EQ(LoadCcsrFromStream(truncated, &back).code(),
            StatusCode::kCorruption);
}

TEST(CcsrIoTest, FileRoundTrip) {
  Rng rng(34);
  Graph g = testing::RandomGraph(rng, 30, 0.2, 3, 1, true);
  Ccsr gc = Ccsr::Build(g);
  std::string path = ::testing::TempDir() + "/ccsr_io_test.ccsr";
  ASSERT_TRUE(SaveCcsrToFile(gc, path).ok());
  Ccsr back;
  ASSERT_TRUE(LoadCcsrFromFile(path, &back).ok());
  ExpectCcsrEqual(gc, back);
  EXPECT_EQ(LoadCcsrFromFile("/nonexistent/x.ccsr", &back).code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace csce
