#include "plan/nec.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace csce {
namespace {

using testing::MakeGraph;

TEST(NecTest, StarLeavesAreEquivalent) {
  Graph star = testing::Star(4);
  auto cls = ComputeNecClasses(star);
  EXPECT_NE(cls[0], cls[1]);
  EXPECT_EQ(cls[1], cls[2]);
  EXPECT_EQ(cls[2], cls[3]);
  EXPECT_EQ(cls[3], cls[4]);
}

TEST(NecTest, TriangleFullyEquivalent) {
  auto cls = ComputeNecClasses(testing::Cycle(3));
  EXPECT_EQ(cls[0], cls[1]);
  EXPECT_EQ(cls[1], cls[2]);
}

TEST(NecTest, SquareOppositeCornersEquivalent) {
  // 4-cycle: opposite corners share neighborhoods; adjacent ones do
  // not (their neighborhoods minus each other differ).
  auto cls = ComputeNecClasses(testing::Cycle(4));
  EXPECT_EQ(cls[0], cls[2]);
  EXPECT_EQ(cls[1], cls[3]);
  EXPECT_NE(cls[0], cls[1]);
}

TEST(NecTest, LabelsSplitClasses) {
  Graph star = MakeGraph(false, {0, 1, 1, 2}, {{0, 1, 0}, {0, 2, 0},
                                               {0, 3, 0}});
  auto cls = ComputeNecClasses(star);
  EXPECT_EQ(cls[1], cls[2]);
  EXPECT_NE(cls[1], cls[3]);
}

TEST(NecTest, EdgeLabelsSplitClasses) {
  Graph star = MakeGraph(false, {0, 1, 1}, {{0, 1, 5}, {0, 2, 6}});
  auto cls = ComputeNecClasses(star);
  EXPECT_NE(cls[1], cls[2]);
}

TEST(NecTest, DirectionSplitsClasses) {
  Graph g = MakeGraph(true, {0, 1, 1}, {{0, 1, 0}, {2, 0, 0}});
  auto cls = ComputeNecClasses(g);
  EXPECT_NE(cls[1], cls[2]);
}

TEST(NecTest, PathEndpointsEquivalent) {
  auto cls = ComputeNecClasses(testing::Path(3));
  EXPECT_EQ(cls[0], cls[2]);
  EXPECT_NE(cls[0], cls[1]);
}

TEST(NecTest, ClassIdsAreDense) {
  Rng rng(41);
  Graph g = testing::RandomGraph(rng, 8, 0.4, 2, 1, false);
  auto cls = ComputeNecClasses(g);
  uint32_t max_class = 0;
  for (uint32_t c : cls) max_class = std::max(max_class, c);
  std::vector<bool> seen(max_class + 1, false);
  for (uint32_t c : cls) seen[c] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace csce
