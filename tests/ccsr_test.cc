#include "ccsr/ccsr.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace csce {
namespace {

using testing::MakeGraph;
using testing::RandomGraph;

TEST(ClusterIdTest, UndirectedCanonicalizesLabels) {
  EXPECT_EQ(ClusterId::Undirected(3, 1, 0), ClusterId::Undirected(1, 3, 0));
  EXPECT_NE(ClusterId::Undirected(1, 3, 0), ClusterId::Undirected(1, 3, 1));
}

TEST(ClusterIdTest, DirectedKeepsOrientation) {
  EXPECT_NE(ClusterId::Directed(1, 2, 0), ClusterId::Directed(2, 1, 0));
}

TEST(ClusterIdTest, ToStringMentionsNull) {
  EXPECT_NE(ClusterId::Directed(1, 2, kNoLabel).ToString().find("NULL"),
            std::string::npos);
}

TEST(CcsrTest, UnlabeledGraphHasOneCluster) {
  Graph g = testing::Clique(4);
  Ccsr gc = Ccsr::Build(g);
  EXPECT_EQ(gc.NumClusters(), 1u);
  EXPECT_EQ(gc.clusters()[0].num_edges, 6u);
}

TEST(CcsrTest, ClustersPartitionEdges) {
  Rng rng(3);
  for (bool directed : {false, true}) {
    Graph g = RandomGraph(rng, 30, 0.2, 4, 2, directed);
    Ccsr gc = Ccsr::Build(g);
    uint64_t total = 0;
    for (const CompressedCluster& c : gc.clusters()) total += c.num_edges;
    // Every edge in exactly one cluster.
    EXPECT_EQ(total, g.NumEdges());
    // Each edge stored twice: both CSR directions (directed) or both
    // orientations in one CSR (undirected).
    uint64_t arcs = 0;
    for (const CompressedCluster& c : gc.clusters()) {
      arcs += c.out_cols.size() + c.in_cols.size();
    }
    EXPECT_EQ(arcs, 2 * g.NumEdges());
  }
}

TEST(CcsrTest, DirectedClusterHasBothDirections) {
  Graph g = MakeGraph(true, {1, 2}, {{0, 1, 5}});
  Ccsr gc = Ccsr::Build(g);
  const CompressedCluster* c = gc.Find(ClusterId::Directed(1, 2, 5));
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->num_edges, 1u);
  EXPECT_EQ(c->out_cols.size(), 1u);
  EXPECT_EQ(c->in_cols.size(), 1u);
  EXPECT_EQ(gc.Find(ClusterId::Directed(2, 1, 5)), nullptr);
}

TEST(CcsrTest, ClusterSizeLookupWithoutDecompression) {
  Graph g = MakeGraph(false, {1, 2, 2}, {{0, 1, 0}, {0, 2, 0}});
  Ccsr gc = Ccsr::Build(g);
  EXPECT_EQ(gc.ClusterSize(ClusterId::Undirected(1, 2, 0)), 2u);
  EXPECT_EQ(gc.ClusterSize(ClusterId::Undirected(2, 2, 0)), 0u);
}

TEST(CcsrTest, StarClustersFindAllLabelPairs) {
  Graph g = MakeGraph(true, {1, 2}, {{0, 1, 5}, {0, 1, 6}, {1, 0, 7}});
  Ccsr gc = Ccsr::Build(g);
  // Three clusters between labels {1,2}: two edge labels one way plus
  // one reversed.
  EXPECT_EQ(gc.StarClusters(1, 2).size(), 3u);
  EXPECT_EQ(gc.StarClusters(2, 1).size(), 3u);  // order-insensitive
  EXPECT_TRUE(gc.StarClusters(1, 9).empty());
}

TEST(CcsrTest, CarriesVertexLabels) {
  Graph g = MakeGraph(false, {4, 4, 9}, {{0, 2, 0}});
  Ccsr gc = Ccsr::Build(g);
  EXPECT_EQ(gc.NumVertices(), 3u);
  EXPECT_EQ(gc.VertexLabel(2), 9u);
  EXPECT_EQ(gc.LabelFrequency(4), 2u);
  EXPECT_EQ(gc.LabelFrequency(9), 1u);
}

TEST(CcsrTest, PaperFig4ClusterContents) {
  // The (A,B,NULL)-cluster of Fig. 4: v1 -> {v2, v6} and v4 -> {v5}.
  // A = label 1, B = label 2; ids: v1=0, v2=1, v4=2, v5=3, v6=4.
  Graph g = MakeGraph(true, {1, 2, 1, 2, 2},
                      {{0, 1, 0}, {0, 4, 0}, {2, 3, 0}});
  Ccsr gc = Ccsr::Build(g);
  QueryClusters qc;
  Graph pattern = MakeGraph(true, {1, 2}, {{0, 1, 0}});
  ASSERT_TRUE(
      ReadClusters(gc, pattern, MatchVariant::kEdgeInduced, &qc).ok());
  const ClusterView* view = qc.Find(ClusterId::Directed(1, 2, 0));
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->NumEdges(), 3u);
  auto out_v1 = view->Out(0);
  ASSERT_EQ(out_v1.size(), 2u);
  EXPECT_EQ(out_v1[0], 1u);
  EXPECT_EQ(out_v1[1], 4u);
  EXPECT_EQ(view->In(1).size(), 1u);
  EXPECT_EQ(view->In(1)[0], 0u);
  EXPECT_TRUE(view->HasArc(2, 3));
  EXPECT_FALSE(view->HasArc(3, 2));
}

TEST(ReadClustersTest, LoadsOnlyPatternEdgeClusters) {
  Rng rng(9);
  Graph g = RandomGraph(rng, 40, 0.2, 3, 1, false);
  Ccsr gc = Ccsr::Build(g);
  Graph pattern = MakeGraph(false, {0, 1}, {{0, 1, 0}});
  QueryClusters qc;
  ASSERT_TRUE(
      ReadClusters(gc, pattern, MatchVariant::kEdgeInduced, &qc).ok());
  EXPECT_LE(qc.NumViews(), 1u);
  if (qc.NumViews() == 1) {
    EXPECT_NE(qc.Find(ClusterId::Undirected(0, 1, 0)), nullptr);
  }
}

TEST(ReadClustersTest, VertexInducedLoadsNegationClusters) {
  Rng rng(10);
  Graph g = RandomGraph(rng, 40, 0.3, 3, 1, false);
  Ccsr gc = Ccsr::Build(g);
  // Path pattern: the endpoints are unconnected -> negation clusters.
  Graph pattern = MakeGraph(false, {0, 1, 2}, {{0, 1, 0}, {1, 2, 0}});
  QueryClusters edge_qc;
  QueryClusters vi_qc;
  ASSERT_TRUE(
      ReadClusters(gc, pattern, MatchVariant::kEdgeInduced, &edge_qc).ok());
  ASSERT_TRUE(
      ReadClusters(gc, pattern, MatchVariant::kVertexInduced, &vi_qc).ok());
  EXPECT_GE(vi_qc.NumViews(), edge_qc.NumViews());
  EXPECT_FALSE(vi_qc.Star(0, 2).empty());
  EXPECT_TRUE(edge_qc.Star(0, 2).empty());
}

TEST(ReadClustersTest, RejectsDirectednessMismatch) {
  Graph g = MakeGraph(false, {0, 0}, {{0, 1, 0}});
  Ccsr gc = Ccsr::Build(g);
  Graph pattern = MakeGraph(true, {0, 0}, {{0, 1, 0}});
  QueryClusters qc;
  EXPECT_EQ(
      ReadClusters(gc, pattern, MatchVariant::kEdgeInduced, &qc).code(),
      StatusCode::kInvalidArgument);
}

TEST(CcsrTest, RowIndexStorageBounded) {
  // Paper Section IV: total compressed I_R length is at most 4|E|
  // integers (2 per stored edge, each edge stored twice).
  Rng rng(20);
  Graph g = RandomGraph(rng, 200, 0.05, 8, 2, true);
  Ccsr gc = Ccsr::Build(g);
  size_t total_runs = 0;
  for (const CompressedCluster& c : gc.clusters()) {
    total_runs += c.out_rows.num_runs() + c.in_rows.num_runs();
  }
  // Each run is (value, count); bound from the paper plus one run per
  // CSR for the leading zeros.
  EXPECT_LE(total_runs, 4 * g.NumEdges() + 2 * gc.NumClusters());
}

}  // namespace
}  // namespace csce
