#include <gtest/gtest.h>

#include "analysis/f1.h"
#include "analysis/motif_clustering.h"
#include "gen/random_graph.h"
#include "tests/test_util.h"

namespace csce {
namespace {

TEST(F1Test, PerfectClustering) {
  std::vector<uint32_t> truth = {0, 0, 1, 1, 2};
  PairScores s = PairCountingF1(truth, truth);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
}

TEST(F1Test, LabelPermutationInvariant) {
  std::vector<uint32_t> truth = {0, 0, 1, 1};
  std::vector<uint32_t> renamed = {7, 7, 3, 3};
  EXPECT_DOUBLE_EQ(PairCountingF1(renamed, truth).f1, 1.0);
}

TEST(F1Test, SingletonPredictionHasZeroRecall) {
  std::vector<uint32_t> truth = {0, 0, 0};
  std::vector<uint32_t> pred = {0, 1, 2};
  PairScores s = PairCountingF1(pred, truth);
  EXPECT_DOUBLE_EQ(s.recall, 0.0);
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
}

TEST(F1Test, AllInOnePredictionHasFullRecall) {
  std::vector<uint32_t> truth = {0, 0, 1, 1};
  std::vector<uint32_t> pred = {0, 0, 0, 0};
  PairScores s = PairCountingF1(pred, truth);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.precision, 2.0 / 6.0);
}

TEST(F1Test, KnownMixedCase) {
  // Pairs: (0,1) pred same/true same = TP; (0,2) pred same/true diff =
  // FP; (1,2) pred same/true diff = FP; truth pairs: only (0,1).
  std::vector<uint32_t> truth = {0, 0, 1};
  std::vector<uint32_t> pred = {0, 0, 0};
  PairScores s = PairCountingF1(pred, truth);
  EXPECT_DOUBLE_EQ(s.precision, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
}

TEST(ClusteringTest, EdgeClusteringRunsOnPlantedPartition) {
  std::vector<uint32_t> truth;
  Graph g = PlantedPartition(150, 5, 0.7, 0.01, 11, &truth);
  ClusteringResult result;
  ASSERT_TRUE(EdgeClustering(g, 1, &result).ok());
  ASSERT_EQ(result.assignment.size(), g.NumVertices());
  // Communities are well-separated: label propagation should do well.
  EXPECT_GT(PairCountingF1(result.assignment, truth).f1, 0.6);
}

TEST(ClusteringTest, HigherOrderBeatsEdgesOnNoisyGraph) {
  // Noisy planted partition: enough inter-community edges to confuse
  // edge-based propagation, while triangles stay intra-community.
  std::vector<uint32_t> truth;
  Graph g = PlantedPartition(150, 5, 0.75, 0.09, 13, &truth);
  ClusteringResult edges;
  ClusteringResult motifs;
  ASSERT_TRUE(EdgeClustering(g, 1, &edges).ok());
  ASSERT_TRUE(HigherOrderClustering(g, /*clique_size=*/4, 1,
                                    /*max_instances=*/0, &motifs)
                  .ok());
  EXPECT_GT(motifs.motif_instances, 0u);
  double edge_f1 = PairCountingF1(edges.assignment, truth).f1;
  double motif_f1 = PairCountingF1(motifs.assignment, truth).f1;
  EXPECT_GE(motif_f1, edge_f1 - 0.05);  // at least comparable
  EXPECT_GT(motif_f1, 0.6);
}

TEST(ClusteringTest, MotifWeightingCapRespected) {
  std::vector<uint32_t> truth;
  Graph g = PlantedPartition(100, 4, 0.8, 0.02, 17, &truth);
  ClusteringResult result;
  ASSERT_TRUE(
      HigherOrderClustering(g, 3, 1, /*max_instances=*/50, &result).ok());
  EXPECT_LE(result.motif_instances, 50u);
}

TEST(ClusteringTest, DirectedGraphUnsupportedForMotifs) {
  Graph g = testing::MakeGraph(true, {0, 0}, {{0, 1, 0}});
  ClusteringResult result;
  EXPECT_EQ(HigherOrderClustering(g, 3, 1, 0, &result).code(),
            StatusCode::kNotSupported);
}

TEST(ClusteringTest, BadCliqueSizeRejected) {
  Graph g = testing::Clique(4);
  ClusteringResult result;
  EXPECT_EQ(HigherOrderClustering(g, 1, 1, 0, &result).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace csce
