// Proactive-pruning differential crosschecks: every subset of the
// {aux, ree, lpi} pass family must yield byte-identical sorted
// embedding sets — and equal counts — to pruning-off, across thread
// counts, shard counts, and mmap'd v2 artifacts (whose label-pair
// index sections feed the lpi pass from disk). The passes only shrink
// the work; a crafted workload additionally pins down that each pass
// actually fires (counters move) and actually helps (search shrinks).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include <algorithm>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ccsr/ccsr.h"
#include "ccsr/ccsr_io.h"
#include "ccsr/ccsr_mmap.h"
#include "engine/matcher.h"
#include "engine/prune/prune.h"
#include "gen/datasets.h"
#include "gen/pattern_gen.h"
#include "shard/coordinator.h"
#include "shard/shard_plan.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace csce {
namespace {

struct MatchSnapshot {
  MatchResult result;
  std::vector<std::vector<VertexId>> rows;  // sorted embeddings
};

std::vector<std::vector<VertexId>> SortedRows(
    const std::vector<VertexId>& flat, uint32_t width) {
  std::vector<std::vector<VertexId>> rows;
  if (width == 0) return rows;
  for (size_t off = 0; off + width <= flat.size(); off += width) {
    rows.emplace_back(flat.begin() + off, flat.begin() + off + width);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

// The eight pass subsets, pruning-off first.
std::vector<PruneOptions> AllSubsets() {
  std::vector<PruneOptions> subsets;
  for (int bits = 0; bits < 8; ++bits) {
    PruneOptions p;
    p.aux = (bits & 1) != 0;
    p.ree = (bits & 2) != 0;
    p.lpi = (bits & 4) != 0;
    subsets.push_back(p);
  }
  return subsets;
}

MatchSnapshot RunMatch(const Ccsr& index, const Graph& pattern,
                       MatchVariant variant, PruneOptions prune,
                       uint32_t threads) {
  CsceMatcher matcher(&index);
  MatchOptions options;
  options.variant = variant;
  options.num_threads = threads;
  options.plan.prune = prune;
  std::vector<VertexId> flat;
  std::mutex mu;  // the callback fires concurrently from worker threads
  MatchSnapshot snap;
  Status st = matcher.MatchWithCallback(
      pattern, options,
      [&](std::span<const VertexId> mapping) {
        std::lock_guard<std::mutex> lock(mu);
        flat.insert(flat.end(), mapping.begin(), mapping.end());
        return true;
      },
      &snap.result);
  CSCE_CHECK(st.ok());
  snap.rows = SortedRows(flat, pattern.NumVertices());
  return snap;
}

class PruneCrosscheckTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new Graph(datasets::Patent(18));
    index_ = new Ccsr(Ccsr::Build(*data_));
    // Per-process artifact name — see ccsr_mmap_test.cc: a shared path
    // would race concurrent test processes under `ctest -j`.
    path_ = new std::string(::testing::TempDir() + "/prune_test." +
                            std::to_string(::getpid()) + ".ccsr");
    CSCE_CHECK(SaveCcsrToFileV2(*index_, *path_).ok());
  }
  static void TearDownTestSuite() {
    std::remove(path_->c_str());
    delete path_;
    path_ = nullptr;
    delete index_;
    index_ = nullptr;
    delete data_;
    data_ = nullptr;
  }

  static Graph* data_;
  static Ccsr* index_;
  static std::string* path_;
};

Graph* PruneCrosscheckTest::data_ = nullptr;
Ccsr* PruneCrosscheckTest::index_ = nullptr;
std::string* PruneCrosscheckTest::path_ = nullptr;

TEST_F(PruneCrosscheckTest, EverySubsetByteIdenticalAcrossThreadCounts) {
  Rng rng(31);
  Graph dense;
  ASSERT_TRUE(
      SamplePattern(*data_, 5, PatternDensity::kDense, rng, &dense).ok());
  Graph sparse;
  ASSERT_TRUE(
      SamplePattern(*data_, 5, PatternDensity::kSparse, rng, &sparse).ok());
  for (const Graph* pattern : {&dense, &sparse}) {
    for (MatchVariant variant :
         {MatchVariant::kEdgeInduced, MatchVariant::kHomomorphic}) {
      MatchSnapshot want =
          RunMatch(*index_, *pattern, variant, PruneOptions{}, /*threads=*/1);
      for (const PruneOptions& prune : AllSubsets()) {
        for (uint32_t threads : {1u, 8u}) {
          MatchSnapshot got =
              RunMatch(*index_, *pattern, variant, prune, threads);
          EXPECT_EQ(got.result.embeddings, want.result.embeddings)
              << "prune=" << PruneOptionsToString(prune)
              << " threads=" << threads;
          EXPECT_EQ(got.rows, want.rows)
              << "prune=" << PruneOptionsToString(prune)
              << " threads=" << threads;
          // Pruning may only ever shrink the search.
          EXPECT_LE(got.result.search_nodes, want.result.search_nodes)
              << "prune=" << PruneOptionsToString(prune)
              << " threads=" << threads;
        }
      }
    }
  }
}

TEST_F(PruneCrosscheckTest, MmapV2ArtifactAgreesWithInMemory) {
  // The v2 artifact persists the label-pair index; the mapped run's
  // lpi pass consults masks straight from the file.
  std::unique_ptr<MmapCcsr> mapped;
  ASSERT_TRUE(MmapCcsr::Open(*path_, &mapped).ok());
  Ccsr borrowed = mapped->Release();

  Rng rng(47);
  Graph pattern;
  ASSERT_TRUE(
      SamplePattern(*data_, 5, PatternDensity::kDense, rng, &pattern).ok());
  MatchSnapshot want = RunMatch(*index_, pattern, MatchVariant::kEdgeInduced,
                                PruneOptions{}, /*threads=*/1);
  for (const PruneOptions& prune : AllSubsets()) {
    for (uint32_t threads : {1u, 8u}) {
      MatchSnapshot got = RunMatch(borrowed, pattern,
                                   MatchVariant::kEdgeInduced, prune, threads);
      EXPECT_EQ(got.result.embeddings, want.result.embeddings)
          << "prune=" << PruneOptionsToString(prune) << " threads=" << threads;
      EXPECT_EQ(got.rows, want.rows)
          << "prune=" << PruneOptionsToString(prune) << " threads=" << threads;
    }
  }
}

TEST_F(PruneCrosscheckTest, ShardedRunsStayIdenticalWithPruneRequested) {
  // Shard-local indexes are partial under 1-hop replication, so the
  // executor force-disables every pass in shard mode; requesting the
  // full stack must still produce the single-node answer bit-for-bit.
  Rng rng(59);
  Graph pattern;
  ASSERT_TRUE(
      SamplePattern(*data_, 5, PatternDensity::kDense, rng, &pattern).ok());
  MatchSnapshot want = RunMatch(*index_, pattern, MatchVariant::kEdgeInduced,
                                PruneOptions{}, /*threads=*/1);
  for (uint32_t shards : {1u, 2u, 4u}) {
    for (uint32_t threads : {1u, 8u}) {
      std::unique_ptr<shard::InProcessCluster> cluster;
      ASSERT_TRUE(shard::InProcessCluster::Create(
                      *data_, index_, shards,
                      shard::PartitionStrategy::kHash, threads, &cluster)
                      .ok());
      shard::CoordinatorOptions options;
      options.collect_embeddings = true;
      options.self_check = true;
      options.plan.prune = AllPruneOptions();
      shard::ShardResult result;
      Status st = cluster->coordinator().Execute(pattern, options, &result);
      ASSERT_TRUE(st.ok()) << st.ToString();
      EXPECT_EQ(result.embeddings, want.result.embeddings)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(result.search_nodes, want.result.search_nodes)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(SortedRows(result.embedding_data, result.embedding_width),
                want.rows)
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

TEST_F(PruneCrosscheckTest, SelfCheckCleanWithAllPassesOn) {
  Rng rng(83);
  Graph pattern;
  ASSERT_TRUE(
      SamplePattern(*data_, 5, PatternDensity::kDense, rng, &pattern).ok());
  for (uint32_t threads : {1u, 8u}) {
    CsceMatcher matcher(index_);
    MatchOptions options;
    options.num_threads = threads;
    options.self_check = true;
    options.plan.prune = AllPruneOptions();
    MatchResult result;
    ASSERT_TRUE(matcher.Match(pattern, options, &result).ok());
    EXPECT_EQ(result.embeddings_verified, result.embeddings)
        << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------
// Crafted workload where each pass provably fires. One A-hub `a0`
// carries a real triangle (b_good, c_good) plus `kDecoys` B-decoys that
// are adjacent only to {a0, x}: degree 2 (so the LDF keeps them), no C
// neighbor (so their subtrees are empty), and element-wise identical
// adjacency rows (so they are REE-interchangeable). C-filler vertices
// hanging off `x` inflate the C label frequency so the planner roots
// the A-B-C path pattern at its unique-A end — making B (with its
// decoys) the enumerated middle position rather than a set already
// shrunk by a C-side intersection.
constexpr Label kA = 0, kB = 1, kC = 2, kD = 3;
constexpr uint32_t kDecoys = 6;

Graph DecoyTriangleGraph() {
  std::vector<Label> vlabels = {kA, kB, kC, kD};  // a0, b_good, c_good, x
  std::vector<Edge> edges = {{0, 1}, {0, 2}, {1, 2}};
  for (uint32_t i = 0; i < kDecoys; ++i) {
    const VertexId b = static_cast<VertexId>(vlabels.size());
    vlabels.push_back(kB);
    edges.push_back({0, b});  // a0 - decoy
    edges.push_back({b, 3});  // decoy - x
  }
  for (uint32_t i = 0; i < kDecoys; ++i) {
    const VertexId c = static_cast<VertexId>(vlabels.size());
    vlabels.push_back(kC);  // filler: keeps C common, matches nothing
    edges.push_back({c, 3});
  }
  Graph g = csce::testing::MakeGraph(false, vlabels, edges);
  return g;
}

Graph TrianglePattern() {
  return csce::testing::MakeGraph(false, {kA, kB, kC},
                                  {{0, 1}, {1, 2}, {0, 2}});
}

// Star-pattern workload for the lpi/ree firing tests. The pattern is
// a star around B (A-B, B-C, B-D); the unique A vertex roots the plan,
// so B's candidates arrive via the backward A-edge — the full b-row of
// `a0`, decoys included — while the C- and D-edges point forward. The
// decoys carry A and C neighbors but no D neighbor, so only a forward-
// looking check (lpi's label mask) or descending into the subtree can
// eliminate them; GCF cluster seeding cannot. Junk B-D pairs keep the
// (B,D) cluster from being the smallest seed for a B root.
constexpr uint32_t kJunkPairs = 10;

Graph StarDecoyGraph() {
  // a0=0 (A), c0=1, c1=2 (C), d0=3 (D), b_good=4 (B).
  std::vector<Label> vlabels = {kA, kC, kC, kD, kB};
  std::vector<Edge> edges = {{4, 0}, {4, 1}, {4, 3}};
  for (uint32_t i = 0; i < kDecoys; ++i) {
    const VertexId b = static_cast<VertexId>(vlabels.size());
    vlabels.push_back(kB);
    // Degree 3 (the LDF keeps them), element-wise identical rows
    // (REE-interchangeable), no D neighbor (their subtrees are empty).
    edges.push_back({b, 0});
    edges.push_back({b, 1});
    edges.push_back({b, 2});
  }
  for (uint32_t i = 0; i < kJunkPairs; ++i) {
    const VertexId b = static_cast<VertexId>(vlabels.size());
    vlabels.push_back(kB);
    vlabels.push_back(kD);
    edges.push_back({b, b + 1});
  }
  return csce::testing::MakeGraph(false, vlabels, edges);
}

Graph StarPattern() {
  return csce::testing::MakeGraph(false, {kA, kB, kC, kD},
                                  {{0, 1}, {1, 2}, {1, 3}});
}

// REE workload: triangle A-B-C plus a pendant D on A. The pendant
// makes the triangle-closing position a middle one (REE never runs at
// the root or the last position). Decoy Bs (adjacent {a0, cj}) and
// junk Cs (adjacent {a0, dj}) balance the (A,B)/(A,C) cluster sizes so
// that whichever of B/C the planner orders second has interchangeable
// siblings whose subtrees die in the closing intersection — cj/dj are
// not adjacent to a0, so those prefixes complete with zero embeddings.
Graph TriPendantGraph() {
  // a0=0 (A), b_good=1 (B), c_good=2 (C), x0=3 (D), cj=4 (C), dj=5 (D).
  std::vector<Label> vlabels = {kA, kB, kC, kD, kC, kD};
  std::vector<Edge> edges = {{0, 1}, {0, 2}, {1, 2}, {0, 3}};
  for (uint32_t i = 0; i < kDecoys; ++i) {
    const VertexId b = static_cast<VertexId>(vlabels.size());
    vlabels.push_back(kB);
    edges.push_back({0, b});
    edges.push_back({b, 4});
  }
  for (uint32_t i = 0; i < kDecoys; ++i) {
    const VertexId c = static_cast<VertexId>(vlabels.size());
    vlabels.push_back(kC);
    edges.push_back({0, c});
    edges.push_back({c, 5});
  }
  return csce::testing::MakeGraph(false, vlabels, edges);
}

Graph TriPendantPattern() {
  return csce::testing::MakeGraph(false, {kA, kB, kC, kD},
                                  {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
}

class PruneFiringTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = DecoyTriangleGraph();
    index_ = Ccsr::Build(data_);
    pattern_ = TrianglePattern();
  }
  Graph data_;
  Ccsr index_;
  Graph pattern_;
};

TEST_F(PruneFiringTest, LpiRemovesLabelDeficientCandidates) {
  Graph data = StarDecoyGraph();
  Ccsr index = Ccsr::Build(data);
  Graph star = StarPattern();
  MatchSnapshot off =
      RunMatch(index, star, MatchVariant::kEdgeInduced, PruneOptions{}, 1);
  PruneOptions lpi;
  lpi.lpi = true;
  MatchSnapshot got =
      RunMatch(index, star, MatchVariant::kEdgeInduced, lpi, 1);
  EXPECT_EQ(got.result.embeddings, 1u);
  EXPECT_EQ(got.rows, off.rows);
  // Every decoy lacks a D neighbor, so the label-pair prefilter drops
  // all of them from the B candidate set before enumeration.
  EXPECT_GE(got.result.prune_candidates_removed, kDecoys);
  EXPECT_LT(got.result.search_nodes, off.result.search_nodes);
}

TEST_F(PruneFiringTest, ReeSkipsInterchangeableZeroEmbeddingSiblings) {
  Graph data = TriPendantGraph();
  Ccsr index = Ccsr::Build(data);
  Graph star = TriPendantPattern();
  MatchSnapshot off =
      RunMatch(index, star, MatchVariant::kEdgeInduced, PruneOptions{}, 1);
  PruneOptions ree;
  ree.ree = true;
  MatchSnapshot got =
      RunMatch(index, star, MatchVariant::kEdgeInduced, ree, 1);
  EXPECT_EQ(got.result.embeddings, 1u);
  EXPECT_EQ(got.rows, off.rows);
  // The first decoy's subtree completes empty; the remaining decoys
  // have identical rows and are skipped without descending.
  EXPECT_GE(got.result.prune_extensions_skipped, kDecoys - 1);
}

TEST_F(PruneFiringTest, AuxEmptyCutsDecoySubtrees) {
  MatchSnapshot off = RunMatch(index_, pattern_, MatchVariant::kEdgeInduced,
                               PruneOptions{}, 1);
  PruneOptions aux;
  aux.aux = true;
  MatchSnapshot got =
      RunMatch(index_, pattern_, MatchVariant::kEdgeInduced, aux, 1);
  EXPECT_EQ(got.result.embeddings, 1u);
  EXPECT_EQ(got.rows, off.rows);
  // The triangle's closing position has two backward edges, so the
  // cost model always materializes its projection; each decoy's empty
  // partial projection cuts the subtree (or the final projection is
  // served without re-intersecting — either way the counters move).
  EXPECT_GE(got.result.prune_extensions_skipped +
                got.result.prune_aux_hits,
            1u);
  EXPECT_LE(got.result.intersect_elements, off.result.intersect_elements);
}

TEST_F(PruneFiringTest, FullStackPrunesAtLeastAsMuchAsBestSinglePass) {
  MatchSnapshot off = RunMatch(index_, pattern_, MatchVariant::kEdgeInduced,
                               PruneOptions{}, 1);
  uint64_t best_single = off.result.search_nodes;
  for (const PruneOptions& prune : AllSubsets()) {
    if (!prune.any()) continue;
    MatchSnapshot got =
        RunMatch(index_, pattern_, MatchVariant::kEdgeInduced, prune, 1);
    EXPECT_EQ(got.rows, off.rows)
        << "prune=" << PruneOptionsToString(prune);
    best_single = std::min(best_single, got.result.search_nodes);
  }
  MatchSnapshot all = RunMatch(index_, pattern_, MatchVariant::kEdgeInduced,
                               AllPruneOptions(), 1);
  EXPECT_EQ(all.rows, off.rows);
  EXPECT_LE(all.result.search_nodes, best_single);
}

}  // namespace
}  // namespace csce
