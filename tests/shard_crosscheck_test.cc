// Distributed-equals-single-node cross-checks: the sharded engine must
// produce byte-identical embedding sets — not just equal counts — to
// the serial executor, across shard counts, worker thread counts,
// partition strategies, match variants, and worker deployment (threads
// vs forked processes). ExecStats totals that are deterministic by
// design (search_nodes: every candidate is enumerated by exactly one
// owner) are compared exactly too.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ccsr/ccsr.h"
#include "ccsr/ccsr_io.h"
#include "engine/matcher.h"
#include "gen/datasets.h"
#include "gen/pattern_gen.h"
#include "obs/json.h"
#include "shard/coordinator.h"
#include "shard/shard_plan.h"
#include "shard/transport.h"
#include "shard/worker.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace csce {
namespace shard {
namespace {

struct Baseline {
  uint64_t embeddings = 0;
  uint64_t search_nodes = 0;
  std::vector<std::vector<VertexId>> rows;  // sorted
};

std::vector<std::vector<VertexId>> SortedRows(
    const std::vector<VertexId>& flat, uint32_t width) {
  std::vector<std::vector<VertexId>> rows;
  if (width == 0) return rows;
  for (size_t off = 0; off + width <= flat.size(); off += width) {
    rows.emplace_back(flat.begin() + off, flat.begin() + off + width);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

Baseline SingleNode(const Ccsr& index, const Graph& pattern,
                    MatchVariant variant) {
  CsceMatcher matcher(&index);
  MatchOptions options;
  options.variant = variant;
  std::vector<VertexId> flat;
  MatchResult result;
  Status st = matcher.MatchWithCallback(
      pattern, options,
      [&](std::span<const VertexId> mapping) {
        flat.insert(flat.end(), mapping.begin(), mapping.end());
        return true;
      },
      &result);
  CSCE_CHECK(st.ok());
  Baseline b;
  b.embeddings = result.embeddings;
  b.search_nodes = result.search_nodes;
  b.rows = SortedRows(flat, pattern.NumVertices());
  return b;
}

void ExpectShardedMatches(const Graph& data, const Ccsr& index,
                          const Graph& pattern, MatchVariant variant,
                          uint32_t shards, uint32_t threads,
                          PartitionStrategy strategy,
                          const Baseline& want) {
  std::unique_ptr<InProcessCluster> cluster;
  ASSERT_TRUE(InProcessCluster::Create(data, &index, shards, strategy,
                                       threads, &cluster)
                  .ok());
  CoordinatorOptions options;
  options.variant = variant;
  options.collect_embeddings = true;
  options.self_check = true;
  ShardResult result;
  Status st = cluster->coordinator().Execute(pattern, options, &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(result.embeddings, want.embeddings)
      << "shards=" << shards << " threads=" << threads;
  EXPECT_EQ(result.search_nodes, want.search_nodes)
      << "shards=" << shards << " threads=" << threads;
  EXPECT_EQ(result.embeddings_verified, want.embeddings);
  EXPECT_EQ(SortedRows(result.embedding_data, result.embedding_width),
            want.rows)
      << "shards=" << shards << " threads=" << threads;
}

class ShardCrosscheckTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new Graph(datasets::Patent(18));
    index_ = new Ccsr(Ccsr::Build(*data_));
  }
  static void TearDownTestSuite() {
    delete index_;
    index_ = nullptr;
    delete data_;
    data_ = nullptr;
  }

  static Graph* data_;
  static Ccsr* index_;
};

Graph* ShardCrosscheckTest::data_ = nullptr;
Ccsr* ShardCrosscheckTest::index_ = nullptr;

TEST_F(ShardCrosscheckTest, AllVariantsMatchSingleNodeAcrossShardCounts) {
  Rng rng(31);
  Graph pattern;
  ASSERT_TRUE(
      SamplePattern(*data_, 5, PatternDensity::kDense, rng, &pattern).ok());
  for (MatchVariant variant :
       {MatchVariant::kEdgeInduced, MatchVariant::kVertexInduced,
        MatchVariant::kHomomorphic}) {
    Baseline want = SingleNode(*index_, pattern, variant);
    for (uint32_t shards : {1u, 2u, 4u}) {
      ExpectShardedMatches(*data_, *index_, pattern, variant, shards,
                           /*threads=*/1, PartitionStrategy::kHash, want);
    }
  }
}

TEST_F(ShardCrosscheckTest, EightThreadWorkersMatchSerial) {
  Rng rng(47);
  Graph pattern;
  ASSERT_TRUE(
      SamplePattern(*data_, 5, PatternDensity::kSparse, rng, &pattern).ok());
  Baseline want = SingleNode(*index_, pattern, MatchVariant::kEdgeInduced);
  for (uint32_t threads : {1u, 8u}) {
    ExpectShardedMatches(*data_, *index_, pattern,
                         MatchVariant::kEdgeInduced, /*shards=*/4, threads,
                         PartitionStrategy::kHash, want);
  }
}

TEST_F(ShardCrosscheckTest, LabelAwareStrategyAgrees) {
  Rng rng(59);
  Graph pattern;
  ASSERT_TRUE(
      SamplePattern(*data_, 4, PatternDensity::kDense, rng, &pattern).ok());
  Baseline want = SingleNode(*index_, pattern, MatchVariant::kHomomorphic);
  ExpectShardedMatches(*data_, *index_, pattern, MatchVariant::kHomomorphic,
                       /*shards=*/4, /*threads=*/2,
                       PartitionStrategy::kLabelAware, want);
}

TEST_F(ShardCrosscheckTest, DisconnectedPatternUsesBroadcastPath) {
  // Two disjoint pattern edges force an edge-less (label-scan) position
  // at depth > 0 — the kLocalOnly broadcast route. Labels/edge labels
  // are lifted from real data edges so the pattern occurs.
  std::vector<Edge> sample;
  data_->ForEachEdge([&](const Edge& e) {
    if (sample.size() < 2 && (sample.empty() || (e.src != sample[0].src &&
                                                 e.dst != sample[0].dst &&
                                                 e.src != sample[0].dst &&
                                                 e.dst != sample[0].src))) {
      sample.push_back(e);
    }
  });
  ASSERT_EQ(sample.size(), 2u);
  Graph pattern = csce::testing::MakeGraph(
      data_->directed(),
      {data_->VertexLabel(sample[0].src), data_->VertexLabel(sample[0].dst),
       data_->VertexLabel(sample[1].src), data_->VertexLabel(sample[1].dst)},
      {{0, 1, sample[0].elabel}, {2, 3, sample[1].elabel}});
  for (MatchVariant variant :
       {MatchVariant::kEdgeInduced, MatchVariant::kHomomorphic}) {
    Baseline want = SingleNode(*index_, pattern, variant);
    ASSERT_GE(want.embeddings, 1u);
    ExpectShardedMatches(*data_, *index_, pattern, variant, /*shards=*/4,
                         /*threads=*/2, PartitionStrategy::kHash, want);
  }
}

TEST_F(ShardCrosscheckTest, WorkerMetricsDocumentsParse) {
  std::unique_ptr<InProcessCluster> cluster;
  ASSERT_TRUE(InProcessCluster::Create(*data_, index_, 2,
                                       PartitionStrategy::kHash, 1, &cluster)
                  .ok());
  std::vector<std::string> docs;
  ASSERT_TRUE(cluster->coordinator().CollectMetrics(&docs).ok());
  ASSERT_EQ(docs.size(), 2u);
  for (const std::string& text : docs) {
    obs::JsonValue doc;
    ASSERT_TRUE(obs::JsonParse(text, &doc).ok());
    ASSERT_TRUE(doc.Find("schema") != nullptr);
    EXPECT_EQ(doc.Find("schema")->AsString(), "csce.metrics.v1");
    EXPECT_TRUE(doc.Find("metrics") != nullptr);
  }
}

// Four real worker processes over Unix-domain socketpairs: the same
// query, same embedding set. The children serve a shard each and exit;
// the parent is the coordinator.
TEST_F(ShardCrosscheckTest, ForkedWorkerProcessesMatchSingleNode) {
  constexpr uint32_t kShards = 4;
  ShardPlanOptions popts;
  popts.num_shards = kShards;
  popts.strategy = PartitionStrategy::kHash;
  ShardPlan plan = ShardPlan::Build(*data_, popts);
  std::vector<std::string> blobs(kShards);
  for (uint32_t s = 0; s < kShards; ++s) {
    Graph shard_graph;
    ASSERT_TRUE(plan.ExtractShard(*data_, s, &shard_graph).ok());
    Ccsr shard_ccsr = Ccsr::Build(shard_graph);
    std::ostringstream blob;
    ASSERT_TRUE(SaveCcsrToStream(shard_ccsr, blob).ok());
    blobs[s] = std::move(blob).str();
  }

  std::vector<pid_t> pids;
  std::vector<int> parent_fds;
  for (uint32_t s = 0; s < kShards; ++s) {
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      close(fds[0]);
      for (int fd : parent_fds) close(fd);
      std::unique_ptr<Transport> transport = MakeFdTransport(fds[1]);
      ShardWorker worker;
      Status st = worker.Serve(*transport);
      _exit(st.ok() ? 0 : 3);
    }
    close(fds[1]);
    pids.push_back(pid);
    parent_fds.push_back(fds[0]);
  }

  {
    ShardCoordinator coordinator(index_);
    for (int fd : parent_fds) coordinator.AttachWorker(MakeFdTransport(fd));
    ASSERT_TRUE(
        coordinator.LoadInline(plan.owners(), blobs, /*threads=*/2).ok());

    Rng rng(83);
    Graph pattern;
    ASSERT_TRUE(
        SamplePattern(*data_, 5, PatternDensity::kDense, rng, &pattern).ok());
    Baseline want = SingleNode(*index_, pattern, MatchVariant::kEdgeInduced);

    CoordinatorOptions options;
    options.collect_embeddings = true;
    options.self_check = true;
    ShardResult result;
    Status st = coordinator.Execute(pattern, options, &result);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(result.embeddings, want.embeddings);
    EXPECT_EQ(result.search_nodes, want.search_nodes);
    EXPECT_EQ(SortedRows(result.embedding_data, result.embedding_width),
              want.rows);
    coordinator.Shutdown();
  }

  for (pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "worker exit status " << status;
  }
}

}  // namespace
}  // namespace shard
}  // namespace csce
