// Negative fixture for csce_lint's hot-path-no-alloc: a CSCE_HOT_PATH
// function reaches a std::vector::push_back through one level of
// indirection. Never compiled into the build — the lint self-test
// asserts the checker flags the push_back call.
#include <cstddef>
#include <cstdint>
#include <vector>

#define CSCE_HOT_PATH

namespace fixture {

std::vector<uint32_t>* Sink();

void Accumulate(uint32_t v) {
  // No project class defines push_back in this fixture's model, so the
  // member call is judged as the allocating std container method.
  Sink()->push_back(v);
}

CSCE_HOT_PATH void Enumerate(const uint32_t* xs, size_t n) {
  for (size_t i = 0; i < n; ++i) Accumulate(xs[i]);
}

}  // namespace fixture
