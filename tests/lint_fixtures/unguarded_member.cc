// Negative fixture for csce_lint's guarded-by-complete: a class owning
// a mutex with a plain member that carries neither CSCE_GUARDED_BY nor
// CSCE_NOT_GUARDED. Never compiled into the build.
#include <cstdint>
#include <mutex>

namespace fixture {

class Counter {
 public:
  void Add(uint64_t v);
  uint64_t total() const;

 private:
  std::mutex mu_;
  uint64_t total_ = 0;  // missing annotation
};

}  // namespace fixture
