// Negative fixture for csce_lint's mmap-bounded-reads: a function in an
// mmap translation unit does pointer arithmetic over the mapped bytes
// with reinterpret_cast instead of going through a bounds-checked
// accessor, and is not marked CSCE_MAP_PRIMITIVE. Never compiled into
// the build.
#include <cstdint>

namespace fixture {

struct Mapping {
  const char* bytes;
  uint64_t length;
};

uint32_t ReadLabel(const Mapping& m, uint64_t offset) {
  // unbounded: offset is never checked against m.length
  return *reinterpret_cast<const uint32_t*>(m.bytes + offset);
}

}  // namespace fixture
