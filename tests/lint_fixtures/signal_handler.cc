// Negative fixture for csce_lint's signal-discipline: installs an
// asynchronous signal handler with signal(). The sanctioned shape is
// the blocked-signal + sigwait watcher thread in csce_serve. Never
// compiled into the build.
#include <csignal>

namespace fixture {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

void Install() {
  std::signal(SIGINT, OnSignal);  // banned: async handler registration
}

}  // namespace fixture
