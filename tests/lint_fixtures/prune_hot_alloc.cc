// Negative fixture for csce_lint's hot-path-no-alloc over the prune
// layer: an aux-projection step that grows its output buffer with
// std::vector::resize from inside the enumeration hot path, instead of
// writing into a scratch buffer sized during Prepare. Never compiled
// into the build — the lint self-test asserts the checker flags it.
#include <cstddef>
#include <cstdint>
#include <vector>

#define CSCE_HOT_PATH

namespace fixture {

struct AuxStepState {
  std::vector<uint32_t> buf;
};

AuxStepState* StepState(uint32_t step);

CSCE_HOT_PATH bool RunAuxProjection(const uint32_t* row, size_t n,
                                    uint32_t step) {
  AuxStepState* s = StepState(step);
  // No project class defines resize in this fixture's model, so the
  // member call is judged as the allocating std container method.
  s->buf.resize(n);
  for (size_t i = 0; i < n; ++i) s->buf[i] = row[i];
  return n != 0;
}

}  // namespace fixture
