// Negative fixture for csce_lint's wire-bounded-reads: a decoder in a
// wire translation unit reads payload bytes with raw memcpy instead of
// the bounded PayloadReader accessors, and is not marked
// CSCE_WIRE_PRIMITIVE. Never compiled into the build.
#include <cstdint>
#include <cstring>

namespace fixture {

struct Frame {
  const uint8_t* payload;
};

uint32_t DecodeCount(const Frame& f) {
  uint32_t count;
  std::memcpy(&count, f.payload, sizeof(count));  // unbounded read
  return count;
}

}  // namespace fixture
