// Tests pinned to worked examples from the paper's text (Sections I-V).
// Where Fig. 1 is only partially specified, these use the exact
// fragments the text spells out.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "ccsr/ccsr.h"
#include "engine/matcher.h"
#include "graph/isomorphism.h"
#include "plan/dag.h"
#include "tests/test_util.h"

namespace csce {
namespace {

using testing::MakeGraph;

// Labels used throughout: A=1, B=2, C=3, D=4.
constexpr Label A = 1;
constexpr Label B = 2;
constexpr Label C = 3;

TEST(PaperExampleTest, S3AutomorphismsOfSymmetricPath) {
  // Section II: the vertex-induced subgraph S3 from {u1, u6, u8} is
  // automorphic under exactly two mappings (identity and the A-A swap).
  Graph s3 = MakeGraph(false, {A, 0, A}, {{0, 1, 0}, {1, 2, 0}});
  EXPECT_EQ(CountAutomorphisms(s3), 2u);
}

TEST(PaperExampleTest, S3HomomorphicToSingleEdge) {
  // Section II: S3 is homomorphic to an edge (u1, u6) by folding both
  // A-endpoints onto one vertex.
  Graph s3 = MakeGraph(false, {A, 0, A}, {{0, 1, 0}, {1, 2, 0}});
  Graph edge = MakeGraph(false, {A, 0}, {{0, 1, 0}});
  EXPECT_GE(CountEmbeddingsBruteForce(edge, s3, MatchVariant::kHomomorphic),
            1u);
  EXPECT_EQ(CountEmbeddingsBruteForce(edge, s3, MatchVariant::kEdgeInduced),
            0u);
}

TEST(PaperExampleTest, EdgeVsVertexInducedS1S2) {
  // Section II (Fig. 1): edge-induced results contain both S1 and S2,
  // vertex-induced only S1. Reproduced with a pattern that occurs twice,
  // once with an extra chord.
  Graph pattern = MakeGraph(false, {A, B, C}, {{0, 1, 0}, {1, 2, 0}});
  GraphBuilder b(false);
  // Occurrence 1 (S1-like): exact.
  VertexId a1 = b.AddVertex(A);
  VertexId b1 = b.AddVertex(B);
  VertexId c1 = b.AddVertex(C);
  b.AddEdge(a1, b1);
  b.AddEdge(b1, c1);
  // Occurrence 2 (S2-like): with an extra chord a2-c2.
  VertexId a2 = b.AddVertex(A);
  VertexId b2 = b.AddVertex(B);
  VertexId c2 = b.AddVertex(C);
  b.AddEdge(a2, b2);
  b.AddEdge(b2, c2);
  b.AddEdge(a2, c2);
  Graph g;
  ASSERT_TRUE(b.Build(&g).ok());
  Ccsr gc = Ccsr::Build(g);
  CsceMatcher matcher(&gc);
  MatchOptions options;
  options.variant = MatchVariant::kEdgeInduced;
  MatchResult result;
  ASSERT_TRUE(matcher.Match(pattern, options, &result).ok());
  EXPECT_EQ(result.embeddings, 2u);  // both S1 and S2
  options.variant = MatchVariant::kVertexInduced;
  ASSERT_TRUE(matcher.Match(pattern, options, &result).ok());
  EXPECT_EQ(result.embeddings, 1u);  // S1 only
}

TEST(PaperExampleTest, Definition1CandidateSets) {
  // Section V: C(u2 | Phi1, {u1 -> v1}) = {v2, v6} and
  // C(u2 | Phi1, {u1 -> v4}) = {v5}.
  // Fragment: v1:A -> {v2:B, v6:B}, v4:A -> {v5:B}.
  Graph g = MakeGraph(true, {A, B, A, B, B},
                      {{0, 1, 0}, {0, 4, 0}, {2, 3, 0}});
  // v1=0, v2=1, v4=2, v5=3, v6=4.
  Graph pattern = MakeGraph(true, {A, B}, {{0, 1, 0}});
  Ccsr gc = Ccsr::Build(g);
  CsceMatcher matcher(&gc);
  MatchOptions options;
  options.variant = MatchVariant::kEdgeInduced;
  MatchResult result;
  std::vector<std::vector<VertexId>> embeddings;
  ASSERT_TRUE(matcher
                  .MatchWithCallback(
                      pattern, options,
                      [&embeddings](std::span<const VertexId> m) {
                        embeddings.emplace_back(m.begin(), m.end());
                        return true;
                      },
                      &result)
                  .ok());
  // u1 -> v1 yields u2 in {v2, v6}; u1 -> v4 yields u2 = v5.
  ASSERT_EQ(embeddings.size(), 3u);
  std::set<std::pair<VertexId, VertexId>> got;
  for (const auto& m : embeddings) got.insert({m[0], m[1]});
  EXPECT_TRUE(got.count({0, 1}));
  EXPECT_TRUE(got.count({0, 4}));
  EXPECT_TRUE(got.count({2, 3}));
}

TEST(PaperExampleTest, SyntacticallyEquivalentDataVertices) {
  // Section I: v3 and v10 are interchangeable candidates for u3 because
  // both are C-labeled neighbors of v1. Both must appear as mappings.
  Graph g = MakeGraph(false, {A, C, C}, {{0, 1, 0}, {0, 2, 0}});
  Graph pattern = MakeGraph(false, {A, C}, {{0, 1, 0}});
  Ccsr gc = Ccsr::Build(g);
  CsceMatcher matcher(&gc);
  MatchResult result;
  ASSERT_TRUE(matcher.Match(pattern, MatchOptions{}, &result).ok());
  EXPECT_EQ(result.embeddings, 2u);
}

TEST(PaperExampleTest, ConditionallyIndependentRegionsReuse) {
  // Section I's motivating redundancy: two regions hanging off a
  // matched pair are independent; SCE must reuse the second region's
  // candidates across mappings of the first.
  GraphBuilder b(false);
  VertexId hub_a = b.AddVertex(A);
  VertexId hub_b = b.AddVertex(B);
  b.AddEdge(hub_a, hub_b);
  // Region R1 candidates: several C vertices off hub_a.
  for (int i = 0; i < 4; ++i) b.AddEdge(hub_a, b.AddVertex(C));
  // Region R2 candidates: several D(=4) vertices off hub_b.
  for (int i = 0; i < 4; ++i) b.AddEdge(hub_b, b.AddVertex(4));
  Graph g;
  ASSERT_TRUE(b.Build(&g).ok());
  // Pattern: A-B edge with a C leaf on A and a D leaf on B.
  Graph pattern = MakeGraph(false, {A, B, C, 4},
                            {{0, 1, 0}, {0, 2, 0}, {1, 3, 0}});
  Ccsr gc = Ccsr::Build(g);
  CsceMatcher matcher(&gc);
  MatchResult result;
  ASSERT_TRUE(matcher.Match(pattern, MatchOptions{}, &result).ok());
  EXPECT_EQ(result.embeddings, 16u);  // 4 x 4 combinations
  // The leaf regions' candidates must have been reused, not recomputed
  // per sibling mapping.
  EXPECT_GT(result.candidate_sets_reused, 0u);
  EXPECT_LE(result.candidate_sets_computed, 4u);
}

TEST(PaperExampleTest, Fig5EdgeInducedDagIsPatternEdges) {
  // Section V: for edge-induced SM, H's edges are exactly the pattern
  // edges oriented by the matching order (Fig. 5a); two orders that
  // orient all pattern edges identically give the same DAG.
  Rng rng(123);
  Graph p = testing::RandomGraph(rng, 8, 0.4, 2, 1, false);
  std::vector<VertexId> order(8);
  std::iota(order.begin(), order.end(), 0);
  DependencyDag dag =
      DependencyDag::Build(p, order, MatchVariant::kEdgeInduced, nullptr);
  EXPECT_EQ(dag.NumEdges(), p.NumEdges());
}

}  // namespace
}  // namespace csce
