#include "plan/plan_printer.h"

#include <gtest/gtest.h>

#include "ccsr/ccsr.h"
#include "tests/test_util.h"

namespace csce {
namespace {

TEST(PlanPrinterTest, MentionsEveryPosition) {
  Rng rng(1001);
  Graph data = testing::RandomGraph(rng, 30, 0.25, 2, 1, false);
  Graph pattern = testing::Cycle(4);
  Ccsr gc = Ccsr::Build(data);
  Planner planner(&gc);
  Plan plan;
  ASSERT_TRUE(planner
                  .MakePlan(pattern, MatchVariant::kEdgeInduced,
                            PlanOptions{}, &plan)
                  .ok());
  std::string text = PlanToString(plan);
  EXPECT_NE(text.find("edge-induced"), std::string::npos);
  EXPECT_NE(text.find("[0]"), std::string::npos);
  EXPECT_NE(text.find("[3]"), std::string::npos);
  EXPECT_NE(text.find("seed="), std::string::npos);
  EXPECT_NE(text.find("deps={"), std::string::npos);
}

TEST(PlanPrinterTest, ShowsNegationsForVertexInduced) {
  Graph data = testing::Clique(6);
  Graph pattern = testing::Path(3);
  Ccsr gc = Ccsr::Build(data);
  Planner planner(&gc);
  Plan plan;
  ASSERT_TRUE(planner
                  .MakePlan(pattern, MatchVariant::kVertexInduced,
                            PlanOptions{}, &plan)
                  .ok());
  std::string text = PlanToString(plan);
  EXPECT_NE(text.find("vertex-induced"), std::string::npos);
  EXPECT_NE(text.find("!"), std::string::npos);  // a negation constraint
}

TEST(PlanPrinterTest, ShowsAliases) {
  Graph data = testing::Star(6);
  Ccsr gc = Ccsr::Build(data);
  Planner planner(&gc);
  Plan plan;
  ASSERT_TRUE(planner
                  .MakePlan(testing::Star(3), MatchVariant::kEdgeInduced,
                            PlanOptions{}, &plan)
                  .ok());
  EXPECT_NE(PlanToString(plan).find("alias="), std::string::npos);
}

}  // namespace
}  // namespace csce
