#include <gtest/gtest.h>

#include "ccsr/ccsr.h"
#include "engine/matcher.h"
#include "gen/datasets.h"
#include "gen/pattern_gen.h"
#include "gen/random_graph.h"
#include "graph/graph_stats.h"
#include "graph/subgraph.h"
#include "tests/test_util.h"

namespace csce {
namespace {

TEST(RandomGraphTest, ErdosRenyiShape) {
  LabelConfig labels;
  labels.vertex_labels = 5;
  Graph g = ErdosRenyi(500, 1500, false, labels, 1);
  EXPECT_EQ(g.NumVertices(), 500u);
  EXPECT_GT(g.NumEdges(), 1300u);  // some duplicates/self-loops drop out
  EXPECT_LE(g.NumEdges(), 1500u);
  EXPECT_EQ(g.VertexLabelCount(), 5u);
}

TEST(RandomGraphTest, Deterministic) {
  LabelConfig labels;
  Graph a = ErdosRenyi(100, 300, true, labels, 9);
  Graph b = ErdosRenyi(100, 300, true, labels, 9);
  EXPECT_EQ(a.Edges(), b.Edges());
}

TEST(RandomGraphTest, ChungLuIsSkewed) {
  LabelConfig labels;
  Graph g = ChungLu(2000, 10000, 2.3, false, labels, 5);
  GraphStats s = ComputeStats(g);
  // Hubs should far exceed the average.
  EXPECT_GT(s.max_out_degree, 5 * s.average_degree);
}

TEST(RandomGraphTest, GridRoadIsSparse) {
  Graph g = GridRoad(50, 50, 0.72, 3);
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.vertex_count, 2500u);
  EXPECT_GT(s.average_degree, 2.0);
  EXPECT_LT(s.average_degree, 3.6);
  EXPECT_LT(s.max_out_degree, 12u);
}

TEST(RandomGraphTest, PlantedPartitionGroundTruth) {
  std::vector<uint32_t> truth;
  Graph g = PlantedPartition(200, 10, 0.7, 0.02, 7, &truth);
  ASSERT_EQ(truth.size(), 200u);
  // Count intra vs inter edges: intra should dominate per capita.
  uint64_t intra = 0;
  uint64_t inter = 0;
  g.ForEachEdge([&](const Edge& e) {
    (truth[e.src] == truth[e.dst] ? intra : inter) += 1;
  });
  EXPECT_GT(intra, inter);
}

TEST(RandomGraphTest, DrawLabelBounds) {
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(DrawLabel(rng, 7, 0.0), 7u);
    EXPECT_LT(DrawLabel(rng, 7, 0.9), 7u);
  }
  EXPECT_EQ(DrawLabel(rng, 1, 0.5), kNoLabel);
}

TEST(DatasetsTest, ShapesMatchTable4Conventions) {
  struct Expectation {
    const char* name;
    bool directed;
    uint32_t labels;
    double min_avg_degree;
    double max_avg_degree;
  };
  const Expectation expectations[] = {
      {"DIP", false, 0, 6.0, 11.0},
      {"Yeast", false, 71, 6.0, 10.0},
      {"Human", false, 44, 14.0, 24.0},
      {"HPRD", false, 304, 5.5, 9.0},
      {"RoadCA", false, 0, 2.2, 3.6},
      {"Orkut", false, 50, 28.0, 44.0},
      {"Patent", false, 20, 6.5, 10.5},
      {"Subcategory", true, 36, 8.0, 12.0},
      {"LiveJournal", true, 0, 13.0, 19.0},
  };
  auto all = datasets::AllTable4();
  ASSERT_EQ(all.size(), std::size(expectations));
  for (size_t i = 0; i < all.size(); ++i) {
    const auto& e = expectations[i];
    SCOPED_TRACE(e.name);
    EXPECT_EQ(all[i].name, e.name);
    GraphStats s = ComputeStats(all[i].graph);
    EXPECT_EQ(s.directed, e.directed);
    if (e.labels == 0) {
      EXPECT_EQ(s.label_count, 0u);
    } else {
      // Skewed assignment may drop a few of the rarest labels.
      EXPECT_GE(s.label_count, e.labels * 7 / 10);
      EXPECT_LE(s.label_count, e.labels);
    }
    EXPECT_GE(s.average_degree, e.min_avg_degree);
    EXPECT_LE(s.average_degree, e.max_avg_degree);
  }
}

TEST(DatasetsTest, PatentLabelVariants) {
  Graph p200 = datasets::Patent(200);
  GraphStats s = ComputeStats(p200);
  EXPECT_GE(s.label_count, 150u);
  EXPECT_LE(s.label_count, 200u);
}

TEST(DatasetsTest, EmailEuHasDepartments) {
  std::vector<uint32_t> departments;
  Graph g = datasets::EmailEu(&departments);
  EXPECT_EQ(departments.size(), g.NumVertices());
  uint32_t max_dept = 0;
  for (uint32_t d : departments) max_dept = std::max(max_dept, d);
  EXPECT_EQ(max_dept, 19u);
}

TEST(PatternGenTest, SampledPatternsAreConnectedAndSized) {
  Graph g = datasets::Dip();
  Rng rng(5);
  for (uint32_t size : {4u, 8u, 16u}) {
    for (auto density : {PatternDensity::kDense, PatternDensity::kSparse}) {
      Graph p;
      ASSERT_TRUE(SamplePattern(g, size, density, rng, &p).ok());
      EXPECT_EQ(p.NumVertices(), size);
      EXPECT_TRUE(IsConnected(p));
      if (density == PatternDensity::kSparse) {
        EXPECT_LE(p.NumEdges(), size);  // avg degree <= 2
      }
    }
  }
}

TEST(PatternGenTest, DensePatternsEmbedInSource) {
  // A dense pattern is an induced subgraph, so it must appear at least
  // once even vertex-induced.
  Graph g = datasets::Yeast();
  Ccsr gc = Ccsr::Build(g);
  CsceMatcher matcher(&gc);
  Rng rng(6);
  for (int i = 0; i < 3; ++i) {
    Graph p;
    ASSERT_TRUE(SamplePattern(g, 8, PatternDensity::kDense, rng, &p).ok());
    MatchOptions options;
    options.variant = MatchVariant::kVertexInduced;
    options.max_embeddings = 1;
    MatchResult result;
    ASSERT_TRUE(matcher.Match(p, options, &result).ok());
    EXPECT_GE(result.embeddings, 1u);
  }
}

TEST(PatternGenTest, SparsePatternsEmbedEdgeInduced) {
  Graph g = datasets::Dip();
  Ccsr gc = Ccsr::Build(g);
  CsceMatcher matcher(&gc);
  Rng rng(7);
  for (int i = 0; i < 3; ++i) {
    Graph p;
    ASSERT_TRUE(SamplePattern(g, 10, PatternDensity::kSparse, rng, &p).ok());
    MatchOptions options;
    options.max_embeddings = 1;
    MatchResult result;
    ASSERT_TRUE(matcher.Match(p, options, &result).ok());
    EXPECT_GE(result.embeddings, 1u);
  }
}

TEST(PatternGenTest, BatchSamplingDeterministic) {
  Graph g = datasets::Dip();
  std::vector<Graph> a;
  std::vector<Graph> b;
  ASSERT_TRUE(
      SamplePatterns(g, 8, PatternDensity::kDense, 5, 99, &a).ok());
  ASSERT_TRUE(
      SamplePatterns(g, 8, PatternDensity::kDense, 5, 99, &b).ok());
  ASSERT_EQ(a.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(a[i].Edges(), b[i].Edges());
}

TEST(PatternGenTest, DirectedSourceGivesDirectedPatterns) {
  Graph g = datasets::Subcategory();
  Rng rng(8);
  Graph p;
  ASSERT_TRUE(SamplePattern(g, 6, PatternDensity::kDense, rng, &p).ok());
  EXPECT_TRUE(p.directed());
}

}  // namespace
}  // namespace csce
