#ifndef CSCE_TESTS_TEST_UTIL_H_
#define CSCE_TESTS_TEST_UTIL_H_

#include <vector>

#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "util/logging.h"
#include "util/rng.h"

namespace csce {
namespace testing {

/// Random G(n, p)-ish labeled graph for property tests.
inline Graph RandomGraph(Rng& rng, uint32_t n, double p,
                         uint32_t vertex_labels, uint32_t edge_labels,
                         bool directed) {
  GraphBuilder b(directed);
  for (uint32_t i = 0; i < n; ++i) {
    b.AddVertex(static_cast<Label>(rng.Uniform(vertex_labels)));
  }
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      if (i == j || (!directed && j < i)) continue;
      if (rng.Bernoulli(p)) {
        b.AddEdge(i, j, static_cast<Label>(rng.Uniform(edge_labels)));
      }
    }
  }
  Graph g;
  Status st = b.Build(&g);
  CSCE_CHECK(st.ok());
  return g;
}

/// Builds a graph from explicit parts; aborts on builder errors.
inline Graph MakeGraph(bool directed, const std::vector<Label>& vlabels,
                       const std::vector<Edge>& edges) {
  GraphBuilder b(directed);
  for (Label l : vlabels) b.AddVertex(l);
  for (const Edge& e : edges) b.AddEdge(e.src, e.dst, e.elabel);
  Graph g;
  Status st = b.Build(&g);
  CSCE_CHECK(st.ok());
  return g;
}

/// Complete unlabeled undirected graph on n vertices.
inline Graph Clique(uint32_t n) {
  GraphBuilder b(false);
  b.AddVertices(n, kNoLabel);
  for (VertexId a = 0; a < n; ++a) {
    for (VertexId c = a + 1; c < n; ++c) b.AddEdge(a, c);
  }
  Graph g;
  Status st = b.Build(&g);
  CSCE_CHECK(st.ok());
  return g;
}

/// Undirected unlabeled path 0-1-...-(n-1).
inline Graph Path(uint32_t n) {
  GraphBuilder b(false);
  b.AddVertices(n, kNoLabel);
  for (VertexId v = 0; v + 1 < n; ++v) b.AddEdge(v, v + 1);
  Graph g;
  Status st = b.Build(&g);
  CSCE_CHECK(st.ok());
  return g;
}

/// Undirected unlabeled cycle on n vertices.
inline Graph Cycle(uint32_t n) {
  GraphBuilder b(false);
  b.AddVertices(n, kNoLabel);
  for (VertexId v = 0; v < n; ++v) b.AddEdge(v, (v + 1) % n);
  Graph g;
  Status st = b.Build(&g);
  CSCE_CHECK(st.ok());
  return g;
}

/// Star: center 0 connected to n leaves.
inline Graph Star(uint32_t leaves) {
  GraphBuilder b(false);
  b.AddVertices(leaves + 1, kNoLabel);
  for (VertexId v = 1; v <= leaves; ++v) b.AddEdge(0, v);
  Graph g;
  Status st = b.Build(&g);
  CSCE_CHECK(st.ok());
  return g;
}

}  // namespace testing
}  // namespace csce

#endif  // CSCE_TESTS_TEST_UTIL_H_
