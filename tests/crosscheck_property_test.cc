// The central property suite: on random heterogeneous graphs, every
// matcher in the repository must report exactly the same embedding
// count as the brute-force oracle, for every variant it supports. This
// is the invariant the whole benchmark story rests on.

#include <gtest/gtest.h>

#include <tuple>

#include "baselines/backtracking.h"
#include "baselines/graphpi_like.h"
#include "baselines/join.h"
#include "baselines/vf2.h"
#include "ccsr/ccsr.h"
#include "engine/matcher.h"
#include "graph/isomorphism.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tests/test_util.h"

namespace csce {
namespace {

struct CrosscheckCase {
  uint64_t seed;
  bool directed;
  uint32_t vertex_labels;
  uint32_t edge_labels;
  double pattern_density;
};

class CrosscheckTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool, uint32_t>> {
};

TEST_P(CrosscheckTest, AllMatchersAgreeWithOracle) {
  auto [seed, directed, vertex_labels] = GetParam();
  Rng rng(seed * 7919 + (directed ? 1 : 0) + vertex_labels * 13);
  Graph data = testing::RandomGraph(rng, 15, 0.28, vertex_labels, 2,
                                    directed);
  Graph pattern =
      testing::RandomGraph(rng, 5, 0.45, vertex_labels, 2, directed);

  Ccsr gc = Ccsr::Build(data);
  CsceMatcher csce(&gc);
  BacktrackingMatcher bt(&data);
  JoinMatcher jm(&data);
  Vf2Matcher vf(&data);
  GraphPiLikeMatcher gp(&data);

  for (auto variant :
       {MatchVariant::kEdgeInduced, MatchVariant::kVertexInduced,
        MatchVariant::kHomomorphic}) {
    SCOPED_TRACE(VariantName(variant));
    const uint64_t expected =
        CountEmbeddingsBruteForce(data, pattern, variant);

    {
      MatchOptions options;
      options.variant = variant;
      MatchResult r;
      ASSERT_TRUE(csce.Match(pattern, options, &r).ok());
      EXPECT_EQ(r.embeddings, expected) << "csce";

      // Every ablation of the planner must stay correct.
      MatchOptions ablated = options;
      ablated.plan.use_sce = false;
      ablated.plan.use_nec = false;
      ASSERT_TRUE(csce.Match(pattern, ablated, &r).ok());
      EXPECT_EQ(r.embeddings, expected) << "csce no-sce/no-nec";

      ablated = options;
      ablated.plan.use_ldsf = false;
      ablated.plan.use_cluster_tiebreak = false;
      ASSERT_TRUE(csce.Match(pattern, ablated, &r).ok());
      EXPECT_EQ(r.embeddings, expected) << "csce no-ldsf/no-tiebreak";

      ablated = options;
      ablated.plan.use_gcf = false;
      ASSERT_TRUE(csce.Match(pattern, ablated, &r).ok());
      EXPECT_EQ(r.embeddings, expected) << "csce id-order";
    }
    {
      BaselineOptions options;
      options.variant = variant;
      BaselineResult r;
      ASSERT_TRUE(bt.Match(pattern, options, &r).ok());
      EXPECT_EQ(r.embeddings, expected) << "backtracking";
      BaselineOptions fsp = options;
      fsp.use_fsp = true;
      ASSERT_TRUE(bt.Match(pattern, fsp, &r).ok());
      EXPECT_EQ(r.embeddings, expected) << "backtracking+fsp";
      if (variant != MatchVariant::kVertexInduced) {
        ASSERT_TRUE(jm.Match(pattern, options, &r).ok());
        EXPECT_EQ(r.embeddings, expected) << "join";
      }
      if (variant != MatchVariant::kHomomorphic) {
        ASSERT_TRUE(vf.Match(pattern, options, &r).ok());
        EXPECT_EQ(r.embeddings, expected) << "vf2";
      }
      if (variant == MatchVariant::kEdgeInduced) {
        ASSERT_TRUE(gp.Match(pattern, options, &r).ok());
        EXPECT_EQ(r.embeddings, expected) << "graphpi-like";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, CrosscheckTest,
    ::testing::Combine(::testing::Range<uint64_t>(0, 8),
                       ::testing::Bool(),
                       ::testing::Values(1u, 3u)));

// Denser patterns stress vertex-induced negations and NEC sharing.
class DensePatternCrosscheckTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DensePatternCrosscheckTest, CsceAgreesOnDensePatterns) {
  Rng rng(GetParam() * 104729 + 3);
  Graph data = testing::RandomGraph(rng, 14, 0.45, 2, 1, false);
  Graph pattern = testing::RandomGraph(rng, 6, 0.7, 2, 1, false);
  Ccsr gc = Ccsr::Build(data);
  CsceMatcher csce(&gc);
  for (auto variant :
       {MatchVariant::kEdgeInduced, MatchVariant::kVertexInduced,
        MatchVariant::kHomomorphic}) {
    MatchOptions options;
    options.variant = variant;
    MatchResult r;
    ASSERT_TRUE(csce.Match(pattern, options, &r).ok());
    EXPECT_EQ(r.embeddings, CountEmbeddingsBruteForce(data, pattern, variant))
        << VariantName(variant);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DensePatternCrosscheckTest,
                         ::testing::Range<uint64_t>(0, 10));

// Larger patterns than the oracle can handle: matchers cross-check each
// other instead (CSCE vs backtracking), which scales further.
class LargePatternAgreementTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(LargePatternAgreementTest, CsceAgreesWithBacktracking) {
  Rng rng(GetParam() * 31337 + 11);
  Graph data = testing::RandomGraph(rng, 60, 0.12, 3, 1, false);
  Graph pattern = testing::RandomGraph(rng, 8, 0.35, 3, 1, false);
  Ccsr gc = Ccsr::Build(data);
  CsceMatcher csce(&gc);
  BacktrackingMatcher bt(&data);
  for (auto variant :
       {MatchVariant::kEdgeInduced, MatchVariant::kVertexInduced,
        MatchVariant::kHomomorphic}) {
    MatchOptions mo;
    mo.variant = variant;
    MatchResult mr;
    ASSERT_TRUE(csce.Match(pattern, mo, &mr).ok());
    BaselineOptions bo;
    bo.variant = variant;
    BaselineResult br;
    ASSERT_TRUE(bt.Match(pattern, bo, &br).ok());
    EXPECT_EQ(mr.embeddings, br.embeddings) << VariantName(variant);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LargePatternAgreementTest,
                         ::testing::Range<uint64_t>(0, 12));

// Observability is a pure observer: running the same query with trace
// recording installed (and the metric registry freshly reset) must
// produce exactly the same embeddings and ExecStats-level counters as
// an uninstrumented run, for every variant.
class InstrumentationInvarianceTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InstrumentationInvarianceTest, TracingDoesNotPerturbExecution) {
  Rng rng(GetParam() * 2654435761u + 5);
  Graph data = testing::RandomGraph(rng, 20, 0.25, 3, 2, false);
  Graph pattern = testing::RandomGraph(rng, 5, 0.5, 3, 2, false);
  Ccsr gc = Ccsr::Build(data);
  CsceMatcher csce(&gc);

  for (auto variant :
       {MatchVariant::kEdgeInduced, MatchVariant::kVertexInduced,
        MatchVariant::kHomomorphic}) {
    SCOPED_TRACE(VariantName(variant));
    MatchOptions options;
    options.variant = variant;

    MatchResult plain;
    ASSERT_TRUE(csce.Match(pattern, options, &plain).ok());

    obs::MetricRegistry::Global().ResetForTesting();
    obs::TraceRecorder recorder;
    obs::TraceRecorder::Install(&recorder);
    MatchResult traced;
    Status st = csce.Match(pattern, options, &traced);
    obs::TraceRecorder::Install(nullptr);
    ASSERT_TRUE(st.ok());
    EXPECT_GT(recorder.NumEvents(), 0u);

    EXPECT_EQ(traced.embeddings, plain.embeddings);
    EXPECT_EQ(traced.search_nodes, plain.search_nodes);
    EXPECT_EQ(traced.candidate_sets_computed, plain.candidate_sets_computed);
    EXPECT_EQ(traced.candidate_sets_reused, plain.candidate_sets_reused);
    EXPECT_EQ(traced.timed_out, plain.timed_out);
    EXPECT_EQ(traced.limit_reached, plain.limit_reached);
    EXPECT_EQ(traced.clusters_read, plain.clusters_read);

    // And the flushed counters agree with the run they observed.
    obs::MetricsSnapshot snap = obs::MetricRegistry::Global().Snapshot();
    EXPECT_EQ(snap.counters["engine.embeddings"], traced.embeddings);
    EXPECT_EQ(snap.counters["engine.search_nodes"], traced.search_nodes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InstrumentationInvarianceTest,
                         ::testing::Range<uint64_t>(0, 6));

}  // namespace
}  // namespace csce
