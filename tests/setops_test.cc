#include "engine/setops/setops.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <vector>

#include "engine/matcher.h"
#include "engine/setops/vertex_scratch.h"
#include "gen/pattern_gen.h"
#include "obs/metrics.h"
#include "tests/test_util.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace csce {
namespace {

using setops::Kernel;
using setops::kOutPad;

// Value no kernel should ever produce from our inputs: marks the
// region past the contractual output capacity, which must survive
// every call untouched (catches out-of-bounds SIMD stores).
constexpr VertexId kCanary = 0xDEADBEEFu;

std::vector<Kernel> SupportedKernels() {
  std::vector<Kernel> kernels = {Kernel::kScalar};
  if (setops::KernelSupported(Kernel::kSse)) kernels.push_back(Kernel::kSse);
  if (setops::KernelSupported(Kernel::kAvx2)) kernels.push_back(Kernel::kAvx2);
  return kernels;
}

// Sorted unique list of `n` values with gaps in [1, max_gap].
std::vector<VertexId> RandomSortedUnique(Rng& rng, size_t n,
                                         uint32_t max_gap) {
  std::vector<VertexId> v;
  v.reserve(n);
  VertexId x = 0;
  for (size_t i = 0; i < n; ++i) {
    x += 1 + static_cast<VertexId>(rng.Uniform(max_gap));
    v.push_back(x);
  }
  return v;
}

std::vector<VertexId> RefIntersect(const std::vector<VertexId>& a,
                                   const std::vector<VertexId>& b) {
  std::vector<VertexId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<VertexId> RefDifference(const std::vector<VertexId>& a,
                                    const std::vector<VertexId>& b) {
  std::vector<VertexId> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

// Runs the kernel into a canary-guarded buffer sized exactly to the
// documented capacity contract and checks nothing beyond it was
// written.
std::vector<VertexId> RunIntersect(Kernel k, const std::vector<VertexId>& a,
                                   const std::vector<VertexId>& b) {
  const size_t cap = std::min(a.size(), b.size()) + kOutPad;
  std::vector<VertexId> out(cap + 16, kCanary);
  size_t n = setops::IntersectWith(k, a, b, out.data());
  for (size_t i = cap; i < out.size(); ++i) {
    EXPECT_EQ(out[i], kCanary) << "intersect wrote past capacity at " << i;
  }
  EXPECT_LE(n, std::min(a.size(), b.size()));
  out.resize(n);
  return out;
}

std::vector<VertexId> RunDifference(Kernel k, const std::vector<VertexId>& a,
                                    const std::vector<VertexId>& b) {
  const size_t cap = a.size() + kOutPad;
  std::vector<VertexId> out(cap + 16, kCanary);
  size_t n = setops::DifferenceWith(k, a, b, out.data());
  for (size_t i = cap; i < out.size(); ++i) {
    EXPECT_EQ(out[i], kCanary) << "difference wrote past capacity at " << i;
  }
  EXPECT_LE(n, a.size());
  out.resize(n);
  return out;
}

void ExpectAllKernelsAgree(const std::vector<VertexId>& a,
                           const std::vector<VertexId>& b,
                           const std::string& label) {
  const std::vector<VertexId> want_and = RefIntersect(a, b);
  const std::vector<VertexId> want_sub = RefDifference(a, b);
  for (Kernel k : SupportedKernels()) {
    EXPECT_EQ(RunIntersect(k, a, b), want_and)
        << label << " intersect, kernel " << setops::KernelName(k) << ", |a|="
        << a.size() << " |b|=" << b.size();
    EXPECT_EQ(RunDifference(k, a, b), want_sub)
        << label << " difference, kernel " << setops::KernelName(k)
        << ", |a|=" << a.size() << " |b|=" << b.size();
  }
}

// --- Differential fuzz ----------------------------------------------

TEST(SetopsDifferentialTest, SizeGridAgainstReference) {
  // Sizes straddling every block boundary (SSE 4, AVX2 8) plus large.
  const size_t kSizes[] = {0, 1, 2, 7, 8, 9, 31, 32, 33, 1000, 65536};
  Rng rng(0x5e70b5u);
  for (size_t na : kSizes) {
    for (size_t nb : kSizes) {
      // Dense values (small gaps) so the lists overlap heavily.
      std::vector<VertexId> a = RandomSortedUnique(rng, na, 3);
      std::vector<VertexId> b = RandomSortedUnique(rng, nb, 3);
      ExpectAllKernelsAgree(a, b, "size-grid");
    }
  }
}

TEST(SetopsDifferentialTest, SkewRatiosAcrossGallopThreshold) {
  // Kernels delegate to galloping when |large|/|small| >= 32; probe
  // both sides of the threshold and far beyond it.
  Rng rng(0x9a110fu);
  const size_t kSmall[] = {1, 5, 64};
  const size_t kRatios[] = {16, 31, 32, 33, 64, 1024};
  for (size_t ns : kSmall) {
    for (size_t ratio : kRatios) {
      std::vector<VertexId> small_list = RandomSortedUnique(rng, ns, 40);
      std::vector<VertexId> large_list =
          RandomSortedUnique(rng, ns * ratio, 2);
      ExpectAllKernelsAgree(small_list, large_list, "skew small-first");
      ExpectAllKernelsAgree(large_list, small_list, "skew large-first");
    }
  }
}

TEST(SetopsDifferentialTest, StructuredCases) {
  Rng rng(0x57a71cu);
  std::vector<VertexId> base = RandomSortedUnique(rng, 1000, 5);

  // Identical lists.
  ExpectAllKernelsAgree(base, base, "identical");

  // Strict subset (every third element).
  std::vector<VertexId> subset;
  for (size_t i = 0; i < base.size(); i += 3) subset.push_back(base[i]);
  ExpectAllKernelsAgree(base, subset, "superset-vs-subset");
  ExpectAllKernelsAgree(subset, base, "subset-vs-superset");

  // Disjoint: interleaved (worst case for block merges) and fully
  // separated ranges.
  std::vector<VertexId> odd;
  for (VertexId v : base) odd.push_back(2 * v + 1);
  std::vector<VertexId> even;
  for (VertexId v : base) even.push_back(2 * v);
  ExpectAllKernelsAgree(odd, even, "interleaved-disjoint");
  std::vector<VertexId> shifted;
  for (VertexId v : base) shifted.push_back(v + 1'000'000);
  ExpectAllKernelsAgree(base, shifted, "range-disjoint");

  // Empty against everything.
  std::vector<VertexId> empty;
  ExpectAllKernelsAgree(empty, base, "empty-a");
  ExpectAllKernelsAgree(base, empty, "empty-b");
  ExpectAllKernelsAgree(empty, empty, "empty-both");
}

TEST(SetopsDifferentialTest, RandomizedManyRounds) {
  Rng rng(0xf022u);
  for (int round = 0; round < 200; ++round) {
    size_t na = rng.Uniform(300);
    size_t nb = rng.Uniform(300);
    uint32_t gap_a = 1 + static_cast<uint32_t>(rng.Uniform(8));
    uint32_t gap_b = 1 + static_cast<uint32_t>(rng.Uniform(8));
    std::vector<VertexId> a = RandomSortedUnique(rng, na, gap_a);
    std::vector<VertexId> b = RandomSortedUnique(rng, nb, gap_b);
    ExpectAllKernelsAgree(a, b, "random-round");
  }
}

TEST(SetopsDifferentialTest, DifferenceInPlaceAliasing) {
  // Difference documents in-place support: out == a.data().
  Rng rng(0xa11a5u);
  for (Kernel k : SupportedKernels()) {
    for (size_t na : {size_t{9}, size_t{33}, size_t{1000}}) {
      std::vector<VertexId> a = RandomSortedUnique(rng, na, 3);
      std::vector<VertexId> b = RandomSortedUnique(rng, na, 3);
      std::vector<VertexId> want = RefDifference(a, b);
      std::vector<VertexId> acc = a;
      acc.resize(setops::DifferenceWith(k, acc, b, acc.data()));
      EXPECT_EQ(acc, want) << "in-place, kernel " << setops::KernelName(k);
      // And against an empty b (the memcpy path must tolerate aliasing).
      acc = a;
      acc.resize(setops::DifferenceWith(k, acc, {}, acc.data()));
      EXPECT_EQ(acc, a);
    }
  }
}

// --- Dense multi-list difference ------------------------------------

TEST(SetopsBitmapDifferenceTest, MatchesSequentialDifference) {
  Rng rng(0xb1757u);
  std::vector<VertexId> acc = RandomSortedUnique(rng, 2000, 4);
  std::vector<std::vector<VertexId>> removals;
  for (int i = 0; i < 5; ++i) {
    removals.push_back(RandomSortedUnique(rng, 500, 16));
  }
  std::vector<VertexId> want = acc;
  for (const std::vector<VertexId>& r : removals) want = RefDifference(want, r);

  std::vector<std::span<const VertexId>> lists(removals.begin(),
                                               removals.end());
  VertexId universe = acc.back();
  for (const std::vector<VertexId>& r : removals) {
    universe = std::max(universe, r.back());
  }
  DynamicBitset marks;
  marks.Resize(universe + 1);
  marks.Reset();
  std::vector<VertexId> got = acc;
  got.resize(setops::DifferenceManyBitmap(got.data(), got.size(), lists,
                                          &marks));
  EXPECT_EQ(got, want);
  // The all-zero contract: the call must clear exactly what it set.
  for (VertexId v = 0; v <= universe; ++v) {
    ASSERT_FALSE(marks.Test(v)) << "stale mark at " << v;
  }
}

TEST(SetopsBitmapDifferenceTest, PolicySwitchesOnClusterShape) {
  // One list never pays for marking; many long scans over a large
  // accumulator do.
  EXPECT_FALSE(setops::UseBitmapDifference(10'000, 1, 100));
  EXPECT_FALSE(setops::UseBitmapDifference(8, 16, 10));  // tiny accumulator
  EXPECT_TRUE(setops::UseBitmapDifference(10'000, 8, 2'000));
  // Removals dwarf the accumulator: repeated merges are cheaper.
  EXPECT_FALSE(setops::UseBitmapDifference(64, 2, 1'000'000));
}

// --- VertexScratch --------------------------------------------------

TEST(VertexScratchTest, ReserveIsNotCountedButHotGrowthIs) {
  setops::VertexScratch::ResetHotGrowthCountForTesting();
  setops::VertexScratch s;
  s.Reserve(128);
  EXPECT_EQ(setops::VertexScratch::HotGrowthCountForTesting(), 0u);
  EXPECT_GE(s.capacity(), 128u);
  EXPECT_EQ(s.size(), 0u);

  s.EnsureCapacity(64);  // within capacity: no growth
  EXPECT_EQ(setops::VertexScratch::HotGrowthCountForTesting(), 0u);
  s.EnsureCapacity(256);  // must grow: counted
  EXPECT_EQ(setops::VertexScratch::HotGrowthCountForTesting(), 1u);
  EXPECT_GE(s.capacity(), 256u);
  setops::VertexScratch::ResetHotGrowthCountForTesting();
}

TEST(VertexScratchTest, AssignCompareAndMutate) {
  setops::VertexScratch a;
  setops::VertexScratch b;
  const std::vector<VertexId> values = {3, 5, 8, 13};
  a.Assign(values);
  b.Assign(values);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(a[2], 8u);
  b.pop_back();
  EXPECT_FALSE(a == b);
  b.push_back(13);
  EXPECT_TRUE(a == b);
  a.clear();
  EXPECT_TRUE(a.empty());
  EXPECT_GE(a.capacity(), 4u);  // clear keeps storage
}

// --- Dispatch -------------------------------------------------------

TEST(SetopsDispatchTest, EnvOverridesPinKernels) {
  // Each gtest case runs in its own process under ctest, but restore
  // the variables anyway for in-process filters.
  const char* saved_force = std::getenv("CSCE_FORCE_SCALAR");
  const char* saved_setops = std::getenv("CSCE_SETOPS");

  setenv("CSCE_FORCE_SCALAR", "1", 1);
  EXPECT_EQ(setops::ChooseKernelFromEnv(), Kernel::kScalar);
  setenv("CSCE_FORCE_SCALAR", "0", 1);  // "0" means off
  unsetenv("CSCE_SETOPS");
  Kernel widest = setops::ChooseKernelFromEnv();
  EXPECT_TRUE(setops::KernelSupported(widest));

  setenv("CSCE_SETOPS", "scalar", 1);
  EXPECT_EQ(setops::ChooseKernelFromEnv(), Kernel::kScalar);
  if (setops::KernelSupported(Kernel::kSse)) {
    setenv("CSCE_SETOPS", "sse", 1);
    EXPECT_EQ(setops::ChooseKernelFromEnv(), Kernel::kSse);
  }
  // FORCE_SCALAR wins over CSCE_SETOPS.
  setenv("CSCE_FORCE_SCALAR", "1", 1);
  setenv("CSCE_SETOPS", "avx2", 1);
  EXPECT_EQ(setops::ChooseKernelFromEnv(), Kernel::kScalar);

  if (saved_force != nullptr) {
    setenv("CSCE_FORCE_SCALAR", saved_force, 1);
  } else {
    unsetenv("CSCE_FORCE_SCALAR");
  }
  if (saved_setops != nullptr) {
    setenv("CSCE_SETOPS", saved_setops, 1);
  } else {
    unsetenv("CSCE_SETOPS");
  }
}

TEST(SetopsDispatchTest, KernelNamesAreStable) {
  EXPECT_STREQ(setops::KernelName(Kernel::kScalar), "scalar");
  EXPECT_STREQ(setops::KernelName(Kernel::kSse), "sse");
  EXPECT_STREQ(setops::KernelName(Kernel::kAvx2), "avx2");
}

TEST(SetopsDispatchTest, SetKernelForTestingRedirectsDispatch) {
  Kernel original = setops::ActiveKernel();
  setops::SetKernelForTesting(Kernel::kScalar);
  EXPECT_EQ(setops::ActiveKernel(), Kernel::kScalar);

  std::vector<VertexId> a = {1, 2, 3, 4, 5};
  std::vector<VertexId> b = {2, 4, 6};
  std::vector<VertexId> out(a.size() + kOutPad);
  out.resize(setops::Intersect(a, b, out.data()));
  EXPECT_EQ(out, (std::vector<VertexId>{2, 4}));

  setops::SetKernelForTesting(original);
  EXPECT_EQ(setops::ActiveKernel(), original);
}

// --- Engine crosscheck: forced scalar vs SIMD -----------------------

struct EngineOutcome {
  MatchResult result;
  obs::HistogramData hist;  // engine.candidate_set_size
  std::vector<std::vector<VertexId>> embeddings;
};

EngineOutcome RunEngine(const Ccsr& gc, const Graph& pattern,
                        MatchVariant variant, uint32_t threads) {
  obs::MetricRegistry::Global().ResetForTesting();
  CsceMatcher matcher(&gc);
  MatchOptions options;
  options.variant = variant;
  options.num_threads = threads;
  if (threads > 1) options.morsel_size = 2;
  EngineOutcome outcome;
  std::mutex mu;
  Status st = matcher.MatchWithCallback(
      pattern, options,
      [&](std::span<const VertexId> mapping) {
        std::lock_guard<std::mutex> lock(mu);
        outcome.embeddings.emplace_back(mapping.begin(), mapping.end());
        return true;
      },
      &outcome.result);
  EXPECT_TRUE(st.ok()) << st.ToString();
  std::sort(outcome.embeddings.begin(), outcome.embeddings.end());
  obs::MetricsSnapshot snap = obs::MetricRegistry::Global().Snapshot();
  outcome.hist = snap.histograms["engine.candidate_set_size"];
  return outcome;
}

void CrosscheckKernels(const Ccsr& gc, const Graph& pattern,
                       MatchVariant variant) {
  Kernel widest = setops::ActiveKernel();
  for (uint32_t threads : {1u, 8u}) {
    setops::SetKernelForTesting(Kernel::kScalar);
    EngineOutcome scalar = RunEngine(gc, pattern, variant, threads);
    setops::SetKernelForTesting(widest);
    EngineOutcome simd = RunEngine(gc, pattern, variant, threads);

    // The embedding set and the work-defining counters must be
    // bit-identical whichever kernel ran.
    EXPECT_EQ(scalar.embeddings, simd.embeddings) << "threads=" << threads;
    EXPECT_EQ(scalar.result.embeddings, simd.result.embeddings);
    EXPECT_EQ(scalar.result.search_nodes, simd.result.search_nodes)
        << "threads=" << threads;
    EXPECT_EQ(scalar.result.candidate_sets_computed +
                  scalar.result.candidate_sets_reused,
              simd.result.candidate_sets_computed +
                  simd.result.candidate_sets_reused)
        << "threads=" << threads;
    if (threads == 1) {
      // Serially even the cache hit pattern and the candidate-set size
      // distribution are deterministic and kernel-independent.
      EXPECT_EQ(scalar.result.candidate_sets_computed,
                simd.result.candidate_sets_computed);
      EXPECT_EQ(scalar.result.candidate_sets_reused,
                simd.result.candidate_sets_reused);
      EXPECT_EQ(scalar.hist.count, simd.hist.count);
      EXPECT_DOUBLE_EQ(scalar.hist.sum, simd.hist.sum);
      EXPECT_DOUBLE_EQ(scalar.hist.min, simd.hist.min);
      EXPECT_DOUBLE_EQ(scalar.hist.max, simd.hist.max);
      EXPECT_EQ(scalar.hist.buckets, simd.hist.buckets);
    }
  }
}

TEST(SetopsEngineCrosscheckTest, UnlabeledCliqueAllVariants) {
  Ccsr gc = Ccsr::Build(testing::Clique(9));
  Graph pattern = testing::Cycle(4);
  for (MatchVariant variant :
       {MatchVariant::kHomomorphic, MatchVariant::kEdgeInduced,
        MatchVariant::kVertexInduced}) {
    CrosscheckKernels(gc, pattern, variant);
  }
}

TEST(SetopsEngineCrosscheckTest, LabeledRandomGraphSampledPatterns) {
  Rng rng(20260806);
  Graph data = testing::RandomGraph(rng, 64, 0.15, 3, 2, false);
  Ccsr gc = Ccsr::Build(data);
  std::vector<Graph> patterns;
  ASSERT_TRUE(SamplePatterns(data, 4, PatternDensity::kDense, 2,
                             /*seed=*/7, &patterns)
                  .ok());
  for (const Graph& pattern : patterns) {
    for (MatchVariant variant :
         {MatchVariant::kHomomorphic, MatchVariant::kEdgeInduced,
          MatchVariant::kVertexInduced}) {
      CrosscheckKernels(gc, pattern, variant);
    }
  }
}

// --- Zero-allocation discipline -------------------------------------

TEST(SetopsZeroAllocTest, PrepareBoundsCoverTheWholeRun) {
  // Any EnsureCapacity growth inside the enumeration bumps the
  // process-wide hot-growth counter; a correct Prepare() sizes every
  // scratch buffer so the counter never moves. Exercised across all
  // variants (vertex-induced hits the negation/difference paths) and
  // both serial and morsel-parallel execution.
  Rng rng(99);
  Graph data = testing::RandomGraph(rng, 80, 0.12, 3, 2, false);
  Ccsr gc = Ccsr::Build(data);
  std::vector<Graph> patterns;
  ASSERT_TRUE(SamplePatterns(data, 4, PatternDensity::kDense, 2,
                             /*seed=*/11, &patterns)
                  .ok());
  patterns.push_back(testing::Cycle(3));  // label-0 pattern, label scan mix

  setops::VertexScratch::ResetHotGrowthCountForTesting();
  CsceMatcher matcher(&gc);
  for (const Graph& pattern : patterns) {
    for (MatchVariant variant :
         {MatchVariant::kHomomorphic, MatchVariant::kEdgeInduced,
          MatchVariant::kVertexInduced}) {
      for (uint32_t threads : {1u, 4u}) {
        MatchOptions options;
        options.variant = variant;
        options.num_threads = threads;
        MatchResult result;
        ASSERT_TRUE(matcher.Match(pattern, options, &result).ok());
      }
    }
  }
  EXPECT_EQ(setops::VertexScratch::HotGrowthCountForTesting(), 0u)
      << "a Prepare() candidate bound was too small somewhere";
}

}  // namespace
}  // namespace csce
