#include "plan/symmetry.h"

#include <gtest/gtest.h>

#include "baselines/backtracking.h"
#include "graph/isomorphism.h"
#include "tests/test_util.h"

namespace csce {
namespace {

TEST(SymmetryTest, AsymmetricPatternNeedsNoRestrictions) {
  Graph p = testing::MakeGraph(false, {0, 1, 2}, {{0, 1, 0}, {1, 2, 0}});
  SymmetryInfo info = ComputeSymmetryBreaking(p);
  EXPECT_EQ(info.automorphism_count, 1u);
  EXPECT_TRUE(info.restrictions.empty());
}

TEST(SymmetryTest, EdgeHasOneRestriction) {
  SymmetryInfo info = ComputeSymmetryBreaking(testing::Path(2));
  EXPECT_EQ(info.automorphism_count, 2u);
  ASSERT_EQ(info.restrictions.size(), 1u);
}

TEST(SymmetryTest, CliqueRestrictionsChain) {
  SymmetryInfo info = ComputeSymmetryBreaking(testing::Clique(4));
  EXPECT_EQ(info.automorphism_count, 24u);
  // Stabilizer chain: 3 + 2 + 1 pairwise restrictions.
  EXPECT_EQ(info.restrictions.size(), 6u);
}

// The crucial correctness property: canonical count * |Aut| == plain
// count, for assorted patterns on random data graphs.
class SymmetryCountTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SymmetryCountTest, CanonicalTimesAutEqualsTotal) {
  Rng rng(GetParam() * 57 + 1);
  Graph data = testing::RandomGraph(rng, 14, 0.3, 1, 1, false);
  Graph patterns[] = {testing::Path(3), testing::Cycle(3), testing::Cycle(4),
                      testing::Star(3), testing::Clique(3)};
  BacktrackingMatcher bt(&data);
  for (const Graph& p : patterns) {
    SymmetryInfo info = ComputeSymmetryBreaking(p);
    BaselineOptions options;
    options.variant = MatchVariant::kEdgeInduced;
    BaselineResult plain;
    BaselineResult canonical;
    ASSERT_TRUE(bt.Match(p, options, &plain).ok());
    ASSERT_TRUE(
        bt.MatchWithRestrictions(p, options, info.restrictions, &canonical)
            .ok());
    EXPECT_EQ(canonical.embeddings * info.automorphism_count,
              plain.embeddings);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymmetryCountTest,
                         ::testing::Range<uint64_t>(0, 10));

TEST(SymmetryTest, GenerationCostGrowsWithUnlabeledPatternSize) {
  // Finding 2's mechanism: |Aut| of a clique is n!, so enumeration cost
  // explodes. Verify the group sizes rather than wall time.
  EXPECT_EQ(ComputeSymmetryBreaking(testing::Clique(3)).automorphism_count,
            6u);
  EXPECT_EQ(ComputeSymmetryBreaking(testing::Clique(5)).automorphism_count,
            120u);
  EXPECT_EQ(ComputeSymmetryBreaking(testing::Clique(6)).automorphism_count,
            720u);
}

}  // namespace
}  // namespace csce
