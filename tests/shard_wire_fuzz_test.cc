// Wire-protocol hardening corpus, in the io_fuzz_corpus_test mold:
// frames and payloads cross process boundaries, so every decoder must
// turn arbitrary damage — truncation, bad magic, oversized length
// prefixes, single-byte flips — into a Status, never a crash, an
// abort, or an unbounded allocation. The sanitizer CI runs this file
// under ASan/UBSan.

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "ccsr/ccsr.h"
#include "gen/datasets.h"
#include "plan/planner.h"
#include "shard/wire.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace csce {
namespace shard {
namespace wire {
namespace {

// ---------------------------------------------------------------------------
// Reference messages (valid by construction).

LoadRequest MakeLoadRequest() {
  LoadRequest msg;
  msg.shard_id = 2;
  msg.num_shards = 4;
  msg.num_threads = 3;
  msg.inline_payload = true;
  msg.ccsr_blob = std::string("\x01\x02\x03\x00\x7f", 5);
  msg.owner = {0, 1, 2, 3, 0, 1};
  return msg;
}

struct PlannedQuery {
  Graph pattern;
  Plan plan;
};

PlannedQuery MakePlannedQuery() {
  PlannedQuery q;
  Graph data = datasets::Yeast();
  Ccsr index = Ccsr::Build(data);
  Rng rng(11);
  q.pattern = csce::testing::RandomGraph(rng, 5, 0.7, 3, 1, false);
  Status st = Planner(&index).MakePlan(
      q.pattern, MatchVariant::kEdgeInduced, PlanOptions{}, &q.plan);
  CSCE_CHECK(st.ok());
  return q;
}

PlanRequest MakePlanRequest() {
  PlannedQuery q = MakePlannedQuery();
  PlanRequest msg;
  msg.pattern = q.pattern;
  msg.plan = q.plan;
  msg.variant = MatchVariant::kEdgeInduced;
  msg.verify_sce = true;
  msg.emit_embeddings = true;
  msg.time_limit_seconds = 1.5;
  return msg;
}

TaskBatch MakeTaskBatch() {
  TaskBatch msg;
  ShardTask verify;
  verify.kind = ShardTask::Kind::kVerify;
  verify.target_shard = 1;
  verify.depth = 2;
  verify.mapping = {7, 9};
  verify.candidates = {1, 4, 8};
  msg.tasks.push_back(verify);
  ShardTask forward;
  forward.kind = ShardTask::Kind::kForward;
  forward.target_shard = 3;
  forward.depth = 1;
  forward.mapping = {12};
  msg.tasks.push_back(forward);
  ShardTask local;
  local.kind = ShardTask::Kind::kLocalOnly;
  local.target_shard = 0;
  local.depth = 3;
  local.mapping = {1, 2, 3};
  msg.tasks.push_back(local);
  return msg;
}

ResultMsg MakeResultMsg() {
  ResultMsg msg;
  msg.embeddings = 2;
  msg.search_nodes = 17;
  msg.candidate_sets_computed = 5;
  msg.candidate_sets_reused = 3;
  msg.morsels_claimed = 4;
  msg.timed_out = false;
  msg.limit_reached = true;
  msg.seconds = 0.25;
  msg.embedding_width = 3;
  msg.embedding_data = {1, 2, 3, 9, 8, 7};
  return msg;
}

// ---------------------------------------------------------------------------
// Round trips: the decoders accept what the encoders produce, exactly.

TEST(ShardWireTest, FrameRoundTrip) {
  Frame frame{static_cast<uint32_t>(MsgType::kExtend), "payload-bytes"};
  std::string bytes;
  ASSERT_TRUE(EncodeFrame(frame, &bytes).ok());
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes + frame.payload.size());
  Frame decoded;
  size_t consumed = 0;
  ASSERT_TRUE(DecodeFrame(bytes, &decoded, &consumed).ok());
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(decoded.type, frame.type);
  EXPECT_EQ(decoded.payload, frame.payload);
}

TEST(ShardWireTest, LoadRequestRoundTrip) {
  LoadRequest msg = MakeLoadRequest();
  LoadRequest out;
  ASSERT_TRUE(DecodeLoadRequest(EncodeLoadRequest(msg), &out).ok());
  EXPECT_EQ(out.shard_id, msg.shard_id);
  EXPECT_EQ(out.num_shards, msg.num_shards);
  EXPECT_EQ(out.num_threads, msg.num_threads);
  EXPECT_EQ(out.inline_payload, msg.inline_payload);
  EXPECT_EQ(out.ccsr_blob, msg.ccsr_blob);
  EXPECT_EQ(out.owner, msg.owner);
}

TEST(ShardWireTest, PlanRequestRoundTrip) {
  PlanRequest msg = MakePlanRequest();
  PlanRequest out;
  ASSERT_TRUE(DecodePlanRequest(EncodePlanRequest(msg), &out).ok());
  EXPECT_EQ(out.variant, msg.variant);
  EXPECT_EQ(out.verify_sce, msg.verify_sce);
  EXPECT_EQ(out.emit_embeddings, msg.emit_embeddings);
  EXPECT_EQ(out.time_limit_seconds, msg.time_limit_seconds);
  EXPECT_EQ(out.pattern.NumVertices(), msg.pattern.NumVertices());
  EXPECT_EQ(out.pattern.NumEdges(), msg.pattern.NumEdges());
  ASSERT_EQ(out.plan.order, msg.plan.order);
  ASSERT_EQ(out.plan.positions.size(), msg.plan.positions.size());
  for (size_t j = 0; j < out.plan.positions.size(); ++j) {
    const PlanPosition& a = out.plan.positions[j];
    const PlanPosition& b = msg.plan.positions[j];
    EXPECT_EQ(a.u, b.u);
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.edges, b.edges);
    EXPECT_EQ(a.negations, b.negations);
    EXPECT_EQ(a.deps, b.deps);
    EXPECT_EQ(a.cache_alias, b.cache_alias);
    EXPECT_EQ(a.seed_valid, b.seed_valid);
    EXPECT_EQ(a.min_out_degree, b.min_out_degree);
    EXPECT_EQ(a.min_in_degree, b.min_in_degree);
  }
}

TEST(ShardWireTest, TaskBatchRoundTrip) {
  TaskBatch msg = MakeTaskBatch();
  TaskBatch out;
  ASSERT_TRUE(DecodeTaskBatch(EncodeTaskBatch(msg), &out).ok());
  ASSERT_EQ(out.tasks.size(), msg.tasks.size());
  for (size_t i = 0; i < out.tasks.size(); ++i) {
    EXPECT_EQ(out.tasks[i].kind, msg.tasks[i].kind);
    EXPECT_EQ(out.tasks[i].target_shard, msg.tasks[i].target_shard);
    EXPECT_EQ(out.tasks[i].depth, msg.tasks[i].depth);
    EXPECT_EQ(out.tasks[i].mapping, msg.tasks[i].mapping);
    EXPECT_EQ(out.tasks[i].candidates, msg.tasks[i].candidates);
  }
}

TEST(ShardWireTest, ResultMsgRoundTrip) {
  ResultMsg msg = MakeResultMsg();
  ResultMsg out;
  ASSERT_TRUE(DecodeResultMsg(EncodeResultMsg(msg), &out).ok());
  EXPECT_EQ(out.embeddings, msg.embeddings);
  EXPECT_EQ(out.search_nodes, msg.search_nodes);
  EXPECT_EQ(out.candidate_sets_computed, msg.candidate_sets_computed);
  EXPECT_EQ(out.candidate_sets_reused, msg.candidate_sets_reused);
  EXPECT_EQ(out.morsels_claimed, msg.morsels_claimed);
  EXPECT_EQ(out.limit_reached, msg.limit_reached);
  EXPECT_EQ(out.seconds, msg.seconds);
  EXPECT_EQ(out.embedding_width, msg.embedding_width);
  EXPECT_EQ(out.embedding_data, msg.embedding_data);
}

TEST(ShardWireTest, ErrorRoundTrip) {
  Status original = Status::NotFound("no such shard artifact");
  ErrorMsg msg;
  ASSERT_TRUE(DecodeError(EncodeError(original), &msg).ok());
  Status restored = ErrorToStatus(msg);
  EXPECT_EQ(restored.code(), original.code());
  EXPECT_EQ(restored.ToString(), original.ToString());
}

// ---------------------------------------------------------------------------
// Framing damage.

TEST(ShardWireFuzzTest, TruncatedFramesRejected) {
  Frame frame{static_cast<uint32_t>(MsgType::kExtend),
              EncodeTaskBatch(MakeTaskBatch())};
  std::string bytes;
  ASSERT_TRUE(EncodeFrame(frame, &bytes).ok());
  for (size_t len = 0; len < bytes.size(); ++len) {
    Frame out;
    size_t consumed = 0;
    EXPECT_FALSE(DecodeFrame(bytes.substr(0, len), &out, &consumed).ok())
        << "len=" << len;
  }
}

TEST(ShardWireFuzzTest, BadMagicRejected) {
  Frame frame{static_cast<uint32_t>(MsgType::kRoot), ""};
  std::string bytes;
  ASSERT_TRUE(EncodeFrame(frame, &bytes).ok());
  for (size_t i = 0; i < 4; ++i) {
    std::string bad = bytes;
    bad[i] ^= 0xFF;
    Frame out;
    size_t consumed = 0;
    EXPECT_FALSE(DecodeFrame(bad, &out, &consumed).ok()) << "byte " << i;
  }
}

TEST(ShardWireFuzzTest, OversizedLengthPrefixRejectedBeforeAllocation) {
  // A header claiming a payload beyond the cap must be rejected from
  // the 20 header bytes alone — long before any buffer is sized.
  std::string header(kFrameHeaderBytes, '\0');
  uint32_t magic = kFrameMagic;
  uint32_t type = static_cast<uint32_t>(MsgType::kExtend);
  uint64_t huge = kMaxFramePayload + 1;
  std::memcpy(&header[0], &magic, 4);
  std::memcpy(&header[4], &type, 4);
  std::memcpy(&header[8], &huge, 8);
  uint32_t got_type = 0;
  uint64_t got_len = 0;
  uint32_t got_crc = 0;
  EXPECT_FALSE(DecodeFrameHeader(header, &got_type, &got_len, &got_crc).ok());

  uint64_t absurd = ~0ull;
  std::memcpy(&header[8], &absurd, 8);
  EXPECT_FALSE(DecodeFrameHeader(header, &got_type, &got_len, &got_crc).ok());
}

// ---------------------------------------------------------------------------
// CRC framing: every single-byte flip in a frame is detected, except in
// the type field, which the CRC deliberately does not cover (the header
// fields are individually validated; an unknown type is rejected by the
// dispatch switch, not the framing).

TEST(ShardWireFuzzTest, PayloadCrcCatchesEverySingleByteFlip) {
  Frame frame{static_cast<uint32_t>(MsgType::kExtend),
              EncodeTaskBatch(MakeTaskBatch())};
  std::string bytes;
  ASSERT_TRUE(EncodeFrame(frame, &bytes).ok());
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string bad = bytes;
    bad[i] ^= 0xFF;
    Frame out;
    size_t consumed = 0;
    Status st = DecodeFrame(bad, &out, &consumed);
    if (i >= 4 && i < 8) {
      // The type field is outside the CRC: the frame still decodes, as
      // a different (and later rejected) message type.
      EXPECT_TRUE(st.ok()) << "type byte " << i;
      EXPECT_EQ(out.payload, frame.payload);
    } else {
      EXPECT_FALSE(st.ok()) << "byte " << i;
    }
  }
}

TEST(ShardWireFuzzTest, EmptyPayloadFramesCarryValidCrc) {
  // Heartbeats (kPing/kPong) and round kickoffs are empty-payload
  // frames; their CRC field must still round-trip and still reject
  // header damage.
  for (MsgType t : {MsgType::kPing, MsgType::kPong, MsgType::kRoot,
                    MsgType::kFinish}) {
    Frame frame{static_cast<uint32_t>(t), ""};
    std::string bytes;
    ASSERT_TRUE(EncodeFrame(frame, &bytes).ok());
    ASSERT_EQ(bytes.size(), kFrameHeaderBytes);
    Frame out;
    size_t consumed = 0;
    ASSERT_TRUE(DecodeFrame(bytes, &out, &consumed).ok());
    EXPECT_EQ(out.type, frame.type);
    // Damage the CRC field itself: must be rejected even with nothing
    // to checksum.
    for (size_t i = 16; i < 20; ++i) {
      std::string bad = bytes;
      bad[i] ^= 0x01;
      EXPECT_FALSE(DecodeFrame(bad, &out, &consumed).ok())
          << "type " << frame.type << " crc byte " << i;
    }
  }
}

TEST(ShardWireFuzzTest, Crc32KnownAnswer) {
  // IEEE 802.3 check value: CRC-32("123456789") == 0xCBF43926. Pins the
  // polynomial/reflection choice so both peers of a mixed-version pair
  // would disagree loudly, not subtly.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(ShardWireFuzzTest, PayloadCountsValidatedAgainstRemainingBytes) {
  // A vector claiming 2^31 entries inside a 16-byte payload must fail
  // without resizing the destination ("allocation bomb").
  PayloadWriter w;
  w.U32(0x7FFFFFFFu);  // element count
  w.U32(1);
  std::string payload = w.Take();
  PayloadReader r(payload);
  std::vector<uint32_t> out;
  EXPECT_FALSE(r.VecU32(&out).ok());
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------------
// Payload damage sweeps: truncate at every length and flip every byte;
// the decoders must return (any) Status or decode something — and
// never crash. ASan/UBSan turn latent over-reads into test failures.

void SweepPayload(const std::string& payload,
                  const std::function<Status(std::string_view)>& decode) {
  for (size_t len = 0; len < payload.size(); ++len) {
    (void)decode(std::string_view(payload).substr(0, len));
  }
  for (size_t i = 0; i < payload.size(); ++i) {
    std::string bad = payload;
    bad[i] ^= 0xFF;
    (void)decode(bad);
  }
  for (size_t i = 0; i < payload.size(); ++i) {
    std::string bad = payload;
    bad[i] ^= 0x01;  // low-bit flips catch off-by-one count damage
    (void)decode(bad);
  }
  // The undamaged payload still decodes after the sweep (the decoder
  // has no hidden state).
  EXPECT_TRUE(decode(payload).ok());
}

TEST(ShardWireFuzzTest, LoadRequestSweep) {
  SweepPayload(EncodeLoadRequest(MakeLoadRequest()),
               [](std::string_view bytes) {
                 LoadRequest out;
                 return DecodeLoadRequest(bytes, &out);
               });
}

TEST(ShardWireFuzzTest, PlanRequestSweep) {
  SweepPayload(EncodePlanRequest(MakePlanRequest()),
               [](std::string_view bytes) {
                 PlanRequest out;
                 return DecodePlanRequest(bytes, &out);
               });
}

TEST(ShardWireFuzzTest, TaskBatchSweep) {
  SweepPayload(EncodeTaskBatch(MakeTaskBatch()),
               [](std::string_view bytes) {
                 TaskBatch out;
                 return DecodeTaskBatch(bytes, &out);
               });
}

TEST(ShardWireFuzzTest, ResultMsgSweep) {
  SweepPayload(EncodeResultMsg(MakeResultMsg()),
               [](std::string_view bytes) {
                 ResultMsg out;
                 return DecodeResultMsg(bytes, &out);
               });
}

TEST(ShardWireFuzzTest, ErrorMsgSweep) {
  SweepPayload(EncodeError(Status::Corruption("payload damage sweep")),
               [](std::string_view bytes) {
                 ErrorMsg out;
                 return DecodeError(bytes, &out);
               });
}

TEST(ShardWireTest, HelloRoundTrip) {
  HelloMsg msg;
  msg.peer_role = "coordinator";
  HelloMsg out;
  ASSERT_TRUE(DecodeHello(EncodeHello(msg), &out).ok());
  EXPECT_EQ(out.protocol_version, kProtocolVersion);
  EXPECT_EQ(out.peer_role, msg.peer_role);
}

TEST(ShardWireFuzzTest, HelloSweep) {
  HelloMsg msg;
  msg.peer_role = "worker";
  SweepPayload(EncodeHello(msg), [](std::string_view bytes) {
    HelloMsg out;
    return DecodeHello(bytes, &out);
  });
}

TEST(ShardWireFuzzTest, TruncatedHandshakeFramesRejected) {
  HelloMsg msg;
  msg.peer_role = "coordinator";
  Frame frame{static_cast<uint32_t>(MsgType::kHello), EncodeHello(msg)};
  std::string bytes;
  ASSERT_TRUE(EncodeFrame(frame, &bytes).ok());
  for (size_t len = 0; len < bytes.size(); ++len) {
    Frame out;
    size_t consumed = 0;
    EXPECT_FALSE(DecodeFrame(bytes.substr(0, len), &out, &consumed).ok())
        << "len=" << len;
  }
}

TEST(ShardWireFuzzTest, RandomBytesNeverCrashAnyDecoder) {
  Rng rng(1234);
  for (int round = 0; round < 200; ++round) {
    size_t len = rng.Uniform(256);
    std::string junk(len, '\0');
    for (char& c : junk) c = static_cast<char>(rng.Uniform(256));
    LoadRequest lr;
    (void)DecodeLoadRequest(junk, &lr);
    PlanRequest pr;
    (void)DecodePlanRequest(junk, &pr);
    TaskBatch tb;
    (void)DecodeTaskBatch(junk, &tb);
    ResultMsg res;
    (void)DecodeResultMsg(junk, &res);
    ErrorMsg err;
    (void)DecodeError(junk, &err);
    HelloMsg hello;
    (void)DecodeHello(junk, &hello);
    Frame frame;
    size_t consumed = 0;
    (void)DecodeFrame(junk, &frame, &consumed);
  }
}

}  // namespace
}  // namespace wire
}  // namespace shard
}  // namespace csce
