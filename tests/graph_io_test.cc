#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "tests/test_util.h"

namespace csce {
namespace {

TEST(GraphIoTest, ParsesMinimalGraph) {
  const std::string text =
      "# a comment\n"
      "t undirected 3 2\n"
      "v 0 1\n"
      "v 1 2\n"
      "v 2 1\n"
      "e 0 1 5\n"
      "e 1 2\n";
  Graph g;
  ASSERT_TRUE(LoadGraphFromString(text, &g).ok());
  EXPECT_FALSE(g.directed());
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.VertexLabel(1), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1, 5));
  EXPECT_TRUE(g.HasEdge(1, 2, 0));  // elabel defaults to 0
}

TEST(GraphIoTest, ParsesDirected) {
  Graph g;
  ASSERT_TRUE(
      LoadGraphFromString("t directed 2 1\nv 0 0\nv 1 0\ne 0 1 0\n", &g).ok());
  EXPECT_TRUE(g.directed());
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
}

TEST(GraphIoTest, RejectsMissingHeader) {
  Graph g;
  EXPECT_EQ(LoadGraphFromString("v 0 0\n", &g).code(),
            StatusCode::kCorruption);
}

TEST(GraphIoTest, RejectsBadDirection) {
  Graph g;
  EXPECT_EQ(LoadGraphFromString("t sideways 1 0\nv 0 0\n", &g).code(),
            StatusCode::kCorruption);
}

TEST(GraphIoTest, RejectsVertexCountMismatch) {
  Graph g;
  EXPECT_EQ(LoadGraphFromString("t undirected 2 0\nv 0 0\n", &g).code(),
            StatusCode::kCorruption);
}

TEST(GraphIoTest, RejectsUnknownRecord) {
  Graph g;
  EXPECT_EQ(LoadGraphFromString("t undirected 1 0\nv 0 0\nx 1 2\n", &g).code(),
            StatusCode::kCorruption);
}

TEST(GraphIoTest, RejectsVertexIdOutOfRange) {
  Graph g;
  EXPECT_EQ(LoadGraphFromString("t undirected 1 0\nv 5 0\n", &g).code(),
            StatusCode::kCorruption);
}

TEST(GraphIoTest, MissingFileIsIOError) {
  Graph g;
  EXPECT_EQ(LoadGraphFromFile("/nonexistent/path/graph.txt", &g).code(),
            StatusCode::kIOError);
}

TEST(GraphIoTest, RoundTripsUndirected) {
  Rng rng(11);
  Graph g = testing::RandomGraph(rng, 20, 0.2, 3, 2, false);
  std::ostringstream out;
  ASSERT_TRUE(SaveGraphToStream(g, out).ok());
  Graph back;
  ASSERT_TRUE(LoadGraphFromString(out.str(), &back).ok());
  EXPECT_EQ(back.NumVertices(), g.NumVertices());
  EXPECT_EQ(back.NumEdges(), g.NumEdges());
  EXPECT_EQ(back.Edges(), g.Edges());
  EXPECT_EQ(back.vertex_labels(), g.vertex_labels());
}

TEST(GraphIoTest, RoundTripsDirected) {
  Rng rng(12);
  Graph g = testing::RandomGraph(rng, 20, 0.2, 3, 2, true);
  std::ostringstream out;
  ASSERT_TRUE(SaveGraphToStream(g, out).ok());
  Graph back;
  ASSERT_TRUE(LoadGraphFromString(out.str(), &back).ok());
  EXPECT_TRUE(back.directed());
  EXPECT_EQ(back.Edges(), g.Edges());
}

}  // namespace
}  // namespace csce
