#include "plan/planner.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_util.h"

namespace csce {
namespace {

using testing::MakeGraph;

void ExpectPlanWellFormed(const Plan& plan, const Graph& pattern) {
  const uint32_t n = pattern.NumVertices();
  ASSERT_EQ(plan.order.size(), n);
  ASSERT_EQ(plan.positions.size(), n);
  std::vector<bool> seen(n, false);
  for (VertexId v : plan.order) {
    ASSERT_LT(v, n);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
  for (uint32_t j = 0; j < n; ++j) {
    const PlanPosition& pos = plan.positions[j];
    EXPECT_EQ(pos.u, plan.order[j]);
    EXPECT_EQ(pos.label, pattern.VertexLabel(pos.u));
    for (const EdgeConstraint& e : pos.edges) EXPECT_LT(e.pos, j);
    for (const NegConstraint& c : pos.negations) EXPECT_LT(c.pos, j);
    EXPECT_TRUE(std::is_sorted(pos.deps.begin(), pos.deps.end()));
    for (uint32_t d : pos.deps) EXPECT_LT(d, j);
    if (pos.cache_alias >= 0) {
      const PlanPosition& alias = plan.positions[pos.cache_alias];
      EXPECT_LT(static_cast<uint32_t>(pos.cache_alias), j);
      EXPECT_EQ(alias.edges, pos.edges);
      EXPECT_EQ(alias.negations, pos.negations);
      EXPECT_EQ(alias.deps, pos.deps);
    }
    if (pos.edges.empty() && pattern.Degree(pos.u) > 0) {
      EXPECT_TRUE(pos.seed_valid);
    }
    if (plan.variant != MatchVariant::kVertexInduced) {
      EXPECT_TRUE(pos.negations.empty());
    }
  }
  // Backward edge constraints cover every pattern edge exactly once.
  size_t constraint_arcs = 0;
  for (const PlanPosition& pos : plan.positions) {
    constraint_arcs += pos.edges.size();
  }
  size_t pattern_arcs =
      pattern.directed() ? pattern.NumEdges() : pattern.NumEdges();
  EXPECT_EQ(constraint_arcs, pattern_arcs);
}

class PlannerVariantTest : public ::testing::TestWithParam<MatchVariant> {};

TEST_P(PlannerVariantTest, PlansAreWellFormedOnRandomPatterns) {
  Rng rng(61);
  for (int i = 0; i < 10; ++i) {
    bool directed = i % 2 == 1;
    Graph data = testing::RandomGraph(rng, 40, 0.2, 3, 2, directed);
    Graph pattern = testing::RandomGraph(rng, 6, 0.5, 3, 2, directed);
    Ccsr gc = Ccsr::Build(data);
    Planner planner(&gc);
    Plan plan;
    ASSERT_TRUE(
        planner.MakePlan(pattern, GetParam(), PlanOptions{}, &plan).ok());
    ExpectPlanWellFormed(plan, pattern);
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, PlannerVariantTest,
                         ::testing::Values(MatchVariant::kEdgeInduced,
                                           MatchVariant::kVertexInduced,
                                           MatchVariant::kHomomorphic));

TEST(PlannerTest, RejectsEmptyPattern) {
  Graph data = testing::Clique(3);
  Ccsr gc = Ccsr::Build(data);
  Planner planner(&gc);
  GraphBuilder b(false);
  Graph empty;
  ASSERT_TRUE(b.Build(&empty).ok());
  Plan plan;
  EXPECT_EQ(planner
                .MakePlan(empty, MatchVariant::kEdgeInduced, PlanOptions{},
                          &plan)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(PlannerTest, RejectsDirectednessMismatch) {
  Graph data = testing::Clique(3);
  Ccsr gc = Ccsr::Build(data);
  Planner planner(&gc);
  Graph pattern = MakeGraph(true, {0, 0}, {{0, 1, 0}});
  Plan plan;
  EXPECT_EQ(planner
                .MakePlan(pattern, MatchVariant::kEdgeInduced, PlanOptions{},
                          &plan)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(PlannerTest, NecAliasesStarLeaves) {
  Graph data = testing::Star(10);
  Ccsr gc = Ccsr::Build(data);
  Planner planner(&gc);
  Plan plan;
  ASSERT_TRUE(planner
                  .MakePlan(testing::Star(4), MatchVariant::kEdgeInduced,
                            PlanOptions{}, &plan)
                  .ok());
  // All leaves hang off the center; positions 2..4 should alias 1.
  int aliased = 0;
  for (const PlanPosition& pos : plan.positions) {
    aliased += pos.cache_alias >= 0;
  }
  EXPECT_EQ(aliased, 3);
}

TEST(PlannerTest, NecOffDisablesAliases) {
  Graph data = testing::Star(10);
  Ccsr gc = Ccsr::Build(data);
  Planner planner(&gc);
  PlanOptions options;
  options.use_nec = false;
  Plan plan;
  ASSERT_TRUE(planner
                  .MakePlan(testing::Star(4), MatchVariant::kEdgeInduced,
                            options, &plan)
                  .ok());
  for (const PlanPosition& pos : plan.positions) {
    EXPECT_EQ(pos.cache_alias, -1);
  }
}

TEST(PlannerTest, LdsfOffKeepsGcfOrder) {
  Rng rng(67);
  Graph data = testing::RandomGraph(rng, 30, 0.3, 2, 1, false);
  Graph pattern = testing::RandomGraph(rng, 6, 0.5, 2, 1, false);
  Ccsr gc = Ccsr::Build(data);
  Planner planner(&gc);
  PlanOptions no_ldsf;
  no_ldsf.use_ldsf = false;
  Plan plan;
  ASSERT_TRUE(planner
                  .MakePlan(pattern, MatchVariant::kEdgeInduced, no_ldsf,
                            &plan)
                  .ok());
  ExpectPlanWellFormed(plan, pattern);
}

TEST(PlannerTest, SceStatsPopulated) {
  Graph data = testing::Star(10);
  Ccsr gc = Ccsr::Build(data);
  Planner planner(&gc);
  Plan plan;
  ASSERT_TRUE(planner
                  .MakePlan(testing::Star(5), MatchVariant::kEdgeInduced,
                            PlanOptions{}, &plan)
                  .ok());
  EXPECT_EQ(plan.sce.pattern_vertices, 6u);
  EXPECT_EQ(plan.sce.sce_vertices, 4u);  // leaves after the first
  EXPECT_EQ(plan.dag_edges, 5u);
}

}  // namespace
}  // namespace csce
