#include "ccsr/cluster_cache.h"

#include <gtest/gtest.h>

#include "engine/matcher.h"
#include "graph/isomorphism.h"
#include "tests/test_util.h"

namespace csce {
namespace {

TEST(ClusterCacheTest, SecondQueryHitsCache) {
  Rng rng(901);
  Graph data = testing::RandomGraph(rng, 40, 0.2, 3, 1, false);
  Ccsr gc = Ccsr::Build(data);
  ClusterCache cache(&gc);
  Graph pattern = testing::RandomGraph(rng, 4, 0.6, 3, 1, false);

  QueryClusters first;
  ASSERT_TRUE(
      ReadClustersCached(cache, pattern, MatchVariant::kEdgeInduced, &first)
          .ok());
  uint64_t misses_after_first = cache.misses();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_GT(misses_after_first, 0u);

  QueryClusters second;
  ASSERT_TRUE(
      ReadClustersCached(cache, pattern, MatchVariant::kEdgeInduced, &second)
          .ok());
  EXPECT_EQ(cache.misses(), misses_after_first);  // no new decompression
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_EQ(second.NumViews(), first.NumViews());
}

TEST(ClusterCacheTest, CachedAndUncachedAgree) {
  Rng rng(902);
  for (int i = 0; i < 8; ++i) {
    bool directed = i % 2 == 0;
    Graph data = testing::RandomGraph(rng, 16, 0.3, 2, 2, directed);
    Graph pattern = testing::RandomGraph(rng, 4, 0.5, 2, 2, directed);
    Ccsr gc = Ccsr::Build(data);
    ClusterCache cache(&gc);
    CsceMatcher cold(&gc);
    CsceMatcher warm(&gc, &cache);
    for (auto variant :
         {MatchVariant::kEdgeInduced, MatchVariant::kVertexInduced,
          MatchVariant::kHomomorphic}) {
      MatchOptions options;
      options.variant = variant;
      MatchResult a;
      MatchResult b;
      MatchResult c;
      ASSERT_TRUE(cold.Match(pattern, options, &a).ok());
      ASSERT_TRUE(warm.Match(pattern, options, &b).ok());  // fills cache
      ASSERT_TRUE(warm.Match(pattern, options, &c).ok());  // uses cache
      EXPECT_EQ(a.embeddings, b.embeddings);
      EXPECT_EQ(b.embeddings, c.embeddings);
      EXPECT_EQ(a.embeddings,
                CountEmbeddingsBruteForce(data, pattern, variant));
    }
  }
}

TEST(ClusterCacheTest, ViewsSurviveCacheClear) {
  Rng rng(903);
  Graph data = testing::RandomGraph(rng, 30, 0.25, 2, 1, false);
  Ccsr gc = Ccsr::Build(data);
  ClusterCache cache(&gc);
  Graph pattern = testing::Path(3);
  QueryClusters qc;
  ASSERT_TRUE(
      ReadClustersCached(cache, pattern, MatchVariant::kEdgeInduced, &qc)
          .ok());
  size_t views = qc.NumViews();
  cache.Clear();
  EXPECT_EQ(cache.CachedViews(), 0u);
  // The QueryClusters co-owns its views: still usable.
  EXPECT_EQ(qc.NumViews(), views);
  Plan plan;
  Planner planner(&gc);
  ASSERT_TRUE(
      planner.MakePlan(pattern, MatchVariant::kEdgeInduced, PlanOptions{},
                       &plan)
          .ok());
  Executor executor(gc, qc, plan);
  ExecStats stats;
  ASSERT_TRUE(executor.Run(ExecOptions{}, &stats).ok());
  EXPECT_EQ(stats.embeddings,
            CountEmbeddingsBruteForce(data, pattern,
                                      MatchVariant::kEdgeInduced));
}

TEST(ClusterCacheTest, MissOnAbsentCluster) {
  Graph data = testing::MakeGraph(false, {0, 1}, {{0, 1, 0}});
  Ccsr gc = Ccsr::Build(data);
  ClusterCache cache(&gc);
  EXPECT_EQ(cache.Get(ClusterId::Undirected(5, 6, 0)), nullptr);
  EXPECT_EQ(cache.CachedViews(), 0u);
}

TEST(ClusterCacheTest, ReportsBytes) {
  Rng rng(904);
  Graph data = testing::RandomGraph(rng, 50, 0.2, 2, 1, false);
  Ccsr gc = Ccsr::Build(data);
  ClusterCache cache(&gc);
  for (const CompressedCluster& c : gc.clusters()) cache.Get(c.id);
  EXPECT_EQ(cache.CachedViews(), gc.NumClusters());
  EXPECT_GT(cache.CachedBytes(), 0u);
}

}  // namespace
}  // namespace csce
