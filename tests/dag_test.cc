#include "plan/dag.h"

#include <gtest/gtest.h>

#include <numeric>

#include "tests/test_util.h"

namespace csce {
namespace {

using testing::MakeGraph;

std::vector<VertexId> IdentityOrder(uint32_t n) {
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

TEST(DagTest, EdgeInducedDagMirrorsPatternEdges) {
  Graph p = testing::Cycle(5);
  auto order = IdentityOrder(5);
  DependencyDag dag =
      DependencyDag::Build(p, order, MatchVariant::kEdgeInduced, nullptr);
  EXPECT_EQ(dag.NumEdges(), p.NumEdges());
  // Edges are oriented earlier -> later in the order.
  EXPECT_TRUE(dag.HasPath(0, 1));
  EXPECT_FALSE(dag.HasPath(1, 0));
}

TEST(DagTest, HomomorphicSameAsEdgeInduced) {
  Rng rng(2);
  Graph p = testing::RandomGraph(rng, 7, 0.4, 2, 1, false);
  auto order = IdentityOrder(7);
  DependencyDag e =
      DependencyDag::Build(p, order, MatchVariant::kEdgeInduced, nullptr);
  DependencyDag h =
      DependencyDag::Build(p, order, MatchVariant::kHomomorphic, nullptr);
  EXPECT_EQ(e.NumEdges(), h.NumEdges());
}

TEST(DagTest, RootsAreOrderHeads) {
  Graph p = testing::Path(4);
  auto order = IdentityOrder(4);
  DependencyDag dag =
      DependencyDag::Build(p, order, MatchVariant::kEdgeInduced, nullptr);
  auto roots = dag.Roots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], 0u);
}

TEST(DagTest, IndependenceMatchesPaths) {
  // Star with center first: leaves are pairwise independent.
  Graph star = testing::Star(3);
  auto order = IdentityOrder(4);
  DependencyDag dag =
      DependencyDag::Build(star, order, MatchVariant::kEdgeInduced, nullptr);
  EXPECT_TRUE(dag.Independent(1, 2));
  EXPECT_TRUE(dag.Independent(2, 3));
  EXPECT_FALSE(dag.Independent(0, 1));
}

TEST(DagTest, VertexInducedAddsNegationDependencies) {
  // Path 0-1-2 matched center-first: the non-adjacent endpoint pair is
  // anchored (line 7) and, without cluster statistics, assumed
  // non-vacuous (line 8) -> a negation dependency appears.
  Graph p = testing::Path(3);
  std::vector<VertexId> order = {1, 0, 2};
  DependencyDag e =
      DependencyDag::Build(p, order, MatchVariant::kEdgeInduced, nullptr);
  DependencyDag v =
      DependencyDag::Build(p, order, MatchVariant::kVertexInduced, nullptr);
  EXPECT_EQ(e.NumEdges(), 2u);
  EXPECT_EQ(v.NumEdges(), 3u);
  EXPECT_FALSE(v.Independent(0, 2));
}

TEST(DagTest, EmptyStarClustersPruneNegation) {
  // Data graph with labels 0-1 edges only: no data edges between labels
  // 0 and 2, so the negation pair (0-labeled, 2-labeled) is vacuous.
  Graph data = MakeGraph(false, {0, 1, 2, 1}, {{0, 1, 0}, {1, 2, 0}});
  Ccsr gc = Ccsr::Build(data);
  Graph p = MakeGraph(false, {0, 1, 2}, {{0, 1, 0}, {1, 2, 0}});
  std::vector<VertexId> order = {1, 0, 2};  // center first: pair anchored
  DependencyDag v =
      DependencyDag::Build(p, order, MatchVariant::kVertexInduced, &gc);
  // Pattern pair (0,2) is non-adjacent; labels (0,2) have a data edge?
  // Data edges: (0,1) and (1,2) label pairs -> pair {0,2} has none.
  EXPECT_EQ(v.NumEdges(), 2u);
  EXPECT_TRUE(v.Independent(0, 2));
}

TEST(DagTest, AnchoringConditionLine7) {
  // Order chosen so the non-adjacent pair is reached before any
  // neighbor of the later vertex: no anchoring, no negation edge from
  // the early position.
  Graph p = testing::Path(3);  // edges 0-1, 1-2
  std::vector<VertexId> order = {0, 2, 1};
  DependencyDag v =
      DependencyDag::Build(p, order, MatchVariant::kVertexInduced, nullptr);
  // Pair (0,2): at j=1 (vertex 2), no earlier neighbor of 2 exists
  // (vertex 1 comes later), so line 7 suppresses the negation edge.
  EXPECT_TRUE(v.Independent(0, 2));
}

TEST(SceStatsTest, StarLeavesShowSce) {
  Graph star = testing::Star(4);
  auto order = IdentityOrder(5);
  DependencyDag dag =
      DependencyDag::Build(star, order, MatchVariant::kEdgeInduced, nullptr);
  SceStats stats =
      ComputeSceStats(star, order, MatchVariant::kEdgeInduced, dag);
  EXPECT_EQ(stats.pattern_vertices, 5u);
  // Leaves 2..4 each have an earlier independent leaf.
  EXPECT_EQ(stats.sce_vertices, 3u);
}

TEST(SceStatsTest, CliqueHasNoSce) {
  Graph clique = testing::Clique(4);
  auto order = IdentityOrder(4);
  DependencyDag dag =
      DependencyDag::Build(clique, order, MatchVariant::kEdgeInduced, nullptr);
  SceStats stats =
      ComputeSceStats(clique, order, MatchVariant::kEdgeInduced, dag);
  EXPECT_EQ(stats.sce_vertices, 0u);
}

TEST(SceStatsTest, DifferentLabelsAttributeToClusters) {
  // Star center 0, leaves with different labels: SCE satisfies the
  // injectivity condition through label disjointness.
  Graph star = MakeGraph(false, {0, 1, 2},
                         {{0, 1, 0}, {0, 2, 0}});
  auto order = IdentityOrder(3);
  DependencyDag dag =
      DependencyDag::Build(star, order, MatchVariant::kEdgeInduced, nullptr);
  SceStats stats =
      ComputeSceStats(star, order, MatchVariant::kEdgeInduced, dag);
  EXPECT_EQ(stats.sce_vertices, 1u);
  EXPECT_EQ(stats.cluster_attributed, 1u);
}

}  // namespace
}  // namespace csce
