#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph_builder.h"
#include "graph/graph_stats.h"
#include "tests/test_util.h"

namespace csce {
namespace {

using testing::MakeGraph;

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder b(false);
  Graph g;
  ASSERT_TRUE(b.Build(&g).ok());
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(GraphBuilderTest, RejectsSelfLoop) {
  GraphBuilder b(true);
  b.AddVertex(0);
  b.AddEdge(0, 0);
  Graph g;
  EXPECT_EQ(b.Build(&g).code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, RejectsOutOfRangeEndpoint) {
  GraphBuilder b(false);
  b.AddVertex(0);
  b.AddEdge(0, 5);
  Graph g;
  EXPECT_EQ(b.Build(&g).code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, DeduplicatesParallelEdges) {
  Graph g = MakeGraph(false, {0, 0}, {{0, 1, 0}, {0, 1, 0}, {1, 0, 0}});
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(GraphBuilderTest, DifferentEdgeLabelsKept) {
  Graph g = MakeGraph(true, {0, 0}, {{0, 1, 1}, {0, 1, 2}});
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1, 1));
  EXPECT_TRUE(g.HasEdge(0, 1, 2));
  EXPECT_FALSE(g.HasEdge(0, 1, 3));
}

TEST(GraphBuilderTest, AddVerticesBulk) {
  GraphBuilder b(false);
  VertexId first = b.AddVertices(5, 7);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(b.NumVertices(), 5u);
  Graph g;
  ASSERT_TRUE(b.Build(&g).ok());
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(g.VertexLabel(v), 7u);
}

TEST(GraphTest, UndirectedAdjacencyIsSymmetric) {
  Graph g = MakeGraph(false, {0, 1, 2}, {{0, 1, 0}, {1, 2, 0}});
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_EQ(g.OutNeighbors(1).size(), 2u);
  EXPECT_EQ(g.InNeighbors(1).size(), 2u);
  EXPECT_EQ(g.Degree(1), 2u);
}

TEST(GraphTest, DirectedAdjacencySeparatesDirections) {
  Graph g = MakeGraph(true, {0, 1}, {{0, 1, 0}});
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdgeAnyDirection(1, 0));
  EXPECT_EQ(g.OutDegree(0), 1u);
  EXPECT_EQ(g.InDegree(0), 0u);
  EXPECT_EQ(g.InDegree(1), 1u);
  EXPECT_EQ(g.Degree(0), 1u);
}

TEST(GraphTest, ForEachEdgeUndirectedVisitsOnce) {
  Graph g = testing::Cycle(5);
  size_t count = 0;
  g.ForEachEdge([&count](const Edge& e) {
    EXPECT_LT(e.src, e.dst);
    ++count;
  });
  EXPECT_EQ(count, 5u);
}

TEST(GraphTest, ForEachEdgeDirectedVisitsAllArcs) {
  Graph g = MakeGraph(true, {0, 0}, {{0, 1, 0}, {1, 0, 0}});
  EXPECT_EQ(g.Edges().size(), 2u);
}

TEST(GraphTest, LabelCounts) {
  Graph unlabeled = testing::Path(3);
  EXPECT_EQ(unlabeled.VertexLabelCount(), 0u);
  EXPECT_FALSE(unlabeled.IsHeterogeneous());

  Graph labeled = MakeGraph(false, {1, 2, 1}, {{0, 1, 0}});
  EXPECT_EQ(labeled.VertexLabelCount(), 2u);
  EXPECT_TRUE(labeled.IsHeterogeneous());

  Graph elabeled = MakeGraph(false, {0, 0}, {{0, 1, 3}});
  EXPECT_EQ(elabeled.EdgeLabelCount(), 1u);
}

TEST(GraphTest, LabelFrequency) {
  Graph g = MakeGraph(false, {5, 5, 2}, {{0, 1, 0}});
  EXPECT_EQ(g.LabelFrequency(5), 2u);
  EXPECT_EQ(g.LabelFrequency(2), 1u);
  EXPECT_EQ(g.LabelFrequency(9), 0u);
}

TEST(GraphTest, NeighborsSortedUnique) {
  Graph g = MakeGraph(false, {0, 0, 0, 0},
                      {{0, 3, 0}, {0, 1, 0}, {0, 2, 0}});
  auto nbrs = g.OutNeighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(GraphStatsTest, MatchesTableConventions) {
  Graph g = MakeGraph(false, {0, 0, 0}, {{0, 1, 0}, {1, 2, 0}});
  GraphStats s = ComputeStats(g);
  EXPECT_FALSE(s.directed);
  EXPECT_EQ(s.vertex_count, 3u);
  EXPECT_EQ(s.edge_count, 2u);
  EXPECT_EQ(s.label_count, 0u);  // unlabeled reports 0
  EXPECT_DOUBLE_EQ(s.average_degree, 4.0 / 3.0);
  EXPECT_EQ(s.max_in_degree, 2u);
  EXPECT_EQ(s.max_out_degree, 2u);
}

TEST(GraphStatsTest, DirectedDegrees) {
  Graph g = MakeGraph(true, {0, 0, 0}, {{0, 2, 0}, {1, 2, 0}});
  GraphStats s = ComputeStats(g);
  EXPECT_TRUE(s.directed);
  EXPECT_EQ(s.max_in_degree, 2u);
  EXPECT_EQ(s.max_out_degree, 1u);
}

TEST(GraphStatsTest, FormatsRows) {
  GraphStats s = ComputeStats(testing::Clique(4));
  std::string row = FormatStatsRow("K4", s);
  EXPECT_NE(row.find("K4"), std::string::npos);
  EXPECT_NE(row.find("6"), std::string::npos);  // 6 edges
  EXPECT_FALSE(StatsHeader().empty());
}

}  // namespace
}  // namespace csce
