// Incremental CCSR maintenance: building from G ∪ ΔE must equal
// building from G then inserting ΔE, and removal must invert insertion.

#include <gtest/gtest.h>

#include <algorithm>

#include "ccsr/ccsr.h"
#include "engine/matcher.h"
#include "graph/isomorphism.h"
#include "tests/test_util.h"

namespace csce {
namespace {

using testing::MakeGraph;

void ExpectSameClusters(const Ccsr& a, const Ccsr& b) {
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  ASSERT_EQ(a.NumClusters(), b.NumClusters());
  for (size_t i = 0; i < a.NumClusters(); ++i) {
    const CompressedCluster& ca = a.clusters()[i];
    const CompressedCluster& cb = b.clusters()[i];
    EXPECT_EQ(ca.id, cb.id);
    EXPECT_EQ(ca.num_edges, cb.num_edges);
    EXPECT_EQ(ca.out_cols, cb.out_cols);
    EXPECT_TRUE(std::ranges::equal(ca.out_rows.runs(), cb.out_rows.runs()));
    EXPECT_EQ(ca.in_cols, cb.in_cols);
  }
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    EXPECT_EQ(a.OutDegree(v), b.OutDegree(v));
    EXPECT_EQ(a.InDegree(v), b.InDegree(v));
  }
}

class CcsrUpdateTest : public ::testing::TestWithParam<bool> {};

TEST_P(CcsrUpdateTest, InsertMatchesFromScratchBuild) {
  const bool directed = GetParam();
  Rng rng(directed ? 301 : 302);
  // Base graph and a batch of extra edges over the same vertices.
  GraphBuilder base_builder(directed);
  GraphBuilder full_builder(directed);
  const uint32_t n = 30;
  for (uint32_t i = 0; i < n; ++i) {
    Label l = static_cast<Label>(rng.Uniform(3));
    base_builder.AddVertex(l);
    full_builder.AddVertex(l);
  }
  std::vector<Edge> extra;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      if (i == j || (!directed && j < i)) continue;
      if (rng.Bernoulli(0.15)) {
        Edge e{i, j, static_cast<Label>(rng.Uniform(2))};
        full_builder.AddEdge(e.src, e.dst, e.elabel);
        if (rng.Bernoulli(0.3)) {
          extra.push_back(e);  // will arrive incrementally
        } else {
          base_builder.AddEdge(e.src, e.dst, e.elabel);
        }
      }
    }
  }
  Graph base;
  Graph full;
  ASSERT_TRUE(base_builder.Build(&base).ok());
  ASSERT_TRUE(full_builder.Build(&full).ok());

  Ccsr incremental = Ccsr::Build(base);
  ASSERT_TRUE(incremental.InsertEdges(extra).ok());
  Ccsr from_scratch = Ccsr::Build(full);
  ExpectSameClusters(from_scratch, incremental);
}

TEST_P(CcsrUpdateTest, RemoveInvertsInsert) {
  const bool directed = GetParam();
  Rng rng(directed ? 303 : 304);
  Graph g = testing::RandomGraph(rng, 25, 0.2, 3, 2, directed);
  Ccsr original = Ccsr::Build(g);
  Ccsr mutated = Ccsr::Build(g);

  std::vector<Edge> batch = {{0, 1, 99}, {2, 3, 99}, {4, 5, 99}};
  ASSERT_TRUE(mutated.InsertEdges(batch).ok());
  EXPECT_EQ(mutated.NumEdges(), original.NumEdges() + 3);
  ASSERT_TRUE(mutated.RemoveEdges(batch).ok());
  ExpectSameClusters(original, mutated);
}

INSTANTIATE_TEST_SUITE_P(Directedness, CcsrUpdateTest, ::testing::Bool());

TEST(CcsrUpdateTest, InsertIsIdempotent) {
  Graph g = MakeGraph(false, {0, 1}, {{0, 1, 0}});
  Ccsr ccsr = Ccsr::Build(g);
  ASSERT_TRUE(ccsr.InsertEdges({{0, 1, 0}}).ok());
  EXPECT_EQ(ccsr.NumEdges(), 1u);
  EXPECT_EQ(ccsr.OutDegree(0), 1u);
}

TEST(CcsrUpdateTest, InsertCreatesNewCluster) {
  Graph g = MakeGraph(false, {0, 1, 2}, {{0, 1, 0}});
  Ccsr ccsr = Ccsr::Build(g);
  EXPECT_EQ(ccsr.NumClusters(), 1u);
  ASSERT_TRUE(ccsr.InsertEdges({{1, 2, 0}}).ok());
  EXPECT_EQ(ccsr.NumClusters(), 2u);
  EXPECT_EQ(ccsr.ClusterSize(ClusterId::Undirected(1, 2, 0)), 1u);
}

TEST(CcsrUpdateTest, RemoveDropsEmptiedCluster) {
  Graph g = MakeGraph(false, {0, 1, 2}, {{0, 1, 0}, {1, 2, 0}});
  Ccsr ccsr = Ccsr::Build(g);
  EXPECT_EQ(ccsr.NumClusters(), 2u);
  ASSERT_TRUE(ccsr.RemoveEdges({{1, 2, 0}}).ok());
  EXPECT_EQ(ccsr.NumClusters(), 1u);
  EXPECT_EQ(ccsr.Find(ClusterId::Undirected(1, 2, 0)), nullptr);
  EXPECT_EQ(ccsr.NumEdges(), 1u);
}

TEST(CcsrUpdateTest, RemoveMissingEdgeFailsAtomically) {
  Graph g = MakeGraph(false, {0, 1, 2}, {{0, 1, 0}, {1, 2, 0}});
  Ccsr ccsr = Ccsr::Build(g);
  // One present edge, one absent: nothing may change.
  Status st = ccsr.RemoveEdges({{0, 1, 0}, {0, 2, 0}});
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(ccsr.NumEdges(), 2u);
  EXPECT_EQ(ccsr.ClusterSize(ClusterId::Undirected(0, 1, 0)), 1u);
}

TEST(CcsrUpdateTest, InsertRejectsBadEdges) {
  Graph g = MakeGraph(false, {0, 1}, {{0, 1, 0}});
  Ccsr ccsr = Ccsr::Build(g);
  EXPECT_EQ(ccsr.InsertEdges({{0, 9, 0}}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ccsr.InsertEdges({{0, 0, 0}}).code(),
            StatusCode::kInvalidArgument);
}

TEST(CcsrUpdateTest, MatchingSeesInsertedEdges) {
  // End-to-end: a triangle closed by an incremental insert becomes
  // matchable without rebuilding.
  Graph g = MakeGraph(false, {0, 0, 0, 0}, {{0, 1, 0}, {1, 2, 0}});
  Ccsr ccsr = Ccsr::Build(g);
  CsceMatcher matcher(&ccsr);
  MatchOptions options;
  MatchResult result;
  Graph triangle = testing::Cycle(3);
  ASSERT_TRUE(matcher.Match(triangle, options, &result).ok());
  EXPECT_EQ(result.embeddings, 0u);
  ASSERT_TRUE(ccsr.InsertEdges({{0, 2, 0}}).ok());
  ASSERT_TRUE(matcher.Match(triangle, options, &result).ok());
  EXPECT_EQ(result.embeddings, 6u);
}

}  // namespace
}  // namespace csce
