#include "plan/descendants.h"

#include <gtest/gtest.h>

#include <numeric>

#include "tests/test_util.h"

namespace csce {
namespace {

std::vector<VertexId> IdentityOrder(uint32_t n) {
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

DependencyDag DagOf(const Graph& p) {
  return DependencyDag::Build(p, IdentityOrder(p.NumVertices()),
                              MatchVariant::kEdgeInduced, nullptr);
}

TEST(DescendantsTest, Chain) {
  // 0 -> 1 -> 2 -> 3: sizes 3, 2, 1, 0.
  DependencyDag dag = DagOf(testing::Path(4));
  std::vector<uint32_t> expected = {3, 2, 1, 0};
  EXPECT_EQ(ComputeDescendantSizes(dag), expected);
}

TEST(DescendantsTest, StarCenterFirst) {
  DependencyDag dag = DagOf(testing::Star(4));
  auto sizes = ComputeDescendantSizes(dag);
  EXPECT_EQ(sizes[0], 4u);
  for (int leaf = 1; leaf <= 4; ++leaf) EXPECT_EQ(sizes[leaf], 0u);
}

TEST(DescendantsTest, DiamondSharedDescendantCountedOnce) {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 (a 4-cycle matched in id order).
  DependencyDag dag = DagOf(testing::MakeGraph(
      false, {0, 0, 0, 0}, {{0, 1, 0}, {0, 2, 0}, {1, 3, 0}, {2, 3, 0}}));
  auto sizes = ComputeDescendantSizes(dag);
  EXPECT_EQ(sizes[0], 3u);  // 1, 2, 3 — not 4 despite two paths to 3
  EXPECT_EQ(sizes[1], 1u);
  EXPECT_EQ(sizes[2], 1u);
  EXPECT_EQ(sizes[3], 0u);
}

TEST(DescendantsTest, CliqueIsTotalOrder) {
  DependencyDag dag = DagOf(testing::Clique(5));
  auto sizes = ComputeDescendantSizes(dag);
  for (uint32_t v = 0; v < 5; ++v) EXPECT_EQ(sizes[v], 4u - v);
}

TEST(DescendantsTest, AgreesWithReachabilityOnRandomDags) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) {
    Graph p = testing::RandomGraph(rng, 9, 0.35, 2, 1, false);
    DependencyDag dag = DagOf(p);
    auto sizes = ComputeDescendantSizes(dag);
    for (VertexId u = 0; u < p.NumVertices(); ++u) {
      uint32_t reachable = 0;
      for (VertexId v = 0; v < p.NumVertices(); ++v) {
        if (u != v && dag.HasPath(u, v)) ++reachable;
      }
      EXPECT_EQ(sizes[u], reachable) << "vertex " << u;
    }
  }
}

}  // namespace
}  // namespace csce
