#include "analysis/motif_adjacency.h"

#include <gtest/gtest.h>

#include "graph/isomorphism.h"
#include "tests/test_util.h"

namespace csce {
namespace {

TEST(MotifAdjacencyTest, TrianglesInClique4) {
  Graph g = testing::Clique(4);
  MotifAdjacency ma;
  ASSERT_TRUE(BuildMotifAdjacency(g, testing::Cycle(3), 0, &ma).ok());
  // K4 has 4 triangles (as instances, not embeddings).
  EXPECT_EQ(ma.instances(), 4u);
  // Every pair lies in exactly 2 triangles.
  for (VertexId a = 0; a < 4; ++a) {
    for (VertexId b = a + 1; b < 4; ++b) {
      EXPECT_DOUBLE_EQ(ma.Weight(a, b), 2.0);
    }
  }
  EXPECT_EQ(ma.NumWeightedPairs(), 6u);
}

TEST(MotifAdjacencyTest, WeightTotalsMatchInstances) {
  // Sum of weights == instances * C(k, 2).
  Rng rng(601);
  Graph g = testing::RandomGraph(rng, 20, 0.3, 1, 1, false);
  Graph motif = testing::Cycle(4);
  MotifAdjacency ma;
  ASSERT_TRUE(BuildMotifAdjacency(g, motif, 0, &ma).ok());
  double total = 0;
  auto adj = ma.ToAdjacency(g.NumVertices());
  for (const auto& list : adj) {
    for (const auto& [v, w] : list) total += w;
  }
  // Each pair appears twice in the symmetric adjacency.
  EXPECT_DOUBLE_EQ(total, 2.0 * ma.instances() * 6);
}

TEST(MotifAdjacencyTest, InstanceCountIsEmbeddingsOverAut) {
  Rng rng(602);
  Graph g = testing::RandomGraph(rng, 15, 0.35, 1, 1, false);
  Graph motif = testing::Star(3);
  MotifAdjacency ma;
  ASSERT_TRUE(BuildMotifAdjacency(g, motif, 0, &ma).ok());
  uint64_t embeddings =
      CountEmbeddingsBruteForce(g, motif, MatchVariant::kEdgeInduced);
  EXPECT_EQ(ma.instances() * CountAutomorphisms(motif), embeddings);
}

TEST(MotifAdjacencyTest, EdgeMotifReproducesGraph) {
  Graph g = testing::Cycle(5);
  MotifAdjacency ma;
  ASSERT_TRUE(BuildMotifAdjacency(g, testing::Path(2), 0, &ma).ok());
  EXPECT_EQ(ma.instances(), 5u);
  EXPECT_DOUBLE_EQ(ma.Weight(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(ma.Weight(0, 2), 0.0);
}

TEST(MotifAdjacencyTest, CapRespected) {
  Graph g = testing::Clique(8);
  MotifAdjacency ma;
  ASSERT_TRUE(BuildMotifAdjacency(g, testing::Cycle(3), 10, &ma).ok());
  EXPECT_LE(ma.instances(), 10u);
}

TEST(MotifAdjacencyTest, RejectsDirectedAndTrivial) {
  Graph directed = testing::MakeGraph(true, {0, 0}, {{0, 1, 0}});
  Graph single = testing::MakeGraph(false, {0}, {});
  MotifAdjacency ma;
  EXPECT_EQ(BuildMotifAdjacency(directed, testing::Path(2), 0, &ma).code(),
            StatusCode::kNotSupported);
  EXPECT_EQ(
      BuildMotifAdjacency(testing::Clique(3), single, 0, &ma).code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace csce
