#include <gtest/gtest.h>

#include <set>

#include "util/bitset.h"
#include "util/memory.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/timer.h"

namespace csce {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::NotFound("missing"); };
  auto outer = [&inner]() -> Status {
    CSCE_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(13), 13u);
}

TEST(RngTest, UniformHitsAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(BitsetTest, SetTestClear) {
  DynamicBitset bits(130);
  EXPECT_FALSE(bits.Test(0));
  bits.Set(0);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_EQ(bits.Count(), 3u);
  bits.Clear(64);
  EXPECT_FALSE(bits.Test(64));
  EXPECT_EQ(bits.Count(), 2u);
}

TEST(BitsetTest, ResetClearsAll) {
  DynamicBitset bits(100);
  for (size_t i = 0; i < 100; i += 3) bits.Set(i);
  bits.Reset();
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(BitsetTest, OrWithUnions) {
  DynamicBitset a(70);
  DynamicBitset b(70);
  a.Set(1);
  a.Set(65);
  b.Set(2);
  b.Set(65);
  a.OrWith(b);
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(2));
  EXPECT_TRUE(a.Test(65));
  EXPECT_EQ(a.Count(), 3u);
}

TEST(TimerTest, MonotonicNonNegative) {
  WallTimer t;
  double a = t.Seconds();
  double b = t.Seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(MemoryTest, PeakRssPositive) {
  EXPECT_GT(PeakRssBytes(), 0u);
}

TEST(MemoryTest, CurrentRssPositive) {
  EXPECT_GT(CurrentRssBytes(), 0u);
}

}  // namespace
}  // namespace csce
