#include "plan/cost_model.h"

#include <gtest/gtest.h>

#include <numeric>

#include "engine/matcher.h"
#include "graph/isomorphism.h"
#include "tests/test_util.h"

namespace csce {
namespace {

using testing::MakeGraph;

TEST(CostModelTest, CostBasedOrderIsPermutation) {
  Rng rng(201);
  for (int i = 0; i < 10; ++i) {
    bool directed = i % 2 == 0;
    Graph data = testing::RandomGraph(rng, 40, 0.2, 3, 2, directed);
    Graph pattern = testing::RandomGraph(rng, 6, 0.5, 3, 2, directed);
    Ccsr gc = Ccsr::Build(data);
    auto order = CostBasedOrder(pattern, gc);
    ASSERT_EQ(order.size(), pattern.NumVertices());
    std::vector<bool> seen(pattern.NumVertices(), false);
    for (VertexId v : order) {
      ASSERT_LT(v, pattern.NumVertices());
      EXPECT_FALSE(seen[v]);
      seen[v] = true;
    }
  }
}

TEST(CostModelTest, PrefersSelectiveSeed) {
  // Pattern edge (A,B) is frequent, (A,C) rare: the order should start
  // from the rare side.
  Graph pattern = MakeGraph(false, {0, 1, 2},
                            {{0, 1, 0}, {0, 2, 0}});
  GraphBuilder b(false);
  VertexId hub = b.AddVertex(0);
  for (int i = 0; i < 50; ++i) b.AddEdge(hub, b.AddVertex(1));
  b.AddEdge(hub, b.AddVertex(2));
  Graph data;
  ASSERT_TRUE(b.Build(&data).ok());
  Ccsr gc = Ccsr::Build(data);
  auto order = CostBasedOrder(pattern, gc);
  // Vertex 2 (label C, one data edge) or the hub lead; the frequent
  // leaf must come last.
  EXPECT_EQ(order.back(), 1u);
}

TEST(CostModelTest, EstimateMonotoneInClusterSize) {
  // The same pattern against a denser data graph costs more.
  Graph pattern = testing::Path(3);
  Rng rng(203);
  Graph sparse = testing::RandomGraph(rng, 60, 0.03, 1, 1, false);
  Graph dense = testing::RandomGraph(rng, 60, 0.3, 1, 1, false);
  Ccsr gc_sparse = Ccsr::Build(sparse);
  Ccsr gc_dense = Ccsr::Build(dense);
  std::vector<VertexId> order(3);
  std::iota(order.begin(), order.end(), 0);
  EXPECT_LT(EstimateOrderCost(pattern, gc_sparse, order),
            EstimateOrderCost(pattern, gc_dense, order));
}

TEST(CostModelTest, EmptyClusterGivesZeroExtensionCost) {
  Graph data = MakeGraph(false, {0, 1}, {{0, 1, 0}});
  Ccsr gc = Ccsr::Build(data);
  // Pattern needs a (1,2) edge that does not exist in the data.
  Graph pattern = MakeGraph(false, {0, 1, 2}, {{0, 1, 0}, {1, 2, 0}});
  std::vector<VertexId> order = {0, 1, 2};
  double cost = EstimateOrderCost(pattern, gc, order);
  EXPECT_GE(cost, 0.0);
  EXPECT_LT(cost, 10.0);  // collapses after the empty extension
}

class CostBasedCorrectnessTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(CostBasedCorrectnessTest, CostBasedPlansStayCorrect) {
  Rng rng(GetParam() * 409 + 7);
  bool directed = GetParam() % 2 == 0;
  Graph data = testing::RandomGraph(rng, 15, 0.3, 2, 1, directed);
  Graph pattern = testing::RandomGraph(rng, 5, 0.5, 2, 1, directed);
  Ccsr gc = Ccsr::Build(data);
  CsceMatcher matcher(&gc);
  for (auto variant :
       {MatchVariant::kEdgeInduced, MatchVariant::kVertexInduced,
        MatchVariant::kHomomorphic}) {
    MatchOptions options;
    options.variant = variant;
    options.plan.use_cost_based = true;
    MatchResult result;
    ASSERT_TRUE(matcher.Match(pattern, options, &result).ok());
    EXPECT_EQ(result.embeddings,
              CountEmbeddingsBruteForce(data, pattern, variant))
        << VariantName(variant);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostBasedCorrectnessTest,
                         ::testing::Range<uint64_t>(0, 12));

TEST(CostModelTest, BeamWidthOneStillValid) {
  Rng rng(205);
  Graph data = testing::RandomGraph(rng, 20, 0.25, 2, 1, false);
  Graph pattern = testing::RandomGraph(rng, 5, 0.5, 2, 1, false);
  Ccsr gc = Ccsr::Build(data);
  auto order = CostBasedOrder(pattern, gc, /*beam_width=*/1);
  EXPECT_EQ(order.size(), pattern.NumVertices());
}

}  // namespace
}  // namespace csce
