// Generators beyond the basics: pocket planting, dense-pattern
// sampling guarantees, label skew behavior.

#include <gtest/gtest.h>

#include "ccsr/ccsr.h"
#include "engine/matcher.h"
#include "gen/pattern_gen.h"
#include "gen/random_graph.h"
#include "graph/subgraph.h"
#include "tests/test_util.h"

namespace csce {
namespace {

TEST(PlantPocketsTest, PreservesBaseEdgesAndLabels) {
  Rng rng(801);
  Graph base = testing::RandomGraph(rng, 60, 0.05, 3, 1, false);
  Graph planted = PlantPockets(base, 4, 6, 0.9, 99);
  EXPECT_EQ(planted.NumVertices(), base.NumVertices());
  EXPECT_EQ(planted.vertex_labels(), base.vertex_labels());
  EXPECT_GE(planted.NumEdges(), base.NumEdges());
  base.ForEachEdge([&planted](const Edge& e) {
    EXPECT_TRUE(planted.HasEdge(e.src, e.dst, e.elabel));
  });
}

TEST(PlantPocketsTest, AddsDenseRegions) {
  GraphBuilder b(false);
  b.AddVertices(100, kNoLabel);
  Graph empty;
  ASSERT_TRUE(b.Build(&empty).ok());
  Graph planted = PlantPockets(empty, 5, 8, 1.0, 7);
  // 5 pockets of 8 vertices at p=1: close to 5 * 28 edges (sampling
  // with replacement can merge members).
  EXPECT_GT(planted.NumEdges(), 80u);
}

TEST(PlantPocketsTest, Deterministic) {
  Graph base = testing::Clique(10);
  Graph a = PlantPockets(base, 2, 4, 0.5, 42);
  Graph c = PlantPockets(base, 2, 4, 0.5, 42);
  EXPECT_EQ(a.Edges(), c.Edges());
}

TEST(SampleDensePatternTest, MeetsDegreeBound) {
  Rng rng(802);
  Graph base = testing::RandomGraph(rng, 200, 0.02, 1, 1, false);
  Graph g = PlantPockets(base, 10, 9, 0.7, 5);
  Rng sample_rng(6);
  for (int i = 0; i < 5; ++i) {
    Graph pattern;
    ASSERT_TRUE(SampleDensePattern(g, 8, 3.0, sample_rng, &pattern).ok());
    EXPECT_EQ(pattern.NumVertices(), 8u);
    EXPECT_TRUE(IsConnected(pattern));
    EXPECT_GE(2.0 * pattern.NumEdges() / pattern.NumVertices(), 3.0);
  }
}

TEST(SampleDensePatternTest, FailsOnSparseGraph) {
  // A path has no region of average degree 3.
  Graph path = testing::Path(50);
  Rng rng(803);
  Graph pattern;
  EXPECT_EQ(SampleDensePattern(path, 8, 3.0, rng, &pattern).code(),
            StatusCode::kNotFound);
}

TEST(SampleDensePatternTest, PatternsEmbedInSource) {
  Rng rng(804);
  Graph base = testing::RandomGraph(rng, 150, 0.03, 1, 1, false);
  Graph g = PlantPockets(base, 8, 9, 0.7, 11);
  Ccsr gc = Ccsr::Build(g);
  CsceMatcher matcher(&gc);
  Rng sample_rng(12);
  Graph pattern;
  ASSERT_TRUE(SampleDensePattern(g, 7, 3.0, sample_rng, &pattern).ok());
  MatchOptions options;
  options.variant = MatchVariant::kVertexInduced;  // induced subgraph
  options.max_embeddings = 1;
  MatchResult result;
  ASSERT_TRUE(matcher.Match(pattern, options, &result).ok());
  EXPECT_GE(result.embeddings, 1u);
}

TEST(LabelSkewTest, SkewConcentratesMass) {
  Rng rng(805);
  std::vector<int> uniform_counts(10, 0);
  std::vector<int> skewed_counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    ++uniform_counts[DrawLabel(rng, 10, 0.0)];
    ++skewed_counts[DrawLabel(rng, 10, 0.9)];
  }
  // Uniform: each bucket near 2000. Skewed: label 0 dominates.
  EXPECT_GT(skewed_counts[0], uniform_counts[0] * 2);
  EXPECT_LT(skewed_counts[9], uniform_counts[9]);
}

TEST(GridRoadTest, Deterministic) {
  Graph a = GridRoad(20, 20, 0.7, 3);
  Graph b = GridRoad(20, 20, 0.7, 3);
  EXPECT_EQ(a.Edges(), b.Edges());
  Graph c = GridRoad(20, 20, 0.7, 4);
  EXPECT_NE(a.Edges(), c.Edges());
}

}  // namespace
}  // namespace csce
