// Tests for the concurrent query runtime: ThreadPool/StopToken
// substrate, morsel-parallel enumeration (ParallelExecutor via
// MatchOptions::num_threads), and the multi-query QueryRuntime session
// service. The crosscheck tests mirror crosscheck_property_test.cc's
// corpus: parallel counts must equal serial counts for every variant.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "ccsr/ccsr.h"
#include "ccsr/cluster_cache.h"
#include "engine/matcher.h"
#include "runtime/parallel_executor.h"
#include "runtime/query_runtime.h"
#include "tests/test_util.h"
#include "util/stop_token.h"
#include "util/thread_pool.h"

namespace csce {
namespace {

// ---------------------------------------------------------------- util

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (batch + 1) * 20);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(StopTokenTest, ParentChaining) {
  StopToken parent;
  StopToken child;
  child.SetParent(&parent);
  EXPECT_FALSE(child.StopRequested());
  parent.RequestStop();
  EXPECT_TRUE(child.StopRequested());
  parent.Reset();
  EXPECT_FALSE(child.StopRequested());
  child.RequestStop();
  EXPECT_TRUE(child.StopRequested());
  EXPECT_FALSE(parent.StopRequested());
}

// ------------------------------------------------- parallel crosscheck

class ParallelExecutorCrosscheckTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool, uint32_t>> {
};

TEST_P(ParallelExecutorCrosscheckTest, ParallelEqualsSerialAllVariants) {
  auto [seed, directed, vertex_labels] = GetParam();
  Rng rng(seed * 7919 + (directed ? 1 : 0) + vertex_labels * 13);
  Graph data =
      testing::RandomGraph(rng, 30, 0.22, vertex_labels, 2, directed);
  Graph pattern =
      testing::RandomGraph(rng, 5, 0.45, vertex_labels, 2, directed);

  Ccsr gc = Ccsr::Build(data);
  CsceMatcher matcher(&gc);
  for (auto variant :
       {MatchVariant::kEdgeInduced, MatchVariant::kVertexInduced,
        MatchVariant::kHomomorphic}) {
    SCOPED_TRACE(VariantName(variant));
    MatchOptions serial;
    serial.variant = variant;
    MatchResult sr;
    ASSERT_TRUE(matcher.Match(pattern, serial, &sr).ok());

    MatchOptions parallel = serial;
    parallel.num_threads = 4;
    parallel.morsel_size = 1;  // force many claims even on tiny graphs
    MatchResult pr;
    ASSERT_TRUE(matcher.Match(pattern, parallel, &pr).ok());
    EXPECT_EQ(pr.embeddings, sr.embeddings);
    EXPECT_FALSE(pr.timed_out);
    EXPECT_FALSE(pr.cancelled);

    // Larger morsels and auto sizing must agree too.
    parallel.morsel_size = 0;
    ASSERT_TRUE(matcher.Match(pattern, parallel, &pr).ok());
    EXPECT_EQ(pr.embeddings, sr.embeddings);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, ParallelExecutorCrosscheckTest,
                         ::testing::Combine(::testing::Range<uint64_t>(0, 6),
                                            ::testing::Bool(),
                                            ::testing::Values(1u, 3u)));

TEST(ParallelExecutorTest, RestrictionsAndCallbacksSurviveSharding) {
  Rng rng(99);
  Graph data = testing::RandomGraph(rng, 25, 0.3, 1, 1, false);
  Graph pattern = testing::Cycle(4);
  Ccsr gc = Ccsr::Build(data);
  CsceMatcher matcher(&gc);

  MatchOptions serial;
  serial.variant = MatchVariant::kEdgeInduced;
  serial.restrictions = {{0, 2}};  // f(0) < f(2): symmetry breaking
  MatchResult sr;
  ASSERT_TRUE(matcher.Match(pattern, serial, &sr).ok());

  MatchOptions parallel = serial;
  parallel.num_threads = 3;
  parallel.morsel_size = 2;
  std::atomic<uint64_t> delivered{0};
  MatchResult pr;
  ASSERT_TRUE(matcher
                  .MatchWithCallback(
                      pattern, parallel,
                      [&delivered](std::span<const VertexId> mapping) {
                        EXPECT_EQ(mapping.size(), 4u);
                        delivered.fetch_add(1, std::memory_order_relaxed);
                        return true;
                      },
                      &pr)
                  .ok());
  EXPECT_EQ(pr.embeddings, sr.embeddings);
  EXPECT_EQ(delivered.load(), sr.embeddings);
}

TEST(ParallelExecutorTest, LimitIsDeterministicAndBounded) {
  Rng rng(7);
  Graph data = testing::RandomGraph(rng, 40, 0.25, 1, 1, false);
  Graph pattern = testing::Path(5);
  Ccsr gc = Ccsr::Build(data);
  CsceMatcher matcher(&gc);

  MatchOptions full;
  full.variant = MatchVariant::kHomomorphic;
  MatchResult total;
  ASSERT_TRUE(matcher.Match(pattern, full, &total).ok());
  ASSERT_GT(total.embeddings, 100u);  // the workload is big enough

  MatchOptions limited = full;
  limited.max_embeddings = 57;
  limited.num_threads = 4;
  limited.morsel_size = 1;
  for (int run = 0; run < 5; ++run) {
    MatchResult r;
    ASSERT_TRUE(matcher.Match(pattern, limited, &r).ok());
    EXPECT_EQ(r.embeddings, 57u) << "run " << run;
    EXPECT_TRUE(r.limit_reached) << "run " << run;
  }

  // A limit above the total is never reached and never clips the count.
  limited.max_embeddings = total.embeddings + 10;
  for (int run = 0; run < 3; ++run) {
    MatchResult r;
    ASSERT_TRUE(matcher.Match(pattern, limited, &r).ok());
    EXPECT_EQ(r.embeddings, total.embeddings) << "run " << run;
    EXPECT_FALSE(r.limit_reached) << "run " << run;
  }
}

TEST(ParallelExecutorTest, TimeLimitSetsTimedOutFlag) {
  Rng rng(11);
  // Unlabeled and dense: homomorphic 8-path counts are astronomically
  // large, so the deadline always fires first.
  Graph data = testing::RandomGraph(rng, 60, 0.3, 1, 1, false);
  Graph pattern = testing::Path(8);
  Ccsr gc = Ccsr::Build(data);
  CsceMatcher matcher(&gc);
  MatchOptions options;
  options.variant = MatchVariant::kHomomorphic;
  options.time_limit_seconds = 0.05;
  options.num_threads = 4;
  MatchResult r;
  ASSERT_TRUE(matcher.Match(pattern, options, &r).ok());
  EXPECT_TRUE(r.timed_out);
  EXPECT_LT(r.enumerate_seconds, 5.0);
}

TEST(ParallelExecutorTest, PreStoppedTokenCancelsImmediately) {
  Rng rng(13);
  Graph data = testing::RandomGraph(rng, 30, 0.3, 1, 1, false);
  Graph pattern = testing::Path(6);
  Ccsr gc = Ccsr::Build(data);
  CsceMatcher matcher(&gc);
  StopToken stop;
  stop.RequestStop();
  for (uint32_t threads : {1u, 4u}) {
    MatchOptions options;
    options.variant = MatchVariant::kHomomorphic;
    options.num_threads = threads;
    options.stop = &stop;
    MatchResult r;
    ASSERT_TRUE(matcher.Match(pattern, options, &r).ok());
    EXPECT_TRUE(r.cancelled) << threads << " threads";
  }
}

TEST(ParallelExecutorTest, AsyncCancelUnblocksHugeQuery) {
  Rng rng(17);
  // Hours of serial work — only cancellation can end the run.
  Graph data = testing::RandomGraph(rng, 80, 0.35, 1, 1, false);
  Graph pattern = testing::Path(10);
  Ccsr gc = Ccsr::Build(data);
  CsceMatcher matcher(&gc);
  StopToken stop;
  std::thread canceller([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    stop.RequestStop();
  });
  MatchOptions options;
  options.variant = MatchVariant::kHomomorphic;
  options.num_threads = 2;
  options.stop = &stop;
  MatchResult r;
  ASSERT_TRUE(matcher.Match(pattern, options, &r).ok());
  canceller.join();
  EXPECT_TRUE(r.cancelled);
  EXPECT_FALSE(r.timed_out);
}

// ------------------------------------------------------- query runtime

std::vector<QueryJob> MixedJobs(uint32_t copies) {
  std::vector<QueryJob> jobs;
  Rng prng(5);
  Graph p1 = testing::RandomGraph(prng, 5, 0.5, 2, 1, false);
  // Label 0 == kNoLabel, so these match the label-0 slice of the data.
  Graph p2 = testing::Cycle(4);
  Graph p3 = testing::Path(4);
  for (uint32_t c = 0; c < copies; ++c) {
    for (auto variant :
         {MatchVariant::kEdgeInduced, MatchVariant::kVertexInduced,
          MatchVariant::kHomomorphic}) {
      QueryJob job;
      job.pattern = p1;
      job.options.variant = variant;
      job.tag = "p1";
      jobs.push_back(job);
      job.pattern = (variant == MatchVariant::kHomomorphic) ? p3 : p2;
      job.tag = "p23";
      jobs.push_back(job);
    }
  }
  return jobs;
}

TEST(QueryRuntimeTest, BatchAgreesWithSerialMatcher) {
  Rng rng(21);
  Graph data = testing::RandomGraph(rng, 40, 0.2, 2, 1, false);
  Ccsr gc = Ccsr::Build(data);
  std::vector<QueryJob> jobs = MixedJobs(2);

  RuntimeOptions runtime_options;
  runtime_options.worker_threads = 4;
  QueryRuntime runtime(&gc, runtime_options);
  std::vector<QueryOutcome> outcomes;
  ASSERT_TRUE(runtime.RunBatch(jobs, &outcomes).ok());
  ASSERT_EQ(outcomes.size(), jobs.size());

  CsceMatcher serial(&gc);
  for (size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(outcomes[i].status.ok()) << i;
    EXPECT_TRUE(outcomes[i].executed) << i;
    MatchResult expected;
    ASSERT_TRUE(serial.Match(jobs[i].pattern, jobs[i].options, &expected).ok());
    EXPECT_EQ(outcomes[i].result.embeddings, expected.embeddings) << i;
    EXPECT_GE(outcomes[i].queue_wait_seconds, 0.0);
    EXPECT_GE(outcomes[i].total_seconds, outcomes[i].queue_wait_seconds);
  }

  const RuntimeMetrics m = runtime.metrics();
  EXPECT_EQ(m.submitted, jobs.size());
  EXPECT_EQ(m.completed, jobs.size());
  EXPECT_EQ(m.failed, 0u);
  EXPECT_EQ(m.cancelled, 0u);
  // The second copy of the workload re-reads the same clusters.
  EXPECT_GT(m.cluster_cache_hits, 0u);
  EXPECT_GT(m.cluster_cache_misses, 0u);
}

TEST(QueryRuntimeTest, IntraQueryParallelismAgreesToo) {
  Rng rng(23);
  Graph data = testing::RandomGraph(rng, 40, 0.2, 2, 1, false);
  Ccsr gc = Ccsr::Build(data);
  std::vector<QueryJob> jobs = MixedJobs(1);

  RuntimeOptions runtime_options;
  runtime_options.worker_threads = 2;
  runtime_options.threads_per_query = 2;
  QueryRuntime runtime(&gc, runtime_options);
  std::vector<QueryOutcome> outcomes;
  ASSERT_TRUE(runtime.RunBatch(jobs, &outcomes).ok());

  CsceMatcher serial(&gc);
  for (size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(outcomes[i].status.ok()) << i;
    MatchResult expected;
    ASSERT_TRUE(serial.Match(jobs[i].pattern, jobs[i].options, &expected).ok());
    EXPECT_EQ(outcomes[i].result.embeddings, expected.embeddings) << i;
  }
}

TEST(QueryRuntimeTest, AdmissionControlSingleInflight) {
  Rng rng(25);
  Graph data = testing::RandomGraph(rng, 30, 0.25, 1, 1, false);
  Ccsr gc = Ccsr::Build(data);
  std::vector<QueryJob> jobs = MixedJobs(2);

  RuntimeOptions runtime_options;
  runtime_options.worker_threads = 4;
  runtime_options.max_inflight = 1;
  QueryRuntime runtime(&gc, runtime_options);
  std::vector<QueryOutcome> outcomes;
  ASSERT_TRUE(runtime.RunBatch(jobs, &outcomes).ok());
  EXPECT_EQ(runtime.metrics().completed, jobs.size());
  for (const QueryOutcome& o : outcomes) EXPECT_TRUE(o.status.ok());
}

TEST(QueryRuntimeTest, DeadlineExpiredInQueueIsReportedNotExecuted) {
  Rng rng(27);
  Graph data = testing::RandomGraph(rng, 30, 0.25, 1, 1, false);
  Ccsr gc = Ccsr::Build(data);
  QueryJob job;
  job.pattern = testing::Path(4);
  job.options.variant = MatchVariant::kHomomorphic;
  job.options.time_limit_seconds = 1e-12;  // expires while queued

  RuntimeOptions runtime_options;
  runtime_options.worker_threads = 1;
  QueryRuntime runtime(&gc, runtime_options);
  std::vector<QueryOutcome> outcomes;
  ASSERT_TRUE(runtime.RunBatch({job}, &outcomes).ok());
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].status.ok());
  EXPECT_FALSE(outcomes[0].executed);
  EXPECT_TRUE(outcomes[0].result.timed_out);
  EXPECT_EQ(outcomes[0].result.embeddings, 0u);
  EXPECT_EQ(runtime.metrics().timed_out, 1u);
}

TEST(QueryRuntimeTest, CancelAllStopsQueuedAndRunningQueries) {
  Rng rng(29);
  Graph data = testing::RandomGraph(rng, 80, 0.35, 1, 1, false);
  Ccsr gc = Ccsr::Build(data);
  // Each job is far too big to finish; the batch ends only via cancel.
  QueryJob job;
  job.pattern = testing::Path(10);
  job.options.variant = MatchVariant::kHomomorphic;
  std::vector<QueryJob> jobs(4, job);

  RuntimeOptions runtime_options;
  runtime_options.worker_threads = 2;
  runtime_options.max_inflight = 1;
  QueryRuntime runtime(&gc, runtime_options);

  std::thread canceller([&runtime] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    runtime.CancelAll();
  });
  std::vector<QueryOutcome> outcomes;
  ASSERT_TRUE(runtime.RunBatch(jobs, &outcomes).ok());
  canceller.join();

  ASSERT_EQ(outcomes.size(), jobs.size());
  for (const QueryOutcome& o : outcomes) {
    ASSERT_TRUE(o.status.ok());
    EXPECT_TRUE(o.result.cancelled);
  }
  EXPECT_TRUE(runtime.cancel_requested());
  EXPECT_GE(runtime.metrics().cancelled, jobs.size());

  // A reset re-arms the session for the next batch.
  runtime.ResetCancellation();
  EXPECT_FALSE(runtime.cancel_requested());
  QueryJob small;
  small.pattern = testing::Path(3);
  small.options.variant = MatchVariant::kEdgeInduced;
  ASSERT_TRUE(runtime.RunBatch({small}, &outcomes).ok());
  EXPECT_TRUE(outcomes[0].executed);
  EXPECT_FALSE(outcomes[0].result.cancelled);
}

// ------------------------------------------------ retry-aware outcomes
//
// The match_fn seam stands in for a flaky (e.g. sharded) backend so the
// session-level retry accounting is driven by deterministic failures.

TEST(QueryRuntimeTest, TransientFailureIsRetriedWithinBudget) {
  Rng rng(41);
  Graph data = testing::RandomGraph(rng, 20, 0.2, 2, 1, false);
  Ccsr gc = Ccsr::Build(data);

  std::atomic<int> attempts{0};
  RuntimeOptions options;
  options.worker_threads = 1;
  options.max_query_retries = 3;
  options.match_fn = [&attempts](const Graph&, const MatchOptions&,
                                 MatchResult* result) {
    if (attempts.fetch_add(1) < 2) {
      return Status::IOError("transient backend failure");
    }
    result->embeddings = 7;
    return Status::OK();
  };
  QueryRuntime runtime(&gc, options);

  QueryJob job;
  job.tag = "flaky";
  job.pattern = testing::Path(3);
  std::vector<QueryOutcome> outcomes;
  ASSERT_TRUE(runtime.RunBatch({job}, &outcomes).ok());
  ASSERT_TRUE(outcomes[0].status.ok()) << outcomes[0].status.ToString();
  EXPECT_EQ(outcomes[0].retries, 2u);  // two failures, third attempt wins
  EXPECT_EQ(outcomes[0].result.embeddings, 7u);
  EXPECT_EQ(attempts.load(), 3);
  EXPECT_EQ(runtime.metrics().retries, 2u);
  EXPECT_EQ(runtime.metrics().completed, 1u);
  EXPECT_EQ(runtime.metrics().failed, 0u);
}

TEST(QueryRuntimeTest, RetryBudgetExhaustionReportsLastFailure) {
  Rng rng(43);
  Graph data = testing::RandomGraph(rng, 20, 0.2, 2, 1, false);
  Ccsr gc = Ccsr::Build(data);

  std::atomic<int> attempts{0};
  RuntimeOptions options;
  options.worker_threads = 1;
  options.max_query_retries = 2;
  options.match_fn = [&attempts](const Graph&, const MatchOptions&,
                                 MatchResult*) {
    attempts.fetch_add(1);
    return Status::ResourceExhausted("worker pool drained");
  };
  QueryRuntime runtime(&gc, options);

  QueryJob job;
  job.pattern = testing::Path(3);
  std::vector<QueryOutcome> outcomes;
  ASSERT_TRUE(runtime.RunBatch({job}, &outcomes).ok());
  EXPECT_FALSE(outcomes[0].status.ok());
  EXPECT_EQ(outcomes[0].status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(outcomes[0].retries, 2u);
  EXPECT_EQ(attempts.load(), 3);  // initial try + the full budget
  EXPECT_EQ(runtime.metrics().failed, 1u);
  EXPECT_EQ(runtime.metrics().retries, 2u);
}

TEST(QueryRuntimeTest, NonTransientFailuresAreNeverRetried) {
  Rng rng(47);
  Graph data = testing::RandomGraph(rng, 20, 0.2, 2, 1, false);
  Ccsr gc = Ccsr::Build(data);

  std::atomic<int> attempts{0};
  RuntimeOptions options;
  options.worker_threads = 1;
  options.max_query_retries = 5;
  options.match_fn = [&attempts](const Graph&, const MatchOptions&,
                                 MatchResult*) {
    attempts.fetch_add(1);
    return Status::InvalidArgument("bad pattern");
  };
  QueryRuntime runtime(&gc, options);

  QueryJob job;
  job.pattern = testing::Path(3);
  std::vector<QueryOutcome> outcomes;
  ASSERT_TRUE(runtime.RunBatch({job}, &outcomes).ok());
  EXPECT_FALSE(outcomes[0].status.ok());
  EXPECT_EQ(outcomes[0].retries, 0u);
  EXPECT_EQ(attempts.load(), 1);
  EXPECT_EQ(runtime.metrics().retries, 0u);
}

// ------------------------------------------- cluster cache concurrency

TEST(ClusterCacheConcurrencyTest, ConcurrentGetsShareOneViewPerCluster) {
  Rng rng(31);
  Graph data = testing::RandomGraph(rng, 50, 0.2, 3, 2, false);
  Ccsr gc = Ccsr::Build(data);
  ASSERT_GT(gc.NumClusters(), 1u);
  ClusterCache cache(&gc);

  const auto& clusters = gc.clusters();
  std::vector<std::vector<std::shared_ptr<const ClusterView>>> seen(8);
  {
    ThreadPool pool(8);
    for (int t = 0; t < 8; ++t) {
      pool.Submit([&cache, &clusters, &seen, t] {
        for (int round = 0; round < 50; ++round) {
          for (const CompressedCluster& c : clusters) {
            seen[t].push_back(cache.Get(c.id));
          }
        }
      });
    }
    pool.Wait();
  }

  // Every thread observed a valid view for every cluster, and the
  // cache holds exactly one view per cluster afterwards.
  for (const auto& views : seen) {
    ASSERT_EQ(views.size(), clusters.size() * 50);
    for (const auto& v : views) ASSERT_NE(v, nullptr);
  }
  EXPECT_EQ(cache.CachedViews(), clusters.size());
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<uint64_t>(8 * 50) * clusters.size());
  EXPECT_GE(cache.misses(), clusters.size());
}

TEST(ClusterCacheConcurrencyTest, ConcurrentQueriesThroughSharedCache) {
  Rng rng(33);
  Graph data = testing::RandomGraph(rng, 40, 0.2, 2, 2, false);
  Graph pattern = testing::RandomGraph(rng, 5, 0.5, 2, 2, false);
  Ccsr gc = Ccsr::Build(data);
  ClusterCache cache(&gc);
  CsceMatcher shared(&gc, &cache);
  CsceMatcher plain(&gc);

  MatchOptions options;
  options.variant = MatchVariant::kEdgeInduced;
  MatchResult expected;
  ASSERT_TRUE(plain.Match(pattern, options, &expected).ok());

  std::vector<uint64_t> counts(8, ~0ull);
  {
    ThreadPool pool(8);
    for (int t = 0; t < 8; ++t) {
      pool.Submit([&shared, &pattern, &options, &counts, t] {
        MatchResult r;
        if (shared.Match(pattern, options, &r).ok()) {
          counts[t] = r.embeddings;
        }
      });
    }
    pool.Wait();
  }
  for (uint64_t c : counts) EXPECT_EQ(c, expected.embeddings);
}

}  // namespace
}  // namespace csce
