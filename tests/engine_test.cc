#include "engine/matcher.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/isomorphism.h"
#include "plan/symmetry.h"
#include "tests/test_util.h"

namespace csce {
namespace {

using testing::MakeGraph;

MatchResult MustMatch(const Ccsr& gc, const Graph& pattern,
                      const MatchOptions& options) {
  CsceMatcher matcher(&gc);
  MatchResult result;
  Status st = matcher.Match(pattern, options, &result);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return result;
}

TEST(EngineTest, TrianglesInClique) {
  Ccsr gc = Ccsr::Build(testing::Clique(5));
  MatchOptions options;
  options.variant = MatchVariant::kEdgeInduced;
  // C(5,3) triangles * 3! mappings.
  EXPECT_EQ(MustMatch(gc, testing::Cycle(3), options).embeddings, 60u);
}

TEST(EngineTest, VertexInducedPathInTriangleIsZero) {
  Ccsr gc = Ccsr::Build(testing::Cycle(3));
  MatchOptions options;
  options.variant = MatchVariant::kVertexInduced;
  EXPECT_EQ(MustMatch(gc, testing::Path(3), options).embeddings, 0u);
  options.variant = MatchVariant::kEdgeInduced;
  EXPECT_EQ(MustMatch(gc, testing::Path(3), options).embeddings, 6u);
}

TEST(EngineTest, HomomorphismFolds) {
  Ccsr gc = Ccsr::Build(testing::Path(2));
  MatchOptions options;
  options.variant = MatchVariant::kHomomorphic;
  EXPECT_EQ(MustMatch(gc, testing::Path(3), options).embeddings, 2u);
}

TEST(EngineTest, SingleVertexPattern) {
  Graph data = MakeGraph(false, {1, 1, 2}, {{0, 1, 0}});
  Ccsr gc = Ccsr::Build(data);
  Graph pattern = MakeGraph(false, {1}, {});
  for (auto variant :
       {MatchVariant::kEdgeInduced, MatchVariant::kVertexInduced,
        MatchVariant::kHomomorphic}) {
    MatchOptions options;
    options.variant = variant;
    EXPECT_EQ(MustMatch(gc, pattern, options).embeddings, 2u);
  }
}

TEST(EngineTest, MissingClusterShortCircuits) {
  Graph data = MakeGraph(false, {1, 1}, {{0, 1, 0}});
  Ccsr gc = Ccsr::Build(data);
  Graph pattern = MakeGraph(false, {1, 2}, {{0, 1, 0}});  // no (1,2) edges
  MatchOptions options;
  MatchResult result = MustMatch(gc, pattern, options);
  EXPECT_EQ(result.embeddings, 0u);
  EXPECT_EQ(result.clusters_read, 0u);
}

TEST(EngineTest, MaxEmbeddingsStopsEarly) {
  Ccsr gc = Ccsr::Build(testing::Clique(8));
  MatchOptions options;
  options.max_embeddings = 10;
  MatchResult result = MustMatch(gc, testing::Cycle(3), options);
  EXPECT_EQ(result.embeddings, 10u);
  EXPECT_TRUE(result.limit_reached);
}

TEST(EngineTest, CallbackReceivesValidEmbeddings) {
  Graph data = testing::Clique(5);
  Ccsr gc = Ccsr::Build(data);
  Graph pattern = testing::Cycle(3);
  CsceMatcher matcher(&gc);
  MatchOptions options;
  MatchResult result;
  uint64_t seen = 0;
  ASSERT_TRUE(matcher
                  .MatchWithCallback(
                      pattern, options,
                      [&](std::span<const VertexId> mapping) {
                        EXPECT_EQ(mapping.size(), 3u);
                        std::set<VertexId> distinct(mapping.begin(),
                                                    mapping.end());
                        EXPECT_EQ(distinct.size(), 3u);  // injective
                        pattern.ForEachEdge([&](const Edge& e) {
                          EXPECT_TRUE(
                              data.HasEdge(mapping[e.src], mapping[e.dst]));
                        });
                        ++seen;
                        return true;
                      },
                      &result)
                  .ok());
  EXPECT_EQ(seen, 60u);
  EXPECT_EQ(result.embeddings, 60u);
}

TEST(EngineTest, CallbackCanStop) {
  Ccsr gc = Ccsr::Build(testing::Clique(6));
  CsceMatcher matcher(&gc);
  MatchOptions options;
  MatchResult result;
  uint64_t seen = 0;
  ASSERT_TRUE(matcher
                  .MatchWithCallback(
                      testing::Cycle(3), options,
                      [&seen](std::span<const VertexId>) {
                        return ++seen < 5;
                      },
                      &result)
                  .ok());
  EXPECT_EQ(seen, 5u);
}

TEST(EngineTest, TimeLimitFlagsTimeout) {
  // A pathologically large workload with an absurdly small limit.
  Graph data = testing::Clique(40);
  Ccsr gc = Ccsr::Build(data);
  MatchOptions options;
  options.variant = MatchVariant::kHomomorphic;
  options.time_limit_seconds = 0.02;
  MatchResult result = MustMatch(gc, testing::Clique(8), options);
  EXPECT_TRUE(result.timed_out);
}

TEST(EngineTest, SceReuseHappensAndPreservesCounts) {
  // Star data and star pattern: leaf candidates are reusable across
  // sibling leaves.
  Rng rng(71);
  Graph data = testing::RandomGraph(rng, 30, 0.25, 2, 1, false);
  Ccsr gc = Ccsr::Build(data);
  Graph pattern = testing::Star(3);
  MatchOptions with_sce;
  MatchOptions no_sce;
  no_sce.plan.use_sce = false;
  MatchResult a = MustMatch(gc, pattern, with_sce);
  MatchResult b = MustMatch(gc, pattern, no_sce);
  EXPECT_EQ(a.embeddings, b.embeddings);
  EXPECT_GT(a.candidate_sets_reused, 0u);  // reuse must actually occur
  EXPECT_EQ(b.candidate_sets_reused, 0u);
  EXPECT_LE(a.candidate_sets_computed, b.candidate_sets_computed);
}

TEST(EngineTest, RestrictionsGiveCanonicalCounts) {
  Rng rng(73);
  Graph data = testing::RandomGraph(rng, 15, 0.3, 1, 1, false);
  Ccsr gc = Ccsr::Build(data);
  Graph pattern = testing::Cycle(4);
  SymmetryInfo info = ComputeSymmetryBreaking(pattern);
  MatchOptions plain;
  MatchOptions restricted;
  restricted.restrictions = info.restrictions;
  uint64_t full = MustMatch(gc, pattern, plain).embeddings;
  uint64_t canonical = MustMatch(gc, pattern, restricted).embeddings;
  EXPECT_EQ(canonical * info.automorphism_count, full);
}

TEST(EngineTest, MatchesBruteForceOnLabeledDirected) {
  Rng rng(79);
  Graph data = testing::RandomGraph(rng, 12, 0.3, 3, 2, true);
  Graph pattern = testing::RandomGraph(rng, 4, 0.5, 3, 2, true);
  Ccsr gc = Ccsr::Build(data);
  for (auto variant :
       {MatchVariant::kEdgeInduced, MatchVariant::kVertexInduced,
        MatchVariant::kHomomorphic}) {
    MatchOptions options;
    options.variant = variant;
    EXPECT_EQ(MustMatch(gc, pattern, options).embeddings,
              CountEmbeddingsBruteForce(data, pattern, variant))
        << VariantName(variant);
  }
}

TEST(EngineTest, DisconnectedPatternSupported) {
  Graph data = testing::Clique(5);
  Ccsr gc = Ccsr::Build(data);
  // Two disjoint edges: 5*4 * 3*2 ordered choices.
  Graph pattern = MakeGraph(false, {0, 0, 0, 0}, {{0, 1, 0}, {2, 3, 0}});
  MatchOptions options;
  EXPECT_EQ(MustMatch(gc, pattern, options).embeddings,
            CountEmbeddingsBruteForce(data, pattern,
                                      MatchVariant::kEdgeInduced));
}

TEST(EngineTest, StageTimesPopulated) {
  Ccsr gc = Ccsr::Build(testing::Clique(6));
  MatchResult result = MustMatch(gc, testing::Cycle(3), MatchOptions{});
  EXPECT_GE(result.read_seconds, 0.0);
  EXPECT_GE(result.plan_seconds, 0.0);
  EXPECT_GE(result.enumerate_seconds, 0.0);
  EXPECT_GE(result.total_seconds, result.enumerate_seconds);
  EXPECT_GT(result.peak_rss_bytes, 0u);
  EXPECT_GT(result.search_nodes, 0u);
}

TEST(EngineTest, ExplainPlanExposesOrder) {
  Ccsr gc = Ccsr::Build(testing::Clique(6));
  CsceMatcher matcher(&gc);
  Plan plan;
  ASSERT_TRUE(
      matcher.ExplainPlan(testing::Cycle(4), MatchOptions{}, &plan).ok());
  EXPECT_EQ(plan.order.size(), 4u);
}

TEST(EngineTest, FailedRunZeroesStatsOnReusedExecutor) {
  // Regression: Run used to write `*stats` only on success, so a failed
  // Run on a reused executor left the previous run's counters in the
  // caller's struct — which then looked like a (wrong) completed run.
  Ccsr gc = Ccsr::Build(testing::Clique(5));
  Graph pattern = testing::Cycle(3);
  QueryClusters qc;
  ASSERT_TRUE(
      ReadClusters(gc, pattern, MatchVariant::kEdgeInduced, &qc).ok());
  Planner planner(&gc);
  Plan plan;
  ASSERT_TRUE(
      planner.MakePlan(pattern, MatchVariant::kEdgeInduced, PlanOptions{},
                       &plan)
          .ok());
  Executor executor(gc, qc, plan);

  ExecStats stats;
  ASSERT_TRUE(executor.Run(ExecOptions{}, &stats).ok());
  EXPECT_EQ(stats.embeddings, 60u);
  EXPECT_GT(stats.search_nodes, 0u);

  ExecOptions bad;
  bad.restrictions = {{99, 98}};  // out of range: Prepare fails
  EXPECT_FALSE(executor.Run(bad, &stats).ok());
  EXPECT_EQ(stats.embeddings, 0u);
  EXPECT_EQ(stats.search_nodes, 0u);
  EXPECT_EQ(stats.candidate_sets_computed, 0u);

  // The executor stays reusable after the failure.
  ASSERT_TRUE(executor.Run(ExecOptions{}, &stats).ok());
  EXPECT_EQ(stats.embeddings, 60u);
}

}  // namespace
}  // namespace csce
