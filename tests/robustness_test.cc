// Robustness: corrupted inputs must fail with Status (never crash or
// hang), limits must be honored, and deep recursion must be safe.

#include <gtest/gtest.h>

#include <sstream>

#include "ccsr/ccsr_io.h"
#include "engine/matcher.h"
#include "graph/graph_io.h"
#include "tests/test_util.h"
#include "util/timer.h"

namespace csce {
namespace {

TEST(RobustnessTest, CcsrLoadSurvivesAllTruncations) {
  Rng rng(501);
  Graph g = testing::RandomGraph(rng, 25, 0.25, 3, 2, true);
  Ccsr ccsr = Ccsr::Build(g);
  std::stringstream buffer;
  ASSERT_TRUE(SaveCcsrToStream(ccsr, buffer).ok());
  const std::string bytes = buffer.str();
  // Every proper prefix must be rejected cleanly.
  for (size_t len = 0; len < bytes.size(); len += 7) {
    std::stringstream truncated(bytes.substr(0, len));
    Ccsr out;
    Status st = LoadCcsrFromStream(truncated, &out);
    EXPECT_FALSE(st.ok()) << "prefix length " << len;
  }
}

TEST(RobustnessTest, CcsrLoadSurvivesBitFlips) {
  Rng rng(502);
  Graph g = testing::RandomGraph(rng, 15, 0.3, 2, 1, false);
  Ccsr ccsr = Ccsr::Build(g);
  std::stringstream buffer;
  ASSERT_TRUE(SaveCcsrToStream(ccsr, buffer).ok());
  const std::string bytes = buffer.str();
  // Flipping a byte may still parse (payload bytes), but must never
  // crash; magic/version corruption must be rejected.
  for (size_t pos = 0; pos < bytes.size(); pos += 97) {
    std::string corrupted = bytes;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x5A);
    std::stringstream in(corrupted);
    Ccsr out;
    Status st = LoadCcsrFromStream(in, &out);  // must return, any code
    if (pos < 8) {
      EXPECT_FALSE(st.ok()) << "header corruption undetected";
    }
  }
}

TEST(RobustnessTest, GraphLoadSurvivesGarbageLines) {
  const char* cases[] = {
      "",
      "garbage\n",
      "t undirected x y\n",
      "t undirected 1 0\nv 0\n",          // missing label still parses? no:
      "t undirected 2 1\nv 0 0\nv 1 0\ne 0\n",
      "t undirected 2 1\nv 0 0\nv 1 0\ne 0 5 0\n",  // endpoint range
      "t undirected 1 0\nv 0 0\nv 0 0\n",           // count mismatch
  };
  for (const char* text : cases) {
    Graph g;
    Status st = LoadGraphFromString(text, &g);
    EXPECT_FALSE(st.ok()) << "accepted: " << text;
  }
}

TEST(RobustnessTest, DeepPatternRecursionIsSafe) {
  // A 400-vertex path pattern on a 500-vertex path graph: recursion
  // depth equals pattern size.
  Graph data = testing::Path(500);
  Graph pattern = testing::Path(400);
  Ccsr gc = Ccsr::Build(data);
  CsceMatcher matcher(&gc);
  MatchOptions options;
  options.max_embeddings = 100;
  MatchResult result;
  ASSERT_TRUE(matcher.Match(pattern, options, &result).ok());
  EXPECT_GE(result.embeddings, 100u);
}

TEST(RobustnessTest, PatternLargerThanDataGivesZero) {
  Graph data = testing::Clique(4);
  Graph pattern = testing::Clique(6);
  Ccsr gc = Ccsr::Build(data);
  CsceMatcher matcher(&gc);
  for (auto variant :
       {MatchVariant::kEdgeInduced, MatchVariant::kVertexInduced}) {
    MatchOptions options;
    options.variant = variant;
    MatchResult result;
    ASSERT_TRUE(matcher.Match(pattern, options, &result).ok());
    EXPECT_EQ(result.embeddings, 0u);
  }
}

TEST(RobustnessTest, HomomorphismOntoSmallerGraphWorks) {
  // Unlike the injective variants, a big pattern can map onto a tiny
  // graph homomorphically.
  Graph data = testing::Path(2);
  Graph pattern = testing::Path(10);
  Ccsr gc = Ccsr::Build(data);
  CsceMatcher matcher(&gc);
  MatchOptions options;
  options.variant = MatchVariant::kHomomorphic;
  MatchResult result;
  ASSERT_TRUE(matcher.Match(pattern, options, &result).ok());
  EXPECT_EQ(result.embeddings, 2u);  // alternating walks
}

TEST(RobustnessTest, TimeLimitHonoredWithinTolerance) {
  Graph data = testing::Clique(40);
  Ccsr gc = Ccsr::Build(data);
  CsceMatcher matcher(&gc);
  MatchOptions options;
  options.variant = MatchVariant::kHomomorphic;
  options.time_limit_seconds = 0.05;
  WallTimer timer;
  MatchResult result;
  ASSERT_TRUE(matcher.Match(testing::Clique(9), options, &result).ok());
  EXPECT_TRUE(result.timed_out);
  EXPECT_LT(timer.Seconds(), 2.0);  // generous: deadline checks batch
}

TEST(RobustnessTest, DeterministicAcrossRuns) {
  Rng rng(503);
  Graph data = testing::RandomGraph(rng, 30, 0.2, 3, 2, true);
  Graph pattern = testing::RandomGraph(rng, 5, 0.5, 3, 2, true);
  Ccsr gc = Ccsr::Build(data);
  CsceMatcher matcher(&gc);
  MatchOptions options;
  MatchResult a;
  MatchResult b;
  ASSERT_TRUE(matcher.Match(pattern, options, &a).ok());
  ASSERT_TRUE(matcher.Match(pattern, options, &b).ok());
  EXPECT_EQ(a.embeddings, b.embeddings);
  EXPECT_EQ(a.search_nodes, b.search_nodes);
  EXPECT_EQ(a.candidate_sets_computed, b.candidate_sets_computed);
}

TEST(RobustnessTest, ReusedMatcherManyPatterns) {
  // One matcher, many patterns back to back: no state bleed.
  Rng rng(504);
  Graph data = testing::RandomGraph(rng, 25, 0.25, 2, 1, false);
  Ccsr gc = Ccsr::Build(data);
  CsceMatcher matcher(&gc);
  for (int i = 0; i < 20; ++i) {
    Graph pattern = testing::RandomGraph(rng, 4, 0.6, 2, 1, false);
    MatchOptions options;
    MatchResult once;
    MatchResult twice;
    ASSERT_TRUE(matcher.Match(pattern, options, &once).ok());
    ASSERT_TRUE(matcher.Match(pattern, options, &twice).ok());
    EXPECT_EQ(once.embeddings, twice.embeddings);
  }
}

TEST(RobustnessTest, EmptyDataGraph) {
  GraphBuilder b(false);
  Graph data;
  ASSERT_TRUE(b.Build(&data).ok());
  Ccsr gc = Ccsr::Build(data);
  CsceMatcher matcher(&gc);
  MatchOptions options;
  MatchResult result;
  ASSERT_TRUE(matcher.Match(testing::Path(2), options, &result).ok());
  EXPECT_EQ(result.embeddings, 0u);
}

}  // namespace
}  // namespace csce
