// Integration: the full pipeline (generate dataset analogue -> build
// CCSR -> persist -> reload -> plan -> execute) against the
// backtracking baseline on every variant each side supports.

#include <gtest/gtest.h>

#include <sstream>

#include "baselines/backtracking.h"
#include "ccsr/ccsr_io.h"
#include "engine/matcher.h"
#include "gen/datasets.h"
#include "gen/pattern_gen.h"
#include "tests/test_util.h"

namespace csce {
namespace {

struct DatasetCase {
  const char* name;
  Graph (*make)();
};

class DatasetIntegrationTest
    : public ::testing::TestWithParam<std::tuple<int, MatchVariant>> {
 protected:
  static Graph MakeDataset(int which) {
    switch (which) {
      case 0:
        return datasets::Dip();
      case 1:
        return datasets::Yeast();
      case 2:
        return datasets::Human();
      case 3:
        return datasets::Hprd();
      default:
        return datasets::Subcategory();
    }
  }
};

TEST_P(DatasetIntegrationTest, CsceAgreesWithBaselineEndToEnd) {
  auto [which, variant] = GetParam();
  Graph data = MakeDataset(which);

  // Round-trip the index through its binary format, as a deployment
  // would.
  Ccsr built = Ccsr::Build(data);
  std::stringstream buffer;
  ASSERT_TRUE(SaveCcsrToStream(built, buffer).ok());
  Ccsr index;
  ASSERT_TRUE(LoadCcsrFromStream(buffer, &index).ok());

  CsceMatcher matcher(&index);
  BacktrackingMatcher baseline(&data);
  Rng rng(1000 + which);
  for (uint32_t size : {4u, 6u}) {
    Graph pattern;
    ASSERT_TRUE(
        SamplePattern(data, size, PatternDensity::kDense, rng, &pattern)
            .ok());
    MatchOptions options;
    options.variant = variant;
    options.time_limit_seconds = 30;
    MatchResult ours;
    ASSERT_TRUE(matcher.Match(pattern, options, &ours).ok());

    BaselineOptions bopts;
    bopts.variant = variant;
    bopts.time_limit_seconds = 30;
    BaselineResult theirs;
    ASSERT_TRUE(baseline.Match(pattern, bopts, &theirs).ok());
    if (!ours.timed_out && !theirs.timed_out) {
      EXPECT_EQ(ours.embeddings, theirs.embeddings)
          << "dataset " << which << " size " << size;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallDatasets, DatasetIntegrationTest,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(MatchVariant::kEdgeInduced,
                                         MatchVariant::kVertexInduced,
                                         MatchVariant::kHomomorphic)));

TEST(IntegrationTest, LargePatternPlansAndExecutesWithLimit) {
  // A 32-vertex pattern through the whole pipeline; count capped so the
  // test stays quick, the point is that nothing breaks at this scale.
  // (Larger sizes can legitimately time out before the first embedding
  // — finding one embedding of a 64-vertex pattern is itself NP-hard.)
  Graph data = datasets::Patent(20);
  Ccsr index = Ccsr::Build(data);
  CsceMatcher matcher(&index);
  Rng rng(77);
  Graph pattern;
  ASSERT_TRUE(
      SamplePattern(data, 32, PatternDensity::kDense, rng, &pattern).ok());
  for (auto variant :
       {MatchVariant::kEdgeInduced, MatchVariant::kVertexInduced,
        MatchVariant::kHomomorphic}) {
    MatchOptions options;
    options.variant = variant;
    options.max_embeddings = 1000;
    options.time_limit_seconds = 30;
    MatchResult result;
    ASSERT_TRUE(matcher.Match(pattern, options, &result).ok());
    // Dense (induced) patterns occur at least once in their source.
    if (variant != MatchVariant::kVertexInduced && !result.timed_out) {
      EXPECT_GE(result.embeddings, 1u) << VariantName(variant);
    }
  }
}

TEST(IntegrationTest, DirectedHomomorphicPipeline) {
  Graph data = datasets::Subcategory();
  Ccsr index = Ccsr::Build(data);
  CsceMatcher matcher(&index);
  Rng rng(88);
  Graph pattern;
  ASSERT_TRUE(
      SamplePattern(data, 8, PatternDensity::kSparse, rng, &pattern).ok());
  MatchOptions options;
  options.variant = MatchVariant::kHomomorphic;
  options.time_limit_seconds = 20;
  MatchResult result;
  ASSERT_TRUE(matcher.Match(pattern, options, &result).ok());
  EXPECT_GE(result.embeddings, 1u);  // it was sampled from the graph
}

}  // namespace
}  // namespace csce
