#include "ccsr/compressed_row.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace csce {
namespace {

TEST(CompressedRowTest, RoundTripsSimpleRow) {
  std::vector<uint64_t> row = {0, 2, 2, 2, 5, 5, 6};
  CompressedRowIndex c = CompressedRowIndex::Compress(row);
  EXPECT_EQ(c.Decompress(), row);
  EXPECT_EQ(c.uncompressed_length(), row.size());
}

TEST(CompressedRowTest, CompressesRuns) {
  std::vector<uint64_t> row(1000, 42);
  CompressedRowIndex c = CompressedRowIndex::Compress(row);
  EXPECT_EQ(c.num_runs(), 1u);
  EXPECT_EQ(c.Decompress(), row);
}

TEST(CompressedRowTest, EmptyRow) {
  CompressedRowIndex c = CompressedRowIndex::Compress({});
  EXPECT_EQ(c.num_runs(), 0u);
  EXPECT_TRUE(c.Decompress().empty());
}

TEST(CompressedRowTest, NonEmptyRowEnumeration) {
  // Row index of a 5-vertex CSR: vertex 0 has [0,2), vertex 3 has [2,3).
  std::vector<uint64_t> row = {0, 2, 2, 2, 3, 3};
  CompressedRowIndex c = CompressedRowIndex::Compress(row);
  std::vector<std::tuple<uint64_t, uint64_t, uint64_t>> got;
  c.ForEachNonEmptyRow([&got](uint64_t v, uint64_t b, uint64_t e) {
    got.emplace_back(v, b, e);
  });
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], std::make_tuple(0u, 0u, 2u));
  EXPECT_EQ(got[1], std::make_tuple(3u, 2u, 3u));
}

TEST(CompressedRowTest, AllVerticesNonEmpty) {
  std::vector<uint64_t> row = {0, 1, 2, 3};
  CompressedRowIndex c = CompressedRowIndex::Compress(row);
  size_t count = 0;
  c.ForEachNonEmptyRow([&count](uint64_t v, uint64_t b, uint64_t e) {
    EXPECT_EQ(b, v);
    EXPECT_EQ(e, v + 1);
    ++count;
  });
  EXPECT_EQ(count, 3u);
}

class CompressedRowRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompressedRowRandomTest, RoundTripsRandomMonotoneRows) {
  Rng rng(GetParam());
  size_t n = 1 + rng.Uniform(500);
  std::vector<uint64_t> row(n);
  uint64_t value = 0;
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) value += rng.Uniform(5);
    row[i] = value;
  }
  CompressedRowIndex c = CompressedRowIndex::Compress(row);
  EXPECT_EQ(c.Decompress(), row);

  // ForEachNonEmptyRow must report exactly the strict increases.
  std::vector<uint64_t> non_empty;
  c.ForEachNonEmptyRow([&](uint64_t v, uint64_t b, uint64_t e) {
    EXPECT_EQ(row[v], b);
    EXPECT_EQ(row[v + 1], e);
    EXPECT_LT(b, e);
    non_empty.push_back(v);
  });
  std::vector<uint64_t> expected;
  for (size_t v = 0; v + 1 < n; ++v) {
    if (row[v + 1] > row[v]) expected.push_back(v);
  }
  EXPECT_EQ(non_empty, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressedRowRandomTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace csce
