// Loader-hardening corpus: every parse error in the text graph format
// and the binary CCSR artifact format must surface as a Status — never
// an abort, a crash, or a silently wrong graph. The binary side also
// runs a deterministic single-byte-flip and truncation sweep over a
// real artifact: whatever the damage, the loader either rejects it or
// produces an index that passes deep validation.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "ccsr/ccsr.h"
#include "ccsr/ccsr_io.h"
#include "graph/graph_io.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace csce {
namespace {

// ---------------------------------------------------------------------------
// Text format corpus

struct TextCase {
  const char* name;
  const char* text;
};

const TextCase kRejectedTexts[] = {
    {"empty", ""},
    {"comment_only", "# nothing here\n"},
    {"missing_header", "v 0 1\nv 1 1\ne 0 1\n"},
    {"record_before_header", "v 0 1\nt undirected 1 0\n"},
    {"edge_before_header", "e 0 1\nt undirected 2 1\ne 0 1\n"},
    {"duplicate_header",
     "t undirected 2 1\nt undirected 2 1\nv 0 1\nv 1 1\ne 0 1\n"},
    {"bad_direction", "t sideways 2 1\nv 0 1\nv 1 1\ne 0 1\n"},
    {"header_missing_counts", "t undirected\n"},
    {"unknown_record", "t undirected 1 0\nv 0 1\nx what\n"},
    {"bad_vertex_line", "t undirected 1 0\nv zero 1\n"},
    {"bad_edge_line", "t undirected 2 1\nv 0 1\nv 1 1\ne 0 one\n"},
    {"vertex_count_short", "t undirected 3 1\nv 0 1\nv 1 1\ne 0 1\n"},
    {"vertex_count_long", "t undirected 1 1\nv 0 1\nv 1 1\ne 0 1\n"},
    {"edge_count_short", "t undirected 2 2\nv 0 1\nv 1 1\ne 0 1\n"},
    {"edge_count_long", "t undirected 2 0\nv 0 1\nv 1 1\ne 0 1\n"},
    {"duplicate_vertex_id", "t undirected 2 1\nv 0 1\nv 0 2\ne 0 1\n"},
    {"vertex_id_out_of_range", "t undirected 2 1\nv 0 1\nv 7 1\ne 0 1\n"},
    {"vertex_id_overflow",
     "t undirected 2 1\nv 0 1\nv 99999999999 1\ne 0 1\n"},
    {"edge_endpoint_overflow",
     "t undirected 2 1\nv 0 1\nv 1 1\ne 0 99999999999\n"},
    {"edge_endpoint_out_of_range", "t undirected 2 1\nv 0 1\nv 1 1\ne 0 9\n"},
    {"self_loop", "t undirected 2 1\nv 0 1\nv 1 1\ne 1 1\n"},
    {"implausible_vertex_count", "t undirected 99999999999 0\n"},
    {"binary_junk", "t undirected 2 1\nv 0 1\nv 1 1\ne \x01\x02\x03\n"},
};

TEST(GraphIoFuzzTest, MalformedTextsRejectedWithStatus) {
  for (const TextCase& c : kRejectedTexts) {
    Graph g;
    Status st = LoadGraphFromString(c.text, &g);
    EXPECT_FALSE(st.ok()) << "case '" << c.name << "' was accepted";
    EXPECT_FALSE(st.ToString().empty()) << c.name;
  }
}

TEST(GraphIoFuzzTest, CleanTextStillLoads) {
  const char* text =
      "# a comment\n"
      "t undirected 3 2\n"
      "v 0 5\nv 1 5\nv 2 6\n"
      "e 0 1 2\ne 1 2\n";
  Graph g;
  Status st = LoadGraphFromString(text, &g);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1, 2));
  EXPECT_TRUE(g.HasEdge(1, 2, 0));  // elabel defaults to 0
}

TEST(GraphIoFuzzTest, RandomLineMutationsNeverCrash) {
  Rng rng(91);
  Graph base = testing::RandomGraph(rng, 20, 0.2, 3, 2, false);
  std::ostringstream out;
  ASSERT_TRUE(SaveGraphToStream(base, out).ok());
  const std::string text = out.str();
  // Deterministic sweep: delete each line, duplicate each line, and
  // flip a character in each line. Any outcome is fine except a crash
  // or a silently absurd graph.
  std::vector<std::string> lines;
  {
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  auto try_load = [](const std::vector<std::string>& ls) {
    std::string mutated;
    for (const std::string& l : ls) {
      mutated += l;
      mutated += '\n';
    }
    Graph g;
    Status st = LoadGraphFromString(mutated, &g);
    if (st.ok()) {
      EXPECT_LE(g.NumVertices(), 64u);
    }
  };
  for (size_t i = 0; i < lines.size(); ++i) {
    std::vector<std::string> dropped = lines;
    dropped.erase(dropped.begin() + static_cast<ptrdiff_t>(i));
    try_load(dropped);
    std::vector<std::string> doubled = lines;
    doubled.insert(doubled.begin() + static_cast<ptrdiff_t>(i), lines[i]);
    try_load(doubled);
    std::vector<std::string> flipped = lines;
    if (!flipped[i].empty()) {
      size_t pos = rng.Uniform(static_cast<uint32_t>(flipped[i].size()));
      flipped[i][pos] = static_cast<char>('0' + rng.Uniform(10));
      try_load(flipped);
    }
  }
}

// ---------------------------------------------------------------------------
// Binary CCSR artifact corpus

std::string MakeArtifact(bool directed) {
  Rng rng(directed ? 92 : 93);
  Graph g = testing::RandomGraph(rng, 24, 0.15, 3, 2, directed);
  Ccsr gc = Ccsr::Build(g);
  std::stringstream buffer;
  Status st = SaveCcsrToStream(gc, buffer);
  CSCE_CHECK(st.ok());
  return buffer.str();
}

TEST(CcsrIoFuzzTest, EveryTruncationRejected) {
  for (bool directed : {false, true}) {
    const std::string bytes = MakeArtifact(directed);
    for (size_t len = 0; len < bytes.size(); ++len) {
      std::istringstream in(bytes.substr(0, len));
      Ccsr out;
      Status st = LoadCcsrFromStream(in, &out);
      EXPECT_FALSE(st.ok()) << "prefix of " << len << " bytes accepted";
    }
  }
}

TEST(CcsrIoFuzzTest, EveryByteFlipRejectedOrStillValid) {
  for (bool directed : {false, true}) {
    const std::string bytes = MakeArtifact(directed);
    for (size_t i = 0; i < bytes.size(); ++i) {
      for (unsigned char delta : {0x01, 0x80}) {
        std::string mutated = bytes;
        mutated[i] = static_cast<char>(mutated[i] ^ delta);
        std::istringstream in(mutated);
        Ccsr out;
        Status st = LoadCcsrFromStream(in, &out);
        if (st.ok()) {
          // Some flips are semantically harmless (an isolated vertex's
          // label, say). If the loader accepts, the deep validator must
          // agree — the loader's contract is "never load garbage".
          Status deep = out.Validate();
          EXPECT_TRUE(deep.ok())
              << "byte " << i << " xor " << static_cast<int>(delta)
              << " loaded but fails validation: " << deep.ToString();
        }
      }
    }
  }
}

TEST(CcsrIoFuzzTest, GarbageHeadersRejected) {
  const std::string junk_cases[] = {
      std::string(),
      std::string("\x00\x00\x00\x00", 4),
      std::string("CCSRCCSRCCSR"),
      std::string(64, '\xff'),
      std::string(1024, 'A'),
  };
  for (const std::string& junk : junk_cases) {
    std::istringstream in(junk);
    Ccsr out;
    EXPECT_FALSE(LoadCcsrFromStream(in, &out).ok());
  }
}

}  // namespace
}  // namespace csce
