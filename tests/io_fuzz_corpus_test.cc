// Loader-hardening corpus: every parse error in the text graph format
// and the binary CCSR artifact format must surface as a Status — never
// an abort, a crash, or a silently wrong graph. The binary side also
// runs a deterministic single-byte-flip and truncation sweep over a
// real artifact: whatever the damage, the loader either rejects it or
// produces an index that passes deep validation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ccsr/ccsr.h"
#include "ccsr/ccsr_io.h"
#include "ccsr/ccsr_mmap.h"
#include "ccsr/ccsr_v2_format.h"
#include "graph/graph_io.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace csce {
namespace {

// ---------------------------------------------------------------------------
// Text format corpus

struct TextCase {
  const char* name;
  const char* text;
};

const TextCase kRejectedTexts[] = {
    {"empty", ""},
    {"comment_only", "# nothing here\n"},
    {"missing_header", "v 0 1\nv 1 1\ne 0 1\n"},
    {"record_before_header", "v 0 1\nt undirected 1 0\n"},
    {"edge_before_header", "e 0 1\nt undirected 2 1\ne 0 1\n"},
    {"duplicate_header",
     "t undirected 2 1\nt undirected 2 1\nv 0 1\nv 1 1\ne 0 1\n"},
    {"bad_direction", "t sideways 2 1\nv 0 1\nv 1 1\ne 0 1\n"},
    {"header_missing_counts", "t undirected\n"},
    {"unknown_record", "t undirected 1 0\nv 0 1\nx what\n"},
    {"bad_vertex_line", "t undirected 1 0\nv zero 1\n"},
    {"bad_edge_line", "t undirected 2 1\nv 0 1\nv 1 1\ne 0 one\n"},
    {"vertex_count_short", "t undirected 3 1\nv 0 1\nv 1 1\ne 0 1\n"},
    {"vertex_count_long", "t undirected 1 1\nv 0 1\nv 1 1\ne 0 1\n"},
    {"edge_count_short", "t undirected 2 2\nv 0 1\nv 1 1\ne 0 1\n"},
    {"edge_count_long", "t undirected 2 0\nv 0 1\nv 1 1\ne 0 1\n"},
    {"duplicate_vertex_id", "t undirected 2 1\nv 0 1\nv 0 2\ne 0 1\n"},
    {"vertex_id_out_of_range", "t undirected 2 1\nv 0 1\nv 7 1\ne 0 1\n"},
    {"vertex_id_overflow",
     "t undirected 2 1\nv 0 1\nv 99999999999 1\ne 0 1\n"},
    {"edge_endpoint_overflow",
     "t undirected 2 1\nv 0 1\nv 1 1\ne 0 99999999999\n"},
    {"edge_endpoint_out_of_range", "t undirected 2 1\nv 0 1\nv 1 1\ne 0 9\n"},
    {"self_loop", "t undirected 2 1\nv 0 1\nv 1 1\ne 1 1\n"},
    {"implausible_vertex_count", "t undirected 99999999999 0\n"},
    {"binary_junk", "t undirected 2 1\nv 0 1\nv 1 1\ne \x01\x02\x03\n"},
};

TEST(GraphIoFuzzTest, MalformedTextsRejectedWithStatus) {
  for (const TextCase& c : kRejectedTexts) {
    Graph g;
    Status st = LoadGraphFromString(c.text, &g);
    EXPECT_FALSE(st.ok()) << "case '" << c.name << "' was accepted";
    EXPECT_FALSE(st.ToString().empty()) << c.name;
  }
}

TEST(GraphIoFuzzTest, CleanTextStillLoads) {
  const char* text =
      "# a comment\n"
      "t undirected 3 2\n"
      "v 0 5\nv 1 5\nv 2 6\n"
      "e 0 1 2\ne 1 2\n";
  Graph g;
  Status st = LoadGraphFromString(text, &g);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1, 2));
  EXPECT_TRUE(g.HasEdge(1, 2, 0));  // elabel defaults to 0
}

TEST(GraphIoFuzzTest, RandomLineMutationsNeverCrash) {
  Rng rng(91);
  Graph base = testing::RandomGraph(rng, 20, 0.2, 3, 2, false);
  std::ostringstream out;
  ASSERT_TRUE(SaveGraphToStream(base, out).ok());
  const std::string text = out.str();
  // Deterministic sweep: delete each line, duplicate each line, and
  // flip a character in each line. Any outcome is fine except a crash
  // or a silently absurd graph.
  std::vector<std::string> lines;
  {
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  auto try_load = [](const std::vector<std::string>& ls) {
    std::string mutated;
    for (const std::string& l : ls) {
      mutated += l;
      mutated += '\n';
    }
    Graph g;
    Status st = LoadGraphFromString(mutated, &g);
    if (st.ok()) {
      EXPECT_LE(g.NumVertices(), 64u);
    }
  };
  for (size_t i = 0; i < lines.size(); ++i) {
    std::vector<std::string> dropped = lines;
    dropped.erase(dropped.begin() + static_cast<ptrdiff_t>(i));
    try_load(dropped);
    std::vector<std::string> doubled = lines;
    doubled.insert(doubled.begin() + static_cast<ptrdiff_t>(i), lines[i]);
    try_load(doubled);
    std::vector<std::string> flipped = lines;
    if (!flipped[i].empty()) {
      size_t pos = rng.Uniform(static_cast<uint32_t>(flipped[i].size()));
      flipped[i][pos] = static_cast<char>('0' + rng.Uniform(10));
      try_load(flipped);
    }
  }
}

// ---------------------------------------------------------------------------
// Binary CCSR artifact corpus

std::string MakeArtifact(bool directed) {
  Rng rng(directed ? 92 : 93);
  Graph g = testing::RandomGraph(rng, 24, 0.15, 3, 2, directed);
  Ccsr gc = Ccsr::Build(g);
  std::stringstream buffer;
  Status st = SaveCcsrToStream(gc, buffer);
  CSCE_CHECK(st.ok());
  return buffer.str();
}

TEST(CcsrIoFuzzTest, EveryTruncationRejected) {
  for (bool directed : {false, true}) {
    const std::string bytes = MakeArtifact(directed);
    for (size_t len = 0; len < bytes.size(); ++len) {
      std::istringstream in(bytes.substr(0, len));
      Ccsr out;
      Status st = LoadCcsrFromStream(in, &out);
      EXPECT_FALSE(st.ok()) << "prefix of " << len << " bytes accepted";
    }
  }
}

TEST(CcsrIoFuzzTest, EveryByteFlipRejectedOrStillValid) {
  for (bool directed : {false, true}) {
    const std::string bytes = MakeArtifact(directed);
    for (size_t i = 0; i < bytes.size(); ++i) {
      for (unsigned char delta : {0x01, 0x80}) {
        std::string mutated = bytes;
        mutated[i] = static_cast<char>(mutated[i] ^ delta);
        std::istringstream in(mutated);
        Ccsr out;
        Status st = LoadCcsrFromStream(in, &out);
        if (st.ok()) {
          // Some flips are semantically harmless (an isolated vertex's
          // label, say). If the loader accepts, the deep validator must
          // agree — the loader's contract is "never load garbage".
          Status deep = out.Validate();
          EXPECT_TRUE(deep.ok())
              << "byte " << i << " xor " << static_cast<int>(delta)
              << " loaded but fails validation: " << deep.ToString();
        }
      }
    }
  }
}

// v2 (mmap) artifact: truncating at — and one byte either side of —
// every section boundary, every cluster-payload array boundary, and the
// final byte must be rejected at Open() time. `file_bytes` in the
// header pins the exact size, so no prefix may ever bind spans.
TEST(CcsrIoFuzzTest, EveryV2SectionBoundaryTruncationRejected) {
  for (bool directed : {false, true}) {
    Rng rng(directed ? 94 : 95);
    Graph g = testing::RandomGraph(rng, 24, 0.15, 3, 2, directed);
    Ccsr gc = Ccsr::Build(g);
    const std::string path = ::testing::TempDir() + "/io_fuzz_v2.ccsr";
    ASSERT_TRUE(SaveCcsrToFileV2(gc, path).ok());
    std::string bytes;
    {
      std::ifstream in(path, std::ios::binary);
      ASSERT_TRUE(in.good());
      bytes.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
    }
    V2Header header;
    ASSERT_GE(bytes.size(), sizeof(V2Header));
    std::memcpy(&header, bytes.data(), sizeof(V2Header));
    ASSERT_EQ(header.file_bytes, bytes.size());

    std::vector<size_t> boundaries = {0, 4, sizeof(V2Header), kV2PageBytes};
    auto add_section = [&boundaries](const V2Section& s) {
      boundaries.push_back(static_cast<size_t>(s.offset));
      boundaries.push_back(static_cast<size_t>(s.offset + s.length));
    };
    add_section(header.vlabels);
    add_section(header.out_degree);
    add_section(header.in_degree);
    add_section(header.vlabel_freq);
    add_section(header.directory);
    add_section(header.payload);
    for (uint64_t i = 0; i < header.num_clusters; ++i) {
      V2DirEntry e;
      std::memcpy(&e, bytes.data() + header.directory.offset +
                          i * sizeof(V2DirEntry),
                  sizeof(V2DirEntry));
      for (uint64_t off : {e.out_runs_offset, e.out_cols_offset,
                           e.in_runs_offset, e.in_cols_offset}) {
        boundaries.push_back(static_cast<size_t>(off));
      }
    }
    boundaries.push_back(bytes.size() - 1);
    std::sort(boundaries.begin(), boundaries.end());
    boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                     boundaries.end());

    const std::string chopped = ::testing::TempDir() + "/io_fuzz_v2_chop";
    for (size_t b : boundaries) {
      for (size_t len : {b > 0 ? b - 1 : 0, b, b + 1}) {
        if (len >= bytes.size()) continue;  // not a truncation
        {
          std::ofstream out(chopped, std::ios::binary | std::ios::trunc);
          out.write(bytes.data(), static_cast<std::streamsize>(len));
          ASSERT_TRUE(out.good());
        }
        std::unique_ptr<MmapCcsr> mapped;
        EXPECT_FALSE(MmapCcsr::Open(chopped, &mapped).ok())
            << "v2 prefix of " << len << " bytes accepted by mmap open";
        Ccsr out;
        EXPECT_FALSE(LoadCcsrFromFile(chopped, &out).ok())
            << "v2 prefix of " << len << " bytes accepted by the loader";
      }
    }
    std::remove(chopped.c_str());
    std::remove(path.c_str());
  }
}

TEST(CcsrIoFuzzTest, GarbageHeadersRejected) {
  const std::string junk_cases[] = {
      std::string(),
      std::string("\x00\x00\x00\x00", 4),
      std::string("CCSRCCSRCCSR"),
      std::string(64, '\xff'),
      std::string(1024, 'A'),
  };
  for (const std::string& junk : junk_cases) {
    std::istringstream in(junk);
    Ccsr out;
    EXPECT_FALSE(LoadCcsrFromStream(in, &out).ok());
  }
}

}  // namespace
}  // namespace csce
