// Feature-interaction matrix: every planner/engine feature combination
// must stay correct, on directed and undirected heterogeneous graphs,
// with and without the cross-query cluster cache. This is the widest
// sweep in the suite; each case is tiny so the whole suite stays fast.

#include <gtest/gtest.h>

#include <tuple>

#include "ccsr/cluster_cache.h"
#include "engine/matcher.h"
#include "graph/isomorphism.h"
#include "plan/symmetry.h"
#include "tests/test_util.h"

namespace csce {
namespace {

// (seed, directed, use_cache, feature-mask)
using MatrixParam = std::tuple<uint64_t, bool, bool, int>;

class FeatureMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(FeatureMatrixTest, EveryFeatureComboMatchesOracle) {
  auto [seed, directed, use_cache, mask] = GetParam();
  Rng rng(seed * 65537 + mask * 101 + (directed ? 7 : 0));
  Graph data = testing::RandomGraph(rng, 13, 0.3, 2, 2, directed);
  Graph pattern = testing::RandomGraph(rng, 4, 0.55, 2, 2, directed);

  Ccsr gc = Ccsr::Build(data);
  ClusterCache cache(&gc);
  CsceMatcher matcher(&gc, use_cache ? &cache : nullptr);

  MatchOptions options;
  options.plan.use_sce = (mask & 1) != 0;
  options.plan.use_nec = (mask & 2) != 0;
  options.plan.use_ldsf = (mask & 4) != 0;
  options.plan.use_cluster_tiebreak = (mask & 8) != 0;
  options.plan.use_degree_filter = (mask & 16) != 0;
  options.plan.use_cost_based = (mask & 32) != 0;

  for (auto variant :
       {MatchVariant::kEdgeInduced, MatchVariant::kVertexInduced,
        MatchVariant::kHomomorphic}) {
    options.variant = variant;
    MatchResult result;
    ASSERT_TRUE(matcher.Match(pattern, options, &result).ok());
    EXPECT_EQ(result.embeddings,
              CountEmbeddingsBruteForce(data, pattern, variant))
        << VariantName(variant) << " mask=" << mask;
  }
}

// Masks chosen to cover each feature off alone, all-on, all-off, and a
// few mixed combinations (full 2^6 x seeds x ... would be excessive).
INSTANTIATE_TEST_SUITE_P(
    Combos, FeatureMatrixTest,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 3),
                       ::testing::Bool(),  // directed
                       ::testing::Bool(),  // cluster cache
                       ::testing::Values(0,       // everything off
                                         63,      // everything on
                                         62,      // -sce
                                         61,      // -nec
                                         59,      // -ldsf
                                         47,      // -degree filter
                                         32,      // cost-based only
                                         33)));   // cost-based + sce

// Restrictions interact with every variant and the cache.
class RestrictionMatrixTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

TEST_P(RestrictionMatrixTest, SymmetryCountsConsistentEverywhere) {
  auto [seed, use_cache] = GetParam();
  Rng rng(seed * 31 + 5);
  Graph data = testing::RandomGraph(rng, 14, 0.3, 1, 1, false);
  Ccsr gc = Ccsr::Build(data);
  ClusterCache cache(&gc);
  CsceMatcher matcher(&gc, use_cache ? &cache : nullptr);
  for (const Graph& pattern :
       {testing::Cycle(4), testing::Star(3), testing::Clique(3),
        testing::Path(4)}) {
    SymmetryInfo info = ComputeSymmetryBreaking(pattern);
    for (auto variant :
         {MatchVariant::kEdgeInduced, MatchVariant::kVertexInduced}) {
      MatchOptions plain;
      plain.variant = variant;
      MatchOptions restricted = plain;
      restricted.restrictions = info.restrictions;
      MatchResult full;
      MatchResult canonical;
      ASSERT_TRUE(matcher.Match(pattern, plain, &full).ok());
      ASSERT_TRUE(matcher.Match(pattern, restricted, &canonical).ok());
      EXPECT_EQ(canonical.embeddings * info.automorphism_count,
                full.embeddings)
          << VariantName(variant);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RestrictionMatrixTest,
                         ::testing::Combine(::testing::Range<uint64_t>(0, 5),
                                            ::testing::Bool()));

}  // namespace
}  // namespace csce
