// Deterministic fault-injection coverage for the shard layer's
// supervision/recovery machinery: every FaultKind, over every worker
// deployment (in-process loopback threads, forked processes over Unix
// socketpairs, TCP loopback), must end with merged counts and embedding
// rows byte-identical to the single-node run and with the restart/retry
// accounting showing the recovery actually happened. The backoff state
// machine is unit-tested against a fake clock so nothing here sleeps
// real backoff time, and TransportError assertions key off structured
// causes (fault kind, errno, frame type), never message text.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ccsr/ccsr.h"
#include "ccsr/ccsr_io.h"
#include "engine/matcher.h"
#include "gen/datasets.h"
#include "gen/pattern_gen.h"
#include "shard/coordinator.h"
#include "shard/fault.h"
#include "shard/shard_plan.h"
#include "shard/supervision.h"
#include "shard/transport.h"
#include "shard/wire.h"
#include "shard/worker.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace csce {
namespace shard {
namespace {

// ------------------------------------------------ backoff (fake clock)

SupervisionOptions BackoffKnobs() {
  SupervisionOptions opts;
  opts.backoff_initial_seconds = 0.1;
  opts.backoff_max_seconds = 0.4;
  opts.backoff_reset_seconds = 10.0;
  opts.max_restarts = 3;
  return opts;
}

TEST(BackoffStateTest, DelayDoublesPerConsecutiveFailureUpToCap) {
  BackoffState backoff(BackoffKnobs());
  double delay = -1.0;
  EXPECT_EQ(backoff.OnFailure(100.0, &delay), BackoffState::Decision::kRestart);
  EXPECT_DOUBLE_EQ(delay, 0.1);
  EXPECT_EQ(backoff.OnFailure(100.5, &delay), BackoffState::Decision::kRestart);
  EXPECT_DOUBLE_EQ(delay, 0.2);
  EXPECT_EQ(backoff.OnFailure(101.0, &delay), BackoffState::Decision::kRestart);
  EXPECT_DOUBLE_EQ(delay, 0.4);  // 0.1 * 2^2, capped at max from here on
  EXPECT_EQ(backoff.consecutive_failures(), 3u);
  EXPECT_EQ(backoff.total_restarts(), 3u);
}

TEST(BackoffStateTest, GivesUpOnceTheBurstExhaustsTheBudget) {
  BackoffState backoff(BackoffKnobs());
  double delay = -1.0;
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(backoff.OnFailure(100.0 + i, &delay),
              BackoffState::Decision::kRestart);
  }
  EXPECT_EQ(backoff.OnFailure(104.0, &delay),
            BackoffState::Decision::kGiveUp);
  EXPECT_DOUBLE_EQ(delay, 0.0);
}

TEST(BackoffStateTest, ZeroBudgetMeansNeverRestart) {
  SupervisionOptions opts = BackoffKnobs();
  opts.max_restarts = 0;
  BackoffState backoff(opts);
  double delay = -1.0;
  EXPECT_EQ(backoff.OnFailure(1.0, &delay), BackoffState::Decision::kGiveUp);
}

TEST(BackoffStateTest, QuietPeriodStartsAFreshBurst) {
  BackoffState backoff(BackoffKnobs());
  double delay = -1.0;
  ASSERT_EQ(backoff.OnFailure(100.0, &delay),
            BackoffState::Decision::kRestart);
  ASSERT_EQ(backoff.OnFailure(100.1, &delay),
            BackoffState::Decision::kRestart);
  EXPECT_DOUBLE_EQ(delay, 0.2);
  // 10+ fake seconds of health: the next failure is a fresh burst at
  // the initial delay, but lifetime totals keep accumulating.
  ASSERT_EQ(backoff.OnFailure(120.0, &delay),
            BackoffState::Decision::kRestart);
  EXPECT_DOUBLE_EQ(delay, 0.1);
  EXPECT_EQ(backoff.consecutive_failures(), 1u);
  EXPECT_EQ(backoff.total_restarts(), 3u);
}

TEST(BackoffStateTest, SuccessEndsTheBurstWithoutErasingHistory) {
  BackoffState backoff(BackoffKnobs());
  double delay = -1.0;
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(backoff.OnFailure(100.0 + i, &delay),
              BackoffState::Decision::kRestart);
  }
  backoff.OnSuccess(103.0);
  EXPECT_EQ(backoff.consecutive_failures(), 0u);
  EXPECT_EQ(backoff.total_restarts(), 3u);
  // The budget is available again after the success.
  EXPECT_EQ(backoff.OnFailure(103.5, &delay),
            BackoffState::Decision::kRestart);
  EXPECT_DOUBLE_EQ(delay, 0.1);
}

// ------------------------------------------------------ fault-plan DSL

TEST(FaultPlanTest, ParsesEveryKindAndCountsFirings) {
  std::shared_ptr<FaultInjector> injector;
  ASSERT_TRUE(FaultInjector::Parse(
                  "kill@1:3, truncate@0:2, delay@2:500, drop-ping@1:2, "
                  "bad-hello@0:1",
                  &injector)
                  .ok());
  ASSERT_EQ(injector->specs().size(), 5u);
  EXPECT_EQ(injector->specs()[0].kind, FaultKind::kKillAfterFrames);
  EXPECT_EQ(injector->specs()[0].shard, 1u);
  EXPECT_EQ(injector->specs()[0].arg, 3u);
  EXPECT_EQ(injector->specs()[2].kind, FaultKind::kDelayResponse);
  EXPECT_EQ(injector->specs()[2].arg, 500u);
  EXPECT_EQ(injector->fired_total(), 0u);
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  std::shared_ptr<FaultInjector> injector;
  EXPECT_FALSE(FaultInjector::Parse("explode@0:1", &injector).ok());
  EXPECT_FALSE(FaultInjector::Parse("kill@0", &injector).ok());
  EXPECT_FALSE(FaultInjector::Parse("kill@x:1", &injector).ok());
  EXPECT_FALSE(FaultInjector::Parse("kill@0:y", &injector).ok());
  EXPECT_FALSE(FaultInjector::Parse("kill0:1", &injector).ok());
}

// ------------------------------------------- transport error structure

TEST(TransportErrorTest, ClosedPeerYieldsStructuredCause) {
  std::unique_ptr<Transport> near, far;
  MakeLoopbackPair(&near, &far);
  far->Close();
  wire::Frame frame{static_cast<uint32_t>(wire::MsgType::kPing), {}};
  EXPECT_FALSE(near->Send(frame).ok());
  const TransportError& err = near->last_error();
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.fault, TransportFault::kClosed);
  EXPECT_EQ(err.frame_type, static_cast<uint32_t>(wire::MsgType::kPing));
}

TEST(TransportErrorTest, ReadDeadlineYieldsTimeoutCause) {
  std::unique_ptr<Transport> near, far;
  MakeLoopbackPair(&near, &far);
  near->set_read_deadline(0.02);
  wire::Frame frame;
  EXPECT_FALSE(near->Recv(&frame).ok());
  EXPECT_EQ(near->last_error().fault, TransportFault::kTimeout);
}

TEST(TransportErrorTest, RefusedTcpConnectCarriesErrno) {
  std::unique_ptr<TcpListener> listener;
  ASSERT_TRUE(TcpListener::Listen("127.0.0.1", 0, &listener).ok());
  const uint16_t dead_port = listener->port();
  listener->Close();  // nothing listens on dead_port any more

  TransportDeadlines deadlines;
  deadlines.connect_seconds = 2.0;
  std::unique_ptr<Transport> transport;
  Status st = ConnectTcp("127.0.0.1", dead_port, deadlines, &transport);
  EXPECT_FALSE(st.ok());
}

TEST(TransportErrorTest, FaultNamesAreStableForLogs) {
  EXPECT_STREQ(TransportFaultName(TransportFault::kClosed), "closed");
  EXPECT_STREQ(TransportFaultName(TransportFault::kTimeout), "timeout");
  EXPECT_STREQ(TransportFaultName(TransportFault::kCorruption), "corruption");
  EXPECT_STREQ(TransportFaultName(TransportFault::kHandshake), "handshake");
  TransportError err;
  err.fault = TransportFault::kCorruption;
  EXPECT_EQ(err.ToStatus().code(), StatusCode::kCorruption);
  err.fault = TransportFault::kTimeout;
  EXPECT_EQ(err.ToStatus().code(), StatusCode::kIOError);
}

// ----------------------------------------------- recovery cross-checks

struct Baseline {
  uint64_t embeddings = 0;
  std::vector<std::vector<VertexId>> rows;  // sorted
};

std::vector<std::vector<VertexId>> SortedRows(
    const std::vector<VertexId>& flat, uint32_t width) {
  std::vector<std::vector<VertexId>> rows;
  if (width == 0) return rows;
  for (size_t off = 0; off + width <= flat.size(); off += width) {
    rows.emplace_back(flat.begin() + off, flat.begin() + off + width);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

Baseline SingleNode(const Ccsr& index, const Graph& pattern) {
  CsceMatcher matcher(&index);
  MatchOptions options;
  std::vector<VertexId> flat;
  MatchResult result;
  Status st = matcher.MatchWithCallback(
      pattern, options,
      [&](std::span<const VertexId> mapping) {
        flat.insert(flat.end(), mapping.begin(), mapping.end());
        return true;
      },
      &result);
  CSCE_CHECK(st.ok());
  Baseline b;
  b.embeddings = result.embeddings;
  b.rows = SortedRows(flat, pattern.NumVertices());
  return b;
}

/// One fault scenario: the plan entry, and whether it fires during
/// load/handshake (recovery visible only in the coordinator's lifetime
/// totals) or mid-query (visible in the ShardResult deltas too).
/// Frame ordinals per worker: kHelloAck=1, kLoadAck=2, then per query
/// kPong=3, plan-ack=4, root batch=5, extend batches=6... — so :5
/// lands on a query-round reply and delay/bad-hello hit the handshake.
struct FaultCase {
  const char* plan;
  bool fires_at_load;
};

const FaultCase kFaultCases[] = {
    {"kill@0:5", false},     {"truncate@0:5", false},
    {"delay@0:600", true},   {"drop-ping@0:1", false},
    {"bad-hello@0:1", true},
};

/// Supervision tuned so injected faults resolve in milliseconds: the
/// heartbeat deadline catches the delayed worker fast and backoff waits
/// are token-sized.
SupervisionOptions FastSupervision() {
  SupervisionOptions sup;
  sup.round_timeout_seconds = 5.0;
  sup.heartbeat_timeout_seconds = 0.25;
  sup.backoff_initial_seconds = 0.001;
  sup.backoff_max_seconds = 0.01;
  return sup;
}

class ShardFaultInjectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new Graph(datasets::Patent(18));
    index_ = new Ccsr(Ccsr::Build(*data_));
    Rng rng(71);
    pattern_ = new Graph();
    CSCE_CHECK(
        SamplePattern(*data_, 4, PatternDensity::kDense, rng, pattern_).ok());
    baseline_ = new Baseline(SingleNode(*index_, *pattern_));
    CSCE_CHECK(baseline_->embeddings > 0);
  }
  static void TearDownTestSuite() {
    delete baseline_;
    delete pattern_;
    delete index_;
    delete data_;
    baseline_ = nullptr;
    pattern_ = nullptr;
    index_ = nullptr;
    data_ = nullptr;
  }

  /// Runs the query on a faulted in-process cluster (loopback or TCP)
  /// and asserts exactly-once recovery: identical rows, fault actually
  /// fired, restart accounting nonzero.
  static void ExpectRecovery(const FaultCase& fc, ClusterTransport transport) {
    SCOPED_TRACE(std::string("plan=") + fc.plan);
    std::shared_ptr<FaultInjector> injector;
    ASSERT_TRUE(FaultInjector::Parse(fc.plan, &injector).ok());
    InProcessClusterOptions opts;
    opts.supervision = FastSupervision();
    opts.faults = injector;
    opts.transport = transport;
    std::unique_ptr<InProcessCluster> cluster;
    ASSERT_TRUE(InProcessCluster::Create(*data_, index_, /*num_shards=*/2,
                                         PartitionStrategy::kHash,
                                         /*threads_per_worker=*/1, opts,
                                         &cluster)
                    .ok());
    CoordinatorOptions options;
    options.collect_embeddings = true;
    options.self_check = true;
    ShardResult result;
    Status st = cluster->coordinator().Execute(*pattern_, options, &result);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(result.embeddings, baseline_->embeddings);
    EXPECT_EQ(SortedRows(result.embedding_data, result.embedding_width),
              baseline_->rows);
    EXPECT_GE(injector->fired_total(), 1u);
    if (fc.fires_at_load) {
      EXPECT_GE(cluster->coordinator().restarts_total(), 1u);
    } else {
      EXPECT_GE(result.worker_restarts, 1u);
      EXPECT_GE(result.frames_retried, 1u);
      EXPECT_EQ(cluster->coordinator().retries_total(),
                result.frames_retried);
    }
  }

  static Graph* data_;
  static Ccsr* index_;
  static Graph* pattern_;
  static Baseline* baseline_;
};

Graph* ShardFaultInjectionTest::data_ = nullptr;
Ccsr* ShardFaultInjectionTest::index_ = nullptr;
Graph* ShardFaultInjectionTest::pattern_ = nullptr;
Baseline* ShardFaultInjectionTest::baseline_ = nullptr;

TEST_F(ShardFaultInjectionTest, InProcessLoopbackRecoversFromEveryFault) {
  for (const FaultCase& fc : kFaultCases) {
    ExpectRecovery(fc, ClusterTransport::kLoopback);
  }
}

TEST_F(ShardFaultInjectionTest, TcpLoopbackRecoversFromEveryFault) {
  for (const FaultCase& fc : kFaultCases) {
    ExpectRecovery(fc, ClusterTransport::kTcp);
  }
}

TEST_F(ShardFaultInjectionTest, SupervisionDisabledFailsFastOnKill) {
  std::shared_ptr<FaultInjector> injector;
  ASSERT_TRUE(FaultInjector::Parse("kill@0:5", &injector).ok());
  InProcessClusterOptions opts;
  opts.supervision = FastSupervision();
  opts.supervision.enabled = false;
  opts.faults = injector;
  std::unique_ptr<InProcessCluster> cluster;
  ASSERT_TRUE(InProcessCluster::Create(*data_, index_, 2,
                                       PartitionStrategy::kHash, 1, opts,
                                       &cluster)
                  .ok());
  CoordinatorOptions options;
  ShardResult result;
  Status st = cluster->coordinator().Execute(*pattern_, options, &result);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(result.worker_restarts, 0u);
}

TEST_F(ShardFaultInjectionTest, RestartBudgetExhaustionFailsTheQuery) {
  // Kill the worker's very first frame and every replacement's too:
  // one kill spec per allowed incarnation, so each restart dies again
  // until the budget is gone.
  std::shared_ptr<FaultInjector> injector;
  ASSERT_TRUE(FaultInjector::Parse(
                  "kill@0:0, kill@0:0, kill@0:0, kill@0:0, kill@0:0",
                  &injector)
                  .ok());
  InProcessClusterOptions opts;
  opts.supervision = FastSupervision();
  opts.supervision.max_restarts = 2;
  opts.faults = injector;
  std::unique_ptr<InProcessCluster> cluster;
  Status create = InProcessCluster::Create(*data_, index_, 2,
                                           PartitionStrategy::kHash, 1, opts,
                                           &cluster);
  // The budget dies during load (the kill fires on the handshake), so
  // either creation fails or the first query does; both are "gave up".
  if (create.ok()) {
    CoordinatorOptions options;
    ShardResult result;
    EXPECT_FALSE(
        cluster->coordinator().Execute(*pattern_, options, &result).ok());
  } else {
    SUCCEED();
  }
}

// Forked workers: real child processes over Unix socketpairs, with the
// fault plan parsed child-side (a fork cannot share the injector) and a
// WorkerFactory that re-forks fault-free replacements, exactly like
// csce_serve's forked mode.
class ForkedFaultCluster {
 public:
  ~ForkedFaultCluster() { Finish(); }

  void Start(const Graph& data, const Ccsr* index, uint32_t shards,
             const std::string& fault_plan) {
    ShardPlanOptions popts;
    popts.num_shards = shards;
    popts.strategy = PartitionStrategy::kHash;
    plan_ = ShardPlan::Build(data, popts);
    blobs_.resize(shards);
    for (uint32_t s = 0; s < shards; ++s) {
      Graph shard_graph;
      ASSERT_TRUE(plan_.ExtractShard(data, s, &shard_graph).ok());
      std::ostringstream blob;
      ASSERT_TRUE(SaveCcsrToStream(Ccsr::Build(shard_graph), blob).ok());
      blobs_[s] = std::move(blob).str();
    }
    current_.assign(shards, -1);
    parent_fds_.assign(shards, -1);
    coordinator_ = std::make_unique<ShardCoordinator>(index);
    coordinator_->set_supervision(FastSupervision());
    coordinator_->set_worker_factory(
        [this](uint32_t s, std::unique_ptr<Transport>* out) {
          return SpawnChild(s, /*fault_plan=*/"", out);
        });
    for (uint32_t s = 0; s < shards; ++s) {
      std::unique_ptr<Transport> t;
      ASSERT_TRUE(SpawnChild(s, fault_plan, &t).ok());
      coordinator_->AttachWorker(std::move(t));
    }
    ASSERT_TRUE(coordinator_->LoadInline(plan_.owners(), blobs_, 1).ok());
  }

  ShardCoordinator& coordinator() { return *coordinator_; }

  void Finish() {
    if (coordinator_ == nullptr) return;
    coordinator_->Shutdown();
    coordinator_.reset();
    // Current pids exited via kShutdown or EOF; superseded ones died to
    // their own injected fault. Reap both, judge only the former.
    for (pid_t pid : current_) {
      if (pid < 0) continue;
      int status = 0;
      EXPECT_EQ(waitpid(pid, &status, 0), pid);
      EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
          << "live worker exit status " << status;
    }
    for (pid_t pid : superseded_) {
      int status = 0;
      EXPECT_EQ(waitpid(pid, &status, 0), pid);
    }
    current_.clear();
    superseded_.clear();
  }

 private:
  Status SpawnChild(uint32_t s, const std::string& fault_plan,
                    std::unique_ptr<Transport>* out) {
    parent_fds_[s] = -1;
    int fds[2];
    if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      return Status::IOError("socketpair failed");
    }
    pid_t pid = fork();
    if (pid < 0) {
      close(fds[0]);
      close(fds[1]);
      return Status::IOError("fork failed");
    }
    if (pid == 0) {
      close(fds[0]);
      for (int fd : parent_fds_) {
        if (fd >= 0) close(fd);
      }
      std::shared_ptr<FaultInjector> faults;
      if (!fault_plan.empty() &&
          !FaultInjector::Parse(fault_plan, &faults).ok()) {
        _exit(4);
      }
      std::unique_ptr<Transport> transport = MakeFdTransport(fds[1]);
      transport = MakeFaultTransport(std::move(transport), faults, s);
      ShardWorker worker;
      (void)worker.Serve(*transport);
      // A worker whose own fault killed the link simulates a crash;
      // everything else is normal teardown.
      if (faults != nullptr &&
          (faults->fired(FaultKind::kKillAfterFrames) > 0 ||
           faults->fired(FaultKind::kTruncateFrame) > 0)) {
        _exit(3);
      }
      _exit(0);
    }
    close(fds[1]);
    if (current_[s] >= 0) superseded_.push_back(current_[s]);
    current_[s] = pid;
    parent_fds_[s] = fds[0];
    *out = MakeFdTransport(fds[0]);
    return Status::OK();
  }

  ShardPlan plan_;
  std::vector<std::string> blobs_;
  std::vector<pid_t> current_;
  std::vector<pid_t> superseded_;
  std::vector<int> parent_fds_;
  std::unique_ptr<ShardCoordinator> coordinator_;
};

TEST_F(ShardFaultInjectionTest, ForkedWorkersRecoverFromEveryFault) {
  for (const FaultCase& fc : kFaultCases) {
    SCOPED_TRACE(std::string("plan=") + fc.plan);
    ForkedFaultCluster cluster;
    cluster.Start(*data_, index_, /*shards=*/2, fc.plan);
    if (::testing::Test::HasFatalFailure()) return;
    CoordinatorOptions options;
    options.collect_embeddings = true;
    options.self_check = true;
    ShardResult result;
    Status st = cluster.coordinator().Execute(*pattern_, options, &result);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(result.embeddings, baseline_->embeddings);
    EXPECT_EQ(SortedRows(result.embedding_data, result.embedding_width),
              baseline_->rows);
    if (fc.fires_at_load) {
      EXPECT_GE(cluster.coordinator().restarts_total(), 1u);
    } else {
      EXPECT_GE(result.worker_restarts, 1u);
      EXPECT_GE(result.frames_retried, 1u);
    }
    cluster.Finish();
  }
}

}  // namespace
}  // namespace shard
}  // namespace csce
