// Deep-validator and self-check tests: clean structures pass, corrupted
// fixtures are detected with descriptive errors, and the SCE oracle
// catches a poisoned candidate cache that would otherwise silently skew
// results.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "ccsr/ccsr.h"
#include "ccsr/ccsr_io.h"
#include "ccsr/compressed_row.h"
#include "engine/embedding_verifier.h"
#include "engine/executor.h"
#include "engine/matcher.h"
#include "plan/dag.h"
#include "plan/nec.h"
#include "plan/planner.h"
#include "plan/validate.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace csce {
namespace {

// ---------------------------------------------------------------------------
// CompressedRowIndex::Validate

TEST(CompressedRowValidateTest, CleanRowsPass) {
  std::vector<uint64_t> row = {0, 0, 2, 2, 2, 5, 9};
  EXPECT_TRUE(CompressedRowIndex::Compress(row).Validate().ok());
  EXPECT_TRUE(CompressedRowIndex().Validate().ok());
}

TEST(CompressedRowValidateTest, MutatedRunLengthDetected) {
  std::vector<uint64_t> row = {0, 0, 2, 2, 5};
  CompressedRowIndex rows = CompressedRowIndex::Compress(row);
  ASSERT_TRUE(rows.Validate().ok());
  // Coverage no longer matches the uncompressed length.
  rows.mutable_runs()->front().count += 1;
  Status st = rows.Validate();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("cover"), std::string::npos);
}

TEST(CompressedRowValidateTest, NonMonotoneRunsDetected) {
  std::vector<uint64_t> row = {0, 3, 7};
  CompressedRowIndex rows = CompressedRowIndex::Compress(row);
  (*rows.mutable_runs())[2].value = 2;  // 0, 3, 2: offsets went backwards
  Status st = rows.Validate();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("non-monotone"), std::string::npos);
}

TEST(CompressedRowValidateTest, EmptyRunDetected) {
  std::vector<uint64_t> row = {0, 4};
  CompressedRowIndex rows = CompressedRowIndex::Compress(row);
  (*rows.mutable_runs())[1].count = 0;
  EXPECT_FALSE(rows.Validate().ok());
}

// ---------------------------------------------------------------------------
// Ccsr::Validate

TEST(CcsrValidateTest, CleanGraphsPass) {
  Rng rng(71);
  for (bool directed : {false, true}) {
    Graph g = testing::RandomGraph(rng, 60, 0.1, 5, 3, directed);
    Ccsr gc = Ccsr::Build(g);
    EXPECT_TRUE(gc.Validate().ok()) << gc.Validate().ToString();
  }
}

TEST(CcsrValidateTest, StaysValidAcrossUpdates) {
  Rng rng(72);
  Graph g = testing::RandomGraph(rng, 40, 0.08, 4, 2, true);
  Ccsr gc = Ccsr::Build(g);
  std::vector<Edge> extra = {Edge{0, 1, 9}, Edge{5, 6, 9}};
  ASSERT_TRUE(gc.InsertEdges(extra).ok());
  EXPECT_TRUE(gc.Validate().ok()) << gc.Validate().ToString();
  ASSERT_TRUE(gc.RemoveEdges(extra).ok());
  EXPECT_TRUE(gc.Validate().ok()) << gc.Validate().ToString();
}

// Serializes, flips bytes at a computed offset, reloads. Relies on the
// fixed v2 artifact layout: magic(4) version(4) directed(1) nv(4)
// ne(8), labels(4*nv), out-degrees(4*nv), [in-degrees], nclusters(4),
// then per cluster id(13) nedges(8) out-csr(nruns(8), runs(12 each)...).
std::string SerializeCcsr(const Ccsr& gc) {
  std::stringstream buffer;
  Status st = SaveCcsrToStream(gc, buffer);
  CSCE_CHECK(st.ok());
  return buffer.str();
}

Status ReloadCcsr(const std::string& bytes, Ccsr* out) {
  std::istringstream in(bytes);
  return LoadCcsrFromStream(in, out);
}

TEST(CcsrLoaderTest, MutatedRunLengthRejected) {
  // Undirected path with one cluster; every vertex labeled alike.
  Graph g = testing::MakeGraph(false, {1, 1, 1, 1},
                               {Edge{0, 1, 0}, Edge{1, 2, 0}, Edge{2, 3, 0}});
  Ccsr gc = Ccsr::Build(g);
  std::string bytes = SerializeCcsr(gc);
  // First run's count field of the first cluster's out-CSR.
  size_t nv = g.NumVertices();
  size_t off = 21 + 8 * nv + 4 + 21 + 8 + 8;
  ASSERT_LT(off + 4, bytes.size());
  bytes[off] = static_cast<char>(bytes[off] + 1);
  Ccsr back;
  Status st = ReloadCcsr(bytes, &back);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(st.ToString().empty());
}

TEST(CcsrLoaderTest, LabelFlipCaughtByDeepValidation) {
  // Distinct labels so every edge's cluster pins its endpoint labels.
  Graph g = testing::MakeGraph(false, {0, 1, 2, 3},
                               {Edge{0, 1, 0}, Edge{1, 2, 0}, Edge{2, 3, 0}});
  Ccsr gc = Ccsr::Build(g);
  std::string bytes = SerializeCcsr(gc);
  // Vertex 0's label lives right after the 21-byte header. Flipping it
  // to another valid label passes every field-local check; only the
  // deep validator's homogeneity cross-check can notice.
  ASSERT_EQ(bytes[21], 0);
  bytes[21] = 3;
  Ccsr back;
  Status st = ReloadCcsr(bytes, &back);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("label"), std::string::npos);
}

// ---------------------------------------------------------------------------
// DAG / NEC / plan validators

TEST(DagValidateTest, CleanDagAndOrderPass) {
  Rng rng(73);
  Graph pattern = testing::RandomGraph(rng, 8, 0.4, 2, 1, false);
  std::vector<VertexId> order(pattern.NumVertices());
  for (VertexId v = 0; v < pattern.NumVertices(); ++v) order[v] = v;
  DependencyDag dag =
      DependencyDag::Build(pattern, order, MatchVariant::kEdgeInduced, nullptr);
  EXPECT_TRUE(ValidateDag(dag).ok());
  EXPECT_TRUE(ValidateTopologicalOrder(dag, order).ok());
}

TEST(DagValidateTest, ReversedOrderIsNotTopological) {
  Graph pattern = testing::Path(4);
  std::vector<VertexId> order = {0, 1, 2, 3};
  DependencyDag dag =
      DependencyDag::Build(pattern, order, MatchVariant::kEdgeInduced, nullptr);
  std::vector<VertexId> reversed = {3, 2, 1, 0};
  Status st = ValidateTopologicalOrder(dag, reversed);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("not topological"), std::string::npos);
  // Non-permutations are rejected too.
  std::vector<VertexId> dup = {0, 0, 1, 2};
  EXPECT_FALSE(ValidateTopologicalOrder(dag, dup).ok());
}

TEST(NecValidateTest, ComputedClassesPass) {
  Rng rng(74);
  for (int i = 0; i < 10; ++i) {
    Graph pattern = testing::RandomGraph(rng, 7, 0.35, 2, 2, i % 2 == 1);
    std::vector<uint32_t> classes = ComputeNecClasses(pattern);
    EXPECT_TRUE(ValidateNecClasses(pattern, classes).ok());
  }
  // The star's leaves collapse into one class; still sound.
  Graph star = testing::Star(4);
  EXPECT_TRUE(ValidateNecClasses(star, ComputeNecClasses(star)).ok());
}

TEST(NecValidateTest, FalseEquivalenceDetected) {
  // Path 0-1-2: the endpoints are equivalent, the middle is not.
  Graph path = testing::Path(3);
  std::vector<uint32_t> bogus = {0, 0, 1};  // merges an endpoint + middle
  Status st = ValidateNecClasses(path, bogus);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("automorphism"), std::string::npos);
  // Non-dense ids are rejected regardless of soundness.
  std::vector<uint32_t> sparse_ids = {1, 0, 2};
  EXPECT_FALSE(ValidateNecClasses(path, sparse_ids).ok());
}

class PlanValidateTest : public ::testing::TestWithParam<MatchVariant> {};

TEST_P(PlanValidateTest, CleanPlansPass) {
  Rng rng(75);
  Graph data = testing::RandomGraph(rng, 60, 0.1, 3, 2, false);
  Ccsr gc = Ccsr::Build(data);
  Planner planner(&gc);
  for (const Graph& pattern :
       {testing::Path(4), testing::Clique(3), testing::Star(3)}) {
    Plan plan;
    ASSERT_TRUE(planner.MakePlan(pattern, GetParam(), {}, &plan).ok());
    Status st = ValidatePlan(&gc, pattern, plan);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, PlanValidateTest,
                         ::testing::Values(MatchVariant::kEdgeInduced,
                                           MatchVariant::kVertexInduced,
                                           MatchVariant::kHomomorphic));

TEST(PlanValidateCorruptionTest, SwappedOrderDetected) {
  Rng rng(76);
  Graph data = testing::RandomGraph(rng, 50, 0.12, 2, 1, false);
  Ccsr gc = Ccsr::Build(data);
  Planner planner(&gc);
  Plan plan;
  ASSERT_TRUE(
      planner.MakePlan(testing::Path(3), MatchVariant::kEdgeInduced, {}, &plan)
          .ok());
  ASSERT_TRUE(ValidatePlan(&gc, testing::Path(3), plan).ok());

  // Swapping order entries alone desynchronizes order and positions.
  Plan swapped_order = plan;
  std::swap(swapped_order.order[0], swapped_order.order[1]);
  EXPECT_FALSE(ValidatePlan(&gc, testing::Path(3), swapped_order).ok());

  // Swapping both keeps them in sync but breaks the compiled
  // constraints: a position with a backward edge moves to the front.
  Plan swapped_both = plan;
  std::swap(swapped_both.order[0], swapped_both.order[1]);
  std::swap(swapped_both.positions[0], swapped_both.positions[1]);
  EXPECT_FALSE(ValidatePlan(&gc, testing::Path(3), swapped_both).ok());
}

TEST(PlanValidateCorruptionTest, DroppedConstraintDetected) {
  Rng rng(77);
  Graph data = testing::RandomGraph(rng, 50, 0.12, 2, 1, false);
  Ccsr gc = Ccsr::Build(data);
  Planner planner(&gc);
  Plan plan;
  ASSERT_TRUE(planner
                  .MakePlan(testing::Clique(3), MatchVariant::kEdgeInduced, {},
                            &plan)
                  .ok());
  plan.positions[2].edges.pop_back();
  Status st = ValidatePlan(&gc, testing::Clique(3), plan);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("edge constraints"), std::string::npos);
}

// ---------------------------------------------------------------------------
// EmbeddingVerifier

TEST(EmbeddingVerifierTest, AcceptsRealEmbeddingsRejectsFakes) {
  // Data: labeled triangle 0(A)-1(B)-2(A) plus a pendant 3(B) on 2.
  Graph data = testing::MakeGraph(
      false, {0, 1, 0, 1},
      {Edge{0, 1, 0}, Edge{1, 2, 0}, Edge{0, 2, 0}, Edge{2, 3, 0}});
  Ccsr gc = Ccsr::Build(data);
  // Pattern: one A-B edge.
  Graph pattern = testing::MakeGraph(false, {0, 1}, {Edge{0, 1, 0}});
  EmbeddingVerifier verifier(gc, pattern, MatchVariant::kEdgeInduced);

  std::vector<VertexId> good = {0, 1};
  EXPECT_TRUE(verifier.Verify(good).ok());
  EXPECT_EQ(verifier.verified(), 1u);

  std::vector<VertexId> wrong_label = {1, 0};  // A-slot holds a B vertex
  EXPECT_FALSE(verifier.Verify(wrong_label).ok());
  std::vector<VertexId> no_edge = {0, 3};  // labels fine, arc missing
  EXPECT_FALSE(verifier.Verify(no_edge).ok());
  std::vector<VertexId> short_mapping = {0};
  EXPECT_FALSE(verifier.Verify(short_mapping).ok());
  std::vector<VertexId> out_of_range = {0, 99};
  EXPECT_FALSE(verifier.Verify(out_of_range).ok());
  EXPECT_EQ(verifier.verified(), 1u);
}

TEST(EmbeddingVerifierTest, EnforcesInjectivityAndInducedness) {
  // Unlabeled triangle: a path embedding whose endpoints are adjacent
  // violates vertex-induced matching.
  Graph data = testing::Clique(3);
  Ccsr gc = Ccsr::Build(data);
  Graph pattern = testing::Path(3);

  EmbeddingVerifier hom(gc, pattern, MatchVariant::kHomomorphic);
  std::vector<VertexId> repeat = {0, 1, 0};
  EXPECT_TRUE(hom.Verify(repeat).ok());  // homomorphisms may collapse

  EmbeddingVerifier edge_induced(gc, pattern, MatchVariant::kEdgeInduced);
  EXPECT_FALSE(edge_induced.Verify(repeat).ok());  // injectivity
  std::vector<VertexId> path_in_triangle = {0, 1, 2};
  EXPECT_TRUE(edge_induced.Verify(path_in_triangle).ok());

  EmbeddingVerifier induced(gc, pattern, MatchVariant::kVertexInduced);
  Status st = induced.Verify(path_in_triangle);
  EXPECT_FALSE(st.ok());  // 0 and 2 are adjacent in the data
  EXPECT_NE(st.ToString().find("induced"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end self-check

class SelfCheckTest : public ::testing::TestWithParam<MatchVariant> {};

TEST_P(SelfCheckTest, MatchesCleanlyAndVerifiesEveryEmbedding) {
  Rng rng(78);
  Graph data = testing::RandomGraph(rng, 50, 0.12, 3, 2, false);
  Ccsr gc = Ccsr::Build(data);
  CsceMatcher matcher(&gc);
  Graph pattern = testing::Path(3);

  MatchOptions plain;
  plain.variant = GetParam();
  MatchResult expected;
  ASSERT_TRUE(matcher.Match(pattern, plain, &expected).ok());

  for (uint32_t threads : {1u, 4u}) {
    MatchOptions checked = plain;
    checked.self_check = true;
    checked.num_threads = threads;
    MatchResult result;
    Status st = matcher.Match(pattern, checked, &result);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(result.embeddings, expected.embeddings);
    EXPECT_EQ(result.embeddings_verified, expected.embeddings);
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, SelfCheckTest,
                         ::testing::Values(MatchVariant::kEdgeInduced,
                                           MatchVariant::kVertexInduced,
                                           MatchVariant::kHomomorphic));

// ---------------------------------------------------------------------------
// SCE oracle vs a poisoned cache

struct SceFixture {
  Graph data = testing::Star(4);
  Graph pattern = testing::Path(3);  // center-first order, leaves share deps
  Ccsr gc;
  QueryClusters qc;
  Plan plan;

  SceFixture() {
    gc = Ccsr::Build(data);
    Planner planner(&gc);
    CSCE_CHECK(
        planner.MakePlan(pattern, MatchVariant::kEdgeInduced, {}, &plan).ok());
    CSCE_CHECK(
        ReadClusters(gc, pattern, MatchVariant::kEdgeInduced, &qc).ok());
  }

  uint64_t Count(const ExecOptions& options) {
    Executor ex(gc, qc, plan);
    ExecStats stats;
    CSCE_CHECK(ex.Run(options, &stats).ok());
    return stats.embeddings;
  }
};

TEST(SceOracleTest, PoisonedCacheSilentlySkewsResultsWithoutOracle) {
  SceFixture fx;
  uint64_t baseline = fx.Count(ExecOptions{});
  EXPECT_EQ(baseline, 12u);  // ordered leaf pairs of the 4-star

  // Sanity: this workload actually reuses SCE caches, so a poisoned
  // entry gets consumed.
  {
    Executor ex(fx.gc, fx.qc, fx.plan);
    ExecStats stats;
    ASSERT_TRUE(ex.Run(ExecOptions{}, &stats).ok());
    ASSERT_GT(stats.candidate_sets_reused, 0u);
  }

  ExecOptions poisoned;
  poisoned.poison_sce_position = 1;
  uint64_t skewed = fx.Count(poisoned);
  EXPECT_LT(skewed, baseline);  // wrong answer, no error: the quiet failure
}

TEST(SceOracleDeathTest, OracleCatchesPoisonedCache) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SceFixture fx;
  ExecOptions options;
  options.poison_sce_position = 1;
  options.verify_sce = true;
  EXPECT_DEATH(fx.Count(options), "SCE cache mismatch");
}

}  // namespace
}  // namespace csce
