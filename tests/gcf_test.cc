#include "plan/gcf.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/subgraph.h"
#include "tests/test_util.h"

namespace csce {
namespace {

using testing::MakeGraph;

bool IsPermutation(const std::vector<VertexId>& order, uint32_t n) {
  if (order.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (VertexId v : order) {
    if (v >= n || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

// Every non-first vertex of a connected pattern should attach to the
// prefix (GCF rule 1 dominates for connected patterns).
bool PrefixConnected(const Graph& p, const std::vector<VertexId>& order) {
  std::vector<bool> in_prefix(p.NumVertices(), false);
  in_prefix[order[0]] = true;
  for (size_t i = 1; i < order.size(); ++i) {
    VertexId u = order[i];
    bool attached = false;
    for (const Neighbor& n : p.OutNeighbors(u)) attached |= in_prefix[n.v];
    if (p.directed()) {
      for (const Neighbor& n : p.InNeighbors(u)) attached |= in_prefix[n.v];
    }
    if (!attached) return false;
    in_prefix[u] = true;
  }
  return true;
}

TEST(GcfTest, ProducesPermutation) {
  Rng rng(4);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph p = testing::RandomGraph(rng, 8, 0.4, 3, 1, seed % 2 == 0);
    auto order = GreatestConstraintFirstOrder(p, nullptr, GcfOptions{});
    EXPECT_TRUE(IsPermutation(order, p.NumVertices()));
  }
}

TEST(GcfTest, StartsAtHighestDegree) {
  Graph star = testing::Star(5);  // center 0 has degree 5
  auto order = GreatestConstraintFirstOrder(star, nullptr, GcfOptions{});
  EXPECT_EQ(order[0], 0u);
}

TEST(GcfTest, ConnectedPatternsGetConnectedPrefix) {
  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    Graph p = testing::RandomGraph(rng, 9, 0.5, 2, 1, false);
    if (!IsConnected(p)) continue;
    auto order = GreatestConstraintFirstOrder(p, nullptr, GcfOptions{});
    EXPECT_TRUE(PrefixConnected(p, order));
  }
}

TEST(GcfTest, DeterministicWithoutData) {
  Rng rng(8);
  Graph p = testing::RandomGraph(rng, 10, 0.3, 2, 1, false);
  auto a = GreatestConstraintFirstOrder(p, nullptr, GcfOptions{});
  auto b = GreatestConstraintFirstOrder(p, nullptr, GcfOptions{});
  EXPECT_EQ(a, b);
}

TEST(GcfTest, ClusterTieBreakPrefersRareEdges) {
  // Pattern: two triangles sharing vertex 0; labels make one triangle's
  // edges rare in the data graph.
  Graph pattern = MakeGraph(false, {0, 1, 1, 2, 2},
                            {{0, 1, 0}, {0, 2, 0}, {1, 2, 0},
                             {0, 3, 0}, {0, 4, 0}, {3, 4, 0}});
  // Data: many label-1 edges, a single label-2 pair.
  GraphBuilder b(false);
  VertexId hub = b.AddVertex(0);
  for (int i = 0; i < 20; ++i) {
    VertexId x = b.AddVertex(1);
    VertexId y = b.AddVertex(1);
    b.AddEdge(hub, x);
    b.AddEdge(hub, y);
    b.AddEdge(x, y);
  }
  VertexId r1 = b.AddVertex(2);
  VertexId r2 = b.AddVertex(2);
  b.AddEdge(hub, r1);
  b.AddEdge(hub, r2);
  b.AddEdge(r1, r2);
  Graph data;
  ASSERT_TRUE(b.Build(&data).ok());
  Ccsr gc = Ccsr::Build(data);

  GcfOptions with;
  with.use_cluster_tiebreak = true;
  auto order = GreatestConstraintFirstOrder(pattern, &gc, with);
  EXPECT_EQ(order[0], 0u);  // degree-4 hub first either way
  // With cluster statistics, the rare label-2 triangle (vertices 3, 4)
  // must be matched before the frequent label-1 one.
  auto pos = [&order](VertexId v) {
    return std::find(order.begin(), order.end(), v) - order.begin();
  };
  EXPECT_LT(pos(3), pos(1));
  EXPECT_LT(pos(4), pos(2));
}

}  // namespace
}  // namespace csce
