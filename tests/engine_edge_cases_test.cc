// Edge cases around the executor: cache-sharing safety, seeding
// direction, edge-label selectivity, restriction interplay, callbacks.

#include <gtest/gtest.h>

#include "engine/matcher.h"
#include "graph/isomorphism.h"
#include "tests/test_util.h"

namespace csce {
namespace {

using testing::MakeGraph;

TEST(EngineEdgeCaseTest, NecWithoutSceIsSafe) {
  // Regression guard: NEC cache aliasing without SCE revalidation would
  // let an inner recursion clobber the candidate vector an outer level
  // iterates. The executor must fall back to per-position caches.
  Rng rng(701);
  for (int i = 0; i < 10; ++i) {
    Graph data = testing::RandomGraph(rng, 18, 0.3, 2, 1, false);
    Graph pattern = testing::Star(3);  // heavy NEC aliasing
    Ccsr gc = Ccsr::Build(data);
    CsceMatcher matcher(&gc);
    MatchOptions options;
    options.plan.use_sce = false;
    options.plan.use_nec = true;  // the dangerous combination
    MatchResult result;
    ASSERT_TRUE(matcher.Match(pattern, options, &result).ok());
    EXPECT_EQ(result.embeddings,
              CountEmbeddingsBruteForce(data, pattern,
                                        MatchVariant::kEdgeInduced));
  }
}

TEST(EngineEdgeCaseTest, DirectedSeedFromTargetSide) {
  // A pattern whose cheapest seed position is the *destination* of its
  // only arc: the engine must seed from the cluster's target side.
  Graph data = MakeGraph(true, {1, 2, 1, 2}, {{0, 1, 0}, {2, 3, 0}});
  Graph pattern = MakeGraph(true, {1, 2}, {{0, 1, 0}});
  Ccsr gc = Ccsr::Build(data);
  CsceMatcher matcher(&gc);
  MatchResult result;
  ASSERT_TRUE(matcher.Match(pattern, MatchOptions{}, &result).ok());
  EXPECT_EQ(result.embeddings, 2u);
}

TEST(EngineEdgeCaseTest, EdgeLabelsSelectClusters) {
  // Two parallel arc labels between the same label pair: each pattern
  // edge label must match only its own cluster.
  Graph data = MakeGraph(true, {1, 2}, {{0, 1, 7}, {0, 1, 8}});
  Ccsr gc = Ccsr::Build(data);
  CsceMatcher matcher(&gc);
  for (Label el : {7u, 8u}) {
    Graph pattern = MakeGraph(true, {1, 2}, {{0, 1, el}});
    MatchResult result;
    ASSERT_TRUE(matcher.Match(pattern, MatchOptions{}, &result).ok());
    EXPECT_EQ(result.embeddings, 1u) << "label " << el;
  }
  Graph wrong = MakeGraph(true, {1, 2}, {{0, 1, 9}});
  MatchResult result;
  ASSERT_TRUE(matcher.Match(wrong, MatchOptions{}, &result).ok());
  EXPECT_EQ(result.embeddings, 0u);
}

TEST(EngineEdgeCaseTest, BothArcDirectionsBetweenOnePair) {
  // Pattern demanding a 2-cycle: both arcs must be verified.
  Graph data = MakeGraph(true, {0, 0, 0},
                         {{0, 1, 0}, {1, 0, 0}, {1, 2, 0}});
  Graph two_cycle = MakeGraph(true, {0, 0}, {{0, 1, 0}, {1, 0, 0}});
  Ccsr gc = Ccsr::Build(data);
  CsceMatcher matcher(&gc);
  MatchResult result;
  ASSERT_TRUE(matcher.Match(two_cycle, MatchOptions{}, &result).ok());
  EXPECT_EQ(result.embeddings, 2u);  // (0,1) and (1,0)
}

TEST(EngineEdgeCaseTest, RestrictionsOnVertexInduced) {
  Rng rng(702);
  Graph data = testing::RandomGraph(rng, 14, 0.35, 1, 1, false);
  Graph pattern = testing::Cycle(4);
  Ccsr gc = Ccsr::Build(data);
  CsceMatcher matcher(&gc);
  MatchOptions plain;
  plain.variant = MatchVariant::kVertexInduced;
  MatchOptions restricted = plain;
  restricted.restrictions = {{0, 2}};  // half the 4-cycle symmetries
  MatchResult full;
  MatchResult half;
  ASSERT_TRUE(matcher.Match(pattern, plain, &full).ok());
  ASSERT_TRUE(matcher.Match(pattern, restricted, &half).ok());
  EXPECT_EQ(half.embeddings * 2, full.embeddings);
}

TEST(EngineEdgeCaseTest, RestrictionOutOfRangeRejected) {
  Graph data = testing::Clique(4);
  Ccsr gc = Ccsr::Build(data);
  CsceMatcher matcher(&gc);
  MatchOptions options;
  options.restrictions = {{0, 9}};
  MatchResult result;
  EXPECT_EQ(matcher.Match(testing::Path(2), options, &result).code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineEdgeCaseTest, CallbackAbortLeavesConsistentCount) {
  Ccsr gc = Ccsr::Build(testing::Clique(6));
  CsceMatcher matcher(&gc);
  MatchOptions options;
  MatchResult result;
  ASSERT_TRUE(matcher
                  .MatchWithCallback(
                      testing::Cycle(3), options,
                      [](std::span<const VertexId>) { return false; },
                      &result)
                  .ok());
  EXPECT_EQ(result.embeddings, 1u);  // exactly the one delivered
}

TEST(EngineEdgeCaseTest, HomCountFastPathMatchesSlowPath) {
  // The count-only last-depth shortcut must agree with the callback
  // path, which disables it.
  Rng rng(703);
  Graph data = testing::RandomGraph(rng, 20, 0.3, 2, 2, true);
  Graph pattern = testing::RandomGraph(rng, 4, 0.5, 2, 2, true);
  Ccsr gc = Ccsr::Build(data);
  CsceMatcher matcher(&gc);
  MatchOptions options;
  options.variant = MatchVariant::kHomomorphic;
  MatchResult fast;
  ASSERT_TRUE(matcher.Match(pattern, options, &fast).ok());
  uint64_t slow = 0;
  MatchResult via_callback;
  ASSERT_TRUE(matcher
                  .MatchWithCallback(
                      pattern, options,
                      [&slow](std::span<const VertexId>) {
                        ++slow;
                        return true;
                      },
                      &via_callback)
                  .ok());
  EXPECT_EQ(fast.embeddings, slow);
}

TEST(EngineEdgeCaseTest, DegreeFilterToggleKeepsCounts) {
  Rng rng(704);
  for (int i = 0; i < 6; ++i) {
    bool directed = i % 2 == 0;
    Graph data = testing::RandomGraph(rng, 16, 0.3, 2, 1, directed);
    Graph pattern = testing::RandomGraph(rng, 5, 0.5, 2, 1, directed);
    Ccsr gc = Ccsr::Build(data);
    CsceMatcher matcher(&gc);
    for (auto variant :
         {MatchVariant::kEdgeInduced, MatchVariant::kVertexInduced}) {
      MatchOptions with;
      with.variant = variant;
      MatchOptions without = with;
      without.plan.use_degree_filter = false;
      MatchResult a;
      MatchResult b;
      ASSERT_TRUE(matcher.Match(pattern, with, &a).ok());
      ASSERT_TRUE(matcher.Match(pattern, without, &b).ok());
      EXPECT_EQ(a.embeddings, b.embeddings) << VariantName(variant);
    }
  }
}

TEST(EngineEdgeCaseTest, IsolatedPatternVertexScansLabel) {
  Graph data = MakeGraph(false, {1, 1, 2}, {{0, 1, 0}});
  // One edge plus an isolated label-2 vertex.
  Graph pattern = MakeGraph(false, {1, 1, 2}, {{0, 1, 0}});
  Ccsr gc = Ccsr::Build(data);
  CsceMatcher matcher(&gc);
  MatchResult result;
  ASSERT_TRUE(matcher.Match(pattern, MatchOptions{}, &result).ok());
  EXPECT_EQ(result.embeddings,
            CountEmbeddingsBruteForce(data, pattern,
                                      MatchVariant::kEdgeInduced));
  EXPECT_EQ(result.embeddings, 2u);  // two edge orientations x 1 vertex
}

}  // namespace
}  // namespace csce
