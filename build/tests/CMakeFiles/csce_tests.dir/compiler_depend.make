# Empty compiler generated dependencies file for csce_tests.
# This may be replaced when dependencies are built.
