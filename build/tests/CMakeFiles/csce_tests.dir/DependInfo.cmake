
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cc" "tests/CMakeFiles/csce_tests.dir/analysis_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/analysis_test.cc.o.d"
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/csce_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/ccsr_io_test.cc" "tests/CMakeFiles/csce_tests.dir/ccsr_io_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/ccsr_io_test.cc.o.d"
  "/root/repo/tests/ccsr_test.cc" "tests/CMakeFiles/csce_tests.dir/ccsr_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/ccsr_test.cc.o.d"
  "/root/repo/tests/ccsr_update_test.cc" "tests/CMakeFiles/csce_tests.dir/ccsr_update_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/ccsr_update_test.cc.o.d"
  "/root/repo/tests/cluster_cache_test.cc" "tests/CMakeFiles/csce_tests.dir/cluster_cache_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/cluster_cache_test.cc.o.d"
  "/root/repo/tests/components_test.cc" "tests/CMakeFiles/csce_tests.dir/components_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/components_test.cc.o.d"
  "/root/repo/tests/compressed_row_test.cc" "tests/CMakeFiles/csce_tests.dir/compressed_row_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/compressed_row_test.cc.o.d"
  "/root/repo/tests/cost_model_test.cc" "tests/CMakeFiles/csce_tests.dir/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/cost_model_test.cc.o.d"
  "/root/repo/tests/crosscheck_property_test.cc" "tests/CMakeFiles/csce_tests.dir/crosscheck_property_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/crosscheck_property_test.cc.o.d"
  "/root/repo/tests/csr_test.cc" "tests/CMakeFiles/csce_tests.dir/csr_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/csr_test.cc.o.d"
  "/root/repo/tests/dag_test.cc" "tests/CMakeFiles/csce_tests.dir/dag_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/dag_test.cc.o.d"
  "/root/repo/tests/descendants_test.cc" "tests/CMakeFiles/csce_tests.dir/descendants_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/descendants_test.cc.o.d"
  "/root/repo/tests/engine_edge_cases_test.cc" "tests/CMakeFiles/csce_tests.dir/engine_edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/engine_edge_cases_test.cc.o.d"
  "/root/repo/tests/engine_test.cc" "tests/CMakeFiles/csce_tests.dir/engine_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/engine_test.cc.o.d"
  "/root/repo/tests/feature_matrix_test.cc" "tests/CMakeFiles/csce_tests.dir/feature_matrix_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/feature_matrix_test.cc.o.d"
  "/root/repo/tests/flags_test.cc" "tests/CMakeFiles/csce_tests.dir/flags_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/flags_test.cc.o.d"
  "/root/repo/tests/gcf_test.cc" "tests/CMakeFiles/csce_tests.dir/gcf_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/gcf_test.cc.o.d"
  "/root/repo/tests/gen_extra_test.cc" "tests/CMakeFiles/csce_tests.dir/gen_extra_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/gen_extra_test.cc.o.d"
  "/root/repo/tests/gen_test.cc" "tests/CMakeFiles/csce_tests.dir/gen_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/gen_test.cc.o.d"
  "/root/repo/tests/graph_io_test.cc" "tests/CMakeFiles/csce_tests.dir/graph_io_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/graph_io_test.cc.o.d"
  "/root/repo/tests/graph_test.cc" "tests/CMakeFiles/csce_tests.dir/graph_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/graph_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/csce_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/isomorphism_test.cc" "tests/CMakeFiles/csce_tests.dir/isomorphism_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/isomorphism_test.cc.o.d"
  "/root/repo/tests/ldsf_test.cc" "tests/CMakeFiles/csce_tests.dir/ldsf_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/ldsf_test.cc.o.d"
  "/root/repo/tests/motif_adjacency_test.cc" "tests/CMakeFiles/csce_tests.dir/motif_adjacency_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/motif_adjacency_test.cc.o.d"
  "/root/repo/tests/nec_test.cc" "tests/CMakeFiles/csce_tests.dir/nec_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/nec_test.cc.o.d"
  "/root/repo/tests/paper_example_test.cc" "tests/CMakeFiles/csce_tests.dir/paper_example_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/paper_example_test.cc.o.d"
  "/root/repo/tests/pattern_builder_test.cc" "tests/CMakeFiles/csce_tests.dir/pattern_builder_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/pattern_builder_test.cc.o.d"
  "/root/repo/tests/plan_printer_test.cc" "tests/CMakeFiles/csce_tests.dir/plan_printer_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/plan_printer_test.cc.o.d"
  "/root/repo/tests/planner_test.cc" "tests/CMakeFiles/csce_tests.dir/planner_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/planner_test.cc.o.d"
  "/root/repo/tests/robustness_test.cc" "tests/CMakeFiles/csce_tests.dir/robustness_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/robustness_test.cc.o.d"
  "/root/repo/tests/subgraph_test.cc" "tests/CMakeFiles/csce_tests.dir/subgraph_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/subgraph_test.cc.o.d"
  "/root/repo/tests/symmetry_test.cc" "tests/CMakeFiles/csce_tests.dir/symmetry_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/symmetry_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/csce_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/csce_tests.dir/util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/csce.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
