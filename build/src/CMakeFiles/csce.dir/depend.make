# Empty dependencies file for csce.
# This may be replaced when dependencies are built.
