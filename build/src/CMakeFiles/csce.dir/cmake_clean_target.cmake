file(REMOVE_RECURSE
  "libcsce.a"
)
