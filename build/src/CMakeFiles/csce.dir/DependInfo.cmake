
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/f1.cc" "src/CMakeFiles/csce.dir/analysis/f1.cc.o" "gcc" "src/CMakeFiles/csce.dir/analysis/f1.cc.o.d"
  "/root/repo/src/analysis/motif_adjacency.cc" "src/CMakeFiles/csce.dir/analysis/motif_adjacency.cc.o" "gcc" "src/CMakeFiles/csce.dir/analysis/motif_adjacency.cc.o.d"
  "/root/repo/src/analysis/motif_clustering.cc" "src/CMakeFiles/csce.dir/analysis/motif_clustering.cc.o" "gcc" "src/CMakeFiles/csce.dir/analysis/motif_clustering.cc.o.d"
  "/root/repo/src/baselines/backtracking.cc" "src/CMakeFiles/csce.dir/baselines/backtracking.cc.o" "gcc" "src/CMakeFiles/csce.dir/baselines/backtracking.cc.o.d"
  "/root/repo/src/baselines/fsp.cc" "src/CMakeFiles/csce.dir/baselines/fsp.cc.o" "gcc" "src/CMakeFiles/csce.dir/baselines/fsp.cc.o.d"
  "/root/repo/src/baselines/graphpi_like.cc" "src/CMakeFiles/csce.dir/baselines/graphpi_like.cc.o" "gcc" "src/CMakeFiles/csce.dir/baselines/graphpi_like.cc.o.d"
  "/root/repo/src/baselines/join.cc" "src/CMakeFiles/csce.dir/baselines/join.cc.o" "gcc" "src/CMakeFiles/csce.dir/baselines/join.cc.o.d"
  "/root/repo/src/baselines/vf2.cc" "src/CMakeFiles/csce.dir/baselines/vf2.cc.o" "gcc" "src/CMakeFiles/csce.dir/baselines/vf2.cc.o.d"
  "/root/repo/src/ccsr/ccsr.cc" "src/CMakeFiles/csce.dir/ccsr/ccsr.cc.o" "gcc" "src/CMakeFiles/csce.dir/ccsr/ccsr.cc.o.d"
  "/root/repo/src/ccsr/ccsr_io.cc" "src/CMakeFiles/csce.dir/ccsr/ccsr_io.cc.o" "gcc" "src/CMakeFiles/csce.dir/ccsr/ccsr_io.cc.o.d"
  "/root/repo/src/ccsr/cluster_cache.cc" "src/CMakeFiles/csce.dir/ccsr/cluster_cache.cc.o" "gcc" "src/CMakeFiles/csce.dir/ccsr/cluster_cache.cc.o.d"
  "/root/repo/src/ccsr/cluster_id.cc" "src/CMakeFiles/csce.dir/ccsr/cluster_id.cc.o" "gcc" "src/CMakeFiles/csce.dir/ccsr/cluster_id.cc.o.d"
  "/root/repo/src/ccsr/compressed_row.cc" "src/CMakeFiles/csce.dir/ccsr/compressed_row.cc.o" "gcc" "src/CMakeFiles/csce.dir/ccsr/compressed_row.cc.o.d"
  "/root/repo/src/ccsr/csr.cc" "src/CMakeFiles/csce.dir/ccsr/csr.cc.o" "gcc" "src/CMakeFiles/csce.dir/ccsr/csr.cc.o.d"
  "/root/repo/src/engine/candidates.cc" "src/CMakeFiles/csce.dir/engine/candidates.cc.o" "gcc" "src/CMakeFiles/csce.dir/engine/candidates.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/CMakeFiles/csce.dir/engine/executor.cc.o" "gcc" "src/CMakeFiles/csce.dir/engine/executor.cc.o.d"
  "/root/repo/src/engine/matcher.cc" "src/CMakeFiles/csce.dir/engine/matcher.cc.o" "gcc" "src/CMakeFiles/csce.dir/engine/matcher.cc.o.d"
  "/root/repo/src/gen/datasets.cc" "src/CMakeFiles/csce.dir/gen/datasets.cc.o" "gcc" "src/CMakeFiles/csce.dir/gen/datasets.cc.o.d"
  "/root/repo/src/gen/pattern_gen.cc" "src/CMakeFiles/csce.dir/gen/pattern_gen.cc.o" "gcc" "src/CMakeFiles/csce.dir/gen/pattern_gen.cc.o.d"
  "/root/repo/src/gen/random_graph.cc" "src/CMakeFiles/csce.dir/gen/random_graph.cc.o" "gcc" "src/CMakeFiles/csce.dir/gen/random_graph.cc.o.d"
  "/root/repo/src/graph/components.cc" "src/CMakeFiles/csce.dir/graph/components.cc.o" "gcc" "src/CMakeFiles/csce.dir/graph/components.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/csce.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/csce.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/graph_builder.cc" "src/CMakeFiles/csce.dir/graph/graph_builder.cc.o" "gcc" "src/CMakeFiles/csce.dir/graph/graph_builder.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/CMakeFiles/csce.dir/graph/graph_io.cc.o" "gcc" "src/CMakeFiles/csce.dir/graph/graph_io.cc.o.d"
  "/root/repo/src/graph/graph_stats.cc" "src/CMakeFiles/csce.dir/graph/graph_stats.cc.o" "gcc" "src/CMakeFiles/csce.dir/graph/graph_stats.cc.o.d"
  "/root/repo/src/graph/isomorphism.cc" "src/CMakeFiles/csce.dir/graph/isomorphism.cc.o" "gcc" "src/CMakeFiles/csce.dir/graph/isomorphism.cc.o.d"
  "/root/repo/src/graph/pattern_builder.cc" "src/CMakeFiles/csce.dir/graph/pattern_builder.cc.o" "gcc" "src/CMakeFiles/csce.dir/graph/pattern_builder.cc.o.d"
  "/root/repo/src/graph/subgraph.cc" "src/CMakeFiles/csce.dir/graph/subgraph.cc.o" "gcc" "src/CMakeFiles/csce.dir/graph/subgraph.cc.o.d"
  "/root/repo/src/plan/cost_model.cc" "src/CMakeFiles/csce.dir/plan/cost_model.cc.o" "gcc" "src/CMakeFiles/csce.dir/plan/cost_model.cc.o.d"
  "/root/repo/src/plan/dag.cc" "src/CMakeFiles/csce.dir/plan/dag.cc.o" "gcc" "src/CMakeFiles/csce.dir/plan/dag.cc.o.d"
  "/root/repo/src/plan/descendants.cc" "src/CMakeFiles/csce.dir/plan/descendants.cc.o" "gcc" "src/CMakeFiles/csce.dir/plan/descendants.cc.o.d"
  "/root/repo/src/plan/gcf.cc" "src/CMakeFiles/csce.dir/plan/gcf.cc.o" "gcc" "src/CMakeFiles/csce.dir/plan/gcf.cc.o.d"
  "/root/repo/src/plan/ldsf.cc" "src/CMakeFiles/csce.dir/plan/ldsf.cc.o" "gcc" "src/CMakeFiles/csce.dir/plan/ldsf.cc.o.d"
  "/root/repo/src/plan/nec.cc" "src/CMakeFiles/csce.dir/plan/nec.cc.o" "gcc" "src/CMakeFiles/csce.dir/plan/nec.cc.o.d"
  "/root/repo/src/plan/plan_printer.cc" "src/CMakeFiles/csce.dir/plan/plan_printer.cc.o" "gcc" "src/CMakeFiles/csce.dir/plan/plan_printer.cc.o.d"
  "/root/repo/src/plan/planner.cc" "src/CMakeFiles/csce.dir/plan/planner.cc.o" "gcc" "src/CMakeFiles/csce.dir/plan/planner.cc.o.d"
  "/root/repo/src/plan/symmetry.cc" "src/CMakeFiles/csce.dir/plan/symmetry.cc.o" "gcc" "src/CMakeFiles/csce.dir/plan/symmetry.cc.o.d"
  "/root/repo/src/util/memory.cc" "src/CMakeFiles/csce.dir/util/memory.cc.o" "gcc" "src/CMakeFiles/csce.dir/util/memory.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/csce.dir/util/status.cc.o" "gcc" "src/CMakeFiles/csce.dir/util/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
