# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tools_pipeline_smoke "sh" "/root/repo/tools/smoke_test.sh" "/root/repo/build/tools" "/root/repo/build/tools/smoke_workdir")
set_tests_properties(tools_pipeline_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
