file(REMOVE_RECURSE
  "CMakeFiles/csce_build.dir/csce_build.cc.o"
  "CMakeFiles/csce_build.dir/csce_build.cc.o.d"
  "csce_build"
  "csce_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csce_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
