# Empty compiler generated dependencies file for csce_build.
# This may be replaced when dependencies are built.
