# Empty compiler generated dependencies file for csce_stats.
# This may be replaced when dependencies are built.
