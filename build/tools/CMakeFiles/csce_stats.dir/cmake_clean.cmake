file(REMOVE_RECURSE
  "CMakeFiles/csce_stats.dir/csce_stats.cc.o"
  "CMakeFiles/csce_stats.dir/csce_stats.cc.o.d"
  "csce_stats"
  "csce_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csce_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
