# Empty dependencies file for csce_match.
# This may be replaced when dependencies are built.
