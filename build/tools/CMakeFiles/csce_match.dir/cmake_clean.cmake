file(REMOVE_RECURSE
  "CMakeFiles/csce_match.dir/csce_match.cc.o"
  "CMakeFiles/csce_match.dir/csce_match.cc.o.d"
  "csce_match"
  "csce_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csce_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
