# Empty compiler generated dependencies file for csce_gen.
# This may be replaced when dependencies are built.
