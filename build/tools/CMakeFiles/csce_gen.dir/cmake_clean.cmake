file(REMOVE_RECURSE
  "CMakeFiles/csce_gen.dir/csce_gen.cc.o"
  "CMakeFiles/csce_gen.dir/csce_gen.cc.o.d"
  "csce_gen"
  "csce_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csce_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
