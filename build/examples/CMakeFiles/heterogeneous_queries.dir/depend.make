# Empty dependencies file for heterogeneous_queries.
# This may be replaced when dependencies are built.
