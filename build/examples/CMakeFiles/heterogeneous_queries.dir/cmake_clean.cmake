file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_queries.dir/heterogeneous_queries.cpp.o"
  "CMakeFiles/heterogeneous_queries.dir/heterogeneous_queries.cpp.o.d"
  "heterogeneous_queries"
  "heterogeneous_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
