file(REMOVE_RECURSE
  "CMakeFiles/higher_order_clustering.dir/higher_order_clustering.cpp.o"
  "CMakeFiles/higher_order_clustering.dir/higher_order_clustering.cpp.o.d"
  "higher_order_clustering"
  "higher_order_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/higher_order_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
