# Empty dependencies file for higher_order_clustering.
# This may be replaced when dependencies are built.
