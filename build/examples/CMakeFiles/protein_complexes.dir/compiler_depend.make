# Empty compiler generated dependencies file for protein_complexes.
# This may be replaced when dependencies are built.
