file(REMOVE_RECURSE
  "CMakeFiles/protein_complexes.dir/protein_complexes.cpp.o"
  "CMakeFiles/protein_complexes.dir/protein_complexes.cpp.o.d"
  "protein_complexes"
  "protein_complexes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protein_complexes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
