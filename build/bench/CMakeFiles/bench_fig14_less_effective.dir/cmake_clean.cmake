file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_less_effective.dir/bench_fig14_less_effective.cc.o"
  "CMakeFiles/bench_fig14_less_effective.dir/bench_fig14_less_effective.cc.o.d"
  "bench_fig14_less_effective"
  "bench_fig14_less_effective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_less_effective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
