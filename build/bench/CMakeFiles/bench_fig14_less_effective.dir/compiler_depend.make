# Empty compiler generated dependencies file for bench_fig14_less_effective.
# This may be replaced when dependencies are built.
