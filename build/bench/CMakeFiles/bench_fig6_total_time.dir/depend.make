# Empty dependencies file for bench_fig6_total_time.
# This may be replaced when dependencies are built.
