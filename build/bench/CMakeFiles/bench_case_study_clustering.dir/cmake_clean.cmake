file(REMOVE_RECURSE
  "CMakeFiles/bench_case_study_clustering.dir/bench_case_study_clustering.cc.o"
  "CMakeFiles/bench_case_study_clustering.dir/bench_case_study_clustering.cc.o.d"
  "bench_case_study_clustering"
  "bench_case_study_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case_study_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
