# Empty compiler generated dependencies file for bench_fig12_sce_occurrence.
# This may be replaced when dependencies are built.
