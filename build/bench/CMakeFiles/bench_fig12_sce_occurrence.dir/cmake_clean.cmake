file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_sce_occurrence.dir/bench_fig12_sce_occurrence.cc.o"
  "CMakeFiles/bench_fig12_sce_occurrence.dir/bench_fig12_sce_occurrence.cc.o.d"
  "bench_fig12_sce_occurrence"
  "bench_fig12_sce_occurrence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_sce_occurrence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
