file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_embeddings.dir/bench_fig9_embeddings.cc.o"
  "CMakeFiles/bench_fig9_embeddings.dir/bench_fig9_embeddings.cc.o.d"
  "bench_fig9_embeddings"
  "bench_fig9_embeddings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_embeddings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
