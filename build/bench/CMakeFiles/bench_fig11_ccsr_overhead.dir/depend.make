# Empty dependencies file for bench_fig11_ccsr_overhead.
# This may be replaced when dependencies are built.
