file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_capabilities.dir/bench_table3_capabilities.cc.o"
  "CMakeFiles/bench_table3_capabilities.dir/bench_table3_capabilities.cc.o.d"
  "bench_table3_capabilities"
  "bench_table3_capabilities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_capabilities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
