# Empty compiler generated dependencies file for bench_fig10_plan_scale.
# This may be replaced when dependencies are built.
