file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_plan_quality.dir/bench_fig13_plan_quality.cc.o"
  "CMakeFiles/bench_fig13_plan_quality.dir/bench_fig13_plan_quality.cc.o.d"
  "bench_fig13_plan_quality"
  "bench_fig13_plan_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_plan_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
