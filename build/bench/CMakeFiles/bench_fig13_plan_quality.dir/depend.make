# Empty dependencies file for bench_fig13_plan_quality.
# This may be replaced when dependencies are built.
