# Empty dependencies file for bench_fig8_throughput.
# This may be replaced when dependencies are built.
