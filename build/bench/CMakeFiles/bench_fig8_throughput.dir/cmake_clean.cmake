file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_throughput.dir/bench_fig8_throughput.cc.o"
  "CMakeFiles/bench_fig8_throughput.dir/bench_fig8_throughput.cc.o.d"
  "bench_fig8_throughput"
  "bench_fig8_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
