#!/usr/bin/env sh
# Regenerate BENCH_baseline.json — the committed quick-mode perf snapshot.
#
# Runs bench_fig6_total_time, bench_parallel_scaling,
# bench_shard_scaling, bench_prune and bench_intersect with
# CSCE_BENCH_QUICK=1 and merges their
# BENCH_*.json artifacts into a single csce.bench_baseline.v1 document
# at the repository root.
#
# Usage: tools/make_bench_baseline.sh [build-dir]    (default: build)
set -eu

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
case "$build_dir" in
  /*) ;;
  *) build_dir="$repo_root/$build_dir" ;;
esac

for bin in bench_fig6_total_time bench_parallel_scaling bench_shard_scaling bench_prune bench_intersect; do
  if [ ! -x "$build_dir/bench/$bin" ]; then
    echo "error: $build_dir/bench/$bin not built (cmake --build $build_dir --target $bin)" >&2
    exit 1
  fi
done

work_dir="$(mktemp -d)"
trap 'rm -rf "$work_dir"' EXIT

echo "== quick-mode fig6 =="
(cd "$work_dir" && CSCE_BENCH_QUICK=1 "$build_dir/bench/bench_fig6_total_time")
echo "== quick-mode parallel_scaling =="
(cd "$work_dir" && CSCE_BENCH_QUICK=1 "$build_dir/bench/bench_parallel_scaling")
echo "== quick-mode shard_scaling =="
(cd "$work_dir" && CSCE_BENCH_QUICK=1 "$build_dir/bench/bench_shard_scaling")
echo "== quick-mode prune =="
(cd "$work_dir" && CSCE_BENCH_QUICK=1 "$build_dir/bench/bench_prune")
echo "== quick-mode intersect =="
(cd "$work_dir" && CSCE_BENCH_QUICK=1 "$build_dir/bench/bench_intersect")

out="$repo_root/BENCH_baseline.json"
if command -v python3 > /dev/null 2>&1; then
  python3 - "$work_dir" "$out" << 'EOF'
import glob, json, os, sys
work_dir, out = sys.argv[1], sys.argv[2]
benches = []
for path in sorted(glob.glob(os.path.join(work_dir, "BENCH_*.json"))):
    with open(path) as f:
        doc = json.load(f)
    assert doc.get("schema") == "csce.bench.v1", path
    benches.append(doc)
doc = {"schema": "csce.bench_baseline.v1", "benches": benches}
with open(out, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
print(f"wrote {out} ({len(benches)} benches)")
EOF
else
  # No python3: concatenate by hand. The per-bench files are valid JSON
  # documents, so wrapping them in an array keeps the result valid.
  {
    printf '{\n "schema": "csce.bench_baseline.v1",\n "benches": [\n'
    first=1
    for f in "$work_dir"/BENCH_*.json; do
      [ "$first" = 1 ] || printf ',\n'
      first=0
      cat "$f"
    done
    printf '\n ]\n}\n'
  } > "$out"
  echo "wrote $out (python3 unavailable; skipped validation)"
fi
