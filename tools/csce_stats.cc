// csce_stats: print Table IV-style statistics for graph files, plus the
// CCSR clustering summary.
//
//   csce_stats g1.txt g2.txt ...

#include <cstdio>

#include "ccsr/ccsr.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace csce;
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  if (flags.positional().empty()) {
    std::fprintf(stderr, "usage: csce_stats <graph.txt>...\n");
    return 2;
  }
  bool with_ccsr = !flags.GetBool("no-ccsr");
  std::printf("%s%s\n", StatsHeader().c_str(),
              with_ccsr ? "     clusters  compressed" : "");
  int failures = 0;
  for (const std::string& path : flags.positional()) {
    Graph g;
    if (Status st = LoadGraphFromFile(path, &g); !st.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), st.ToString().c_str());
      ++failures;
      continue;
    }
    std::printf("%s", FormatStatsRow(path, ComputeStats(g)).c_str());
    if (with_ccsr) {
      Ccsr ccsr = Ccsr::Build(g);
      std::printf(" %12zu %10.2fMB", ccsr.NumClusters(),
                  static_cast<double>(ccsr.CompressedSizeBytes()) / (1 << 20));
    }
    std::printf("\n");
  }
  return failures == 0 ? 0 : 1;
}
