#ifndef CSCE_TOOLS_CSCE_LINT_CHECKS_H_
#define CSCE_TOOLS_CSCE_LINT_CHECKS_H_

#include <string>
#include <vector>

#include "model.h"

namespace csce_lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string check;
  std::string message;
};

/// Runs every check (or just `only` when non-empty) over the model and
/// returns the findings sorted by file then line.
///
/// The five checks:
///  - hot-path-no-alloc: no function transitively reachable from a
///    CSCE_HOT_PATH root may call an allocating API; CSCE_ALLOC_OK
///    nodes terminate the walk.
///  - wire-bounded-reads: in wire decoder files (*wire*.cc), raw buffer
///    access (memcpy, reinterpret_cast, pointer arithmetic on .data(),
///    direct data_[] indexing) is confined to CSCE_WIRE_PRIMITIVE
///    helpers; everything else must go through the bounded readers.
///  - mmap-bounded-reads: in mmap view files (*mmap*.cc), the same raw
///    access patterns over mapped bytes are confined to
///    CSCE_MAP_PRIMITIVE accessors — a mapped file's length is attacker
///    input, so every span must be bound through the checked helpers.
///  - guarded-by-complete: a class owning a Mutex must annotate every
///    plain member (CSCE_GUARDED_BY or an explicit CSCE_NOT_GUARDED);
///    atomics, statics and the synchronization objects themselves are
///    exempt.
///  - signal-discipline: signal()/sigaction() handler registration is
///    banned — handlers run async-signal-unsafe code sooner or later;
///    the blocked-signal + sigwait watcher pattern (csce_serve) is the
///    sanctioned shape.
std::vector<Finding> RunChecks(const SourceModel& model,
                               const std::string& only);

}  // namespace csce_lint

#endif  // CSCE_TOOLS_CSCE_LINT_CHECKS_H_
