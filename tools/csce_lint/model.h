#ifndef CSCE_TOOLS_CSCE_LINT_MODEL_H_
#define CSCE_TOOLS_CSCE_LINT_MODEL_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace csce_lint {

/// One syntactic call site inside a function body (or constructor
/// initializer list — member initializers can allocate too).
struct CallSite {
  std::string name;       // callee identifier
  std::string qualifier;  // token before "::" ("std", a class, a namespace)
  bool member_access = false;  // preceded by '.' or '->'
  int line = 0;
};

/// One project function, merged across its declarations and its
/// definition: markers live on header declarations, bodies in the .cc.
/// Overloads sharing a (class, name) key merge into one node — the
/// checks resolve calls by name, so keeping them apart buys nothing.
struct FunctionInfo {
  std::string name;
  std::string cls;  // enclosing class/struct, "" for free functions
  std::string file;
  int line = 0;
  bool hot = false;             // CSCE_HOT_PATH
  bool alloc_ok = false;        // CSCE_ALLOC_OK
  bool wire_primitive = false;  // CSCE_WIRE_PRIMITIVE
  bool map_primitive = false;   // CSCE_MAP_PRIMITIVE
  bool has_body = false;
  std::vector<CallSite> calls;
  /// Raw-buffer access sites (memcpy, reinterpret_cast, ".data() +",
  /// "data_["), recorded everywhere but only judged in wire decoders.
  std::vector<CallSite> raw_accesses;
};

/// A member variable the guarded-by-complete check could not excuse:
/// trailing-underscore name, non-atomic, non-static, not itself a
/// synchronization object, and carrying no CSCE_GUARDED_BY /
/// CSCE_NOT_GUARDED annotation.
struct MemberInfo {
  std::string name;
  int line = 0;
};

struct ClassInfo {
  std::string name;
  std::string file;
  bool has_mutex = false;
  std::vector<MemberInfo> unannotated;
};

/// Everything the checks need, aggregated across all input files.
struct SourceModel {
  std::vector<FunctionInfo> functions;
  std::multimap<std::string, size_t> by_name;  // name -> functions index
  std::vector<ClassInfo> classes;
  /// Names defined as a method by at least one project class. A member
  /// call x.foo() with foo in this set is resolved to the project
  /// methods of that name — see checks.cc for why this deliberate
  /// unsoundness is the right trade.
  std::set<std::string> class_method_names;

  /// Index of the (cls, name) node, creating it if absent.
  size_t Intern(const std::string& cls, const std::string& name,
                const std::string& file, int line);
};

/// Parses one file's tokens into the model. Token-level heuristics, not
/// a grammar: function definitions are "identifier ( ... ) [qualifiers]
/// { body }", class context comes from a brace-matched scope stack, and
/// markers are read from the declaration prefix (everything since the
/// previous ';', brace or access specifier).
void ParseFile(const std::string& path, const std::string& text,
               SourceModel* model);

}  // namespace csce_lint

#endif  // CSCE_TOOLS_CSCE_LINT_MODEL_H_
