#include "checks.h"

#include <algorithm>
#include <set>

namespace csce_lint {
namespace {

/// External APIs that always (or amortized-always) allocate. Method
/// names double as std container methods: a member call that no project
/// class shadows is assumed to be a std container and judged by name.
bool IsAllocatingName(const std::string& n) {
  static const std::set<std::string> deny = {
      "new",          "malloc",       "calloc",
      "realloc",      "strdup",       "aligned_alloc",
      "make_unique",  "make_shared",  "make_unique_for_overwrite",
      "to_string",    "substr",       "append",
      "resize",       "reserve",      "emplace_back",
      "push_back",    "insert",       "assign",
      "emplace",      "stoi",         "stol",
      "stoul",        "stod",
  };
  return deny.count(n) != 0;
}

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

class HotPathCheck {
 public:
  explicit HotPathCheck(const SourceModel& m) : m_(m) {}

  std::vector<Finding> Run() {
    for (size_t i = 0; i < m_.functions.size(); ++i) {
      const FunctionInfo& fn = m_.functions[i];
      if (fn.hot && !fn.alloc_ok) {
        chain_.push_back(fn.name);
        Visit(i);
        chain_.pop_back();
      }
    }
    return std::move(findings_);
  }

 private:
  /// Resolves one call site to project callees, or reports it when it
  /// can only be an external allocating API. Resolution is deliberately
  /// unsound in one direction: a member call whose name any project
  /// class defines (x.push_back() where VertexScratch::push_back
  /// exists) resolves to the project methods, so push-into-prereserved
  /// std::vectors on the hot path are accepted. The zero-allocation
  /// discipline test (VertexScratch::HotGrowthCountForTesting) is the
  /// dynamic backstop for that gap.
  void Resolve(const FunctionInfo& fn, const CallSite& c,
               std::vector<size_t>* targets) {
    targets->clear();
    if (c.name == "new") {
      Report(fn, c);
      return;
    }
    if (c.qualifier == "std") {
      if (IsAllocatingName(c.name)) Report(fn, c);
      return;
    }
    auto range = m_.by_name.equal_range(c.name);
    if (c.member_access) {
      if (m_.class_method_names.count(c.name)) {
        for (auto it = range.first; it != range.second; ++it) {
          if (!m_.functions[it->second].cls.empty()) {
            targets->push_back(it->second);
          }
        }
      } else if (IsAllocatingName(c.name)) {
        Report(fn, c);
      }
      return;
    }
    if (!c.qualifier.empty()) {
      for (auto it = range.first; it != range.second; ++it) {
        if (m_.functions[it->second].cls == c.qualifier) {
          targets->push_back(it->second);
        }
      }
      if (targets->empty()) {  // namespace qualifier, not a class
        for (auto it = range.first; it != range.second; ++it) {
          targets->push_back(it->second);
        }
      }
      if (targets->empty() && IsAllocatingName(c.name)) Report(fn, c);
      return;
    }
    // Bare call: same class first, then free functions.
    for (auto it = range.first; it != range.second; ++it) {
      if (m_.functions[it->second].cls == fn.cls) targets->push_back(it->second);
    }
    if (targets->empty()) {
      for (auto it = range.first; it != range.second; ++it) {
        if (m_.functions[it->second].cls.empty()) {
          targets->push_back(it->second);
        }
      }
    }
    if (targets->empty() && IsAllocatingName(c.name)) Report(fn, c);
  }

  void Visit(size_t idx) {
    if (!visited_.insert(idx).second) return;
    const FunctionInfo& fn = m_.functions[idx];
    if (fn.alloc_ok) return;  // explicitly exempted subtree
    std::vector<size_t> targets;
    for (const CallSite& c : fn.calls) {
      Resolve(fn, c, &targets);
      for (size_t t : targets) {
        if (m_.functions[t].alloc_ok) continue;
        chain_.push_back(m_.functions[t].name);
        Visit(t);
        chain_.pop_back();
      }
    }
  }

  void Report(const FunctionInfo& fn, const CallSite& c) {
    std::string path;
    for (const std::string& s : chain_) {
      if (!path.empty()) path += " -> ";
      path += s;
    }
    findings_.push_back(
        {fn.file, c.line, "hot-path-no-alloc",
         "allocating call '" + c.name + "' reachable from hot path (" +
             path + "); hoist the allocation to Prepare() or mark the "
             "callee CSCE_ALLOC_OK with a justification"});
  }

  const SourceModel& m_;
  std::set<size_t> visited_;
  std::vector<std::string> chain_;
  std::vector<Finding> findings_;
};

std::vector<Finding> CheckWireBoundedReads(const SourceModel& m) {
  std::vector<Finding> out;
  for (const FunctionInfo& fn : m.functions) {
    if (!fn.has_body || fn.wire_primitive) continue;
    std::string base = Basename(fn.file);
    if (base.find("wire") == std::string::npos ||
        base.rfind(".cc") != base.size() - 3) {
      continue;
    }
    for (const CallSite& raw : fn.raw_accesses) {
      out.push_back({fn.file, raw.line, "wire-bounded-reads",
                     "raw buffer access '" + raw.name + "' in '" + fn.name +
                         "' outside a CSCE_WIRE_PRIMITIVE helper; decode "
                         "through the bounded PayloadReader accessors"});
    }
  }
  return out;
}

std::vector<Finding> CheckMmapBoundedReads(const SourceModel& m) {
  std::vector<Finding> out;
  for (const FunctionInfo& fn : m.functions) {
    if (!fn.has_body || fn.map_primitive) continue;
    std::string base = Basename(fn.file);
    if (base.find("mmap") == std::string::npos ||
        base.rfind(".cc") != base.size() - 3) {
      continue;
    }
    for (const CallSite& raw : fn.raw_accesses) {
      out.push_back({fn.file, raw.line, "mmap-bounded-reads",
                     "raw access '" + raw.name + "' over mapped bytes in '" +
                         fn.name + "' outside a CSCE_MAP_PRIMITIVE accessor; "
                         "bind spans through the bounds-checked helpers"});
    }
  }
  return out;
}

std::vector<Finding> CheckGuardedByComplete(const SourceModel& m) {
  std::vector<Finding> out;
  for (const ClassInfo& cls : m.classes) {
    if (!cls.has_mutex) continue;
    for (const MemberInfo& member : cls.unannotated) {
      out.push_back(
          {cls.file, member.line, "guarded-by-complete",
           "'" + cls.name + "' owns a mutex but member '" + member.name +
               "' is neither CSCE_GUARDED_BY a lock nor explicitly "
               "CSCE_NOT_GUARDED"});
    }
  }
  return out;
}

std::vector<Finding> CheckSignalDiscipline(const SourceModel& m) {
  std::vector<Finding> out;
  for (const FunctionInfo& fn : m.functions) {
    for (const CallSite& c : fn.calls) {
      if ((c.name == "signal" || c.name == "sigaction") &&
          (c.qualifier.empty() || c.qualifier == "std") &&
          !c.member_access) {
        out.push_back({fn.file, c.line, "signal-discipline",
                       "'" + c.name + "' installs an async signal handler; "
                           "use the blocked-signal sigwait watcher pattern "
                           "(see csce_serve) instead"});
      }
    }
  }
  return out;
}

}  // namespace

std::vector<Finding> RunChecks(const SourceModel& model,
                               const std::string& only) {
  std::vector<Finding> out;
  auto want = [&](const char* name) { return only.empty() || only == name; };
  if (want("hot-path-no-alloc")) {
    std::vector<Finding> f = HotPathCheck(model).Run();
    out.insert(out.end(), f.begin(), f.end());
  }
  if (want("wire-bounded-reads")) {
    std::vector<Finding> f = CheckWireBoundedReads(model);
    out.insert(out.end(), f.begin(), f.end());
  }
  if (want("mmap-bounded-reads")) {
    std::vector<Finding> f = CheckMmapBoundedReads(model);
    out.insert(out.end(), f.begin(), f.end());
  }
  if (want("guarded-by-complete")) {
    std::vector<Finding> f = CheckGuardedByComplete(model);
    out.insert(out.end(), f.begin(), f.end());
  }
  if (want("signal-discipline")) {
    std::vector<Finding> f = CheckSignalDiscipline(model);
    out.insert(out.end(), f.begin(), f.end());
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.message < b.message;
  });
  return out;
}

}  // namespace csce_lint
