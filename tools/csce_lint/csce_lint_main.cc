// csce_lint: project-specific static checks over the CSCE tree.
//
//   csce_lint --compdb=build/compile_commands.json --src=src [--src=DIR]...
//   csce_lint [--check=NAME] file.cc [file2.cc ...]
//
// The translation units come from the compilation database CMake
// exports (CMAKE_EXPORT_COMPILE_COMMANDS, always on for this project);
// headers are gathered from the --src directories since they carry the
// markers (CSCE_HOT_PATH on declarations, CSCE_GUARDED_BY on members).
// Explicit file arguments replace both — that is how the negative
// fixtures under tests/lint_fixtures are driven.
//
// Checks (see checks.h): hot-path-no-alloc, wire-bounded-reads,
// mmap-bounded-reads, guarded-by-complete, signal-discipline. Findings
// print as
// "file:line: [check] message"; the exit status is 1 when anything was
// found, 2 on usage or I/O errors, 0 when clean.
//
// This is a token-level analyzer by design: it must run in every
// environment the project builds in, including containers with no
// clang/libTooling at all, so it depends on nothing beyond the C++
// standard library. The flip side — no types, no overload resolution —
// is documented where each heuristic lives.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "checks.h"
#include "model.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Pulls every "file" entry out of a compile_commands.json. A full JSON
/// parser is overkill for the fixed shape CMake emits; this scans for
/// the key and takes the following string, unescaping the two escapes
/// that can appear in a path.
bool CompdbFiles(const std::string& path, std::vector<std::string>* out) {
  std::string text;
  if (!ReadFile(path, &text)) return false;
  const std::string key = "\"file\"";
  size_t pos = 0;
  while ((pos = text.find(key, pos)) != std::string::npos) {
    pos += key.size();
    size_t open = text.find('"', pos);
    if (open == std::string::npos) break;
    std::string value;
    size_t i = open + 1;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) ++i;
      value += text[i++];
    }
    out->push_back(value);
    pos = i;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string compdb;
  std::string only_check;
  std::vector<std::string> src_dirs;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&arg](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--compdb=", 0) == 0) {
      compdb = value("--compdb=");
    } else if (arg.rfind("--src=", 0) == 0) {
      src_dirs.push_back(value("--src="));
    } else if (arg.rfind("--check=", 0) == 0) {
      only_check = value("--check=");
    } else if (arg == "--help" || arg == "-h") {
      std::cerr << "usage: csce_lint --compdb=PATH [--src=DIR]... "
                   "[--check=NAME] [file...]\n";
      return 2;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "csce_lint: unknown flag " << arg << "\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  std::set<std::string> inputs(files.begin(), files.end());
  if (files.empty()) {
    if (compdb.empty()) {
      std::cerr << "csce_lint: need --compdb=... or explicit files\n";
      return 2;
    }
    std::vector<std::string> tus;
    if (!CompdbFiles(compdb, &tus)) {
      std::cerr << "csce_lint: cannot read " << compdb << "\n";
      return 2;
    }
    for (const std::string& tu : tus) {
      // Library and tool sources only: tests and benches play by
      // different rules (gtest macros, deliberate stress allocation).
      if (tu.find("/src/") != std::string::npos ||
          tu.find("/tools/") != std::string::npos) {
        inputs.insert(tu);
      }
    }
    for (const std::string& dir : src_dirs) {
      std::error_code ec;
      std::filesystem::recursive_directory_iterator it(dir, ec), end;
      if (ec) {
        std::cerr << "csce_lint: cannot scan " << dir << ": " << ec.message()
                  << "\n";
        return 2;
      }
      for (; it != end; ++it) {
        if (it->is_regular_file() && it->path().extension() == ".h") {
          inputs.insert(it->path().string());
        }
      }
    }
  }
  if (inputs.empty()) {
    std::cerr << "csce_lint: no input files\n";
    return 2;
  }

  csce_lint::SourceModel model;
  for (const std::string& path : inputs) {
    std::string text;
    if (!ReadFile(path, &text)) {
      std::cerr << "csce_lint: cannot read " << path << "\n";
      return 2;
    }
    csce_lint::ParseFile(path, text, &model);
  }

  std::vector<csce_lint::Finding> findings =
      csce_lint::RunChecks(model, only_check);
  for (const csce_lint::Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.check << "] "
              << f.message << "\n";
  }
  std::cerr << "csce_lint: " << inputs.size() << " files, "
            << model.functions.size() << " functions, " << findings.size()
            << " finding(s)\n";
  return findings.empty() ? 0 : 1;
}
