#ifndef CSCE_TOOLS_CSCE_LINT_LEXER_H_
#define CSCE_TOOLS_CSCE_LINT_LEXER_H_

#include <string>
#include <vector>

namespace csce_lint {

/// Token kinds the checks care about. Comments, string/char literals
/// and preprocessor lines are stripped during lexing (literals collapse
/// to one kLiteral token so "signal" inside a message never looks like
/// a call); everything else keeps its spelling and line number.
enum class TokKind {
  kIdent,
  kNumber,
  kPunct,    // single char, plus the two-char tokens "::" and "->"
  kLiteral,  // string or char literal, text dropped
};

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

/// Tokenizes C++ source far enough for token-level analysis: this is
/// not a conforming lexer (no digraphs, no UCNs), it is the smallest
/// one whose output the csce_lint checks can trust. Preprocessor
/// directives are skipped whole (including backslash continuations),
/// so macro *definitions* never contribute tokens — macro *uses* like
/// CSCE_HOT_PATH appear as ordinary identifiers, which is exactly how
/// the checks match them.
std::vector<Token> Lex(const std::string& source);

}  // namespace csce_lint

#endif  // CSCE_TOOLS_CSCE_LINT_LEXER_H_
