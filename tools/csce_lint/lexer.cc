#include "lexer.h"

#include <cctype>

namespace csce_lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> Lex(const std::string& src) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = src.size();
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the newline

  auto advance = [&](size_t k) {
    for (size_t j = 0; j < k && i < n; ++j, ++i) {
      if (src[i] == '\n') {
        ++line;
        at_line_start = true;
      }
    }
  };

  while (i < n) {
    char c = src[i];
    if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Preprocessor directive: swallow to end of line, honouring
    // backslash continuations. (Strings inside directives are skipped
    // with the rest of the line; good enough for #include paths.)
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          advance(2);
          continue;
        }
        if (src[i] == '\n') break;
        advance(1);
      }
      continue;
    }
    at_line_start = false;
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') advance(1);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      advance(2);
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) advance(1);
      advance(2);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      size_t d = i + 2;
      while (d < n && src[d] != '(') ++d;
      std::string close = ")" + src.substr(i + 2, d - (i + 2)) + "\"";
      int lit_line = line;
      advance(d - i + 1);
      size_t end = src.find(close, i);
      advance((end == std::string::npos ? n : end + close.size()) - i);
      out.push_back({TokKind::kLiteral, "", lit_line});
      continue;
    }
    // String / char literal (escapes honoured, contents dropped).
    if (c == '"' || c == '\'') {
      char quote = c;
      int lit_line = line;
      advance(1);
      while (i < n && src[i] != quote) {
        advance(src[i] == '\\' ? 2 : 1);
      }
      advance(1);
      out.push_back({TokKind::kLiteral, "", lit_line});
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(src[i])) ++i;
      out.push_back({TokKind::kIdent, src.substr(start, i - start), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && (IsIdentChar(src[i]) || src[i] == '.' ||
                       src[i] == '\'' ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P')))) {
        ++i;
      }
      out.push_back({TokKind::kNumber, src.substr(start, i - start), line});
      continue;
    }
    // Punctuation. "::" and "->" are the only multi-char tokens the
    // checks distinguish; ">>" deliberately lexes as two ">" so
    // template-angle matching needs no special case.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.push_back({TokKind::kPunct, "::", line});
      advance(2);
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      out.push_back({TokKind::kPunct, "->", line});
      advance(2);
      continue;
    }
    out.push_back({TokKind::kPunct, std::string(1, c), line});
    advance(1);
  }
  return out;
}

}  // namespace csce_lint
