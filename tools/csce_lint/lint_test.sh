#!/bin/sh
# csce_lint self-test: every negative fixture must be flagged by the
# check it seeds a violation for, and the real tree must be clean. The
# fixtures exist so the clean run is evidence, not vacuity — a checker
# that cannot find the planted bug proves nothing by finding none.
#
#   lint_test.sh <csce_lint-binary> <repo-root> <build-dir>
set -eu

LINT="$1"
ROOT="$2"
BUILD="$3"
FIXTURES="$ROOT/tests/lint_fixtures"

fail() {
  echo "lint_test: $1" >&2
  exit 1
}

# One seeded violation per check; the fixture must trigger its check
# (exit 1) and the finding must name it.
expect_finding() {
  fixture="$1"
  check="$2"
  out="$("$LINT" "--check=$check" "$FIXTURES/$fixture" 2>/dev/null)" \
    && fail "$fixture: expected a $check finding, got a clean run"
  echo "$out" | grep -q "\[$check\]" \
    || fail "$fixture: no [$check] finding in output: $out"
  echo "lint_test: $fixture -> [$check] OK"
}

expect_finding hot_alloc.cc hot-path-no-alloc
expect_finding prune_hot_alloc.cc hot-path-no-alloc
expect_finding wire_raw_read.cc wire-bounded-reads
expect_finding mmap_raw_read.cc mmap-bounded-reads
expect_finding unguarded_member.cc guarded-by-complete
expect_finding signal_handler.cc signal-discipline

# All fixtures together: one finding each, all five checks firing.
count="$("$LINT" "$FIXTURES"/*.cc 2>/dev/null | wc -l)" || true
[ "$count" -eq 6 ] || fail "expected 6 findings across fixtures, got $count"

# The real tree must be clean, using the compilation database exported
# by the build that is running this test.
[ -f "$BUILD/compile_commands.json" ] \
  || fail "missing $BUILD/compile_commands.json"
"$LINT" "--compdb=$BUILD/compile_commands.json" "--src=$ROOT/src" \
  || fail "real tree has findings"

echo "lint_test: OK"
