#include "model.h"

#include <algorithm>

namespace csce_lint {
namespace {

bool IsKeyword(const std::string& t) {
  static const std::set<std::string> kw = {
      "if",       "for",        "while",        "switch",
      "return",   "sizeof",     "alignof",      "catch",
      "throw",    "delete",     "static_cast",  "dynamic_cast",
      "const_cast", "reinterpret_cast", "decltype", "noexcept",
      "alignas",  "case",       "default",      "do",
      "else",     "goto",       "requires",     "typeid",
      "static_assert", "assert",
  };
  return kw.count(t) != 0;
}

bool IsGuardAnnotation(const std::string& t) {
  return t == "CSCE_GUARDED_BY" || t == "CSCE_PT_GUARDED_BY" ||
         t == "CSCE_NOT_GUARDED";
}

/// Names that take explicit template arguments at their call sites in
/// this codebase. Angle-skipping is restricted to these so ordinary
/// comparisons ("a < b && f(x) > c") never lex into phantom calls.
bool TemplateCallName(const std::string& t) {
  return t == "make_unique" || t == "make_shared" ||
         t == "make_unique_for_overwrite";
}

struct Scope {
  enum Kind { kNamespace, kClass, kOther } kind;
  std::string name;
};

class Parser {
 public:
  Parser(const std::string& path, std::vector<Token> toks, SourceModel* model)
      : path_(path), t_(std::move(toks)), model_(model) {}

  void Run() {
    size_t i = 0;
    decl_start_ = 0;
    while (i < t_.size()) {
      size_t next = Step(i);
      i = next > i ? next : i + 1;  // guarantee progress
    }
  }

 private:
  const std::string& Text(size_t i) const {
    static const std::string empty;
    return i < t_.size() ? t_[i].text : empty;
  }
  bool Is(size_t i, const char* s) const { return Text(i) == s; }
  bool IsIdent(size_t i) const {
    return i < t_.size() && t_[i].kind == TokKind::kIdent;
  }
  int Line(size_t i) const { return i < t_.size() ? t_[i].line : 0; }

  size_t MatchDelim(size_t i, const char* open, const char* close) const {
    int depth = 0;
    for (size_t j = i; j < t_.size(); ++j) {
      if (Is(j, open)) ++depth;
      else if (Is(j, close) && --depth == 0) return j;
    }
    return t_.size();
  }
  size_t MatchParen(size_t i) const { return MatchDelim(i, "(", ")"); }
  size_t MatchBrace(size_t i) const { return MatchDelim(i, "{", "}"); }

  /// Best-effort template-argument skip from '<'; returns the index
  /// after the matching '>' or `i` unchanged when this is clearly not a
  /// template argument list. ">>" lexes as two ">" so nesting is plain.
  size_t SkipAngles(size_t i) const {
    int depth = 0;
    size_t limit = std::min(t_.size(), i + 100);
    for (size_t j = i; j < limit; ++j) {
      if (Is(j, "<")) ++depth;
      else if (Is(j, ">")) {
        if (--depth == 0) return j + 1;
      } else if (Is(j, ";") || Is(j, "{") || Is(j, "}")) {
        break;
      }
    }
    return i;
  }

  std::string CurrentClass() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == Scope::kClass) return it->name;
      if (it->kind == Scope::kOther) return "";
    }
    return "";
  }

  ClassInfo* CurrentClassInfo() {
    if (stack_.empty() || stack_.back().kind != Scope::kClass) return nullptr;
    for (ClassInfo& c : model_->classes) {
      if (c.name == stack_.back().name && c.file == path_) return &c;
    }
    return nullptr;
  }

  size_t Step(size_t i) {
    const Token& tk = t_[i];
    const std::string& s = tk.text;
    if (tk.kind == TokKind::kIdent) {
      if (s == "using" || s == "typedef") return SkipToSemi(i);
      if (s == "friend" && (Is(i + 1, "class") || Is(i + 1, "struct"))) {
        return SkipToSemi(i);
      }
      if (s == "namespace") return HandleNamespace(i);
      if (s == "class" || s == "struct") return HandleClass(i);
      if (s == "enum") return HandleEnum(i);
      if (s == "template") return SkipAngles(i + 1);
      if (s == "operator") return HandleOperator(i);
      if ((s == "public" || s == "private" || s == "protected") &&
          Is(i + 1, ":")) {
        decl_start_ = i + 2;
        return i + 2;
      }
      if (!IsKeyword(s) && Is(i + 1, "(")) return HandleFunction(i, i + 1);
      return i + 1;
    }
    if (s == "{") {
      stack_.push_back({Scope::kOther, ""});
      decl_start_ = i + 1;
      return i + 1;
    }
    if (s == "}") {
      if (!stack_.empty()) stack_.pop_back();
      decl_start_ = i + 1;
      return i + 1;
    }
    if (s == ";") {
      EndMemberSpan(i);
      decl_start_ = i + 1;
      return i + 1;
    }
    return i + 1;
  }

  size_t SkipToSemi(size_t i) {
    while (i < t_.size() && !Is(i, ";")) ++i;
    decl_start_ = i + 1;
    return i + 1;
  }

  size_t HandleNamespace(size_t i) {
    size_t j = i + 1;
    while (IsIdent(j) || Is(j, "::")) ++j;
    if (Is(j, "{")) {
      stack_.push_back({Scope::kNamespace, ""});
      decl_start_ = j + 1;
      return j + 1;
    }
    return SkipToSemi(j);  // namespace alias
  }

  size_t HandleClass(size_t i) {
    size_t j = i + 1;
    // Attributes and alignas between the class-key and the name.
    for (;;) {
      if (Is(j, "[") && Is(j + 1, "[")) {
        while (j < t_.size() && !(Is(j, "]") && Is(j + 1, "]"))) ++j;
        j += 2;
      } else if (Is(j, "alignas") && Is(j + 1, "(")) {
        j = MatchParen(j + 1) + 1;
      } else {
        break;
      }
    }
    std::string name;
    if (IsIdent(j)) name = Text(j++);
    if (Is(j, "final")) ++j;
    if (Is(j, "<")) j = SkipAngles(j);  // specialization
    while (j < t_.size() && !Is(j, "{") && !Is(j, ";")) ++j;
    if (Is(j, "{")) {
      stack_.push_back({Scope::kClass, name});
      model_->classes.push_back({name, path_, false, {}});
      decl_start_ = j + 1;
      return j + 1;
    }
    decl_start_ = j + 1;  // forward declaration
    return j + 1;
  }

  size_t HandleEnum(size_t i) {
    size_t j = i + 1;
    while (j < t_.size() && !Is(j, "{") && !Is(j, ";")) ++j;
    if (Is(j, "{")) j = MatchBrace(j);
    decl_start_ = j + 1;
    return j + 1;
  }

  size_t HandleOperator(size_t i) {
    size_t j = i + 1;
    if (Is(j, "(") && Is(j + 1, ")")) j += 2;  // operator()
    while (j < t_.size() && !Is(j, "(")) ++j;
    if (j >= t_.size()) return i + 1;
    // From here an operator is an ordinary function whose name nothing
    // ever resolves to; parsing it keeps the scope stack honest.
    return HandleFunction(i, j);
  }

  /// `name_at` is the function-name token, `paren_at` its parameter
  /// list's '('.
  size_t HandleFunction(size_t name_at, size_t paren_at) {
    const size_t prefix_start = decl_start_;  // before Skip* clobbers it
    size_t close = MatchParen(paren_at);
    if (close >= t_.size()) return SkipToSemi(paren_at);
    size_t j = close + 1;
    bool is_def = false;
    for (; j < t_.size(); ++j) {
      const std::string& q = Text(j);
      if (q == "const" || q == "noexcept" || q == "override" ||
          q == "final" || q == "mutable" || q == "try" || q == "&" ||
          q == "&&") {
        if (q == "noexcept" && Is(j + 1, "(")) j = MatchParen(j + 1);
        continue;
      }
      if (IsIdent(j) && q.rfind("CSCE_", 0) == 0) {
        if (Is(j + 1, "(")) j = MatchParen(j + 1);
        continue;
      }
      if (q == "->") {  // trailing return type
        while (j < t_.size() && !Is(j, "{") && !Is(j, ";")) ++j;
        --j;
        continue;
      }
      if (q == "=") {
        Record(name_at, prefix_start);
        return SkipToSemi(j);
      }
      if (q == ";") {
        Record(name_at, prefix_start);
        decl_start_ = j + 1;
        return j + 1;
      }
      if (q == "{" || q == ":") {
        is_def = true;
        break;
      }
      // Not a function after all (macro invocation, expression, ...).
      return close + 1;
    }
    if (!is_def) return close + 1;

    // Body extent: from the qualifier break through the matching '}' of
    // the last top-level brace group. A brace group whose close is
    // followed by ',' or '{' was a constructor-initializer entry; the
    // body proper follows.
    size_t body_start = j;
    size_t k = j;
    while (k < t_.size()) {
      if (Is(k, "{")) {
        size_t bclose = MatchBrace(k);
        if (bclose >= t_.size()) {
          k = t_.size();
          break;
        }
        if (Is(bclose + 1, ",") || Is(bclose + 1, "{")) {
          k = bclose + 1;
          continue;
        }
        k = bclose + 1;
        break;
      }
      if (Is(k, ";")) break;  // safety net: no body found
      ++k;
    }

    FunctionInfo& fn = Record(name_at, prefix_start);
    fn.has_body = true;
    ScanBody(body_start, k, &fn);
    decl_start_ = k;
    return k;
  }

  FunctionInfo& Record(size_t name_at, size_t prefix_start) {
    std::string name = Text(name_at);
    std::string cls;
    if (name_at >= 2 && Is(name_at - 1, "::") && IsIdent(name_at - 2)) {
      cls = Text(name_at - 2);  // out-of-line Class::Method definition
    } else {
      cls = CurrentClass();
    }
    size_t idx = model_->Intern(cls, name, path_, Line(name_at));
    FunctionInfo& fn = model_->functions[idx];
    for (size_t p = prefix_start; p < name_at && p < t_.size(); ++p) {
      const std::string& s = Text(p);
      if (s == "CSCE_HOT_PATH") fn.hot = true;
      else if (s == "CSCE_ALLOC_OK") fn.alloc_ok = true;
      else if (s == "CSCE_WIRE_PRIMITIVE") fn.wire_primitive = true;
      else if (s == "CSCE_MAP_PRIMITIVE") fn.map_primitive = true;
    }
    if (!cls.empty()) model_->class_method_names.insert(name);
    return fn;
  }

  void ScanBody(size_t begin, size_t end, FunctionInfo* fn) {
    for (size_t k = begin; k < end && k < t_.size(); ++k) {
      if (!IsIdent(k)) continue;
      const std::string& s = Text(k);
      // Raw-buffer access patterns (wire-bounded-reads).
      if (s == "memcpy" || s == "memmove" || s == "reinterpret_cast") {
        fn->raw_accesses.push_back({s, "", false, Line(k)});
      } else if (s == "data" && Is(k + 1, "(") && Is(k + 2, ")") &&
                 Is(k + 3, "+")) {
        fn->raw_accesses.push_back({".data() +", "", false, Line(k)});
      } else if (s == "data_" && Is(k + 1, "[")) {
        fn->raw_accesses.push_back({"data_[", "", false, Line(k)});
      }
      if (s == "new") {
        fn->calls.push_back({"new", "", false, Line(k)});
        continue;
      }
      if (IsKeyword(s)) continue;
      size_t after = k + 1;
      if (TemplateCallName(s) && Is(after, "<")) after = SkipAngles(after);
      if (!Is(after, "(")) continue;
      CallSite c;
      c.name = s;
      c.line = Line(k);
      if (k > begin) {
        const std::string& prev = Text(k - 1);
        if (prev == "." || prev == "->") {
          c.member_access = true;
        } else if (prev == "::" && k >= 2 && IsIdent(k - 2)) {
          c.qualifier = Text(k - 2);
        }
      }
      fn->calls.push_back(c);
    }
  }

  /// A ';' ended a span at class scope: judge it as a member-variable
  /// declaration for guarded-by-complete. Method declarations never get
  /// here (HandleFunction consumes them), so anything with a bare call
  /// shape is macro noise we skip.
  void EndMemberSpan(size_t semi) {
    ClassInfo* cls = CurrentClassInfo();
    if (cls == nullptr) return;
    size_t b = decl_start_, e = semi;
    if (b >= e) return;
    bool has_mutex_type = false, exempt = false, annotated = false;
    bool call_shape = false;
    for (size_t k = b; k < e; ++k) {
      const std::string& s = Text(k);
      if (s == "Mutex" || (s == "mutex" && k >= 2 && Is(k - 1, "::"))) {
        has_mutex_type = true;
      }
      if (s == "Mutex" || s == "mutex" || s == "CondVar" ||
          s == "condition_variable" || s == "condition_variable_any" ||
          s == "atomic" || s == "static" || s == "constexpr") {
        exempt = true;
      }
      if (IsGuardAnnotation(s)) annotated = true;
      if (IsIdent(k) && !IsGuardAnnotation(s) && s.rfind("CSCE_", 0) != 0 &&
          Is(k + 1, "(")) {
        call_shape = true;
      }
    }
    if (has_mutex_type) cls->has_mutex = true;
    if (exempt || annotated || call_shape) return;
    // Declarator: the last trailing-underscore identifier followed by
    // the span end, '=', '{' or '[' (the project's member-name
    // convention; see DESIGN.md "Static analysis").
    for (size_t k = e; k-- > b;) {
      if (!IsIdent(k)) continue;
      const std::string& s = Text(k);
      if (s.size() < 2 || s.back() != '_') continue;
      if (k + 1 == e || Is(k + 1, "=") || Is(k + 1, "{") || Is(k + 1, "[")) {
        cls->unannotated.push_back({s, Line(k)});
        return;
      }
    }
  }

  const std::string path_;
  std::vector<Token> t_;
  SourceModel* model_;
  std::vector<Scope> stack_;
  size_t decl_start_ = 0;
};

}  // namespace

size_t SourceModel::Intern(const std::string& cls, const std::string& name,
                           const std::string& file, int line) {
  auto range = by_name.equal_range(name);
  for (auto it = range.first; it != range.second; ++it) {
    if (functions[it->second].cls == cls) return it->second;
  }
  functions.push_back({name, cls, file, line});
  by_name.emplace(name, functions.size() - 1);
  return functions.size() - 1;
}

void ParseFile(const std::string& path, const std::string& text,
               SourceModel* model) {
  Parser(path, Lex(text), model).Run();
}

}  // namespace csce_lint
