#!/usr/bin/env bash
# Repository lint: fast, dependency-free style checks over the library
# tree (src/). Run from anywhere; exits non-zero with one line per
# violation. CI runs this before the build matrix.
#
#   1. Include guards follow the exact  CSCE_<DIR>_<FILE>_H_  pattern
#      derived from the header's path under src/.
#   2. Library code does not include <iostream>: the static library
#      must not drag in stream globals; printing belongs to tools/,
#      bench/ and examples/.
#   3. No naked `new` in library code — ownership goes through
#      std::make_unique / containers.
#   4. Every header under src/ is self-contained: it compiles alone
#      with -fsyntax-only (skipped when no C++ compiler is found).
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SRC="$ROOT/src"
failures=0

fail() {
  echo "lint: $*" >&2
  failures=$((failures + 1))
}

# --- 1. include-guard style -------------------------------------------------
while IFS= read -r header; do
  rel="${header#"$SRC"/}"
  guard="CSCE_$(echo "$rel" | tr '[:lower:]/.' '[:upper:]__')_"
  if ! grep -q "^#ifndef ${guard}\$" "$header"; then
    fail "$rel: missing or wrong include guard (expected $guard)"
    continue
  fi
  if ! grep -q "^#define ${guard}\$" "$header"; then
    fail "$rel: #define does not match include guard $guard"
  fi
  if ! grep -q "^#endif  // ${guard}\$" "$header"; then
    fail "$rel: closing '#endif  // $guard' comment missing"
  fi
done < <(find "$SRC" -name '*.h' | sort)

# --- 2. no <iostream> in the library ---------------------------------------
while IFS= read -r match; do
  fail "${match#"$ROOT"/}: library code must not include <iostream>"
done < <(grep -rln '^#include <iostream>' "$SRC" || true)

# --- 3. no naked new --------------------------------------------------------
# Matches `new T...` expressions; placement/operator overloads don't
# occur in this tree. Allowlist nothing: use std::make_unique.
while IFS= read -r match; do
  fail "$match: naked 'new' (use std::make_unique or a container)"
done < <(grep -rnE '(^|[^_[:alnum:]])new +[_[:alnum:]:<>]+ *[({[;]' "$SRC" \
           --include='*.h' --include='*.cc' \
         | sed "s|^$ROOT/||" | cut -d: -f1-2 || true)

# --- 4. header self-containment ---------------------------------------------
CXX_BIN="${CXX:-}"
if [ -z "$CXX_BIN" ]; then
  for c in c++ g++ clang++; do
    if command -v "$c" >/dev/null 2>&1; then CXX_BIN="$c"; break; fi
  done
fi
if [ -n "$CXX_BIN" ]; then
  tmpdir="$(mktemp -d)"
  trap 'rm -rf "$tmpdir"' EXIT
  while IFS= read -r header; do
    rel="${header#"$SRC"/}"
    echo "#include \"$rel\"" > "$tmpdir/tu.cc"
    if ! "$CXX_BIN" -std=c++20 -fsyntax-only -I"$SRC" "$tmpdir/tu.cc" \
         2> "$tmpdir/err"; then
      fail "$rel: not self-contained"
      sed 's/^/    /' "$tmpdir/err" >&2
    fi
  done < <(find "$SRC" -name '*.h' | sort)
else
  echo "lint: no C++ compiler found, skipping self-containment check" >&2
fi

if [ "$failures" -ne 0 ]; then
  echo "lint: $failures problem(s)" >&2
  exit 1
fi
echo "lint: OK"
