#!/usr/bin/env bash
# clang-tidy over the library sources (src/), using the checks in
# .clang-tidy. Needs a compile_commands.json; pass the build directory
# as $1 (default: build). Generates one configured with
# CMAKE_EXPORT_COMPILE_COMMANDS if it is missing.
#
# Exits 0 with a notice when clang-tidy is not installed, so the script
# is safe to call from environments without LLVM (the CI lint job
# installs it; local sanitizer containers may not have it).
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"

TIDY="${CLANG_TIDY:-}"
if [ -z "$TIDY" ]; then
  for c in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16; do
    if command -v "$c" >/dev/null 2>&1; then TIDY="$c"; break; fi
  done
fi
if [ -z "$TIDY" ]; then
  echo "run_clang_tidy: clang-tidy not found, skipping (install LLVM or set CLANG_TIDY)" >&2
  exit 0
fi

if [ ! -f "$BUILD/compile_commands.json" ]; then
  echo "run_clang_tidy: generating compile_commands.json in $BUILD" >&2
  cmake -S "$ROOT" -B "$BUILD" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

mapfile -t sources < <(find "$ROOT/src" -name '*.cc' | sort)
echo "run_clang_tidy: $TIDY over ${#sources[@]} files" >&2

status=0
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "$TIDY" -p "$BUILD" -quiet \
    "^$ROOT/src/.*\.cc\$" || status=$?
else
  for f in "${sources[@]}"; do
    "$TIDY" -p "$BUILD" --quiet "$f" || status=$?
  done
fi

if [ "$status" -ne 0 ]; then
  echo "run_clang_tidy: findings above (WarningsAsErrors is '*')" >&2
  exit 1
fi
echo "run_clang_tidy: OK"
