// csce_match: the online stage — match a pattern against a data graph
// (text) or a prebuilt CCSR artifact.
//
//   csce_match --ccsr=data.ccsr --pattern=p.txt [--variant=edge]
//   csce_match --graph=data.txt --pattern=p.txt --variant=hom
//              --time-limit=10 --max=100000 --explain --no-sce
//
// Out-of-core mode: --mmap (or CSCE_CCSR_MMAP=1 in the environment)
// maps a v2 --ccsr artifact instead of streaming it into memory —
// clusters page in on demand as the query touches them. --memory-cap=N
// additionally bounds the paging-advice window to N bytes.
//
// Prints the embedding count and the per-stage breakdown; --print=N
// additionally streams the first N embeddings. Observability:
// --metrics-json=FILE dumps the process metric registry as
// csce.metrics.v1 JSON, --trace=FILE records phase spans as Chrome
// chrome://tracing JSON (one track per worker thread).

#include <cstdio>
#include <memory>
#include <string>

#include <cstdlib>

#include "ccsr/ccsr.h"
#include "ccsr/ccsr_io.h"
#include "ccsr/ccsr_mmap.h"
#include "engine/matcher.h"
#include "graph/graph_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/plan_printer.h"
#include "util/flags.h"

namespace {

bool ParseVariant(const std::string& name, csce::MatchVariant* out) {
  if (name == "edge" || name == "edge-induced") {
    *out = csce::MatchVariant::kEdgeInduced;
  } else if (name == "vertex" || name == "vertex-induced" ||
             name == "induced") {
    *out = csce::MatchVariant::kVertexInduced;
  } else if (name == "hom" || name == "homomorphic") {
    *out = csce::MatchVariant::kHomomorphic;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csce;
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  std::string ccsr_path = flags.GetString("ccsr", "");
  std::string graph_path = flags.GetString("graph", "");
  std::string pattern_path = flags.GetString("pattern", "");
  if (pattern_path.empty() || (ccsr_path.empty() == graph_path.empty())) {
    std::fprintf(stderr,
                 "usage: csce_match (--ccsr=x.ccsr | --graph=x.txt) "
                 "--pattern=p.txt [--variant=edge|vertex|hom] "
                 "[--mmap] [--memory-cap=bytes] "
                 "[--time-limit=s] [--max=n] [--print=n] [--threads=n] "
                 "[--explain] [--no-sce] [--no-nec] [--no-ldsf] "
                 "[--no-tiebreak] [--cost-based] [--self-check] "
                 "[--prune=aux,ree,lpi|all|none] "
                 "[--metrics-json=f.json] [--trace=f.json]\n");
    return 2;
  }

  // Install tracing before the index build so ccsr.build spans land in
  // the file too.
  std::string metrics_path = flags.GetString("metrics-json", "");
  std::string trace_path = flags.GetString("trace", "");
  std::unique_ptr<obs::TraceRecorder> recorder;
  if (!trace_path.empty()) {
    recorder = std::make_unique<obs::TraceRecorder>();
    obs::TraceRecorder::Install(recorder.get());
  }

  const char* mmap_env = std::getenv("CSCE_CCSR_MMAP");
  const bool use_mmap = flags.GetBool("mmap") ||
                        (mmap_env != nullptr && std::string(mmap_env) == "1");
  const uint64_t memory_cap =
      static_cast<uint64_t>(flags.GetInt("memory-cap", 0));

  Ccsr index;
  std::unique_ptr<MmapCcsr> mapping;  // keeps the borrowed index alive
  if (!ccsr_path.empty()) {
    if (use_mmap) {
      MmapCcsr::Options mopts;
      mopts.memory_cap_bytes = memory_cap;
      if (Status st = MmapCcsr::Open(ccsr_path, mopts, &mapping); !st.ok()) {
        std::fprintf(stderr, "mmap ccsr: %s\n", st.ToString().c_str());
        return 1;
      }
      index = mapping->Release();
    } else if (Status st = LoadCcsrFromFile(ccsr_path, &index); !st.ok()) {
      std::fprintf(stderr, "load ccsr: %s\n", st.ToString().c_str());
      return 1;
    }
  } else {
    if (use_mmap) {
      std::fprintf(stderr,
                   "warning: --mmap needs a --ccsr artifact; building "
                   "in-memory from --graph\n");
    }
    Graph g;
    if (Status st = LoadGraphFromFile(graph_path, &g); !st.ok()) {
      std::fprintf(stderr, "load graph: %s\n", st.ToString().c_str());
      return 1;
    }
    index = Ccsr::Build(g);
  }
  Graph pattern;
  if (Status st = LoadGraphFromFile(pattern_path, &pattern); !st.ok()) {
    std::fprintf(stderr, "load pattern: %s\n", st.ToString().c_str());
    return 1;
  }

  MatchOptions options;
  if (!ParseVariant(flags.GetString("variant", "edge"), &options.variant)) {
    std::fprintf(stderr, "unknown --variant\n");
    return 2;
  }
  options.time_limit_seconds = flags.GetDouble("time-limit", 0);
  options.max_embeddings =
      static_cast<uint64_t>(flags.GetInt("max", 0));
  options.num_threads = static_cast<uint32_t>(flags.GetInt("threads", 1));
  options.plan.use_sce = !flags.GetBool("no-sce");
  options.plan.use_nec = !flags.GetBool("no-nec");
  options.plan.use_ldsf = !flags.GetBool("no-ldsf");
  options.plan.use_cluster_tiebreak = !flags.GetBool("no-tiebreak");
  options.plan.use_cost_based = flags.GetBool("cost-based");
  options.self_check = flags.GetBool("self-check");
  // Proactive pruning passes: --prune wins over the CSCE_PRUNE
  // environment default (mirroring the --mmap / CSCE_CCSR_MMAP pair).
  {
    const char* prune_env = std::getenv("CSCE_PRUNE");
    std::string prune_spec =
        flags.GetString("prune", prune_env != nullptr ? prune_env : "");
    if (Status st = ParsePruneList(prune_spec, &options.plan.prune);
        !st.ok()) {
      std::fprintf(stderr, "--prune: %s\n", st.ToString().c_str());
      return 2;
    }
  }

  if (options.self_check) {
    // Paranoid mode starts at the index itself: deep-validate the CCSR
    // once before matching against it.
    if (Status st = index.Validate(); !st.ok()) {
      std::fprintf(stderr, "ccsr validation: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  CsceMatcher matcher(&index);
  if (flags.GetBool("explain")) {
    Plan plan;
    if (Status st = matcher.ExplainPlan(pattern, options, &plan); !st.ok()) {
      std::fprintf(stderr, "plan: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("%s", PlanToString(plan).c_str());
  }

  int64_t print_count = flags.GetInt("print", 0);
  for (const std::string& unused : flags.UnusedFlags()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", unused.c_str());
  }

  MatchResult result;
  Status st;
  if (print_count > 0) {
    int64_t shown = 0;
    st = matcher.MatchWithCallback(
        pattern, options,
        [&](std::span<const VertexId> mapping) {
          std::printf("embedding:");
          for (VertexId u = 0; u < mapping.size(); ++u) {
            std::printf(" u%u->v%u", u, mapping[u]);
          }
          std::printf("\n");
          return ++shown < print_count;
        },
        &result);
  } else {
    st = matcher.Match(pattern, options, &result);
  }
  if (!st.ok()) {
    std::fprintf(stderr, "match: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("variant=%s embeddings=%llu%s%s\n",
              VariantName(options.variant),
              static_cast<unsigned long long>(result.embeddings),
              result.timed_out ? " (timed out)" : "",
              result.limit_reached ? " (limit reached)" : "");
  std::printf("read=%.3fms plan=%.3fms enumerate=%.3fms total=%.3fms\n",
              result.read_seconds * 1e3, result.plan_seconds * 1e3,
              result.enumerate_seconds * 1e3, result.total_seconds * 1e3);
  std::printf("clusters_read=%zu candidates: computed=%llu reused=%llu\n",
              result.clusters_read,
              static_cast<unsigned long long>(result.candidate_sets_computed),
              static_cast<unsigned long long>(result.candidate_sets_reused));
  if (options.plan.prune.any()) {
    std::printf(
        "prune=%s candidates_removed=%llu extensions_skipped=%llu "
        "aux_hits=%llu intersect_elements=%llu\n",
        PruneOptionsToString(options.plan.prune).c_str(),
        static_cast<unsigned long long>(result.prune_candidates_removed),
        static_cast<unsigned long long>(result.prune_extensions_skipped),
        static_cast<unsigned long long>(result.prune_aux_hits),
        static_cast<unsigned long long>(result.intersect_elements));
  }
  if (options.self_check) {
    std::printf(
        "self-check: verified=%llu mismatches=0\n",
        static_cast<unsigned long long>(result.embeddings_verified));
  }

  if (!metrics_path.empty()) {
    if (Status wst = obs::WriteMetricsFile(obs::MetricRegistry::Global(),
                                           metrics_path);
        !wst.ok()) {
      std::fprintf(stderr, "metrics: %s\n", wst.ToString().c_str());
      return 1;
    }
  }
  if (recorder != nullptr) {
    obs::TraceRecorder::Install(nullptr);
    if (Status wst = recorder->WriteFile(trace_path); !wst.ok()) {
      std::fprintf(stderr, "trace: %s\n", wst.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
