// csce_build: the offline stage — read a text graph, cluster it into
// CCSR, and persist the binary artifact.
//
//   csce_build --graph=data.txt --out=data.ccsr [--verbose]
//
// --format picks the artifact layout: v2 (default) is the page-aligned,
// directly mmap-able out-of-core format (csce_match/csce_serve --mmap);
// v1 is the legacy stream format. Both load transparently through
// LoadCcsrFromFile.
//
// With --shards=N it additionally partitions the graph (ShardPlan) and
// writes the sharded-execution artifacts next to the main one:
// <out>.shardplan plus one <out>.shard<k> CCSR per shard, each holding
// the vertices shard k owns with their 1-hop edge replication — the
// inputs of csce_serve --shards=N --workers=N.

#include <cstdio>

#include "ccsr/ccsr.h"
#include "ccsr/ccsr_io.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "shard/shard_plan.h"
#include "util/flags.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace csce;
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  std::string graph_path = flags.GetString("graph", "");
  std::string out_path = flags.GetString("out", "");
  bool verbose = flags.GetBool("verbose");
  int64_t shards = flags.GetInt("shards", 0);
  std::string strategy_name = flags.GetString("shard-strategy", "hash");
  std::string format = flags.GetString("format", "v2");
  if (graph_path.empty() || out_path.empty()) {
    std::fprintf(stderr,
                 "usage: csce_build --graph=data.txt --out=data.ccsr "
                 "[--format=v1|v2] [--shards=N --shard-strategy=hash|label]\n");
    return 2;
  }
  if (format != "v1" && format != "v2") {
    std::fprintf(stderr, "unknown --format=%s (v1|v2)\n", format.c_str());
    return 2;
  }
  auto save_ccsr = [&format](const Ccsr& c, const std::string& path) {
    return format == "v2" ? SaveCcsrToFileV2(c, path) : SaveCcsrToFile(c, path);
  };
  shard::PartitionStrategy strategy;
  if (!shard::ParseStrategy(strategy_name, &strategy)) {
    std::fprintf(stderr, "unknown --shard-strategy=%s (hash|label)\n",
                 strategy_name.c_str());
    return 2;
  }
  if (shards < 0 || shards > 4096) {
    std::fprintf(stderr, "--shards must be in [0, 4096]\n");
    return 2;
  }

  Graph g;
  WallTimer timer;
  if (Status st = LoadGraphFromFile(graph_path, &g); !st.ok()) {
    std::fprintf(stderr, "load: %s\n", st.ToString().c_str());
    return 1;
  }
  double load_seconds = timer.Seconds();

  timer.Restart();
  Ccsr ccsr = Ccsr::Build(g);
  double build_seconds = timer.Seconds();

  timer.Restart();
  if (Status st = save_ccsr(ccsr, out_path); !st.ok()) {
    std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
    return 1;
  }
  double save_seconds = timer.Seconds();

  if (shards > 0) {
    timer.Restart();
    shard::ShardPlanOptions popts;
    popts.num_shards = static_cast<uint32_t>(shards);
    popts.strategy = strategy;
    shard::ShardPlan plan = shard::ShardPlan::Build(g, popts);
    if (Status st = plan.SaveToFile(shard::ShardPlan::PlanPath(out_path));
        !st.ok()) {
      std::fprintf(stderr, "shard plan save: %s\n", st.ToString().c_str());
      return 1;
    }
    uint64_t replicated = 0;
    for (uint32_t s = 0; s < plan.num_shards(); ++s) {
      Graph shard_graph;
      if (Status st = plan.ExtractShard(g, s, &shard_graph); !st.ok()) {
        std::fprintf(stderr, "shard %u extract: %s\n", s,
                     st.ToString().c_str());
        return 1;
      }
      Ccsr shard_ccsr = Ccsr::Build(shard_graph);
      std::string path = shard::ShardPlan::ShardCcsrPath(out_path, s);
      if (Status st = save_ccsr(shard_ccsr, path); !st.ok()) {
        std::fprintf(stderr, "shard %u save: %s\n", s, st.ToString().c_str());
        return 1;
      }
      replicated += plan.replicas()[s].size();
      if (verbose) {
        std::printf("shard %u: owned=%llu replicas=%zu edges=%llu -> %s\n", s,
                    static_cast<unsigned long long>(plan.OwnedCount(s)),
                    plan.replicas()[s].size(),
                    static_cast<unsigned long long>(shard_ccsr.NumEdges()),
                    path.c_str());
      }
    }
    std::printf("shards=%u strategy=%s boundary_edges=%llu replicas=%llu "
                "partition=%.3fs\n",
                plan.num_shards(), shard::StrategyName(strategy),
                static_cast<unsigned long long>(plan.boundary_edges()),
                static_cast<unsigned long long>(replicated), timer.Seconds());
  }

  if (verbose) {
    std::printf("%s\n%s\n", StatsHeader().c_str(),
                FormatStatsRow(graph_path, ComputeStats(g)).c_str());
  }
  std::printf("clusters=%zu compressed_bytes=%zu load=%.3fs build=%.3fs "
              "save=%.3fs\n",
              ccsr.NumClusters(), ccsr.CompressedSizeBytes(), load_seconds,
              build_seconds, save_seconds);
  return 0;
}
