// csce_build: the offline stage — read a text graph, cluster it into
// CCSR, and persist the binary artifact.
//
//   csce_build --graph=data.txt --out=data.ccsr [--verbose]

#include <cstdio>

#include "ccsr/ccsr.h"
#include "ccsr/ccsr_io.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "util/flags.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace csce;
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  std::string graph_path = flags.GetString("graph", "");
  std::string out_path = flags.GetString("out", "");
  bool verbose = flags.GetBool("verbose");
  if (graph_path.empty() || out_path.empty()) {
    std::fprintf(stderr,
                 "usage: csce_build --graph=data.txt --out=data.ccsr\n");
    return 2;
  }

  Graph g;
  WallTimer timer;
  if (Status st = LoadGraphFromFile(graph_path, &g); !st.ok()) {
    std::fprintf(stderr, "load: %s\n", st.ToString().c_str());
    return 1;
  }
  double load_seconds = timer.Seconds();

  timer.Restart();
  Ccsr ccsr = Ccsr::Build(g);
  double build_seconds = timer.Seconds();

  timer.Restart();
  if (Status st = SaveCcsrToFile(ccsr, out_path); !st.ok()) {
    std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
    return 1;
  }
  double save_seconds = timer.Seconds();

  if (verbose) {
    std::printf("%s\n%s\n", StatsHeader().c_str(),
                FormatStatsRow(graph_path, ComputeStats(g)).c_str());
  }
  std::printf("clusters=%zu compressed_bytes=%zu load=%.3fs build=%.3fs "
              "save=%.3fs\n",
              ccsr.NumClusters(), ccsr.CompressedSizeBytes(), load_seconds,
              build_seconds, save_seconds);
  return 0;
}
