// csce_gen: materialize the synthetic Table IV dataset analogues and
// sampled pattern workloads as text graph files.
//
//   csce_gen --dataset=dip --out=dip.txt
//   csce_gen --dataset=patent --labels=200 --out=patent200.txt
//   csce_gen --dataset=yeast --pattern-size=16 --pattern-count=10
//            --density=dense --seed=7 --pattern-prefix=q_
//
// Known datasets: dip yeast human hprd roadca orkut patent subcategory
// livejournal emaileu.

#include <cstdio>
#include <string>

#include "gen/datasets.h"
#include "gen/pattern_gen.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "util/flags.h"

namespace {

bool MakeDataset(const std::string& name, uint32_t labels,
                 csce::Graph* out) {
  using namespace csce::datasets;
  if (name == "dip") {
    *out = Dip();
  } else if (name == "yeast") {
    *out = Yeast();
  } else if (name == "human") {
    *out = Human();
  } else if (name == "hprd") {
    *out = Hprd();
  } else if (name == "roadca") {
    *out = RoadCa();
  } else if (name == "orkut") {
    *out = Orkut();
  } else if (name == "patent") {
    *out = Patent(labels == 0 ? 20 : labels);
  } else if (name == "subcategory") {
    *out = Subcategory();
  } else if (name == "livejournal") {
    *out = LiveJournal();
  } else if (name == "emaileu") {
    std::vector<uint32_t> departments;
    *out = EmailEu(&departments);
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csce;
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  std::string dataset = flags.GetString("dataset", "");
  std::string out_path = flags.GetString("out", "");
  uint32_t labels = static_cast<uint32_t>(flags.GetInt("labels", 0));

  Graph g;
  if (dataset.empty() || !MakeDataset(dataset, labels, &g)) {
    std::fprintf(stderr,
                 "usage: csce_gen --dataset=<name> [--labels=n] "
                 "[--out=g.txt] [--pattern-size=k --pattern-count=c "
                 "--density=dense|sparse|complex --seed=s "
                 "--pattern-prefix=p_]\n");
    return 2;
  }
  std::printf("%s\n%s\n", StatsHeader().c_str(),
              FormatStatsRow(dataset, ComputeStats(g)).c_str());
  if (!out_path.empty()) {
    if (Status st = SaveGraphToFile(g, out_path); !st.ok()) {
      std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }

  uint32_t pattern_size =
      static_cast<uint32_t>(flags.GetInt("pattern-size", 0));
  if (pattern_size > 0) {
    uint32_t count = static_cast<uint32_t>(flags.GetInt("pattern-count", 1));
    uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
    std::string density = flags.GetString("density", "dense");
    std::string prefix = flags.GetString("pattern-prefix", "pattern_");
    std::vector<Graph> patterns;
    Status st;
    if (density == "complex") {
      st = SampleDensePatterns(g, pattern_size, /*min_avg_degree=*/3.0,
                               count, seed, &patterns);
    } else {
      st = SamplePatterns(g, pattern_size,
                          density == "sparse" ? PatternDensity::kSparse
                                              : PatternDensity::kDense,
                          count, seed, &patterns);
    }
    if (!st.ok()) {
      std::fprintf(stderr, "sampling: %s\n", st.ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < patterns.size(); ++i) {
      std::string path = prefix + std::to_string(i) + ".txt";
      if (Status save = SaveGraphToFile(patterns[i], path); !save.ok()) {
        std::fprintf(stderr, "save: %s\n", save.ToString().c_str());
        return 1;
      }
      std::printf("wrote %s (%u vertices, %llu edges)\n", path.c_str(),
                  patterns[i].NumVertices(),
                  static_cast<unsigned long long>(patterns[i].NumEdges()));
    }
  }
  return 0;
}
