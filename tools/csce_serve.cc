// csce_serve: the multi-query session front-end — execute a batch of
// pattern queries concurrently against one shared index, with admission
// control, deadlines, and a JSON summary of the session.
//
//   csce_serve --ccsr=data.ccsr --queries=workload.txt --threads=8
//              --inflight=4 --threads-per-query=2 --deadline=5
//   csce_gen ... && csce_serve --graph=data.txt --queries=- < workload.txt
//
// Workload format, one query per line ('#' starts a comment):
//   <pattern-file> [variant] [max-embeddings] [deadline-seconds]
// e.g.
//   q_0.txt edge
//   q_1.txt hom 100000 2.5
//
// A line consisting of the single word STATS is a directive, not a
// query: the queries before it run as one batch, then the session's
// cumulative runtime metrics are printed as a "STATS {...}" JSON line
// before the next batch starts (a poor man's monitoring endpoint for
// scripted sessions).
//
// --repeat=N serves the whole workload N times (load generation; with
// view sharing the repeats hit the session's cluster cache).
// --metrics-json=FILE additionally dumps the process metric registry
// as csce.metrics.v1 JSON on exit.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ccsr/ccsr.h"
#include "ccsr/ccsr_io.h"
#include "graph/graph_io.h"
#include "obs/metrics.h"
#include "runtime/query_runtime.h"
#include "util/flags.h"

namespace {

bool ParseVariant(const std::string& name, csce::MatchVariant* out) {
  if (name == "edge" || name == "edge-induced") {
    *out = csce::MatchVariant::kEdgeInduced;
  } else if (name == "vertex" || name == "vertex-induced" ||
             name == "induced") {
    *out = csce::MatchVariant::kVertexInduced;
  } else if (name == "hom" || name == "homomorphic") {
    *out = csce::MatchVariant::kHomomorphic;
  } else {
    return false;
  }
  return true;
}

/// One STATS-delimited slice of the workload: the jobs run as a batch,
/// then a stats line is printed when `stats_after` (i.e. the segment
/// was closed by a STATS directive rather than end-of-file).
struct WorkloadSegment {
  std::vector<csce::QueryJob> jobs;
  bool stats_after = false;
};

bool ParseWorkload(std::istream& in, std::vector<WorkloadSegment>* segments) {
  segments->emplace_back();
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (size_t hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream fields(line);
    std::string path, variant;
    if (!(fields >> path)) continue;  // blank/comment line
    if (path == "STATS") {
      segments->back().stats_after = true;
      segments->emplace_back();
      continue;
    }
    csce::QueryJob job;
    job.tag = path;
    if (fields >> variant && !ParseVariant(variant, &job.options.variant)) {
      std::fprintf(stderr, "queries line %zu: unknown variant '%s'\n", lineno,
                   variant.c_str());
      return false;
    }
    double max_embeddings = 0, deadline = 0;
    if (fields >> max_embeddings) {
      job.options.max_embeddings = static_cast<uint64_t>(max_embeddings);
    }
    if (fields >> deadline) job.options.time_limit_seconds = deadline;
    if (csce::Status st = csce::LoadGraphFromFile(path, &job.pattern);
        !st.ok()) {
      std::fprintf(stderr, "queries line %zu: %s\n", lineno,
                   st.ToString().c_str());
      return false;
    }
    segments->back().jobs.push_back(std::move(job));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csce;
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  std::string ccsr_path = flags.GetString("ccsr", "");
  std::string graph_path = flags.GetString("graph", "");
  std::string queries_path = flags.GetString("queries", "");
  if (queries_path.empty() || (ccsr_path.empty() == graph_path.empty())) {
    std::fprintf(stderr,
                 "usage: csce_serve (--ccsr=x.ccsr | --graph=x.txt) "
                 "--queries=(workload.txt | -) [--threads=n] [--inflight=n] "
                 "[--threads-per-query=n] [--deadline=s] [--repeat=n] "
                 "[--no-share-views] [--quiet] [--metrics-json=f.json]\n");
    return 2;
  }

  Ccsr index;
  if (!ccsr_path.empty()) {
    if (Status st = LoadCcsrFromFile(ccsr_path, &index); !st.ok()) {
      std::fprintf(stderr, "load ccsr: %s\n", st.ToString().c_str());
      return 1;
    }
  } else {
    Graph g;
    if (Status st = LoadGraphFromFile(graph_path, &g); !st.ok()) {
      std::fprintf(stderr, "load graph: %s\n", st.ToString().c_str());
      return 1;
    }
    index = Ccsr::Build(g);
  }

  std::vector<WorkloadSegment> workload;
  if (queries_path == "-") {
    if (!ParseWorkload(std::cin, &workload)) return 2;
  } else {
    std::ifstream in(queries_path);
    if (!in) {
      std::fprintf(stderr, "cannot open --queries=%s\n", queries_path.c_str());
      return 1;
    }
    if (!ParseWorkload(in, &workload)) return 2;
  }

  RuntimeOptions runtime_options;
  runtime_options.worker_threads =
      static_cast<uint32_t>(flags.GetInt("threads", 0));
  runtime_options.max_inflight =
      static_cast<uint32_t>(flags.GetInt("inflight", 0));
  runtime_options.threads_per_query =
      static_cast<uint32_t>(flags.GetInt("threads-per-query", 1));
  runtime_options.default_deadline_seconds = flags.GetDouble("deadline", 0);
  runtime_options.share_cluster_views = !flags.GetBool("no-share-views");
  int64_t repeat = flags.GetInt("repeat", 1);
  bool quiet = flags.GetBool("quiet");
  std::string metrics_path = flags.GetString("metrics-json", "");
  for (const std::string& unused : flags.UnusedFlags()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", unused.c_str());
  }

  QueryRuntime runtime(&index, runtime_options);
  int failures = 0;
  for (int64_t r = 0; r < repeat; ++r) {
    for (const WorkloadSegment& segment : workload) {
      std::vector<QueryOutcome> outcomes;
      if (!segment.jobs.empty()) {
        if (Status st = runtime.RunBatch(segment.jobs, &outcomes); !st.ok()) {
          std::fprintf(stderr, "run batch: %s\n", st.ToString().c_str());
          return 1;
        }
      }
      for (size_t i = 0; i < outcomes.size(); ++i) {
        const QueryOutcome& o = outcomes[i];
        if (!o.status.ok()) ++failures;
        if (quiet) continue;
        std::printf(
            "query=%s variant=%s status=%s embeddings=%llu wait=%.3fms "
            "total=%.3fms%s%s%s%s\n",
            o.tag.c_str(), VariantName(segment.jobs[i].options.variant),
            o.status.ok() ? "ok" : o.status.ToString().c_str(),
            static_cast<unsigned long long>(o.result.embeddings),
            o.queue_wait_seconds * 1e3, o.total_seconds * 1e3,
            o.result.timed_out ? " timed_out" : "",
            o.result.limit_reached ? " limit_reached" : "",
            o.result.cancelled ? " cancelled" : "",
            o.executed ? "" : " not_executed");
      }
      if (segment.stats_after) {
        std::printf("STATS %s\n",
                    runtime.metrics().ToJson().Dump(0).c_str());
        std::fflush(stdout);
      }
    }
  }

  // Session summary: the runtime's cumulative metrics plus the session
  // configuration, as a single JSON line (scripts parse this).
  const RuntimeMetrics m = runtime.metrics();
  obs::JsonValue summary = m.ToJson();
  summary.Set("cache_hits", m.cluster_cache_hits);
  summary.Set("cache_misses", m.cluster_cache_misses);
  summary.Set("worker_threads", runtime.options().worker_threads);
  summary.Set("max_inflight", runtime.options().max_inflight);
  summary.Set("threads_per_query", runtime.options().threads_per_query);
  std::printf("%s\n", summary.Dump(0).c_str());

  if (!metrics_path.empty()) {
    if (Status st = obs::WriteMetricsFile(obs::MetricRegistry::Global(),
                                          metrics_path);
        !st.ok()) {
      std::fprintf(stderr, "metrics: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  return failures == 0 ? 0 : 1;
}
