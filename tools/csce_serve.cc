// csce_serve: the multi-query session front-end — execute a batch of
// pattern queries concurrently against one shared index, with admission
// control, deadlines, and a JSON summary of the session.
//
//   csce_serve --ccsr=data.ccsr --queries=workload.txt --threads=8
//              --inflight=4 --threads-per-query=2 --deadline=5
//   csce_gen ... && csce_serve --graph=data.txt --queries=- < workload.txt
//
// Workload format, one query per line ('#' starts a comment):
//   <pattern-file> [variant] [max-embeddings] [deadline-seconds]
// e.g.
//   q_0.txt edge
//   q_1.txt hom 100000 2.5
//
// A line consisting of the single word STATS is a directive, not a
// query: the queries before it run as one batch, then the session's
// cumulative runtime metrics are printed as a "STATS {...}" JSON line
// before the next batch starts (a poor man's monitoring endpoint for
// scripted sessions).
//
// Out-of-core mode: --mmap (or CSCE_CCSR_MMAP=1 in the environment)
// maps v2 --ccsr artifacts instead of streaming them into memory; in
// sharded modes the flag travels in the kLoad request, so every worker
// (in-process thread, forked child, or remote --connect node) maps its
// own shard artifact the same way. --memory-cap=N bounds each mapping's
// paging-advice window to N bytes.
//
// Proactive pruning: --prune=aux,ree,lpi (or CSCE_PRUNE= in the
// environment; the flag wins) enables the selected pruning passes for
// every query of the session, including sharded sessions — where the
// coordinator forwards the pass set with the plan, and the shard
// workers' executors force-disable it (shard-local indexes are
// partial), keeping sharded results identical either way.
//
// --repeat=N serves the whole workload N times (load generation; with
// view sharing the repeats hit the session's cluster cache).
// --metrics-json=FILE additionally dumps the process metric registry
// as csce.metrics.v1 JSON on exit — including exits forced by SIGINT/
// SIGTERM, so interrupted sessions still leave their observability
// artifact behind.
//
// Sharded execution (see DESIGN.md "Sharded execution"):
//   --shards=N       partition the data graph across N shard workers
//                    and run every query through the distributed
//                    coordinator. With --graph the partition is built
//                    in memory; with --ccsr the artifacts written by
//                    `csce_build --shards=N` (<ccsr>.shardplan,
//                    <ccsr>.shard<k>) are loaded instead.
//   --workers=N      run the N shard workers as forked child processes
//                    over Unix-domain socketpairs (requires --ccsr
//                    artifacts and N == --shards). Without it the
//                    workers are in-process threads.
//   --threads-per-query=T   threads inside each shard worker.
//   --shard-strategy=hash|label   partition strategy for --graph mode.
//   --self-check     distributed ground-truth mode: plan validation,
//                    SCE verification in every worker, and every
//                    embedding re-verified against the full graph.
// Sharded sessions ignore per-query max-embeddings limits (results
// would depend on cross-shard arrival order) and print the same
// per-query lines plus shard routing detail.
//
// Multi-node deployment (see DESIGN.md "Fault tolerance"):
//   --listen=H:P     coordinator side: accept --shards worker
//                    connections on a TCP socket instead of spawning
//                    local workers (requires --ccsr artifacts on a
//                    filesystem the workers can read).
//   --connect=H:P    worker side: connect to a listening coordinator
//                    and serve one shard; no other flags required.
// Supervision (on by default in every sharded mode):
//   --no-supervision       fail the query on the first worker failure
//   --max-restarts=N       per-worker restart budget (default 3)
//   --round-timeout=S      per-round reply deadline, seconds (default 30)
//   --heartbeat-timeout=S  kPing probe deadline, seconds (default 5)
// Deterministic fault injection for recovery testing:
//   --fault-plan=SPEC      comma-separated kind@shard:arg entries
//                          (kill@0:3, truncate@1:2, delay@0:500,
//                          drop-ping@0:1, bad-hello@0:1); faults fire in
//                          the workers' transports at exact frame
//                          counts, so runs are reproducible.

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ccsr/ccsr.h"
#include "ccsr/ccsr_io.h"
#include "ccsr/ccsr_mmap.h"
#include "graph/graph_io.h"
#include "obs/metrics.h"
#include "runtime/query_runtime.h"
#include "shard/coordinator.h"
#include "shard/fault.h"
#include "shard/shard_plan.h"
#include "shard/supervision.h"
#include "shard/transport.h"
#include "shard/worker.h"
#include "util/flags.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace {

/// Session-wide prune pass set (--prune / CSCE_PRUNE), stamped onto
/// every parsed QueryJob. Set in main before the workload is read.
csce::PruneOptions g_prune;

bool ParseVariant(const std::string& name, csce::MatchVariant* out) {
  if (name == "edge" || name == "edge-induced") {
    *out = csce::MatchVariant::kEdgeInduced;
  } else if (name == "vertex" || name == "vertex-induced" ||
             name == "induced") {
    *out = csce::MatchVariant::kVertexInduced;
  } else if (name == "hom" || name == "homomorphic") {
    *out = csce::MatchVariant::kHomomorphic;
  } else {
    return false;
  }
  return true;
}

/// One STATS-delimited slice of the workload: the jobs run as a batch,
/// then a stats line is printed when `stats_after` (i.e. the segment
/// was closed by a STATS directive rather than end-of-file).
struct WorkloadSegment {
  std::vector<csce::QueryJob> jobs;
  bool stats_after = false;
};

bool ParseWorkloadLine(std::string line, size_t lineno,
                       std::vector<WorkloadSegment>* segments) {
  if (size_t hash = line.find('#'); hash != std::string::npos) {
    line.erase(hash);
  }
  std::istringstream fields(line);
  std::string path, variant;
  if (!(fields >> path)) return true;  // blank/comment line
  if (path == "STATS") {
    segments->back().stats_after = true;
    segments->emplace_back();
    return true;
  }
  csce::QueryJob job;
  job.tag = path;
  job.options.plan.prune = g_prune;
  if (fields >> variant && !ParseVariant(variant, &job.options.variant)) {
    std::fprintf(stderr, "queries line %zu: unknown variant '%s'\n", lineno,
                 variant.c_str());
    return false;
  }
  double max_embeddings = 0, deadline = 0;
  if (fields >> max_embeddings) {
    job.options.max_embeddings = static_cast<uint64_t>(max_embeddings);
  }
  if (fields >> deadline) job.options.time_limit_seconds = deadline;
  if (csce::Status st = csce::LoadGraphFromFile(path, &job.pattern); !st.ok()) {
    std::fprintf(stderr, "queries line %zu: %s\n", lineno,
                 st.ToString().c_str());
    return false;
  }
  segments->back().jobs.push_back(std::move(job));
  return true;
}

bool ParseWorkload(std::istream& in, std::vector<WorkloadSegment>* segments) {
  segments->emplace_back();
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    if (!ParseWorkloadLine(std::move(line), ++lineno, segments)) return false;
  }
  return true;
}

// --- SIGINT/SIGTERM graceful shutdown ---------------------------------
//
// The exit signals are blocked in every thread (mask set before any
// thread or worker exists and inherited by all of them); one detached
// watcher sigwait()s. No asynchronous signal handler is ever installed
// (csce_lint's signal-discipline check bans signal()/sigaction()
// registration), so there is no async-signal-safety minefield: the
// watcher is a normal thread and may take locks.
//
// Division of labour: the watcher only *requests* shutdown — it records
// the signal, cooperatively cancels the running batch and SIGTERMs
// forked workers so blocked transport reads unwind. The metrics flush,
// child reaping and exit all happen on the main thread, which checks
// ExitRequested() between queries/batches; flushing from the watcher
// would race the main thread mid-write and could emit a torn artifact.
// A second signal skips the graceful path and _exit()s immediately (the
// conventional double-ctrl-C force quit).

std::atomic<int> g_exit_signal{0};
std::vector<pid_t> g_worker_pids;  // populated before the watcher starts

// Self-pipe the watcher writes into after recording a signal, so the
// main thread can poll() it alongside blocking fds (a fifo-fed stdin
// never delivers EOF, and with the exit signals masked a blocked read
// is not interrupted).
int g_wake_pipe[2] = {-1, -1};

csce::Mutex g_runtime_mu;
csce::QueryRuntime* g_runtime CSCE_GUARDED_BY(g_runtime_mu) = nullptr;

/// The signal that requested shutdown, or 0.
int ExitRequested() {
  return g_exit_signal.load(std::memory_order_acquire);
}

void SetSignalRuntime(csce::QueryRuntime* rt) {
  csce::MutexLock lock(g_runtime_mu);
  g_runtime = rt;
}

void CancelSignalRuntime() {
  csce::MutexLock lock(g_runtime_mu);
  if (g_runtime != nullptr) g_runtime->CancelAll();
}

/// Publishes `rt` as the watcher's cancellation target for the scope;
/// clears it before the runtime can be destroyed.
struct SignalRuntimeScope {
  explicit SignalRuntimeScope(csce::QueryRuntime* rt) { SetSignalRuntime(rt); }
  ~SignalRuntimeScope() { SetSignalRuntime(nullptr); }
};

sigset_t ExitSignalSet() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  return set;
}

void BlockExitSignals() {
  sigset_t set = ExitSignalSet();
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
}

void StartSignalWatcher() {
  if (pipe(g_wake_pipe) != 0) {
    g_wake_pipe[0] = g_wake_pipe[1] = -1;
  } else {
    for (int fd : g_wake_pipe) fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
  std::thread([] {
    sigset_t set = ExitSignalSet();
    int sig = 0;
    if (sigwait(&set, &sig) != 0) return;
    g_exit_signal.store(sig, std::memory_order_release);
    if (g_wake_pipe[1] >= 0) {
      ssize_t n = write(g_wake_pipe[1], "x", 1);
      (void)n;
    }
    CancelSignalRuntime();
    for (pid_t pid : g_worker_pids) kill(pid, SIGTERM);
    if (sigwait(&set, &sig) == 0) _exit(128 + sig);
  }).detach();
}

/// Reads the workload from stdin without blocking past a shutdown
/// request: poll() watches fd 0 and the watcher's wake pipe together,
/// and the stream is abandoned once a signal has been recorded. Returns
/// false on parse or I/O errors.
bool ParseWorkloadFromStdin(std::vector<WorkloadSegment>* segments) {
  segments->emplace_back();
  std::string buffer;
  size_t lineno = 0;
  char chunk[4096];
  while (ExitRequested() == 0) {
    struct pollfd fds[2];
    fds[0] = {STDIN_FILENO, POLLIN, 0};
    nfds_t nfds = 1;
    if (g_wake_pipe[0] >= 0) {
      fds[1] = {g_wake_pipe[0], POLLIN, 0};
      nfds = 2;
    }
    if (poll(fds, nfds, -1) < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "poll on stdin failed\n");
      return false;
    }
    if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    ssize_t n = read(STDIN_FILENO, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "read on stdin failed\n");
      return false;
    }
    if (n == 0) break;  // EOF
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl; (nl = buffer.find('\n', start)) != std::string::npos;
         start = nl + 1) {
      if (!ParseWorkloadLine(buffer.substr(start, nl - start), ++lineno,
                             segments)) {
        return false;
      }
    }
    buffer.erase(0, start);
  }
  if (ExitRequested() == 0 && !buffer.empty()) {
    return ParseWorkloadLine(std::move(buffer), ++lineno, segments);
  }
  return true;
}

// --- Sharded session --------------------------------------------------

/// In-process shard workers: one serve thread per shard over loopback
/// transports. Joined on destruction (the coordinator's Shutdown ends
/// every serve loop first). SpawnOne doubles as the coordinator's
/// WorkerFactory, so a worker thread killed by fault injection is
/// replaced by a fresh one; old threads stay in `threads` until the
/// set is destroyed (they exit as soon as their transport dies).
struct LocalWorkerSet {
  std::shared_ptr<csce::shard::FaultInjector> faults;
  std::vector<std::unique_ptr<csce::shard::ShardWorker>> impls;
  std::vector<std::thread> threads;

  ~LocalWorkerSet() {
    for (std::thread& t : threads) {
      if (t.joinable()) t.join();
    }
  }

  csce::Status SpawnOne(uint32_t shard,
                        std::unique_ptr<csce::shard::Transport>* out) {
    std::unique_ptr<csce::shard::Transport> near, far;
    csce::shard::MakeLoopbackPair(&near, &far);
    far = csce::shard::MakeFaultTransport(std::move(far), faults, shard);
    impls.push_back(std::make_unique<csce::shard::ShardWorker>());
    csce::shard::ShardWorker* worker = impls.back().get();
    threads.emplace_back([worker, t = std::move(far)]() mutable {
      (void)worker->Serve(*t);
    });
    *out = std::move(near);
    return csce::Status::OK();
  }

  void Spawn(csce::shard::ShardCoordinator* coordinator, uint32_t count) {
    for (uint32_t s = 0; s < count; ++s) {
      std::unique_ptr<csce::shard::Transport> near;
      (void)SpawnOne(s, &near);
      coordinator->AttachWorker(std::move(near));
    }
  }
};

/// Forked worker child: unblock the exit signals again (the child
/// should die on SIGTERM from the parent's watcher), serve the shard
/// over the inherited socket, and _exit without running parent-state
/// destructors. A non-empty fault plan is parsed child-side (the
/// injector cannot be shared across the fork) and its kill/truncate
/// entries turn into a nonzero exit so the parent's reaper sees the
/// simulated crash.
[[noreturn]] void RunForkedWorker(int fd, uint32_t shard,
                                  const std::string& fault_plan) {
  sigset_t set = ExitSignalSet();
  pthread_sigmask(SIG_UNBLOCK, &set, nullptr);
  std::shared_ptr<csce::shard::FaultInjector> faults;
  if (!fault_plan.empty()) {
    if (csce::Status st = csce::shard::FaultInjector::Parse(fault_plan, &faults);
        !st.ok()) {
      std::fprintf(stderr, "shard worker: %s\n", st.ToString().c_str());
      _exit(3);
    }
  }
  std::unique_ptr<csce::shard::Transport> transport =
      csce::shard::MakeFdTransport(fd);
  transport =
      csce::shard::MakeFaultTransport(std::move(transport), faults, shard);
  csce::shard::ShardWorker worker;
  csce::Status st = worker.Serve(*transport);
  if (faults != nullptr &&
      (faults->fired(csce::shard::FaultKind::kKillAfterFrames) > 0 ||
       faults->fired(csce::shard::FaultKind::kTruncateFrame) > 0)) {
    _exit(3);  // simulated crash: die abnormally like a real one would
  }
  // A vanished coordinator (IOError) is the normal teardown when the
  // parent dies early; only protocol-level trouble is noisy.
  if (!st.ok() && st.code() != csce::StatusCode::kIOError) {
    std::fprintf(stderr, "shard worker: %s\n", st.ToString().c_str());
    _exit(3);
  }
  _exit(0);
}

/// Forked-mode bookkeeping for supervision: which child currently
/// serves each shard, which pids were replaced by a restart (their
/// abnormal deaths are expected), and the live parent-end fds a
/// restart's fork must close in the child so stale descriptors cannot
/// keep a dead worker's socket half-open.
struct ForkedWorkerSet {
  std::vector<pid_t> current;
  std::vector<pid_t> superseded;
  std::vector<int> parent_fds;
};

/// Reaps one child and reports abnormal exits. Returns true if the pid
/// was actually reaped (always true for blocking calls that succeed).
/// `expected_dead` suppresses the error accounting for pids whose
/// demise is part of the plan (superseded by a restart, or torn down
/// by a shutdown signal).
bool ReapWorker(pid_t pid, int wait_flags, bool expected_dead,
                int* abnormal_exits) {
  int status = 0;
  if (waitpid(pid, &status, wait_flags) != pid) return false;
  if (expected_dead) return true;
  if (WIFEXITED(status) && WEXITSTATUS(status) == 0) return true;
  ++*abnormal_exits;
  if (WIFSIGNALED(status)) {
    std::fprintf(stderr, "error: shard worker pid %d killed by signal %d\n",
                 static_cast<int>(pid), WTERMSIG(status));
  } else {
    std::fprintf(stderr, "error: shard worker pid %d exited with status %d\n",
                 static_cast<int>(pid),
                 WIFEXITED(status) ? WEXITSTATUS(status) : status);
  }
  return true;
}

/// Worker side of a multi-node deployment: connect to the listening
/// coordinator and serve frames until shutdown. Runs before the signal
/// mask is installed, so SIGTERM kills it with default disposition.
int RunTcpWorker(const std::string& spec, csce::FlagParser& flags) {
  using namespace csce;
  std::string host;
  uint16_t port = 0;
  if (!shard::ParseHostPort(spec, &host, &port) || port == 0) {
    std::fprintf(stderr, "--connect needs HOST:PORT\n");
    return 2;
  }
  std::shared_ptr<shard::FaultInjector> faults;
  std::string fault_plan = flags.GetString("fault-plan", "");
  uint32_t fault_shard = static_cast<uint32_t>(flags.GetInt("fault-shard", 0));
  if (!fault_plan.empty()) {
    if (Status st = shard::FaultInjector::Parse(fault_plan, &faults);
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 2;
    }
  }
  shard::TransportDeadlines deadlines;
  deadlines.connect_seconds = flags.GetDouble("connect-timeout", 10.0);
  std::unique_ptr<shard::Transport> transport;
  if (Status st = shard::ConnectTcp(host, port, deadlines, &transport);
      !st.ok()) {
    std::fprintf(stderr, "connect %s: %s\n", spec.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  transport =
      shard::MakeFaultTransport(std::move(transport), faults, fault_shard);
  shard::ShardWorker worker;
  Status st = worker.Serve(*transport);
  if (!st.ok() && st.code() != StatusCode::kIOError) {
    std::fprintf(stderr, "shard worker: %s\n", st.ToString().c_str());
    return 3;
  }
  return 0;
}

struct ShardedSessionTotals {
  uint64_t queries = 0;
  uint64_t failures = 0;
  uint64_t embeddings = 0;
  uint64_t rounds = 0;
  uint64_t tasks_routed = 0;
  uint64_t embeddings_verified = 0;
  uint64_t worker_restarts = 0;
  uint64_t frames_retried = 0;
  double enumerate_seconds = 0.0;
  double worker_busy_seconds = 0.0;

  csce::obs::JsonValue ToJson() const {
    csce::obs::JsonValue doc = csce::obs::JsonValue::Object();
    doc.Set("queries", queries);
    doc.Set("failures", failures);
    doc.Set("embeddings", embeddings);
    doc.Set("rounds", rounds);
    doc.Set("tasks_routed", tasks_routed);
    doc.Set("embeddings_verified", embeddings_verified);
    doc.Set("worker_restarts", worker_restarts);
    doc.Set("frames_retried", frames_retried);
    doc.Set("enumerate_seconds", enumerate_seconds);
    doc.Set("worker_busy_seconds", worker_busy_seconds);
    return doc;
  }
};

int RunShardedSession(csce::shard::ShardCoordinator& coordinator,
                      const std::vector<WorkloadSegment>& workload,
                      int64_t repeat, bool quiet, bool self_check) {
  using namespace csce;
  ShardedSessionTotals totals;
  bool warned_limit = false;
  for (int64_t r = 0; r < repeat && !ExitRequested(); ++r) {
    for (const WorkloadSegment& segment : workload) {
      if (ExitRequested()) break;
      for (const QueryJob& job : segment.jobs) {
        if (ExitRequested()) break;
        if (job.options.max_embeddings != 0 && !warned_limit) {
          std::fprintf(stderr,
                       "warning: sharded sessions ignore per-query "
                       "max-embeddings limits\n");
          warned_limit = true;
        }
        shard::CoordinatorOptions options;
        options.variant = job.options.variant;
        options.plan = job.options.plan;
        options.time_limit_seconds = job.options.time_limit_seconds;
        options.self_check = self_check;
        shard::ShardResult result;
        WallTimer timer;
        Status st = coordinator.Execute(job.pattern, options, &result);
        double total_seconds = timer.Seconds();
        ++totals.queries;
        if (!st.ok()) {
          ++totals.failures;
          std::fprintf(stderr, "error: sharded query %s failed: %s\n",
                       job.tag.c_str(), st.ToString().c_str());
        }
        totals.embeddings += result.embeddings;
        totals.rounds += result.rounds;
        totals.tasks_routed += result.tasks_routed;
        totals.embeddings_verified += result.embeddings_verified;
        totals.worker_restarts += result.worker_restarts;
        totals.frames_retried += result.frames_retried;
        totals.enumerate_seconds += result.enumerate_seconds;
        totals.worker_busy_seconds += result.worker_busy_seconds;
        if (quiet) continue;
        std::printf(
            "query=%s variant=%s status=%s embeddings=%llu wait=0.000ms "
            "total=%.3fms shards=%u rounds=%u tasks_routed=%llu%s%s\n",
            job.tag.c_str(), VariantName(job.options.variant),
            st.ok() ? "ok" : st.ToString().c_str(),
            static_cast<unsigned long long>(result.embeddings),
            total_seconds * 1e3, coordinator.num_shards(), result.rounds,
            static_cast<unsigned long long>(result.tasks_routed),
            result.timed_out ? " timed_out" : "",
            self_check ? " self_checked" : "");
        if (!st.ok()) {
          // One failed distributed query does not invalidate the
          // session; the coordinator left the workers drained.
          std::fflush(stdout);
        }
      }
      if (segment.stats_after) {
        std::printf("STATS %s\n", totals.ToJson().Dump(0).c_str());
        std::fflush(stdout);
      }
    }
  }
  std::printf("%s\n", totals.ToJson().Dump(0).c_str());
  return totals.failures == 0 ? 0 : 1;
}

/// End-of-session metrics artifact for the sharded modes. In-process
/// workers share this process's registry, so the normal dump is already
/// complete; forked workers each carry their own registry, which the
/// coordinator collects over the wire and merges with the parent's
/// (planning, io) document.
int WriteShardedMetrics(csce::shard::ShardCoordinator& coordinator,
                        const std::string& path, bool multi_process) {
  using namespace csce;
  if (!multi_process) {
    if (Status st = obs::WriteMetricsFile(obs::MetricRegistry::Global(), path);
        !st.ok()) {
      std::fprintf(stderr, "metrics: %s\n", st.ToString().c_str());
      return 1;
    }
    return 0;
  }
  std::vector<std::string> docs;
  if (Status st = coordinator.CollectMetrics(&docs); !st.ok()) {
    // A lost worker must not cost the session its observability
    // artifact: degrade to the parent's own registry (which holds the
    // workers_lost / worker_restarts accounting) instead of writing
    // nothing.
    std::fprintf(stderr, "metrics collect: %s\n", st.ToString().c_str());
    docs.clear();
  }
  obs::JsonValue parent = obs::JsonValue::Object();
  parent.Set("schema", "csce.metrics.v1");
  parent.Set("metrics", obs::MetricRegistry::Global().Snapshot().ToJson(true));
  docs.push_back(parent.Dump(0));
  obs::JsonValue merged;
  if (Status st = obs::MergeMetricsDocuments(docs, &merged); !st.ok()) {
    std::fprintf(stderr, "metrics merge: %s\n", st.ToString().c_str());
    return 1;
  }
  if (Status st = obs::WriteMetricsDocument(merged, path); !st.ok()) {
    std::fprintf(stderr, "metrics: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csce;
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  // Worker side of a multi-node deployment: no workload or graph of
  // its own, everything arrives over the wire.
  if (std::string connect_spec = flags.GetString("connect", "");
      !connect_spec.empty()) {
    return RunTcpWorker(connect_spec, flags);
  }
  std::string ccsr_path = flags.GetString("ccsr", "");
  std::string graph_path = flags.GetString("graph", "");
  std::string queries_path = flags.GetString("queries", "");
  if (queries_path.empty() || (ccsr_path.empty() == graph_path.empty())) {
    std::fprintf(stderr,
                 "usage: csce_serve (--ccsr=x.ccsr | --graph=x.txt) "
                 "--queries=(workload.txt | -) [--threads=n] [--inflight=n] "
                 "[--mmap] [--memory-cap=bytes] "
                 "[--threads-per-query=n] [--deadline=s] [--repeat=n] "
                 "[--prune=aux,ree,lpi|all|none] "
                 "[--no-share-views] [--quiet] [--metrics-json=f.json] "
                 "[--shards=n [--workers=n] [--shard-strategy=hash|label] "
                 "[--self-check] [--listen=h:p] [--fault-plan=spec] "
                 "[--no-supervision] [--max-restarts=n] [--round-timeout=s] "
                 "[--heartbeat-timeout=s]]\n"
                 "       csce_serve --connect=h:p   (multi-node shard "
                 "worker)\n");
    return 2;
  }
  {
    const char* prune_env = std::getenv("CSCE_PRUNE");
    std::string prune_spec =
        flags.GetString("prune", prune_env != nullptr ? prune_env : "");
    if (Status st = ParsePruneList(prune_spec, &g_prune); !st.ok()) {
      std::fprintf(stderr, "--prune: %s\n", st.ToString().c_str());
      return 2;
    }
  }
  int64_t shards = flags.GetInt("shards", 0);
  int64_t forked_workers = flags.GetInt("workers", 0);
  std::string strategy_name = flags.GetString("shard-strategy", "hash");
  bool self_check = flags.GetBool("self-check");
  std::string metrics_path = flags.GetString("metrics-json", "");
  int64_t repeat = flags.GetInt("repeat", 1);
  bool quiet = flags.GetBool("quiet");
  const char* mmap_env = std::getenv("CSCE_CCSR_MMAP");
  const bool use_mmap = flags.GetBool("mmap") ||
                        (mmap_env != nullptr && std::string(mmap_env) == "1");
  const uint64_t memory_cap =
      static_cast<uint64_t>(flags.GetInt("memory-cap", 0));
  uint32_t threads_per_query =
      static_cast<uint32_t>(flags.GetInt("threads-per-query", 1));
  std::string listen_spec = flags.GetString("listen", "");
  std::string fault_plan = flags.GetString("fault-plan", "");
  shard::SupervisionOptions supervision;
  supervision.enabled = !flags.GetBool("no-supervision");
  supervision.max_restarts =
      static_cast<uint32_t>(flags.GetInt("max-restarts", 3));
  supervision.round_timeout_seconds = flags.GetDouble("round-timeout", 30.0);
  supervision.heartbeat_timeout_seconds =
      flags.GetDouble("heartbeat-timeout", 5.0);
  std::shared_ptr<shard::FaultInjector> injector;
  if (!fault_plan.empty()) {
    if (Status st = shard::FaultInjector::Parse(fault_plan, &injector);
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 2;
    }
  }

  if (shards < 0 || shards > 1024) {
    std::fprintf(stderr, "--shards must be in [0, 1024]\n");
    return 2;
  }
  if (!listen_spec.empty()) {
    if (shards <= 0 || ccsr_path.empty() || forked_workers != 0) {
      std::fprintf(stderr,
                   "--listen needs --shards=N and --ccsr artifacts (remote "
                   "workers load shards from the shared filesystem) and is "
                   "exclusive with --workers\n");
      return 2;
    }
  }
  if (forked_workers != 0) {
    if (shards == 0 || forked_workers != shards) {
      std::fprintf(stderr, "--workers requires --shards=N with workers==N\n");
      return 2;
    }
    if (ccsr_path.empty()) {
      std::fprintf(stderr,
                   "--workers needs --ccsr artifacts from "
                   "`csce_build --shards=N` (forked workers load shards "
                   "from disk)\n");
      return 2;
    }
  }
  shard::PartitionStrategy strategy;
  if (!shard::ParseStrategy(strategy_name, &strategy)) {
    std::fprintf(stderr, "unknown --shard-strategy=%s (hash|label)\n",
                 strategy_name.c_str());
    return 2;
  }

  // Exit signals are blocked before any worker (thread or fork) exists
  // so every child inherits the mask.
  BlockExitSignals();

  // Fork shard workers before the full CCSR is loaded: each child only
  // ever maps its own shard artifact.
  std::vector<pid_t> child_pids;
  std::vector<int> child_fds;
  if (forked_workers > 0) {
    for (int64_t s = 0; s < forked_workers; ++s) {
      int fds[2];
      if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
        std::fprintf(stderr, "socketpair failed\n");
        return 1;
      }
      pid_t pid = fork();
      if (pid < 0) {
        std::fprintf(stderr, "fork failed\n");
        return 1;
      }
      if (pid == 0) {
        close(fds[0]);
        for (int fd : child_fds) close(fd);  // other workers' parent ends
        RunForkedWorker(fds[1], static_cast<uint32_t>(s), fault_plan);
      }
      close(fds[1]);
      child_pids.push_back(pid);
      child_fds.push_back(fds[0]);
    }
    g_worker_pids = child_pids;
  }
  StartSignalWatcher();

  Ccsr index;
  std::unique_ptr<MmapCcsr> mapping;  // keeps a --mmap index alive
  Graph source_graph;  // kept alive only for --graph sharded partitioning
  bool have_graph = false;
  if (!ccsr_path.empty()) {
    if (use_mmap) {
      MmapCcsr::Options mopts;
      mopts.memory_cap_bytes = memory_cap;
      if (Status st = MmapCcsr::Open(ccsr_path, mopts, &mapping); !st.ok()) {
        std::fprintf(stderr, "mmap ccsr: %s\n", st.ToString().c_str());
        return 1;
      }
      index = mapping->Release();
    } else if (Status st = LoadCcsrFromFile(ccsr_path, &index); !st.ok()) {
      std::fprintf(stderr, "load ccsr: %s\n", st.ToString().c_str());
      return 1;
    }
  } else {
    if (Status st = LoadGraphFromFile(graph_path, &source_graph); !st.ok()) {
      std::fprintf(stderr, "load graph: %s\n", st.ToString().c_str());
      return 1;
    }
    index = Ccsr::Build(source_graph);
    have_graph = true;
  }

  std::vector<WorkloadSegment> workload;
  if (queries_path == "-") {
    if (!ParseWorkloadFromStdin(&workload)) return 2;
  } else {
    std::ifstream in(queries_path);
    if (!in) {
      std::fprintf(stderr, "cannot open --queries=%s\n", queries_path.c_str());
      return 1;
    }
    if (!ParseWorkload(in, &workload)) return 2;
  }

  if (shards > 0) {
    for (const std::string& unused : flags.UnusedFlags()) {
      std::fprintf(stderr, "warning: unknown flag --%s\n", unused.c_str());
    }
    int rc;
    std::unique_ptr<shard::InProcessCluster> cluster;
    std::unique_ptr<shard::ShardCoordinator> coordinator;
    std::unique_ptr<shard::TcpListener> listener;
    LocalWorkerSet local_workers;
    local_workers.faults = injector;
    ForkedWorkerSet forked;
    if (forked_workers > 0) {
      forked.current = child_pids;
      forked.parent_fds = child_fds;
      coordinator = std::make_unique<shard::ShardCoordinator>(&index);
      coordinator->set_supervision(supervision);
      for (int fd : child_fds) {
        coordinator->AttachWorker(shard::MakeFdTransport(fd));
      }
      // Restarts re-fork: the replacement child serves the same shard
      // over a fresh socketpair and runs fault-free (the plan already
      // fired in the incarnation it killed). Replacements are not added
      // to g_worker_pids — the watcher iterates that vector without a
      // lock — they exit on their own once the parent's socket closes.
      coordinator->set_worker_factory(
          [&forked](uint32_t s, std::unique_ptr<shard::Transport>* out) {
            forked.parent_fds[s] = -1;  // the coordinator closed the old fd
            int fds[2];
            if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
              return Status::IOError("socketpair for worker restart failed");
            }
            pid_t pid = fork();
            if (pid < 0) {
              close(fds[0]);
              close(fds[1]);
              return Status::IOError("fork for worker restart failed");
            }
            if (pid == 0) {
              close(fds[0]);
              for (int fd : forked.parent_fds) {
                if (fd >= 0) close(fd);  // other workers' parent ends
              }
              RunForkedWorker(fds[1], s, "");
            }
            close(fds[1]);
            forked.parent_fds[s] = fds[0];
            forked.superseded.push_back(forked.current[s]);
            forked.current[s] = pid;
            *out = shard::MakeFdTransport(fds[0]);
            return Status::OK();
          });
      if (Status st = coordinator->LoadFromFiles(ccsr_path, threads_per_query,
                                                 use_mmap, memory_cap);
          !st.ok()) {
        std::fprintf(stderr, "shard load: %s\n", st.ToString().c_str());
        return 1;
      }
    } else if (!listen_spec.empty()) {
      std::string host;
      uint16_t port = 0;
      if (!shard::ParseHostPort(listen_spec, &host, &port)) {
        std::fprintf(stderr, "--listen needs HOST:PORT\n");
        return 2;
      }
      if (Status st = shard::TcpListener::Listen(host, port, &listener);
          !st.ok()) {
        std::fprintf(stderr, "listen %s: %s\n", listen_spec.c_str(),
                     st.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr,
                   "csce_serve: listening on %s:%u, waiting for %lld shard "
                   "workers\n",
                   host.c_str(), listener->port(),
                   static_cast<long long>(shards));
      // No WorkerFactory: a remote worker cannot be re-forked from
      // here, so losing one fails the query (after the workers_lost
      // metric fires); supervision still provides heartbeats, round
      // deadlines and structured transport errors.
      coordinator = std::make_unique<shard::ShardCoordinator>(&index);
      coordinator->set_supervision(supervision);
      for (int64_t s = 0; s < shards; ++s) {
        std::unique_ptr<shard::Transport> t;
        if (Status st = listener->Accept(300.0, {}, &t); !st.ok()) {
          std::fprintf(stderr, "accept worker %lld: %s\n",
                       static_cast<long long>(s), st.ToString().c_str());
          return 1;
        }
        coordinator->AttachWorker(std::move(t));
      }
      if (Status st = coordinator->LoadFromFiles(ccsr_path, threads_per_query,
                                                 use_mmap, memory_cap);
          !st.ok()) {
        std::fprintf(stderr, "shard load: %s\n", st.ToString().c_str());
        return 1;
      }
    } else if (have_graph) {
      shard::InProcessClusterOptions cluster_options;
      cluster_options.supervision = supervision;
      cluster_options.faults = injector;
      if (Status st = shard::InProcessCluster::Create(
              source_graph, &index, static_cast<uint32_t>(shards), strategy,
              threads_per_query, cluster_options, &cluster);
          !st.ok()) {
        std::fprintf(stderr, "shard cluster: %s\n", st.ToString().c_str());
        return 1;
      }
    } else {
      // --ccsr + in-process workers: serve threads load the on-disk
      // shard artifacts themselves.
      coordinator = std::make_unique<shard::ShardCoordinator>(&index);
      coordinator->set_supervision(supervision);
      coordinator->set_worker_factory(
          [&local_workers](uint32_t s,
                           std::unique_ptr<shard::Transport>* out) {
            return local_workers.SpawnOne(s, out);
          });
      local_workers.Spawn(coordinator.get(), static_cast<uint32_t>(shards));
      if (Status st = coordinator->LoadFromFiles(ccsr_path, threads_per_query,
                                                 use_mmap, memory_cap);
          !st.ok()) {
        std::fprintf(stderr, "shard load: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    shard::ShardCoordinator& coord =
        cluster != nullptr ? cluster->coordinator() : *coordinator;
    rc = RunShardedSession(coord, workload, repeat, quiet, self_check);
    // Catch workers that died without the coordinator noticing (e.g. a
    // crash after the last result was merged) before the metrics
    // artifact is written, so workers_lost lands in it. Pids superseded
    // by a successful restart are expected to be dead and don't count.
    std::vector<char> reaped(forked.current.size(), 0);
    if (!forked.current.empty() && ExitRequested() == 0) {
      int lost = 0;
      for (size_t i = 0; i < forked.current.size(); ++i) {
        reaped[i] =
            ReapWorker(forked.current[i], WNOHANG, false, &lost) ? 1 : 0;
      }
      if (lost > 0) {
        obs::MetricRegistry::Global()
            .counter("shard.workers_lost")
            .Add(static_cast<uint64_t>(lost));
        if (rc == 0) rc = 1;
      }
    }
    if (!metrics_path.empty()) {
      int mrc = WriteShardedMetrics(coord, metrics_path, forked_workers > 0);
      if (rc == 0) rc = mrc;
    }
    coord.Shutdown();
    cluster.reset();  // joins in-process worker threads
    // Final reap: Shutdown closed every transport, so remaining
    // children see EOF and exit. They must exit cleanly unless the
    // session was interrupted (the watcher SIGTERMs them); superseded
    // pids died by design.
    {
      bool interrupted = ExitRequested() != 0;
      int lost = 0;
      for (size_t i = 0; i < forked.current.size(); ++i) {
        if (!reaped[i]) {
          (void)ReapWorker(forked.current[i], 0, interrupted, &lost);
        }
      }
      for (pid_t pid : forked.superseded) {
        (void)ReapWorker(pid, 0, true, &lost);
      }
      if (lost > 0 && rc == 0) rc = 1;
    }
    if (int sig = ExitRequested()) return 128 + sig;
    return rc;
  }

  RuntimeOptions runtime_options;
  runtime_options.worker_threads =
      static_cast<uint32_t>(flags.GetInt("threads", 0));
  runtime_options.max_inflight =
      static_cast<uint32_t>(flags.GetInt("inflight", 0));
  runtime_options.threads_per_query = threads_per_query;
  runtime_options.default_deadline_seconds = flags.GetDouble("deadline", 0);
  runtime_options.share_cluster_views = !flags.GetBool("no-share-views");
  runtime_options.max_query_retries =
      static_cast<uint32_t>(flags.GetInt("query-retries", 0));
  for (const std::string& unused : flags.UnusedFlags()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", unused.c_str());
  }

  QueryRuntime runtime(&index, runtime_options);
  SignalRuntimeScope signal_scope(&runtime);
  int failures = 0;
  for (int64_t r = 0; r < repeat && !ExitRequested(); ++r) {
    for (const WorkloadSegment& segment : workload) {
      if (ExitRequested()) break;
      std::vector<QueryOutcome> outcomes;
      if (!segment.jobs.empty()) {
        std::vector<QueryJob> jobs = segment.jobs;
        if (self_check) {
          for (QueryJob& job : jobs) job.options.self_check = true;
        }
        if (Status st = runtime.RunBatch(jobs, &outcomes); !st.ok()) {
          std::fprintf(stderr, "run batch: %s\n", st.ToString().c_str());
          return 1;
        }
      }
      for (size_t i = 0; i < outcomes.size(); ++i) {
        const QueryOutcome& o = outcomes[i];
        if (!o.status.ok()) ++failures;
        if (quiet) continue;
        std::printf(
            "query=%s variant=%s status=%s embeddings=%llu wait=%.3fms "
            "total=%.3fms%s%s%s%s\n",
            o.tag.c_str(), VariantName(segment.jobs[i].options.variant),
            o.status.ok() ? "ok" : o.status.ToString().c_str(),
            static_cast<unsigned long long>(o.result.embeddings),
            o.queue_wait_seconds * 1e3, o.total_seconds * 1e3,
            o.result.timed_out ? " timed_out" : "",
            o.result.limit_reached ? " limit_reached" : "",
            o.result.cancelled ? " cancelled" : "",
            o.executed ? "" : " not_executed");
      }
      if (segment.stats_after) {
        std::printf("STATS %s\n",
                    runtime.metrics().ToJson().Dump(0).c_str());
        std::fflush(stdout);
      }
    }
  }

  // Session summary: the runtime's cumulative metrics plus the session
  // configuration, as a single JSON line (scripts parse this).
  const RuntimeMetrics m = runtime.metrics();
  obs::JsonValue summary = m.ToJson();
  summary.Set("cache_hits", m.cluster_cache_hits);
  summary.Set("cache_misses", m.cluster_cache_misses);
  summary.Set("worker_threads", runtime.options().worker_threads);
  summary.Set("max_inflight", runtime.options().max_inflight);
  summary.Set("threads_per_query", runtime.options().threads_per_query);
  std::printf("%s\n", summary.Dump(0).c_str());

  if (!metrics_path.empty()) {
    if (Status st = obs::WriteMetricsFile(obs::MetricRegistry::Global(),
                                          metrics_path);
        !st.ok()) {
      std::fprintf(stderr, "metrics: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  // An interrupted session still flushed its metrics artifact above;
  // report the signal exit code so callers can tell the two apart.
  if (int sig = ExitRequested()) return 128 + sig;
  return failures == 0 ? 0 : 1;
}
