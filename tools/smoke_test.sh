#!/bin/sh
# End-to-end smoke test of the CLI tools, run by ctest:
# generate a dataset + patterns, build the CCSR artifact, match against
# both the artifact and the raw graph, and print stats.
set -e

BIN_DIR="$1"
WORK_DIR="${2:-$(mktemp -d)}"

"$BIN_DIR/csce_gen" --dataset=yeast --out="$WORK_DIR/g.txt" \
    --pattern-size=6 --pattern-count=2 --density=dense --seed=5 \
    --pattern-prefix="$WORK_DIR/q_"

"$BIN_DIR/csce_build" --graph="$WORK_DIR/g.txt" --out="$WORK_DIR/g.ccsr" \
    --verbose

"$BIN_DIR/csce_stats" "$WORK_DIR/g.txt"

OUT_CCSR=$("$BIN_DIR/csce_match" --ccsr="$WORK_DIR/g.ccsr" \
    --pattern="$WORK_DIR/q_0.txt" --variant=edge --explain)
OUT_GRAPH=$("$BIN_DIR/csce_match" --graph="$WORK_DIR/g.txt" \
    --pattern="$WORK_DIR/q_0.txt" --variant=edge)

COUNT_CCSR=$(printf '%s\n' "$OUT_CCSR" | sed -n 's/.*embeddings=\([0-9]*\).*/\1/p')
COUNT_GRAPH=$(printf '%s\n' "$OUT_GRAPH" | sed -n 's/.*embeddings=\([0-9]*\).*/\1/p')

if [ -z "$COUNT_CCSR" ] || [ "$COUNT_CCSR" != "$COUNT_GRAPH" ]; then
  echo "FAIL: ccsr path found '$COUNT_CCSR', graph path found '$COUNT_GRAPH'"
  exit 1
fi

# A dense pattern sampled from the graph occurs at least once.
if [ "$COUNT_CCSR" -lt 1 ]; then
  echo "FAIL: sampled pattern not found"
  exit 1
fi

# All three variants run against the artifact.
for variant in edge vertex hom; do
  "$BIN_DIR/csce_match" --ccsr="$WORK_DIR/g.ccsr" \
      --pattern="$WORK_DIR/q_1.txt" --variant="$variant" > /dev/null
done

echo "PASS: tools pipeline ($COUNT_CCSR embeddings)"
