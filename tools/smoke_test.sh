#!/bin/sh
# End-to-end smoke test of the CLI tools, run by ctest:
# generate a dataset + patterns, build the CCSR artifact, match against
# both the artifact and the raw graph, run a concurrent serving session,
# and print stats.
#
# Set CSCE_TSAN=1 to additionally configure a ThreadSanitizer build of
# the test suite and run the runtime/concurrency tests under it (slow:
# it compiles the library with -fsanitize=thread; off by default so the
# regular ctest run stays fast).
set -e

BIN_DIR="$1"
WORK_DIR="${2:-$(mktemp -d)}"
mkdir -p "$WORK_DIR"

"$BIN_DIR/csce_gen" --dataset=yeast --out="$WORK_DIR/g.txt" \
    --pattern-size=6 --pattern-count=2 --density=dense --seed=5 \
    --pattern-prefix="$WORK_DIR/q_"

"$BIN_DIR/csce_build" --graph="$WORK_DIR/g.txt" --out="$WORK_DIR/g.ccsr" \
    --verbose

"$BIN_DIR/csce_stats" "$WORK_DIR/g.txt"

OUT_CCSR=$("$BIN_DIR/csce_match" --ccsr="$WORK_DIR/g.ccsr" \
    --pattern="$WORK_DIR/q_0.txt" --variant=edge --explain)
OUT_GRAPH=$("$BIN_DIR/csce_match" --graph="$WORK_DIR/g.txt" \
    --pattern="$WORK_DIR/q_0.txt" --variant=edge)

COUNT_CCSR=$(printf '%s\n' "$OUT_CCSR" | sed -n 's/.*embeddings=\([0-9]*\).*/\1/p')
COUNT_GRAPH=$(printf '%s\n' "$OUT_GRAPH" | sed -n 's/.*embeddings=\([0-9]*\).*/\1/p')

if [ -z "$COUNT_CCSR" ] || [ "$COUNT_CCSR" != "$COUNT_GRAPH" ]; then
  echo "FAIL: ccsr path found '$COUNT_CCSR', graph path found '$COUNT_GRAPH'"
  exit 1
fi

# A dense pattern sampled from the graph occurs at least once.
if [ "$COUNT_CCSR" -lt 1 ]; then
  echo "FAIL: sampled pattern not found"
  exit 1
fi

# Morsel-parallel enumeration returns the same count as serial.
OUT_PAR=$("$BIN_DIR/csce_match" --ccsr="$WORK_DIR/g.ccsr" \
    --pattern="$WORK_DIR/q_0.txt" --variant=edge --threads=4)
COUNT_PAR=$(printf '%s\n' "$OUT_PAR" | sed -n 's/.*embeddings=\([0-9]*\).*/\1/p')
if [ "$COUNT_PAR" != "$COUNT_CCSR" ]; then
  echo "FAIL: --threads=4 found '$COUNT_PAR', serial found '$COUNT_CCSR'"
  exit 1
fi

# All three variants run against the artifact.
for variant in edge vertex hom; do
  "$BIN_DIR/csce_match" --ccsr="$WORK_DIR/g.ccsr" \
      --pattern="$WORK_DIR/q_1.txt" --variant="$variant" > /dev/null
done

# Concurrent serving session over the same workload: both patterns,
# repeated so the shared cluster cache gets hits, per-query counts
# matching the standalone tool.
cat > "$WORK_DIR/queries.txt" <<EOF
# smoke workload
$WORK_DIR/q_0.txt edge
$WORK_DIR/q_1.txt hom
$WORK_DIR/q_1.txt vertex
STATS
EOF
OUT_SERVE=$("$BIN_DIR/csce_serve" --ccsr="$WORK_DIR/g.ccsr" \
    --queries="$WORK_DIR/queries.txt" --threads=4 --inflight=2 --repeat=2)
printf '%s\n' "$OUT_SERVE" | tail -1
case "$OUT_SERVE" in
  *'"completed": 6'*) ;;
  *) echo "FAIL: csce_serve did not complete all 6 queries"; exit 1 ;;
esac
SERVE_EDGE=$(printf '%s\n' "$OUT_SERVE" | \
    sed -n 's/.*q_0.txt variant=edge-induced status=ok embeddings=\([0-9]*\).*/\1/p' | \
    head -1)
if [ "$SERVE_EDGE" != "$COUNT_CCSR" ]; then
  echo "FAIL: csce_serve edge count '$SERVE_EDGE' != csce_match '$COUNT_CCSR'"
  exit 1
fi
# The STATS workload directive emits a cumulative metrics line per batch.
STATS_LINES=$(printf '%s\n' "$OUT_SERVE" | grep -c '^STATS {' || true)
if [ "$STATS_LINES" != "2" ]; then
  echo "FAIL: expected 2 STATS lines (repeat=2), got '$STATS_LINES'"
  exit 1
fi

# Self-check mode on Patent(18): deep-validate the CCSR, then re-verify
# every emitted embedding and every SCE cache reuse against ground
# truth, serial and morsel-parallel. verified must equal the embedding
# count in both runs.
"$BIN_DIR/csce_gen" --dataset=patent --labels=18 --out="$WORK_DIR/patent.txt" \
    --pattern-size=5 --pattern-count=1 --density=dense --seed=7 \
    --pattern-prefix="$WORK_DIR/pq_"
"$BIN_DIR/csce_build" --graph="$WORK_DIR/patent.txt" \
    --out="$WORK_DIR/patent.ccsr"
for threads in 1 8; do
  OUT_SC=$("$BIN_DIR/csce_match" --ccsr="$WORK_DIR/patent.ccsr" \
      --pattern="$WORK_DIR/pq_0.txt" --variant=edge --self-check \
      --threads="$threads")
  COUNT_SC=$(printf '%s\n' "$OUT_SC" | sed -n 's/.*embeddings=\([0-9]*\).*/\1/p')
  VERIFIED_SC=$(printf '%s\n' "$OUT_SC" | \
      sed -n 's/.*verified=\([0-9]*\).*/\1/p')
  case "$OUT_SC" in
    *'mismatches=0'*) ;;
    *) echo "FAIL: self-check (threads=$threads) reported mismatches"; exit 1 ;;
  esac
  if [ -z "$COUNT_SC" ] || [ "$VERIFIED_SC" != "$COUNT_SC" ]; then
    echo "FAIL: self-check threads=$threads verified '$VERIFIED_SC' of '$COUNT_SC' embeddings"
    exit 1
  fi
done
echo "PASS: Patent(18) self-check clean at 1 and 8 threads"

# Observability artifacts: --metrics-json and --trace on the same
# Patent(18) query at 1 and 8 threads must be well-formed, with the
# embedding count unchanged by instrumentation and the deterministic
# counters (embeddings, search nodes) identical across thread counts.
for threads in 1 8; do
  OUT_OBS=$("$BIN_DIR/csce_match" --ccsr="$WORK_DIR/patent.ccsr" \
      --pattern="$WORK_DIR/pq_0.txt" --variant=edge --threads="$threads" \
      --metrics-json="$WORK_DIR/metrics_$threads.json" \
      --trace="$WORK_DIR/trace_$threads.json")
  COUNT_OBS=$(printf '%s\n' "$OUT_OBS" | sed -n 's/.*embeddings=\([0-9]*\).*/\1/p')
  OUT_PLAIN=$("$BIN_DIR/csce_match" --ccsr="$WORK_DIR/patent.ccsr" \
      --pattern="$WORK_DIR/pq_0.txt" --variant=edge --threads="$threads")
  COUNT_PLAIN=$(printf '%s\n' "$OUT_PLAIN" | sed -n 's/.*embeddings=\([0-9]*\).*/\1/p')
  if [ -z "$COUNT_OBS" ] || [ "$COUNT_OBS" != "$COUNT_PLAIN" ]; then
    echo "FAIL: instrumented run (threads=$threads) found '$COUNT_OBS', plain '$COUNT_PLAIN'"
    exit 1
  fi
  for f in "$WORK_DIR/metrics_$threads.json" "$WORK_DIR/trace_$threads.json"; do
    if [ ! -s "$f" ]; then
      echo "FAIL: $f missing or empty"
      exit 1
    fi
  done
  grep -q '"schema": "csce.metrics.v1"' "$WORK_DIR/metrics_$threads.json" || {
    echo "FAIL: metrics_$threads.json lacks the csce.metrics.v1 schema tag"
    exit 1
  }
  grep -q '"traceEvents"' "$WORK_DIR/trace_$threads.json" || {
    echo "FAIL: trace_$threads.json lacks traceEvents"
    exit 1
  }
done
if command -v python3 > /dev/null 2>&1; then
  python3 - "$WORK_DIR" <<'EOF'
import json, sys
work = sys.argv[1]
counters = {}
for threads in (1, 8):
    for kind in ("metrics", "trace"):
        with open(f"{work}/{kind}_{threads}.json") as f:
            doc = json.load(f)  # raises on malformed output
    with open(f"{work}/metrics_{threads}.json") as f:
        counters[threads] = json.load(f)["metrics"]["counters"]
for key in ("engine.embeddings", "engine.search_nodes"):
    if counters[1][key] != counters[8][key]:
        sys.exit(f"FAIL: {key} differs: {counters[1][key]} vs {counters[8][key]}")
print("PASS: metrics/trace JSON valid, counters thread-count invariant")
EOF
else
  echo "PASS: metrics/trace artifacts present (python3 unavailable, shallow check)"
fi

# Sharded execution: partition the yeast graph into 4 shards at build
# time, then serve the same query with 4 forked worker processes. The
# coordinator must report the exact embedding count the single-node
# tools produced, and the merged per-worker metrics must be a valid
# csce.metrics.v1 document.
"$BIN_DIR/csce_build" --graph="$WORK_DIR/g.txt" --out="$WORK_DIR/gs.ccsr" \
    --shards=4 --shard-strategy=label --verbose
[ -s "$WORK_DIR/gs.ccsr.shardplan" ] || {
  echo "FAIL: csce_build --shards=4 left no shard plan"
  exit 1
}
for s in 0 1 2 3; do
  [ -s "$WORK_DIR/gs.ccsr.shard$s" ] || {
    echo "FAIL: csce_build --shards=4 left no shard $s CCSR"
    exit 1
  }
done
cat > "$WORK_DIR/shard_queries.txt" <<EOF
$WORK_DIR/q_0.txt edge
EOF
OUT_SHARD=$("$BIN_DIR/csce_serve" --ccsr="$WORK_DIR/gs.ccsr" \
    --shards=4 --workers=4 --self-check \
    --queries="$WORK_DIR/shard_queries.txt" \
    --metrics-json="$WORK_DIR/metrics_shard.json")
SHARD_EDGE=$(printf '%s\n' "$OUT_SHARD" | \
    sed -n 's/.*q_0.txt variant=edge-induced status=ok embeddings=\([0-9]*\).*/\1/p' | \
    head -1)
if [ -z "$SHARD_EDGE" ] || [ "$SHARD_EDGE" != "$COUNT_CCSR" ]; then
  echo "FAIL: sharded serve found '$SHARD_EDGE', csce_match found '$COUNT_CCSR'"
  exit 1
fi
grep -q '"schema": "csce.metrics.v1"' "$WORK_DIR/metrics_shard.json" || {
  echo "FAIL: merged shard metrics lack the csce.metrics.v1 schema tag"
  exit 1
}
echo "PASS: 4 forked shard workers match csce_match ($SHARD_EDGE embeddings)"

# Fault injection, recovery path: kill shard 0's worker process after
# its second frame (mid-session, post-LOAD). Supervision must re-fork
# the worker, replay its journal and re-dispatch, so the session exits
# 0 with the exact single-node count and a nonzero restart counter in
# the merged metrics document.
OUT_FAULT=$("$BIN_DIR/csce_serve" --ccsr="$WORK_DIR/gs.ccsr" \
    --shards=4 --workers=4 --fault-plan=kill@0:2 \
    --queries="$WORK_DIR/shard_queries.txt" \
    --metrics-json="$WORK_DIR/metrics_fault.json")
FAULT_EDGE=$(printf '%s\n' "$OUT_FAULT" | \
    sed -n 's/.*q_0.txt variant=edge-induced status=ok embeddings=\([0-9]*\).*/\1/p' | \
    head -1)
if [ -z "$FAULT_EDGE" ] || [ "$FAULT_EDGE" != "$COUNT_CCSR" ]; then
  echo "FAIL: recovered sharded serve found '$FAULT_EDGE', csce_match found '$COUNT_CCSR'"
  exit 1
fi
RESTARTS=$(sed -n 's/.*"shard\.worker_restarts": \([0-9]*\).*/\1/p' \
    "$WORK_DIR/metrics_fault.json" | head -1)
if [ -z "$RESTARTS" ] || [ "$RESTARTS" -lt 1 ]; then
  echo "FAIL: shard.worker_restarts is '$RESTARTS' after kill@0:2, want >= 1"
  exit 1
fi
echo "PASS: killed worker recovered ($FAULT_EDGE embeddings, $RESTARTS restart(s))"

# Fault injection, failure path: same kill with supervision disabled.
# The session must exit nonzero (a worker died and nothing recovered
# it), report the loss on stderr, and still flush a metrics document
# with a nonzero shard.workers_lost counter. Regression test: this
# used to exit 0 and write nothing.
LOST_RC=0
"$BIN_DIR/csce_serve" --ccsr="$WORK_DIR/gs.ccsr" \
    --shards=4 --workers=4 --fault-plan=kill@0:2 --no-supervision \
    --queries="$WORK_DIR/shard_queries.txt" \
    --metrics-json="$WORK_DIR/metrics_lost.json" \
    > "$WORK_DIR/lost.out" 2> "$WORK_DIR/lost.err" || LOST_RC=$?
if [ "$LOST_RC" = "0" ]; then
  echo "FAIL: csce_serve exited 0 despite losing a worker with --no-supervision"
  exit 1
fi
grep -q 'error:' "$WORK_DIR/lost.err" || {
  echo "FAIL: lost-worker session printed no error on stderr"
  exit 1
}
LOST=$(sed -n 's/.*"shard\.workers_lost": \([0-9]*\).*/\1/p' \
    "$WORK_DIR/metrics_lost.json" | head -1)
if [ -z "$LOST" ] || [ "$LOST" -lt 1 ]; then
  echo "FAIL: shard.workers_lost is '$LOST' after unsupervised kill, want >= 1"
  exit 1
fi
echo "PASS: unsupervised worker loss exits $LOST_RC with workers_lost=$LOST"

# SIGINT mid-session still flushes --metrics-json: hold stdin open via
# a fifo so the session never sees EOF, deliver SIGINT, and expect exit
# 130 plus a well-formed metrics artifact.
rm -f "$WORK_DIR/sig.fifo"
mkfifo "$WORK_DIR/sig.fifo"
"$BIN_DIR/csce_serve" --ccsr="$WORK_DIR/g.ccsr" --queries=- \
    --metrics-json="$WORK_DIR/metrics_sig.json" \
    < "$WORK_DIR/sig.fifo" > "$WORK_DIR/sig.out" 2>&1 &
SERVE_PID=$!
exec 3> "$WORK_DIR/sig.fifo"
printf '%s edge\n' "$WORK_DIR/q_0.txt" >&3
sleep 1
kill -INT "$SERVE_PID"
SIG_RC=0
wait "$SERVE_PID" || SIG_RC=$?
exec 3>&-
if [ "$SIG_RC" != "130" ]; then
  echo "FAIL: csce_serve exit on SIGINT was '$SIG_RC', want 130"
  exit 1
fi
grep -q '"schema": "csce.metrics.v1"' "$WORK_DIR/metrics_sig.json" || {
  echo "FAIL: SIGINT-flushed metrics missing the csce.metrics.v1 schema tag"
  exit 1
}
echo "PASS: SIGINT flushed csce.metrics.v1 before exit $SIG_RC"

# Optional TSan pass over the runtime subsystem's tests.
if [ -n "${CSCE_TSAN:-}" ]; then
  SRC_DIR=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
  TSAN_DIR="$WORK_DIR/tsan_build"
  cmake -S "$SRC_DIR" -B "$TSAN_DIR" -DCSCE_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$TSAN_DIR" --target csce_tests -j "$(nproc)" > /dev/null
  (cd "$TSAN_DIR" && ctest \
      -R 'ThreadPool|StopToken|ParallelExecutor|QueryRuntime|ClusterCacheConcurrency|MetricRegistry|EngineMetrics' \
      --output-on-failure)
  echo "PASS: runtime tests clean under TSan"
fi

echo "PASS: tools pipeline ($COUNT_CCSR embeddings)"
