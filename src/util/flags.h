#ifndef CSCE_UTIL_FLAGS_H_
#define CSCE_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace csce {

/// Minimal command-line flag parser for the CLI tools:
/// `--key=value` pairs, bare `--switch` booleans, and positional
/// arguments. `--` ends flag parsing. Unknown flags are the caller's
/// concern (query what you need; `UnusedFlags()` reports the rest).
class FlagParser {
 public:
  Status Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const { return flags_.count(name) > 0; }

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  /// Bare `--switch` and `--switch=true|1|yes` are true.
  bool GetBool(const std::string& name, bool default_value = false) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that were parsed but never queried — typo detection.
  std::vector<std::string> UnusedFlags() const;

 private:
  mutable std::map<std::string, std::pair<std::string, bool>> flags_;
  std::vector<std::string> positional_;
};

inline Status FlagParser::Parse(int argc, const char* const* argv) {
  bool flags_done = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (flags_done || arg.size() < 2 || arg.substr(0, 2) != "--") {
      positional_.push_back(arg);
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    std::string key = eq == std::string::npos ? body : body.substr(0, eq);
    std::string value = eq == std::string::npos ? "" : body.substr(eq + 1);
    if (key.empty()) return Status::InvalidArgument("empty flag name");
    flags_[key] = {value, false};
  }
  return Status::OK();
}

inline std::string FlagParser::GetString(
    const std::string& name, const std::string& default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  it->second.second = true;
  return it->second.first;
}

inline int64_t FlagParser::GetInt(const std::string& name,
                                  int64_t default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  it->second.second = true;
  try {
    return std::stoll(it->second.first);
  } catch (...) {
    return default_value;
  }
}

inline double FlagParser::GetDouble(const std::string& name,
                                    double default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  it->second.second = true;
  try {
    return std::stod(it->second.first);
  } catch (...) {
    return default_value;
  }
}

inline bool FlagParser::GetBool(const std::string& name,
                                bool default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  it->second.second = true;
  const std::string& v = it->second.first;
  return v.empty() || v == "true" || v == "1" || v == "yes";
}

inline std::vector<std::string> FlagParser::UnusedFlags() const {
  std::vector<std::string> unused;
  for (const auto& [key, value] : flags_) {
    if (!value.second) unused.push_back(key);
  }
  return unused;
}

}  // namespace csce

#endif  // CSCE_UTIL_FLAGS_H_
