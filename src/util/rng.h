#ifndef CSCE_UTIL_RNG_H_
#define CSCE_UTIL_RNG_H_

#include <cstdint>

#include "util/logging.h"

namespace csce {

/// Deterministic 64-bit pseudo-random generator (splitmix64). All
/// workload generation in this repository is seeded through this class so
/// experiments are exactly reproducible across runs and machines.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    state_ += 0x9E3779B97F4A7C15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t Uniform(uint64_t bound) {
    CSCE_DCHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (-bound) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace csce

#endif  // CSCE_UTIL_RNG_H_
