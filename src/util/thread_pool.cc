#include "util/thread_pool.h"

namespace csce {

uint32_t ThreadPool::DefaultThreads() {
  uint32_t n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(uint32_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreads();
  threads_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) return;  // shutdown with a drained queue
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++running_;
    lock.unlock();
    task();
    lock.lock();
    --running_;
    if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace csce
