#include "util/thread_pool.h"

namespace csce {

uint32_t ThreadPool::DefaultThreads() {
  uint32_t n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(uint32_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreads();
  threads_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (!queue_.empty() || running_ > 0) idle_cv_.Wait(mu_);
}

void ThreadPool::WorkerLoop() {
  mu_.lock();
  for (;;) {
    while (!shutdown_ && queue_.empty()) work_cv_.Wait(mu_);
    if (queue_.empty()) break;  // shutdown with a drained queue
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++running_;
    mu_.unlock();
    task();
    mu_.lock();
    --running_;
    if (queue_.empty() && running_ == 0) idle_cv_.NotifyAll();
  }
  mu_.unlock();
}

}  // namespace csce
