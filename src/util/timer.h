#ifndef CSCE_UTIL_TIMER_H_
#define CSCE_UTIL_TIMER_H_

#include <chrono>

namespace csce {

/// Wall-clock stopwatch. Starts at construction; `Restart()` resets it.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace csce

#endif  // CSCE_UTIL_TIMER_H_
