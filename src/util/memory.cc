#include "util/memory.h"

#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>

namespace csce {

uint64_t PeakRssBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // On Linux ru_maxrss is in kilobytes.
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

uint64_t CurrentRssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long total = 0;
  long resident = 0;
  int n = std::fscanf(f, "%ld %ld", &total, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  long page = sysconf(_SC_PAGESIZE);
  return static_cast<uint64_t>(resident) * static_cast<uint64_t>(page);
}

}  // namespace csce
