#ifndef CSCE_UTIL_THREAD_ANNOTATIONS_H_
#define CSCE_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety analysis annotations plus the marker macros the
/// csce_lint checks key on. Under compilers without the attributes
/// (GCC) every macro expands to nothing, so the annotations are pure
/// documentation there; the CI static-analysis job builds with Clang
/// and -Wthread-safety -Werror, where they become compiler-checked
/// proofs. Conventions are documented in DESIGN.md ("Static
/// analysis"); the short version:
///
///  - Use csce::Mutex / csce::MutexLock (util/mutex.h), never a bare
///    std::mutex: the analysis only follows annotated types.
///  - Every non-atomic member written under a mutex gets
///    CSCE_GUARDED_BY(mu_); members that are intentionally unguarded
///    in a mutex-owning class get CSCE_NOT_GUARDED with a comment.
///  - Private helpers called with the lock held get
///    CSCE_REQUIRES(mu_); public entry points that must NOT be called
///    with the lock held get CSCE_EXCLUDES(mu_).

#if defined(__clang__) && defined(__has_attribute)
#define CSCE_TSA(x) __attribute__((x))
#else
#define CSCE_TSA(x)  // no-op under GCC/MSVC
#endif

#define CSCE_CAPABILITY(x) CSCE_TSA(capability(x))
#define CSCE_SCOPED_CAPABILITY CSCE_TSA(scoped_lockable)
#define CSCE_GUARDED_BY(x) CSCE_TSA(guarded_by(x))
#define CSCE_PT_GUARDED_BY(x) CSCE_TSA(pt_guarded_by(x))
#define CSCE_ACQUIRE(...) CSCE_TSA(acquire_capability(__VA_ARGS__))
#define CSCE_RELEASE(...) CSCE_TSA(release_capability(__VA_ARGS__))
#define CSCE_REQUIRES(...) CSCE_TSA(requires_capability(__VA_ARGS__))
#define CSCE_EXCLUDES(...) CSCE_TSA(locks_excluded(__VA_ARGS__))
#define CSCE_RETURN_CAPABILITY(x) CSCE_TSA(lock_returned(x))
#define CSCE_ASSERT_CAPABILITY(x) CSCE_TSA(assert_capability(x))
#define CSCE_NO_THREAD_SAFETY_ANALYSIS CSCE_TSA(no_thread_safety_analysis)

// ---------------------------------------------------------------------
// csce_lint markers. These expand to nothing everywhere; the linter
// (tools/csce_lint) matches them textually.

/// hot-path-no-alloc: the marked function and everything it
/// transitively calls within the project must not allocate (PR 4's
/// zero-allocation contract, enforced statically instead of only via
/// the VertexScratch hot-growth counter).
#define CSCE_HOT_PATH

/// Exempts one function from hot-path-no-alloc: it may allocate even
/// when reached from a CSCE_HOT_PATH root. Reserved for cold slow
/// paths (e.g. setops::VertexScratch::Grow, which the runtime counter
/// still observes) — every use needs a comment saying why it is cold.
#define CSCE_ALLOC_OK

/// guarded-by-complete: marks a member of a mutex-owning class as
/// intentionally unguarded (atomic-free setup-phase data, const-after-
/// construction pointers, self-synchronizing handles). Every use needs
/// a comment giving the synchronization argument.
#define CSCE_NOT_GUARDED

/// wire-bounded-reads: marks one of the bounded accessor primitives in
/// src/shard/wire.cc. Only functions carrying this marker may touch
/// frame payload bytes through memcpy / pointer arithmetic; decoders
/// must go through them.
#define CSCE_WIRE_PRIMITIVE

/// mmap-bounded-reads: marks one of the bounds-checked accessor
/// primitives over an mmap'd CCSR v2 artifact (src/ccsr/ccsr_mmap.cc).
/// Only functions carrying this marker may form pointers/spans into the
/// mapped bytes via reinterpret_cast or pointer arithmetic; everything
/// else must go through them, so every raw access sits next to its
/// bounds check.
#define CSCE_MAP_PRIMITIVE

#endif  // CSCE_UTIL_THREAD_ANNOTATIONS_H_
