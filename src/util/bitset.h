#ifndef CSCE_UTIL_BITSET_H_
#define CSCE_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace csce {

/// Fixed-capacity dynamic bitset used for "visited" / "used data vertex"
/// sets on hot enumeration paths. Avoids std::vector<bool>'s proxy
/// references and provides word-level reset.
class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(size_t n) { Resize(n); }

  void Resize(size_t n) {
    size_ = n;
    words_.assign((n + 63) / 64, 0);
  }

  size_t size() const { return size_; }

  void Set(size_t i) {
    CSCE_DCHECK(i < size_);
    words_[i >> 6] |= (uint64_t{1} << (i & 63));
  }

  void Clear(size_t i) {
    CSCE_DCHECK(i < size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  bool Test(size_t i) const {
    CSCE_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Reset() { std::fill(words_.begin(), words_.end(), 0); }

  /// this |= other. Both bitsets must have the same size.
  void OrWith(const DynamicBitset& other) {
    CSCE_DCHECK(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }

  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
    return c;
  }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace csce

#endif  // CSCE_UTIL_BITSET_H_
