#ifndef CSCE_UTIL_MUTEX_H_
#define CSCE_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace csce {

/// std::mutex wrapped as an annotated capability so Clang's
/// -Wthread-safety can follow it. BasicLockable (lowercase lock /
/// unlock) on purpose: std::condition_variable_any waits on it
/// directly, which keeps condition waits inside annotated functions
/// instead of lambda predicates the analysis cannot see into.
class CSCE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CSCE_ACQUIRE() { mu_.lock(); }
  void unlock() CSCE_RELEASE() { mu_.unlock(); }

  /// Escape hatch for code the analysis cannot express; avoid.
  std::mutex& native() CSCE_RETURN_CAPABILITY(this) { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII guard over csce::Mutex, annotated so the analysis tracks the
/// critical section across the guard's lifetime.
class CSCE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CSCE_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CSCE_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with csce::Mutex. Wait() is annotated as
/// requiring the mutex, so `while (!cond) cv.Wait(mu);` loops check
/// the guarded condition inside the annotated caller — the project
/// style instead of predicate-lambda waits, which Clang analyzes as
/// unannotated functions and rejects.
class CondVar {
 public:
  void Wait(Mutex& mu) CSCE_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& d)
      CSCE_REQUIRES(mu) {
    return cv_.wait_for(mu, d);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace csce

#endif  // CSCE_UTIL_MUTEX_H_
