#ifndef CSCE_UTIL_STATUS_H_
#define CSCE_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace csce {

/// Error codes used across the public API. Modeled after the
/// RocksDB/Arrow convention: fallible public entry points return a
/// `Status` (or `StatusOr<T>`) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kCorruption,
  kNotSupported,
  kResourceExhausted,
};

/// A lightweight success-or-error value. Cheap to copy in the success
/// case (no allocation); carries a message otherwise.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Propagates a non-OK status to the caller. Use inside functions that
/// themselves return Status.
#define CSCE_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::csce::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace csce

#endif  // CSCE_UTIL_STATUS_H_
