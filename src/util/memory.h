#ifndef CSCE_UTIL_MEMORY_H_
#define CSCE_UTIL_MEMORY_H_

#include <cstdint>

namespace csce {

/// Peak resident set size of this process in bytes (ru_maxrss). Used by
/// the benchmark harness to report the paper's "peak memory" metric.
/// Returns 0 if the platform does not expose it.
uint64_t PeakRssBytes();

/// Current resident set size in bytes (from /proc/self/statm on Linux),
/// or 0 if unavailable.
uint64_t CurrentRssBytes();

}  // namespace csce

#endif  // CSCE_UTIL_MEMORY_H_
