#ifndef CSCE_UTIL_THREAD_POOL_H_
#define CSCE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace csce {

/// A fixed pool of worker threads draining one shared FIFO task queue.
/// Deliberately minimal: the runtime's load balancing happens one level
/// up, via atomically claimed morsels (parallel_executor.h), so the
/// pool itself never needs per-thread deques or stealing — tasks are
/// coarse (one per worker or one per query) and the queue lock is cold.
///
/// Submit() and Wait() are thread-safe. Tasks may themselves block
/// (e.g. on the runtime's admission semaphore); sizing the pool is the
/// caller's concern. The destructor waits for all submitted tasks.
class ThreadPool {
 public:
  /// `num_threads` == 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(uint32_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished. New tasks
  /// submitted concurrently extend the wait.
  void Wait();

  uint32_t size() const { return static_cast<uint32_t>(threads_.size()); }

  /// hardware_concurrency() with a floor of 1 (it may report 0).
  static uint32_t DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers: queue non-empty or stop
  std::condition_variable idle_cv_;   // Wait(): queue empty and none running
  std::deque<std::function<void()>> queue_;
  uint32_t running_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace csce

#endif  // CSCE_UTIL_THREAD_POOL_H_
