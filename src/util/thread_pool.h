#ifndef CSCE_UTIL_THREAD_POOL_H_
#define CSCE_UTIL_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace csce {

/// A fixed pool of worker threads draining one shared FIFO task queue.
/// Deliberately minimal: the runtime's load balancing happens one level
/// up, via atomically claimed morsels (parallel_executor.h), so the
/// pool itself never needs per-thread deques or stealing — tasks are
/// coarse (one per worker or one per query) and the queue lock is cold.
///
/// Submit() and Wait() are thread-safe. Tasks may themselves block
/// (e.g. on the runtime's admission semaphore); sizing the pool is the
/// caller's concern. The destructor waits for all submitted tasks.
class ThreadPool {
 public:
  /// `num_threads` == 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(uint32_t num_threads = 0);
  ~ThreadPool() CSCE_EXCLUDES(mu_);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task) CSCE_EXCLUDES(mu_);

  /// Blocks until every task submitted so far has finished. New tasks
  /// submitted concurrently extend the wait.
  void Wait() CSCE_EXCLUDES(mu_);

  uint32_t size() const { return static_cast<uint32_t>(threads_.size()); }

  /// hardware_concurrency() with a floor of 1 (it may report 0).
  static uint32_t DefaultThreads();

 private:
  void WorkerLoop() CSCE_EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_cv_;  // workers: queue non-empty or stop
  CondVar idle_cv_;  // Wait(): queue empty and none running
  std::deque<std::function<void()>> queue_ CSCE_GUARDED_BY(mu_);
  uint32_t running_ CSCE_GUARDED_BY(mu_) = 0;
  bool shutdown_ CSCE_GUARDED_BY(mu_) = false;
  /// Written only by the constructor, joined only by the destructor;
  /// no worker touches it.
  std::vector<std::thread> threads_ CSCE_NOT_GUARDED;
};

}  // namespace csce

#endif  // CSCE_UTIL_THREAD_POOL_H_
