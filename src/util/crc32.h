#ifndef CSCE_UTIL_CRC32_H_
#define CSCE_UTIL_CRC32_H_

#include <cstdint>
#include <string_view>

namespace csce {
namespace util {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320). Table-driven,
/// byte-at-a-time — used to checksum the shard wire frames and the CCSR
/// v2 cluster directory, both small enough that simplicity beats a
/// slicing-by-8 variant. Header-only so the ccsr layer can use it
/// without depending on the shard library.
inline uint32_t Crc32(std::string_view bytes) {
  struct Table {
    uint32_t entries[256];
    Table() {
      for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
          c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        }
        entries[i] = c;
      }
    }
  };
  static const Table table;
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : bytes) {
    crc = table.entries[(crc ^ static_cast<uint8_t>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace util
}  // namespace csce

#endif  // CSCE_UTIL_CRC32_H_
