#ifndef CSCE_UTIL_LOGGING_H_
#define CSCE_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace csce {
namespace internal_logging {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CSCE_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal_logging
}  // namespace csce

/// Aborts the process if `cond` is false. Used for internal invariants
/// that indicate a programming error (never for user input; user input
/// errors surface as csce::Status).
#define CSCE_CHECK(cond)                                               \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::csce::internal_logging::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                                  \
  } while (false)

#ifdef NDEBUG
#define CSCE_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define CSCE_DCHECK(cond) CSCE_CHECK(cond)
#endif

#endif  // CSCE_UTIL_LOGGING_H_
