#ifndef CSCE_UTIL_LOGGING_H_
#define CSCE_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace csce {
namespace internal_logging {

/// Collects the streamed context of a failed CSCE_CHECK and aborts the
/// process when it goes out of scope (i.e. at the end of the full
/// `CSCE_CHECK(x) << ...` statement). Only ever constructed on the
/// failure path, so the happy path pays one branch and nothing else.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  [[noreturn]] ~CheckFailure() {
    std::string context = stream_.str();
    if (context.empty()) {
      std::fprintf(stderr, "CSCE_CHECK failed at %s:%d: %s\n", file_, line_,
                   expr_);
    } else {
      std::fprintf(stderr, "CSCE_CHECK failed at %s:%d: %s: %s\n", file_,
                   line_, expr_, context.c_str());
    }
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace csce

/// Aborts the process if `cond` is false. Used for internal invariants
/// that indicate a programming error (never for user input; user input
/// errors surface as csce::Status). Optional context can be streamed:
///
///   CSCE_CHECK(offset < row.size()) << "cluster " << id.ToString();
///
/// The streamed expressions are only evaluated on failure. The
/// `switch (0) case 0: default:` wrapper makes the macro a single
/// statement that is safe inside unbraced if/else.
#define CSCE_CHECK(cond)                                                  \
  switch (0)                                                              \
  case 0:                                                                 \
  default:                                                                \
    if (cond)                                                             \
      ;                                                                   \
    else                                                                  \
      ::csce::internal_logging::CheckFailure(__FILE__, __LINE__, #cond)   \
          .stream()

#ifdef NDEBUG
// Release builds: never evaluates `cond` (nor the streamed context) at
// runtime, but keeps both in a discarded branch so variables used only
// in debug checks do not trigger -Wunused-* under -Werror.
#define CSCE_DCHECK(cond)                                                 \
  switch (0)                                                              \
  case 0:                                                                 \
  default:                                                                \
    if (true || (cond))                                                   \
      ;                                                                   \
    else                                                                  \
      ::csce::internal_logging::CheckFailure(__FILE__, __LINE__, #cond)   \
          .stream()
#else
#define CSCE_DCHECK(cond) CSCE_CHECK(cond)
#endif

#endif  // CSCE_UTIL_LOGGING_H_
