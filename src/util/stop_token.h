#ifndef CSCE_UTIL_STOP_TOKEN_H_
#define CSCE_UTIL_STOP_TOKEN_H_

#include <atomic>

#include "util/thread_annotations.h"

namespace csce {

/// Cooperative cancellation flag. A holder (session, runtime, worker
/// fan-out) calls RequestStop(); workers poll StopRequested() at safe
/// points and unwind. Tokens can be chained: a child token reports
/// stopped when either it or its parent is stopped, so a query-local
/// token (e.g. the internal "some worker hit the embedding limit"
/// broadcast) composes with a session-wide CancelAll() token without
/// the pollers knowing about the hierarchy.
///
/// Thread-safe: RequestStop/StopRequested may race freely. SetParent
/// must happen-before any concurrent StopRequested() poll (set it
/// during single-threaded setup).
class StopToken {
 public:
  StopToken() = default;
  StopToken(const StopToken&) = delete;
  StopToken& operator=(const StopToken&) = delete;

  void RequestStop() { stop_.store(true, std::memory_order_relaxed); }

  /// Re-arms the token for reuse (e.g. a session runtime between
  /// batches). Only meaningful once no worker is polling it.
  void Reset() { stop_.store(false, std::memory_order_relaxed); }

  bool StopRequested() const {
    if (stop_.load(std::memory_order_relaxed)) return true;
    return parent_ != nullptr && parent_->StopRequested();
  }

  /// `parent` must outlive this token (nullptr detaches).
  void SetParent(const StopToken* parent) { parent_ = parent; }

 private:
  /// Lock-free by design: the flag is atomic and parent_ is frozen
  /// during single-threaded setup (see SetParent's contract), so the
  /// class owns no mutex and the thread-safety analysis has nothing to
  /// track here.
  std::atomic<bool> stop_{false};
  const StopToken* parent_ CSCE_NOT_GUARDED = nullptr;
};

}  // namespace csce

#endif  // CSCE_UTIL_STOP_TOKEN_H_
