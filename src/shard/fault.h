#ifndef CSCE_SHARD_FAULT_H_
#define CSCE_SHARD_FAULT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "shard/transport.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace csce {
namespace shard {

/// Deterministic fault injection for the shard layer. Faults live in a
/// decorator around the WORKER side of a transport — worker and
/// coordinator code stay fault-free, and every supervision/recovery
/// path is exercised by ordinary ctest cases instead of timing luck.
///
/// A fault plan is a comma-separated list of `kind@shard:arg` entries
/// (csce_serve --fault-plan accepts the same grammar):
///
///   kill@1:3        close shard 1's transport after its 3rd sent frame
///   truncate@0:2    truncate shard 0's 2nd reply payload, then close
///   delay@2:500     stall shard 2's next reply by 500 ms (one-shot)
///   drop-ping@1:2   swallow shard 1's first 2 heartbeat kPong replies
///   bad-hello@0:1   mis-version shard 0's first kHelloAck
///
/// Every entry fires at an exact frame count, so a given plan produces
/// the same failure sequence on every run and every transport. Each
/// entry is one-shot: once fired it never re-fires, even across worker
/// restarts — the injector is shared (shared_ptr) between a worker's
/// successive in-process incarnations precisely so a restarted worker
/// does not re-trip the same fault and recovery can be proven to
/// converge.
enum class FaultKind : uint8_t {
  kKillAfterFrames,   // kill@s:n
  kTruncateFrame,     // truncate@s:n
  kDelayResponse,     // delay@s:ms
  kDropHeartbeat,     // drop-ping@s:n
  kFailHandshake,     // bad-hello@s:n
};

const char* FaultKindName(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kKillAfterFrames;
  uint32_t shard = 0;
  /// kill/truncate: 1-based outgoing frame ordinal; delay: milliseconds;
  /// drop-ping / bad-hello: how many frames to corrupt.
  uint64_t arg = 0;
};

class FaultInjector {
 public:
  /// Parses the --fault-plan grammar above. Unknown kinds, missing
  /// fields, or non-numeric args yield InvalidArgument naming the bad
  /// entry. An empty plan is valid (no faults).
  static Status Parse(const std::string& plan,
                      std::shared_ptr<FaultInjector>* out);

  explicit FaultInjector(std::vector<FaultSpec> specs);

  /// Total number of fault firings so far (all kinds, all shards).
  uint64_t fired_total() const;
  /// Firings of one kind (test assertions: "the kill actually fired").
  uint64_t fired(FaultKind kind) const;

  const std::vector<FaultSpec>& specs() const { return specs_; }

 private:
  friend class FaultTransport;

  /// Set once at construction, read-only afterwards.
  const std::vector<FaultSpec> specs_ CSCE_NOT_GUARDED;

  mutable Mutex mu_;
  /// Per-spec firing counters, parallel to specs_. For one-shot kinds
  /// (kill/truncate/delay) the counter saturates at 1; for counted
  /// kinds (drop-ping/bad-hello) it runs up to spec.arg.
  std::vector<uint64_t> fired_count_ CSCE_GUARDED_BY(mu_);
  /// Outgoing frames sent per shard (indexed by spec, keyed on shard
  /// inside FaultTransport); drives the @frame-ordinal triggers.
  std::vector<uint64_t> frames_sent_by_shard_ CSCE_GUARDED_BY(mu_);
};

/// Wraps the worker-side end of a transport with the injector's faults
/// for `shard`. Pass a null injector to get `inner` back unchanged.
std::unique_ptr<Transport> MakeFaultTransport(
    std::unique_ptr<Transport> inner, std::shared_ptr<FaultInjector> injector,
    uint32_t shard);

}  // namespace shard
}  // namespace csce

#endif  // CSCE_SHARD_FAULT_H_
