#include "shard/coordinator.h"

#include <sstream>
#include <utility>

#include "ccsr/ccsr_io.h"
#include "engine/embedding_verifier.h"
#include "plan/validate.h"
#include "shard/worker.h"
#include "util/timer.h"

namespace csce {
namespace shard {
namespace {

/// Decodes an expected reply, surfacing kError frames as the Status
/// they carry and anything else unexpected as Corruption.
Status CheckReply(const wire::Frame& frame, wire::MsgType want) {
  if (frame.type == static_cast<uint32_t>(wire::MsgType::kError)) {
    wire::ErrorMsg err;
    CSCE_RETURN_IF_ERROR(wire::DecodeError(frame.payload, &err));
    return wire::ErrorToStatus(err);
  }
  if (frame.type != static_cast<uint32_t>(want)) {
    return Status::Corruption("shard coordinator: unexpected reply type " +
                              std::to_string(frame.type));
  }
  return Status::OK();
}

}  // namespace

void ShardCoordinator::AttachWorker(std::unique_ptr<Transport> transport) {
  workers_.push_back(std::move(transport));
}

Status ShardCoordinator::RoundTrip(const std::vector<uint32_t>& targets,
                                   const std::vector<wire::Frame>& requests,
                                   wire::MsgType want,
                                   std::vector<wire::Frame>* replies) {
  // All writes before any read: with fd transports the worker may block
  // writing a large reply while we block writing the next request.
  for (size_t i = 0; i < targets.size(); ++i) {
    CSCE_RETURN_IF_ERROR(workers_[targets[i]]->Send(requests[i]));
  }
  replies->resize(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    CSCE_RETURN_IF_ERROR(workers_[targets[i]]->Recv(&(*replies)[i]));
    CSCE_RETURN_IF_ERROR(CheckReply((*replies)[i], want));
  }
  return Status::OK();
}

Status ShardCoordinator::LoadFromFiles(const std::string& base_path,
                                       uint32_t threads_per_worker) {
  if (workers_.empty()) {
    return Status::InvalidArgument("shard coordinator: no workers attached");
  }
  std::vector<uint32_t> targets;
  std::vector<wire::Frame> requests;
  for (uint32_t s = 0; s < num_shards(); ++s) {
    wire::LoadRequest req;
    req.shard_id = s;
    req.num_shards = num_shards();
    req.num_threads = threads_per_worker;
    req.inline_payload = false;
    req.ccsr_path = ShardPlan::ShardCcsrPath(base_path, s);
    req.plan_path = ShardPlan::PlanPath(base_path);
    targets.push_back(s);
    requests.push_back(
        wire::Frame{static_cast<uint32_t>(wire::MsgType::kLoad),
                    wire::EncodeLoadRequest(req)});
  }
  std::vector<wire::Frame> replies;
  CSCE_RETURN_IF_ERROR(
      RoundTrip(targets, requests, wire::MsgType::kOk, &replies));
  loaded_ = true;
  return Status::OK();
}

Status ShardCoordinator::LoadInline(const std::vector<uint32_t>& owner,
                                    const std::vector<std::string>& ccsr_blobs,
                                    uint32_t threads_per_worker) {
  if (workers_.empty()) {
    return Status::InvalidArgument("shard coordinator: no workers attached");
  }
  if (ccsr_blobs.size() != workers_.size()) {
    return Status::InvalidArgument(
        "shard coordinator: need one ccsr blob per worker");
  }
  std::vector<uint32_t> targets;
  std::vector<wire::Frame> requests;
  for (uint32_t s = 0; s < num_shards(); ++s) {
    wire::LoadRequest req;
    req.shard_id = s;
    req.num_shards = num_shards();
    req.num_threads = threads_per_worker;
    req.inline_payload = true;
    req.ccsr_blob = ccsr_blobs[s];
    req.owner = owner;
    targets.push_back(s);
    requests.push_back(
        wire::Frame{static_cast<uint32_t>(wire::MsgType::kLoad),
                    wire::EncodeLoadRequest(req)});
  }
  std::vector<wire::Frame> replies;
  CSCE_RETURN_IF_ERROR(
      RoundTrip(targets, requests, wire::MsgType::kOk, &replies));
  loaded_ = true;
  return Status::OK();
}

Status ShardCoordinator::Execute(const Graph& pattern,
                                 const CoordinatorOptions& options,
                                 ShardResult* out) {
  *out = ShardResult{};
  if (!loaded_) {
    return Status::InvalidArgument("shard coordinator: Execute before Load");
  }

  // Compile once, against the FULL graph's statistics — every worker
  // must run the identical plan or cross-shard mappings are garbage.
  Plan plan;
  CSCE_RETURN_IF_ERROR(
      Planner(full_).MakePlan(pattern, options.variant, options.plan, &plan));
  out->plan_seconds = plan.plan_seconds;
  if (options.self_check) {
    CSCE_RETURN_IF_ERROR(ValidatePlan(full_, pattern, plan));
  }

  WallTimer wall;
  wire::PlanRequest preq;
  preq.pattern = pattern;
  preq.plan = plan;
  preq.variant = options.variant;
  preq.verify_sce = options.self_check;
  preq.emit_embeddings = options.collect_embeddings || options.self_check;
  preq.time_limit_seconds = options.time_limit_seconds;
  wire::Frame plan_frame{static_cast<uint32_t>(wire::MsgType::kPlan),
                         wire::EncodePlanRequest(preq)};

  std::vector<uint32_t> all(num_shards());
  for (uint32_t s = 0; s < num_shards(); ++s) all[s] = s;
  std::vector<wire::Frame> plan_frames(num_shards(), plan_frame);
  std::vector<wire::Frame> replies;
  CSCE_RETURN_IF_ERROR(
      RoundTrip(all, plan_frames, wire::MsgType::kOk, &replies));

  // Root round, then BSP extend rounds until no shard emits anything.
  wire::Frame root_frame{static_cast<uint32_t>(wire::MsgType::kRoot), {}};
  std::vector<wire::Frame> root_frames(num_shards(), root_frame);
  CSCE_RETURN_IF_ERROR(
      RoundTrip(all, root_frames, wire::MsgType::kTaskBatch, &replies));

  std::vector<wire::TaskBatch> buckets(num_shards());
  auto route = [&](std::vector<wire::Frame>& frames) -> Status {
    for (wire::Frame& f : frames) {
      wire::TaskBatch emitted;
      CSCE_RETURN_IF_ERROR(wire::DecodeTaskBatch(f.payload, &emitted));
      for (ShardTask& task : emitted.tasks) {
        if (task.target_shard >= num_shards()) {
          return Status::Corruption(
              "shard coordinator: task routed to nonexistent shard");
        }
        ++out->tasks_routed;
        buckets[task.target_shard].tasks.push_back(std::move(task));
      }
    }
    return Status::OK();
  };
  CSCE_RETURN_IF_ERROR(route(replies));

  // Every extend round strictly deepens some partial mapping or ends a
  // forwarding chain, so the round count is bounded by a small multiple
  // of the plan depth; exceeding the cap means routing is cycling.
  const uint32_t max_rounds =
      8 + 4 * static_cast<uint32_t>(plan.positions.size());
  for (;;) {
    std::vector<uint32_t> targets;
    std::vector<wire::Frame> requests;
    for (uint32_t s = 0; s < num_shards(); ++s) {
      if (buckets[s].tasks.empty()) continue;
      targets.push_back(s);
      requests.push_back(
          wire::Frame{static_cast<uint32_t>(wire::MsgType::kExtend),
                      wire::EncodeTaskBatch(buckets[s])});
      buckets[s].tasks.clear();
    }
    if (targets.empty()) break;
    if (++out->rounds > max_rounds) {
      return Status::Corruption(
          "shard coordinator: extend rounds exceeded bound (routing cycle)");
    }
    CSCE_RETURN_IF_ERROR(
        RoundTrip(targets, requests, wire::MsgType::kTaskBatch, &replies));
    CSCE_RETURN_IF_ERROR(route(replies));
  }

  // Finish: merge every worker's totals.
  wire::Frame finish_frame{static_cast<uint32_t>(wire::MsgType::kFinish), {}};
  std::vector<wire::Frame> finish_frames(num_shards(), finish_frame);
  CSCE_RETURN_IF_ERROR(
      RoundTrip(all, finish_frames, wire::MsgType::kResult, &replies));
  out->per_shard.resize(num_shards());
  for (uint32_t s = 0; s < num_shards(); ++s) {
    wire::ResultMsg& res = out->per_shard[s];
    CSCE_RETURN_IF_ERROR(wire::DecodeResultMsg(replies[s].payload, &res));
    out->embeddings += res.embeddings;
    out->search_nodes += res.search_nodes;
    out->candidate_sets_computed += res.candidate_sets_computed;
    out->candidate_sets_reused += res.candidate_sets_reused;
    out->morsels_claimed += res.morsels_claimed;
    out->timed_out |= res.timed_out;
    out->cancelled |= res.cancelled;
    out->limit_reached |= res.limit_reached;
    out->worker_busy_seconds += res.seconds;
  }
  out->enumerate_seconds = wall.Seconds();

  if (preq.emit_embeddings) {
    out->embedding_width = pattern.NumVertices();
    for (const wire::ResultMsg& res : out->per_shard) {
      if (res.embeddings > 0 && res.embedding_width != out->embedding_width) {
        return Status::Corruption(
            "shard coordinator: worker embedding width mismatch");
      }
      out->embedding_data.insert(out->embedding_data.end(),
                                 res.embedding_data.begin(),
                                 res.embedding_data.end());
    }
    if (out->embedding_width > 0 &&
        out->embedding_data.size() !=
            out->embeddings * out->embedding_width) {
      return Status::Corruption(
          "shard coordinator: embedding rows do not match merged count");
    }
  }

  if (options.self_check) {
    // Verify against the FULL graph: cross-shard embeddings contain
    // arcs no single shard CCSR holds.
    EmbeddingVerifier verifier(*full_, pattern, options.variant);
    const size_t width = out->embedding_width;
    for (size_t off = 0; off + width <= out->embedding_data.size();
         off += width) {
      CSCE_RETURN_IF_ERROR(verifier.Verify(
          std::span<const VertexId>(out->embedding_data.data() + off, width)));
    }
    out->embeddings_verified = verifier.verified();
    if (out->embeddings_verified != out->embeddings) {
      return Status::Corruption(
          "shard coordinator: self-check verified " +
          std::to_string(out->embeddings_verified) + " of " +
          std::to_string(out->embeddings) + " embeddings");
    }
  }
  return Status::OK();
}

Status ShardCoordinator::CollectMetrics(std::vector<std::string>* docs) {
  docs->clear();
  if (workers_.empty()) return Status::OK();
  std::vector<uint32_t> all(num_shards());
  for (uint32_t s = 0; s < num_shards(); ++s) all[s] = s;
  std::vector<wire::Frame> requests(
      num_shards(),
      wire::Frame{static_cast<uint32_t>(wire::MsgType::kStats), {}});
  std::vector<wire::Frame> replies;
  CSCE_RETURN_IF_ERROR(
      RoundTrip(all, requests, wire::MsgType::kStatsResult, &replies));
  for (wire::Frame& f : replies) {
    wire::StatsResult res;
    CSCE_RETURN_IF_ERROR(wire::DecodeStatsResult(f.payload, &res));
    docs->push_back(std::move(res.metrics_json));
  }
  return Status::OK();
}

void ShardCoordinator::Shutdown() {
  wire::Frame bye{static_cast<uint32_t>(wire::MsgType::kShutdown), {}};
  for (std::unique_ptr<Transport>& t : workers_) {
    if (t == nullptr) continue;
    if (t->Send(bye).ok()) {
      wire::Frame reply;
      (void)t->Recv(&reply);  // best-effort drain of the kOk
    }
    t->Close();
  }
  loaded_ = false;
}

InProcessCluster::InProcessCluster(Passkey) {}

Status InProcessCluster::Create(const Graph& g, const Ccsr* full,
                                uint32_t num_shards,
                                PartitionStrategy strategy,
                                uint32_t threads_per_worker,
                                std::unique_ptr<InProcessCluster>* out) {
  if (num_shards == 0) {
    return Status::InvalidArgument("in-process cluster: need >= 1 shard");
  }
  auto cluster = std::make_unique<InProcessCluster>(Passkey{});
  ShardPlanOptions popts;
  popts.num_shards = num_shards;
  popts.strategy = strategy;
  cluster->shard_plan_ = ShardPlan::Build(g, popts);

  std::vector<std::string> blobs(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    Graph shard_graph;
    CSCE_RETURN_IF_ERROR(
        cluster->shard_plan_.ExtractShard(g, s, &shard_graph));
    Ccsr shard_ccsr = Ccsr::Build(shard_graph);
    std::ostringstream blob;
    CSCE_RETURN_IF_ERROR(SaveCcsrToStream(shard_ccsr, blob));
    blobs[s] = std::move(blob).str();
  }

  cluster->coordinator_ = std::make_unique<ShardCoordinator>(full);
  for (uint32_t s = 0; s < num_shards; ++s) {
    std::unique_ptr<Transport> near;
    std::unique_ptr<Transport> far;
    MakeLoopbackPair(&near, &far);
    cluster->coordinator_->AttachWorker(std::move(near));
    cluster->worker_impls_.push_back(std::make_unique<ShardWorker>());
    ShardWorker* worker = cluster->worker_impls_.back().get();
    cluster->worker_threads_.emplace_back(
        [worker, t = std::move(far)]() mutable {
          // Transport failure just ends the worker; the coordinator end
          // observes it as IOError on its next call.
          (void)worker->Serve(*t);
        });
  }
  CSCE_RETURN_IF_ERROR(cluster->coordinator_->LoadInline(
      cluster->shard_plan_.owners(), blobs, threads_per_worker));
  *out = std::move(cluster);
  return Status::OK();
}

InProcessCluster::~InProcessCluster() {
  if (coordinator_ != nullptr) coordinator_->Shutdown();
  for (std::thread& t : worker_threads_) {
    if (t.joinable()) t.join();
  }
}

}  // namespace shard
}  // namespace csce
