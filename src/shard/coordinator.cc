#include "shard/coordinator.h"

#include <sys/socket.h>

#include <cstdlib>
#include <sstream>
#include <string_view>
#include <utility>

#include "ccsr/ccsr_io.h"
#include "engine/embedding_verifier.h"
#include "obs/trace.h"
#include "plan/validate.h"
#include "shard/worker.h"
#include "util/timer.h"

namespace csce {
namespace shard {
namespace {

constexpr uint32_t kTypeOf(wire::MsgType t) { return static_cast<uint32_t>(t); }

}  // namespace

ShardCoordinator::ShardCoordinator(const Ccsr* full) : full_(full) {
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  restarts_metric_ = reg.counter("shard.worker_restarts");
  retries_metric_ = reg.counter("shard.frames_retried");
  heartbeat_timeouts_metric_ = reg.counter("shard.heartbeat_timeouts");
  workers_lost_metric_ = reg.counter("shard.workers_lost");
  handshake_failures_metric_ = reg.counter("shard.handshake_failures");
  round_seconds_metric_ = reg.histogram("shard.round_seconds");
}

void ShardCoordinator::AttachWorker(std::unique_ptr<Transport> transport) {
  workers_.push_back(std::move(transport));
}

double ShardCoordinator::Now() const {
  return sup_.clock_fn ? sup_.clock_fn() : MonotonicSeconds();
}

void ShardCoordinator::SleepFor(double seconds) const {
  if (sup_.sleep_fn) {
    sup_.sleep_fn(seconds);
  } else {
    SleepSeconds(seconds);
  }
}

void ShardCoordinator::AppendJournal(uint32_t s, const wire::Frame& frame) {
  if (frame.type == kTypeOf(wire::MsgType::kLoad)) {
    load_journal_[s].push_back(frame);
  } else if (frame.type == kTypeOf(wire::MsgType::kPlan) ||
             frame.type == kTypeOf(wire::MsgType::kRoot) ||
             frame.type == kTypeOf(wire::MsgType::kExtend)) {
    query_journal_[s].push_back(frame);
  }
  // Everything else (ping, finish, stats, shutdown) is either
  // reply-less state or consumed exactly when answered; replaying it
  // would double work without reconstructing any state.
}

Status ShardCoordinator::Handshake(uint32_t s) {
  wire::HelloMsg hello;
  hello.peer_role = "coordinator";
  wire::Frame req{kTypeOf(wire::MsgType::kHello), wire::EncodeHello(hello)};
  CSCE_RETURN_IF_ERROR(workers_[s]->Send(req));
  if (sup_.enabled && sup_.heartbeat_timeout_seconds > 0.0) {
    workers_[s]->set_read_deadline(sup_.heartbeat_timeout_seconds);
  }
  wire::Frame reply;
  CSCE_RETURN_IF_ERROR(workers_[s]->Recv(&reply));
  TransportError err;
  err.fault = TransportFault::kHandshake;
  err.frame_type = reply.type;
  err.shard = s;
  if (reply.type != kTypeOf(wire::MsgType::kHelloAck)) {
    handshake_failures_metric_.Increment();
    err.context = "expected kHelloAck";
    return err.ToStatus();
  }
  wire::HelloMsg ack;
  Status st = wire::DecodeHello(reply.payload, &ack);
  if (!st.ok() || ack.protocol_version != wire::kProtocolVersion) {
    handshake_failures_metric_.Increment();
    err.context =
        st.ok() ? "peer protocol version " +
                      std::to_string(ack.protocol_version) + ", expected " +
                      std::to_string(wire::kProtocolVersion)
                : st.message();
    return err.ToStatus();
  }
  return Status::OK();
}

Status ShardCoordinator::HandshakeAll() {
  for (uint32_t s = 0; s < num_shards(); ++s) {
    Status st = Handshake(s);
    if (!st.ok()) {
      CSCE_RETURN_IF_ERROR(RestartWorker(s, st));
    }
  }
  return Status::OK();
}

Status ShardCoordinator::ReplayJournal(uint32_t s) {
  obs::Span span("shard.replay_journal");
  auto replay = [&](const std::vector<wire::Frame>& frames) -> Status {
    for (const wire::Frame& f : frames) {
      CSCE_RETURN_IF_ERROR(workers_[s]->Send(f));
      if (sup_.enabled && sup_.round_timeout_seconds > 0.0) {
        workers_[s]->set_read_deadline(sup_.round_timeout_seconds);
      }
      wire::Frame reply;
      CSCE_RETURN_IF_ERROR(workers_[s]->Recv(&reply));
      if (reply.type == kTypeOf(wire::MsgType::kError)) {
        // A frame the worker previously handled fine now errors: the
        // replacement is not deterministic w.r.t. the original, which
        // recovery cannot paper over.
        wire::ErrorMsg msg;
        CSCE_RETURN_IF_ERROR(wire::DecodeError(reply.payload, &msg));
        return wire::ErrorToStatus(msg);
      }
      // The reply's emissions were already routed before the failure;
      // consuming them again would double-count. Discard.
    }
    return Status::OK();
  };
  CSCE_RETURN_IF_ERROR(replay(load_journal_[s]));
  return replay(query_journal_[s]);
}

Status ShardCoordinator::RestartWorker(uint32_t s, const Status& cause) {
  if (!sup_.enabled || factory_ == nullptr) {
    workers_lost_metric_.Increment();
    return Status::IOError(
        "shard worker " + std::to_string(s) + " lost and cannot be restarted (" +
        std::string(sup_.enabled ? "no worker factory" : "supervision disabled") +
        "): " + cause.message());
  }
  obs::Span span("shard.restart_worker");
  for (;;) {
    double delay = 0.0;
    if (backoff_[s].OnFailure(Now(), &delay) ==
        BackoffState::Decision::kGiveUp) {
      workers_lost_metric_.Increment();
      return Status::IOError("shard worker " + std::to_string(s) +
                             " exhausted its restart budget: " +
                             cause.message());
    }
    SleepFor(delay);
    if (workers_[s] != nullptr) workers_[s]->Close();
    std::unique_ptr<Transport> fresh;
    if (!factory_(s, &fresh).ok()) continue;
    workers_[s] = std::move(fresh);
    ++restarts_total_;
    restarts_metric_.Increment();
    if (!Handshake(s).ok()) continue;
    if (!ReplayJournal(s).ok()) continue;
    return Status::OK();
  }
}

Status ShardCoordinator::SendWithRecovery(uint32_t s,
                                          const wire::Frame& frame) {
  for (;;) {
    Status st = workers_[s]->Send(frame);
    if (st.ok()) return st;
    CSCE_RETURN_IF_ERROR(RestartWorker(s, st));
  }
}

Status ShardCoordinator::AwaitReply(
    uint32_t s, const wire::Frame& request, wire::MsgType want,
    const std::function<Status(wire::Frame*)>& check, wire::Frame* reply) {
  const bool heartbeat = want == wire::MsgType::kPong;
  for (;;) {
    if (sup_.enabled) {
      workers_[s]->set_read_deadline(heartbeat
                                         ? sup_.heartbeat_timeout_seconds
                                         : sup_.round_timeout_seconds);
    }
    Status st = workers_[s]->Recv(reply);
    if (st.ok()) {
      if (reply->type == kTypeOf(wire::MsgType::kError)) {
        wire::ErrorMsg msg;
        Status dst = wire::DecodeError(reply->payload, &msg);
        if (dst.ok()) {
          // Handler-level failure: the worker is alive and answered
          // deterministically; a restart would only repeat it.
          return wire::ErrorToStatus(msg);
        }
        st = dst;
      } else if (reply->type != kTypeOf(want)) {
        st = Status::Corruption(
            "shard coordinator: unexpected reply type " +
            std::to_string(reply->type) + " from shard " + std::to_string(s));
      } else if (check != nullptr) {
        // A reply of the right type but with a garbage payload (e.g. a
        // truncated frame) counts as a worker failure, not a hard stop.
        st = check(reply);
      }
      if (st.ok()) {
        backoff_[s].OnSuccess(Now());
        return Status::OK();
      }
    }
    if (heartbeat &&
        workers_[s]->last_error().fault == TransportFault::kTimeout) {
      heartbeat_timeouts_metric_.Increment();
    }
    CSCE_RETURN_IF_ERROR(RestartWorker(s, st));
    CSCE_RETURN_IF_ERROR(SendWithRecovery(s, request));
    ++retries_total_;
    retries_metric_.Increment();
  }
}

Status ShardCoordinator::RoundTrip(const std::vector<uint32_t>& targets,
                                   const std::vector<wire::Frame>& requests,
                                   wire::MsgType want,
                                   std::vector<wire::Frame>* replies,
                                   bool journal, const PayloadCheck& check) {
  // All writes before any read: with fd transports the worker may block
  // writing a large reply while we block writing the next request.
  for (size_t i = 0; i < targets.size(); ++i) {
    CSCE_RETURN_IF_ERROR(SendWithRecovery(targets[i], requests[i]));
  }
  replies->assign(targets.size(), wire::Frame{});
  for (size_t i = 0; i < targets.size(); ++i) {
    std::function<Status(wire::Frame*)> bound;
    if (check != nullptr) {
      bound = [&check, i](wire::Frame* r) { return check(i, r); };
    }
    CSCE_RETURN_IF_ERROR(
        AwaitReply(targets[i], requests[i], want, bound, &(*replies)[i]));
    if (journal) AppendJournal(targets[i], requests[i]);
  }
  return Status::OK();
}

Status ShardCoordinator::PingWorkers() {
  if (workers_.empty()) return Status::OK();
  wire::Frame ping{kTypeOf(wire::MsgType::kPing), {}};
  for (uint32_t s = 0; s < num_shards(); ++s) {
    CSCE_RETURN_IF_ERROR(SendWithRecovery(s, ping));
  }
  for (uint32_t s = 0; s < num_shards(); ++s) {
    wire::Frame pong;
    CSCE_RETURN_IF_ERROR(
        AwaitReply(s, ping, wire::MsgType::kPong, nullptr, &pong));
  }
  return Status::OK();
}

Status ShardCoordinator::LoadFromFiles(const std::string& base_path,
                                       uint32_t threads_per_worker,
                                       bool use_mmap,
                                       uint64_t memory_cap_bytes) {
  if (workers_.empty()) {
    return Status::InvalidArgument("shard coordinator: no workers attached");
  }
  backoff_.clear();
  for (size_t i = 0; i < workers_.size(); ++i) backoff_.emplace_back(sup_);
  load_journal_.assign(workers_.size(), {});
  query_journal_.assign(workers_.size(), {});
  CSCE_RETURN_IF_ERROR(HandshakeAll());
  std::vector<uint32_t> targets;
  std::vector<wire::Frame> requests;
  for (uint32_t s = 0; s < num_shards(); ++s) {
    wire::LoadRequest req;
    req.shard_id = s;
    req.num_shards = num_shards();
    req.num_threads = threads_per_worker;
    req.inline_payload = false;
    req.ccsr_path = ShardPlan::ShardCcsrPath(base_path, s);
    req.plan_path = ShardPlan::PlanPath(base_path);
    req.use_mmap = use_mmap;
    req.memory_cap_bytes = memory_cap_bytes;
    targets.push_back(s);
    requests.push_back(
        wire::Frame{kTypeOf(wire::MsgType::kLoad),
                    wire::EncodeLoadRequest(req)});
  }
  std::vector<wire::Frame> replies;
  CSCE_RETURN_IF_ERROR(RoundTrip(targets, requests, wire::MsgType::kOk,
                                 &replies, /*journal=*/true));
  loaded_ = true;
  return Status::OK();
}

Status ShardCoordinator::LoadInline(const std::vector<uint32_t>& owner,
                                    const std::vector<std::string>& ccsr_blobs,
                                    uint32_t threads_per_worker) {
  if (workers_.empty()) {
    return Status::InvalidArgument("shard coordinator: no workers attached");
  }
  if (ccsr_blobs.size() != workers_.size()) {
    return Status::InvalidArgument(
        "shard coordinator: need one ccsr blob per worker");
  }
  backoff_.clear();
  for (size_t i = 0; i < workers_.size(); ++i) backoff_.emplace_back(sup_);
  load_journal_.assign(workers_.size(), {});
  query_journal_.assign(workers_.size(), {});
  CSCE_RETURN_IF_ERROR(HandshakeAll());
  std::vector<uint32_t> targets;
  std::vector<wire::Frame> requests;
  for (uint32_t s = 0; s < num_shards(); ++s) {
    wire::LoadRequest req;
    req.shard_id = s;
    req.num_shards = num_shards();
    req.num_threads = threads_per_worker;
    req.inline_payload = true;
    req.ccsr_blob = ccsr_blobs[s];
    req.owner = owner;
    targets.push_back(s);
    requests.push_back(
        wire::Frame{kTypeOf(wire::MsgType::kLoad),
                    wire::EncodeLoadRequest(req)});
  }
  std::vector<wire::Frame> replies;
  CSCE_RETURN_IF_ERROR(RoundTrip(targets, requests, wire::MsgType::kOk,
                                 &replies, /*journal=*/true));
  loaded_ = true;
  return Status::OK();
}

Status ShardCoordinator::Execute(const Graph& pattern,
                                 const CoordinatorOptions& options,
                                 ShardResult* out) {
  *out = ShardResult{};
  if (!loaded_) {
    return Status::InvalidArgument("shard coordinator: Execute before Load");
  }
  const uint64_t restarts_before = restarts_total_;
  const uint64_t retries_before = retries_total_;
  // The previous query completed (its kFinish replies were consumed),
  // so its round frames can never need replay again.
  for (std::vector<wire::Frame>& j : query_journal_) j.clear();

  if (sup_.enabled) {
    CSCE_RETURN_IF_ERROR(PingWorkers());
  }

  // Compile once, against the FULL graph's statistics — every worker
  // must run the identical plan or cross-shard mappings are garbage.
  Plan plan;
  CSCE_RETURN_IF_ERROR(
      Planner(full_).MakePlan(pattern, options.variant, options.plan, &plan));
  out->plan_seconds = plan.plan_seconds;
  if (options.self_check) {
    CSCE_RETURN_IF_ERROR(ValidatePlan(full_, pattern, plan));
  }

  WallTimer wall;
  wire::PlanRequest preq;
  preq.pattern = pattern;
  preq.plan = plan;
  preq.variant = options.variant;
  preq.verify_sce = options.self_check;
  preq.emit_embeddings = options.collect_embeddings || options.self_check;
  preq.time_limit_seconds = options.time_limit_seconds;
  wire::Frame plan_frame{kTypeOf(wire::MsgType::kPlan),
                         wire::EncodePlanRequest(preq)};

  std::vector<uint32_t> all(num_shards());
  for (uint32_t s = 0; s < num_shards(); ++s) all[s] = s;
  std::vector<wire::Frame> plan_frames(num_shards(), plan_frame);
  std::vector<wire::Frame> replies;
  CSCE_RETURN_IF_ERROR(RoundTrip(all, plan_frames, wire::MsgType::kOk,
                                 &replies, /*journal=*/true));

  // Root round, then BSP extend rounds until no shard emits anything.
  // Replies are decoded inside the round trip (PayloadCheck) so a
  // garbage batch from a failing worker re-enters recovery instead of
  // aborting the query.
  std::vector<wire::TaskBatch> emitted;
  auto batch_check = [&emitted](size_t i, wire::Frame* r) {
    return wire::DecodeTaskBatch(r->payload, &emitted[i]);
  };

  wire::Frame root_frame{kTypeOf(wire::MsgType::kRoot), {}};
  std::vector<wire::Frame> root_frames(num_shards(), root_frame);
  emitted.assign(num_shards(), wire::TaskBatch{});
  {
    WallTimer round_timer;
    CSCE_RETURN_IF_ERROR(RoundTrip(all, root_frames, wire::MsgType::kTaskBatch,
                                   &replies, /*journal=*/true, batch_check));
    round_seconds_metric_.Record(round_timer.Seconds());
  }

  std::vector<wire::TaskBatch> buckets(num_shards());
  auto route = [&]() -> Status {
    for (wire::TaskBatch& batch : emitted) {
      for (ShardTask& task : batch.tasks) {
        if (task.target_shard >= num_shards()) {
          return Status::Corruption(
              "shard coordinator: task routed to nonexistent shard");
        }
        ++out->tasks_routed;
        buckets[task.target_shard].tasks.push_back(std::move(task));
      }
      batch.tasks.clear();
    }
    return Status::OK();
  };
  CSCE_RETURN_IF_ERROR(route());

  // Every extend round strictly deepens some partial mapping or ends a
  // forwarding chain, so the round count is bounded by a small multiple
  // of the plan depth; exceeding the cap means routing is cycling.
  const uint32_t max_rounds =
      8 + 4 * static_cast<uint32_t>(plan.positions.size());
  for (;;) {
    std::vector<uint32_t> targets;
    std::vector<wire::Frame> requests;
    for (uint32_t s = 0; s < num_shards(); ++s) {
      if (buckets[s].tasks.empty()) continue;
      targets.push_back(s);
      requests.push_back(
          wire::Frame{kTypeOf(wire::MsgType::kExtend),
                      wire::EncodeTaskBatch(buckets[s])});
      buckets[s].tasks.clear();
    }
    if (targets.empty()) break;
    if (++out->rounds > max_rounds) {
      return Status::Corruption(
          "shard coordinator: extend rounds exceeded bound (routing cycle)");
    }
    emitted.assign(targets.size(), wire::TaskBatch{});
    WallTimer round_timer;
    CSCE_RETURN_IF_ERROR(RoundTrip(targets, requests,
                                   wire::MsgType::kTaskBatch, &replies,
                                   /*journal=*/true, batch_check));
    round_seconds_metric_.Record(round_timer.Seconds());
    CSCE_RETURN_IF_ERROR(route());
  }

  // Finish: merge every worker's totals. Exactly one kResult per worker
  // is consumed, so a restarted worker contributes only its replayed
  // (complete) incarnation — never the dead one's partial counts.
  out->per_shard.assign(num_shards(), wire::ResultMsg{});
  auto result_check = [out](size_t i, wire::Frame* r) {
    return wire::DecodeResultMsg(r->payload, &out->per_shard[i]);
  };
  wire::Frame finish_frame{kTypeOf(wire::MsgType::kFinish), {}};
  std::vector<wire::Frame> finish_frames(num_shards(), finish_frame);
  CSCE_RETURN_IF_ERROR(RoundTrip(all, finish_frames, wire::MsgType::kResult,
                                 &replies, /*journal=*/false, result_check));
  for (uint32_t s = 0; s < num_shards(); ++s) {
    const wire::ResultMsg& res = out->per_shard[s];
    out->embeddings += res.embeddings;
    out->search_nodes += res.search_nodes;
    out->candidate_sets_computed += res.candidate_sets_computed;
    out->candidate_sets_reused += res.candidate_sets_reused;
    out->morsels_claimed += res.morsels_claimed;
    out->timed_out |= res.timed_out;
    out->cancelled |= res.cancelled;
    out->limit_reached |= res.limit_reached;
    out->worker_busy_seconds += res.seconds;
  }
  out->enumerate_seconds = wall.Seconds();
  out->worker_restarts = restarts_total_ - restarts_before;
  out->frames_retried = retries_total_ - retries_before;

  if (preq.emit_embeddings) {
    out->embedding_width = pattern.NumVertices();
    for (const wire::ResultMsg& res : out->per_shard) {
      if (res.embeddings > 0 && res.embedding_width != out->embedding_width) {
        return Status::Corruption(
            "shard coordinator: worker embedding width mismatch");
      }
      out->embedding_data.insert(out->embedding_data.end(),
                                 res.embedding_data.begin(),
                                 res.embedding_data.end());
    }
    if (out->embedding_width > 0 &&
        out->embedding_data.size() !=
            out->embeddings * out->embedding_width) {
      return Status::Corruption(
          "shard coordinator: embedding rows do not match merged count");
    }
  }

  if (options.self_check) {
    // Verify against the FULL graph: cross-shard embeddings contain
    // arcs no single shard CCSR holds.
    EmbeddingVerifier verifier(*full_, pattern, options.variant);
    const size_t width = out->embedding_width;
    for (size_t off = 0; off + width <= out->embedding_data.size();
         off += width) {
      CSCE_RETURN_IF_ERROR(verifier.Verify(
          std::span<const VertexId>(out->embedding_data.data() + off, width)));
    }
    out->embeddings_verified = verifier.verified();
    if (out->embeddings_verified != out->embeddings) {
      return Status::Corruption(
          "shard coordinator: self-check verified " +
          std::to_string(out->embeddings_verified) + " of " +
          std::to_string(out->embeddings) + " embeddings");
    }
  }
  return Status::OK();
}

Status ShardCoordinator::CollectMetrics(std::vector<std::string>* docs) {
  docs->clear();
  if (workers_.empty()) return Status::OK();
  std::vector<uint32_t> all(num_shards());
  for (uint32_t s = 0; s < num_shards(); ++s) all[s] = s;
  std::vector<wire::Frame> requests(
      num_shards(), wire::Frame{kTypeOf(wire::MsgType::kStats), {}});
  std::vector<wire::StatsResult> stats(num_shards());
  auto stats_check = [&stats](size_t i, wire::Frame* r) {
    return wire::DecodeStatsResult(r->payload, &stats[i]);
  };
  std::vector<wire::Frame> replies;
  CSCE_RETURN_IF_ERROR(RoundTrip(all, requests, wire::MsgType::kStatsResult,
                                 &replies, /*journal=*/false, stats_check));
  for (wire::StatsResult& res : stats) {
    docs->push_back(std::move(res.metrics_json));
  }
  return Status::OK();
}

void ShardCoordinator::Shutdown() {
  wire::Frame bye{kTypeOf(wire::MsgType::kShutdown), {}};
  for (std::unique_ptr<Transport>& t : workers_) {
    if (t == nullptr) continue;
    if (t->Send(bye).ok()) {
      wire::Frame reply;
      (void)t->Recv(&reply);  // best-effort drain of the kOk
    }
    t->Close();
  }
  loaded_ = false;
}

InProcessCluster::InProcessCluster(Passkey) {}

Status InProcessCluster::Create(const Graph& g, const Ccsr* full,
                                uint32_t num_shards,
                                PartitionStrategy strategy,
                                uint32_t threads_per_worker,
                                std::unique_ptr<InProcessCluster>* out) {
  return Create(g, full, num_shards, strategy, threads_per_worker,
                InProcessClusterOptions{}, out);
}

Status InProcessCluster::Create(const Graph& g, const Ccsr* full,
                                uint32_t num_shards,
                                PartitionStrategy strategy,
                                uint32_t threads_per_worker,
                                const InProcessClusterOptions& opts,
                                std::unique_ptr<InProcessCluster>* out) {
  if (num_shards == 0) {
    return Status::InvalidArgument("in-process cluster: need >= 1 shard");
  }
  auto cluster = std::make_unique<InProcessCluster>(Passkey{});
  cluster->faults_ = opts.faults;
  switch (opts.transport) {
    case ClusterTransport::kLoopback:
    case ClusterTransport::kUnix:
    case ClusterTransport::kTcp:
      cluster->transport_ = opts.transport;
      break;
    case ClusterTransport::kAuto: {
      const char* env = std::getenv("CSCE_SHARD_TRANSPORT");
      const std::string_view value = env != nullptr ? env : "";
      cluster->transport_ = value == "tcp"    ? ClusterTransport::kTcp
                            : value == "unix" ? ClusterTransport::kUnix
                                              : ClusterTransport::kLoopback;
      break;
    }
  }
  ShardPlanOptions popts;
  popts.num_shards = num_shards;
  popts.strategy = strategy;
  cluster->shard_plan_ = ShardPlan::Build(g, popts);

  std::vector<std::string> blobs;
  if (opts.load_base_path.empty()) {
    blobs.resize(num_shards);
    for (uint32_t s = 0; s < num_shards; ++s) {
      Graph shard_graph;
      CSCE_RETURN_IF_ERROR(
          cluster->shard_plan_.ExtractShard(g, s, &shard_graph));
      Ccsr shard_ccsr = Ccsr::Build(shard_graph);
      std::ostringstream blob;
      CSCE_RETURN_IF_ERROR(SaveCcsrToStream(shard_ccsr, blob));
      blobs[s] = std::move(blob).str();
    }
  }

  cluster->coordinator_ = std::make_unique<ShardCoordinator>(full);
  cluster->coordinator_->set_supervision(opts.supervision);
  InProcessCluster* raw = cluster.get();
  cluster->coordinator_->set_worker_factory(
      [raw](uint32_t shard, std::unique_ptr<Transport>* t) {
        return raw->SpawnWorker(shard, t);
      });
  for (uint32_t s = 0; s < num_shards; ++s) {
    std::unique_ptr<Transport> near;
    CSCE_RETURN_IF_ERROR(cluster->SpawnWorker(s, &near));
    cluster->coordinator_->AttachWorker(std::move(near));
  }
  if (opts.load_base_path.empty()) {
    CSCE_RETURN_IF_ERROR(cluster->coordinator_->LoadInline(
        cluster->shard_plan_.owners(), blobs, threads_per_worker));
  } else {
    CSCE_RETURN_IF_ERROR(cluster->coordinator_->LoadFromFiles(
        opts.load_base_path, threads_per_worker, opts.use_mmap,
        opts.memory_cap_bytes));
  }
  *out = std::move(cluster);
  return Status::OK();
}

Status InProcessCluster::SpawnWorker(uint32_t shard,
                                     std::unique_ptr<Transport>* out) {
  worker_impls_.push_back(std::make_unique<ShardWorker>());
  ShardWorker* worker = worker_impls_.back().get();
  std::shared_ptr<FaultInjector> faults = faults_;
  if (transport_ == ClusterTransport::kTcp) {
    // TCP loopback: the worker thread connects to an ephemeral-port
    // listener; the accepted end goes to the coordinator. Same code
    // path a real multi-node deployment uses, minus the network.
    std::unique_ptr<TcpListener> listener;
    CSCE_RETURN_IF_ERROR(TcpListener::Listen("127.0.0.1", 0, &listener));
    const uint16_t port = listener->port();
    worker_threads_.emplace_back([worker, port, faults, shard] {
      std::unique_ptr<Transport> t;
      if (!ConnectTcp("127.0.0.1", port, TransportDeadlines{}, &t).ok()) {
        return;
      }
      t = MakeFaultTransport(std::move(t), faults, shard);
      // Transport failure just ends the worker; the coordinator end
      // observes it as IOError on its next call.
      (void)worker->Serve(*t);
    });
    return listener->Accept(30.0, TransportDeadlines{}, out);
  }
  if (transport_ == ClusterTransport::kUnix) {
    // AF_UNIX socketpair through FdTransport — the forked-worker wiring
    // without the fork. Bench baseline for the TCP overhead column.
    int fds[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      return Status::IOError("socketpair failed");
    }
    std::unique_ptr<Transport> far = MakeFdTransport(fds[1]);
    far = MakeFaultTransport(std::move(far), faults, shard);
    worker_threads_.emplace_back([worker, t = std::move(far)]() mutable {
      (void)worker->Serve(*t);
    });
    *out = MakeFdTransport(fds[0]);
    return Status::OK();
  }
  std::unique_ptr<Transport> near;
  std::unique_ptr<Transport> far;
  MakeLoopbackPair(&near, &far);
  far = MakeFaultTransport(std::move(far), faults, shard);
  worker_threads_.emplace_back([worker, t = std::move(far)]() mutable {
    (void)worker->Serve(*t);
  });
  *out = std::move(near);
  return Status::OK();
}

InProcessCluster::~InProcessCluster() {
  if (coordinator_ != nullptr) coordinator_->Shutdown();
  for (std::thread& t : worker_threads_) {
    if (t.joinable()) t.join();
  }
}

}  // namespace shard
}  // namespace csce
