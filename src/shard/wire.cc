#include "shard/wire.h"

#include <cstring>

#include "graph/graph_builder.h"
#include "util/thread_annotations.h"

namespace csce {
namespace shard {
namespace wire {
namespace {

// Pattern graphs and task batches are small; these caps exist so a
// corrupt count fails fast instead of sizing gigabyte vectors.
constexpr uint32_t kMaxPatternVertices = 1u << 16;
constexpr uint64_t kMaxPatternEdges = 1u << 20;
// GraphBuilder materializes a frequency table indexed by the largest
// vertex label, so an unchecked wire-supplied label is an allocation
// bomb. Real datasets use a few thousand labels at most.
constexpr uint32_t kMaxLabelValue = 1u << 20;
constexpr uint32_t kMaxTasks = 1u << 24;

// The one writer-side raw-byte primitive (wire-bounded-reads exempts
// only marked functions from the no-raw-buffer-access rule).
CSCE_WIRE_PRIMITIVE void AppendPod(std::string* buf, const void* p, size_t n) {
  buf->append(reinterpret_cast<const char*>(p), n);
}

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(std::string_view bytes) {
  static const Crc32Table table;
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : bytes) {
    crc = table.entries[(crc ^ static_cast<uint8_t>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Status EncodeFrame(const Frame& frame, std::string* out) {
  if (frame.payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload exceeds kMaxFramePayload");
  }
  out->clear();
  out->reserve(kFrameHeaderBytes + frame.payload.size());
  uint32_t magic = kFrameMagic;
  uint64_t len = frame.payload.size();
  uint32_t crc = Crc32(frame.payload);
  AppendPod(out, &magic, sizeof(magic));
  AppendPod(out, &frame.type, sizeof(frame.type));
  AppendPod(out, &len, sizeof(len));
  AppendPod(out, &crc, sizeof(crc));
  out->append(frame.payload);
  return Status::OK();
}

CSCE_WIRE_PRIMITIVE Status DecodeFrameHeader(std::string_view header,
                                             uint32_t* type,
                                             uint64_t* payload_len,
                                             uint32_t* payload_crc) {
  if (header.size() < kFrameHeaderBytes) {
    return Status::Corruption("truncated frame header");
  }
  uint32_t magic = 0;
  std::memcpy(&magic, header.data(), sizeof(magic));
  if (magic != kFrameMagic) {
    return Status::Corruption("bad frame magic");
  }
  std::memcpy(type, header.data() + 4, sizeof(*type));
  std::memcpy(payload_len, header.data() + 8, sizeof(*payload_len));
  std::memcpy(payload_crc, header.data() + 16, sizeof(*payload_crc));
  if (*payload_len > kMaxFramePayload) {
    return Status::Corruption("frame payload length exceeds limit");
  }
  return Status::OK();
}

Status DecodeFrame(std::string_view bytes, Frame* out, size_t* consumed) {
  uint32_t type = 0;
  uint64_t len = 0;
  uint32_t crc = 0;
  CSCE_RETURN_IF_ERROR(DecodeFrameHeader(bytes, &type, &len, &crc));
  if (bytes.size() - kFrameHeaderBytes < len) {
    return Status::Corruption("truncated frame payload");
  }
  out->type = type;
  out->payload.assign(bytes.substr(kFrameHeaderBytes, len));
  if (Crc32(out->payload) != crc) {
    return Status::Corruption("frame payload crc mismatch");
  }
  *consumed = kFrameHeaderBytes + static_cast<size_t>(len);
  return Status::OK();
}

// --- HelloMsg ---------------------------------------------------------

std::string EncodeHello(const HelloMsg& msg) {
  PayloadWriter w;
  w.U32(msg.protocol_version);
  w.Str(msg.peer_role);
  return w.Take();
}

Status DecodeHello(std::string_view payload, HelloMsg* out) {
  *out = HelloMsg{};
  PayloadReader r(payload);
  CSCE_RETURN_IF_ERROR(r.U32(&out->protocol_version));
  CSCE_RETURN_IF_ERROR(r.Str(&out->peer_role, 1u << 10));
  return r.ExpectEnd();
}

void PayloadWriter::U8(uint8_t v) { AppendPod(&buf_, &v, sizeof(v)); }
void PayloadWriter::U32(uint32_t v) { AppendPod(&buf_, &v, sizeof(v)); }
void PayloadWriter::U64(uint64_t v) { AppendPod(&buf_, &v, sizeof(v)); }
void PayloadWriter::F64(double v) { AppendPod(&buf_, &v, sizeof(v)); }

void PayloadWriter::Str(std::string_view s) {
  U64(s.size());
  buf_.append(s);
}

void PayloadWriter::VecU32(const std::vector<uint32_t>& v) {
  U32(static_cast<uint32_t>(v.size()));
  AppendPod(&buf_, v.data(), v.size() * sizeof(uint32_t));
}

Status PayloadReader::Need(size_t n) const {
  if (data_.size() - pos_ < n) {
    return Status::Corruption("truncated payload");
  }
  return Status::OK();
}

CSCE_WIRE_PRIMITIVE Status PayloadReader::U8(uint8_t* v) {
  CSCE_RETURN_IF_ERROR(Need(1));
  *v = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

CSCE_WIRE_PRIMITIVE Status PayloadReader::U32(uint32_t* v) {
  CSCE_RETURN_IF_ERROR(Need(4));
  std::memcpy(v, data_.data() + pos_, 4);
  pos_ += 4;
  return Status::OK();
}

CSCE_WIRE_PRIMITIVE Status PayloadReader::U64(uint64_t* v) {
  CSCE_RETURN_IF_ERROR(Need(8));
  std::memcpy(v, data_.data() + pos_, 8);
  pos_ += 8;
  return Status::OK();
}

CSCE_WIRE_PRIMITIVE Status PayloadReader::F64(double* v) {
  CSCE_RETURN_IF_ERROR(Need(8));
  std::memcpy(v, data_.data() + pos_, 8);
  pos_ += 8;
  return Status::OK();
}

Status PayloadReader::Str(std::string* s, uint64_t max_len) {
  uint64_t len = 0;
  CSCE_RETURN_IF_ERROR(U64(&len));
  if (len > max_len) return Status::Corruption("string length exceeds limit");
  CSCE_RETURN_IF_ERROR(Need(static_cast<size_t>(len)));
  s->assign(data_.substr(pos_, static_cast<size_t>(len)));
  pos_ += static_cast<size_t>(len);
  return Status::OK();
}

CSCE_WIRE_PRIMITIVE Status PayloadReader::VecU32(std::vector<uint32_t>* v) {
  uint32_t count = 0;
  CSCE_RETURN_IF_ERROR(U32(&count));
  // The count must be backed by bytes before the vector is sized.
  CSCE_RETURN_IF_ERROR(Need(static_cast<size_t>(count) * sizeof(uint32_t)));
  v->resize(count);
  std::memcpy(v->data(), data_.data() + pos_, count * sizeof(uint32_t));
  pos_ += static_cast<size_t>(count) * sizeof(uint32_t);
  return Status::OK();
}

Status PayloadReader::ExpectEnd() const {
  if (!AtEnd()) return Status::Corruption("trailing bytes in payload");
  return Status::OK();
}

// --- LoadRequest ------------------------------------------------------

std::string EncodeLoadRequest(const LoadRequest& msg) {
  PayloadWriter w;
  w.U32(msg.shard_id);
  w.U32(msg.num_shards);
  w.U32(msg.num_threads);
  w.U8(msg.inline_payload ? 1 : 0);
  if (msg.inline_payload) {
    w.Str(msg.ccsr_blob);
    w.VecU32(msg.owner);
  } else {
    w.Str(msg.ccsr_path);
    w.Str(msg.plan_path);
    w.U8(msg.use_mmap ? 1 : 0);
    w.U64(msg.memory_cap_bytes);
  }
  return w.Take();
}

Status DecodeLoadRequest(std::string_view payload, LoadRequest* out) {
  *out = LoadRequest{};
  PayloadReader r(payload);
  uint8_t inline_payload = 0;
  CSCE_RETURN_IF_ERROR(r.U32(&out->shard_id));
  CSCE_RETURN_IF_ERROR(r.U32(&out->num_shards));
  CSCE_RETURN_IF_ERROR(r.U32(&out->num_threads));
  CSCE_RETURN_IF_ERROR(r.U8(&inline_payload));
  out->inline_payload = inline_payload != 0;
  if (out->num_shards == 0 || out->shard_id >= out->num_shards) {
    return Status::Corruption("load request shard id out of range");
  }
  if (out->num_threads == 0 || out->num_threads > 4096) {
    return Status::Corruption("implausible worker thread count");
  }
  if (out->inline_payload) {
    CSCE_RETURN_IF_ERROR(r.Str(&out->ccsr_blob));
    CSCE_RETURN_IF_ERROR(r.VecU32(&out->owner));
    for (uint32_t o : out->owner) {
      if (o >= out->num_shards) {
        return Status::Corruption("owner table entry out of range");
      }
    }
  } else {
    CSCE_RETURN_IF_ERROR(r.Str(&out->ccsr_path, 1u << 16));
    CSCE_RETURN_IF_ERROR(r.Str(&out->plan_path, 1u << 16));
    uint8_t use_mmap = 0;
    CSCE_RETURN_IF_ERROR(r.U8(&use_mmap));
    out->use_mmap = use_mmap != 0;
    CSCE_RETURN_IF_ERROR(r.U64(&out->memory_cap_bytes));
  }
  return r.ExpectEnd();
}

// --- Graph / Plan -----------------------------------------------------

void EncodeGraph(const Graph& g, PayloadWriter* w) {
  w->U8(g.directed() ? 1 : 0);
  w->U32(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) w->U32(g.VertexLabel(v));
  w->U64(g.NumEdges());
  g.ForEachEdge([&](const Edge& e) {
    w->U32(e.src);
    w->U32(e.dst);
    w->U32(e.elabel);
  });
}

Status DecodeGraph(PayloadReader* r, Graph* out) {
  uint8_t directed = 0;
  uint32_t nv = 0;
  uint64_t ne = 0;
  CSCE_RETURN_IF_ERROR(r->U8(&directed));
  CSCE_RETURN_IF_ERROR(r->U32(&nv));
  if (nv > kMaxPatternVertices) {
    return Status::Corruption("implausible pattern vertex count");
  }
  GraphBuilder builder(directed != 0);
  for (uint32_t v = 0; v < nv; ++v) {
    uint32_t label = 0;
    CSCE_RETURN_IF_ERROR(r->U32(&label));
    if (label > kMaxLabelValue) {
      return Status::Corruption("implausible pattern vertex label");
    }
    builder.AddVertex(label);
  }
  CSCE_RETURN_IF_ERROR(r->U64(&ne));
  if (ne > kMaxPatternEdges) {
    return Status::Corruption("implausible pattern edge count");
  }
  for (uint64_t i = 0; i < ne; ++i) {
    uint32_t src = 0, dst = 0, elabel = 0;
    CSCE_RETURN_IF_ERROR(r->U32(&src));
    CSCE_RETURN_IF_ERROR(r->U32(&dst));
    CSCE_RETURN_IF_ERROR(r->U32(&elabel));
    if (src >= nv || dst >= nv) {
      return Status::Corruption("pattern edge endpoint out of range");
    }
    if (elabel > kMaxLabelValue) {
      return Status::Corruption("implausible pattern edge label");
    }
    builder.AddEdge(src, dst, elabel);
  }
  // GraphBuilder::Build re-validates (self-loops etc.) — the last line
  // of defense for wire-supplied patterns.
  return builder.Build(out);
}

namespace {

void EncodeClusterId(const ClusterId& id, PayloadWriter* w) {
  w->U32(id.src_label);
  w->U32(id.dst_label);
  w->U32(id.elabel);
  w->U8(id.directed ? 1 : 0);
}

Status DecodeClusterId(PayloadReader* r, ClusterId* out) {
  uint8_t directed = 0;
  CSCE_RETURN_IF_ERROR(r->U32(&out->src_label));
  CSCE_RETURN_IF_ERROR(r->U32(&out->dst_label));
  CSCE_RETURN_IF_ERROR(r->U32(&out->elabel));
  CSCE_RETURN_IF_ERROR(r->U8(&directed));
  out->directed = directed != 0;
  return Status::OK();
}

}  // namespace

void EncodePlan(const Plan& plan, PayloadWriter* w) {
  w->U8(static_cast<uint8_t>(plan.variant));
  w->U8(plan.use_sce ? 1 : 0);
  w->U8(static_cast<uint8_t>((plan.prune.aux ? 1 : 0) |
                             (plan.prune.ree ? 2 : 0) |
                             (plan.prune.lpi ? 4 : 0)));
  w->VecU32(plan.order);
  w->U32(static_cast<uint32_t>(plan.positions.size()));
  for (const PlanPosition& pos : plan.positions) {
    w->U32(pos.u);
    w->U32(pos.label);
    w->U32(static_cast<uint32_t>(pos.edges.size()));
    for (const EdgeConstraint& e : pos.edges) {
      w->U32(e.pos);
      EncodeClusterId(e.cluster, w);
      w->U8(e.incoming ? 1 : 0);
    }
    w->U32(static_cast<uint32_t>(pos.negations.size()));
    for (const NegConstraint& c : pos.negations) {
      w->U32(c.pos);
      w->U8(c.forbid_to ? 1 : 0);
      w->U8(c.forbid_from ? 1 : 0);
      w->U32(c.other_label);
    }
    w->VecU32(pos.deps);
    w->U32(static_cast<uint32_t>(pos.cache_alias));
    w->U8(pos.seed_valid ? 1 : 0);
    EncodeClusterId(pos.seed_cluster, w);
    w->U8(pos.seed_use_sources ? 1 : 0);
    w->U32(pos.min_out_degree);
    w->U32(pos.min_in_degree);
    w->U64(pos.lpi_req_out);
    w->U64(pos.lpi_req_in);
    w->U8(pos.aux_enabled ? 1 : 0);
    w->U8(pos.ree_enabled ? 1 : 0);
  }
}

Status DecodePlan(PayloadReader* r, Plan* out) {
  *out = Plan{};
  uint8_t variant = 0, use_sce = 0;
  CSCE_RETURN_IF_ERROR(r->U8(&variant));
  if (variant > 2) return Status::Corruption("unknown match variant");
  out->variant = static_cast<MatchVariant>(variant);
  CSCE_RETURN_IF_ERROR(r->U8(&use_sce));
  out->use_sce = use_sce != 0;
  uint8_t prune_bits = 0;
  CSCE_RETURN_IF_ERROR(r->U8(&prune_bits));
  if (prune_bits > 7) return Status::Corruption("unknown prune pass bits");
  out->prune.aux = (prune_bits & 1) != 0;
  out->prune.ree = (prune_bits & 2) != 0;
  out->prune.lpi = (prune_bits & 4) != 0;
  CSCE_RETURN_IF_ERROR(r->VecU32(&out->order));
  uint32_t npos = 0;
  CSCE_RETURN_IF_ERROR(r->U32(&npos));
  if (npos != out->order.size() || npos > kMaxPatternVertices) {
    return Status::Corruption("plan position count mismatch");
  }
  out->positions.resize(npos);
  for (uint32_t j = 0; j < npos; ++j) {
    PlanPosition& pos = out->positions[j];
    uint32_t nedges = 0, nnegs = 0, alias = 0;
    uint8_t flag = 0;
    CSCE_RETURN_IF_ERROR(r->U32(&pos.u));
    CSCE_RETURN_IF_ERROR(r->U32(&pos.label));
    CSCE_RETURN_IF_ERROR(r->U32(&nedges));
    if (nedges > npos) return Status::Corruption("implausible edge count");
    pos.edges.resize(nedges);
    for (EdgeConstraint& e : pos.edges) {
      CSCE_RETURN_IF_ERROR(r->U32(&e.pos));
      if (e.pos >= j) {
        return Status::Corruption("edge constraint not backward");
      }
      CSCE_RETURN_IF_ERROR(DecodeClusterId(r, &e.cluster));
      CSCE_RETURN_IF_ERROR(r->U8(&flag));
      e.incoming = flag != 0;
    }
    CSCE_RETURN_IF_ERROR(r->U32(&nnegs));
    if (nnegs > npos) return Status::Corruption("implausible negation count");
    pos.negations.resize(nnegs);
    for (NegConstraint& c : pos.negations) {
      CSCE_RETURN_IF_ERROR(r->U32(&c.pos));
      if (c.pos >= j) {
        return Status::Corruption("negation constraint not backward");
      }
      CSCE_RETURN_IF_ERROR(r->U8(&flag));
      c.forbid_to = flag != 0;
      CSCE_RETURN_IF_ERROR(r->U8(&flag));
      c.forbid_from = flag != 0;
      CSCE_RETURN_IF_ERROR(r->U32(&c.other_label));
    }
    CSCE_RETURN_IF_ERROR(r->VecU32(&pos.deps));
    for (size_t i = 0; i < pos.deps.size(); ++i) {
      if (pos.deps[i] >= j || (i > 0 && pos.deps[i] <= pos.deps[i - 1])) {
        return Status::Corruption("plan deps not sorted backward refs");
      }
    }
    CSCE_RETURN_IF_ERROR(r->U32(&alias));
    // 0xFFFFFFFF encodes "no alias" (-1); anything else must name an
    // earlier position.
    if (alias != 0xFFFFFFFFu && alias >= j) {
      return Status::Corruption("cache alias not an earlier position");
    }
    pos.cache_alias = static_cast<int32_t>(alias);
    CSCE_RETURN_IF_ERROR(r->U8(&flag));
    pos.seed_valid = flag != 0;
    CSCE_RETURN_IF_ERROR(DecodeClusterId(r, &pos.seed_cluster));
    CSCE_RETURN_IF_ERROR(r->U8(&flag));
    pos.seed_use_sources = flag != 0;
    CSCE_RETURN_IF_ERROR(r->U32(&pos.min_out_degree));
    CSCE_RETURN_IF_ERROR(r->U32(&pos.min_in_degree));
    CSCE_RETURN_IF_ERROR(r->U64(&pos.lpi_req_out));
    CSCE_RETURN_IF_ERROR(r->U64(&pos.lpi_req_in));
    CSCE_RETURN_IF_ERROR(r->U8(&flag));
    pos.aux_enabled = flag != 0;
    CSCE_RETURN_IF_ERROR(r->U8(&flag));
    pos.ree_enabled = flag != 0;
  }
  return Status::OK();
}

// --- PlanRequest ------------------------------------------------------

std::string EncodePlanRequest(const PlanRequest& msg) {
  PayloadWriter w;
  EncodeGraph(msg.pattern, &w);
  EncodePlan(msg.plan, &w);
  w.U8(static_cast<uint8_t>(msg.variant));
  w.U8(msg.verify_sce ? 1 : 0);
  w.U8(msg.emit_embeddings ? 1 : 0);
  w.F64(msg.time_limit_seconds);
  return w.Take();
}

Status DecodePlanRequest(std::string_view payload, PlanRequest* out) {
  *out = PlanRequest{};
  PayloadReader r(payload);
  CSCE_RETURN_IF_ERROR(DecodeGraph(&r, &out->pattern));
  CSCE_RETURN_IF_ERROR(DecodePlan(&r, &out->plan));
  uint8_t variant = 0, verify = 0, emit = 0;
  CSCE_RETURN_IF_ERROR(r.U8(&variant));
  if (variant > 2) return Status::Corruption("unknown match variant");
  out->variant = static_cast<MatchVariant>(variant);
  CSCE_RETURN_IF_ERROR(r.U8(&verify));
  out->verify_sce = verify != 0;
  CSCE_RETURN_IF_ERROR(r.U8(&emit));
  out->emit_embeddings = emit != 0;
  CSCE_RETURN_IF_ERROR(r.F64(&out->time_limit_seconds));
  // Cross-checks the plan against the pattern it travels with: every
  // position must name a pattern vertex with the advertised label.
  const uint32_t nv = out->pattern.NumVertices();
  if (out->plan.positions.size() > nv) {
    return Status::Corruption("plan longer than the pattern");
  }
  for (const PlanPosition& pos : out->plan.positions) {
    if (pos.u >= nv || out->pattern.VertexLabel(pos.u) != pos.label) {
      return Status::Corruption("plan position does not match the pattern");
    }
  }
  return r.ExpectEnd();
}

// --- TaskBatch --------------------------------------------------------

std::string EncodeTaskBatch(const TaskBatch& msg) {
  PayloadWriter w;
  w.U32(static_cast<uint32_t>(msg.tasks.size()));
  for (const ShardTask& t : msg.tasks) {
    w.U8(static_cast<uint8_t>(t.kind));
    w.U32(t.target_shard);
    w.U32(t.depth);
    w.VecU32(t.mapping);
    w.VecU32(t.candidates);
  }
  return w.Take();
}

Status DecodeTaskBatch(std::string_view payload, TaskBatch* out) {
  out->tasks.clear();
  PayloadReader r(payload);
  uint32_t count = 0;
  CSCE_RETURN_IF_ERROR(r.U32(&count));
  if (count > kMaxTasks) return Status::Corruption("implausible task count");
  // Conservative floor: each task needs at least its fixed fields.
  if (r.remaining() < static_cast<size_t>(count) * 17) {
    return Status::Corruption("task count not backed by payload bytes");
  }
  out->tasks.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ShardTask t;
    uint8_t kind = 0;
    CSCE_RETURN_IF_ERROR(r.U8(&kind));
    if (kind > 2) return Status::Corruption("unknown shard task kind");
    t.kind = static_cast<ShardTask::Kind>(kind);
    CSCE_RETURN_IF_ERROR(r.U32(&t.target_shard));
    CSCE_RETURN_IF_ERROR(r.U32(&t.depth));
    CSCE_RETURN_IF_ERROR(r.VecU32(&t.mapping));
    CSCE_RETURN_IF_ERROR(r.VecU32(&t.candidates));
    if (t.depth == 0 || t.mapping.size() != t.depth) {
      return Status::Corruption("task mapping does not match its depth");
    }
    if (t.kind != ShardTask::Kind::kVerify && !t.candidates.empty()) {
      return Status::Corruption("unexpected candidates on non-verify task");
    }
    out->tasks.push_back(std::move(t));
  }
  return r.ExpectEnd();
}

// --- ResultMsg --------------------------------------------------------

std::string EncodeResultMsg(const ResultMsg& msg) {
  PayloadWriter w;
  w.U64(msg.embeddings);
  w.U64(msg.search_nodes);
  w.U64(msg.candidate_sets_computed);
  w.U64(msg.candidate_sets_reused);
  w.U64(msg.morsels_claimed);
  w.U8(msg.timed_out ? 1 : 0);
  w.U8(msg.cancelled ? 1 : 0);
  w.U8(msg.limit_reached ? 1 : 0);
  w.F64(msg.seconds);
  w.U32(msg.embedding_width);
  w.VecU32(msg.embedding_data);
  return w.Take();
}

Status DecodeResultMsg(std::string_view payload, ResultMsg* out) {
  *out = ResultMsg{};
  PayloadReader r(payload);
  uint8_t flag = 0;
  CSCE_RETURN_IF_ERROR(r.U64(&out->embeddings));
  CSCE_RETURN_IF_ERROR(r.U64(&out->search_nodes));
  CSCE_RETURN_IF_ERROR(r.U64(&out->candidate_sets_computed));
  CSCE_RETURN_IF_ERROR(r.U64(&out->candidate_sets_reused));
  CSCE_RETURN_IF_ERROR(r.U64(&out->morsels_claimed));
  CSCE_RETURN_IF_ERROR(r.U8(&flag));
  out->timed_out = flag != 0;
  CSCE_RETURN_IF_ERROR(r.U8(&flag));
  out->cancelled = flag != 0;
  CSCE_RETURN_IF_ERROR(r.U8(&flag));
  out->limit_reached = flag != 0;
  CSCE_RETURN_IF_ERROR(r.F64(&out->seconds));
  CSCE_RETURN_IF_ERROR(r.U32(&out->embedding_width));
  CSCE_RETURN_IF_ERROR(r.VecU32(&out->embedding_data));
  if (out->embedding_width == 0 ? !out->embedding_data.empty()
                                : out->embedding_data.size() %
                                          out->embedding_width !=
                                      0) {
    return Status::Corruption("embedding data not a multiple of the width");
  }
  return r.ExpectEnd();
}

// --- StatsResult / ErrorMsg -------------------------------------------

std::string EncodeStatsResult(const StatsResult& msg) {
  PayloadWriter w;
  w.Str(msg.metrics_json);
  return w.Take();
}

Status DecodeStatsResult(std::string_view payload, StatsResult* out) {
  PayloadReader r(payload);
  CSCE_RETURN_IF_ERROR(r.Str(&out->metrics_json));
  return r.ExpectEnd();
}

std::string EncodeError(const Status& status) {
  PayloadWriter w;
  w.U32(static_cast<uint32_t>(status.code()));
  w.Str(status.message());
  return w.Take();
}

Status DecodeError(std::string_view payload, ErrorMsg* out) {
  PayloadReader r(payload);
  CSCE_RETURN_IF_ERROR(r.U32(&out->code));
  CSCE_RETURN_IF_ERROR(r.Str(&out->message, 1u << 20));
  return r.ExpectEnd();
}

Status ErrorToStatus(const ErrorMsg& msg) {
  if (msg.code == 0 || msg.code > static_cast<uint32_t>(
                                      StatusCode::kResourceExhausted)) {
    return Status::Corruption("peer error: " + msg.message);
  }
  return Status(static_cast<StatusCode>(msg.code), msg.message);
}

}  // namespace wire
}  // namespace shard
}  // namespace csce
