#ifndef CSCE_SHARD_SHARD_PLAN_H_
#define CSCE_SHARD_SHARD_PLAN_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace csce {
namespace shard {

/// How Build assigns data vertices to shards.
enum class PartitionStrategy : uint8_t {
  /// Deterministic hash of the vertex id: perfectly balanced, oblivious
  /// to structure (the baseline every distributed-matching paper uses).
  kHash = 0,
  /// Greedy streaming assignment (Linear Deterministic Greedy): place
  /// each vertex, highest degree first, on the shard holding most of
  /// its already-placed neighbors plus a same-label affinity bonus,
  /// discounted by shard fill. Co-locates cluster rows so fewer partial
  /// mappings cross shard boundaries.
  kLabelAware = 1,
};

const char* StrategyName(PartitionStrategy s);
bool ParseStrategy(const std::string& name, PartitionStrategy* out);

struct ShardPlanOptions {
  uint32_t num_shards = 1;
  PartitionStrategy strategy = PartitionStrategy::kHash;
};

/// The partitioning contract of the sharded engine: every vertex has
/// exactly one owning shard, and shard s materializes every edge with
/// at least one endpoint owned by s (1-hop replication). Owned vertices
/// therefore see complete adjacency rows and exact local degrees inside
/// their shard CCSR — the property the shard-mode executor's
/// ship-then-verify routing relies on. Non-owned endpoints dragged in
/// by boundary edges are the shard's replicas.
///
/// Vertex ids are global in every shard (the vertex set is never
/// renumbered), so partial mappings travel between shards verbatim.
class ShardPlan {
 public:
  ShardPlan() = default;

  /// Deterministic: identical inputs produce identical plans.
  static ShardPlan Build(const Graph& g, const ShardPlanOptions& options);

  uint32_t num_shards() const { return num_shards_; }
  PartitionStrategy strategy() const { return strategy_; }
  uint32_t NumVertices() const { return static_cast<uint32_t>(owner_.size()); }

  uint32_t Owner(VertexId v) const { return owner_[v]; }
  /// Per-vertex owning shard, indexed by vertex id (what workers feed
  /// into ShardSpec::owner).
  const std::vector<uint32_t>& owners() const { return owner_; }

  /// Vertices replicated into shard s: present in its subgraph through
  /// a boundary edge but owned elsewhere. Sorted ascending.
  const std::vector<std::vector<VertexId>>& replicas() const {
    return replicas_;
  }
  /// Edges whose endpoints are owned by two different shards (each is
  /// stored in both owners' subgraphs).
  uint64_t boundary_edges() const { return boundary_edges_; }
  /// Vertices owned by shard s.
  uint64_t OwnedCount(uint32_t s) const { return owned_counts_[s]; }

  /// Shard s's subgraph: all vertices (global ids, original labels) and
  /// exactly the edges incident to a vertex owned by s. `g` must be the
  /// graph the plan was built from.
  Status ExtractShard(const Graph& g, uint32_t s, Graph* out) const;

  /// Sidecar persistence ("CSPL" binary, next to the CCSR artifacts).
  Status Save(std::ostream& out) const;
  Status SaveToFile(const std::string& path) const;
  static Status Load(std::istream& in, ShardPlan* out);
  static Status LoadFromFile(const std::string& path, ShardPlan* out);

  /// Conventional artifact names next to a CCSR at `base`:
  /// "<base>.shardplan" and "<base>.shard<k>".
  static std::string PlanPath(const std::string& base);
  static std::string ShardCcsrPath(const std::string& base, uint32_t s);

  friend bool operator==(const ShardPlan&, const ShardPlan&) = default;

 private:
  void FinishTables(const Graph& g);

  uint32_t num_shards_ = 0;
  PartitionStrategy strategy_ = PartitionStrategy::kHash;
  std::vector<uint32_t> owner_;
  std::vector<std::vector<VertexId>> replicas_;
  std::vector<uint64_t> owned_counts_;
  uint64_t boundary_edges_ = 0;
};

}  // namespace shard
}  // namespace csce

#endif  // CSCE_SHARD_SHARD_PLAN_H_
