#ifndef CSCE_SHARD_SUPERVISION_H_
#define CSCE_SHARD_SUPERVISION_H_

#include <cstdint>
#include <functional>

namespace csce {
namespace shard {

/// Knobs for the coordinator's worker supervision. Defaults suit an
/// interactive serve session; tests shrink every interval to
/// milliseconds so injected faults resolve instantly.
struct SupervisionOptions {
  /// Master switch: false = any worker failure fails the query
  /// immediately (the pre-supervision behavior, still the right call
  /// when the deployment has no way to restart a worker).
  bool enabled = true;

  /// Read deadline applied to every reply the coordinator waits for
  /// during a BSP round. A worker that exceeds it is treated as hung.
  /// 0 = wait forever.
  double round_timeout_seconds = 30.0;

  /// Read deadline for the kPong answer to a heartbeat kPing. Pings
  /// are synchronous probes sent between rounds (the transport is
  /// strict request/reply, so there is no background pinger thread).
  double heartbeat_timeout_seconds = 5.0;

  /// Exponential backoff between restart attempts: first retry waits
  /// `backoff_initial_seconds`, doubling per consecutive failure up to
  /// `backoff_max_seconds`.
  double backoff_initial_seconds = 0.05;
  double backoff_max_seconds = 2.0;

  /// A failure this long after the previous one starts a fresh burst
  /// (the worker was healthy in between; don't punish it with the
  /// accumulated backoff).
  double backoff_reset_seconds = 30.0;

  /// Consecutive failures tolerated per worker before the coordinator
  /// gives up on the query. 0 = never restart.
  uint32_t max_restarts = 3;

  /// Injectable sleep so recovery tests don't wait real backoff time;
  /// null = std::this_thread::sleep_for.
  std::function<void(double seconds)> sleep_fn;
  /// Injectable monotonic clock (seconds); null = steady_clock.
  std::function<double()> clock_fn;
};

/// Per-worker backoff/restart state machine. Pure: time flows in as
/// explicit `now` doubles, so unit tests drive it with a fake clock and
/// never sleep. The coordinator owns one per shard.
///
/// States: healthy --OnFailure--> backing-off --OnSuccess--> healthy,
/// with OnFailure returning kGiveUp once a burst exceeds max_restarts.
class BackoffState {
 public:
  explicit BackoffState(const SupervisionOptions& opts)
      : initial_(opts.backoff_initial_seconds),
        max_(opts.backoff_max_seconds),
        reset_after_(opts.backoff_reset_seconds),
        budget_(opts.max_restarts) {}

  enum class Decision : uint8_t { kRestart, kGiveUp };

  /// The worker failed at time `now`. kRestart: wait *delay_seconds,
  /// then restart (counted against the burst budget). kGiveUp: the
  /// burst exhausted max_restarts; fail the query.
  Decision OnFailure(double now, double* delay_seconds);

  /// The worker completed a round/probe; ends the current burst.
  void OnSuccess(double now);

  uint32_t consecutive_failures() const { return consecutive_; }
  uint64_t total_restarts() const { return total_restarts_; }

 private:
  const double initial_;
  const double max_;
  const double reset_after_;
  const uint32_t budget_;

  uint32_t consecutive_ = 0;
  uint64_t total_restarts_ = 0;
  double last_failure_at_ = 0.0;
  bool ever_failed_ = false;
};

/// Real-clock helpers backing the injectable hooks: monotonic seconds
/// and a blocking sleep.
double MonotonicSeconds();
void SleepSeconds(double seconds);

}  // namespace shard
}  // namespace csce

#endif  // CSCE_SHARD_SUPERVISION_H_
