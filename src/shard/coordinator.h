#ifndef CSCE_SHARD_COORDINATOR_H_
#define CSCE_SHARD_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ccsr/ccsr.h"
#include "graph/graph.h"
#include "graph/variant.h"
#include "plan/planner.h"
#include "shard/shard_plan.h"
#include "shard/transport.h"
#include "shard/wire.h"
#include "util/status.h"

namespace csce {
namespace shard {

/// Options for one distributed query (the sharded subset of
/// MatchOptions: embedding limits and cooperative cancellation are not
/// routed across shards yet — csce_serve warns and ignores them).
struct CoordinatorOptions {
  MatchVariant variant = MatchVariant::kEdgeInduced;
  PlanOptions plan;
  double time_limit_seconds = 0.0;
  /// Ship every embedding back to the coordinator (required by
  /// self_check; otherwise only counts cross the wire).
  bool collect_embeddings = false;
  /// Ground-truth mode: ValidatePlan on the compiled plan, verify_sce in
  /// every worker, and every shipped embedding re-verified against the
  /// FULL data graph. (Workers cannot verify embeddings themselves — an
  /// embedding may close an edge between two vertices neither of which
  /// the worker owns, and its shard CCSR lacks that arc by design.)
  bool self_check = false;
};

/// Merged outcome of one distributed query.
struct ShardResult {
  uint64_t embeddings = 0;
  bool timed_out = false;
  bool cancelled = false;
  bool limit_reached = false;

  uint64_t search_nodes = 0;
  uint64_t candidate_sets_computed = 0;
  uint64_t candidate_sets_reused = 0;
  uint64_t morsels_claimed = 0;

  double plan_seconds = 0.0;       // coordinator-side compile
  double enumerate_seconds = 0.0;  // wall time of the round loop
  double worker_busy_seconds = 0.0;  // sum of per-executor busy time

  /// Round-loop shape: EXTEND rounds driven and cross-shard tasks routed
  /// (both 0 when every embedding stayed shard-local).
  uint32_t rounds = 0;
  uint64_t tasks_routed = 0;

  uint64_t embeddings_verified = 0;  // self_check only

  /// Collected embeddings when CoordinatorOptions::collect_embeddings:
  /// `embeddings * embedding_width` vertex ids, indexed by pattern
  /// vertex per row. Shard-interleaved order, not sorted.
  uint32_t embedding_width = 0;
  std::vector<VertexId> embedding_data;

  /// Per-shard finish messages, for scaling diagnostics.
  std::vector<wire::ResultMsg> per_shard;
};

/// Drives N shard workers through the wire protocol: LOAD once, then
/// per query PLAN -> ROOT -> EXTEND rounds (BSP: all emissions of round
/// k are routed before round k+1 starts) -> FINISH merge.
///
/// The coordinator keeps the FULL data graph's CCSR: plans are compiled
/// once against global statistics and shipped to every worker, and the
/// self-check verifies shipped embeddings against the complete graph.
/// Workers may be threads (loopback transports, see InProcessCluster)
/// or forked processes (fd transports, see csce_serve --workers).
class ShardCoordinator {
 public:
  /// `full` is the complete (unsharded) CCSR; must outlive the
  /// coordinator.
  explicit ShardCoordinator(const Ccsr* full) : full_(full) {}

  /// Worker `i` of the eventual cluster; attach all workers before
  /// Load*. Transport must be connected to a serving ShardWorker.
  void AttachWorker(std::unique_ptr<Transport> transport);
  uint32_t num_shards() const {
    return static_cast<uint32_t>(workers_.size());
  }

  /// LOADs every worker from on-disk artifacts produced by
  /// `csce_build --shards=N` (base path + ".shardplan" / ".shard<k>").
  Status LoadFromFiles(const std::string& base_path,
                       uint32_t threads_per_worker);
  /// LOADs every worker with an inline serialized shard CCSR + the
  /// ownership table (in-process clusters; no filesystem round trip).
  Status LoadInline(const std::vector<uint32_t>& owner,
                    const std::vector<std::string>& ccsr_blobs,
                    uint32_t threads_per_worker);

  /// Runs one query to completion across all workers.
  Status Execute(const Graph& pattern, const CoordinatorOptions& options,
                 ShardResult* out);

  /// Fetches each worker's csce.metrics.v1 document (kStats). In
  /// multi-process clusters these are distinct registries to merge; in
  /// in-process clusters all workers share this process's registry.
  Status CollectMetrics(std::vector<std::string>* docs);

  /// Sends kShutdown everywhere and closes the transports. Idempotent;
  /// best-effort (a dead worker is not an error here).
  void Shutdown();

 private:
  /// Sends `requests[i]` to worker `targets[i]` (all writes first, then
  /// all reads — the fd transports would deadlock otherwise once a
  /// pipe buffer fills), expecting `want` replies. kError replies
  /// surface as the carried Status.
  Status RoundTrip(const std::vector<uint32_t>& targets,
                   const std::vector<wire::Frame>& requests,
                   wire::MsgType want, std::vector<wire::Frame>* replies);

  // Mutex-free by design: the coordinator is driven by one thread (the
  // strictly sequential RoundTrip is what prevents fd-transport
  // deadlock), so none of this state is ever shared.
  const Ccsr* full_;
  std::vector<std::unique_ptr<Transport>> workers_;
  bool loaded_ = false;
};

class ShardWorker;  // worker.h is a coordinator.cc-only dependency

/// A self-contained sharded engine inside one process: partitions the
/// graph, builds per-shard CCSRs, runs one ShardWorker thread per shard
/// over loopback transports and wires a coordinator to them. The
/// cross-check tests and csce_serve --shards (without --workers) run on
/// this.
class InProcessCluster {
 public:
  /// `g` is the original data graph, `full` its complete CCSR (both
  /// must outlive the cluster). Builds the ShardPlan, extracts and
  /// CCSR-builds every shard, spawns the worker threads and LOADs them.
  static Status Create(const Graph& g, const Ccsr* full, uint32_t num_shards,
                       PartitionStrategy strategy,
                       uint32_t threads_per_worker,
                       std::unique_ptr<InProcessCluster>* out);

  ~InProcessCluster();

  InProcessCluster(const InProcessCluster&) = delete;
  InProcessCluster& operator=(const InProcessCluster&) = delete;

  ShardCoordinator& coordinator() { return *coordinator_; }
  const ShardPlan& shard_plan() const { return shard_plan_; }

  /// Constructor passkey: only Create() can instantiate (make_unique
  /// needs a public constructor).
  struct Passkey {
   private:
    friend class InProcessCluster;
    Passkey() = default;
  };
  explicit InProcessCluster(Passkey);

 private:

  ShardPlan shard_plan_;
  std::unique_ptr<ShardCoordinator> coordinator_;
  std::vector<std::unique_ptr<ShardWorker>> worker_impls_;
  std::vector<std::thread> worker_threads_;
};

}  // namespace shard
}  // namespace csce

#endif  // CSCE_SHARD_COORDINATOR_H_
