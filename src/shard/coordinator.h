#ifndef CSCE_SHARD_COORDINATOR_H_
#define CSCE_SHARD_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ccsr/ccsr.h"
#include "graph/graph.h"
#include "graph/variant.h"
#include "obs/metrics.h"
#include "plan/planner.h"
#include "shard/fault.h"
#include "shard/shard_plan.h"
#include "shard/supervision.h"
#include "shard/transport.h"
#include "shard/wire.h"
#include "util/status.h"

namespace csce {
namespace shard {

/// Options for one distributed query (the sharded subset of
/// MatchOptions: embedding limits and cooperative cancellation are not
/// routed across shards yet — csce_serve warns and ignores them).
struct CoordinatorOptions {
  MatchVariant variant = MatchVariant::kEdgeInduced;
  PlanOptions plan;
  double time_limit_seconds = 0.0;
  /// Ship every embedding back to the coordinator (required by
  /// self_check; otherwise only counts cross the wire).
  bool collect_embeddings = false;
  /// Ground-truth mode: ValidatePlan on the compiled plan, verify_sce in
  /// every worker, and every shipped embedding re-verified against the
  /// FULL data graph. (Workers cannot verify embeddings themselves — an
  /// embedding may close an edge between two vertices neither of which
  /// the worker owns, and its shard CCSR lacks that arc by design.)
  bool self_check = false;
};

/// Merged outcome of one distributed query.
struct ShardResult {
  uint64_t embeddings = 0;
  bool timed_out = false;
  bool cancelled = false;
  bool limit_reached = false;

  uint64_t search_nodes = 0;
  uint64_t candidate_sets_computed = 0;
  uint64_t candidate_sets_reused = 0;
  uint64_t morsels_claimed = 0;

  double plan_seconds = 0.0;       // coordinator-side compile
  double enumerate_seconds = 0.0;  // wall time of the round loop
  double worker_busy_seconds = 0.0;  // sum of per-executor busy time

  /// Round-loop shape: EXTEND rounds driven and cross-shard tasks routed
  /// (both 0 when every embedding stayed shard-local).
  uint32_t rounds = 0;
  uint64_t tasks_routed = 0;

  /// Supervision activity during this query: worker restarts performed
  /// and request frames re-sent to a replacement. Both 0 on a healthy
  /// run; the fault-injection tests assert they fire.
  uint64_t worker_restarts = 0;
  uint64_t frames_retried = 0;

  uint64_t embeddings_verified = 0;  // self_check only

  /// Collected embeddings when CoordinatorOptions::collect_embeddings:
  /// `embeddings * embedding_width` vertex ids, indexed by pattern
  /// vertex per row. Shard-interleaved order, not sorted.
  uint32_t embedding_width = 0;
  std::vector<VertexId> embedding_data;

  /// Per-shard finish messages, for scaling diagnostics.
  std::vector<wire::ResultMsg> per_shard;
};

/// Produces a fresh, connected transport to a brand-new worker for
/// `shard` — the deployment-specific half of recovery. In-process
/// clusters spawn a new ShardWorker thread; csce_serve re-forks. A
/// coordinator without a factory supervises (timeouts, structured
/// errors) but cannot restart anyone.
using WorkerFactory =
    std::function<Status(uint32_t shard, std::unique_ptr<Transport>* out)>;

/// Drives N shard workers through the wire protocol: LOAD once, then
/// per query PLAN -> ROOT -> EXTEND rounds (BSP: all emissions of round
/// k are routed before round k+1 starts) -> FINISH merge.
///
/// The coordinator keeps the FULL data graph's CCSR: plans are compiled
/// once against global statistics and shipped to every worker, and the
/// self-check verifies shipped embeddings against the complete graph.
/// Workers may be threads (loopback transports, see InProcessCluster)
/// or forked processes (fd transports, see csce_serve --workers).
///
/// Fault tolerance (see DESIGN.md "Fault tolerance"): every request
/// frame whose reply has been consumed is journaled per worker. When a
/// worker dies, hangs past a deadline, or answers garbage, the
/// coordinator backs off, asks the WorkerFactory for a replacement,
/// replays the journal into it (replies discarded — their emissions
/// were already routed), then re-sends the in-flight frame and uses its
/// reply. The dead incarnation's partial counts never reached the merge
/// (only kFinish replies are merged, one per worker), so recovered runs
/// stay byte-identical to single-node: exactly-once by deterministic
/// replay.
class ShardCoordinator {
 public:
  /// `full` is the complete (unsharded) CCSR; must outlive the
  /// coordinator.
  explicit ShardCoordinator(const Ccsr* full);

  /// Worker `i` of the eventual cluster; attach all workers before
  /// Load*. Transport must be connected to a serving ShardWorker.
  void AttachWorker(std::unique_ptr<Transport> transport);
  uint32_t num_shards() const {
    return static_cast<uint32_t>(workers_.size());
  }

  /// Supervision knobs; call before Load* (the backoff state machines
  /// are built from these at load time).
  void set_supervision(const SupervisionOptions& opts) { sup_ = opts; }
  const SupervisionOptions& supervision() const { return sup_; }
  /// Enables worker restarts. Without a factory a failed worker is
  /// terminal for the query (and counts into shard.workers_lost).
  void set_worker_factory(WorkerFactory factory) {
    factory_ = std::move(factory);
  }

  /// LOADs every worker from on-disk artifacts produced by
  /// `csce_build --shards=N` (base path + ".shardplan" / ".shard<k>").
  /// Performs the versioned kHello handshake with every worker first.
  /// With `use_mmap`, workers map their (v2) shard artifact instead of
  /// streaming it into memory; `memory_cap_bytes` bounds each worker's
  /// paging-advice window (0 = prefetch without eviction).
  Status LoadFromFiles(const std::string& base_path,
                       uint32_t threads_per_worker, bool use_mmap = false,
                       uint64_t memory_cap_bytes = 0);
  /// LOADs every worker with an inline serialized shard CCSR + the
  /// ownership table (in-process clusters; no filesystem round trip).
  Status LoadInline(const std::vector<uint32_t>& owner,
                    const std::vector<std::string>& ccsr_blobs,
                    uint32_t threads_per_worker);

  /// Synchronous kPing/kPong health probe of every worker, recovering
  /// any that fail. Run automatically at the start of every Execute
  /// when supervision is enabled.
  Status PingWorkers();

  /// Lifetime totals across load and every query (ShardResult carries
  /// the per-query deltas; load/handshake-time recoveries only show up
  /// here). Read from the coordinator's driving thread.
  uint64_t restarts_total() const { return restarts_total_; }
  uint64_t retries_total() const { return retries_total_; }

  /// Runs one query to completion across all workers.
  Status Execute(const Graph& pattern, const CoordinatorOptions& options,
                 ShardResult* out);

  /// Fetches each worker's csce.metrics.v1 document (kStats). In
  /// multi-process clusters these are distinct registries to merge; in
  /// in-process clusters all workers share this process's registry.
  Status CollectMetrics(std::vector<std::string>* docs);

  /// Sends kShutdown everywhere and closes the transports. Idempotent;
  /// best-effort (a dead worker is not an error here).
  void Shutdown();

 private:
  /// Per-reply payload validation hook: decode the expected payload so
  /// a byzantine reply (e.g. a truncated task batch) is classified as a
  /// worker failure inside the recovery loop, not a hard Corruption at
  /// the call site.
  using PayloadCheck = std::function<Status(size_t index, wire::Frame* reply)>;

  /// Sends `requests[i]` to worker `targets[i]` (all writes first, then
  /// all reads — the fd transports would deadlock otherwise once a
  /// pipe buffer fills), expecting `want` replies. kError replies
  /// surface as the carried Status; transport failures and garbage
  /// replies go through recovery. `journal`: append each request to its
  /// worker's replay journal once its reply has been consumed.
  Status RoundTrip(const std::vector<uint32_t>& targets,
                   const std::vector<wire::Frame>& requests,
                   wire::MsgType want, std::vector<wire::Frame>* replies,
                   bool journal = false,
                   const PayloadCheck& check = nullptr);

  /// Receives worker `s`'s reply to `request`, recovering (restart +
  /// replay + re-send) until it has a valid reply or the restart budget
  /// is spent. Handler-level kError replies return immediately — the
  /// worker is alive and deterministic, a restart would just repeat the
  /// error.
  Status AwaitReply(uint32_t s, const wire::Frame& request,
                    wire::MsgType want,
                    const std::function<Status(wire::Frame*)>& check,
                    wire::Frame* reply);

  /// Sends `frame` to worker `s`, restarting it until the send lands.
  Status SendWithRecovery(uint32_t s, const wire::Frame& frame);

  /// Backoff -> factory -> handshake -> journal replay; loops until a
  /// replacement serves or the budget is exhausted (kGiveUp). `cause`
  /// is the failure that triggered recovery, kept for the error text.
  Status RestartWorker(uint32_t s, const Status& cause);

  /// kHello/kHelloAck exchange with version check.
  Status Handshake(uint32_t s);
  Status HandshakeAll();

  /// Re-sends worker `s`'s journal into a fresh replacement, discarding
  /// replies (their emissions were routed before the failure).
  Status ReplayJournal(uint32_t s);

  void AppendJournal(uint32_t s, const wire::Frame& frame);

  double Now() const;
  void SleepFor(double seconds) const;

  // Mutex-free by design: the coordinator is driven by one thread (the
  // strictly sequential RoundTrip is what prevents fd-transport
  // deadlock), so none of this state is ever shared. Recovery happens
  // inline on the same thread.
  const Ccsr* full_;
  std::vector<std::unique_ptr<Transport>> workers_;
  bool loaded_ = false;

  SupervisionOptions sup_;
  WorkerFactory factory_;
  std::vector<BackoffState> backoff_;
  /// Replay journals: the kLoad prefix survives across queries; the
  /// query part (kPlan + kRoot/kExtend frames) resets at each Execute.
  std::vector<std::vector<wire::Frame>> load_journal_;
  std::vector<std::vector<wire::Frame>> query_journal_;

  /// Supervision activity, also mirrored into ShardResult per query.
  uint64_t restarts_total_ = 0;
  uint64_t retries_total_ = 0;

  obs::Counter restarts_metric_;
  obs::Counter retries_metric_;
  obs::Counter heartbeat_timeouts_metric_;
  obs::Counter workers_lost_metric_;
  obs::Counter handshake_failures_metric_;
  obs::Histogram round_seconds_metric_;
};

class ShardWorker;  // worker.h is a coordinator.cc-only dependency

/// How InProcessCluster wires its worker threads to the coordinator.
enum class ClusterTransport : uint8_t {
  /// Environment-driven: CSCE_SHARD_TRANSPORT=tcp selects kTcp, any
  /// other value (or unset) kLoopback. The CI shard-tcp leg runs the
  /// whole suite over TCP this way without touching test code.
  kAuto,
  kLoopback,
  /// AF_UNIX socketpair through the FdTransport syscall path — the
  /// same wiring csce_serve uses for forked workers, minus the fork.
  /// The bench baseline TCP overhead is measured against.
  kUnix,
  kTcp,
};

/// Optional knobs for InProcessCluster::Create.
struct InProcessClusterOptions {
  SupervisionOptions supervision;
  /// Faults applied to the worker side of every transport (shared
  /// across worker incarnations so one-shot faults never re-fire after
  /// a restart). Null: no faults.
  std::shared_ptr<FaultInjector> faults;
  ClusterTransport transport = ClusterTransport::kAuto;
  /// Non-empty: workers LOAD from on-disk artifacts at this base path
  /// (`csce_build --shards=N` layout) instead of inline blobs built
  /// from `g`; Create still builds the ShardPlan from `g`, so the
  /// artifacts must have been produced with the same partitioning.
  std::string load_base_path;
  /// With `load_base_path`: workers mmap their (v2) shard artifact.
  bool use_mmap = false;
  /// With `use_mmap`: per-worker paging-advice budget in bytes.
  uint64_t memory_cap_bytes = 0;
};

/// A self-contained sharded engine inside one process: partitions the
/// graph, builds per-shard CCSRs, runs one ShardWorker thread per shard
/// over loopback (or TCP-loopback) transports and wires a supervised
/// coordinator to them. The cross-check tests and csce_serve --shards
/// (without --workers) run on this. Its WorkerFactory spawns
/// replacement worker threads, so every recovery path is exercisable
/// in-process.
class InProcessCluster {
 public:
  /// `g` is the original data graph, `full` its complete CCSR (both
  /// must outlive the cluster). Builds the ShardPlan, extracts and
  /// CCSR-builds every shard, spawns the worker threads and LOADs them.
  static Status Create(const Graph& g, const Ccsr* full, uint32_t num_shards,
                       PartitionStrategy strategy,
                       uint32_t threads_per_worker,
                       std::unique_ptr<InProcessCluster>* out);
  static Status Create(const Graph& g, const Ccsr* full, uint32_t num_shards,
                       PartitionStrategy strategy,
                       uint32_t threads_per_worker,
                       const InProcessClusterOptions& opts,
                       std::unique_ptr<InProcessCluster>* out);

  ~InProcessCluster();

  InProcessCluster(const InProcessCluster&) = delete;
  InProcessCluster& operator=(const InProcessCluster&) = delete;

  ShardCoordinator& coordinator() { return *coordinator_; }
  const ShardPlan& shard_plan() const { return shard_plan_; }

  /// Constructor passkey: only Create() can instantiate (make_unique
  /// needs a public constructor).
  struct Passkey {
   private:
    friend class InProcessCluster;
    Passkey() = default;
  };
  explicit InProcessCluster(Passkey);

 private:
  /// Spawns a fresh ShardWorker thread for `shard` and returns the
  /// coordinator-side transport; both the initial population and the
  /// coordinator's WorkerFactory go through here. Old incarnations'
  /// threads stay in worker_threads_ until destruction (they exit as
  /// soon as their transport dies).
  Status SpawnWorker(uint32_t shard, std::unique_ptr<Transport>* out);

  ClusterTransport transport_ = ClusterTransport::kLoopback;
  std::shared_ptr<FaultInjector> faults_;
  ShardPlan shard_plan_;
  std::unique_ptr<ShardCoordinator> coordinator_;
  std::vector<std::unique_ptr<ShardWorker>> worker_impls_;
  std::vector<std::thread> worker_threads_;
};

}  // namespace shard
}  // namespace csce

#endif  // CSCE_SHARD_COORDINATOR_H_
