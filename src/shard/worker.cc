#include "shard/worker.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "ccsr/ccsr_io.h"
#include "engine/matcher.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace csce {
namespace shard {
namespace {

/// Same policy as the parallel runtime's AutoMorselSize: ~8 morsels per
/// thread, clamped so tiny root sets stay serial-cheap and huge ones
/// don't contend on the claim counter.
size_t RootMorselSize(size_t roots, uint32_t threads) {
  size_t m = roots / (static_cast<size_t>(threads) * 8);
  return std::clamp<size_t>(m, 1, 4096);
}

}  // namespace

Status ShardWorker::Serve(Transport& transport) {
  for (;;) {
    wire::Frame req;
    CSCE_RETURN_IF_ERROR(transport.Recv(&req));

    wire::Frame reply;
    Status hs = Status::OK();
    bool shutdown = false;
    switch (static_cast<wire::MsgType>(req.type)) {
      case wire::MsgType::kLoad: {
        wire::LoadRequest msg;
        hs = wire::DecodeLoadRequest(req.payload, &msg);
        if (hs.ok()) hs = HandleLoad(msg);
        reply.type = static_cast<uint32_t>(wire::MsgType::kOk);
        break;
      }
      case wire::MsgType::kPlan: {
        wire::PlanRequest msg;
        hs = wire::DecodePlanRequest(req.payload, &msg);
        if (hs.ok()) hs = HandlePlan(msg);
        reply.type = static_cast<uint32_t>(wire::MsgType::kOk);
        break;
      }
      case wire::MsgType::kRoot: {
        wire::TaskBatch out;
        hs = RunRound(nullptr, &out);
        reply.type = static_cast<uint32_t>(wire::MsgType::kTaskBatch);
        if (hs.ok()) reply.payload = wire::EncodeTaskBatch(out);
        break;
      }
      case wire::MsgType::kExtend: {
        wire::TaskBatch in;
        hs = wire::DecodeTaskBatch(req.payload, &in);
        wire::TaskBatch out;
        if (hs.ok()) hs = RunRound(&in, &out);
        reply.type = static_cast<uint32_t>(wire::MsgType::kTaskBatch);
        if (hs.ok()) reply.payload = wire::EncodeTaskBatch(out);
        break;
      }
      case wire::MsgType::kFinish: {
        wire::ResultMsg res;
        hs = HandleFinish(&res);
        reply.type = static_cast<uint32_t>(wire::MsgType::kResult);
        if (hs.ok()) reply.payload = wire::EncodeResultMsg(res);
        break;
      }
      case wire::MsgType::kStats: {
        reply.type = static_cast<uint32_t>(wire::MsgType::kStatsResult);
        reply.payload = wire::EncodeStatsResult(CollectStats());
        break;
      }
      case wire::MsgType::kHello: {
        wire::HelloMsg msg;
        hs = wire::DecodeHello(req.payload, &msg);
        if (hs.ok() && msg.protocol_version != wire::kProtocolVersion) {
          hs = Status::InvalidArgument(
              "shard worker: protocol version mismatch: peer speaks v" +
              std::to_string(msg.protocol_version) + ", this build v" +
              std::to_string(wire::kProtocolVersion));
        }
        // Always answer with our own version; the coordinator decides.
        wire::HelloMsg ack;
        ack.peer_role = "worker";
        reply.type = static_cast<uint32_t>(wire::MsgType::kHelloAck);
        if (hs.ok()) reply.payload = wire::EncodeHello(ack);
        break;
      }
      case wire::MsgType::kPing: {
        reply.type = static_cast<uint32_t>(wire::MsgType::kPong);
        break;
      }
      case wire::MsgType::kShutdown: {
        reply.type = static_cast<uint32_t>(wire::MsgType::kOk);
        shutdown = true;
        break;
      }
      default:
        hs = Status::InvalidArgument("shard worker: unknown frame type " +
                                     std::to_string(req.type));
        break;
    }
    if (!hs.ok()) {
      // Handler failures are protocol payload, not connection failures:
      // report and keep serving so the coordinator can decide.
      reply.type = static_cast<uint32_t>(wire::MsgType::kError);
      reply.payload = wire::EncodeError(hs);
    }
    CSCE_RETURN_IF_ERROR(transport.Send(reply));
    if (shutdown) return Status::OK();
  }
}

Status ShardWorker::HandleLoad(const wire::LoadRequest& req) {
  if (req.num_shards == 0) {
    return Status::InvalidArgument("shard worker: num_shards must be >= 1");
  }
  if (req.shard_id >= req.num_shards) {
    return Status::InvalidArgument("shard worker: shard_id out of range");
  }
  shard_id_ = req.shard_id;
  num_shards_ = req.num_shards;
  num_threads_ = std::max<uint32_t>(1, req.num_threads);
  // A failed re-load must not leave the worker serving half-replaced
  // state (worse under mmap: ccsr_ could borrow a dropped mapping).
  loaded_ = false;
  query_active_ = false;

  if (req.inline_payload) {
    mmap_.reset();  // drop any previous out-of-core mapping
    std::istringstream in(req.ccsr_blob);
    CSCE_RETURN_IF_ERROR(LoadCcsrFromStream(in, &ccsr_));
    owner_ = req.owner;
  } else {
    if (req.use_mmap) {
      // Out-of-core shard: map the v2 artifact instead of streaming it.
      // Open() runs the structural checks (size pinning, directory CRC,
      // per-cluster bounds) only — a deep Validate() would stream the
      // whole payload through the page cache and defeat the O(1) open;
      // the build/crosscheck path covers semantic validation.
      MmapCcsr::Options mopts;
      mopts.memory_cap_bytes = req.memory_cap_bytes;
      mmap_.reset();
      CSCE_RETURN_IF_ERROR(MmapCcsr::Open(req.ccsr_path, mopts, &mmap_));
      ccsr_ = mmap_->Release();
    } else {
      mmap_.reset();
      CSCE_RETURN_IF_ERROR(LoadCcsrFromFile(req.ccsr_path, &ccsr_));
    }
    ShardPlan plan;
    CSCE_RETURN_IF_ERROR(ShardPlan::LoadFromFile(req.plan_path, &plan));
    if (plan.num_shards() != num_shards_) {
      return Status::InvalidArgument(
          "shard worker: shard plan was built for " +
          std::to_string(plan.num_shards()) + " shards, coordinator expects " +
          std::to_string(num_shards_));
    }
    owner_ = plan.owners();
  }
  if (owner_.size() != ccsr_.NumVertices()) {
    return Status::InvalidArgument(
        "shard worker: owner table size " + std::to_string(owner_.size()) +
        " != ccsr vertices " + std::to_string(ccsr_.NumVertices()));
  }
  for (uint32_t o : owner_) {
    if (o >= num_shards_) {
      return Status::Corruption("shard worker: owner entry out of range");
    }
  }
  pool_ = std::make_unique<ThreadPool>(num_threads_);
  query_active_ = false;
  loaded_ = true;
  return Status::OK();
}

Status ShardWorker::HandlePlan(const wire::PlanRequest& req) {
  if (!loaded_) {
    return Status::InvalidArgument("shard worker: kPlan before kLoad");
  }
  query_active_ = false;
  executors_.clear();
  pattern_ = req.pattern;
  plan_ = req.plan;
  // Out-of-core shard: hand the pager the plan's cluster access order
  // before the reads below start faulting pages in (no-op in-memory).
  if (ccsr_.mapped()) {
    ccsr_.AdviseQueryClusters(PlanClusterSchedule(ccsr_, plan_));
  }
  CSCE_RETURN_IF_ERROR(ReadClusters(ccsr_, pattern_, req.variant, &qc_));

  // Owned root candidates: the probe computes the full root set against
  // the shard CCSR (labels are global; owned vertices have exact local
  // degrees, so the LDF filter never drops an owned root) and the owned
  // slice is what this worker's morsel loop drains.
  {
    Executor probe(ccsr_, qc_, plan_);
    // Deliberately default options: in particular no prune passes. The
    // probe runs against the shard-local CCSR, whose label masks and
    // rows are partial (1-hop replication), so any proactive pruning
    // here could drop owned roots that complete on other shards.
    ExecOptions probe_options;
    std::vector<VertexId> roots;
    CSCE_RETURN_IF_ERROR(probe.ComputeRootCandidates(probe_options, &roots));
    owned_roots_.clear();
    for (VertexId v : roots) {
      if (owner_[v] == shard_id_) owned_roots_.push_back(v);
    }
  }
  root_morsel_ = RootMorselSize(owned_roots_.size(), num_threads_);
  root_next_.store(0, std::memory_order_relaxed);
  task_next_.store(0, std::memory_order_relaxed);

  // Per-thread executors over stable options/spec storage (the executor
  // keeps pointers into both for the whole query).
  specs_.assign(num_threads_, ShardSpec{});
  exec_options_.assign(num_threads_, ExecOptions{});
  emit_buf_.assign(num_threads_, {});
  embedding_buf_.assign(num_threads_, {});
  for (uint32_t t = 0; t < num_threads_; ++t) {
    ShardSpec& spec = specs_[t];
    spec.shard_id = shard_id_;
    spec.num_shards = num_shards_;
    spec.owner = std::span<const uint32_t>(owner_);
    std::vector<ShardTask>* ebuf = &emit_buf_[t];
    spec.emit = [ebuf](ShardTask&& task) { ebuf->push_back(std::move(task)); };

    ExecOptions& opt = exec_options_[t];
    opt.verify_sce = req.verify_sce;
    opt.time_limit_seconds = req.time_limit_seconds;
    opt.shard = &spec;
    // The plan may carry prune directives (the coordinator forwards
    // the user's pass set over the wire), but the executor force-
    // disables every pass in shard mode — see ExecOptions::prune.
    // Forwarding them anyway keeps the wire round-trip visible in
    // task-mode stats if that guard ever changes.
    opt.prune = plan_.prune;
    opt.root_claim = [this]() -> std::span<const VertexId> {
      size_t begin = root_next_.fetch_add(root_morsel_);
      if (begin >= owned_roots_.size()) return {};
      size_t end = std::min(begin + root_morsel_, owned_roots_.size());
      return std::span<const VertexId>(owned_roots_.data() + begin,
                                       end - begin);
    };
    if (req.emit_embeddings) {
      std::vector<VertexId>* mbuf = &embedding_buf_[t];
      opt.callback = [mbuf](std::span<const VertexId> mapping) {
        mbuf->insert(mbuf->end(), mapping.begin(), mapping.end());
        return true;
      };
    }
  }
  executors_.reserve(num_threads_);
  for (uint32_t t = 0; t < num_threads_; ++t) {
    executors_.push_back(std::make_unique<Executor>(ccsr_, qc_, plan_));
    CSCE_RETURN_IF_ERROR(executors_[t]->PrepareForTasks(exec_options_[t]));
  }
  query_active_ = true;
  return Status::OK();
}

Status ShardWorker::RunRound(const wire::TaskBatch* in, wire::TaskBatch* out) {
  if (!query_active_) {
    return Status::InvalidArgument("shard worker: round before kPlan");
  }
  std::vector<Status> results(num_threads_, Status::OK());
  if (in == nullptr) {
    // Root round: every thread drains owned-root morsels.
    for (uint32_t t = 0; t < num_threads_; ++t) {
      Executor* exec = executors_[t].get();
      Status* result = &results[t];
      pool_->Submit([exec, result] { *result = exec->RunRootMorsels(); });
    }
  } else {
    task_next_.store(0, std::memory_order_relaxed);
    const std::vector<ShardTask>& tasks = in->tasks;
    for (uint32_t t = 0; t < num_threads_; ++t) {
      Executor* exec = executors_[t].get();
      Status* result = &results[t];
      pool_->Submit([this, exec, result, &tasks] {
        for (;;) {
          size_t i = task_next_.fetch_add(1, std::memory_order_relaxed);
          if (i >= tasks.size()) return;
          Status s = exec->RunTask(tasks[i]);
          if (!s.ok()) {
            *result = std::move(s);
            return;
          }
        }
      });
    }
  }
  pool_->Wait();
  for (Status& s : results) {
    if (!s.ok()) return std::move(s);
  }
  out->tasks.clear();
  for (std::vector<ShardTask>& buf : emit_buf_) {
    for (ShardTask& task : buf) out->tasks.push_back(std::move(task));
    buf.clear();
  }
  return Status::OK();
}

Status ShardWorker::HandleFinish(wire::ResultMsg* out) {
  if (!query_active_) {
    return Status::InvalidArgument("shard worker: kFinish before kPlan");
  }
  *out = wire::ResultMsg{};
  bool emitting = false;
  for (uint32_t t = 0; t < num_threads_; ++t) {
    ExecStats st;
    executors_[t]->FinishTasks(&st);
    out->embeddings += st.embeddings;
    out->search_nodes += st.search_nodes;
    out->candidate_sets_computed += st.candidate_sets_computed;
    out->candidate_sets_reused += st.candidate_sets_reused;
    out->morsels_claimed += st.morsels_claimed;
    out->timed_out |= st.timed_out;
    out->cancelled |= st.cancelled;
    out->limit_reached |= st.limit_reached;
    out->seconds += st.seconds;
    emitting |= !embedding_buf_[t].empty();
  }
  if (emitting || exec_options_[0].callback) {
    out->embedding_width = pattern_.NumVertices();
    for (std::vector<VertexId>& buf : embedding_buf_) {
      out->embedding_data.insert(out->embedding_data.end(), buf.begin(),
                                 buf.end());
      buf.clear();
    }
    if (out->embedding_width > 0 &&
        out->embedding_data.size() !=
            out->embeddings * out->embedding_width) {
      return Status::Corruption(
          "shard worker: embedding buffer does not match embedding count");
    }
  }
  query_active_ = false;
  executors_.clear();
  // End of query: close the paging-advice window (drops the advised
  // clusters when this worker runs under a memory cap; no-op otherwise).
  ccsr_.AdviseQueryDone();
  return Status::OK();
}

wire::StatsResult ShardWorker::CollectStats() const {
  obs::JsonValue doc = obs::JsonValue::Object();
  doc.Set("schema", "csce.metrics.v1");
  doc.Set("metrics", obs::MetricRegistry::Global().Snapshot().ToJson(true));
  wire::StatsResult res;
  res.metrics_json = doc.Dump(1);
  return res;
}

}  // namespace shard
}  // namespace csce
