#include "shard/supervision.h"

#include <chrono>
#include <thread>

namespace csce {
namespace shard {

BackoffState::Decision BackoffState::OnFailure(double now,
                                               double* delay_seconds) {
  if (ever_failed_ && reset_after_ > 0.0 &&
      now - last_failure_at_ >= reset_after_) {
    // The previous burst is ancient history; start fresh.
    consecutive_ = 0;
  }
  ever_failed_ = true;
  last_failure_at_ = now;
  if (consecutive_ >= budget_) {
    *delay_seconds = 0.0;
    return Decision::kGiveUp;
  }
  // First retry waits initial_, each consecutive failure doubles it.
  double delay = initial_;
  for (uint32_t i = 0; i < consecutive_ && delay < max_; ++i) delay *= 2.0;
  if (delay > max_) delay = max_;
  ++consecutive_;
  ++total_restarts_;
  *delay_seconds = delay;
  return Decision::kRestart;
}

void BackoffState::OnSuccess(double now) {
  last_failure_at_ = now;
  consecutive_ = 0;
}

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepSeconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace shard
}  // namespace csce
