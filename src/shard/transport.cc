#include "shard/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <utility>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace csce {
namespace shard {
namespace {

/// strerror(3) keeps a static buffer; use the thread-safe variant so
/// concurrent transports (one per worker) cannot race on it. Handles
/// both the XSI and GNU strerror_r signatures.
std::string ErrnoString(int err) {
  char buf[128] = {0};
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  return std::string(strerror_r(err, buf, sizeof(buf)));
#else
  if (strerror_r(err, buf, sizeof(buf)) != 0) {
    return "errno " + std::to_string(err);
  }
  return std::string(buf);
#endif
}

TransportError MakeError(TransportFault fault, int sys_errno,
                         uint32_t frame_type, std::string context) {
  TransportError err;
  err.fault = fault;
  err.sys_errno = sys_errno;
  err.frame_type = frame_type;
  err.context = std::move(context);
  return err;
}

/// Shared state of a loopback pair: two directed frame queues. End A
/// sends into queue[0] and receives from queue[1]; end B the reverse.
struct LoopbackState {
  Mutex mu;
  CondVar cv;
  std::deque<wire::Frame> queue[2] CSCE_GUARDED_BY(mu);
  bool closed CSCE_GUARDED_BY(mu) = false;
};

class LoopbackEnd : public Transport {
 public:
  LoopbackEnd(std::shared_ptr<LoopbackState> state, int send_index)
      : state_(std::move(state)), send_index_(send_index) {}

  ~LoopbackEnd() override { Close(); }

  Status Send(const wire::Frame& frame) override {
    MutexLock lock(state_->mu);
    if (state_->closed) {
      return Fail(MakeError(TransportFault::kClosed, 0, frame.type,
                            "loopback send"));
    }
    state_->queue[send_index_].push_back(frame);
    state_->cv.NotifyAll();
    return Status::OK();
  }

  Status Recv(wire::Frame* frame) override {
    MutexLock lock(state_->mu);
    std::deque<wire::Frame>& q = state_->queue[send_index_ ^ 1];
    if (read_deadline_seconds_ <= 0.0) {
      while (q.empty() && !state_->closed) state_->cv.Wait(state_->mu);
    } else {
      auto deadline = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::duration<double>(
                              read_deadline_seconds_));
      while (q.empty() && !state_->closed) {
        auto now = std::chrono::steady_clock::now();
        if (now >= deadline) {
          return Fail(MakeError(TransportFault::kTimeout, 0, 0,
                                "loopback read deadline"));
        }
        state_->cv.WaitFor(state_->mu, deadline - now);
      }
    }
    if (q.empty()) {
      return Fail(
          MakeError(TransportFault::kClosed, 0, 0, "loopback recv"));
    }
    *frame = std::move(q.front());
    q.pop_front();
    return Status::OK();
  }

  void Close() override {
    MutexLock lock(state_->mu);
    state_->closed = true;
    state_->cv.NotifyAll();
  }

  void set_read_deadline(double seconds) override {
    read_deadline_seconds_ = seconds;
  }

 private:
  /// The shared_ptr itself is set once at construction; the pointed-to
  /// state synchronizes via its own mu. The deadline is only touched by
  /// the single thread driving this end (strict request/reply).
  std::shared_ptr<LoopbackState> state_;
  int send_index_;
  double read_deadline_seconds_ = 0.0;
};

/// Blocks until `fd` is ready for `events` (POLLIN/POLLOUT) or the
/// deadline expires. deadline_seconds <= 0 waits forever. Returns 1 on
/// ready, 0 on timeout, -1 on poll error (errno set).
int PollFor(int fd, short events, double deadline_seconds) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::duration<double>(deadline_seconds));
  for (;;) {
    int timeout_ms = -1;
    if (deadline_seconds > 0.0) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) return 0;
      timeout_ms = static_cast<int>(left.count());
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (rc == 0) return 0;
    return 1;
  }
}

class FdTransport : public Transport {
 public:
  FdTransport(int fd, const TransportDeadlines& deadlines)
      : fd_(fd), deadlines_(deadlines) {}

  ~FdTransport() override { Close(); }

  Status Send(const wire::Frame& frame) override {
    std::string bytes;
    Status st = wire::EncodeFrame(frame, &bytes);
    if (!st.ok()) {
      return Fail(MakeError(TransportFault::kCorruption, 0, frame.type,
                            "encode: " + st.message()));
    }
    return WriteAll(bytes.data(), bytes.size(), frame.type);
  }

  Status Recv(wire::Frame* frame) override {
    char header[wire::kFrameHeaderBytes];
    CSCE_RETURN_IF_ERROR(ReadAll(header, sizeof(header)));
    uint64_t payload_len = 0;
    uint32_t payload_crc = 0;
    Status st = wire::DecodeFrameHeader(
        std::string_view(header, sizeof(header)), &frame->type, &payload_len,
        &payload_crc);
    if (!st.ok()) {
      return Fail(MakeError(TransportFault::kCorruption, 0, 0,
                            "frame header: " + st.message()));
    }
    frame->payload.resize(static_cast<size_t>(payload_len));
    if (payload_len > 0) {
      CSCE_RETURN_IF_ERROR(
          ReadAll(frame->payload.data(), frame->payload.size()));
    }
    if (wire::Crc32(frame->payload) != payload_crc) {
      return Fail(MakeError(TransportFault::kCorruption, 0, frame->type,
                            "frame payload crc mismatch"));
    }
    return Status::OK();
  }

  void Close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void set_read_deadline(double seconds) override {
    deadlines_.read_seconds = seconds;
  }

 private:
  Status WriteAll(const char* data, size_t n, uint32_t frame_type) {
    if (fd_ < 0) {
      return Fail(MakeError(TransportFault::kClosed, 0, frame_type,
                            "fd transport closed"));
    }
    while (n > 0) {
      if (deadlines_.write_seconds > 0.0) {
        int ready = PollFor(fd_, POLLOUT, deadlines_.write_seconds);
        if (ready == 0) {
          return Fail(MakeError(TransportFault::kTimeout, 0, frame_type,
                                "write deadline"));
        }
        if (ready < 0) {
          return Fail(MakeError(TransportFault::kSyscall, errno, frame_type,
                                "poll(write)"));
        }
      }
      // MSG_NOSIGNAL: a peer that died mid-conversation must surface as
      // EPIPE for the recovery path, not kill the process with SIGPIPE
      // (no handler is ever installed — csce_lint signal-discipline).
      // Plain pipes reject send() with ENOTSOCK; fall back to write()
      // for them (their readers never vanish in our usage).
      ssize_t w = ::send(fd_, data, n, MSG_NOSIGNAL);
      if (w < 0 && errno == ENOTSOCK) w = ::write(fd_, data, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        if (errno == EPIPE || errno == ECONNRESET) {
          return Fail(MakeError(TransportFault::kClosed, errno, frame_type,
                                "write (peer closed)"));
        }
        return Fail(
            MakeError(TransportFault::kSyscall, errno, frame_type, "write"));
      }
      data += w;
      n -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status ReadAll(char* data, size_t n) {
    if (fd_ < 0) {
      return Fail(
          MakeError(TransportFault::kClosed, 0, 0, "fd transport closed"));
    }
    while (n > 0) {
      if (deadlines_.read_seconds > 0.0) {
        int ready = PollFor(fd_, POLLIN, deadlines_.read_seconds);
        if (ready == 0) {
          return Fail(
              MakeError(TransportFault::kTimeout, 0, 0, "read deadline"));
        }
        if (ready < 0) {
          return Fail(
              MakeError(TransportFault::kSyscall, errno, 0, "poll(read)"));
        }
      }
      ssize_t r = ::read(fd_, data, n);
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno == ECONNRESET) {
          return Fail(MakeError(TransportFault::kClosed, errno, 0,
                                "read (peer reset)"));
        }
        return Fail(MakeError(TransportFault::kSyscall, errno, 0, "read"));
      }
      if (r == 0) {
        return Fail(
            MakeError(TransportFault::kClosed, 0, 0, "peer closed"));
      }
      data += r;
      n -= static_cast<size_t>(r);
    }
    return Status::OK();
  }

  int fd_;
  TransportDeadlines deadlines_;
};

Status CloseAndFail(int fd, TransportError err) {
  if (fd >= 0) ::close(fd);
  return err.ToStatus();
}

}  // namespace

const char* TransportFaultName(TransportFault fault) {
  switch (fault) {
    case TransportFault::kNone:
      return "none";
    case TransportFault::kClosed:
      return "closed";
    case TransportFault::kTimeout:
      return "timeout";
    case TransportFault::kCorruption:
      return "corruption";
    case TransportFault::kHandshake:
      return "handshake";
    case TransportFault::kSyscall:
      return "syscall";
  }
  return "unknown";
}

Status TransportError::ToStatus() const {
  if (ok()) return Status::OK();
  std::string msg = "transport ";
  msg += TransportFaultName(fault);
  if (!context.empty()) {
    msg += ": ";
    msg += context;
  }
  if (sys_errno != 0) {
    msg += " (";
    msg += ErrnoString(sys_errno);
    msg += ")";
  }
  if (frame_type != 0) {
    msg += " [frame type " + std::to_string(frame_type) + "]";
  }
  if (shard != kNoShard) {
    msg += " [shard " + std::to_string(shard) + "]";
  }
  if (fault == TransportFault::kCorruption) return Status::Corruption(msg);
  return Status::IOError(msg);
}

void MakeLoopbackPair(std::unique_ptr<Transport>* a,
                      std::unique_ptr<Transport>* b) {
  auto state = std::make_shared<LoopbackState>();
  *a = std::make_unique<LoopbackEnd>(state, 0);
  *b = std::make_unique<LoopbackEnd>(state, 1);
}

std::unique_ptr<Transport> MakeFdTransport(int fd,
                                           const TransportDeadlines& deadlines) {
  return std::make_unique<FdTransport>(fd, deadlines);
}

// --- TCP --------------------------------------------------------------

Status TcpListener::Listen(const std::string& host, uint16_t port,
                           std::unique_ptr<TcpListener>* out) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket: " + ErrnoString(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = Status::IOError("bind " + host + ":" + std::to_string(port) +
                                ": " + ErrnoString(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) != 0) {
    Status st = Status::IOError("listen: " + ErrnoString(errno));
    ::close(fd);
    return st;
  }
  // Recover the ephemeral port when the caller bound port 0.
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  uint16_t actual_port = port;
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) == 0) {
    actual_port = ntohs(bound.sin_port);
  }
  *out = std::make_unique<TcpListener>(Passkey{}, fd, actual_port);
  return Status::OK();
}

TcpListener::~TcpListener() { Close(); }

Status TcpListener::Accept(double timeout_seconds,
                           const TransportDeadlines& deadlines,
                           std::unique_ptr<Transport>* out) {
  if (fd_ < 0) {
    last_error_ = MakeError(TransportFault::kClosed, 0, 0, "listener closed");
    return last_error_.ToStatus();
  }
  int ready = PollFor(fd_, POLLIN, timeout_seconds);
  if (ready == 0) {
    last_error_ = MakeError(TransportFault::kTimeout, 0, 0, "accept deadline");
    return last_error_.ToStatus();
  }
  if (ready < 0) {
    last_error_ = MakeError(TransportFault::kSyscall, errno, 0, "poll(accept)");
    return last_error_.ToStatus();
  }
  int conn = -1;
  do {
    conn = ::accept(fd_, nullptr, nullptr);
  } while (conn < 0 && errno == EINTR);
  if (conn < 0) {
    last_error_ = MakeError(TransportFault::kSyscall, errno, 0, "accept");
    return last_error_.ToStatus();
  }
  int one = 1;
  ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *out = MakeFdTransport(conn, deadlines);
  return Status::OK();
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status ConnectTcp(const std::string& host, uint16_t port,
                  const TransportDeadlines& deadlines,
                  std::unique_ptr<Transport>* out) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return CloseAndFail(-1,
                        MakeError(TransportFault::kSyscall, errno, 0, "socket"));
  }
  const std::string target = host + ":" + std::to_string(port);
  // Nonblocking connect + poll so a dead coordinator surfaces as a
  // bounded kTimeout instead of the kernel's minutes-long default.
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    return CloseAndFail(fd, MakeError(TransportFault::kSyscall, errno, 0,
                                      "connect " + target));
  }
  if (rc != 0) {
    int ready = PollFor(fd, POLLOUT, deadlines.connect_seconds);
    if (ready == 0) {
      return CloseAndFail(fd, MakeError(TransportFault::kTimeout, 0, 0,
                                        "connect " + target));
    }
    if (ready < 0) {
      return CloseAndFail(
          fd, MakeError(TransportFault::kSyscall, errno, 0, "poll(connect)"));
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 ||
        err != 0) {
      return CloseAndFail(fd,
                          MakeError(TransportFault::kSyscall,
                                    err != 0 ? err : errno, 0,
                                    "connect " + target));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *out = MakeFdTransport(fd, deadlines);
  return Status::OK();
}

bool ParseHostPort(const std::string& spec, std::string* host,
                   uint16_t* port) {
  std::string host_part = "0.0.0.0";
  std::string port_part = spec;
  size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) host_part = spec.substr(0, colon);
    port_part = spec.substr(colon + 1);
  }
  if (port_part.empty()) return false;
  char* end = nullptr;
  unsigned long value = std::strtoul(port_part.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value > 65535) return false;
  *host = host_part;
  *port = static_cast<uint16_t>(value);
  return true;
}

}  // namespace shard
}  // namespace csce
