#include "shard/transport.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <utility>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace csce {
namespace shard {
namespace {

/// strerror(3) keeps a static buffer; use the thread-safe variant so
/// concurrent transports (one per worker) cannot race on it. Handles
/// both the XSI and GNU strerror_r signatures.
std::string ErrnoString(int err) {
  char buf[128] = {0};
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  return std::string(strerror_r(err, buf, sizeof(buf)));
#else
  if (strerror_r(err, buf, sizeof(buf)) != 0) {
    return "errno " + std::to_string(err);
  }
  return std::string(buf);
#endif
}

/// Shared state of a loopback pair: two directed frame queues. End A
/// sends into queue[0] and receives from queue[1]; end B the reverse.
struct LoopbackState {
  Mutex mu;
  CondVar cv;
  std::deque<wire::Frame> queue[2] CSCE_GUARDED_BY(mu);
  bool closed CSCE_GUARDED_BY(mu) = false;
};

class LoopbackEnd : public Transport {
 public:
  LoopbackEnd(std::shared_ptr<LoopbackState> state, int send_index)
      : state_(std::move(state)), send_index_(send_index) {}

  ~LoopbackEnd() override { Close(); }

  Status Send(const wire::Frame& frame) override {
    MutexLock lock(state_->mu);
    if (state_->closed) return Status::IOError("loopback transport closed");
    state_->queue[send_index_].push_back(frame);
    state_->cv.NotifyAll();
    return Status::OK();
  }

  Status Recv(wire::Frame* frame) override {
    MutexLock lock(state_->mu);
    std::deque<wire::Frame>& q = state_->queue[send_index_ ^ 1];
    while (q.empty() && !state_->closed) state_->cv.Wait(state_->mu);
    if (q.empty()) return Status::IOError("loopback transport closed");
    *frame = std::move(q.front());
    q.pop_front();
    return Status::OK();
  }

  void Close() override {
    MutexLock lock(state_->mu);
    state_->closed = true;
    state_->cv.NotifyAll();
  }

 private:
  /// The shared_ptr itself is set once at construction; the pointed-to
  /// state synchronizes via its own mu.
  std::shared_ptr<LoopbackState> state_;
  int send_index_;
};

class FdTransport : public Transport {
 public:
  explicit FdTransport(int fd) : fd_(fd) {}

  ~FdTransport() override { Close(); }

  Status Send(const wire::Frame& frame) override {
    std::string bytes;
    CSCE_RETURN_IF_ERROR(wire::EncodeFrame(frame, &bytes));
    return WriteAll(bytes.data(), bytes.size());
  }

  Status Recv(wire::Frame* frame) override {
    char header[wire::kFrameHeaderBytes];
    CSCE_RETURN_IF_ERROR(ReadAll(header, sizeof(header)));
    uint64_t payload_len = 0;
    CSCE_RETURN_IF_ERROR(wire::DecodeFrameHeader(
        std::string_view(header, sizeof(header)), &frame->type, &payload_len));
    frame->payload.resize(static_cast<size_t>(payload_len));
    if (payload_len > 0) {
      CSCE_RETURN_IF_ERROR(
          ReadAll(frame->payload.data(), frame->payload.size()));
    }
    return Status::OK();
  }

  void Close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  Status WriteAll(const char* data, size_t n) {
    if (fd_ < 0) return Status::IOError("fd transport closed");
    while (n > 0) {
      ssize_t w = ::write(fd_, data, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("transport write: " + ErrnoString(errno));
      }
      data += w;
      n -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status ReadAll(char* data, size_t n) {
    if (fd_ < 0) return Status::IOError("fd transport closed");
    while (n > 0) {
      ssize_t r = ::read(fd_, data, n);
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("transport read: " + ErrnoString(errno));
      }
      if (r == 0) return Status::IOError("transport peer closed");
      data += r;
      n -= static_cast<size_t>(r);
    }
    return Status::OK();
  }

  int fd_;
};

}  // namespace

void MakeLoopbackPair(std::unique_ptr<Transport>* a,
                      std::unique_ptr<Transport>* b) {
  auto state = std::make_shared<LoopbackState>();
  *a = std::make_unique<LoopbackEnd>(state, 0);
  *b = std::make_unique<LoopbackEnd>(state, 1);
}

std::unique_ptr<Transport> MakeFdTransport(int fd) {
  return std::make_unique<FdTransport>(fd);
}

}  // namespace shard
}  // namespace csce
