#ifndef CSCE_SHARD_TRANSPORT_H_
#define CSCE_SHARD_TRANSPORT_H_

#include <memory>

#include "shard/wire.h"
#include "util/status.h"

namespace csce {
namespace shard {

/// One end of a bidirectional, ordered frame channel between the
/// coordinator and a shard worker. Send and Recv each block until the
/// frame is fully transferred; a closed peer surfaces as IOError.
/// One thread per direction at most — the protocol is strictly
/// request/reply, so neither side ever needs concurrent calls.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual Status Send(const wire::Frame& frame) = 0;
  virtual Status Recv(wire::Frame* frame) = 0;
  /// Unblocks the peer's pending Recv with IOError. Idempotent.
  virtual void Close() = 0;
};

/// Creates a connected in-process pair (mutex + condvar queues): frames
/// sent on one end arrive at the other. Both ends outlive each other
/// safely (shared state). The unit-test and in-process-cluster
/// transport.
void MakeLoopbackPair(std::unique_ptr<Transport>* a,
                      std::unique_ptr<Transport>* b);

/// Byte-stream transport over a file descriptor (a Unix-domain
/// socketpair between csce_serve and its forked workers, or any
/// connected stream socket). Frames are serialized with wire::
/// EncodeFrame; incoming headers are validated before the payload is
/// read, so a corrupt peer yields Corruption, not unbounded allocation.
/// Takes ownership of `fd`.
std::unique_ptr<Transport> MakeFdTransport(int fd);

}  // namespace shard
}  // namespace csce

#endif  // CSCE_SHARD_TRANSPORT_H_
