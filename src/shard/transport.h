#ifndef CSCE_SHARD_TRANSPORT_H_
#define CSCE_SHARD_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "shard/wire.h"
#include "util/status.h"

namespace csce {
namespace shard {

/// Structured cause of a transport failure. Supervision decisions
/// (restart vs reject vs give up) and test assertions key off these
/// fields — never off message text — so every transport failure in the
/// shard layer is routed through one TransportError and stringified in
/// exactly one place (ToStatus).
enum class TransportFault : uint8_t {
  kNone = 0,
  /// The peer closed the connection (EOF, closed loopback, local
  /// Close()). A dead worker process surfaces as this.
  kClosed,
  /// A configured connect/read/write deadline expired. A hung or
  /// grossly slow worker surfaces as this.
  kTimeout,
  /// The byte stream decoded to garbage: bad magic, oversized length,
  /// CRC mismatch. A buggy or byzantine peer surfaces as this.
  kCorruption,
  /// The versioned handshake failed (protocol mismatch or a non-Hello
  /// first frame).
  kHandshake,
  /// A syscall failed; `sys_errno` carries the errno.
  kSyscall,
};

const char* TransportFaultName(TransportFault fault);

struct TransportError {
  static constexpr uint32_t kNoShard = 0xFFFFFFFFu;

  TransportFault fault = TransportFault::kNone;
  /// errno of the failing syscall (kSyscall only; 0 otherwise).
  int sys_errno = 0;
  /// wire::MsgType of the frame being sent/received when the failure
  /// hit, 0 when no frame was in flight (connect/accept/handshake).
  uint32_t frame_type = 0;
  /// Shard the transport was serving; filled by the supervisor (the
  /// transport itself does not know), kNoShard until then.
  uint32_t shard = kNoShard;
  /// The failing operation: "read", "write", "connect", "accept", ...
  std::string context;

  bool ok() const { return fault == TransportFault::kNone; }

  /// The single stringification point: Status{IOError|Corruption} whose
  /// message includes the fault name, operation, errno text and shard.
  Status ToStatus() const;
};

/// Deadlines applied by transports that can block indefinitely (fd and
/// TCP; the loopback transport honors read deadlines only). 0 = wait
/// forever, the pre-supervision behavior.
struct TransportDeadlines {
  double connect_seconds = 5.0;
  double read_seconds = 0.0;
  double write_seconds = 0.0;
};

/// One end of a bidirectional, ordered frame channel between the
/// coordinator and a shard worker. Send and Recv each block until the
/// frame is fully transferred or a deadline expires; a closed peer
/// surfaces as IOError with last_error().fault == kClosed. One thread
/// per direction at most — the protocol is strictly request/reply, so
/// neither side ever needs concurrent calls.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual Status Send(const wire::Frame& frame) = 0;
  virtual Status Recv(wire::Frame* frame) = 0;
  /// Unblocks the peer's pending Recv with IOError. Idempotent.
  virtual void Close() = 0;

  /// Structured cause of the most recent failed Send/Recv on this end.
  /// Meaningful only after a non-OK return; reset by the next call.
  const TransportError& last_error() const { return last_error_; }

  /// Overrides the read deadline for subsequent Recv calls (seconds,
  /// 0 = wait forever). The supervisor tightens this per round.
  virtual void set_read_deadline(double seconds) = 0;

 protected:
  /// Records `err` as last_error() and returns its Status — the one
  /// failure path every concrete transport funnels through.
  Status Fail(TransportError err) {
    last_error_ = std::move(err);
    return last_error_.ToStatus();
  }

  TransportError last_error_;
};

/// Creates a connected in-process pair (mutex + condvar queues): frames
/// sent on one end arrive at the other. Both ends outlive each other
/// safely (shared state). The unit-test and in-process-cluster
/// transport.
void MakeLoopbackPair(std::unique_ptr<Transport>* a,
                      std::unique_ptr<Transport>* b);

/// Byte-stream transport over a file descriptor (a Unix-domain
/// socketpair between csce_serve and its forked workers, or any
/// connected stream socket). Frames are serialized with wire::
/// EncodeFrame; incoming headers are validated before the payload is
/// read and the payload CRC is verified after, so a corrupt peer yields
/// Corruption, not unbounded allocation or a mis-decoded message.
/// Takes ownership of `fd`.
std::unique_ptr<Transport> MakeFdTransport(
    int fd, const TransportDeadlines& deadlines = TransportDeadlines{});

/// Listening TCP socket for multi-node deployment (csce_serve
/// --listen). Accept() yields fd transports over accepted connections;
/// binding to port 0 picks an ephemeral port, re-read via port().
class TcpListener {
 public:
  /// `host` is a numeric IPv4 address ("0.0.0.0" for any interface,
  /// "127.0.0.1" for loopback-only test clusters).
  static Status Listen(const std::string& host, uint16_t port,
                       std::unique_ptr<TcpListener>* out);

  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  uint16_t port() const { return port_; }

  /// Blocks up to `timeout_seconds` (0 = forever) for one connection;
  /// the accepted transport gets `deadlines`. Timeout surfaces as
  /// last_error().fault == kTimeout.
  Status Accept(double timeout_seconds, const TransportDeadlines& deadlines,
                std::unique_ptr<Transport>* out);

  const TransportError& last_error() const { return last_error_; }

  void Close();

  struct Passkey {
   private:
    friend class TcpListener;
    Passkey() = default;
  };
  TcpListener(Passkey, int fd, uint16_t port) : fd_(fd), port_(port) {}

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
  TransportError last_error_;
};

/// Connects to a listening coordinator/worker endpoint with the
/// configured connect deadline (nonblocking connect + poll). The
/// resulting transport carries `deadlines` for read/write.
Status ConnectTcp(const std::string& host, uint16_t port,
                  const TransportDeadlines& deadlines,
                  std::unique_ptr<Transport>* out);

/// Splits "host:port" (e.g. "127.0.0.1:7600"); a bare ":7600" or
/// "7600" means any-interface. Returns false on malformed specs.
bool ParseHostPort(const std::string& spec, std::string* host,
                   uint16_t* port);

}  // namespace shard
}  // namespace csce

#endif  // CSCE_SHARD_TRANSPORT_H_
