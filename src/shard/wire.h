#ifndef CSCE_SHARD_WIRE_H_
#define CSCE_SHARD_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "engine/executor.h"
#include "graph/graph.h"
#include "graph/variant.h"
#include "plan/planner.h"
#include "util/status.h"

namespace csce {
namespace shard {
namespace wire {

/// Length-prefixed framing for the coordinator/worker protocol:
///
///   magic "CSWF" (u32) | type (u32) | payload length (u64) |
///   payload crc32 (u32) | payload
///
/// little-endian throughout. The CRC covers the payload bytes only (the
/// header fields are individually validated) and turns line noise on a
/// real interconnect — the TCP transport — into Corruption instead of a
/// silently mis-decoded task batch. Every decoder in this file is
/// defensive: all counts are bounds-checked against the remaining bytes
/// before any allocation, and malformed input returns Corruption —
/// never crashes — because frames cross process boundaries (the fuzz
/// test hammers this contract).
inline constexpr uint32_t kFrameMagic = 0x46575343;  // "CSWF"
inline constexpr size_t kFrameHeaderBytes = 20;
/// Upper bound on a payload; a header claiming more is rejected before
/// anything is allocated.
inline constexpr uint64_t kMaxFramePayload = 1ull << 30;

/// Protocol revision carried in the kHello handshake. Bump whenever a
/// frame layout or message payload changes shape; peers with a
/// different version refuse to talk (the coordinator restarts or
/// rejects the worker instead of mis-decoding its frames).
/// v2: CRC-carrying 20-byte frame header + handshake/heartbeat frames.
/// v3: LoadRequest carries out-of-core options (use_mmap, memory cap).
inline constexpr uint32_t kProtocolVersion = 3;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `bytes`.
/// Table-driven, byte-at-a-time: frames are small (task batches cap in
/// the low megabytes) so simplicity beats a slicing-by-8 variant.
uint32_t Crc32(std::string_view bytes);

/// Frame types. Requests flow coordinator -> worker, replies back.
enum class MsgType : uint32_t {
  // Requests.
  kLoad = 1,      // LoadRequest: adopt a shard (CCSR + owner table)
  kPlan = 2,      // PlanRequest: compile-once plan for the next query
  kRoot = 3,      // empty: enumerate owned root candidates
  kExtend = 4,    // TaskBatch: run routed shard tasks
  kFinish = 5,    // empty: query done, return merged stats
  kStats = 6,     // empty: return a csce.metrics.v1 snapshot
  kShutdown = 7,  // empty: leave the serve loop
  kHello = 8,     // HelloMsg: versioned handshake (first frame sent)
  kPing = 9,      // empty: heartbeat probe
  // Replies.
  kOk = 100,           // empty ack (kLoad, kPlan, kShutdown)
  kTaskBatch = 101,    // TaskBatch: emissions of a kRoot/kExtend round
  kResult = 102,       // ResultMsg (kFinish)
  kStatsResult = 103,  // StatsResult (kStats)
  kError = 104,        // ErrorMsg: Status carried back
  kHelloAck = 105,     // HelloMsg: the worker's version, echoed back
  kPong = 106,         // empty: heartbeat answer
};

struct Frame {
  uint32_t type = 0;
  std::string payload;
};

/// Serializes header (including the payload CRC) + payload (refuses
/// oversized payloads).
Status EncodeFrame(const Frame& frame, std::string* out);
/// Validates a 20-byte header; returns the type, payload length and
/// the expected payload CRC (verified once the payload has been read).
Status DecodeFrameHeader(std::string_view header, uint32_t* type,
                         uint64_t* payload_len, uint32_t* payload_crc);
/// One-shot decode of a complete frame from a byte buffer (tests /
/// loopback), including CRC verification. `*consumed` gets the total
/// frame size on success.
Status DecodeFrame(std::string_view bytes, Frame* out, size_t* consumed);

/// Append-only payload builder (little-endian, no alignment).
class PayloadWriter {
 public:
  void U8(uint8_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void F64(double v);
  void Str(std::string_view s);                  // u64 length + bytes
  void VecU32(const std::vector<uint32_t>& v);   // u32 count + entries
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked payload reader: every accessor fails with Corruption
/// instead of reading past the end, and element counts are validated
/// against the remaining bytes before the destination is sized.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  Status U8(uint8_t* v);
  Status U32(uint32_t* v);
  Status U64(uint64_t* v);
  Status F64(double* v);
  Status Str(std::string* s, uint64_t max_len = kMaxFramePayload);
  Status VecU32(std::vector<uint32_t>* v);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  /// The payload must be fully consumed (trailing garbage = corruption).
  Status ExpectEnd() const;

 private:
  Status Need(size_t n) const;

  std::string_view data_;
  size_t pos_ = 0;
};

// --- Message payloads -------------------------------------------------

/// Versioned handshake, exchanged before any other frame: the
/// coordinator sends kHello with its protocol version, the worker
/// answers kHelloAck with its own. Either side refuses a peer whose
/// version differs — a mismatched build must fail loudly at attach
/// time, not corrupt a query half-way through.
struct HelloMsg {
  uint32_t protocol_version = kProtocolVersion;
  /// "coordinator" / "worker"; free-form diagnostic, never dispatched
  /// on.
  std::string peer_role;
};

struct LoadRequest {
  uint32_t shard_id = 0;
  uint32_t num_shards = 1;
  uint32_t num_threads = 1;
  /// false: `ccsr_path`/`plan_path` name artifacts the worker reads
  /// itself (multi-process over a shared filesystem); true: `ccsr_blob`
  /// is a serialized CCSR and `owner` the ownership table, shipped
  /// inline (in-process clusters, --graph mode).
  bool inline_payload = false;
  std::string ccsr_path;
  std::string plan_path;
  std::string ccsr_blob;
  std::vector<uint32_t> owner;
  /// Out-of-core (file loads only): mmap the shard's CCSR v2 artifact
  /// instead of streaming it into memory; the artifact must be v2.
  bool use_mmap = false;
  /// With use_mmap, the per-worker paging-advice budget in bytes
  /// (0: prefetch without eviction). See MmapCcsr::Options.
  uint64_t memory_cap_bytes = 0;
};

struct PlanRequest {
  Graph pattern;
  Plan plan;
  MatchVariant variant = MatchVariant::kEdgeInduced;
  bool verify_sce = false;
  /// Ship every embedding back in the kFinish result (self-check and
  /// embedding collection; counts stay wire-cheap otherwise).
  bool emit_embeddings = false;
  double time_limit_seconds = 0.0;
};

struct TaskBatch {
  std::vector<ShardTask> tasks;
};

/// Per-worker totals returned by kFinish.
struct ResultMsg {
  uint64_t embeddings = 0;
  uint64_t search_nodes = 0;
  uint64_t candidate_sets_computed = 0;
  uint64_t candidate_sets_reused = 0;
  uint64_t morsels_claimed = 0;
  bool timed_out = false;
  bool cancelled = false;
  bool limit_reached = false;
  double seconds = 0.0;
  /// Present when PlanRequest::emit_embeddings; each entry is indexed
  /// by pattern vertex (EmbeddingCallback convention).
  uint32_t embedding_width = 0;
  std::vector<VertexId> embedding_data;  // count * width entries
};

struct StatsResult {
  std::string metrics_json;  // a csce.metrics.v1 document
};

struct ErrorMsg {
  uint32_t code = 0;  // StatusCode
  std::string message;
};

std::string EncodeHello(const HelloMsg& msg);
Status DecodeHello(std::string_view payload, HelloMsg* out);

std::string EncodeLoadRequest(const LoadRequest& msg);
Status DecodeLoadRequest(std::string_view payload, LoadRequest* out);

std::string EncodePlanRequest(const PlanRequest& msg);
Status DecodePlanRequest(std::string_view payload, PlanRequest* out);

std::string EncodeTaskBatch(const TaskBatch& msg);
Status DecodeTaskBatch(std::string_view payload, TaskBatch* out);

std::string EncodeResultMsg(const ResultMsg& msg);
Status DecodeResultMsg(std::string_view payload, ResultMsg* out);

std::string EncodeStatsResult(const StatsResult& msg);
Status DecodeStatsResult(std::string_view payload, StatsResult* out);

std::string EncodeError(const Status& status);
Status DecodeError(std::string_view payload, ErrorMsg* out);
/// Reconstructs the Status an ErrorMsg carries.
Status ErrorToStatus(const ErrorMsg& msg);

/// Pattern graphs travel inside PlanRequest; exposed for tests.
void EncodeGraph(const Graph& g, PayloadWriter* w);
Status DecodeGraph(PayloadReader* r, Graph* out);
void EncodePlan(const Plan& plan, PayloadWriter* w);
Status DecodePlan(PayloadReader* r, Plan* out);

}  // namespace wire
}  // namespace shard
}  // namespace csce

#endif  // CSCE_SHARD_WIRE_H_
