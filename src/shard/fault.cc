#include "shard/fault.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "shard/wire.h"

namespace csce {
namespace shard {
namespace {

Status BadEntry(const std::string& entry, const char* why) {
  return Status::InvalidArgument("fault-plan entry '" + entry + "': " + why);
}

Status ParseEntry(const std::string& entry, FaultSpec* out) {
  size_t at = entry.find('@');
  size_t colon = entry.find(':', at == std::string::npos ? 0 : at);
  if (at == std::string::npos || colon == std::string::npos || colon < at) {
    return BadEntry(entry, "expected kind@shard:arg");
  }
  std::string kind = entry.substr(0, at);
  std::string shard_str = entry.substr(at + 1, colon - at - 1);
  std::string arg_str = entry.substr(colon + 1);
  if (kind == "kill") {
    out->kind = FaultKind::kKillAfterFrames;
  } else if (kind == "truncate") {
    out->kind = FaultKind::kTruncateFrame;
  } else if (kind == "delay") {
    out->kind = FaultKind::kDelayResponse;
  } else if (kind == "drop-ping") {
    out->kind = FaultKind::kDropHeartbeat;
  } else if (kind == "bad-hello") {
    out->kind = FaultKind::kFailHandshake;
  } else {
    return BadEntry(entry, "unknown fault kind");
  }
  if (shard_str.empty() || arg_str.empty()) {
    return BadEntry(entry, "expected kind@shard:arg");
  }
  char* end = nullptr;
  unsigned long shard = std::strtoul(shard_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return BadEntry(entry, "shard is not a number");
  }
  unsigned long long arg = std::strtoull(arg_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return BadEntry(entry, "arg is not a number");
  }
  out->shard = static_cast<uint32_t>(shard);
  out->arg = static_cast<uint64_t>(arg);
  return Status::OK();
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kKillAfterFrames:
      return "kill";
    case FaultKind::kTruncateFrame:
      return "truncate";
    case FaultKind::kDelayResponse:
      return "delay";
    case FaultKind::kDropHeartbeat:
      return "drop-ping";
    case FaultKind::kFailHandshake:
      return "bad-hello";
  }
  return "unknown";
}

Status FaultInjector::Parse(const std::string& plan,
                            std::shared_ptr<FaultInjector>* out) {
  std::vector<FaultSpec> specs;
  size_t pos = 0;
  while (pos < plan.size()) {
    size_t comma = plan.find(',', pos);
    if (comma == std::string::npos) comma = plan.size();
    std::string entry = plan.substr(pos, comma - pos);
    pos = comma + 1;
    // Trim surrounding whitespace so "kill@0:1, delay@1:200" parses.
    size_t b = entry.find_first_not_of(" \t");
    size_t e = entry.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    entry = entry.substr(b, e - b + 1);
    FaultSpec spec;
    CSCE_RETURN_IF_ERROR(ParseEntry(entry, &spec));
    specs.push_back(spec);
  }
  *out = std::make_shared<FaultInjector>(std::move(specs));
  return Status::OK();
}

FaultInjector::FaultInjector(std::vector<FaultSpec> specs)
    : specs_(std::move(specs)) {
  MutexLock lock(mu_);
  fired_count_.assign(specs_.size(), 0);
}

uint64_t FaultInjector::fired_total() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (uint64_t c : fired_count_) total += c;
  return total;
}

uint64_t FaultInjector::fired(FaultKind kind) const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].kind == kind) total += fired_count_[i];
  }
  return total;
}

/// The decorator. Lives in the shard namespace (not anonymous) so the
/// FaultInjector friendship resolves; instantiated only through
/// MakeFaultTransport.
class FaultTransport : public Transport {
 public:
  FaultTransport(std::unique_ptr<Transport> inner,
                 std::shared_ptr<FaultInjector> injector, uint32_t shard)
      : inner_(std::move(inner)),
        injector_(std::move(injector)),
        shard_(shard) {}

  ~FaultTransport() override { Close(); }

  Status Send(const wire::Frame& frame) override {
    Action act = Decide(frame.type);
    switch (act.kind) {
      case Action::kNone:
        break;
      case Action::kKill:
        // The worker process "dies": the peer observes EOF/closed.
        inner_->Close();
        return Fail(MakeClosed(frame.type, "fault: killed"));
      case Action::kTruncate: {
        wire::Frame cut = frame;
        cut.payload.resize(cut.payload.size() / 2);
        Status st = inner_->Send(cut);
        inner_->Close();
        if (!st.ok()) return st;
        return Fail(MakeClosed(frame.type, "fault: truncated"));
      }
      case Action::kDelay:
        std::this_thread::sleep_for(std::chrono::milliseconds(act.delay_ms));
        break;
      case Action::kDrop:
        // Heartbeat reply swallowed; the coordinator's ping deadline
        // must fire, not the worker.
        return Status::OK();
      case Action::kBadHello: {
        wire::HelloMsg hello;
        if (wire::DecodeHello(frame.payload, &hello).ok()) {
          hello.protocol_version = wire::kProtocolVersion + 1;
          wire::Frame bad = frame;
          bad.payload = wire::EncodeHello(hello);
          return inner_->Send(bad);
        }
        break;
      }
    }
    Status st = inner_->Send(frame);
    if (!st.ok()) last_error_ = inner_->last_error();
    return st;
  }

  Status Recv(wire::Frame* frame) override {
    Status st = inner_->Recv(frame);
    if (!st.ok()) last_error_ = inner_->last_error();
    return st;
  }

  void Close() override { inner_->Close(); }

  void set_read_deadline(double seconds) override {
    inner_->set_read_deadline(seconds);
  }

 private:
  struct Action {
    enum Kind { kNone, kKill, kTruncate, kDelay, kDrop, kBadHello };
    Kind kind = kNone;
    uint64_t delay_ms = 0;
  };

  static TransportError MakeClosed(uint32_t frame_type, const char* why) {
    TransportError err;
    err.fault = TransportFault::kClosed;
    err.frame_type = frame_type;
    err.context = why;
    return err;
  }

  /// One decision per outgoing frame, taken under the injector's lock
  /// but executed (send/sleep/close) outside it. First matching spec
  /// for this shard wins; all counter updates happen here so the
  /// schedule is a pure function of the frame sequence.
  Action Decide(uint32_t frame_type) {
    Action act;
    if (injector_ == nullptr) return act;
    FaultInjector& inj = *injector_;
    MutexLock lock(inj.mu_);
    if (shard_ >= inj.frames_sent_by_shard_.size()) {
      inj.frames_sent_by_shard_.resize(shard_ + 1, 0);
    }
    const uint64_t ordinal = ++inj.frames_sent_by_shard_[shard_];  // 1-based
    for (size_t i = 0; i < inj.specs_.size(); ++i) {
      const FaultSpec& spec = inj.specs_[i];
      if (spec.shard != shard_) continue;
      uint64_t& fired = inj.fired_count_[i];
      switch (spec.kind) {
        case FaultKind::kKillAfterFrames:
          if (fired == 0 && ordinal > spec.arg) {
            fired = 1;
            act.kind = Action::kKill;
            return act;
          }
          break;
        case FaultKind::kTruncateFrame:
          if (fired == 0 && ordinal == spec.arg) {
            fired = 1;
            act.kind = Action::kTruncate;
            return act;
          }
          break;
        case FaultKind::kDelayResponse:
          if (fired == 0) {
            fired = 1;
            act.kind = Action::kDelay;
            act.delay_ms = spec.arg;
            return act;
          }
          break;
        case FaultKind::kDropHeartbeat:
          if (fired < spec.arg &&
              frame_type == static_cast<uint32_t>(wire::MsgType::kPong)) {
            ++fired;
            act.kind = Action::kDrop;
            return act;
          }
          break;
        case FaultKind::kFailHandshake:
          if (fired < spec.arg &&
              frame_type == static_cast<uint32_t>(wire::MsgType::kHelloAck)) {
            ++fired;
            act.kind = Action::kBadHello;
            return act;
          }
          break;
      }
    }
    return act;
  }

  std::unique_ptr<Transport> inner_;
  std::shared_ptr<FaultInjector> injector_;
  const uint32_t shard_;
};

std::unique_ptr<Transport> MakeFaultTransport(
    std::unique_ptr<Transport> inner, std::shared_ptr<FaultInjector> injector,
    uint32_t shard) {
  if (injector == nullptr || injector->specs().empty()) return inner;
  return std::make_unique<FaultTransport>(std::move(inner),
                                          std::move(injector), shard);
}

}  // namespace shard
}  // namespace csce
