#ifndef CSCE_SHARD_WORKER_H_
#define CSCE_SHARD_WORKER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "ccsr/ccsr.h"
#include "ccsr/ccsr_mmap.h"
#include "engine/executor.h"
#include "graph/graph.h"
#include "plan/planner.h"
#include "shard/shard_plan.h"
#include "shard/transport.h"
#include "shard/wire.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace csce {
namespace shard {

/// A shard-local execution server: owns one shard's CCSR plus the
/// ownership table and serves the coordinator protocol over a
/// Transport. One worker per shard, in a thread (loopback transport)
/// or a forked process (fd transport).
///
/// Enumeration wraps the existing Executor in task mode: per LOAD
/// thread count, each worker thread gets a private Executor whose
/// ShardSpec::emit buffers outgoing ShardTasks; a round (kRoot or
/// kExtend) drains its input through the thread pool and replies with
/// everything the executors emitted. SCE candidate caches live inside
/// the per-thread executors, so reuse never crosses a shard boundary.
class ShardWorker {
 public:
  ShardWorker() = default;

  /// Serves until kShutdown (returns OK) or transport failure (returns
  /// the transport error — the coordinator vanishing is not a crash).
  /// Handler-level failures are reported to the peer as kError frames
  /// and the loop keeps serving.
  Status Serve(Transport& transport);

 private:
  Status HandleLoad(const wire::LoadRequest& req);
  Status HandlePlan(const wire::PlanRequest& req);
  Status RunRound(const wire::TaskBatch* in, wire::TaskBatch* out);
  Status HandleFinish(wire::ResultMsg* out);
  wire::StatsResult CollectStats() const;

  bool loaded_ = false;
  uint32_t shard_id_ = 0;
  uint32_t num_shards_ = 1;
  uint32_t num_threads_ = 1;
  Ccsr ccsr_;
  // Set when the LOAD asked for an out-of-core shard: the mapping that
  // backs ccsr_'s borrowed arrays (and serves as its pager). Must stay
  // alive as long as ccsr_ does.
  std::unique_ptr<MmapCcsr> mmap_;
  std::vector<uint32_t> owner_;
  std::unique_ptr<ThreadPool> pool_;

  // Per-query state, rebuilt by each kPlan. Mutex-free by design: the
  // serve loop is single-threaded between rounds, a round's worker
  // threads claim work via the two atomics below and otherwise touch
  // only their own index of the per-thread vectors, and pool_->Wait()
  // is the barrier that publishes their writes back to the serve loop
  // (guarded-by-complete has nothing to check here — see DESIGN.md).
  bool query_active_ = false;
  Graph pattern_;
  Plan plan_;
  QueryClusters qc_;
  std::vector<VertexId> owned_roots_;
  size_t root_morsel_ = 1;
  std::atomic<size_t> root_next_{0};
  std::atomic<size_t> task_next_{0};
  std::vector<ShardSpec> specs_;
  std::vector<ExecOptions> exec_options_;
  std::vector<std::unique_ptr<Executor>> executors_;
  std::vector<std::vector<ShardTask>> emit_buf_;       // per thread
  std::vector<std::vector<VertexId>> embedding_buf_;   // per thread, flat
};

}  // namespace shard
}  // namespace csce

#endif  // CSCE_SHARD_WORKER_H_
