#include "shard/shard_plan.h"

#include <algorithm>
#include <fstream>
#include <numeric>
#include <ostream>

#include "graph/graph_builder.h"

namespace csce {
namespace shard {
namespace {

constexpr uint32_t kPlanMagic = 0x4C505343;  // "CSPL" little-endian
constexpr uint32_t kPlanVersion = 1;
// Same allocation-bomb guard philosophy as ccsr_io: counts in the file
// must be backed by actual bytes before anything is resized to them.
constexpr uint32_t kMaxPlausibleShards = 1u << 16;

uint64_t Mix64(uint64_t x) {
  // splitmix64 finalizer: cheap, well-distributed, and stable across
  // platforms (the hash partition must be deterministic everywhere).
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

template <typename T>
void WritePod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return in.good();
}

std::vector<uint32_t> HashPartition(uint32_t n, uint32_t shards) {
  std::vector<uint32_t> owner(n);
  for (uint32_t v = 0; v < n; ++v) {
    owner[v] = static_cast<uint32_t>(Mix64(v) % shards);
  }
  return owner;
}

std::vector<uint32_t> LabelAwarePartition(const Graph& g, uint32_t shards) {
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> owner(n, shards);  // `shards` = unassigned
  // Highest degree first: the hubs whose placement matters most are
  // assigned while every shard still has room, and the long tail of
  // low-degree vertices then follows its neighbors. Ties break by id,
  // keeping the whole assignment deterministic.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return g.Degree(a) > g.Degree(b);
  });
  Label max_label = 0;
  for (VertexId v = 0; v < n; ++v) {
    max_label = std::max(max_label, g.VertexLabel(v));
  }
  const double capacity =
      static_cast<double>(n) / shards * 1.05 + 1.0;  // 5% imbalance slack
  std::vector<uint64_t> load(shards, 0);
  std::vector<uint64_t> label_count(static_cast<size_t>(shards) *
                                    (max_label + 1));
  std::vector<uint64_t> neighbor_count(shards);
  for (VertexId v : order) {
    std::fill(neighbor_count.begin(), neighbor_count.end(), 0);
    for (const Neighbor& nb : g.OutNeighbors(v)) {
      if (owner[nb.v] < shards) ++neighbor_count[owner[nb.v]];
    }
    if (g.directed()) {
      for (const Neighbor& nb : g.InNeighbors(v)) {
        if (owner[nb.v] < shards) ++neighbor_count[owner[nb.v]];
      }
    }
    const Label lv = g.VertexLabel(v);
    uint32_t best = 0;
    double best_score = -1.0;
    for (uint32_t s = 0; s < shards; ++s) {
      if (static_cast<double>(load[s]) >= capacity) continue;
      // LDG: neighbor affinity discounted by fill, so a nearly full
      // shard stops attracting vertices. The label term (worth at most
      // one neighbor) nudges same-label vertices together, keeping
      // cluster rows local, without overriding real adjacency.
      double affinity =
          1.0 + static_cast<double>(neighbor_count[s]) +
          static_cast<double>(label_count[static_cast<size_t>(s) *
                                              (max_label + 1) +
                                          lv]) /
              (static_cast<double>(load[s]) + 1.0);
      double score = affinity * (1.0 - static_cast<double>(load[s]) / capacity);
      if (score > best_score) {
        best_score = score;
        best = s;
      }
    }
    owner[v] = best;
    ++load[best];
    ++label_count[static_cast<size_t>(best) * (max_label + 1) + lv];
  }
  return owner;
}

}  // namespace

const char* StrategyName(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kHash:
      return "hash";
    case PartitionStrategy::kLabelAware:
      return "label";
  }
  return "unknown";
}

bool ParseStrategy(const std::string& name, PartitionStrategy* out) {
  if (name == "hash") {
    *out = PartitionStrategy::kHash;
  } else if (name == "label" || name == "label-aware") {
    *out = PartitionStrategy::kLabelAware;
  } else {
    return false;
  }
  return true;
}

ShardPlan ShardPlan::Build(const Graph& g, const ShardPlanOptions& options) {
  ShardPlan plan;
  plan.num_shards_ = std::max<uint32_t>(options.num_shards, 1);
  plan.strategy_ = options.strategy;
  if (plan.num_shards_ == 1) {
    plan.owner_.assign(g.NumVertices(), 0);
  } else if (options.strategy == PartitionStrategy::kHash) {
    plan.owner_ = HashPartition(g.NumVertices(), plan.num_shards_);
  } else {
    plan.owner_ = LabelAwarePartition(g, plan.num_shards_);
  }
  plan.FinishTables(g);
  return plan;
}

void ShardPlan::FinishTables(const Graph& g) {
  owned_counts_.assign(num_shards_, 0);
  for (uint32_t s : owner_) ++owned_counts_[s];
  boundary_edges_ = 0;
  // A vertex is a replica of shard s when a boundary edge pulls it into
  // s's subgraph; dedupe with one mark pass per shard list.
  std::vector<std::vector<VertexId>> reps(num_shards_);
  g.ForEachEdge([&](const Edge& e) {
    uint32_t so = owner_[e.src];
    uint32_t to = owner_[e.dst];
    if (so == to) return;
    ++boundary_edges_;
    reps[so].push_back(e.dst);
    reps[to].push_back(e.src);
  });
  replicas_.assign(num_shards_, {});
  for (uint32_t s = 0; s < num_shards_; ++s) {
    std::sort(reps[s].begin(), reps[s].end());
    reps[s].erase(std::unique(reps[s].begin(), reps[s].end()), reps[s].end());
    replicas_[s] = std::move(reps[s]);
  }
}

Status ShardPlan::ExtractShard(const Graph& g, uint32_t s, Graph* out) const {
  if (s >= num_shards_) return Status::InvalidArgument("shard out of range");
  if (g.NumVertices() != owner_.size()) {
    return Status::InvalidArgument("graph does not match the shard plan");
  }
  GraphBuilder builder(g.directed());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    builder.AddVertex(g.VertexLabel(v));
  }
  g.ForEachEdge([&](const Edge& e) {
    if (owner_[e.src] == s || owner_[e.dst] == s) {
      builder.AddEdge(e.src, e.dst, e.elabel);
    }
  });
  return builder.Build(out);
}

std::string ShardPlan::PlanPath(const std::string& base) {
  return base + ".shardplan";
}

std::string ShardPlan::ShardCcsrPath(const std::string& base, uint32_t s) {
  return base + ".shard" + std::to_string(s);
}

Status ShardPlan::Save(std::ostream& out) const {
  WritePod(out, kPlanMagic);
  WritePod(out, kPlanVersion);
  WritePod(out, num_shards_);
  WritePod(out, static_cast<uint8_t>(strategy_));
  WritePod(out, static_cast<uint32_t>(owner_.size()));
  out.write(reinterpret_cast<const char*>(owner_.data()),
            static_cast<std::streamsize>(owner_.size() * sizeof(uint32_t)));
  WritePod(out, boundary_edges_);
  for (uint32_t s = 0; s < num_shards_; ++s) {
    WritePod(out, static_cast<uint32_t>(replicas_[s].size()));
    out.write(
        reinterpret_cast<const char*>(replicas_[s].data()),
        static_cast<std::streamsize>(replicas_[s].size() * sizeof(VertexId)));
  }
  if (!out.good()) return Status::IOError("shard plan write failed");
  return Status::OK();
}

Status ShardPlan::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  CSCE_RETURN_IF_ERROR(Save(out));
  out.flush();
  if (!out.good()) return Status::IOError("flush failed for " + path);
  return Status::OK();
}

Status ShardPlan::Load(std::istream& in, ShardPlan* out) {
  *out = ShardPlan();
  uint32_t magic = 0, version = 0, num_vertices = 0;
  uint8_t strategy = 0;
  if (!ReadPod(in, &magic) || magic != kPlanMagic) {
    return Status::Corruption("not a shard plan file (bad magic)");
  }
  if (!ReadPod(in, &version) || version != kPlanVersion) {
    return Status::Corruption("unsupported shard plan version");
  }
  if (!ReadPod(in, &out->num_shards_) || out->num_shards_ == 0 ||
      out->num_shards_ > kMaxPlausibleShards) {
    return Status::Corruption("implausible shard count");
  }
  if (!ReadPod(in, &strategy) || strategy > 1) {
    return Status::Corruption("unknown partition strategy");
  }
  out->strategy_ = static_cast<PartitionStrategy>(strategy);
  if (!ReadPod(in, &num_vertices) || num_vertices > (1u << 28)) {
    // The cap bounds the resize below: a corrupt count must not become
    // a multi-gigabyte allocation before the read fails.
    return Status::Corruption("truncated or implausible shard plan header");
  }
  out->owner_.resize(num_vertices);
  in.read(reinterpret_cast<char*>(out->owner_.data()),
          static_cast<std::streamsize>(num_vertices * sizeof(uint32_t)));
  if (!in.good()) return Status::Corruption("truncated owner table");
  out->owned_counts_.assign(out->num_shards_, 0);
  for (uint32_t s : out->owner_) {
    if (s >= out->num_shards_) {
      return Status::Corruption("owner table entry out of range");
    }
    ++out->owned_counts_[s];
  }
  if (!ReadPod(in, &out->boundary_edges_)) {
    return Status::Corruption("truncated shard plan");
  }
  out->replicas_.assign(out->num_shards_, {});
  for (uint32_t s = 0; s < out->num_shards_; ++s) {
    uint32_t count = 0;
    if (!ReadPod(in, &count) || count > num_vertices) {
      return Status::Corruption("implausible replica count");
    }
    out->replicas_[s].resize(count);
    in.read(reinterpret_cast<char*>(out->replicas_[s].data()),
            static_cast<std::streamsize>(count * sizeof(VertexId)));
    if (!in.good()) return Status::Corruption("truncated replica table");
    for (size_t i = 0; i < count; ++i) {
      VertexId v = out->replicas_[s][i];
      if (v >= num_vertices || (i > 0 && v <= out->replicas_[s][i - 1])) {
        return Status::Corruption("replica table not sorted/in range");
      }
      if (out->owner_[v] == s) {
        return Status::Corruption("replica owned by its own shard");
      }
    }
  }
  return Status::OK();
}

Status ShardPlan::LoadFromFile(const std::string& path, ShardPlan* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  return Load(in, out);
}

}  // namespace shard
}  // namespace csce
