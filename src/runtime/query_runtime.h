#ifndef CSCE_RUNTIME_QUERY_RUNTIME_H_
#define CSCE_RUNTIME_QUERY_RUNTIME_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ccsr/ccsr.h"
#include "ccsr/cluster_cache.h"
#include "engine/matcher.h"
#include "graph/graph.h"
#include "obs/json.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/stop_token.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace csce {

/// Session-level configuration of a QueryRuntime.
struct RuntimeOptions {
  /// Pool threads executing queries (0 = hardware concurrency).
  uint32_t worker_threads = 0;
  /// Admission control: queries executing at once (0 = worker_threads).
  /// Admitted queries hold a slot until completion; the rest wait in
  /// the queue, accruing queue_wait_seconds against their deadline.
  uint32_t max_inflight = 0;
  /// Default intra-query morsel parallelism for jobs that leave
  /// MatchOptions::num_threads at 1 (1 = serial per query; inter-query
  /// parallelism only).
  uint32_t threads_per_query = 1;
  /// Default per-query deadline in seconds, measured from submission
  /// (queueing counts against it). A job's own time_limit_seconds, if
  /// set, takes precedence. 0 = none.
  double default_deadline_seconds = 0.0;
  /// Share decompressed cluster views across the session's queries via
  /// one ClusterCache (the paper conclusion's read-overhead item).
  bool share_cluster_views = true;
  /// Transient-failure budget: a query whose attempt fails with a
  /// retryable status (IOError, ResourceExhausted — e.g. a sharded
  /// backend losing a worker) is re-run up to this many extra times
  /// within its remaining deadline. 0 = fail on the first error.
  /// Invalid inputs, cancellations and timeouts are never retried.
  uint32_t max_query_retries = 0;
  /// Test seam: when set, replaces the CsceMatcher invocation so the
  /// retry/outcome accounting can be driven by deterministic failures
  /// (the runtime-level analogue of shard::FaultInjector).
  std::function<Status(const Graph& pattern, const MatchOptions& options,
                       MatchResult* result)>
      match_fn;
};

/// One unit of work for the session: a pattern plus its match options.
struct QueryJob {
  Graph pattern;
  MatchOptions options;
  std::string tag;  // echoed in the outcome, for reporting
};

/// Per-query outcome. `result` is meaningful only when status.ok() and
/// `executed`; a query whose deadline expired while queued, or that was
/// cancelled before admission, is reported without being run.
struct QueryOutcome {
  std::string tag;
  Status status = Status::OK();
  MatchResult result;
  bool executed = false;
  /// Extra attempts consumed recovering from transient failures; the
  /// reported status/result are those of the final attempt.
  uint32_t retries = 0;
  double queue_wait_seconds = 0.0;  // submission -> admission
  double total_seconds = 0.0;       // submission -> completion
};

/// Aggregate counters across everything the runtime has executed.
struct RuntimeMetrics {
  uint64_t submitted = 0;
  uint64_t completed = 0;         // executed with status OK
  uint64_t failed = 0;            // non-OK status
  uint64_t timed_out = 0;         // includes deadline-expired-in-queue
  /// Queries whose deadline expired while still waiting for an
  /// admission slot — reported timed_out without ever executing.
  uint64_t deadline_queue_expired = 0;
  uint64_t limit_reached = 0;
  uint64_t cancelled = 0;
  /// Total transient-failure retry attempts across all queries
  /// (RuntimeOptions::max_query_retries governs the per-query budget).
  uint64_t retries = 0;
  uint64_t embeddings = 0;
  double queue_wait_seconds = 0.0;
  double exec_seconds = 0.0;       // admission -> completion
  double read_seconds = 0.0;       // per-stage sums over executed queries
  double plan_seconds = 0.0;
  double enumerate_seconds = 0.0;
  double wall_seconds = 0.0;       // sum of RunBatch wall times
  uint64_t cluster_cache_hits = 0;
  uint64_t cluster_cache_misses = 0;

  /// All fields as a flat JSON object, keys matching the field names
  /// (csce_serve's STATS reply and summary are built from this).
  obs::JsonValue ToJson() const;
};

/// Multi-query session service over one shared Ccsr: a worker pool
/// executes batches of jobs concurrently against a shared (thread-safe)
/// ClusterCache, with admission control, per-query deadlines, and
/// cooperative session-wide cancellation.
///
/// Thread-safety: RunBatch is serialized per runtime (one batch at a
/// time; concurrent callers queue on an internal mutex). CancelAll and
/// metrics() may be called from any thread at any point, in particular
/// while a batch is running.
class QueryRuntime {
 public:
  /// `data` must outlive the runtime and must not be mutated while
  /// queries are in flight (see ClusterCache's thread-safety note).
  QueryRuntime(const Ccsr* data, const RuntimeOptions& options);

  /// Executes every job, respecting admission limits and deadlines.
  /// `outcomes` is resized to jobs.size(), index-aligned with `jobs`.
  /// Returns OK even when individual jobs fail (see their statuses);
  /// per-job failures never abort the batch.
  Status RunBatch(const std::vector<QueryJob>& jobs,
                  std::vector<QueryOutcome>* outcomes)
      CSCE_EXCLUDES(batch_mu_, admit_mu_, metrics_mu_);

  /// Requests cooperative cancellation of all queued and in-flight
  /// queries. Queued jobs are dropped (executed=false); running ones
  /// unwind at their next poll with result.cancelled set. The flag is
  /// sticky: reset it with ResetCancellation() before the next batch.
  void CancelAll() CSCE_EXCLUDES(admit_mu_);
  void ResetCancellation();
  bool cancel_requested() const { return session_stop_.StopRequested(); }

  RuntimeMetrics metrics() const CSCE_EXCLUDES(metrics_mu_);
  ClusterCache& cluster_cache() { return cache_; }
  const RuntimeOptions& options() const { return options_; }

 private:
  void RunOne(const QueryJob& job, double submit_seconds,
              const WallTimer& batch_timer, QueryOutcome* outcome)
      CSCE_EXCLUDES(admit_mu_, metrics_mu_);
  void Admit(double* queue_wait, double submit_seconds,
             const WallTimer& batch_timer, bool* cancelled_in_queue)
      CSCE_EXCLUDES(admit_mu_);
  void Release() CSCE_EXCLUDES(admit_mu_);
  void Account(const QueryOutcome& outcome) CSCE_EXCLUDES(metrics_mu_);

  /// Const after construction; the Ccsr's no-mutation-while-in-flight
  /// contract is documented on the constructor.
  const Ccsr* data_ CSCE_NOT_GUARDED;
  RuntimeOptions options_ CSCE_NOT_GUARDED;  // const after construction
  ClusterCache cache_ CSCE_NOT_GUARDED;      // internally synchronized
  ThreadPool pool_ CSCE_NOT_GUARDED;         // internally synchronized
  /// All-atomic. CancelAll sets it under admit_mu_ only so the write
  /// pairs with admit_cv_ wakeups (a waiter cannot miss the request).
  StopToken session_stop_ CSCE_NOT_GUARDED;

  /// Lock order (DESIGN.md): batch_mu_ -> admit_mu_ -> metrics_mu_.
  /// Never acquired together in practice, but nested acquisition must
  /// follow this order.
  Mutex batch_mu_;  // serializes RunBatch; guards no members

  Mutex admit_mu_;
  CondVar admit_cv_;
  uint32_t inflight_ CSCE_GUARDED_BY(admit_mu_) = 0;

  mutable Mutex metrics_mu_;
  RuntimeMetrics metrics_ CSCE_GUARDED_BY(metrics_mu_);
};

}  // namespace csce

#endif  // CSCE_RUNTIME_QUERY_RUNTIME_H_
