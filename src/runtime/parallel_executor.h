#ifndef CSCE_RUNTIME_PARALLEL_EXECUTOR_H_
#define CSCE_RUNTIME_PARALLEL_EXECUTOR_H_

#include <cstdint>

#include "ccsr/ccsr.h"
#include "engine/executor.h"
#include "plan/planner.h"
#include "util/status.h"

namespace csce {

/// Knobs for intra-query morsel parallelism.
struct ParallelOptions {
  /// Worker count. 0 = hardware concurrency; 1 falls back to the plain
  /// serial Executor (identical behavior, no threads spawned).
  uint32_t num_threads = 0;
  /// Root candidates per claimed morsel. 0 = auto: small enough that
  /// every worker gets several claims (load balance against skewed
  /// subtree sizes), large enough to amortize the claim and keep
  /// SCE-cache locality within a worker.
  uint32_t morsel_size = 0;
};

/// Morsel-driven parallel enumeration: splits the *root* position's
/// candidate set into morsels claimed from a shared atomic counter, and
/// runs one independent serial Executor per worker — each with private
/// SCE caches, mapping stacks, and stats — over the morsels it claims.
/// Splitting only the first matching-order position means plan
/// semantics, candidate computation, and SCE reuse *within* a worker
/// are untouched; workers never share mutable state, so no candidate
/// set is ever computed under a lock.
///
/// Determinism: without limits the merged embedding count equals the
/// serial count exactly (the root candidate set is partitioned).  With
/// `max_embeddings = k`, every worker is capped at k, so the merged
/// count is min(total, k) and `limit_reached` ⇔ total ≥ k — the same
/// observable result on every run regardless of scheduling (the first
/// worker to hit its cap broadcasts a stop to cut the tail short).
///
/// The embedding callback, if any, is invoked concurrently from worker
/// threads and must be thread-safe; with a limit, at most k callbacks
/// are delivered (which k embeddings is scheduling-dependent).
class ParallelExecutor {
 public:
  /// Same lifetime contract as Executor: all referents must outlive
  /// the ParallelExecutor.
  ParallelExecutor(const Ccsr& gc, const QueryClusters& qc, const Plan& plan);

  /// Runs the enumeration across `popts.num_threads` workers and merges
  /// the per-worker ExecStats (counter sums; flag ORs as documented
  /// above; `seconds` is the wall time of the whole parallel run).
  Status Run(const ExecOptions& options, const ParallelOptions& popts,
             ExecStats* stats);

 private:
  // Mutex-free by design: workers share only the atomic morsel counter
  // and a StopToken (both local to Run); everything else is per-worker
  // state joined at the pool barrier, so there is nothing for the
  // thread-safety analysis to guard here.
  const Ccsr& gc_;
  const QueryClusters& qc_;
  const Plan& plan_;
};

}  // namespace csce

#endif  // CSCE_RUNTIME_PARALLEL_EXECUTOR_H_
