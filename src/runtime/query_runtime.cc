#include "runtime/query_runtime.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace csce {
namespace {

struct ServiceMetrics {
  obs::Counter admissions;
  obs::Counter deadline_queue_expired;
  obs::Counter batches;
  obs::Counter query_retries;
  obs::Histogram queue_wait_seconds;

  static const ServiceMetrics& Get() {
    static const ServiceMetrics m = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Global();
      return ServiceMetrics{r.counter("runtime.admissions"),
                            r.counter("runtime.deadline_queue_expired"),
                            r.counter("runtime.batches"),
                            r.counter("runtime.query_retries"),
                            r.histogram("runtime.queue_wait_seconds")};
    }();
    return m;
  }
};

/// Worth a second attempt? Only failures that can heal on their own
/// (I/O trouble, resource pressure); bad inputs and engine-reported
/// conditions (timeout, cancellation) fail identically every time.
bool IsRetryable(const Status& st) {
  return st.code() == StatusCode::kIOError ||
         st.code() == StatusCode::kResourceExhausted;
}

RuntimeOptions Normalize(RuntimeOptions options) {
  if (options.worker_threads == 0) {
    options.worker_threads = ThreadPool::DefaultThreads();
  }
  if (options.max_inflight == 0) {
    options.max_inflight = options.worker_threads;
  }
  if (options.threads_per_query == 0) options.threads_per_query = 1;
  return options;
}

}  // namespace

QueryRuntime::QueryRuntime(const Ccsr* data, const RuntimeOptions& options)
    : data_(data),
      options_(Normalize(options)),
      cache_(data),
      pool_(options_.worker_threads) {}

Status QueryRuntime::RunBatch(const std::vector<QueryJob>& jobs,
                              std::vector<QueryOutcome>* outcomes) {
  MutexLock batch_lock(batch_mu_);
  obs::Span span("runtime.batch");
  ServiceMetrics::Get().batches.Increment();
  outcomes->assign(jobs.size(), QueryOutcome{});
  WallTimer batch_timer;
  {
    MutexLock lock(metrics_mu_);
    metrics_.submitted += jobs.size();
  }
  for (size_t i = 0; i < jobs.size(); ++i) {
    const QueryJob* job = &jobs[i];
    QueryOutcome* outcome = &(*outcomes)[i];
    const double submit_seconds = batch_timer.Seconds();
    pool_.Submit([this, job, submit_seconds, &batch_timer, outcome] {
      RunOne(*job, submit_seconds, batch_timer, outcome);
    });
  }
  pool_.Wait();
  {
    MutexLock lock(metrics_mu_);
    metrics_.wall_seconds += batch_timer.Seconds();
    metrics_.cluster_cache_hits = cache_.hits();
    metrics_.cluster_cache_misses = cache_.misses();
  }
  return Status::OK();
}

void QueryRuntime::RunOne(const QueryJob& job, double submit_seconds,
                          const WallTimer& batch_timer,
                          QueryOutcome* outcome) {
  outcome->tag = job.tag;
  bool cancelled_in_queue = false;
  Admit(&outcome->queue_wait_seconds, submit_seconds, batch_timer,
        &cancelled_in_queue);
  if (cancelled_in_queue) {
    outcome->result.cancelled = true;
    outcome->total_seconds = batch_timer.Seconds() - submit_seconds;
    Account(*outcome);
    return;
  }

  // The deadline runs from submission, so time burned in the admission
  // queue shrinks (or exhausts) the enumeration budget.
  const double deadline = job.options.time_limit_seconds > 0
                              ? job.options.time_limit_seconds
                              : options_.default_deadline_seconds;
  if (deadline > 0 && outcome->queue_wait_seconds >= deadline) {
    outcome->result.timed_out = true;
    outcome->total_seconds = batch_timer.Seconds() - submit_seconds;
    ServiceMetrics::Get().deadline_queue_expired.Increment();
    {
      MutexLock lock(metrics_mu_);
      ++metrics_.deadline_queue_expired;
    }
    Release();
    Account(*outcome);
    return;
  }

  MatchOptions options = job.options;
  if (deadline > 0) {
    options.time_limit_seconds = deadline - outcome->queue_wait_seconds;
  }
  if (options.num_threads == 1) {
    options.num_threads = options_.threads_per_query;
  }
  options.stop = &session_stop_;

  CsceMatcher matcher(data_,
                      options_.share_cluster_views ? &cache_ : nullptr);
  outcome->executed = true;
  for (;;) {
    outcome->result = MatchResult{};
    outcome->status =
        options_.match_fn
            ? options_.match_fn(job.pattern, options, &outcome->result)
            : matcher.Match(job.pattern, options, &outcome->result);
    if (outcome->status.ok() || !IsRetryable(outcome->status) ||
        outcome->retries >= options_.max_query_retries ||
        session_stop_.StopRequested()) {
      break;
    }
    // The retry budget never extends the deadline: re-attempts run on
    // whatever time the failed ones left behind.
    if (deadline > 0) {
      const double elapsed = batch_timer.Seconds() - submit_seconds;
      if (elapsed >= deadline) break;
      options.time_limit_seconds = deadline - elapsed;
    }
    ++outcome->retries;
    ServiceMetrics::Get().query_retries.Increment();
  }
  outcome->total_seconds = batch_timer.Seconds() - submit_seconds;
  Release();
  Account(*outcome);
}

void QueryRuntime::Admit(double* queue_wait, double submit_seconds,
                         const WallTimer& batch_timer,
                         bool* cancelled_in_queue) {
  MutexLock lock(admit_mu_);
  while (inflight_ >= options_.max_inflight && !session_stop_.StopRequested()) {
    admit_cv_.Wait(admit_mu_);
  }
  *queue_wait = batch_timer.Seconds() - submit_seconds;
  if (session_stop_.StopRequested()) {
    *cancelled_in_queue = true;
    return;
  }
  ++inflight_;
  const ServiceMetrics& m = ServiceMetrics::Get();
  m.admissions.Increment();
  m.queue_wait_seconds.Record(*queue_wait);
}

void QueryRuntime::Release() {
  {
    MutexLock lock(admit_mu_);
    --inflight_;
  }
  admit_cv_.NotifyOne();
}

void QueryRuntime::CancelAll() {
  {
    MutexLock lock(admit_mu_);
    session_stop_.RequestStop();
  }
  admit_cv_.NotifyAll();
}

void QueryRuntime::ResetCancellation() { session_stop_.Reset(); }

void QueryRuntime::Account(const QueryOutcome& outcome) {
  MutexLock lock(metrics_mu_);
  metrics_.queue_wait_seconds += outcome.queue_wait_seconds;
  metrics_.exec_seconds +=
      outcome.total_seconds - outcome.queue_wait_seconds;
  metrics_.retries += outcome.retries;
  if (!outcome.status.ok()) {
    ++metrics_.failed;
    return;
  }
  if (outcome.result.cancelled) ++metrics_.cancelled;
  if (outcome.result.timed_out) ++metrics_.timed_out;
  if (outcome.result.limit_reached) ++metrics_.limit_reached;
  if (outcome.executed) {
    ++metrics_.completed;
    metrics_.embeddings += outcome.result.embeddings;
    metrics_.read_seconds += outcome.result.read_seconds;
    metrics_.plan_seconds += outcome.result.plan_seconds;
    metrics_.enumerate_seconds += outcome.result.enumerate_seconds;
  }
}

RuntimeMetrics QueryRuntime::metrics() const {
  MutexLock lock(metrics_mu_);
  return metrics_;
}

obs::JsonValue RuntimeMetrics::ToJson() const {
  obs::JsonValue doc = obs::JsonValue::Object();
  doc.Set("queries", submitted);
  doc.Set("completed", completed);
  doc.Set("failed", failed);
  doc.Set("timed_out", timed_out);
  doc.Set("deadline_queue_expired", deadline_queue_expired);
  doc.Set("limit_reached", limit_reached);
  doc.Set("cancelled", cancelled);
  doc.Set("retries", retries);
  doc.Set("embeddings", embeddings);
  doc.Set("queue_wait_seconds", queue_wait_seconds);
  doc.Set("exec_seconds", exec_seconds);
  doc.Set("read_seconds", read_seconds);
  doc.Set("plan_seconds", plan_seconds);
  doc.Set("enumerate_seconds", enumerate_seconds);
  doc.Set("wall_seconds", wall_seconds);
  doc.Set("cluster_cache_hits", cluster_cache_hits);
  doc.Set("cluster_cache_misses", cluster_cache_misses);
  return doc;
}

}  // namespace csce
