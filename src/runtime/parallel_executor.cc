#include "runtime/parallel_executor.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stop_token.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace csce {
namespace {

struct RuntimeMetricsReg {
  obs::Counter parallel_runs;
  // Same named counter the executor flushes into (registration is
  // idempotent): the probe's root candidate computation is real work
  // merged stats count, so the metric must count it too.
  obs::Counter sce_recomputes;
  // Likewise the probe's root candidate-set sample (the workers flush
  // their own samples when their Run ends).
  obs::Histogram candidate_set_size;
  // The probe's LPI share: with pruning on, the root set is filtered
  // exactly once, by the probe — workers enumerate pre-filtered
  // morsels. Flushing it here keeps the process counters equal to a
  // single-threaded run's.
  obs::Counter prune_candidates_removed;
  obs::Histogram prune_shrink_ratio;
  obs::Histogram worker_idle_seconds;

  static const RuntimeMetricsReg& Get() {
    static const RuntimeMetricsReg m = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Global();
      return RuntimeMetricsReg{r.counter("runtime.parallel_runs"),
                               r.counter("engine.sce_recomputes"),
                               r.histogram("engine.candidate_set_size"),
                               r.counter("prune.candidates_removed"),
                               r.histogram("prune.shrink_ratio_pct"),
                               r.histogram("runtime.worker_idle_seconds")};
    }();
    return m;
  }
};

// Auto morsel sizing: aim for ~8 claims per worker so stragglers with
// heavy subtrees get rebalanced, floored at 1 (tiny candidate sets) and
// capped so a single claim never monopolizes a skewed workload.
size_t AutoMorselSize(size_t roots, uint32_t threads) {
  size_t m = roots / (static_cast<size_t>(threads) * 8);
  return std::clamp<size_t>(m, 1, 4096);
}

}  // namespace

ParallelExecutor::ParallelExecutor(const Ccsr& gc, const QueryClusters& qc,
                                   const Plan& plan)
    : gc_(gc), qc_(qc), plan_(plan) {}

Status ParallelExecutor::Run(const ExecOptions& options,
                             const ParallelOptions& popts, ExecStats* stats) {
  uint32_t threads =
      popts.num_threads == 0 ? ThreadPool::DefaultThreads() : popts.num_threads;

  // Root candidate computation doubles as option validation (Prepare).
  Executor probe(gc_, qc_, plan_);
  std::vector<VertexId> roots;
  ExecStats probe_stats;
  CSCE_RETURN_IF_ERROR(
      probe.ComputeRootCandidates(options, &roots, &probe_stats));

  const size_t morsel =
      popts.morsel_size > 0 ? popts.morsel_size
                            : AutoMorselSize(roots.size(), threads);
  // Serial fallback: one worker, or too few morsels to win anything.
  if (threads <= 1 || roots.size() <= morsel) {
    return probe.Run(options, stats);
  }
  threads = static_cast<uint32_t>(
      std::min<size_t>(threads, (roots.size() + morsel - 1) / morsel));

  WallTimer wall;
  std::atomic<size_t> next{0};
  std::atomic<uint64_t> delivered{0};  // callback admission under a limit
  StopToken broadcast;  // limit hit / callback stop / external cancel
  broadcast.SetParent(options.stop);
  const uint64_t limit = options.max_embeddings;

  ExecOptions worker_options = options;
  worker_options.stop = &broadcast;
  worker_options.root_claim = [&next, &roots,
                               morsel]() -> std::span<const VertexId> {
    size_t begin = next.fetch_add(morsel, std::memory_order_relaxed);
    if (begin >= roots.size()) return {};
    return std::span<const VertexId>(roots).subspan(
        begin, std::min(morsel, roots.size() - begin));
  };
  if (options.callback) {
    // Concurrent delivery; under a limit, admit at most `limit`
    // embeddings to the user callback across all workers.
    worker_options.callback = [&delivered, &broadcast, limit,
                               user = options.callback](
                                  std::span<const VertexId> mapping) {
      if (limit > 0 &&
          delivered.fetch_add(1, std::memory_order_relaxed) >= limit) {
        return false;
      }
      if (!user(mapping)) {
        broadcast.RequestStop();
        return false;
      }
      return true;
    };
  }

  std::vector<ExecStats> worker_stats(threads);
  std::vector<Status> worker_status(threads, Status::OK());
  {
    ThreadPool pool(threads);
    for (uint32_t t = 0; t < threads; ++t) {
      pool.Submit([this, t, &worker_options, &worker_stats, &worker_status,
                   &broadcast] {
        obs::Span span("runtime.worker");
        Executor ex(gc_, qc_, plan_);
        worker_status[t] = ex.Run(worker_options, &worker_stats[t]);
        // A worker that hit the embedding cap or its deadline has
        // decided the run's outcome; stop the others promptly.
        if (worker_stats[t].limit_reached || worker_stats[t].timed_out) {
          broadcast.RequestStop();
        }
      });
    }
    pool.Wait();
  }

  ExecStats merged;
  // The probe's root candidate computation is real work the serial
  // path would also count — including its LPI filtering of the root
  // set, which the workers (enumerating pre-filtered morsels) never
  // repeat at depth 0.
  merged.candidate_sets_computed = probe_stats.candidate_sets_computed;
  merged.candidate_set_size.Merge(probe_stats.candidate_set_size);
  merged.intersect_elements = probe_stats.intersect_elements;
  merged.prune_candidates_removed = probe_stats.prune_candidates_removed;
  merged.prune_shrink_ratio.Merge(probe_stats.prune_shrink_ratio);
  double busy_seconds = 0.0;
  for (uint32_t t = 0; t < threads; ++t) {
    CSCE_RETURN_IF_ERROR(worker_status[t]);
    merged.embeddings += worker_stats[t].embeddings;
    merged.search_nodes += worker_stats[t].search_nodes;
    merged.candidate_sets_computed += worker_stats[t].candidate_sets_computed;
    merged.candidate_sets_reused += worker_stats[t].candidate_sets_reused;
    merged.morsels_claimed += worker_stats[t].morsels_claimed;
    merged.candidate_set_size.Merge(worker_stats[t].candidate_set_size);
    merged.intersect_elements += worker_stats[t].intersect_elements;
    merged.prune_candidates_removed +=
        worker_stats[t].prune_candidates_removed;
    merged.prune_extensions_skipped +=
        worker_stats[t].prune_extensions_skipped;
    merged.prune_aux_hits += worker_stats[t].prune_aux_hits;
    merged.prune_shrink_ratio.Merge(worker_stats[t].prune_shrink_ratio);
    merged.timed_out |= worker_stats[t].timed_out;
    busy_seconds += worker_stats[t].seconds;
  }
  if (limit > 0 && merged.embeddings >= limit) {
    merged.embeddings = limit;
    merged.limit_reached = true;
  }
  // Broadcast stops triggered internally (limit, callback false) are
  // not cancellations; only the caller's token is.
  merged.cancelled = options.stop != nullptr && options.stop->StopRequested();
  merged.seconds = wall.Seconds();
  // Load-imbalance indicator: total worker wall time not spent inside
  // Executor::Run (pool spin-up, claim contention, straggler waits).
  merged.worker_idle_seconds =
      std::max(0.0, static_cast<double>(threads) * merged.seconds -
                        busy_seconds);
  *stats = merged;

  const RuntimeMetricsReg& m = RuntimeMetricsReg::Get();
  m.parallel_runs.Increment();
  m.sce_recomputes.Increment();  // the probe's share of merged stats
  m.candidate_set_size.Record(static_cast<double>(roots.size()));
  m.prune_candidates_removed.Add(probe_stats.prune_candidates_removed);
  m.prune_shrink_ratio.Merge(probe_stats.prune_shrink_ratio);
  m.worker_idle_seconds.Record(merged.worker_idle_seconds);
  return Status::OK();
}

}  // namespace csce
