#include "graph/graph_stats.h"

#include <algorithm>
#include <cstdio>

namespace csce {

GraphStats ComputeStats(const Graph& g) {
  GraphStats s;
  s.directed = g.directed();
  s.vertex_count = g.NumVertices();
  s.edge_count = g.NumEdges();
  s.label_count = g.VertexLabelCount();
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    s.max_in_degree = std::max(s.max_in_degree, g.InDegree(v));
    s.max_out_degree = std::max(s.max_out_degree, g.OutDegree(v));
  }
  if (g.NumVertices() > 0) {
    // Average number of neighbor endpoints per vertex: 2|E|/|V| for
    // both directed and undirected graphs (matches Table IV).
    s.average_degree =
        2.0 * static_cast<double>(g.NumEdges()) / g.NumVertices();
  }
  return s;
}

std::string StatsHeader() {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-14s %3s %10s %12s %7s %8s %8s %8s",
                "Data Graph", "Dir", "Vertices", "Edges", "Labels", "AvgDeg",
                "MaxIn", "MaxOut");
  return buf;
}

std::string FormatStatsRow(const std::string& name, const GraphStats& s) {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "%-14s %3s %10u %12llu %7u %8.1f %8u %8u", name.c_str(),
                s.directed ? "D" : "U", s.vertex_count,
                static_cast<unsigned long long>(s.edge_count), s.label_count,
                s.average_degree, s.max_in_degree, s.max_out_degree);
  return buf;
}

}  // namespace csce
