#ifndef CSCE_GRAPH_SUBGRAPH_H_
#define CSCE_GRAPH_SUBGRAPH_H_

#include <vector>

#include "graph/graph.h"

namespace csce {

/// Extracts the vertex-induced subgraph G[vertices]. Vertices are
/// renumbered 0..k-1 in the order given; labels are preserved.
/// Duplicate ids in `vertices` are a programming error.
Graph InducedSubgraph(const Graph& g, const std::vector<VertexId>& vertices);

/// Extracts the edge-induced subgraph from the given arcs of `g`
/// (arcs must exist in `g`). Vertices are the arcs' endpoints,
/// renumbered in first-appearance order.
Graph EdgeInducedSubgraph(const Graph& g, const std::vector<Edge>& edges);

/// True if the graph is connected, ignoring edge directions.
bool IsConnected(const Graph& g);

}  // namespace csce

#endif  // CSCE_GRAPH_SUBGRAPH_H_
