#ifndef CSCE_GRAPH_PATTERN_BUILDER_H_
#define CSCE_GRAPH_PATTERN_BUILDER_H_

#include <string>
#include <unordered_map>

#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "util/status.h"

namespace csce {

/// Fluent construction of pattern graphs with named vertices, for
/// query code that reads like the query:
///
///   Graph query;
///   Status st = PatternBuilder(/*directed=*/true)
///                   .Vertex("author", kUser)
///                   .Vertex("post", kPost)
///                   .Edge("author", "post", kAuthored)
///                   .Build(&query);
///
/// Vertices referenced in Edge() before being declared are created
/// with label 0; a later Vertex() call for the same name relabels
/// them. Vertex ids are assigned in first-mention order, so callbacks
/// can be decoded with VertexIdOf().
class PatternBuilder {
 public:
  explicit PatternBuilder(bool directed) : builder_(directed) {}

  PatternBuilder& Vertex(const std::string& name, Label label = kNoLabel);
  PatternBuilder& Edge(const std::string& from, const std::string& to,
                       Label elabel = kNoLabel);

  /// Id of a named vertex; kInvalidVertex if never mentioned.
  VertexId VertexIdOf(const std::string& name) const;

  Status Build(Graph* out);

 private:
  VertexId Intern(const std::string& name);

  GraphBuilder builder_;
  std::unordered_map<std::string, VertexId> names_;
  std::unordered_map<VertexId, Label> relabels_;
};

}  // namespace csce

#endif  // CSCE_GRAPH_PATTERN_BUILDER_H_
