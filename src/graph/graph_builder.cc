#include "graph/graph_builder.h"

#include <algorithm>
#include <string>
#include <unordered_set>

namespace csce {
namespace {

// Builds CSR offsets + sorted adjacency from arcs keyed by `KeyFn`.
void BuildAdjacency(uint32_t num_vertices, const std::vector<Edge>& arcs,
                    bool by_src, std::vector<uint64_t>* offsets,
                    std::vector<Neighbor>* nbrs) {
  offsets->assign(num_vertices + 1, 0);
  for (const Edge& e : arcs) {
    VertexId key = by_src ? e.src : e.dst;
    ++(*offsets)[key + 1];
  }
  for (uint32_t v = 0; v < num_vertices; ++v) {
    (*offsets)[v + 1] += (*offsets)[v];
  }
  nbrs->resize(arcs.size());
  std::vector<uint64_t> cursor(offsets->begin(), offsets->end() - 1);
  for (const Edge& e : arcs) {
    VertexId key = by_src ? e.src : e.dst;
    VertexId other = by_src ? e.dst : e.src;
    (*nbrs)[cursor[key]++] = Neighbor{other, e.elabel};
  }
  for (uint32_t v = 0; v < num_vertices; ++v) {
    std::sort(nbrs->begin() + (*offsets)[v], nbrs->begin() + (*offsets)[v + 1]);
  }
}

uint32_t CountDistinctLabels(const std::vector<Label>& labels) {
  std::unordered_set<Label> distinct(labels.begin(), labels.end());
  // Table IV convention: a graph whose only label is 0 reports 0 labels.
  if (distinct.size() == 1 && *distinct.begin() == kNoLabel) return 0;
  return static_cast<uint32_t>(distinct.size());
}

}  // namespace

VertexId GraphBuilder::AddVertex(Label label) {
  vlabels_.push_back(label);
  return static_cast<VertexId>(vlabels_.size() - 1);
}

VertexId GraphBuilder::AddVertices(uint32_t n, Label label) {
  VertexId first = static_cast<VertexId>(vlabels_.size());
  vlabels_.insert(vlabels_.end(), n, label);
  return first;
}

void GraphBuilder::AddEdge(VertexId src, VertexId dst, Label elabel) {
  edges_.push_back(Edge{src, dst, elabel});
}

Status GraphBuilder::Build(Graph* out) {
  const uint32_t n = static_cast<uint32_t>(vlabels_.size());
  for (const Edge& e : edges_) {
    if (e.src >= n || e.dst >= n) {
      return Status::InvalidArgument("edge endpoint out of range: (" +
                                     std::to_string(e.src) + ", " +
                                     std::to_string(e.dst) + ")");
    }
    if (e.src == e.dst) {
      return Status::InvalidArgument("self-loop at vertex " +
                                     std::to_string(e.src));
    }
  }

  // Deduplicate logical edges. For undirected graphs canonicalize to
  // src < dst first so {a,b} and {b,a} collapse.
  std::vector<Edge> logical = edges_;
  if (!directed_) {
    for (Edge& e : logical) {
      if (e.src > e.dst) std::swap(e.src, e.dst);
    }
  }
  std::sort(logical.begin(), logical.end());
  logical.erase(std::unique(logical.begin(), logical.end()), logical.end());

  // Expand to arcs: undirected edges are stored in both orientations.
  std::vector<Edge> arcs = logical;
  if (!directed_) {
    arcs.reserve(logical.size() * 2);
    for (const Edge& e : logical) {
      arcs.push_back(Edge{e.dst, e.src, e.elabel});
    }
  }

  Graph g;
  g.directed_ = directed_;
  g.num_edges_ = logical.size();
  g.vlabels_ = vlabels_;
  g.vlabel_count_ = CountDistinctLabels(vlabels_);

  std::unordered_set<Label> elabels;
  for (const Edge& e : logical) elabels.insert(e.elabel);
  g.elabel_count_ =
      (elabels.empty() || (elabels.size() == 1 && *elabels.begin() == kNoLabel))
          ? 0
          : static_cast<uint32_t>(elabels.size());

  BuildAdjacency(n, arcs, /*by_src=*/true, &g.out_offsets_, &g.out_nbrs_);
  if (directed_) {
    BuildAdjacency(n, arcs, /*by_src=*/false, &g.in_offsets_, &g.in_nbrs_);
  }

  Label max_label = 0;
  for (Label l : vlabels_) max_label = std::max(max_label, l);
  g.vlabel_freq_.assign(n == 0 ? 0 : max_label + 1, 0);
  for (Label l : vlabels_) ++g.vlabel_freq_[l];

  *out = std::move(g);
  return Status::OK();
}

void GraphBuilder::Reset() {
  vlabels_.clear();
  edges_.clear();
}

}  // namespace csce
