#ifndef CSCE_GRAPH_GRAPH_BUILDER_H_
#define CSCE_GRAPH_GRAPH_BUILDER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace csce {

/// Incrementally assembles a Graph. Typical use:
///
///   GraphBuilder b(/*directed=*/false);
///   VertexId a = b.AddVertex(/*label=*/1);
///   VertexId c = b.AddVertex(2);
///   b.AddEdge(a, c, /*elabel=*/0);
///   Graph g;
///   CSCE_CHECK(b.Build(&g).ok());
///
/// Self-loops are rejected at Build(). Duplicate (src, dst, elabel)
/// triples are deduplicated silently.
class GraphBuilder {
 public:
  explicit GraphBuilder(bool directed) : directed_(directed) {}

  /// Adds a vertex and returns its id (assigned consecutively from 0).
  VertexId AddVertex(Label label);

  /// Adds `n` vertices all carrying `label`; returns the first new id.
  VertexId AddVertices(uint32_t n, Label label);

  /// Adds an edge. For undirected builders the edge is symmetric.
  /// Endpoints must already exist (checked at Build()).
  void AddEdge(VertexId src, VertexId dst, Label elabel = kNoLabel);

  uint32_t NumVertices() const {
    return static_cast<uint32_t>(vlabels_.size());
  }

  /// Validates and finalizes into `*out`. The builder can be reused
  /// afterwards only by starting over (Reset()).
  Status Build(Graph* out);

  void Reset();

 private:
  bool directed_;
  std::vector<Label> vlabels_;
  std::vector<Edge> edges_;
};

}  // namespace csce

#endif  // CSCE_GRAPH_GRAPH_BUILDER_H_
