#include "graph/subgraph.h"

#include <unordered_map>
#include <vector>

#include "graph/graph_builder.h"
#include "util/logging.h"

namespace csce {

Graph InducedSubgraph(const Graph& g, const std::vector<VertexId>& vertices) {
  std::unordered_map<VertexId, VertexId> remap;
  remap.reserve(vertices.size());
  GraphBuilder builder(g.directed());
  for (VertexId v : vertices) {
    CSCE_CHECK(v < g.NumVertices());
    bool inserted =
        remap.emplace(v, builder.AddVertex(g.VertexLabel(v))).second;
    CSCE_CHECK(inserted);
  }
  for (VertexId v : vertices) {
    for (const Neighbor& n : g.OutNeighbors(v)) {
      auto it = remap.find(n.v);
      if (it == remap.end()) continue;
      if (!g.directed() && n.v < v) continue;  // emit undirected edges once
      builder.AddEdge(remap[v], it->second, n.elabel);
    }
  }
  Graph out;
  Status st = builder.Build(&out);
  CSCE_CHECK(st.ok());
  return out;
}

Graph EdgeInducedSubgraph(const Graph& g, const std::vector<Edge>& edges) {
  std::unordered_map<VertexId, VertexId> remap;
  GraphBuilder builder(g.directed());
  auto intern = [&](VertexId v) {
    auto it = remap.find(v);
    if (it != remap.end()) return it->second;
    VertexId id = builder.AddVertex(g.VertexLabel(v));
    remap.emplace(v, id);
    return id;
  };
  for (const Edge& e : edges) {
    CSCE_CHECK(e.src < g.NumVertices() && e.dst < g.NumVertices());
    VertexId s = intern(e.src);
    VertexId d = intern(e.dst);
    builder.AddEdge(s, d, e.elabel);
  }
  Graph out;
  Status st = builder.Build(&out);
  CSCE_CHECK(st.ok());
  return out;
}

bool IsConnected(const Graph& g) {
  if (g.NumVertices() == 0) return true;
  std::vector<bool> seen(g.NumVertices(), false);
  std::vector<VertexId> stack = {0};
  seen[0] = true;
  uint32_t visited = 1;
  while (!stack.empty()) {
    VertexId v = stack.back();
    stack.pop_back();
    auto visit = [&](const Neighbor& n) {
      if (!seen[n.v]) {
        seen[n.v] = true;
        ++visited;
        stack.push_back(n.v);
      }
    };
    for (const Neighbor& n : g.OutNeighbors(v)) visit(n);
    if (g.directed()) {
      for (const Neighbor& n : g.InNeighbors(v)) visit(n);
    }
  }
  return visited == g.NumVertices();
}

}  // namespace csce
