#ifndef CSCE_GRAPH_GRAPH_IO_H_
#define CSCE_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace csce {

/// Text edge-list format used by this repository (a superset of the
/// common SM benchmark format):
///
///   # comment lines start with '#'
///   t <directed|undirected> <num_vertices> <num_edges>
///   v <id> <label>          (one per vertex, ids 0..n-1 in any order)
///   e <src> <dst> [elabel]  (elabel defaults to 0)
///
/// `num_edges` counts logical edges (undirected edges once).
Status LoadGraphFromStream(std::istream& in, Graph* out);
Status LoadGraphFromFile(const std::string& path, Graph* out);
Status LoadGraphFromString(const std::string& text, Graph* out);

Status SaveGraphToStream(const Graph& g, std::ostream& out);
Status SaveGraphToFile(const Graph& g, const std::string& path);

}  // namespace csce

#endif  // CSCE_GRAPH_GRAPH_IO_H_
