#include "graph/graph.h"

#include <algorithm>

namespace csce {

bool Graph::HasEdge(VertexId src, VertexId dst) const {
  auto nbrs = OutNeighbors(src);
  auto it = std::lower_bound(
      nbrs.begin(), nbrs.end(), dst,
      [](const Neighbor& n, VertexId v) { return n.v < v; });
  return it != nbrs.end() && it->v == dst;
}

bool Graph::HasEdge(VertexId src, VertexId dst, Label elabel) const {
  auto nbrs = OutNeighbors(src);
  Neighbor key{dst, elabel};
  return std::binary_search(nbrs.begin(), nbrs.end(), key);
}

std::vector<Edge> Graph::Edges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  ForEachEdge([&edges](const Edge& e) { edges.push_back(e); });
  return edges;
}

uint32_t Graph::LabelFrequency(Label label) const {
  if (label >= vlabel_freq_.size()) return 0;
  return vlabel_freq_[label];
}

}  // namespace csce
