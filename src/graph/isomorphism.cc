#include "graph/isomorphism.h"

#include <algorithm>

namespace csce {
namespace {

// Labels of all arcs a->b (sorted). Small-vector-free: patterns are tiny.
std::vector<Label> ArcLabels(const Graph& g, VertexId a, VertexId b) {
  std::vector<Label> labels;
  for (const Neighbor& n : g.OutNeighbors(a)) {
    if (n.v == b) labels.push_back(n.elabel);
    if (n.v > b) break;
  }
  return labels;
}

// True if the ordered pair (a1,b1) in p carries exactly the same arc
// label set as (a2,b2) in q.
bool PairMatches(const Graph& p, VertexId a1, VertexId b1, const Graph& q,
                 VertexId a2, VertexId b2) {
  return ArcLabels(p, a1, b1) == ArcLabels(q, a2, b2);
}

struct IsoState {
  const Graph& p;
  const Graph& q;
  uint64_t limit;
  std::vector<VertexId> mapping;       // p vertex -> q vertex
  std::vector<bool> used;              // q vertex used
  std::vector<std::vector<VertexId>> results;

  void Recurse(VertexId u) {
    if (results.size() >= limit) return;
    if (u == p.NumVertices()) {
      results.push_back(mapping);
      return;
    }
    for (VertexId v = 0; v < q.NumVertices(); ++v) {
      if (used[v]) continue;
      if (p.VertexLabel(u) != q.VertexLabel(v)) continue;
      if (p.Degree(u) != q.Degree(v)) continue;
      bool ok = true;
      for (VertexId w = 0; w < u && ok; ++w) {
        ok = PairMatches(p, u, w, q, v, mapping[w]) &&
             PairMatches(p, w, u, q, mapping[w], v);
      }
      if (!ok) continue;
      mapping[u] = v;
      used[v] = true;
      Recurse(u + 1);
      used[v] = false;
      mapping[u] = kInvalidVertex;
    }
  }
};

struct BruteState {
  const Graph& data;
  const Graph& pattern;
  MatchVariant variant;
  std::vector<VertexId> mapping;
  std::vector<bool> used;
  uint64_t count = 0;

  // Verifies the constraints between the newly assigned pattern vertex u
  // (mapped to v) and every previously assigned pattern vertex w.
  bool Feasible(VertexId u, VertexId v) const {
    for (VertexId w = 0; w < u; ++w) {
      VertexId dw = mapping[w];
      // Required arcs, with labels.
      for (const Neighbor& n : pattern.OutNeighbors(u)) {
        if (n.v == w && !data.HasEdge(v, dw, n.elabel)) return false;
      }
      for (const Neighbor& n : pattern.InNeighbors(u)) {
        if (pattern.directed() && n.v == w &&
            !data.HasEdge(dw, v, n.elabel)) {
          return false;
        }
      }
      if (variant == MatchVariant::kVertexInduced) {
        // Forbidden arcs: unconnected ordered pattern pairs must stay
        // unconnected in the data graph (any label).
        if (!pattern.HasEdge(u, w) && data.HasEdge(v, dw)) return false;
        if (pattern.directed()) {
          if (!pattern.HasEdge(w, u) && data.HasEdge(dw, v)) return false;
        }
      }
    }
    return true;
  }

  void Recurse(VertexId u) {
    if (u == pattern.NumVertices()) {
      ++count;
      return;
    }
    for (VertexId v = 0; v < data.NumVertices(); ++v) {
      if (variant != MatchVariant::kHomomorphic && used[v]) continue;
      if (pattern.VertexLabel(u) != data.VertexLabel(v)) continue;
      if (!Feasible(u, v)) continue;
      mapping[u] = v;
      if (variant != MatchVariant::kHomomorphic) used[v] = true;
      Recurse(u + 1);
      if (variant != MatchVariant::kHomomorphic) used[v] = false;
    }
  }
};

}  // namespace

std::vector<std::vector<VertexId>> EnumerateIsomorphisms(const Graph& p,
                                                         const Graph& q,
                                                         uint64_t limit) {
  if (p.NumVertices() != q.NumVertices() || p.NumEdges() != q.NumEdges() ||
      p.directed() != q.directed()) {
    return {};
  }
  IsoState state{p, q, limit,
                 std::vector<VertexId>(p.NumVertices(), kInvalidVertex),
                 std::vector<bool>(q.NumVertices(), false),
                 {}};
  state.Recurse(0);
  return std::move(state.results);
}

bool AreIsomorphic(const Graph& p, const Graph& q) {
  return !EnumerateIsomorphisms(p, q, /*limit=*/1).empty();
}

std::vector<std::vector<VertexId>> EnumerateAutomorphisms(const Graph& p) {
  return EnumerateIsomorphisms(p, p);
}

uint64_t CountAutomorphisms(const Graph& p) {
  return EnumerateAutomorphisms(p).size();
}

uint64_t CountEmbeddingsBruteForce(const Graph& data, const Graph& pattern,
                                   MatchVariant variant) {
  if (pattern.NumVertices() == 0) return 0;
  BruteState state{data,
                   pattern,
                   variant,
                   std::vector<VertexId>(pattern.NumVertices(), kInvalidVertex),
                   std::vector<bool>(data.NumVertices(), false),
                   0};
  state.Recurse(0);
  return state.count;
}

}  // namespace csce
