#ifndef CSCE_GRAPH_ISOMORPHISM_H_
#define CSCE_GRAPH_ISOMORPHISM_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/variant.h"

namespace csce {

/// Enumerates all isomorphisms f: V_p -> V_q (bijections preserving
/// vertex labels, arcs and arc labels exactly in both directions).
/// Intended for small graphs (patterns); exponential worst case.
/// Stops after `limit` mappings when given.
std::vector<std::vector<VertexId>> EnumerateIsomorphisms(
    const Graph& p, const Graph& q, uint64_t limit = UINT64_MAX);

bool AreIsomorphic(const Graph& p, const Graph& q);

/// All automorphisms of `p` (always includes the identity).
std::vector<std::vector<VertexId>> EnumerateAutomorphisms(const Graph& p);

uint64_t CountAutomorphisms(const Graph& p);

/// Reference subgraph-matching oracle: counts embeddings of `pattern`
/// in `data` under `variant` by naive backtracking with full constraint
/// checks. Exponential; used as ground truth in tests and to validate
/// the optimized engines on small inputs.
uint64_t CountEmbeddingsBruteForce(const Graph& data, const Graph& pattern,
                                   MatchVariant variant);

}  // namespace csce

#endif  // CSCE_GRAPH_ISOMORPHISM_H_
