#ifndef CSCE_GRAPH_VARIANT_H_
#define CSCE_GRAPH_VARIANT_H_

namespace csce {

/// The subgraph matching variant (the paper's theta).
///
/// * kEdgeInduced — injective mapping preserving all pattern edges
///   (a.k.a. non-induced / monomorphism).
/// * kVertexInduced — additionally, unconnected pattern vertex pairs must
///   map to unconnected data vertices (a.k.a. induced isomorphism).
/// * kHomomorphic — edge-preserving but not necessarily injective.
///
/// Note: vertex-induced semantics here assume at most one arc label per
/// ordered vertex pair (true of every dataset in the paper and of all
/// generators in this repository).
enum class MatchVariant {
  kEdgeInduced,
  kVertexInduced,
  kHomomorphic,
};

inline const char* VariantName(MatchVariant v) {
  switch (v) {
    case MatchVariant::kEdgeInduced:
      return "edge-induced";
    case MatchVariant::kVertexInduced:
      return "vertex-induced";
    case MatchVariant::kHomomorphic:
      return "homomorphic";
  }
  return "unknown";
}

}  // namespace csce

#endif  // CSCE_GRAPH_VARIANT_H_
