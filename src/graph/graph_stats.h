#ifndef CSCE_GRAPH_GRAPH_STATS_H_
#define CSCE_GRAPH_GRAPH_STATS_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace csce {

/// The per-dataset statistics reported in the paper's Table IV.
struct GraphStats {
  bool directed = false;
  uint32_t vertex_count = 0;
  uint64_t edge_count = 0;
  uint32_t label_count = 0;  // distinct vertex labels (0 for unlabeled)
  double average_degree = 0.0;
  uint32_t max_in_degree = 0;
  uint32_t max_out_degree = 0;
};

GraphStats ComputeStats(const Graph& g);

/// One row formatted like Table IV:
/// "name  U|D  |V|  |E|  labels  avg_deg  max_in  max_out".
std::string FormatStatsRow(const std::string& name, const GraphStats& s);

/// The Table IV header matching FormatStatsRow's columns.
std::string StatsHeader();

}  // namespace csce

#endif  // CSCE_GRAPH_GRAPH_STATS_H_
