#include "graph/pattern_builder.h"

#include <vector>

namespace csce {

VertexId PatternBuilder::Intern(const std::string& name) {
  auto it = names_.find(name);
  if (it != names_.end()) return it->second;
  VertexId id = builder_.AddVertex(kNoLabel);
  names_.emplace(name, id);
  return id;
}

PatternBuilder& PatternBuilder::Vertex(const std::string& name, Label label) {
  VertexId id = Intern(name);
  // GraphBuilder labels are fixed at AddVertex time; remember the
  // override and apply it at Build().
  relabels_[id] = label;
  return *this;
}

PatternBuilder& PatternBuilder::Edge(const std::string& from,
                                     const std::string& to, Label elabel) {
  VertexId src = Intern(from);
  VertexId dst = Intern(to);
  builder_.AddEdge(src, dst, elabel);
  return *this;
}

VertexId PatternBuilder::VertexIdOf(const std::string& name) const {
  auto it = names_.find(name);
  return it == names_.end() ? kInvalidVertex : it->second;
}

Status PatternBuilder::Build(Graph* out) {
  Graph raw;
  CSCE_RETURN_IF_ERROR(builder_.Build(&raw));
  if (relabels_.empty()) {
    *out = std::move(raw);
    return Status::OK();
  }
  // Rebuild with the final labels.
  GraphBuilder relabeled(raw.directed());
  for (VertexId v = 0; v < raw.NumVertices(); ++v) {
    auto it = relabels_.find(v);
    relabeled.AddVertex(it == relabels_.end() ? raw.VertexLabel(v)
                                              : it->second);
  }
  raw.ForEachEdge([&relabeled](const csce::Edge& e) {
    relabeled.AddEdge(e.src, e.dst, e.elabel);
  });
  return relabeled.Build(out);
}

}  // namespace csce
