#ifndef CSCE_GRAPH_COMPONENTS_H_
#define CSCE_GRAPH_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace csce {

/// Connected components, ignoring edge direction. Fills
/// `component_of` (vertex -> dense component id, ids ordered by first
/// appearance) and returns the number of components.
uint32_t ConnectedComponents(const Graph& g,
                             std::vector<uint32_t>* component_of);

/// The vertices of the largest (by vertex count) component, sorted.
/// Useful for sampling patterns that are guaranteed to be growable.
std::vector<VertexId> LargestComponent(const Graph& g);

}  // namespace csce

#endif  // CSCE_GRAPH_COMPONENTS_H_
