#include "graph/graph_io.h"

#include <fstream>
#include <sstream>
#include <string>

#include "graph/graph_builder.h"

namespace csce {

Status LoadGraphFromStream(std::istream& in, Graph* out) {
  std::string line;
  bool saw_header = false;
  bool directed = false;
  uint64_t declared_vertices = 0;
  uint64_t declared_edges = 0;
  std::vector<std::pair<VertexId, Label>> vertices;
  std::vector<Edge> edges;
  size_t line_no = 0;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 't') {
      if (saw_header) {
        return Status::Corruption("duplicate 't' header at line " +
                                  std::to_string(line_no));
      }
      std::string dir;
      ls >> dir >> declared_vertices >> declared_edges;
      if (ls.fail() || (dir != "directed" && dir != "undirected")) {
        return Status::Corruption("bad header at line " +
                                  std::to_string(line_no));
      }
      if (declared_vertices > 0xFFFFFFFFull) {
        return Status::Corruption("implausible vertex count " +
                                  std::to_string(declared_vertices) +
                                  " at line " + std::to_string(line_no));
      }
      directed = (dir == "directed");
      saw_header = true;
    } else if (tag == 'v') {
      if (!saw_header) {
        return Status::Corruption("vertex record before 't' header at line " +
                                  std::to_string(line_no));
      }
      uint64_t id = 0;
      uint64_t label = 0;
      ls >> id >> label;
      if (ls.fail() || id > 0xFFFFFFFFull || label > 0xFFFFFFFFull) {
        return Status::Corruption("bad vertex at line " +
                                  std::to_string(line_no));
      }
      // Labels index a frequency table downstream; an absurd label id
      // would turn one corrupt line into a multi-gigabyte allocation.
      if (label >= (1ull << 20)) {
        return Status::Corruption("implausible vertex label " +
                                  std::to_string(label) + " at line " +
                                  std::to_string(line_no));
      }
      vertices.emplace_back(static_cast<VertexId>(id),
                            static_cast<Label>(label));
    } else if (tag == 'e') {
      if (!saw_header) {
        return Status::Corruption("edge record before 't' header at line " +
                                  std::to_string(line_no));
      }
      uint64_t src = 0;
      uint64_t dst = 0;
      uint64_t elabel = 0;
      ls >> src >> dst;
      if (ls.fail() || src > 0xFFFFFFFFull || dst > 0xFFFFFFFFull) {
        return Status::Corruption("bad edge at line " +
                                  std::to_string(line_no));
      }
      ls >> elabel;  // optional; stream failure here leaves elabel == 0
      if (elabel > 0xFFFFFFFFull) {
        return Status::Corruption("bad edge label at line " +
                                  std::to_string(line_no));
      }
      edges.push_back(Edge{static_cast<VertexId>(src),
                           static_cast<VertexId>(dst),
                           static_cast<Label>(elabel)});
    } else {
      return Status::Corruption("unknown record '" + std::string(1, tag) +
                                "' at line " + std::to_string(line_no));
    }
  }

  if (!saw_header) return Status::Corruption("missing 't' header");
  if (vertices.size() != declared_vertices) {
    return Status::Corruption("vertex count mismatch: header says " +
                              std::to_string(declared_vertices) + ", got " +
                              std::to_string(vertices.size()));
  }
  if (edges.size() != declared_edges) {
    return Status::Corruption("edge count mismatch: header says " +
                              std::to_string(declared_edges) + ", got " +
                              std::to_string(edges.size()));
  }

  GraphBuilder builder(directed);
  std::vector<Label> labels(vertices.size(), kNoLabel);
  std::vector<bool> seen(vertices.size(), false);
  for (const auto& [id, label] : vertices) {
    if (id >= labels.size()) {
      return Status::Corruption("vertex id " + std::to_string(id) +
                                " out of range");
    }
    if (seen[id]) {
      return Status::Corruption("duplicate vertex id " + std::to_string(id));
    }
    seen[id] = true;
    labels[id] = label;
  }
  for (Label l : labels) builder.AddVertex(l);
  for (const Edge& e : edges) builder.AddEdge(e.src, e.dst, e.elabel);
  return builder.Build(out);
}

Status LoadGraphFromFile(const std::string& path, Graph* out) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return LoadGraphFromStream(in, out);
}

Status LoadGraphFromString(const std::string& text, Graph* out) {
  std::istringstream in(text);
  return LoadGraphFromStream(in, out);
}

Status SaveGraphToStream(const Graph& g, std::ostream& out) {
  out << "t " << (g.directed() ? "directed" : "undirected") << ' '
      << g.NumVertices() << ' ' << g.NumEdges() << '\n';
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    out << "v " << v << ' ' << g.VertexLabel(v) << '\n';
  }
  Status status = Status::OK();
  g.ForEachEdge([&out](const Edge& e) {
    out << "e " << e.src << ' ' << e.dst << ' ' << e.elabel << '\n';
  });
  if (!out) return Status::IOError("write failed");
  return status;
}

Status SaveGraphToFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  return SaveGraphToStream(g, out);
}

}  // namespace csce
