#include "graph/components.h"

#include <algorithm>

namespace csce {

uint32_t ConnectedComponents(const Graph& g,
                             std::vector<uint32_t>* component_of) {
  const uint32_t n = g.NumVertices();
  component_of->assign(n, 0xFFFFFFFFu);
  uint32_t next_id = 0;
  std::vector<VertexId> stack;
  for (VertexId start = 0; start < n; ++start) {
    if ((*component_of)[start] != 0xFFFFFFFFu) continue;
    uint32_t id = next_id++;
    (*component_of)[start] = id;
    stack.push_back(start);
    while (!stack.empty()) {
      VertexId v = stack.back();
      stack.pop_back();
      auto visit = [&](VertexId w) {
        if ((*component_of)[w] == 0xFFFFFFFFu) {
          (*component_of)[w] = id;
          stack.push_back(w);
        }
      };
      for (const Neighbor& nb : g.OutNeighbors(v)) visit(nb.v);
      if (g.directed()) {
        for (const Neighbor& nb : g.InNeighbors(v)) visit(nb.v);
      }
    }
  }
  return next_id;
}

std::vector<VertexId> LargestComponent(const Graph& g) {
  std::vector<uint32_t> component_of;
  uint32_t count = ConnectedComponents(g, &component_of);
  if (count == 0) return {};
  std::vector<uint32_t> sizes(count, 0);
  for (uint32_t c : component_of) ++sizes[c];
  uint32_t best = static_cast<uint32_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
  std::vector<VertexId> vertices;
  vertices.reserve(sizes[best]);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (component_of[v] == best) vertices.push_back(v);
  }
  return vertices;
}

}  // namespace csce
