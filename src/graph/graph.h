#ifndef CSCE_GRAPH_GRAPH_H_
#define CSCE_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/logging.h"

namespace csce {

/// Vertex identifier: consecutive integers starting at 0.
using VertexId = uint32_t;
/// Vertex or edge label. Unlabeled graphs use label 0 everywhere.
using Label = uint32_t;

inline constexpr VertexId kInvalidVertex = 0xFFFFFFFFu;
inline constexpr Label kNoLabel = 0;

/// One adjacency entry: the neighbor vertex and the connecting edge's
/// label. Adjacency lists are sorted by (v, elabel).
struct Neighbor {
  VertexId v;
  Label elabel;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
  friend auto operator<=>(const Neighbor&, const Neighbor&) = default;
};

/// A directed arc (or one orientation of an undirected edge) with its
/// label. Used for edge iteration and by the CCSR builder.
struct Edge {
  VertexId src;
  VertexId dst;
  Label elabel;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// An immutable heterogeneous graph: vertex labels, edge labels, directed
/// or undirected. Storage is CSR adjacency. For undirected graphs each
/// edge {a,b} is stored as the two arcs (a,b) and (b,a) and the "out"
/// adjacency serves both directions; for directed graphs separate
/// incoming adjacency is kept as well.
///
/// Self-loops are not allowed (enforced by GraphBuilder). Parallel edges
/// with identical (src, dst, elabel) are deduplicated; the same vertex
/// pair may be connected by edges of different labels.
class Graph {
 public:
  Graph() = default;

  bool directed() const { return directed_; }
  uint32_t NumVertices() const {
    return static_cast<uint32_t>(vlabels_.size());
  }
  /// Logical edge count: an undirected edge counts once.
  uint64_t NumEdges() const { return num_edges_; }

  Label VertexLabel(VertexId v) const {
    CSCE_DCHECK(v < vlabels_.size());
    return vlabels_[v];
  }
  const std::vector<Label>& vertex_labels() const { return vlabels_; }

  /// Number of distinct vertex labels (0 if the graph is unlabeled,
  /// following Table IV's convention that unlabeled graphs report 0).
  uint32_t VertexLabelCount() const { return vlabel_count_; }
  /// Number of distinct edge labels (0 if all edges share label 0).
  uint32_t EdgeLabelCount() const { return elabel_count_; }

  /// True if vertex or edge labels make the graph heterogeneous
  /// (paper Section II: l_v + l_e > 2).
  bool IsHeterogeneous() const {
    uint32_t lv = vlabel_count_ == 0 ? 1 : vlabel_count_;
    uint32_t le = elabel_count_ == 0 ? 1 : elabel_count_;
    return lv + le > 2;
  }

  /// Outgoing adjacency of v (for undirected graphs: all neighbors).
  std::span<const Neighbor> OutNeighbors(VertexId v) const {
    CSCE_DCHECK(v < vlabels_.size());
    return {out_nbrs_.data() + out_offsets_[v],
            out_nbrs_.data() + out_offsets_[v + 1]};
  }

  /// Incoming adjacency of v (for undirected graphs: all neighbors).
  std::span<const Neighbor> InNeighbors(VertexId v) const {
    CSCE_DCHECK(v < vlabels_.size());
    if (!directed_) return OutNeighbors(v);
    return {in_nbrs_.data() + in_offsets_[v],
            in_nbrs_.data() + in_offsets_[v + 1]};
  }

  uint32_t OutDegree(VertexId v) const {
    return static_cast<uint32_t>(out_offsets_[v + 1] - out_offsets_[v]);
  }
  uint32_t InDegree(VertexId v) const {
    if (!directed_) return OutDegree(v);
    return static_cast<uint32_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }
  /// Total degree: neighbors in either direction (arcs, for directed).
  uint32_t Degree(VertexId v) const {
    return directed_ ? OutDegree(v) + InDegree(v) : OutDegree(v);
  }

  /// True if arc src->dst exists with any edge label (undirected: edge
  /// {src,dst}). Binary search over the sorted adjacency.
  bool HasEdge(VertexId src, VertexId dst) const;
  /// True if arc src->dst exists with label `elabel`.
  bool HasEdge(VertexId src, VertexId dst, Label elabel) const;
  /// True if src and dst are connected in either direction.
  bool HasEdgeAnyDirection(VertexId a, VertexId b) const {
    return HasEdge(a, b) || (directed_ && HasEdge(b, a));
  }

  /// Invokes `fn(Edge)` once per logical edge: every arc for directed
  /// graphs; each undirected edge once, oriented src < dst.
  template <typename Fn>
  void ForEachEdge(Fn&& fn) const {
    for (VertexId v = 0; v < NumVertices(); ++v) {
      for (const Neighbor& n : OutNeighbors(v)) {
        if (!directed_ && n.v < v) continue;
        fn(Edge{v, n.v, n.elabel});
      }
    }
  }

  /// All logical edges as a vector (convenience; prefer ForEachEdge on
  /// hot paths).
  std::vector<Edge> Edges() const;

  /// Number of vertices carrying `label`.
  uint32_t LabelFrequency(Label label) const;

 private:
  friend class GraphBuilder;

  bool directed_ = false;
  uint64_t num_edges_ = 0;
  uint32_t vlabel_count_ = 0;
  uint32_t elabel_count_ = 0;
  std::vector<Label> vlabels_;
  std::vector<uint64_t> out_offsets_;
  std::vector<Neighbor> out_nbrs_;
  std::vector<uint64_t> in_offsets_;
  std::vector<Neighbor> in_nbrs_;
  // label -> frequency, indexed by label value (dense).
  std::vector<uint32_t> vlabel_freq_;
};

}  // namespace csce

#endif  // CSCE_GRAPH_GRAPH_H_
