#ifndef CSCE_CCSR_COMPRESSED_ROW_H_
#define CSCE_CCSR_COMPRESSED_ROW_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace csce {

/// One run of a run-length-encoded row-index array: `count` consecutive
/// entries all equal to `value`.
struct RleRun {
  uint64_t value;
  uint32_t count;

  friend bool operator==(const RleRun&, const RleRun&) = default;
};

/// Run-length-compressed CSR row index (paper Section IV): since most
/// vertices have no arcs in a given cluster, the row-index array of a
/// cluster CSR is dominated by runs of repeated offsets. Compressing
/// each run to (value, repeat count) bounds the total row-index storage
/// by ~2 integers per edge instead of |V|+1 integers per cluster.
class CompressedRowIndex {
 public:
  CompressedRowIndex() = default;

  /// Compresses a monotone row-index array (length |V|+1).
  static CompressedRowIndex Compress(std::span<const uint64_t> row);

  /// Reconstructs the standard row-index array.
  std::vector<uint64_t> Decompress() const;

  /// Invokes fn(vertex, begin, end) for every vertex whose arc range
  /// [begin, end) is non-empty, in increasing vertex order. This is the
  /// sparse decompression path: O(#non-empty vertices), not O(|V|).
  template <typename Fn>
  void ForEachNonEmptyRow(Fn&& fn) const {
    // Row entry i is offsets[i]; vertex v's range is [offsets[v],
    // offsets[v+1]). A vertex is non-empty where consecutive entries
    // differ, i.e. at every run boundary.
    uint64_t index = 0;  // index into the virtual decompressed array
    for (size_t r = 0; r + 1 < runs_.size(); ++r) {
      // The last entry of run r is at position index + count - 1; the
      // next entry (start of run r+1) differs, so the vertex at
      // position (index + count - 1) is non-empty.
      uint64_t boundary = index + runs_[r].count - 1;
      fn(boundary, runs_[r].value, runs_[r + 1].value);
      index += runs_[r].count;
    }
  }

  uint64_t uncompressed_length() const { return uncompressed_length_; }
  size_t num_runs() const { return runs_.size(); }
  const std::vector<RleRun>& runs() const { return runs_; }
  std::vector<RleRun>* mutable_runs() { return &runs_; }
  void set_uncompressed_length(uint64_t n) { uncompressed_length_ = n; }

  size_t SizeBytes() const { return runs_.size() * sizeof(RleRun); }

  /// Deep structural check of the RLE encoding: every run is non-empty,
  /// run values are monotone (strictly increasing across run boundaries,
  /// since equal adjacent offsets would have been merged into one run —
  /// except after a saturated uint32 count, where Compress() splits),
  /// run coverage equals `uncompressed_length`, and the reconstructed
  /// row-index array starts at 0. Returns Corruption with a description
  /// of the first violated invariant.
  Status Validate() const;

 private:
  std::vector<RleRun> runs_;
  uint64_t uncompressed_length_ = 0;
};

}  // namespace csce

#endif  // CSCE_CCSR_COMPRESSED_ROW_H_
