#ifndef CSCE_CCSR_COMPRESSED_ROW_H_
#define CSCE_CCSR_COMPRESSED_ROW_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ccsr/array_view.h"
#include "util/status.h"

namespace csce {

/// One run of a run-length-encoded row-index array: `count` consecutive
/// entries all equal to `value`.
///
/// The CCSR v2 on-disk format stores run arrays as raw RleRun records
/// (16 bytes each: value, count, 4 bytes zero padding) so an mmap'd
/// artifact can be viewed as a span<const RleRun> with no decode pass;
/// the static_asserts below pin the layout that format relies on.
struct RleRun {
  uint64_t value;
  uint32_t count;

  friend bool operator==(const RleRun&, const RleRun&) = default;
};

static_assert(sizeof(RleRun) == 16, "CCSR v2 stores RleRun as 16 bytes");
static_assert(offsetof(RleRun, value) == 0 && offsetof(RleRun, count) == 8,
              "CCSR v2 relies on RleRun field offsets");

/// Run-length-compressed CSR row index (paper Section IV): since most
/// vertices have no arcs in a given cluster, the row-index array of a
/// cluster CSR is dominated by runs of repeated offsets. Compressing
/// each run to (value, repeat count) bounds the total row-index storage
/// by ~2 integers per edge instead of |V|+1 integers per cluster.
class CompressedRowIndex {
 public:
  CompressedRowIndex() = default;

  /// Compresses a monotone row-index array (length |V|+1).
  static CompressedRowIndex Compress(std::span<const uint64_t> row);

  /// Reconstructs the standard row-index array.
  std::vector<uint64_t> Decompress() const;

  /// Invokes fn(vertex, begin, end) for every vertex whose arc range
  /// [begin, end) is non-empty, in increasing vertex order. This is the
  /// sparse decompression path: O(#non-empty vertices), not O(|V|).
  template <typename Fn>
  void ForEachNonEmptyRow(Fn&& fn) const {
    // Row entry i is offsets[i]; vertex v's range is [offsets[v],
    // offsets[v+1]). A vertex is non-empty where consecutive entries
    // differ, i.e. at every run boundary.
    std::span<const RleRun> r = runs();
    uint64_t index = 0;  // index into the virtual decompressed array
    for (size_t i = 0; i + 1 < r.size(); ++i) {
      // The last entry of run i is at position index + count - 1; the
      // next entry (start of run i+1) differs, so the vertex at
      // position (index + count - 1) is non-empty.
      uint64_t boundary = index + r[i].count - 1;
      fn(boundary, r[i].value, r[i + 1].value);
      index += r[i].count;
    }
  }

  uint64_t uncompressed_length() const { return uncompressed_length_; }
  size_t num_runs() const { return runs_.size(); }
  std::span<const RleRun> runs() const { return runs_.span(); }
  std::vector<RleRun>* mutable_runs() { return &runs_.vec(); }
  void set_uncompressed_length(uint64_t n) { uncompressed_length_ = n; }

  /// Rebinds the run array to external read-only storage (an mmap'd v2
  /// artifact). The span must outlive this index; see ArrayOrView.
  void BorrowRuns(std::span<const RleRun> runs, uint64_t uncompressed_length) {
    runs_.Borrow(runs);
    uncompressed_length_ = uncompressed_length;
  }

  /// True when the run array aliases external (mmap) storage.
  bool borrowed() const { return runs_.borrowed(); }

  /// Copies a borrowed run array into owned heap storage (no-op when
  /// already owned).
  void EnsureOwned() { runs_.EnsureOwned(); }

  size_t SizeBytes() const { return runs_.size() * sizeof(RleRun); }

  /// Deep structural check of the RLE encoding: every run is non-empty,
  /// run values are monotone (strictly increasing across run boundaries,
  /// since equal adjacent offsets would have been merged into one run —
  /// except after a saturated uint32 count, where Compress() splits),
  /// run coverage equals `uncompressed_length`, and the reconstructed
  /// row-index array starts at 0. Returns Corruption with a description
  /// of the first violated invariant.
  Status Validate() const;

 private:
  ArrayOrView<RleRun> runs_;
  uint64_t uncompressed_length_ = 0;
};

}  // namespace csce

#endif  // CSCE_CCSR_COMPRESSED_ROW_H_
