#include "ccsr/ccsr_io.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

namespace csce {
namespace {

constexpr uint32_t kMagic = 0x43435352;  // "CCSR"
// Label values are histogram indexes; cap them so corrupted artifacts
// cannot trigger multi-gigabyte allocations before deep validation runs.
constexpr Label kMaxPlausibleLabel = 1u << 20;
// Version 2 added per-vertex degree tables (candidate degree filter).
constexpr uint32_t kVersion = 2;

template <typename T>
void WriteScalar(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadScalar(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

// Bytes left in the stream, or SIZE_MAX when not seekable. Used to
// validate element counts before allocating, so corrupted files fail
// with Status::Corruption instead of attempting huge allocations.
size_t RemainingBytes(std::istream& in) {
  std::streampos here = in.tellg();
  if (here < 0) return SIZE_MAX;
  in.seekg(0, std::ios::end);
  std::streampos end = in.tellg();
  in.seekg(here);
  if (end < here) return 0;
  return static_cast<size_t>(end - here);
}

// True if `count` elements of `element_size` bytes can still follow.
bool CountPlausible(std::istream& in, uint64_t count, size_t element_size) {
  size_t remaining = RemainingBytes(in);
  if (remaining == SIZE_MAX) return count < (uint64_t{1} << 33);
  return count <= remaining / element_size;
}

void WriteCompressedCsr(std::ostream& out, const CompressedRowIndex& rows,
                        const std::vector<VertexId>& cols) {
  WriteScalar<uint64_t>(out, rows.num_runs());
  for (const RleRun& r : rows.runs()) {
    WriteScalar<uint64_t>(out, r.value);
    WriteScalar<uint32_t>(out, r.count);
  }
  WriteScalar<uint64_t>(out, rows.uncompressed_length());
  WriteScalar<uint64_t>(out, cols.size());
  if (!cols.empty()) {
    out.write(reinterpret_cast<const char*>(cols.data()),
              static_cast<std::streamsize>(cols.size() * sizeof(VertexId)));
  }
}

Status ReadCompressedCsr(std::istream& in, uint32_t num_vertices,
                         CompressedRowIndex* rows,
                         std::vector<VertexId>* cols) {
  uint64_t num_runs = 0;
  if (!ReadScalar(in, &num_runs)) return Status::Corruption("truncated runs");
  if (!CountPlausible(in, num_runs, sizeof(uint64_t) + sizeof(uint32_t))) {
    return Status::Corruption("implausible run count");
  }
  rows->mutable_runs()->clear();
  rows->mutable_runs()->reserve(num_runs);
  uint64_t total_count = 0;
  uint64_t previous_value = 0;
  for (uint64_t i = 0; i < num_runs; ++i) {
    uint64_t value = 0;
    uint32_t count = 0;
    if (!ReadScalar(in, &value) || !ReadScalar(in, &count)) {
      return Status::Corruption("truncated run entry");
    }
    if (count == 0 || (i > 0 && value <= previous_value)) {
      return Status::Corruption("non-monotone row index");
    }
    previous_value = value;
    total_count += count;
    rows->mutable_runs()->push_back(RleRun{value, count});
  }
  uint64_t uncompressed = 0;
  uint64_t num_cols = 0;
  if (!ReadScalar(in, &uncompressed) || !ReadScalar(in, &num_cols)) {
    return Status::Corruption("truncated csr header");
  }
  if (uncompressed != total_count ||
      uncompressed != static_cast<uint64_t>(num_vertices) + 1) {
    return Status::Corruption("row index length mismatch");
  }
  if (!CountPlausible(in, num_cols, sizeof(VertexId))) {
    return Status::Corruption("implausible column count");
  }
  rows->set_uncompressed_length(uncompressed);
  cols->resize(num_cols);
  if (num_cols > 0) {
    in.read(reinterpret_cast<char*>(cols->data()),
            static_cast<std::streamsize>(num_cols * sizeof(VertexId)));
    if (!in) return Status::Corruption("truncated columns");
  }
  for (VertexId c : *cols) {
    if (c >= num_vertices) return Status::Corruption("column out of range");
  }
  // The final row offset must equal the column count.
  if (!rows->runs().empty() && rows->runs().back().value != num_cols) {
    return Status::Corruption("row/column count mismatch");
  }
  return Status::OK();
}

}  // namespace

Status SaveCcsrToStream(const Ccsr& ccsr, std::ostream& out) {
  WriteScalar(out, kMagic);
  WriteScalar(out, kVersion);
  WriteScalar<uint8_t>(out, ccsr.directed() ? 1 : 0);
  WriteScalar<uint32_t>(out, ccsr.NumVertices());
  WriteScalar<uint64_t>(out, ccsr.NumEdges());
  if (ccsr.NumVertices() > 0) {
    out.write(
        reinterpret_cast<const char*>(ccsr.vertex_labels().data()),
        static_cast<std::streamsize>(ccsr.NumVertices() * sizeof(Label)));
  }
  for (VertexId v = 0; v < ccsr.NumVertices(); ++v) {
    WriteScalar<uint32_t>(out, ccsr.OutDegree(v));
  }
  if (ccsr.directed()) {
    for (VertexId v = 0; v < ccsr.NumVertices(); ++v) {
      WriteScalar<uint32_t>(out, ccsr.InDegree(v));
    }
  }
  WriteScalar<uint32_t>(out, static_cast<uint32_t>(ccsr.NumClusters()));
  for (const CompressedCluster& c : ccsr.clusters()) {
    WriteScalar<uint32_t>(out, c.id.src_label);
    WriteScalar<uint32_t>(out, c.id.dst_label);
    WriteScalar<uint32_t>(out, c.id.elabel);
    WriteScalar<uint8_t>(out, c.id.directed ? 1 : 0);
    WriteScalar<uint64_t>(out, c.num_edges);
    WriteCompressedCsr(out, c.out_rows, c.out_cols);
    if (c.id.directed) WriteCompressedCsr(out, c.in_rows, c.in_cols);
  }
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Status SaveCcsrToFile(const Ccsr& ccsr, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  return SaveCcsrToStream(ccsr, out);
}

Status LoadCcsrFromStream(std::istream& in, Ccsr* out) {
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!ReadScalar(in, &magic) || magic != kMagic) {
    return Status::Corruption("bad magic");
  }
  if (!ReadScalar(in, &version) || version != kVersion) {
    return Status::Corruption("unsupported version");
  }
  uint8_t directed = 0;
  uint32_t num_vertices = 0;
  uint64_t num_edges = 0;
  if (!ReadScalar(in, &directed) || !ReadScalar(in, &num_vertices) ||
      !ReadScalar(in, &num_edges)) {
    return Status::Corruption("truncated header");
  }
  if (!CountPlausible(in, num_vertices, sizeof(Label))) {
    return Status::Corruption("implausible vertex count");
  }
  Ccsr result;
  result.directed_ = directed != 0;
  result.num_edges_ = num_edges;
  result.vlabels_.resize(num_vertices);
  if (num_vertices > 0) {
    in.read(reinterpret_cast<char*>(result.vlabels_.data()),
            static_cast<std::streamsize>(num_vertices * sizeof(Label)));
    if (!in) return Status::Corruption("truncated labels");
  }
  Label max_label = 0;
  for (Label l : result.vlabels_) max_label = std::max(max_label, l);
  // The frequency table below is indexed by label value, so a single
  // flipped high bit in one stored label would make it allocate
  // gigabytes. No plausible dataset needs label ids anywhere near this.
  if (num_vertices > 0 && max_label >= kMaxPlausibleLabel) {
    return Status::Corruption("implausible vertex label");
  }
  result.vlabel_freq_.assign(num_vertices == 0 ? 0 : max_label + 1, 0);
  for (Label l : result.vlabels_) ++result.vlabel_freq_[l];

  result.out_degree_.resize(num_vertices);
  if (num_vertices > 0) {
    in.read(reinterpret_cast<char*>(result.out_degree_.data()),
            static_cast<std::streamsize>(num_vertices * sizeof(uint32_t)));
    if (!in) return Status::Corruption("truncated out-degrees");
  }
  if (result.directed_) {
    result.in_degree_.resize(num_vertices);
    if (num_vertices > 0) {
      in.read(reinterpret_cast<char*>(result.in_degree_.data()),
              static_cast<std::streamsize>(num_vertices * sizeof(uint32_t)));
      if (!in) return Status::Corruption("truncated in-degrees");
    }
  }

  uint32_t num_clusters = 0;
  if (!ReadScalar(in, &num_clusters)) {
    return Status::Corruption("truncated cluster count");
  }
  // Each cluster occupies at least its fixed-size header on disk.
  if (!CountPlausible(in, num_clusters, 21)) {
    return Status::Corruption("implausible cluster count");
  }
  result.clusters_.resize(num_clusters);
  for (uint32_t i = 0; i < num_clusters; ++i) {
    CompressedCluster& c = result.clusters_[i];
    uint8_t cluster_directed = 0;
    if (!ReadScalar(in, &c.id.src_label) || !ReadScalar(in, &c.id.dst_label) ||
        !ReadScalar(in, &c.id.elabel) || !ReadScalar(in, &cluster_directed) ||
        !ReadScalar(in, &c.num_edges)) {
      return Status::Corruption("truncated cluster header");
    }
    c.id.directed = cluster_directed != 0;
    if (c.id.directed != result.directed_) {
      return Status::Corruption("cluster directedness mismatch");
    }
    CSCE_RETURN_IF_ERROR(
        ReadCompressedCsr(in, num_vertices, &c.out_rows, &c.out_cols));
    if (c.id.directed) {
      CSCE_RETURN_IF_ERROR(
          ReadCompressedCsr(in, num_vertices, &c.in_rows, &c.in_cols));
    }
  }
  result.RebuildIndexes();
  // Field-level reads above only catch local damage (truncation, counts,
  // ranges). The deep validator cross-checks everything global: label
  // homogeneity, sorted adjacency, transpose consistency, degree tables
  // and the edge partition. A corrupted artifact must never load.
  CSCE_RETURN_IF_ERROR(result.Validate());
  *out = std::move(result);
  return Status::OK();
}

Status LoadCcsrFromFile(const std::string& path, Ccsr* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  return LoadCcsrFromStream(in, out);
}

}  // namespace csce
