#include "ccsr/ccsr_io.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "ccsr/ccsr_mmap.h"
#include "ccsr/ccsr_v2_format.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace csce {
namespace {

constexpr uint32_t kMagic = kV1Magic;  // "CCSR": the v1 stream format
// Label values are histogram indexes; cap them so corrupted artifacts
// cannot trigger multi-gigabyte allocations before deep validation runs.
constexpr Label kMaxPlausibleLabel = 1u << 20;
// Version 2 added per-vertex degree tables (candidate degree filter).
constexpr uint32_t kVersion = 2;

template <typename T>
void WriteScalar(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadScalar(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

// Bytes left in the stream, or SIZE_MAX when not seekable. Used to
// validate element counts before allocating, so corrupted files fail
// with Status::Corruption instead of attempting huge allocations.
size_t RemainingBytes(std::istream& in) {
  std::streampos here = in.tellg();
  if (here < 0) return SIZE_MAX;
  in.seekg(0, std::ios::end);
  std::streampos end = in.tellg();
  in.seekg(here);
  if (end < here) return 0;
  return static_cast<size_t>(end - here);
}

// True if `count` elements of `element_size` bytes can still follow.
bool CountPlausible(std::istream& in, uint64_t count, size_t element_size) {
  size_t remaining = RemainingBytes(in);
  if (remaining == SIZE_MAX) return count < (uint64_t{1} << 33);
  return count <= remaining / element_size;
}

// Reads a sized array section, checking the stream state AND the byte
// count actually transferred: a stream truncated mid-array leaves
// in.read() with a short gcount, and without this check the tail of the
// destination buffer would silently keep stale/zero bytes. Failures
// name the section and report expected vs received bytes.
Status ReadArray(std::istream& in, const char* section, void* dest,
                 uint64_t count, size_t element_size) {
  if (count == 0) return Status::OK();
  const uint64_t want = count * element_size;
  in.read(reinterpret_cast<char*>(dest),
          static_cast<std::streamsize>(want));
  const std::streamsize got = in.gcount();
  if (!in || static_cast<uint64_t>(got) != want) {
    return Status::Corruption(
        std::string("truncated ") + section + ": expected " +
        std::to_string(want) + " bytes, got " +
        std::to_string(got < 0 ? 0 : got));
  }
  return Status::OK();
}

void WriteCompressedCsr(std::ostream& out, const CompressedRowIndex& rows,
                        const ArrayOrView<VertexId>& cols) {
  WriteScalar<uint64_t>(out, rows.num_runs());
  for (const RleRun& r : rows.runs()) {
    WriteScalar<uint64_t>(out, r.value);
    WriteScalar<uint32_t>(out, r.count);
  }
  WriteScalar<uint64_t>(out, rows.uncompressed_length());
  WriteScalar<uint64_t>(out, cols.size());
  if (!cols.empty()) {
    out.write(reinterpret_cast<const char*>(cols.data()),
              static_cast<std::streamsize>(cols.size() * sizeof(VertexId)));
  }
}

Status ReadCompressedCsr(std::istream& in, uint32_t num_vertices,
                         CompressedRowIndex* rows,
                         ArrayOrView<VertexId>* cols) {
  uint64_t num_runs = 0;
  if (!ReadScalar(in, &num_runs)) return Status::Corruption("truncated runs");
  if (!CountPlausible(in, num_runs, sizeof(uint64_t) + sizeof(uint32_t))) {
    return Status::Corruption("implausible run count");
  }
  rows->mutable_runs()->clear();
  rows->mutable_runs()->reserve(num_runs);
  uint64_t total_count = 0;
  uint64_t previous_value = 0;
  for (uint64_t i = 0; i < num_runs; ++i) {
    uint64_t value = 0;
    uint32_t count = 0;
    if (!ReadScalar(in, &value) || !ReadScalar(in, &count)) {
      return Status::Corruption("truncated run entry");
    }
    if (count == 0 || (i > 0 && value <= previous_value)) {
      return Status::Corruption("non-monotone row index");
    }
    previous_value = value;
    total_count += count;
    rows->mutable_runs()->push_back(RleRun{value, count});
  }
  uint64_t uncompressed = 0;
  uint64_t num_cols = 0;
  if (!ReadScalar(in, &uncompressed) || !ReadScalar(in, &num_cols)) {
    return Status::Corruption("truncated csr header");
  }
  if (uncompressed != total_count ||
      uncompressed != static_cast<uint64_t>(num_vertices) + 1) {
    return Status::Corruption("row index length mismatch");
  }
  if (!CountPlausible(in, num_cols, sizeof(VertexId))) {
    return Status::Corruption("implausible column count");
  }
  rows->set_uncompressed_length(uncompressed);
  cols->resize(num_cols);
  CSCE_RETURN_IF_ERROR(
      ReadArray(in, "columns", cols->data(), num_cols, sizeof(VertexId)));
  for (VertexId c : *cols) {
    if (c >= num_vertices) return Status::Corruption("column out of range");
  }
  // The final row offset must equal the column count.
  if (!rows->runs().empty() && rows->runs().back().value != num_cols) {
    return Status::Corruption("row/column count mismatch");
  }
  return Status::OK();
}

}  // namespace

Status SaveCcsrToStream(const Ccsr& ccsr, std::ostream& out) {
  WriteScalar(out, kMagic);
  WriteScalar(out, kVersion);
  WriteScalar<uint8_t>(out, ccsr.directed() ? 1 : 0);
  WriteScalar<uint32_t>(out, ccsr.NumVertices());
  WriteScalar<uint64_t>(out, ccsr.NumEdges());
  if (ccsr.NumVertices() > 0) {
    out.write(
        reinterpret_cast<const char*>(ccsr.vertex_labels().data()),
        static_cast<std::streamsize>(ccsr.NumVertices() * sizeof(Label)));
  }
  for (VertexId v = 0; v < ccsr.NumVertices(); ++v) {
    WriteScalar<uint32_t>(out, ccsr.OutDegree(v));
  }
  if (ccsr.directed()) {
    for (VertexId v = 0; v < ccsr.NumVertices(); ++v) {
      WriteScalar<uint32_t>(out, ccsr.InDegree(v));
    }
  }
  WriteScalar<uint32_t>(out, static_cast<uint32_t>(ccsr.NumClusters()));
  for (const CompressedCluster& c : ccsr.clusters()) {
    WriteScalar<uint32_t>(out, c.id.src_label);
    WriteScalar<uint32_t>(out, c.id.dst_label);
    WriteScalar<uint32_t>(out, c.id.elabel);
    WriteScalar<uint8_t>(out, c.id.directed ? 1 : 0);
    WriteScalar<uint64_t>(out, c.num_edges);
    WriteCompressedCsr(out, c.out_rows, c.out_cols);
    if (c.id.directed) WriteCompressedCsr(out, c.in_rows, c.in_cols);
  }
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Status SaveCcsrToFile(const Ccsr& ccsr, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  return SaveCcsrToStream(ccsr, out);
}

Status LoadCcsrFromStream(std::istream& in, Ccsr* out) {
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!ReadScalar(in, &magic)) {
    return Status::Corruption("truncated magic");
  }
  if (magic == kV2Magic) {
    return Status::Corruption(
        "CCSR v2 artifact (magic \"CSR2\"); the v1 stream loader expects "
        "magic \"CCSR\" — open it with the mmap loader (LoadCcsrFromFile "
        "dispatches automatically)");
  }
  if (magic != kMagic) {
    return Status::Corruption("bad magic (not a CCSR artifact)");
  }
  if (!ReadScalar(in, &version)) {
    return Status::Corruption("truncated version");
  }
  if (version != kVersion) {
    return Status::Corruption("unsupported CCSR v1 stream version " +
                              std::to_string(version) + ", expected " +
                              std::to_string(kVersion));
  }
  uint8_t directed = 0;
  uint32_t num_vertices = 0;
  uint64_t num_edges = 0;
  if (!ReadScalar(in, &directed) || !ReadScalar(in, &num_vertices) ||
      !ReadScalar(in, &num_edges)) {
    return Status::Corruption("truncated header");
  }
  if (!CountPlausible(in, num_vertices, sizeof(Label))) {
    return Status::Corruption("implausible vertex count");
  }
  Ccsr result;
  result.directed_ = directed != 0;
  result.num_edges_ = num_edges;
  result.vlabels_.resize(num_vertices);
  CSCE_RETURN_IF_ERROR(ReadArray(in, "labels", result.vlabels_.data(),
                                 num_vertices, sizeof(Label)));
  Label max_label = 0;
  for (Label l : result.vlabels_) max_label = std::max(max_label, l);
  // The frequency table below is indexed by label value, so a single
  // flipped high bit in one stored label would make it allocate
  // gigabytes. No plausible dataset needs label ids anywhere near this.
  if (num_vertices > 0 && max_label >= kMaxPlausibleLabel) {
    return Status::Corruption("implausible vertex label");
  }
  result.vlabel_freq_.assign(num_vertices == 0 ? 0 : max_label + 1, 0);
  for (Label l : result.vlabels_) ++result.vlabel_freq_[l];

  result.out_degree_.resize(num_vertices);
  CSCE_RETURN_IF_ERROR(ReadArray(in, "out-degrees",
                                 result.out_degree_.data(), num_vertices,
                                 sizeof(uint32_t)));
  if (result.directed_) {
    result.in_degree_.resize(num_vertices);
    CSCE_RETURN_IF_ERROR(ReadArray(in, "in-degrees",
                                   result.in_degree_.data(), num_vertices,
                                   sizeof(uint32_t)));
  }

  uint32_t num_clusters = 0;
  if (!ReadScalar(in, &num_clusters)) {
    return Status::Corruption("truncated cluster count");
  }
  // Each cluster occupies at least its fixed-size header on disk.
  if (!CountPlausible(in, num_clusters, 21)) {
    return Status::Corruption("implausible cluster count");
  }
  result.clusters_.resize(num_clusters);
  for (uint32_t i = 0; i < num_clusters; ++i) {
    CompressedCluster& c = result.clusters_[i];
    uint8_t cluster_directed = 0;
    if (!ReadScalar(in, &c.id.src_label) || !ReadScalar(in, &c.id.dst_label) ||
        !ReadScalar(in, &c.id.elabel) || !ReadScalar(in, &cluster_directed) ||
        !ReadScalar(in, &c.num_edges)) {
      return Status::Corruption("truncated cluster header");
    }
    c.id.directed = cluster_directed != 0;
    if (c.id.directed != result.directed_) {
      return Status::Corruption("cluster directedness mismatch");
    }
    CSCE_RETURN_IF_ERROR(
        ReadCompressedCsr(in, num_vertices, &c.out_rows, &c.out_cols));
    if (c.id.directed) {
      CSCE_RETURN_IF_ERROR(
          ReadCompressedCsr(in, num_vertices, &c.in_rows, &c.in_cols));
    }
  }
  result.RebuildIndexes();
  // The v1 stream never carried the label-pair index; derive it.
  result.BuildLabelMasks();
  // Field-level reads above only catch local damage (truncation, counts,
  // ranges). The deep validator cross-checks everything global: label
  // homogeneity, sorted adjacency, transpose consistency, degree tables
  // and the edge partition. A corrupted artifact must never load.
  CSCE_RETURN_IF_ERROR(result.Validate());
  *out = std::move(result);
  return Status::OK();
}

Status LoadCcsrFromFile(const std::string& path, Ccsr* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  // Sniff the magic to dispatch between the v1 stream format and the
  // mmap-able v2 format, so every existing call site keeps working as
  // artifacts migrate.
  uint32_t magic = 0;
  if (!ReadScalar(in, &magic)) {
    return Status::Corruption(path + ": truncated magic");
  }
  in.seekg(0);
  if (magic != kV2Magic) return LoadCcsrFromStream(in, out);
  in.close();

  // v2: open the mapping for its O(#clusters) structural checks, run
  // the same deep validation the stream loader guarantees ("a corrupted
  // artifact must never load"), then materialize into owned memory so
  // the result keeps the value semantics callers of this API expect.
  // Callers that want the out-of-core behavior use MmapCcsr directly.
  std::unique_ptr<MmapCcsr> mapped;
  CSCE_RETURN_IF_ERROR(MmapCcsr::Open(path, &mapped));
  CSCE_RETURN_IF_ERROR(mapped->ccsr().Validate());
  Ccsr result = mapped->Release();
  result.EnsureOwnedStorage();
  *out = std::move(result);
  return Status::OK();
}

// --- CCSR v2 (mmap-able) writer --------------------------------------

namespace {

// Zero-pads `out` from `*pos` up to `target`.
void PadTo(std::ostream& out, uint64_t target, uint64_t* pos) {
  static constexpr char kZeros[4096] = {};
  while (*pos < target) {
    uint64_t n = std::min<uint64_t>(target - *pos, sizeof(kZeros));
    out.write(kZeros, static_cast<std::streamsize>(n));
    *pos += n;
  }
}

void WriteBytes(std::ostream& out, const void* p, uint64_t n, uint64_t* pos) {
  if (n == 0) return;
  out.write(reinterpret_cast<const char*>(p),
            static_cast<std::streamsize>(n));
  *pos += n;
}

// Writes a run array as explicit 16-byte records with zeroed padding
// (the in-memory structs may carry garbage in the 4 padding bytes,
// which would make artifacts non-deterministic).
void WriteRuns(std::ostream& out, std::span<const RleRun> runs,
               uint64_t* pos) {
  for (const RleRun& r : runs) {
    char rec[sizeof(RleRun)] = {};
    std::memcpy(rec, &r.value, sizeof(r.value));
    std::memcpy(rec + offsetof(RleRun, count), &r.count, sizeof(r.count));
    out.write(rec, sizeof(rec));
  }
  *pos += runs.size() * sizeof(RleRun);
}

}  // namespace

Status SaveCcsrToFileV2(const Ccsr& ccsr, const std::string& path) {
  const uint64_t nv = ccsr.NumVertices();
  const bool directed = ccsr.directed();
  Label max_label = 0;
  for (Label l : ccsr.vertex_labels()) max_label = std::max(max_label, l);
  const uint64_t freq_entries = nv == 0 ? 0 : uint64_t{max_label} + 1;

  // Pass 1: lay out the sections and the per-cluster payload blocks.
  V2Header h;
  h.directed = directed ? 1 : 0;
  h.num_vertices = static_cast<uint32_t>(nv);
  h.num_edges = ccsr.NumEdges();
  h.num_clusters = ccsr.NumClusters();
  uint64_t cursor = kV2PageBytes;
  auto place_section = [&cursor](uint64_t length) {
    V2Section s{cursor, length};
    cursor = V2AlignUp(cursor + length, kV2PageBytes);
    return s;
  };
  h.vlabels = place_section(nv * sizeof(Label));
  h.out_degree = place_section(nv * sizeof(uint32_t));
  h.in_degree = place_section(directed ? nv * sizeof(uint32_t) : 0);
  h.vlabel_freq = place_section(freq_entries * sizeof(uint32_t));
  h.lpi_out = place_section(nv * sizeof(uint64_t));
  h.lpi_in = place_section(directed ? nv * sizeof(uint64_t) : 0);
  h.directory = place_section(h.num_clusters * sizeof(V2DirEntry));

  const uint64_t payload_begin = cursor;
  std::vector<V2DirEntry> dir;
  dir.reserve(ccsr.NumClusters());
  for (const CompressedCluster& c : ccsr.clusters()) {
    // Each cluster's block starts on a page boundary (madvise unit);
    // arrays inside are kV2ArrayAlign-aligned.
    V2DirEntry e;
    e.src_label = c.id.src_label;
    e.dst_label = c.id.dst_label;
    e.elabel = c.id.elabel;
    e.directed = c.id.directed ? 1 : 0;
    e.num_edges = c.num_edges;
    auto place_array = [&cursor](uint64_t count, uint64_t elem) {
      uint64_t offset = V2AlignUp(cursor, kV2ArrayAlign);
      cursor = offset + count * elem;
      return offset;
    };
    e.out_runs_count = c.out_rows.num_runs();
    e.out_runs_offset = place_array(e.out_runs_count, sizeof(RleRun));
    e.out_rows_len = c.out_rows.uncompressed_length();
    e.out_cols_count = c.out_cols.size();
    e.out_cols_offset = place_array(e.out_cols_count, sizeof(VertexId));
    if (c.id.directed) {
      e.in_runs_count = c.in_rows.num_runs();
      e.in_runs_offset = place_array(e.in_runs_count, sizeof(RleRun));
      e.in_rows_len = c.in_rows.uncompressed_length();
      e.in_cols_count = c.in_cols.size();
      e.in_cols_offset = place_array(e.in_cols_count, sizeof(VertexId));
    }
    dir.push_back(e);
    cursor = V2AlignUp(cursor, kV2PageBytes);  // next cluster's block
  }
  h.payload = V2Section{payload_begin, cursor - payload_begin};
  h.file_bytes = cursor;

  std::string dir_bytes(dir.size() * sizeof(V2DirEntry), '\0');
  if (!dir.empty()) {
    // V2DirEntry has no padding holes (static_assert'd size), so the
    // struct bytes are fully determined.
    std::memcpy(dir_bytes.data(), dir.data(), dir_bytes.size());
  }
  h.directory_crc32 = util::Crc32(dir_bytes);

  // Pass 2: write.
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  uint64_t pos = 0;
  WriteBytes(out, &h, sizeof(h), &pos);
  PadTo(out, kV2PageBytes, &pos);
  WriteBytes(out, ccsr.vertex_labels().data(), h.vlabels.length, &pos);
  PadTo(out, h.out_degree.offset, &pos);
  for (VertexId v = 0; v < nv; ++v) {
    uint32_t d = ccsr.OutDegree(v);
    WriteBytes(out, &d, sizeof(d), &pos);
  }
  if (directed) {
    PadTo(out, h.in_degree.offset, &pos);
    for (VertexId v = 0; v < nv; ++v) {
      uint32_t d = ccsr.InDegree(v);
      WriteBytes(out, &d, sizeof(d), &pos);
    }
  }
  PadTo(out, h.vlabel_freq.offset, &pos);
  for (uint64_t l = 0; l < freq_entries; ++l) {
    uint32_t f = ccsr.LabelFrequency(static_cast<Label>(l));
    WriteBytes(out, &f, sizeof(f), &pos);
  }
  PadTo(out, h.lpi_out.offset, &pos);
  for (VertexId v = 0; v < nv; ++v) {
    uint64_t m = ccsr.OutLabelMask(v);
    WriteBytes(out, &m, sizeof(m), &pos);
  }
  if (directed) {
    PadTo(out, h.lpi_in.offset, &pos);
    for (VertexId v = 0; v < nv; ++v) {
      uint64_t m = ccsr.InLabelMask(v);
      WriteBytes(out, &m, sizeof(m), &pos);
    }
  }
  PadTo(out, h.directory.offset, &pos);
  WriteBytes(out, dir_bytes.data(), dir_bytes.size(), &pos);
  for (size_t i = 0; i < dir.size(); ++i) {
    const CompressedCluster& c = ccsr.clusters()[i];
    const V2DirEntry& e = dir[i];
    PadTo(out, e.out_runs_offset, &pos);
    WriteRuns(out, c.out_rows.runs(), &pos);
    PadTo(out, e.out_cols_offset, &pos);
    WriteBytes(out, c.out_cols.data(), e.out_cols_count * sizeof(VertexId),
               &pos);
    if (c.id.directed) {
      PadTo(out, e.in_runs_offset, &pos);
      WriteRuns(out, c.in_rows.runs(), &pos);
      PadTo(out, e.in_cols_offset, &pos);
      WriteBytes(out, c.in_cols.data(), e.in_cols_count * sizeof(VertexId),
                 &pos);
    }
  }
  PadTo(out, h.file_bytes, &pos);
  if (!out) return Status::IOError("write failed: " + path);
  out.close();
  if (!out) return Status::IOError("close failed: " + path);
  CSCE_DCHECK(pos == h.file_bytes);
  return Status::OK();
}

}  // namespace csce
