#include "ccsr/csr.h"

#include <algorithm>

#include "util/logging.h"

namespace csce {
namespace {

// Below this fill ratio (non-empty vertices / |V|), use the sparse
// layout. Chosen so that a sparse cluster's row storage stays
// proportional to its arc count while big clusters keep O(1) lookup.
constexpr double kDenseThreshold = 1.0 / 16.0;

}  // namespace

CsrIndex CsrIndex::FromCompressed(const CompressedRowIndex& rows,
                                  std::vector<VertexId> cols) {
  CsrIndex out;
  out.cols_ = std::move(cols);
  return FromCompressedRows(rows, std::move(out));
}

CsrIndex CsrIndex::FromCompressed(const CompressedRowIndex& rows,
                                  std::span<const VertexId> cols,
                                  bool borrow) {
  CsrIndex out;
  if (borrow) {
    out.cols_.Borrow(cols);
  } else {
    out.cols_ = std::vector<VertexId>(cols.begin(), cols.end());
  }
  return FromCompressedRows(rows, std::move(out));
}

CsrIndex CsrIndex::FromCompressedRows(const CompressedRowIndex& rows,
                                      CsrIndex out) {
  uint64_t num_vertices = rows.uncompressed_length() - 1;
  // Non-empty vertex count == number of run boundaries.
  size_t non_empty = rows.num_runs() == 0 ? 0 : rows.num_runs() - 1;
  if (num_vertices > 0 &&
      static_cast<double>(non_empty) / static_cast<double>(num_vertices) >=
          kDenseThreshold) {
    out.dense_ = true;
    out.dense_rows_ = rows.Decompress();
  } else {
    out.dense_ = false;
    out.sparse_vertices_.reserve(non_empty);
    out.sparse_rows_.reserve(non_empty + 1);
    out.sparse_rows_.push_back(0);
    rows.ForEachNonEmptyRow([&out](uint64_t v, uint64_t begin, uint64_t end) {
      CSCE_DCHECK(out.sparse_rows_.back() == begin);
      (void)begin;
      out.sparse_vertices_.push_back(static_cast<VertexId>(v));
      out.sparse_rows_.push_back(end);
    });
  }
  out.ComputeRowStats();
  return out;
}

void CsrIndex::ComputeRowStats() {
  max_row_length_ = 0;
  if (dense_) {
    dense_non_empty_.clear();
    for (size_t v = 0; v + 1 < dense_rows_.size(); ++v) {
      uint64_t len = dense_rows_[v + 1] - dense_rows_[v];
      if (len == 0) continue;
      dense_non_empty_.push_back(static_cast<VertexId>(v));
      if (len > max_row_length_) max_row_length_ = static_cast<size_t>(len);
    }
  } else {
    for (size_t i = 0; i + 1 < sparse_rows_.size(); ++i) {
      uint64_t len = sparse_rows_[i + 1] - sparse_rows_[i];
      if (len > max_row_length_) max_row_length_ = static_cast<size_t>(len);
    }
  }
}

CsrIndex CsrIndex::FromArcs(uint32_t num_vertices,
                            std::span<const Edge> sorted_arcs) {
  std::vector<uint64_t> rows(num_vertices + 1, 0);
  std::vector<VertexId> cols(sorted_arcs.size());
  for (size_t i = 0; i < sorted_arcs.size(); ++i) {
    CSCE_DCHECK(i == 0 || !(sorted_arcs[i] < sorted_arcs[i - 1]));
    ++rows[sorted_arcs[i].src + 1];
    cols[i] = sorted_arcs[i].dst;
  }
  for (uint32_t v = 0; v < num_vertices; ++v) rows[v + 1] += rows[v];
  CompressedRowIndex compressed = CompressedRowIndex::Compress(rows);
  return FromCompressed(compressed, std::move(cols));
}

std::vector<VertexId> CsrIndex::NonEmptyVertices() const {
  std::span<const VertexId> view = NonEmptySpan();
  return std::vector<VertexId>(view.begin(), view.end());
}

}  // namespace csce
