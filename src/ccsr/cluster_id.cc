#include "ccsr/cluster_id.h"

namespace csce {

std::string ClusterId::ToString() const {
  std::string out = directed ? "dir(" : "und(";
  out += std::to_string(src_label);
  out += ",";
  out += std::to_string(dst_label);
  out += ",";
  out += elabel == kNoLabel ? "NULL" : std::to_string(elabel);
  out += ")-cluster";
  return out;
}

}  // namespace csce
