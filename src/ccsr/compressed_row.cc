#include "ccsr/compressed_row.h"

#include <cstdint>
#include <string>

#include "util/logging.h"

namespace csce {

CompressedRowIndex CompressedRowIndex::Compress(
    std::span<const uint64_t> row) {
  CompressedRowIndex out;
  out.uncompressed_length_ = row.size();
  std::vector<RleRun>& runs = out.runs_.vec();
  size_t i = 0;
  while (i < row.size()) {
    size_t j = i;
    while (j < row.size() && row[j] == row[i]) ++j;
    // Split runs longer than what a uint32 count can hold.
    size_t remaining = j - i;
    while (remaining > 0) {
      uint32_t chunk = remaining > 0xFFFFFFFFull
                           ? 0xFFFFFFFFu
                           : static_cast<uint32_t>(remaining);
      runs.push_back(RleRun{row[i], chunk});
      remaining -= chunk;
    }
    i = j;
  }
  return out;
}

std::vector<uint64_t> CompressedRowIndex::Decompress() const {
  std::vector<uint64_t> row;
  row.reserve(uncompressed_length_);
  for (const RleRun& r : runs()) {
    row.insert(row.end(), r.count, r.value);
  }
  CSCE_DCHECK(row.size() == uncompressed_length_);
  return row;
}

Status CompressedRowIndex::Validate() const {
  std::span<const RleRun> runs = this->runs();
  if (runs.empty()) {
    if (uncompressed_length_ != 0) {
      return Status::Corruption("compressed row: no runs but length " +
                                std::to_string(uncompressed_length_));
    }
    return Status::OK();
  }
  if (runs.front().value != 0) {
    return Status::Corruption("compressed row: first offset is " +
                              std::to_string(runs.front().value) +
                              ", expected 0");
  }
  uint64_t covered = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    const RleRun& r = runs[i];
    if (r.count == 0) {
      return Status::Corruption("compressed row: empty run at index " +
                                std::to_string(i));
    }
    if (i > 0) {
      const RleRun& prev = runs[i - 1];
      // Compress() merges equal adjacent offsets into one run, so run
      // values must strictly increase — unless the previous run's
      // counter saturated and the run was split.
      bool saturated_split =
          r.value == prev.value && prev.count == UINT32_MAX;
      if (r.value <= prev.value && !saturated_split) {
        return Status::Corruption(
            "compressed row: non-monotone run value " +
            std::to_string(r.value) + " after " + std::to_string(prev.value) +
            " at index " + std::to_string(i));
      }
    }
    covered += r.count;
  }
  if (covered != uncompressed_length_) {
    return Status::Corruption("compressed row: runs cover " +
                              std::to_string(covered) + " entries, expected " +
                              std::to_string(uncompressed_length_));
  }
  return Status::OK();
}

}  // namespace csce
