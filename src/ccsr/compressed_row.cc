#include "ccsr/compressed_row.h"

#include "util/logging.h"

namespace csce {

CompressedRowIndex CompressedRowIndex::Compress(
    std::span<const uint64_t> row) {
  CompressedRowIndex out;
  out.uncompressed_length_ = row.size();
  size_t i = 0;
  while (i < row.size()) {
    size_t j = i;
    while (j < row.size() && row[j] == row[i]) ++j;
    // Split runs longer than what a uint32 count can hold.
    size_t remaining = j - i;
    while (remaining > 0) {
      uint32_t chunk = remaining > 0xFFFFFFFFull
                           ? 0xFFFFFFFFu
                           : static_cast<uint32_t>(remaining);
      out.runs_.push_back(RleRun{row[i], chunk});
      remaining -= chunk;
    }
    i = j;
  }
  return out;
}

std::vector<uint64_t> CompressedRowIndex::Decompress() const {
  std::vector<uint64_t> row;
  row.reserve(uncompressed_length_);
  for (const RleRun& r : runs_) {
    row.insert(row.end(), r.count, r.value);
  }
  CSCE_DCHECK(row.size() == uncompressed_length_);
  return row;
}

}  // namespace csce
