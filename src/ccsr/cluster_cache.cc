#include "ccsr/cluster_cache.h"

namespace csce {

// Defined in ccsr.cc (shares the cluster-selection logic with
// ReadClusters).
Status ReadClustersImpl(const Ccsr& gc, const Graph& pattern,
                        MatchVariant variant, ClusterCache* cache,
                        QueryClusters* out);

std::shared_ptr<const ClusterView> ClusterCache::Get(const ClusterId& id) {
  auto it = views_.find(id);
  if (it != views_.end()) {
    ++hits_;
    return it->second;
  }
  const CompressedCluster* c = gc_->Find(id);
  if (c == nullptr) return nullptr;
  ++misses_;
  std::shared_ptr<const ClusterView> view = DecompressCluster(*c);
  views_.emplace(id, view);
  return view;
}

size_t ClusterCache::CachedBytes() const {
  size_t total = 0;
  for (const auto& [id, view] : views_) total += view->SizeBytes();
  return total;
}

Status ReadClustersCached(ClusterCache& cache, const Graph& pattern,
                          MatchVariant variant, QueryClusters* out) {
  return ReadClustersImpl(cache.ccsr(), pattern, variant, &cache, out);
}

}  // namespace csce
