#include "ccsr/cluster_cache.h"

namespace csce {

// Defined in ccsr.cc (shares the cluster-selection logic with
// ReadClusters).
Status ReadClustersImpl(const Ccsr& gc, const Graph& pattern,
                        MatchVariant variant, ClusterCache* cache,
                        QueryClusters* out);

std::shared_ptr<const ClusterView> ClusterCache::Get(const ClusterId& id) {
  {
    MutexLock lock(mu_);
    auto it = views_.find(id);
    if (it != views_.end()) {
      ++hits_;
      return it->second;
    }
  }
  const CompressedCluster* c = gc_->Find(id);
  if (c == nullptr) return nullptr;
  // Decompress outside the lock: concurrent queries missing on
  // different clusters proceed in parallel. Two threads racing on the
  // same cluster both decompress; the first insert wins and the loser's
  // copy is dropped (both are correct, the work is wasted once).
  std::shared_ptr<const ClusterView> view = DecompressCluster(*c);
  MutexLock lock(mu_);
  auto [it, inserted] = views_.emplace(id, view);
  ++misses_;
  return it->second;
}

size_t ClusterCache::CachedBytes() const {
  MutexLock lock(mu_);
  size_t total = 0;
  for (const auto& [id, view] : views_) total += view->SizeBytes();
  return total;
}

Status ReadClustersCached(ClusterCache& cache, const Graph& pattern,
                          MatchVariant variant, QueryClusters* out) {
  return ReadClustersImpl(cache.ccsr(), pattern, variant, &cache, out);
}

}  // namespace csce
