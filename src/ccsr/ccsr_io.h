#ifndef CSCE_CCSR_CCSR_IO_H_
#define CSCE_CCSR_CCSR_IO_H_

#include <iosfwd>
#include <string>

#include "ccsr/ccsr.h"
#include "util/status.h"

namespace csce {

/// Binary on-disk format for the offline CCSR artifact. The paper's
/// pipeline builds G_C once offline and every query reads only the
/// clusters it needs; persisting G_C makes that split real.
///
/// Layout (little-endian):
///   magic "CCSR" (u32) | version (u32) | directed (u8)
///   num_vertices (u32) | num_edges (u64) | vertex labels (u32 each)
///   num_clusters (u32) | clusters...
/// Each cluster: id fields, edge count, then one (or two, if directed)
/// compressed CSR: run count, runs as (value u64, count u32) pairs,
/// uncompressed length, column count, columns.
Status SaveCcsrToStream(const Ccsr& ccsr, std::ostream& out);
Status SaveCcsrToFile(const Ccsr& ccsr, const std::string& path);

/// Writes the mmap-able v2 format (fixed-offset section table, page-
/// aligned per-cluster payload blocks, CRC-protected directory — see
/// ccsr_v2_format.h). v2 artifacts open in O(#clusters) through
/// MmapCcsr; LoadCcsrFromFile also accepts them (it materializes the
/// mapping into owned memory).
Status SaveCcsrToFileV2(const Ccsr& ccsr, const std::string& path);

Status LoadCcsrFromStream(std::istream& in, Ccsr* out);

/// Loads either format, dispatching on the file magic: v1 ("CCSR")
/// streams into memory; v2 ("CSR2") opens via mmap, deep-validates, and
/// deep-copies into owned storage. Use MmapCcsr directly for the
/// out-of-core (demand-paged) path.
Status LoadCcsrFromFile(const std::string& path, Ccsr* out);

}  // namespace csce

#endif  // CSCE_CCSR_CCSR_IO_H_
