#include "ccsr/ccsr.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <memory>

#include "ccsr/ccsr_io.h"
#include "ccsr/ccsr_mmap.h"
#include "ccsr/cluster_cache.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace csce {
namespace {

struct CcsrMetrics {
  obs::Counter builds;
  obs::Gauge clusters;
  obs::Gauge compressed_bytes;
  obs::Gauge raw_csr_bytes;
  obs::Gauge rle_runs_saved;

  static const CcsrMetrics& Get() {
    static const CcsrMetrics m = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Global();
      return CcsrMetrics{r.counter("ccsr.builds"),
                         r.gauge("ccsr.clusters"),
                         r.gauge("ccsr.compressed_bytes"),
                         r.gauge("ccsr.raw_csr_bytes"),
                         r.gauge("ccsr.rle_runs_saved")};
    }();
    return m;
  }
};

uint64_t LabelPairKey(Label a, Label b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

// Recomputes the label-pair index (per-vertex neighboring-label
// bitmasks) from the clusters, O(total RLE runs). Shared by
// Ccsr::BuildLabelMasks and the Validate cross-check so a drifting
// persisted table cannot agree with a drifting rebuild.
void ComputeLabelMasks(const std::vector<CompressedCluster>& clusters,
                       std::span<const Label> vlabels, bool directed,
                       std::vector<uint64_t>* out_masks,
                       std::vector<uint64_t>* in_masks) {
  out_masks->assign(vlabels.size(), 0);
  in_masks->assign(directed ? vlabels.size() : 0, 0);
  for (const CompressedCluster& c : clusters) {
    if (c.id.directed) {
      const uint64_t dst_bit = Ccsr::LabelBit(c.id.dst_label);
      c.out_rows.ForEachNonEmptyRow(
          [&](uint64_t v, uint64_t, uint64_t) { (*out_masks)[v] |= dst_bit; });
      const uint64_t src_bit = Ccsr::LabelBit(c.id.src_label);
      c.in_rows.ForEachNonEmptyRow(
          [&](uint64_t v, uint64_t, uint64_t) { (*in_masks)[v] |= src_bit; });
    } else {
      // Undirected cluster {a,b}: a vertex with a non-empty row has
      // label a or b; its cluster-neighbors carry the other label.
      const uint64_t a_bit = Ccsr::LabelBit(c.id.src_label);
      const uint64_t b_bit = Ccsr::LabelBit(c.id.dst_label);
      c.out_rows.ForEachNonEmptyRow([&](uint64_t v, uint64_t, uint64_t) {
        (*out_masks)[v] |= vlabels[v] == c.id.src_label ? b_bit : a_bit;
      });
    }
  }
}

// Builds the compressed one-direction CSR of a cluster from arcs sorted
// by (src, dst).
void BuildCompressedDirection(uint32_t num_vertices,
                              std::span<const Edge> sorted_arcs,
                              CompressedRowIndex* rows,
                              ArrayOrView<VertexId>* cols) {
  std::vector<uint64_t> row(num_vertices + 1, 0);
  cols->resize(sorted_arcs.size());
  for (size_t i = 0; i < sorted_arcs.size(); ++i) {
    ++row[sorted_arcs[i].src + 1];
    (*cols)[i] = sorted_arcs[i].dst;
  }
  for (uint32_t v = 0; v < num_vertices; ++v) row[v + 1] += row[v];
  *rows = CompressedRowIndex::Compress(row);
}

// Publishes the index-shape gauges for `ccsr`: cluster count, bytes of
// the compressed representation vs an uncompressed per-cluster CSR
// (row offsets stored flat, 8 bytes each), and how many row-index
// entries RLE compression eliminated.
void PublishCcsrGauges(const Ccsr& ccsr) {
  uint64_t raw_bytes = ccsr.vertex_labels().size() * sizeof(Label);
  uint64_t runs_saved = 0;
  for (const CompressedCluster& c : ccsr.clusters()) {
    raw_bytes += c.out_rows.uncompressed_length() * sizeof(uint64_t) +
                 c.out_cols.size() * sizeof(VertexId);
    runs_saved += c.out_rows.uncompressed_length() - c.out_rows.num_runs();
    if (c.id.directed) {
      raw_bytes += c.in_rows.uncompressed_length() * sizeof(uint64_t) +
                   c.in_cols.size() * sizeof(VertexId);
      runs_saved += c.in_rows.uncompressed_length() - c.in_rows.num_runs();
    }
  }
  const CcsrMetrics& m = CcsrMetrics::Get();
  m.clusters.Set(static_cast<double>(ccsr.NumClusters()));
  m.compressed_bytes.Set(static_cast<double>(ccsr.CompressedSizeBytes()));
  m.raw_csr_bytes.Set(static_cast<double>(raw_bytes));
  m.rle_runs_saved.Set(static_cast<double>(runs_saved));
}

// Is the unordered pattern pair {a,b} fully connected, i.e. does no
// negation constraint exist between them? For undirected patterns that
// means the edge exists; for directed, both arc directions exist.
bool FullyConnected(const Graph& pattern, VertexId a, VertexId b) {
  if (!pattern.directed()) return pattern.HasEdge(a, b);
  return pattern.HasEdge(a, b) && pattern.HasEdge(b, a);
}

// Test-suite hook (CSCE_CCSR_MMAP=1, the CI mmap leg): round-trip the
// freshly built index through a v2 artifact and the mmap view, then
// deep-copy back to owned storage so the mapping can be dropped and
// mutation keeps working. Every Build call site in the suite becomes a
// serialization + mapping cross-check — a v2 layout or span-binding bug
// surfaces as ordinary test failures instead of only in the mmap tests.
void MaybeMmapRoundTrip(Ccsr* out) {
  static const bool enabled = [] {
    const char* env = std::getenv("CSCE_CCSR_MMAP");
    return env != nullptr && std::strcmp(env, "1") == 0;
  }();
  if (!enabled) return;
  static std::atomic<uint64_t> counter{0};
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string path =
      std::string(tmpdir != nullptr && tmpdir[0] != '\0' ? tmpdir : "/tmp") +
      "/csce_mmap_roundtrip." + std::to_string(::getpid()) + "." +
      std::to_string(counter.fetch_add(1)) + ".ccsr";
  Status st = SaveCcsrToFileV2(*out, path);
  CSCE_CHECK(st.ok());
  std::unique_ptr<MmapCcsr> mapped;
  st = MmapCcsr::Open(path, &mapped);
  CSCE_CHECK(st.ok());
  Ccsr view = mapped->Release();
  view.EnsureOwnedStorage();  // the mapping dies with this scope
  *out = std::move(view);
  std::remove(path.c_str());
}

}  // namespace

Ccsr Ccsr::Build(const Graph& g) {
  obs::Span span("ccsr.build");
  Ccsr out;
  out.directed_ = g.directed();
  out.num_edges_ = g.NumEdges();
  out.vlabels_ = g.vertex_labels();

  Label max_label = 0;
  for (Label l : out.vlabels_) max_label = std::max(max_label, l);
  out.vlabel_freq_.assign(out.vlabels_.empty() ? 0 : max_label + 1, 0);
  for (Label l : out.vlabels_) ++out.vlabel_freq_[l];

  out.out_degree_.resize(g.NumVertices());
  if (g.directed()) out.in_degree_.resize(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    out.out_degree_[v] = g.OutDegree(v);
    if (g.directed()) out.in_degree_[v] = g.InDegree(v);
  }

  // Bucket arcs by cluster identifier. Each edge goes into exactly one
  // cluster and is stored twice (both CSR directions / orientations).
  std::unordered_map<ClusterId, std::vector<Edge>, ClusterIdHash> buckets;
  g.ForEachEdge([&](const Edge& e) {
    Label ls = g.VertexLabel(e.src);
    Label ld = g.VertexLabel(e.dst);
    if (g.directed()) {
      buckets[ClusterId::Directed(ls, ld, e.elabel)].push_back(e);
    } else {
      auto& bucket = buckets[ClusterId::Undirected(ls, ld, e.elabel)];
      bucket.push_back(e);
      bucket.push_back(Edge{e.dst, e.src, e.elabel});
    }
  });

  out.clusters_.reserve(buckets.size());
  const uint32_t n = g.NumVertices();
  for (auto& [id, arcs] : buckets) {
    CompressedCluster cluster;
    cluster.id = id;
    cluster.num_edges = id.directed ? arcs.size() : arcs.size() / 2;
    std::sort(arcs.begin(), arcs.end());
    BuildCompressedDirection(n, arcs, &cluster.out_rows, &cluster.out_cols);
    if (id.directed) {
      // Incoming CSR: arcs keyed by destination.
      std::vector<Edge> reversed(arcs.size());
      for (size_t i = 0; i < arcs.size(); ++i) {
        reversed[i] = Edge{arcs[i].dst, arcs[i].src, arcs[i].elabel};
      }
      std::sort(reversed.begin(), reversed.end());
      BuildCompressedDirection(n, reversed, &cluster.in_rows,
                               &cluster.in_cols);
    }
    out.clusters_.push_back(std::move(cluster));
  }

  // Deterministic cluster order (unordered_map iteration is not).
  std::sort(out.clusters_.begin(), out.clusters_.end(),
            [](const CompressedCluster& a, const CompressedCluster& b) {
              return a.id < b.id;
            });
  out.RebuildIndexes();
  out.BuildLabelMasks();
  MaybeMmapRoundTrip(&out);
  CcsrMetrics::Get().builds.Increment();
  PublishCcsrGauges(out);
  return out;
}

void Ccsr::EnsureOwnedStorage() {
  vlabels_.EnsureOwned();
  vlabel_freq_.EnsureOwned();
  out_degree_.EnsureOwned();
  in_degree_.EnsureOwned();
  lpi_out_.EnsureOwned();
  lpi_in_.EnsureOwned();
  for (CompressedCluster& c : clusters_) {
    c.out_rows.EnsureOwned();
    c.out_cols.EnsureOwned();
    c.in_rows.EnsureOwned();
    c.in_cols.EnsureOwned();
  }
  pager_ = nullptr;
}

void Ccsr::RebuildIndexes() {
  index_.clear();
  star_index_.clear();
  for (size_t i = 0; i < clusters_.size(); ++i) {
    const ClusterId& id = clusters_[i].id;
    index_.emplace(id, i);
    star_index_[LabelPairKey(id.src_label, id.dst_label)].push_back(i);
  }
}

void Ccsr::BuildLabelMasks() {
  std::vector<uint64_t> out_masks;
  std::vector<uint64_t> in_masks;
  ComputeLabelMasks(clusters_, vlabels_.span(), directed_, &out_masks,
                    &in_masks);
  lpi_out_ = std::move(out_masks);
  lpi_in_ = std::move(in_masks);
}

const CompressedCluster* Ccsr::Find(const ClusterId& id) const {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &clusters_[it->second];
}

std::vector<const CompressedCluster*> Ccsr::StarClusters(Label a,
                                                         Label b) const {
  std::vector<const CompressedCluster*> out;
  auto it = star_index_.find(LabelPairKey(a, b));
  if (it == star_index_.end()) return out;
  out.reserve(it->second.size());
  for (size_t i : it->second) out.push_back(&clusters_[i]);
  return out;
}

namespace {

// Reconstructs a cluster's arc list from its compressed outgoing CSR.
std::vector<Edge> ArcsOf(const CompressedCluster& c) {
  std::vector<Edge> arcs;
  arcs.reserve(c.out_cols.size());
  c.out_rows.ForEachNonEmptyRow([&](uint64_t src, uint64_t begin,
                                    uint64_t end) {
    for (uint64_t k = begin; k < end; ++k) {
      arcs.push_back(Edge{static_cast<VertexId>(src), c.out_cols[k],
                          c.id.elabel});
    }
  });
  return arcs;
}

// Rebuilds a cluster's compressed CSR(s) from a sorted arc list.
void RebuildCluster(uint32_t num_vertices, std::vector<Edge> arcs,
                    CompressedCluster* c) {
  c->num_edges = c->id.directed ? arcs.size() : arcs.size() / 2;
  BuildCompressedDirection(num_vertices, arcs, &c->out_rows, &c->out_cols);
  if (c->id.directed) {
    std::vector<Edge> reversed(arcs.size());
    for (size_t i = 0; i < arcs.size(); ++i) {
      reversed[i] = Edge{arcs[i].dst, arcs[i].src, arcs[i].elabel};
    }
    std::sort(reversed.begin(), reversed.end());
    BuildCompressedDirection(num_vertices, reversed, &c->in_rows,
                             &c->in_cols);
  }
}

}  // namespace

Status Ccsr::InsertEdges(const std::vector<Edge>& edges) {
  if (mapped()) {
    return Status::NotSupported(
        "index is an mmap'd view; call EnsureOwnedStorage() before mutating");
  }
  // Group new arcs by cluster.
  std::unordered_map<ClusterId, std::vector<Edge>, ClusterIdHash> delta;
  for (const Edge& e : edges) {
    if (e.src >= NumVertices() || e.dst >= NumVertices()) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    if (e.src == e.dst) return Status::InvalidArgument("self-loop");
    Label ls = vlabels_[e.src];
    Label ld = vlabels_[e.dst];
    if (directed_) {
      delta[ClusterId::Directed(ls, ld, e.elabel)].push_back(e);
    } else {
      auto& bucket = delta[ClusterId::Undirected(ls, ld, e.elabel)];
      bucket.push_back(e);
      bucket.push_back(Edge{e.dst, e.src, e.elabel});
    }
  }

  bool structure_changed = false;
  for (auto& [id, new_arcs] : delta) {
    std::vector<Edge> arcs;
    CompressedCluster* cluster = nullptr;
    auto it = index_.find(id);
    if (it != index_.end()) {
      cluster = &clusters_[it->second];
      arcs = ArcsOf(*cluster);
    }
    std::sort(new_arcs.begin(), new_arcs.end());
    new_arcs.erase(std::unique(new_arcs.begin(), new_arcs.end()),
                   new_arcs.end());
    size_t before = arcs.size();
    std::vector<Edge> merged;
    merged.reserve(arcs.size() + new_arcs.size());
    std::set_union(arcs.begin(), arcs.end(), new_arcs.begin(),
                   new_arcs.end(), std::back_inserter(merged));
    if (merged.size() == before) continue;  // all duplicates

    // Degree + edge-count accounting for the genuinely new arcs.
    std::vector<Edge> added;
    std::set_difference(merged.begin(), merged.end(), arcs.begin(),
                        arcs.end(), std::back_inserter(added));
    for (const Edge& a : added) {
      ++out_degree_[a.src];
      if (directed_) ++in_degree_[a.dst];
    }
    num_edges_ += id.directed ? added.size() : added.size() / 2;

    if (cluster == nullptr) {
      clusters_.push_back(CompressedCluster{});
      cluster = &clusters_.back();
      cluster->id = id;
      structure_changed = true;
    }
    RebuildCluster(NumVertices(), std::move(merged), cluster);
  }
  if (structure_changed) {
    std::sort(clusters_.begin(), clusters_.end(),
              [](const CompressedCluster& a, const CompressedCluster& b) {
                return a.id < b.id;
              });
  }
  RebuildIndexes();
  BuildLabelMasks();
  PublishCcsrGauges(*this);
  return Status::OK();
}

Status Ccsr::RemoveEdges(const std::vector<Edge>& edges) {
  if (mapped()) {
    return Status::NotSupported(
        "index is an mmap'd view; call EnsureOwnedStorage() before mutating");
  }
  std::unordered_map<ClusterId, std::vector<Edge>, ClusterIdHash> delta;
  for (const Edge& e : edges) {
    if (e.src >= NumVertices() || e.dst >= NumVertices()) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    Label ls = vlabels_[e.src];
    Label ld = vlabels_[e.dst];
    if (directed_) {
      delta[ClusterId::Directed(ls, ld, e.elabel)].push_back(e);
    } else {
      auto& bucket = delta[ClusterId::Undirected(ls, ld, e.elabel)];
      bucket.push_back(e);
      bucket.push_back(Edge{e.dst, e.src, e.elabel});
    }
  }

  // Validate first so a failed call leaves the index untouched.
  for (auto& [id, gone_arcs] : delta) {
    std::sort(gone_arcs.begin(), gone_arcs.end());
    gone_arcs.erase(std::unique(gone_arcs.begin(), gone_arcs.end()),
                    gone_arcs.end());
    auto it = index_.find(id);
    if (it == index_.end()) {
      return Status::NotFound("no cluster " + id.ToString());
    }
    std::vector<Edge> arcs = ArcsOf(clusters_[it->second]);
    if (!std::includes(arcs.begin(), arcs.end(), gone_arcs.begin(),
                       gone_arcs.end())) {
      return Status::NotFound("edge not present in " + id.ToString());
    }
  }

  bool structure_changed = false;
  for (const auto& [id, gone_arcs] : delta) {
    size_t slot = index_.at(id);
    std::vector<Edge> arcs = ArcsOf(clusters_[slot]);
    std::vector<Edge> remaining;
    remaining.reserve(arcs.size() - gone_arcs.size());
    std::set_difference(arcs.begin(), arcs.end(), gone_arcs.begin(),
                        gone_arcs.end(), std::back_inserter(remaining));
    for (const Edge& a : gone_arcs) {
      --out_degree_[a.src];
      if (directed_) --in_degree_[a.dst];
    }
    num_edges_ -= id.directed ? gone_arcs.size() : gone_arcs.size() / 2;
    if (remaining.empty()) {
      clusters_.erase(clusters_.begin() + static_cast<ptrdiff_t>(slot));
      structure_changed = true;
      RebuildIndexes();  // slots shifted; refresh before the next lookup
    } else {
      RebuildCluster(NumVertices(), std::move(remaining), &clusters_[slot]);
    }
  }
  if (structure_changed) {
    std::sort(clusters_.begin(), clusters_.end(),
              [](const CompressedCluster& a, const CompressedCluster& b) {
                return a.id < b.id;
              });
  }
  RebuildIndexes();
  BuildLabelMasks();
  PublishCcsrGauges(*this);
  return Status::OK();
}

namespace {

// Deep check of one direction of a cluster's compressed CSR. Verifies
// the RLE row index, row/column consistency, sorted-unique neighbor
// lists, vertex ranges, and endpoint-label homogeneity; appends the
// direction's arcs (src -> dst as stored) to `arcs_out` for the
// caller's transpose/symmetry check.
Status ValidateClusterDirection(const CompressedCluster& c, bool incoming,
                                std::span<const Label> vlabels,
                                std::vector<Edge>* arcs_out) {
  const CompressedRowIndex& rows = incoming ? c.in_rows : c.out_rows;
  const ArrayOrView<VertexId>& cols = incoming ? c.in_cols : c.out_cols;
  const std::string where =
      c.id.ToString() + (incoming ? " incoming" : " outgoing");
  // Directed clusters orient (src_label, dst_label) along the arc; the
  // incoming CSR stores reversed arcs, so the roles swap. Undirected
  // clusters only require the unordered label pair to match.
  const Label expect_src = incoming ? c.id.dst_label : c.id.src_label;
  const Label expect_dst = incoming ? c.id.src_label : c.id.dst_label;

  if (Status st = rows.Validate(); !st.ok()) {
    return Status::Corruption(where + ": " + st.message());
  }
  const uint32_t n = static_cast<uint32_t>(vlabels.size());
  if (rows.uncompressed_length() != static_cast<uint64_t>(n) + 1) {
    return Status::Corruption(
        where + ": row index covers " +
        std::to_string(rows.uncompressed_length()) +
        " entries, expected |V|+1 = " + std::to_string(n + 1));
  }
  std::vector<uint64_t> row = rows.Decompress();
  if (row.back() != cols.size()) {
    return Status::Corruption(where + ": final row offset " +
                              std::to_string(row.back()) + " != column count " +
                              std::to_string(cols.size()));
  }
  for (VertexId v = 0; v < n; ++v) {
    uint64_t begin = row[v];
    uint64_t end = row[v + 1];
    if (begin == end) continue;
    if (vlabels[v] != expect_src) {
      if (c.id.directed || (vlabels[v] != c.id.src_label &&
                            vlabels[v] != c.id.dst_label)) {
        return Status::Corruption(where + ": vertex " + std::to_string(v) +
                                  " has label " + std::to_string(vlabels[v]) +
                                  ", not an endpoint label of the cluster");
      }
    }
    VertexId prev = kInvalidVertex;
    for (uint64_t k = begin; k < end; ++k) {
      VertexId w = cols[k];
      if (w >= n) {
        return Status::Corruption(where + ": neighbor " + std::to_string(w) +
                                  " of vertex " + std::to_string(v) +
                                  " out of range");
      }
      if (prev != kInvalidVertex && w <= prev) {
        return Status::Corruption(where + ": neighbors of vertex " +
                                  std::to_string(v) +
                                  " not sorted strictly increasing");
      }
      prev = w;
      Label lw = vlabels[w];
      bool label_ok =
          c.id.directed
              ? lw == expect_dst
              // Undirected: the arc's unordered label pair must be the
              // cluster's pair (either orientation).
              : ((vlabels[v] == c.id.src_label && lw == c.id.dst_label) ||
                 (vlabels[v] == c.id.dst_label && lw == c.id.src_label));
      if (!label_ok) {
        return Status::Corruption(
            where + ": arc (" + std::to_string(v) + ", " + std::to_string(w) +
            ") labels (" + std::to_string(vlabels[v]) + ", " +
            std::to_string(lw) + ") do not match the cluster id");
      }
      arcs_out->push_back(Edge{v, w, c.id.elabel});
    }
  }
  return Status::OK();
}

}  // namespace

Status Ccsr::Validate() const {
  const uint32_t n = NumVertices();

  // Statistics tables.
  if (out_degree_.size() != n) {
    return Status::Corruption("out-degree table has " +
                              std::to_string(out_degree_.size()) +
                              " entries for " + std::to_string(n) +
                              " vertices");
  }
  if (directed_ ? in_degree_.size() != n : !in_degree_.empty()) {
    return Status::Corruption("in-degree table size inconsistent with "
                              "graph directedness");
  }
  Label max_label = 0;
  for (Label l : vlabels_) max_label = std::max(max_label, l);
  if (vlabel_freq_.size() != (n == 0 ? 0 : size_t{max_label} + 1)) {
    return Status::Corruption("label frequency table has wrong size");
  }
  std::vector<uint32_t> freq(vlabel_freq_.size(), 0);
  for (Label l : vlabels_) ++freq[l];
  if (!std::ranges::equal(freq, vlabel_freq_.span())) {
    return Status::Corruption("label frequency table does not match the "
                              "vertex labels");
  }
  if (lpi_out_.size() != n ||
      (directed_ ? lpi_in_.size() != n : !lpi_in_.empty())) {
    return Status::Corruption("label-pair index size inconsistent with the "
                              "vertex count");
  }
  {
    std::vector<uint64_t> expect_out;
    std::vector<uint64_t> expect_in;
    ComputeLabelMasks(clusters_, vlabels_.span(), directed_, &expect_out,
                      &expect_in);
    if (!std::ranges::equal(expect_out, lpi_out_.span()) ||
        !std::ranges::equal(expect_in, lpi_in_.span())) {
      return Status::Corruption("label-pair index does not match the "
                                "clusters");
    }
  }

  // Lookup indexes: clusters sorted strictly by id (hence unique), both
  // indexes exhaustive.
  if (index_.size() != clusters_.size()) {
    return Status::Corruption("cluster index has " +
                              std::to_string(index_.size()) +
                              " entries for " +
                              std::to_string(clusters_.size()) + " clusters");
  }
  for (size_t i = 0; i < clusters_.size(); ++i) {
    const ClusterId& id = clusters_[i].id;
    if (i > 0 && !(clusters_[i - 1].id < id)) {
      return Status::Corruption("clusters not sorted strictly by id at slot " +
                                std::to_string(i));
    }
    auto it = index_.find(id);
    if (it == index_.end() || it->second != i) {
      return Status::Corruption("cluster index entry missing or stale for " +
                                id.ToString());
    }
    bool in_star = false;
    for (const CompressedCluster* c :
         StarClusters(id.src_label, id.dst_label)) {
      if (c == &clusters_[i]) in_star = true;
    }
    if (!in_star) {
      return Status::Corruption("star index misses " + id.ToString());
    }
  }

  // Per-cluster structure plus global partition accounting. Clusters
  // are disjoint over (src, dst, elabel) triples by construction once
  // each is internally consistent: homogeneity pins the endpoint labels
  // to the id, ids are unique, and neighbor lists are strictly sorted —
  // so exhaustiveness reduces to the edge totals and per-vertex arc
  // counts matching the stored degree tables.
  uint64_t total_edges = 0;
  std::vector<uint64_t> out_count(n, 0);
  std::vector<uint64_t> in_count(n, 0);
  for (const CompressedCluster& c : clusters_) {
    if (c.id.directed != directed_) {
      return Status::Corruption("cluster " + c.id.ToString() +
                                " directedness differs from the graph");
    }
    if (!directed_ && c.id.src_label > c.id.dst_label) {
      return Status::Corruption("undirected cluster " + c.id.ToString() +
                                " label pair not canonicalized");
    }
    std::vector<Edge> out_arcs;
    CSCE_RETURN_IF_ERROR(
        ValidateClusterDirection(c, /*incoming=*/false, vlabels_, &out_arcs));
    uint64_t expected_arcs = directed_ ? c.num_edges : 2 * c.num_edges;
    if (out_arcs.size() != expected_arcs) {
      return Status::Corruption(
          c.id.ToString() + ": size " + std::to_string(c.num_edges) +
          " inconsistent with " + std::to_string(out_arcs.size()) +
          " stored arcs");
    }
    if (directed_) {
      std::vector<Edge> in_arcs;
      CSCE_RETURN_IF_ERROR(
          ValidateClusterDirection(c, /*incoming=*/true, vlabels_, &in_arcs));
      // The incoming CSR must be exactly the transpose of the outgoing.
      for (Edge& e : in_arcs) std::swap(e.src, e.dst);
      std::sort(in_arcs.begin(), in_arcs.end());
      if (in_arcs != out_arcs) {  // out_arcs are emitted sorted
        return Status::Corruption(c.id.ToString() +
                                  ": incoming CSR is not the transpose of "
                                  "the outgoing CSR");
      }
      for (const Edge& e : out_arcs) {
        ++out_count[e.src];
        ++in_count[e.dst];
      }
    } else {
      if (!c.in_cols.empty() || c.in_rows.num_runs() != 0) {
        return Status::Corruption(c.id.ToString() +
                                  ": undirected cluster carries an incoming "
                                  "CSR");
      }
      // Undirected clusters store each edge in both orientations in the
      // single CSR: the arc set must be symmetric.
      std::vector<Edge> reversed(out_arcs);
      for (Edge& e : reversed) std::swap(e.src, e.dst);
      std::sort(reversed.begin(), reversed.end());
      if (reversed != out_arcs) {
        return Status::Corruption(c.id.ToString() +
                                  ": undirected cluster arcs are not "
                                  "symmetric");
      }
      for (const Edge& e : out_arcs) ++out_count[e.src];
    }
    total_edges += c.num_edges;
  }

  if (total_edges != num_edges_) {
    return Status::Corruption(
        "clusters hold " + std::to_string(total_edges) +
        " edges in total, index claims " + std::to_string(num_edges_) +
        " (partition not exhaustive/disjoint)");
  }
  for (VertexId v = 0; v < n; ++v) {
    if (out_count[v] != out_degree_[v]) {
      return Status::Corruption(
          "vertex " + std::to_string(v) + ": clusters hold " +
          std::to_string(out_count[v]) + " outgoing arcs, degree table says " +
          std::to_string(out_degree_[v]));
    }
    if (directed_ && in_count[v] != in_degree_[v]) {
      return Status::Corruption(
          "vertex " + std::to_string(v) + ": clusters hold " +
          std::to_string(in_count[v]) + " incoming arcs, degree table says " +
          std::to_string(in_degree_[v]));
    }
  }
  return Status::OK();
}

size_t Ccsr::CompressedSizeBytes() const {
  size_t total = vlabels_.size() * sizeof(Label);
  for (const CompressedCluster& c : clusters_) total += c.SizeBytes();
  return total;
}

const ClusterView* QueryClusters::Find(const ClusterId& id) const {
  auto it = views_.find(id);
  return it == views_.end() ? nullptr : it->second.get();
}

const std::vector<const ClusterView*>& QueryClusters::Star(Label a,
                                                           Label b) const {
  static const std::vector<const ClusterView*> kEmpty;
  auto it = star_.find(LabelPairKey(a, b));
  return it == star_.end() ? kEmpty : it->second;
}

size_t QueryClusters::DecompressedBytes() const {
  size_t total = 0;
  for (const auto& [id, view] : views_) total += view->SizeBytes();
  return total;
}

std::shared_ptr<const ClusterView> DecompressCluster(
    const CompressedCluster& cluster) {
  // Mapped clusters keep their column arrays zero-copy: the view borrows
  // the mmap'd payload (stable for the MmapCcsr's lifetime) instead of
  // duplicating it on the heap.
  const bool borrow = cluster.mapped();
  CsrIndex fwd =
      CsrIndex::FromCompressed(cluster.out_rows, cluster.out_cols.span(),
                               borrow);
  CsrIndex bwd;
  if (cluster.id.directed) {
    bwd = CsrIndex::FromCompressed(cluster.in_rows, cluster.in_cols.span(),
                                   borrow);
  }
  return std::make_shared<const ClusterView>(cluster.id, cluster.num_edges,
                                             std::move(fwd), std::move(bwd));
}

Status ReadClustersImpl(const Ccsr& gc, const Graph& pattern,
                        MatchVariant variant, ClusterCache* cache,
                        QueryClusters* out) {
  if (pattern.directed() != gc.directed()) {
    return Status::InvalidArgument(
        "pattern and data graph directedness differ");
  }
  // Obtains the view of `cluster` (from the shared cache when given,
  // decompressing locally otherwise) and registers it in the result.
  auto ensure_view = [out, cache](const CompressedCluster& cluster) {
    auto it = out->views_.find(cluster.id);
    if (it != out->views_.end()) return it->second.get();
    std::shared_ptr<const ClusterView> view =
        cache != nullptr ? cache->Get(cluster.id)
                         : DecompressCluster(cluster);
    const ClusterView* ptr = view.get();
    out->views_.emplace(cluster.id, std::move(view));
    return ptr;
  };

  // Lines 2-11: clusters of edges isomorphic to pattern edges.
  Status status = Status::OK();
  pattern.ForEachEdge([&](const Edge& e) {
    ClusterId id = ClusterId::ForPatternEdge(pattern, e);
    const CompressedCluster* c = gc.Find(id);
    if (c != nullptr) ensure_view(*c);
    // Empty cluster: Find() later returns nullptr -> zero embeddings
    // for the whole query; the engine short-circuits.
  });

  // Lines 12-18: negation clusters for vertex-induced matching. We load
  // them for every pattern pair that is not fully connected (for
  // directed patterns a single-direction edge still leaves the reverse
  // direction to negate).
  if (variant == MatchVariant::kVertexInduced) {
    for (VertexId a = 0; a < pattern.NumVertices(); ++a) {
      for (VertexId b = a + 1; b < pattern.NumVertices(); ++b) {
        if (FullyConnected(pattern, a, b)) continue;
        Label la = pattern.VertexLabel(a);
        Label lb = pattern.VertexLabel(b);
        uint64_t key = (static_cast<uint64_t>(std::min(la, lb)) << 32) |
                       std::max(la, lb);
        if (out->star_.count(key) > 0) continue;
        std::vector<const ClusterView*>& views = out->star_[key];
        for (const CompressedCluster* c : gc.StarClusters(la, lb)) {
          views.push_back(ensure_view(*c));
        }
      }
    }
  }
  return status;
}

Status ReadClusters(const Ccsr& gc, const Graph& pattern,
                    MatchVariant variant, QueryClusters* out) {
  return ReadClustersImpl(gc, pattern, variant, /*cache=*/nullptr, out);
}

}  // namespace csce
