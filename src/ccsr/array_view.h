#ifndef CSCE_CCSR_ARRAY_VIEW_H_
#define CSCE_CCSR_ARRAY_VIEW_H_

#include <cstddef>
#include <span>
#include <vector>

namespace csce {

/// Storage for a CCSR array that is either heap-owned (a std::vector,
/// the mutable in-memory representation) or borrowed (a read-only span
/// into an mmap'd v2 artifact — see ccsr_mmap.h). The borrowed form is
/// what makes a built v2 file loadable in O(1): no copy, no fixup, the
/// OS pages bytes in on first touch.
///
/// Invariants:
/// * borrowed() storage is never mutated; every mutating entry point
///   first detaches (EnsureOwned copies the view into the vector), so
///   callers that write through resize()/vec()/assign() are always
///   operating on owned memory.
/// * a borrowed view must outlive this object (the mapping owner —
///   MmapCcsr — guarantees that for every array it hands out).
/// * copies and moves are safe in both modes: the vector owns its heap
///   buffer, and a borrowed span points at storage external to both
///   source and destination.
template <typename T>
class ArrayOrView {
 public:
  ArrayOrView() = default;
  ArrayOrView(const ArrayOrView&) = default;
  ArrayOrView& operator=(const ArrayOrView&) = default;
  ArrayOrView(ArrayOrView&&) noexcept = default;
  ArrayOrView& operator=(ArrayOrView&&) noexcept = default;

  ArrayOrView& operator=(std::vector<T> values) {
    own_ = std::move(values);
    view_ = {};
    borrowed_ = false;
    return *this;
  }

  /// Rebinds to external read-only storage. The previous contents are
  /// dropped; the span must stay valid for this object's lifetime.
  void Borrow(std::span<const T> view) {
    own_.clear();
    own_.shrink_to_fit();
    view_ = view;
    borrowed_ = true;
  }

  /// Detach-on-write: copies a borrowed view into owned storage. No-op
  /// when already owned.
  void EnsureOwned() {
    if (!borrowed_) return;
    own_.assign(view_.begin(), view_.end());
    view_ = {};
    borrowed_ = false;
  }

  bool borrowed() const { return borrowed_; }

  std::span<const T> span() const {
    return borrowed_ ? view_ : std::span<const T>(own_);
  }
  operator std::span<const T>() const { return span(); }  // NOLINT

  size_t size() const { return borrowed_ ? view_.size() : own_.size(); }
  bool empty() const { return size() == 0; }
  const T& operator[](size_t i) const {
    return borrowed_ ? view_[i] : own_[i];
  }
  const T* data() const { return span().data(); }
  auto begin() const { return span().begin(); }
  auto end() const { return span().end(); }

  /// Mutable access. All of these detach from a borrowed view first,
  /// so writes never touch the mapping.
  std::vector<T>& vec() {
    EnsureOwned();
    return own_;
  }
  void resize(size_t n) { vec().resize(n); }
  void assign(size_t n, const T& value) {
    view_ = {};
    borrowed_ = false;
    own_.assign(n, value);
  }
  void clear() {
    view_ = {};
    borrowed_ = false;
    own_.clear();
  }
  T* data() { return vec().data(); }
  /// Unchecked mutable element access: requires owned storage (callers
  /// always resize()/assign() first, which detaches).
  T& operator[](size_t i) { return own_[i]; }

  friend bool operator==(const ArrayOrView& a, const ArrayOrView& b) {
    std::span<const T> sa = a.span();
    std::span<const T> sb = b.span();
    if (sa.size() != sb.size()) return false;
    for (size_t i = 0; i < sa.size(); ++i) {
      if (!(sa[i] == sb[i])) return false;
    }
    return true;
  }

 private:
  std::vector<T> own_;
  std::span<const T> view_;
  bool borrowed_ = false;
};

}  // namespace csce

#endif  // CSCE_CCSR_ARRAY_VIEW_H_
