#ifndef CSCE_CCSR_CCSR_MMAP_H_
#define CSCE_CCSR_CCSR_MMAP_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ccsr/ccsr.h"
#include "ccsr/ccsr_v2_format.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace csce {

/// An out-of-core CCSR: a v2 artifact opened with mmap. Open() costs
/// O(#clusters) — header + section-table checks, a directory CRC, and
/// span binding — independent of the payload size; the OS demand-pages
/// cluster bytes in as queries first touch them.
///
/// The view is exposed as a regular `Ccsr` whose arrays borrow the
/// mapping (see ArrayOrView), so the planner, executors, shard workers
/// and validators run unmodified over either backing. The Ccsr — and
/// everything derived from it that borrows cluster storage — is valid
/// only while this object lives.
///
/// Paging (the CcsrPager implementation):
/// * AdviseClusters(ids) issues madvise(MADV_WILLNEED) over the payload
///   blocks of the named clusters — the matcher calls it with the plan's
///   cluster access order before decompressing anything, so reads
///   overlap with enumeration instead of serializing on page faults.
/// * With a memory cap set, advised blocks enter a FIFO window; once the
///   window exceeds the cap the oldest blocks are dropped with
///   madvise(MADV_DONTNEED). AdviseDone() (end of a query) drops the
///   whole window. Both are pure page-cache hints on a read-only
///   file-backed mapping: a dropped page refaults from the file, so
///   correctness never depends on them.
///
/// Thread-safety: the mapped bytes are immutable and readable from any
/// thread; the advise window is mutex-guarded, so the pager hooks are
/// safe to call concurrently (e.g. from csce_serve query threads).
class MmapCcsr : public CcsrPager {
 public:
  struct Options {
    /// 0 disables eviction: advised blocks stay resident (the kernel
    /// still reclaims under global pressure). Otherwise the advised-
    /// window budget in bytes, rounded up per cluster to whole blocks.
    uint64_t memory_cap_bytes = 0;
    /// Issue MADV_WILLNEED for advised clusters (disable to measure the
    /// pure demand-paging baseline).
    bool prefetch = true;
  };

  /// Opens and verifies a v2 artifact. Cheap structural checks only
  /// (magic/version/size pinning, section table bounds + alignment,
  /// directory order + CRC, per-cluster array bounds); deep semantic
  /// validation is available afterwards via ccsr().Validate(), which
  /// streams the whole payload through the page cache.
  static Status Open(const std::string& path, const Options& options,
                     std::unique_ptr<MmapCcsr>* out);
  static Status Open(const std::string& path,
                     std::unique_ptr<MmapCcsr>* out) {
    return Open(path, Options{}, out);
  }

  ~MmapCcsr() override;

  MmapCcsr(const MmapCcsr&) = delete;
  MmapCcsr& operator=(const MmapCcsr&) = delete;

  /// The mapped index. Valid while this object lives.
  const Ccsr& ccsr() const { return ccsr_; }

  /// Moves the view out (for callers that hold a `Ccsr` by value, e.g.
  /// shard workers). The returned index still borrows the mapping and
  /// keeps this object as its pager — the MmapCcsr must outlive it
  /// unless the caller runs EnsureOwnedStorage() on the result.
  Ccsr Release() { return std::move(ccsr_); }

  const std::string& path() const { return path_; }
  uint64_t file_bytes() const { return size_; }
  uint64_t memory_cap_bytes() const { return options_.memory_cap_bytes; }

  /// Payload bytes currently inside the advised FIFO window (0 when no
  /// cap is set — nothing is tracked then).
  uint64_t AdvisedWindowBytes() const;

  // CcsrPager:
  void AdviseClusters(std::span<const ClusterId> ids) const override;
  void AdviseDone() const override;

 private:
  // One cluster's page-aligned payload block (the unit of madvise).
  struct Block {
    uint64_t offset = 0;
    uint64_t length = 0;
  };

  MmapCcsr() = default;

  Status Init(const std::string& path, const Options& options);
  void Advise(const Block& b, int advice) const;

  // Everything below up to mu_ is written once in Init() (before the
  // object is published) and read-only afterwards, so it needs no lock.
  std::string path_ CSCE_NOT_GUARDED;
  int fd_ CSCE_NOT_GUARDED = -1;
  // Mutable pointer because madvise takes void*; the mapping itself is
  // PROT_READ and never written.
  char* map_ CSCE_NOT_GUARDED = nullptr;
  uint64_t size_ CSCE_NOT_GUARDED = 0;
  Options options_ CSCE_NOT_GUARDED;
  V2Header header_ CSCE_NOT_GUARDED;

  Ccsr ccsr_ CSCE_NOT_GUARDED;
  // Own ClusterId -> block lookup: ccsr_ may be Release()d (moved out),
  // so the pager cannot rely on the Ccsr's cluster index.
  std::vector<Block> blocks_ CSCE_NOT_GUARDED;
  std::unordered_map<ClusterId, size_t, ClusterIdHash> block_index_
      CSCE_NOT_GUARDED;

  mutable Mutex mu_;
  // FIFO of advised block indexes, only maintained under a memory cap.
  mutable std::deque<size_t> advised_ CSCE_GUARDED_BY(mu_);
  mutable std::vector<uint32_t> advised_count_ CSCE_GUARDED_BY(mu_);
  mutable uint64_t advised_bytes_ CSCE_GUARDED_BY(mu_) = 0;
};

}  // namespace csce

#endif  // CSCE_CCSR_CCSR_MMAP_H_
