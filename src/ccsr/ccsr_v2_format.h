#ifndef CSCE_CCSR_CCSR_V2_FORMAT_H_
#define CSCE_CCSR_CCSR_V2_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "ccsr/compressed_row.h"
#include "graph/graph.h"

namespace csce {

/// CCSR binary format v2: a directly mmap-able artifact.
///
/// The v1 stream format interleaves variable-length sections, so loading
/// is a full sequential parse into freshly allocated vectors — O(file)
/// work and O(file) resident memory before the first query runs. v2
/// instead lays every array out at a fixed, aligned offset recorded in a
/// header-page section table, in exactly the in-memory representation
/// (raw Label/uint32_t/RleRun/VertexId records, little-endian), so a
/// loader can mmap the file, bind spans into the mapping, and be
/// query-ready in O(#clusters) without touching the payload bytes — the
/// OS demand-pages clusters in as enumeration first touches them.
///
/// Layout:
///   [0, 4096)            V2Header (see below), zero-padded to the page
///   vlabels section      num_vertices x Label
///   out_degree section   num_vertices x uint32_t
///   in_degree section    num_vertices x uint32_t (directed only; else empty)
///   vlabel_freq section  (max_label + 1) x uint32_t
///   lpi_out section      num_vertices x uint64_t (optional; label-pair
///                        index, outgoing neighbor-label bitmasks)
///   lpi_in section       num_vertices x uint64_t (directed only; else empty)
///   directory section    num_clusters x V2DirEntry, sorted by ClusterId,
///                        CRC-32 recorded in the header
///   payload              per-cluster blocks, each page-aligned:
///                        out_runs | out_cols | in_runs | in_cols,
///                        every array 64-byte aligned
///
/// Alignment rules:
/// * every section offset is page-aligned (kV2PageBytes) so sections can
///   be madvise'd independently;
/// * each cluster's payload block starts on a page boundary — the unit
///   of WILLNEED/DONTNEED paging advice is a whole cluster;
/// * each array within a block is kV2ArrayAlign-aligned, satisfying the
///   alignment requirement of span<const RleRun>/span<const VertexId>
///   over the mapped bytes with headroom for vectorized readers.
///
/// All offsets are absolute file offsets in bytes. `file_bytes` pins the
/// total size, so any truncation — even inside the last cluster — is
/// detected before the mapping is handed out.

inline constexpr uint32_t kV1Magic = 0x43435352;  // "CCSR": v1 stream format
inline constexpr uint32_t kV2Magic = 0x32525343;  // "CSR2" little-endian
inline constexpr uint32_t kV2Version = 1;
inline constexpr uint64_t kV2PageBytes = 4096;
inline constexpr uint64_t kV2ArrayAlign = 64;

/// Rounds `n` up to the next multiple of `align` (a power of two).
inline constexpr uint64_t V2AlignUp(uint64_t n, uint64_t align) {
  return (n + align - 1) & ~(align - 1);
}

/// One section of the file: an absolute byte offset plus length. A
/// length of zero means the section is absent (offset then equals the
/// position it would have had, keeping offsets monotone).
struct V2Section {
  uint64_t offset = 0;
  uint64_t length = 0;
};

/// The fixed-offset file header, stored at offset 0 and padded with
/// zeros to kV2PageBytes. Everything a loader needs for O(1) open —
/// including the label-frequency table location, so no payload scan is
/// ever needed to start planning queries.
struct V2Header {
  uint32_t magic = kV2Magic;
  uint32_t version = kV2Version;
  uint32_t directed = 0;  // 0 or 1
  uint32_t num_vertices = 0;
  uint64_t num_edges = 0;
  uint64_t num_clusters = 0;
  uint64_t file_bytes = 0;      // total file size; pins every section
  uint32_t directory_crc32 = 0;  // CRC-32 of the directory section bytes
  uint32_t reserved = 0;
  V2Section vlabels;
  V2Section out_degree;
  V2Section in_degree;
  V2Section vlabel_freq;
  V2Section directory;
  V2Section payload;
  // Optional label-pair index sections, appended after payload in the
  // header but placed between vlabel_freq and directory in the file.
  // Length 0 = absent: artifacts written before these fields existed
  // are zero-padded past the old 144-byte header, so they decode as
  // absent and the loader rebuilds the masks from the clusters.
  V2Section lpi_out;
  V2Section lpi_in;
};

static_assert(std::is_trivially_copyable_v<V2Header>);
static_assert(sizeof(V2Header) == 176, "v2 header layout is on-disk ABI");
static_assert(sizeof(V2Header) <= kV2PageBytes);

/// Fixed-size directory record for one cluster, sorted by ClusterId
/// (src_label, dst_label, elabel, directed ascending) so lookups can
/// binary-search the mapped directory without building a hash index.
/// Array offsets are absolute; counts are in records (RleRun for runs,
/// VertexId for cols), and rows_len is the uncompressed row-index
/// length (|V| + 1) the CompressedRowIndex needs.
struct V2DirEntry {
  uint32_t src_label = 0;
  uint32_t dst_label = 0;
  uint32_t elabel = 0;
  uint32_t directed = 0;
  uint64_t num_edges = 0;
  uint64_t out_runs_offset = 0;
  uint64_t out_runs_count = 0;
  uint64_t out_rows_len = 0;
  uint64_t out_cols_offset = 0;
  uint64_t out_cols_count = 0;
  uint64_t in_runs_offset = 0;
  uint64_t in_runs_count = 0;
  uint64_t in_rows_len = 0;
  uint64_t in_cols_offset = 0;
  uint64_t in_cols_count = 0;
};

static_assert(std::is_trivially_copyable_v<V2DirEntry>);
static_assert(sizeof(V2DirEntry) == 104, "v2 directory entry is on-disk ABI");

// The payload stores runs/columns as the in-memory record types; these
// mirror the asserts in compressed_row.h so a format change cannot
// silently diverge from the structs spans are bound over.
static_assert(sizeof(RleRun) == 16);
static_assert(sizeof(VertexId) == 4);
static_assert(sizeof(Label) == 4);

}  // namespace csce

#endif  // CSCE_CCSR_CCSR_V2_FORMAT_H_
