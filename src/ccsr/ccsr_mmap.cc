#include "ccsr/ccsr_mmap.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string_view>

#include "util/crc32.h"
#include "util/logging.h"

namespace csce {
namespace {

std::string Errno() { return std::strerror(errno); }

// ---------------------------------------------------------------------
// The bounds-checked primitives (mmap-bounded-reads): the ONLY functions
// in the mmap loader allowed to form pointers into the mapped bytes.
// Each one re-validates its range against the file size before casting,
// so every raw access sits next to its bounds check.

// Binds a typed span over `count` records at absolute file offset
// `offset`. Fails (returns false) when the range escapes the file, the
// byte count overflows, or the offset misses `align`.
template <typename T>
CSCE_MAP_PRIMITIVE bool BindSpan(const char* map, uint64_t file_bytes,
                                 uint64_t offset, uint64_t count,
                                 uint64_t align, std::span<const T>* out) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (count > file_bytes / sizeof(T)) return false;  // overflow-safe
  uint64_t bytes = count * sizeof(T);
  if (offset > file_bytes || bytes > file_bytes - offset) return false;
  if (align != 0 && offset % align != 0) return false;
  *out = std::span<const T>(reinterpret_cast<const T*>(map + offset),
                            static_cast<size_t>(count));
  return true;
}

// Raw byte view (for the directory CRC). Same bounds contract.
CSCE_MAP_PRIMITIVE bool BindBytes(const char* map, uint64_t file_bytes,
                                  uint64_t offset, uint64_t length,
                                  std::string_view* out) {
  if (offset > file_bytes || length > file_bytes - offset) return false;
  *out = std::string_view(map + offset, static_cast<size_t>(length));
  return true;
}

// Copies the fixed-size header out of the mapping (offset 0; the caller
// verified file_bytes >= kV2PageBytes >= sizeof(V2Header)).
CSCE_MAP_PRIMITIVE void ReadHeader(const char* map, V2Header* out) {
  std::memcpy(out, map, sizeof(*out));
}

}  // namespace

Status MmapCcsr::Open(const std::string& path, const Options& options,
                      std::unique_ptr<MmapCcsr>* out) {
  std::unique_ptr<MmapCcsr> m(new MmapCcsr());
  CSCE_RETURN_IF_ERROR(m->Init(path, options));
  *out = std::move(m);
  return Status::OK();
}

MmapCcsr::~MmapCcsr() {
  if (map_ != nullptr) ::munmap(map_, static_cast<size_t>(size_));
  if (fd_ >= 0) ::close(fd_);
}

Status MmapCcsr::Init(const std::string& path, const Options& options) {
  path_ = path;
  options_ = options;

  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) {
    return Status::IOError("cannot open " + path + ": " + Errno());
  }
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IOError("fstat " + path + ": " + Errno());
  }
  size_ = static_cast<uint64_t>(st.st_size);
  if (size_ < kV2PageBytes) {
    return Status::Corruption(path + ": " + std::to_string(size_) +
                              " bytes, smaller than the v2 header page");
  }
  void* map = ::mmap(nullptr, static_cast<size_t>(size_), PROT_READ,
                     MAP_SHARED, fd_, 0);
  if (map == MAP_FAILED) {
    map_ = nullptr;
    return Status::IOError("mmap " + path + ": " + Errno());
  }
  map_ = static_cast<char*>(map);

  ReadHeader(map_, &header_);
  if (header_.magic == kV1Magic) {
    return Status::Corruption(
        path + ": CCSR v1 stream artifact (magic \"CCSR\"); the mmap "
        "loader requires format v2 (magic \"CSR2\") — rebuild with "
        "csce_build --format=v2 or load without --mmap");
  }
  if (header_.magic != kV2Magic) {
    return Status::Corruption(path + ": bad magic (not a CCSR artifact)");
  }
  if (header_.version != kV2Version) {
    return Status::Corruption(
        path + ": unsupported CCSR v2 version " +
        std::to_string(header_.version) + ", expected " +
        std::to_string(kV2Version));
  }
  if (header_.file_bytes != size_) {
    return Status::Corruption(
        path + ": file is " + std::to_string(size_) +
        " bytes but the header claims " + std::to_string(header_.file_bytes) +
        " (truncated or padded artifact)");
  }
  if (header_.directed > 1) {
    return Status::Corruption(path + ": directed flag is neither 0 nor 1");
  }
  const uint64_t nv = header_.num_vertices;
  const bool directed = header_.directed != 0;

  // Section table: every present section page-aligned and inside the
  // file, with the length its record count dictates.
  auto check_section = [&](const V2Section& s, const char* name,
                           uint64_t expect_len) -> Status {
    if (s.length != expect_len) {
      return Status::Corruption(
          path + ": section " + name + " is " + std::to_string(s.length) +
          " bytes, expected " + std::to_string(expect_len));
    }
    if (s.length == 0) return Status::OK();
    if (s.offset % kV2PageBytes != 0) {
      return Status::Corruption(path + ": section " + name +
                                " offset not page-aligned");
    }
    if (s.offset > size_ || s.length > size_ - s.offset) {
      return Status::Corruption(path + ": section " + name +
                                " escapes the file");
    }
    return Status::OK();
  };
  CSCE_RETURN_IF_ERROR(
      check_section(header_.vlabels, "vlabels", nv * sizeof(Label)));
  CSCE_RETURN_IF_ERROR(
      check_section(header_.out_degree, "out_degree", nv * sizeof(uint32_t)));
  CSCE_RETURN_IF_ERROR(check_section(
      header_.in_degree, "in_degree", directed ? nv * sizeof(uint32_t) : 0));
  if (header_.vlabel_freq.length % sizeof(uint32_t) != 0) {
    return Status::Corruption(path +
                              ": vlabel_freq section not a whole number of "
                              "records");
  }
  CSCE_RETURN_IF_ERROR(check_section(header_.vlabel_freq, "vlabel_freq",
                                     header_.vlabel_freq.length));
  CSCE_RETURN_IF_ERROR(
      check_section(header_.directory, "directory",
                    header_.num_clusters * sizeof(V2DirEntry)));
  // Label-pair index sections are optional (length 0 in artifacts
  // written before they existed — the zero-padded header decodes them
  // as absent); when present they must be exactly one mask per vertex.
  const bool has_lpi = header_.lpi_out.length != 0;
  CSCE_RETURN_IF_ERROR(check_section(
      header_.lpi_out, "lpi_out", has_lpi ? nv * sizeof(uint64_t) : 0));
  CSCE_RETURN_IF_ERROR(check_section(
      header_.lpi_in, "lpi_in",
      has_lpi && directed ? nv * sizeof(uint64_t) : 0));

  // Directory checksum: the directory is the trust root for every raw
  // payload offset, so it gets an integrity check of its own before any
  // entry is interpreted.
  std::string_view dir_bytes;
  if (!BindBytes(map_, size_, header_.directory.offset,
                 header_.directory.length, &dir_bytes)) {
    return Status::Corruption(path + ": directory escapes the file");
  }
  if (util::Crc32(dir_bytes) != header_.directory_crc32) {
    return Status::Corruption(path + ": cluster directory checksum mismatch");
  }

  // Bind the vertex-level tables.
  std::span<const Label> vlabels;
  std::span<const uint32_t> out_degree;
  std::span<const uint32_t> in_degree;
  std::span<const uint32_t> vlabel_freq;
  std::span<const uint64_t> lpi_out;
  std::span<const uint64_t> lpi_in;
  std::span<const V2DirEntry> dir;
  if (!BindSpan(map_, size_, header_.vlabels.offset, nv, kV2PageBytes,
                &vlabels) ||
      !BindSpan(map_, size_, header_.out_degree.offset, nv, kV2PageBytes,
                &out_degree) ||
      !BindSpan(map_, size_, header_.in_degree.offset, directed ? nv : 0,
                kV2PageBytes, &in_degree) ||
      !BindSpan(map_, size_, header_.vlabel_freq.offset,
                header_.vlabel_freq.length / sizeof(uint32_t), kV2PageBytes,
                &vlabel_freq) ||
      !BindSpan(map_, size_, header_.lpi_out.offset,
                header_.lpi_out.length / sizeof(uint64_t), kV2PageBytes,
                &lpi_out) ||
      !BindSpan(map_, size_, header_.lpi_in.offset,
                header_.lpi_in.length / sizeof(uint64_t), kV2PageBytes,
                &lpi_in) ||
      !BindSpan(map_, size_, header_.directory.offset, header_.num_clusters,
                kV2PageBytes, &dir)) {
    return Status::Corruption(path + ": section table binds out of range");
  }

  ccsr_.directed_ = directed;
  ccsr_.num_edges_ = header_.num_edges;
  ccsr_.vlabels_.Borrow(vlabels);
  ccsr_.out_degree_.Borrow(out_degree);
  ccsr_.in_degree_.Borrow(in_degree);
  ccsr_.vlabel_freq_.Borrow(vlabel_freq);
  if (has_lpi) {
    ccsr_.lpi_out_.Borrow(lpi_out);
    ccsr_.lpi_in_.Borrow(lpi_in);
  }

  // Directory entries: strictly sorted by ClusterId; every array range
  // bounds-checked into the payload section before a span is bound.
  const V2Section& payload = header_.payload;
  if (payload.length > 0) {
    CSCE_RETURN_IF_ERROR(check_section(payload, "payload", payload.length));
  }
  auto in_payload = [&](uint64_t offset, uint64_t count,
                        uint64_t elem) -> bool {
    if (count == 0) return true;
    uint64_t bytes = count * elem;  // BindSpan re-checks overflow
    return offset >= payload.offset && offset <= payload.offset + payload.length &&
           bytes <= payload.offset + payload.length - offset;
  };
  ccsr_.clusters_.clear();
  ccsr_.clusters_.reserve(dir.size());
  blocks_.clear();
  blocks_.reserve(dir.size());
  block_index_.clear();
  ClusterId prev_id;
  for (size_t i = 0; i < dir.size(); ++i) {
    const V2DirEntry& e = dir[i];
    ClusterId id{e.src_label, e.dst_label, e.elabel, e.directed != 0};
    if (i > 0 && !(prev_id < id)) {
      return Status::Corruption(path + ": directory not sorted strictly by "
                                "cluster id at entry " + std::to_string(i));
    }
    prev_id = id;
    if (id.directed != directed) {
      return Status::Corruption(path + ": cluster " + id.ToString() +
                                " directedness differs from the header");
    }
    const bool has_in = id.directed;
    if (e.out_rows_len != nv + 1 ||
        (has_in ? e.in_rows_len != nv + 1
                : (e.in_rows_len | e.in_runs_count | e.in_cols_count) != 0)) {
      return Status::Corruption(path + ": cluster " + id.ToString() +
                                " row-index length inconsistent with the "
                                "vertex count");
    }
    if (!in_payload(e.out_runs_offset, e.out_runs_count, sizeof(RleRun)) ||
        !in_payload(e.out_cols_offset, e.out_cols_count, sizeof(VertexId)) ||
        !in_payload(e.in_runs_offset, e.in_runs_count, sizeof(RleRun)) ||
        !in_payload(e.in_cols_offset, e.in_cols_count, sizeof(VertexId))) {
      return Status::Corruption(path + ": cluster " + id.ToString() +
                                " arrays escape the payload section");
    }
    std::span<const RleRun> out_runs;
    std::span<const VertexId> out_cols;
    std::span<const RleRun> in_runs;
    std::span<const VertexId> in_cols;
    if (!BindSpan(map_, size_, e.out_runs_offset, e.out_runs_count,
                  kV2ArrayAlign, &out_runs) ||
        !BindSpan(map_, size_, e.out_cols_offset, e.out_cols_count,
                  kV2ArrayAlign, &out_cols) ||
        !BindSpan(map_, size_, e.in_runs_offset, e.in_runs_count,
                  kV2ArrayAlign, &in_runs) ||
        !BindSpan(map_, size_, e.in_cols_offset, e.in_cols_count,
                  kV2ArrayAlign, &in_cols)) {
      return Status::Corruption(path + ": cluster " + id.ToString() +
                                " arrays out of range or misaligned");
    }

    CompressedCluster c;
    c.id = id;
    c.num_edges = e.num_edges;
    c.out_rows.BorrowRuns(out_runs, e.out_rows_len);
    c.out_cols.Borrow(out_cols);
    if (has_in) {
      c.in_rows.BorrowRuns(in_runs, e.in_rows_len);
      c.in_cols.Borrow(in_cols);
    }
    ccsr_.clusters_.push_back(std::move(c));

    // The cluster's page-aligned payload block — the unit of paging
    // advice. Derived from the entry's own offsets so it stays correct
    // even if a future writer reorders arrays within the block.
    uint64_t lo = UINT64_MAX;
    uint64_t hi = 0;
    auto widen = [&](uint64_t offset, uint64_t count, uint64_t elem) {
      if (count == 0) return;
      lo = std::min(lo, offset);
      hi = std::max(hi, offset + count * elem);
    };
    widen(e.out_runs_offset, e.out_runs_count, sizeof(RleRun));
    widen(e.out_cols_offset, e.out_cols_count, sizeof(VertexId));
    widen(e.in_runs_offset, e.in_runs_count, sizeof(RleRun));
    widen(e.in_cols_offset, e.in_cols_count, sizeof(VertexId));
    Block b;
    if (lo < hi) {
      b.offset = lo - lo % kV2PageBytes;
      b.length = std::min(V2AlignUp(hi, kV2PageBytes), size_) - b.offset;
    }
    block_index_.emplace(id, blocks_.size());
    blocks_.push_back(b);
  }
  ccsr_.RebuildIndexes();
  // Legacy artifact without the persisted label-pair index: derive it
  // from the clusters. This touches every cluster's runs once, which
  // costs demand-paging locality only for pre-LPI files — rewriting the
  // artifact restores O(1) open.
  if (!has_lpi) ccsr_.BuildLabelMasks();
  ccsr_.pager_ = this;
  {
    MutexLock lock(mu_);
    advised_count_.assign(blocks_.size(), 0);
  }
  return Status::OK();
}

// The one function that turns a block descriptor into a raw mapped
// range (mmap-bounded-reads): offsets/lengths were bounds-checked
// against the file when the block was built in Init.
CSCE_MAP_PRIMITIVE void MmapCcsr::Advise(const Block& b, int advice) const {
  if (b.length == 0 || map_ == nullptr) return;
  // Paging advice is best-effort by contract; failure (e.g. under
  // memory pressure) only costs performance.
  (void)::madvise(map_ + b.offset, static_cast<size_t>(b.length), advice);
}

void MmapCcsr::AdviseClusters(std::span<const ClusterId> ids) const {
  for (const ClusterId& id : ids) {
    auto it = block_index_.find(id);
    if (it == block_index_.end()) continue;
    const size_t slot = it->second;
    const Block& b = blocks_[slot];
    if (options_.prefetch) Advise(b, MADV_WILLNEED);
    if (options_.memory_cap_bytes == 0) continue;
    MutexLock lock(mu_);
    if (advised_count_[slot]++ == 0) advised_bytes_ += b.length;
    advised_.push_back(slot);
    // FIFO eviction behind the frontier: drop the oldest advised blocks
    // until the window fits the cap. A block stays resident while any
    // in-flight query still has it in its window (the refcount).
    while (advised_bytes_ > options_.memory_cap_bytes && !advised_.empty()) {
      size_t oldest = advised_.front();
      advised_.pop_front();
      if (--advised_count_[oldest] == 0) {
        advised_bytes_ -= blocks_[oldest].length;
        Advise(blocks_[oldest], MADV_DONTNEED);
      }
    }
  }
}

void MmapCcsr::AdviseDone() const {
  if (options_.memory_cap_bytes == 0) return;
  MutexLock lock(mu_);
  while (!advised_.empty()) {
    size_t slot = advised_.front();
    advised_.pop_front();
    if (--advised_count_[slot] == 0) {
      advised_bytes_ -= blocks_[slot].length;
      Advise(blocks_[slot], MADV_DONTNEED);
    }
  }
}

uint64_t MmapCcsr::AdvisedWindowBytes() const {
  MutexLock lock(mu_);
  return advised_bytes_;
}

}  // namespace csce
