#ifndef CSCE_CCSR_CLUSTER_CACHE_H_
#define CSCE_CCSR_CLUSTER_CACHE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "ccsr/ccsr.h"

namespace csce {

/// Cross-query cache of decompressed cluster views. The paper's
/// Finding 5 charges every query the decompression of its clusters;
/// its conclusion lists reducing that overhead as future work. A
/// session serving many queries against one CCSR can instead share
/// views: the first query pays the decompression, later queries
/// touching the same clusters reuse them.
///
/// Not thread-safe (CSCE is a single-thread engine, like the paper's).
class ClusterCache {
 public:
  /// `gc` must outlive the cache and every QueryClusters served by it.
  explicit ClusterCache(const Ccsr* gc) : gc_(gc) {}

  /// The decompressed view of `id`, decompressing on first use;
  /// nullptr when the cluster is empty/absent.
  std::shared_ptr<const ClusterView> Get(const ClusterId& id);

  size_t CachedViews() const { return views_.size(); }
  size_t CachedBytes() const;
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  /// Drops all cached views (e.g. after Ccsr::InsertEdges /
  /// RemoveEdges invalidated the underlying clusters).
  void Clear() { views_.clear(); }

  const Ccsr& ccsr() const { return *gc_; }

 private:
  const Ccsr* gc_;
  std::unordered_map<ClusterId, std::shared_ptr<const ClusterView>,
                     ClusterIdHash>
      views_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// Algorithm 1 backed by the shared cache: like ReadClusters but views
/// already decompressed by earlier queries are reused. The returned
/// QueryClusters co-owns its views, so it stays valid even if the cache
/// is cleared afterwards.
Status ReadClustersCached(ClusterCache& cache, const Graph& pattern,
                          MatchVariant variant, QueryClusters* out);

/// Decompresses one cluster into a standalone view.
std::shared_ptr<const ClusterView> DecompressCluster(
    const CompressedCluster& cluster);

}  // namespace csce

#endif  // CSCE_CCSR_CLUSTER_CACHE_H_
