#ifndef CSCE_CCSR_CLUSTER_CACHE_H_
#define CSCE_CCSR_CLUSTER_CACHE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "ccsr/ccsr.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace csce {

/// Cross-query cache of decompressed cluster views. The paper's
/// Finding 5 charges every query the decompression of its clusters;
/// its conclusion lists reducing that overhead as future work. A
/// session serving many queries against one CCSR can instead share
/// views: the first query pays the decompression, later queries
/// touching the same clusters reuse them.
///
/// Thread-safety: Get/CachedViews/CachedBytes/hits/misses/Clear are
/// safe to call concurrently (one mutex guards the view map), so many
/// in-flight queries of a QueryRuntime session may share one cache.
/// The ClusterViews handed out are immutable and individually
/// shared_ptr-owned, hence safe to read from any number of threads and
/// to keep across a concurrent Clear(). The underlying Ccsr must not
/// be mutated (InsertEdges/RemoveEdges) while queries are in flight —
/// the index itself is not synchronized, only this cache is.
class ClusterCache {
 public:
  /// `gc` must outlive the cache and every QueryClusters served by it.
  explicit ClusterCache(const Ccsr* gc) : gc_(gc) {}

  /// The decompressed view of `id`, decompressing on first use;
  /// nullptr when the cluster is empty/absent.
  std::shared_ptr<const ClusterView> Get(const ClusterId& id)
      CSCE_EXCLUDES(mu_);

  size_t CachedViews() const CSCE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return views_.size();
  }
  size_t CachedBytes() const CSCE_EXCLUDES(mu_);
  uint64_t hits() const CSCE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return hits_;
  }
  uint64_t misses() const CSCE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return misses_;
  }

  /// Drops all cached views (e.g. after Ccsr::InsertEdges /
  /// RemoveEdges invalidated the underlying clusters). Views still
  /// co-owned by live QueryClusters stay valid.
  void Clear() CSCE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    views_.clear();
  }

  const Ccsr& ccsr() const { return *gc_; }

 private:
  /// Const after construction; the Ccsr's own immutability-during-
  /// queries contract is documented above.
  const Ccsr* gc_ CSCE_NOT_GUARDED;
  mutable Mutex mu_;
  std::unordered_map<ClusterId, std::shared_ptr<const ClusterView>,
                     ClusterIdHash>
      views_ CSCE_GUARDED_BY(mu_);
  uint64_t hits_ CSCE_GUARDED_BY(mu_) = 0;
  uint64_t misses_ CSCE_GUARDED_BY(mu_) = 0;
};

/// Algorithm 1 backed by the shared cache: like ReadClusters but views
/// already decompressed by earlier queries are reused. The returned
/// QueryClusters co-owns its views, so it stays valid even if the cache
/// is cleared afterwards.
Status ReadClustersCached(ClusterCache& cache, const Graph& pattern,
                          MatchVariant variant, QueryClusters* out);

/// Decompresses one cluster into a standalone view.
std::shared_ptr<const ClusterView> DecompressCluster(
    const CompressedCluster& cluster);

}  // namespace csce

#endif  // CSCE_CCSR_CLUSTER_CACHE_H_
