#ifndef CSCE_CCSR_CSR_H_
#define CSCE_CCSR_CSR_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "ccsr/array_view.h"
#include "ccsr/compressed_row.h"
#include "graph/graph.h"

namespace csce {

/// A query-ready, one-direction CSR over the data-graph vertex universe,
/// reconstructed from a CompressedRowIndex at read time (paper: "when
/// reading clusters, we decompress and construct standard CSRs").
///
/// Two physical layouts behind one interface:
/// * dense  — the standard row-index array of length |V|+1; O(1) lookup.
///   Used when the cluster touches a large fraction of vertices.
/// * sparse — sorted list of non-empty vertices plus their ranges;
///   O(log k) lookup. Used for small clusters so that reading a query's
///   clusters never costs O(|V|) memory per cluster (this is the
///   practical fix for the row-array blowup the paper's RLE targets).
class CsrIndex {
 public:
  CsrIndex() = default;

  /// Decompresses `rows` + takes the column array. `num_vertices` is the
  /// data graph vertex count (rows.uncompressed_length() - 1).
  static CsrIndex FromCompressed(const CompressedRowIndex& rows,
                                 std::vector<VertexId> cols);

  /// Same, over a column array the index does not own. With
  /// borrow=false the columns are copied; with borrow=true the index
  /// aliases `cols` (an mmap'd v2 cluster payload), which must outlive
  /// it — the zero-copy path for demand-paged clusters.
  static CsrIndex FromCompressed(const CompressedRowIndex& rows,
                                 std::span<const VertexId> cols, bool borrow);

  /// Builds directly from sorted arcs (used by tests and by the CCSR
  /// builder before compression).
  static CsrIndex FromArcs(uint32_t num_vertices,
                           std::span<const Edge> sorted_arcs);

  /// Neighbors of v in this cluster direction (sorted, unique).
  std::span<const VertexId> Neighbors(VertexId v) const {
    if (dense_) {
      if (v + 1 >= dense_rows_.size()) return {};
      return {cols_.data() + dense_rows_[v], cols_.data() + dense_rows_[v + 1]};
    }
    // Binary search in the sparse vertex list.
    auto it = std::lower_bound(sparse_vertices_.begin(),
                               sparse_vertices_.end(), v);
    if (it == sparse_vertices_.end() || *it != v) return {};
    size_t idx = static_cast<size_t>(it - sparse_vertices_.begin());
    return {cols_.data() + sparse_rows_[idx],
            cols_.data() + sparse_rows_[idx + 1]};
  }

  /// True if arc v -> w is present (binary search within v's range).
  bool HasArc(VertexId v, VertexId w) const {
    auto nbrs = Neighbors(v);
    return std::binary_search(nbrs.begin(), nbrs.end(), w);
  }

  uint64_t NumArcs() const { return cols_.size(); }
  bool dense() const { return dense_; }

  /// The distinct vertices with at least one arc, sorted. Copying
  /// convenience used by tests and diagnostics; hot paths use
  /// NonEmptySpan.
  std::vector<VertexId> NonEmptyVertices() const;

  /// Same set without the copy: a view into index-owned storage,
  /// precomputed at decompress time (the sparse layout's vertex list,
  /// or a dedicated array for dense clusters). Valid while the index
  /// lives; safe to read from any number of threads.
  std::span<const VertexId> NonEmptySpan() const {
    return dense_ ? std::span<const VertexId>(dense_non_empty_)
                  : std::span<const VertexId>(sparse_vertices_);
  }

  /// Length of the longest neighbor row, precomputed at decompress
  /// time. An upper bound on any intersection result that includes one
  /// of this index's rows — the executor sizes its zero-allocation
  /// scratch buffers from it.
  size_t MaxRowLength() const { return max_row_length_; }

  /// Approximate working-set footprint in bytes (borrowed columns count
  /// too: the pages are resident while a query walks them).
  size_t SizeBytes() const {
    return dense_rows_.size() * sizeof(uint64_t) +
           sparse_vertices_.size() * sizeof(VertexId) +
           sparse_rows_.size() * sizeof(uint64_t) +
           dense_non_empty_.size() * sizeof(VertexId) +
           cols_.size() * sizeof(VertexId);
  }

 private:
  // Shared tail of the FromCompressed overloads: `out` arrives with
  // cols_ already bound (owned or borrowed).
  static CsrIndex FromCompressedRows(const CompressedRowIndex& rows,
                                     CsrIndex out);

  void ComputeRowStats();

  bool dense_ = true;
  std::vector<uint64_t> dense_rows_;       // dense layout: |V|+1 offsets
  std::vector<VertexId> sparse_vertices_;  // sparse layout: sorted vertices
  std::vector<uint64_t> sparse_rows_;      // sparse layout: k+1 offsets
  std::vector<VertexId> dense_non_empty_;  // dense layout: sorted vertices
  ArrayOrView<VertexId> cols_;  // owned, or a view into an mmap'd cluster
  size_t max_row_length_ = 0;
};

}  // namespace csce

#endif  // CSCE_CCSR_CSR_H_
