#ifndef CSCE_CCSR_CLUSTER_ID_H_
#define CSCE_CCSR_CLUSTER_ID_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "graph/graph.h"

namespace csce {

/// Identifier of an edge-isomorphism cluster (paper Section IV). Two
/// edges land in the same cluster iff they are isomorphic as single-edge
/// graphs: same endpoint vertex labels, same edge label, same
/// directedness.
///
/// Directed clusters orient labels in the outgoing direction:
/// (src_label, dst_label, elabel). Undirected clusters use the sorted
/// label pair (the paper's "(A,B,·),(B,A,·)" canonicalized to A <= B).
struct ClusterId {
  Label src_label = 0;
  Label dst_label = 0;
  Label elabel = 0;
  bool directed = false;

  static ClusterId Directed(Label src, Label dst, Label el) {
    return ClusterId{src, dst, el, true};
  }

  static ClusterId Undirected(Label a, Label b, Label el) {
    if (a > b) std::swap(a, b);
    return ClusterId{a, b, el, false};
  }

  /// Cluster for a pattern edge (u_x -> u_y) in a pattern whose
  /// directedness matches the data graph's.
  static ClusterId ForPatternEdge(const Graph& pattern, const Edge& e) {
    Label lx = pattern.VertexLabel(e.src);
    Label ly = pattern.VertexLabel(e.dst);
    return pattern.directed() ? Directed(lx, ly, e.elabel)
                              : Undirected(lx, ly, e.elabel);
  }

  friend bool operator==(const ClusterId&, const ClusterId&) = default;
  friend auto operator<=>(const ClusterId&, const ClusterId&) = default;

  /// e.g. "(A=1,B=2,NULL)-cluster" style debug string.
  std::string ToString() const;
};

struct ClusterIdHash {
  size_t operator()(const ClusterId& id) const {
    uint64_t h = id.src_label;
    h = h * 0x100000001B3ull ^ id.dst_label;
    h = h * 0x100000001B3ull ^ id.elabel;
    h = h * 0x100000001B3ull ^ (id.directed ? 1 : 0);
    return std::hash<uint64_t>{}(h);
  }
};

}  // namespace csce

#endif  // CSCE_CCSR_CLUSTER_ID_H_
