#ifndef CSCE_CCSR_CCSR_H_
#define CSCE_CCSR_CCSR_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ccsr/array_view.h"
#include "ccsr/cluster_id.h"
#include "ccsr/compressed_row.h"
#include "ccsr/csr.h"
#include "graph/graph.h"
#include "graph/variant.h"
#include "util/status.h"

namespace csce {

/// One edge-isomorphism cluster in compressed (at-rest) form. Directed
/// clusters carry two CSRs — outgoing (src -> dst) and incoming
/// (dst -> src) — so both neighbor directions are O(1)/O(log k) at query
/// time; undirected clusters store each edge in both orientations in a
/// single CSR (paper Section IV).
///
/// Runs and columns live in ArrayOrView storage: heap vectors for an
/// in-memory (mutable) index, read-only spans into the mapping for a
/// CCSR v2 artifact opened through MmapCcsr.
struct CompressedCluster {
  ClusterId id;
  uint64_t num_edges = 0;  // cluster size == |I_C| of one CSR
  CompressedRowIndex out_rows;
  ArrayOrView<VertexId> out_cols;
  CompressedRowIndex in_rows;          // directed clusters only
  ArrayOrView<VertexId> in_cols;       // directed clusters only

  /// True when this cluster's arrays alias an mmap'd artifact (stable
  /// storage a ClusterView may borrow instead of copying).
  bool mapped() const { return out_cols.borrowed(); }

  size_t SizeBytes() const {
    return out_rows.SizeBytes() + out_cols.size() * sizeof(VertexId) +
           in_rows.SizeBytes() + in_cols.size() * sizeof(VertexId);
  }
};

/// Paging hooks behind a mapped Ccsr (implemented by MmapCcsr). The
/// matcher calls these with the plan's cluster access order so the
/// kernel can prefetch (madvise WILLNEED) the clusters enumeration is
/// about to touch and, under a memory cap, drop (madvise DONTNEED)
/// clusters behind the frontier. All methods must be thread-safe; for
/// an in-memory Ccsr there is no pager and the hooks are no-ops.
class CcsrPager {
 public:
  virtual ~CcsrPager() = default;
  virtual void AdviseClusters(std::span<const ClusterId> ids) const = 0;
  virtual void AdviseDone() const = 0;
};

/// A decompressed, query-ready cluster.
class ClusterView {
 public:
  ClusterView(ClusterId id, uint64_t num_edges, CsrIndex out, CsrIndex in)
      : id_(id), num_edges_(num_edges), out_(std::move(out)),
        in_(std::move(in)) {}

  const ClusterId& id() const { return id_; }
  uint64_t NumEdges() const { return num_edges_; }

  /// Outgoing cluster-neighbors of v (undirected: all cluster-neighbors).
  std::span<const VertexId> Out(VertexId v) const { return out_.Neighbors(v); }
  /// Incoming cluster-neighbors of v (undirected: all cluster-neighbors).
  std::span<const VertexId> In(VertexId v) const {
    return id_.directed ? in_.Neighbors(v) : out_.Neighbors(v);
  }

  /// Arc a -> b present? (undirected: edge {a,b} present?)
  bool HasArc(VertexId a, VertexId b) const { return out_.HasArc(a, b); }

  /// Distinct arc sources (undirected: all cluster vertices), sorted.
  /// A view into precomputed index storage — no copy; valid while the
  /// view lives and safe to read concurrently.
  std::span<const VertexId> Sources() const { return out_.NonEmptySpan(); }
  /// Distinct arc targets, sorted (same lifetime contract).
  std::span<const VertexId> Targets() const {
    return id_.directed ? in_.NonEmptySpan() : out_.NonEmptySpan();
  }

  /// Longest Out(v) / In(v) row — upper bounds for intersection results
  /// that include a row of this cluster (executor scratch sizing).
  size_t MaxOutRowLength() const { return out_.MaxRowLength(); }
  size_t MaxInRowLength() const {
    return id_.directed ? in_.MaxRowLength() : out_.MaxRowLength();
  }

  size_t SizeBytes() const { return out_.SizeBytes() + in_.SizeBytes(); }

 private:
  ClusterId id_;
  uint64_t num_edges_;
  CsrIndex out_;
  CsrIndex in_;  // empty for undirected clusters
};

/// G_C: the complete clustered-CSR representation of a data graph,
/// built offline. Replaces the raw graph (the paper drops G after
/// clustering), so it also carries the vertex labels.
class Ccsr {
 public:
  Ccsr() = default;

  /// Clusters all edges of `g` (offline stage, O(|E| log |E|)).
  static Ccsr Build(const Graph& g);

  bool directed() const { return directed_; }
  uint32_t NumVertices() const {
    return static_cast<uint32_t>(vlabels_.size());
  }
  uint64_t NumEdges() const { return num_edges_; }
  Label VertexLabel(VertexId v) const { return vlabels_.span()[v]; }
  std::span<const Label> vertex_labels() const { return vlabels_.span(); }
  uint32_t LabelFrequency(Label l) const {
    std::span<const uint32_t> freq = vlabel_freq_.span();
    return l < freq.size() ? freq[l] : 0;
  }

  /// Per-vertex degrees of the original graph, kept for candidate
  /// degree filtering (for undirected graphs in == out == degree).
  uint32_t OutDegree(VertexId v) const { return out_degree_.span()[v]; }
  uint32_t InDegree(VertexId v) const {
    return directed_ ? in_degree_.span()[v] : out_degree_.span()[v];
  }

  /// Label-pair index (prune pass "lpi"): per-vertex bitmask of the
  /// vertex labels reachable over one outgoing (resp. incoming) edge,
  /// folded modulo 64 (`1 << (label & 63)`), so the filter is
  /// conservative for label alphabets wider than 64. For undirected
  /// graphs in == out. Derived from the clusters, rebuilt on every
  /// mutation, persisted as optional CCSR v2 sections.
  uint64_t OutLabelMask(VertexId v) const { return lpi_out_.span()[v]; }
  uint64_t InLabelMask(VertexId v) const {
    return directed_ ? lpi_in_.span()[v] : lpi_out_.span()[v];
  }
  static uint64_t LabelBit(Label l) { return uint64_t{1} << (l & 63); }

  /// True when this index is a view over an mmap'd v2 artifact. Mapped
  /// indexes are immutable (InsertEdges/RemoveEdges refuse) and valid
  /// only while the owning MmapCcsr lives.
  bool mapped() const { return pager_ != nullptr; }

  /// Plan-driven paging hints; no-ops for in-memory indexes. The
  /// matcher passes the clusters the matching order will touch, in
  /// order, before reading them, and calls AdviseQueryDone once
  /// enumeration finishes (under a memory cap this drops the advised
  /// window). Correctness never depends on these: madvise only moves
  /// page-cache residency.
  void AdviseQueryClusters(std::span<const ClusterId> ids) const {
    if (pager_ != nullptr) pager_->AdviseClusters(ids);
  }
  void AdviseQueryDone() const {
    if (pager_ != nullptr) pager_->AdviseDone();
  }

  /// Deep-copies any borrowed (mmap-backed) storage into owned heap
  /// memory and detaches from the pager, making the index independent
  /// of the mapping's lifetime. No-op for in-memory indexes.
  void EnsureOwnedStorage();

  size_t NumClusters() const { return clusters_.size(); }
  const std::vector<CompressedCluster>& clusters() const { return clusters_; }

  /// The cluster with this identifier, or nullptr (== empty cluster).
  const CompressedCluster* Find(const ClusterId& id) const;

  /// Size (edge count) of a cluster; 0 if the cluster is empty/absent.
  /// Used by the planner's tie-breaking without decompressing anything.
  uint64_t ClusterSize(const ClusterId& id) const {
    const CompressedCluster* c = Find(id);
    return c == nullptr ? 0 : c->num_edges;
  }

  /// The paper's "(x,y)*-clusters": every cluster connecting vertex
  /// labels {a,b}, regardless of edge label or direction.
  std::vector<const CompressedCluster*> StarClusters(Label a, Label b) const;

  /// Total compressed footprint in bytes.
  size_t CompressedSizeBytes() const;

  /// Online maintenance: inserts edges into the index, rebuilding only
  /// the affected clusters. Endpoints must be existing vertices; edge
  /// direction follows the graph's. Idempotent: already-present edges
  /// are ignored. Degrees and statistics are kept consistent.
  Status InsertEdges(const std::vector<Edge>& edges);

  /// Removes edges; every edge must be present (NotFound otherwise,
  /// with the index unchanged). Emptied clusters are dropped.
  Status RemoveEdges(const std::vector<Edge>& edges);

  /// Deep structural validation (O(|E| log |E|)): per-cluster RLE row
  /// sanity and row/column consistency, sorted-unique adjacency,
  /// endpoint-label homogeneity against the cluster identifier,
  /// incoming CSR == transpose of outgoing (directed) / symmetry
  /// (undirected), and globally that the clusters partition the data
  /// edges exhaustively and disjointly (edge totals and per-vertex
  /// degree sums match the stored degree tables), that the statistics
  /// tables are consistent, and that the lookup indexes cover every
  /// cluster. Used by the corruption tests, `--self-check`, and the
  /// CCSR artifact loader.
  Status Validate() const;

 private:
  friend Status LoadCcsrFromStream(std::istream&, Ccsr*);
  friend class MmapCcsr;

  void RebuildIndexes();
  /// Recomputes lpi_out_/lpi_in_ from the clusters (O(total RLE runs)).
  /// Called wherever cluster contents change; the mmap loader instead
  /// borrows the artifact's persisted sections when present.
  void BuildLabelMasks();

  bool directed_ = false;
  uint64_t num_edges_ = 0;
  ArrayOrView<Label> vlabels_;
  ArrayOrView<uint32_t> vlabel_freq_;
  ArrayOrView<uint32_t> out_degree_;
  ArrayOrView<uint32_t> in_degree_;  // empty for undirected graphs
  ArrayOrView<uint64_t> lpi_out_;    // label-pair index, see OutLabelMask
  ArrayOrView<uint64_t> lpi_in_;     // empty for undirected graphs
  // Null for in-memory indexes; a mapped index's paging hooks, owned by
  // the MmapCcsr the arrays alias (so it outlives every borrowed span).
  const CcsrPager* pager_ = nullptr;
  std::vector<CompressedCluster> clusters_;
  std::unordered_map<ClusterId, size_t, ClusterIdHash> index_;
  // (min label, max label) -> cluster indices, for negation lookups.
  std::unordered_map<uint64_t, std::vector<size_t>> star_index_;
};

class ClusterCache;

/// G_C^*: the decompressed clusters one query needs (Algorithm 1).
class QueryClusters {
 public:
  /// nullptr means the cluster is empty: no data edge can match.
  const ClusterView* Find(const ClusterId& id) const;

  /// Decompressed "(a,b)*-clusters" for negation checks (may be empty).
  const std::vector<const ClusterView*>& Star(Label a, Label b) const;

  size_t NumViews() const { return views_.size(); }
  size_t DecompressedBytes() const;

 private:
  friend Status ReadClusters(const Ccsr&, const Graph&, MatchVariant,
                             QueryClusters*);
  friend class ClusterCache;
  friend Status ReadClustersCached(ClusterCache&, const Graph&, MatchVariant,
                                   QueryClusters*);
  friend Status ReadClustersImpl(const Ccsr&, const Graph&, MatchVariant,
                                 ClusterCache*, QueryClusters*);

  // Views are shared so a cross-query ClusterCache can co-own them.
  std::unordered_map<ClusterId, std::shared_ptr<const ClusterView>,
                     ClusterIdHash>
      views_;
  std::unordered_map<uint64_t, std::vector<const ClusterView*>> star_;
};

/// Algorithm 1 (ReadCSR): selects and decompresses the clusters needed
/// to match `pattern` under `variant`. For vertex-induced matching this
/// additionally loads the negation clusters between not-fully-connected
/// pattern vertex pairs. Requires pattern.directed() == gc.directed().
Status ReadClusters(const Ccsr& gc, const Graph& pattern, MatchVariant variant,
                    QueryClusters* out);

}  // namespace csce

#endif  // CSCE_CCSR_CCSR_H_
