#ifndef CSCE_CSCE_CSCE_H_
#define CSCE_CSCE_CSCE_H_

/// Umbrella header for the CSCE library: clustered-CSR indexing and
/// SCE-based subgraph matching for heterogeneous graphs, plus the
/// workload generators and baseline matchers used by the benchmark
/// suite. Include the individual headers instead when compile time
/// matters.

#include "analysis/f1.h"                  // IWYU pragma: export
#include "analysis/motif_adjacency.h"     // IWYU pragma: export
#include "analysis/motif_clustering.h"    // IWYU pragma: export
#include "baselines/backtracking.h"       // IWYU pragma: export
#include "baselines/graphpi_like.h"       // IWYU pragma: export
#include "baselines/join.h"               // IWYU pragma: export
#include "baselines/vf2.h"                // IWYU pragma: export
#include "ccsr/ccsr.h"                    // IWYU pragma: export
#include "ccsr/ccsr_io.h"                 // IWYU pragma: export
#include "ccsr/cluster_cache.h"           // IWYU pragma: export
#include "engine/matcher.h"               // IWYU pragma: export
#include "gen/datasets.h"                 // IWYU pragma: export
#include "gen/pattern_gen.h"              // IWYU pragma: export
#include "gen/random_graph.h"             // IWYU pragma: export
#include "graph/components.h"             // IWYU pragma: export
#include "graph/graph.h"                  // IWYU pragma: export
#include "graph/graph_builder.h"          // IWYU pragma: export
#include "graph/graph_io.h"               // IWYU pragma: export
#include "graph/graph_stats.h"            // IWYU pragma: export
#include "graph/isomorphism.h"            // IWYU pragma: export
#include "graph/pattern_builder.h"        // IWYU pragma: export
#include "graph/subgraph.h"               // IWYU pragma: export
#include "plan/plan_printer.h"            // IWYU pragma: export
#include "plan/symmetry.h"                // IWYU pragma: export

#endif  // CSCE_CSCE_CSCE_H_
