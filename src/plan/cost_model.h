#ifndef CSCE_PLAN_COST_MODEL_H_
#define CSCE_PLAN_COST_MODEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "ccsr/ccsr.h"
#include "graph/graph.h"

namespace csce {

/// A Graphflow-style systematic optimizer (paper Section II,
/// "Optimization"): instead of heuristic rules it searches over
/// matching orders with a cardinality model derived from CCSR cluster
/// statistics. Exposed as an alternative ordering strategy so the
/// heuristic-vs-systematic trade-off the paper discusses can be
/// measured directly (bench_fig13).
///
/// The cardinality model estimates, for each order prefix, the number
/// of partial embeddings: the seed position contributes the distinct
/// endpoint count of its smallest cluster; each extension multiplies by
/// the average cluster fan-out of its tightest backward edge and
/// applies a fixed selectivity per additional backward edge.

/// Estimated total intermediate cardinality of executing `order`
/// (sum over prefixes). Lower is better.
double EstimateOrderCost(const Graph& pattern, const Ccsr& gc,
                         std::span<const VertexId> order);

/// Beam search over connected matching orders minimizing
/// EstimateOrderCost. `beam_width` trades optimization time for plan
/// quality (Graphflow enumerates exhaustively, which the paper notes
/// does not scale past small patterns; the beam keeps this polynomial).
std::vector<VertexId> CostBasedOrder(const Graph& pattern, const Ccsr& gc,
                                     uint32_t beam_width = 4);

struct Plan;  // plan/planner.h

/// Auxiliary-graph pruning directives (prune pass "aux"): marks the
/// plan positions whose candidate intersection is worth materializing
/// incrementally while the dependency vertices are placed, using the
/// same cluster statistics as the cardinality model. A position
/// qualifies when its projection is refined more than once before the
/// position is reached (>= 2 backward edges), or when a single-edge
/// projection becomes known >= 2 levels early AND the cluster leaves
/// some vertices of the dependency's label row-less (so the empty-cut
/// can actually fire). `data` may be null (structural criteria only).
void ChooseAuxTargets(const Ccsr* data, Plan* plan);

}  // namespace csce

#endif  // CSCE_PLAN_COST_MODEL_H_
