#include "plan/plan_printer.h"

#include <cstdarg>
#include <cstdio>

namespace csce {
namespace {

void Append(std::string* out, const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  *out += buf;
}

}  // namespace

std::string PlanToString(const Plan& plan) {
  std::string out;
  Append(&out, "plan: variant=%s positions=%zu dag_edges=%zu sce=%u/%u%s\n",
         VariantName(plan.variant), plan.positions.size(), plan.dag_edges,
         plan.sce.sce_vertices, plan.sce.pattern_vertices,
         plan.use_sce ? "" : " (sce disabled)");
  for (size_t j = 0; j < plan.positions.size(); ++j) {
    const PlanPosition& pos = plan.positions[j];
    Append(&out, "  [%zu] u%u label=%u", j, pos.u, pos.label);
    if (pos.edges.empty()) {
      if (pos.seed_valid) {
        Append(&out, " seed=%s(%s)", pos.seed_cluster.ToString().c_str(),
               pos.seed_use_sources ? "sources" : "targets");
      } else {
        Append(&out, " seed=label-scan");
      }
    }
    for (const EdgeConstraint& e : pos.edges) {
      Append(&out, " %s@%u%s", e.cluster.ToString().c_str(), e.pos,
             e.incoming ? "(in)" : "(out)");
    }
    for (const NegConstraint& c : pos.negations) {
      Append(&out, " !%u%s%s", c.pos, c.forbid_to ? "to" : "",
             c.forbid_from ? "from" : "");
    }
    if (!pos.deps.empty()) {
      Append(&out, " deps={");
      for (size_t i = 0; i < pos.deps.size(); ++i) {
        Append(&out, "%s%u", i ? "," : "", pos.deps[i]);
      }
      Append(&out, "}");
    }
    if (pos.cache_alias >= 0) Append(&out, " alias=%d", pos.cache_alias);
    if (pos.min_out_degree > 0 || pos.min_in_degree > 0) {
      Append(&out, " mindeg=%u/%u", pos.min_out_degree, pos.min_in_degree);
    }
    out += "\n";
  }
  return out;
}

}  // namespace csce
