#include "plan/dag.h"

#include <algorithm>
#include <queue>

#include "util/bitset.h"
#include "util/logging.h"

namespace csce {
namespace {

bool ArePatternNeighbors(const Graph& p, VertexId a, VertexId b) {
  return p.HasEdge(a, b) || (p.directed() && p.HasEdge(b, a));
}

// Any data edges between these two vertex labels at all?
bool StarNonEmpty(const Ccsr* gc, const Graph& p, VertexId a, VertexId b) {
  if (gc == nullptr) return true;  // conservative without data statistics
  for (const CompressedCluster* c :
       gc->StarClusters(p.VertexLabel(a), p.VertexLabel(b))) {
    if (c->num_edges > 0) return true;
  }
  return false;
}

}  // namespace

DependencyDag DependencyDag::Build(const Graph& pattern,
                                   std::span<const VertexId> order,
                                   MatchVariant variant, const Ccsr* gc) {
  const uint32_t n = pattern.NumVertices();
  CSCE_CHECK(order.size() == n);
  DependencyDag dag;
  dag.children_.resize(n);
  dag.parents_.resize(n);

  auto add_edge = [&dag](VertexId from, VertexId to) {
    dag.children_[from].push_back(to);
    dag.parents_[to].push_back(from);
    ++dag.num_edges_;
  };

  // Line 7 precomputation: anchor[j] is the earliest position holding a
  // pattern neighbor of order[j] (n if none). The anchoring condition
  // "exists k < i with Neighbor(P, order[k], order[j])" is then just
  // anchor[j] < i, keeping the vertex-induced build at O(n^2).
  std::vector<uint32_t> pos_of(n, 0);
  for (uint32_t j = 0; j < n; ++j) pos_of[order[j]] = j;
  std::vector<uint32_t> anchor(n, n);
  for (VertexId u = 0; u < n; ++u) {
    auto consider = [&](VertexId w) {
      anchor[pos_of[u]] = std::min(anchor[pos_of[u]], pos_of[w]);
    };
    for (const Neighbor& nb : pattern.OutNeighbors(u)) consider(nb.v);
    if (pattern.directed()) {
      for (const Neighbor& nb : pattern.InNeighbors(u)) consider(nb.v);
    }
  }

  for (uint32_t j = 1; j < n; ++j) {
    for (uint32_t i = 0; i < j; ++i) {
      if (ArePatternNeighbors(pattern, order[i], order[j])) {
        add_edge(order[i], order[j]);
      } else if (variant == MatchVariant::kVertexInduced) {
        // Line 7: the candidate set of order[j] must already be
        // anchored by some pattern neighbor earlier than position i.
        if (anchor[j] >= i) continue;
        // Line 8: only a non-empty "(x,y)*-cluster" creates a real
        // negation dependency; empty clusters make it vacuous.
        if (StarNonEmpty(gc, pattern, order[i], order[j])) {
          add_edge(order[i], order[j]);
        }
      }
    }
  }

  for (uint32_t v = 0; v < n; ++v) {
    std::sort(dag.children_[v].begin(), dag.children_[v].end());
    std::sort(dag.parents_[v].begin(), dag.parents_[v].end());
  }
  return dag;
}

std::vector<VertexId> DependencyDag::Roots() const {
  std::vector<VertexId> roots;
  for (uint32_t v = 0; v < NumVertices(); ++v) {
    if (parents_[v].empty()) roots.push_back(v);
  }
  return roots;
}

bool DependencyDag::HasPath(VertexId u, VertexId v) const {
  if (u == v) return true;
  std::vector<bool> seen(NumVertices(), false);
  std::queue<VertexId> frontier;
  frontier.push(u);
  seen[u] = true;
  while (!frontier.empty()) {
    VertexId x = frontier.front();
    frontier.pop();
    for (VertexId c : children_[x]) {
      if (c == v) return true;
      if (!seen[c]) {
        seen[c] = true;
        frontier.push(c);
      }
    }
  }
  return false;
}

SceStats ComputeSceStats(const Graph& pattern,
                         std::span<const VertexId> order,
                         MatchVariant variant, const DependencyDag& dag) {
  const uint32_t n = dag.NumVertices();
  SceStats stats;
  stats.pattern_vertices = n;
  if (n == 0) return stats;

  // Transitive closure via reverse-topological dynamic programming:
  // reach[u] = descendants of u (including u).
  std::vector<uint32_t> indegree(n, 0);
  for (uint32_t v = 0; v < n; ++v) {
    indegree[v] = static_cast<uint32_t>(dag.Parents(v).size());
  }
  std::vector<VertexId> topo;
  topo.reserve(n);
  std::queue<VertexId> ready;
  for (uint32_t v = 0; v < n; ++v) {
    if (indegree[v] == 0) ready.push(v);
  }
  while (!ready.empty()) {
    VertexId v = ready.front();
    ready.pop();
    topo.push_back(v);
    for (VertexId c : dag.Children(v)) {
      if (--indegree[c] == 0) ready.push(c);
    }
  }
  CSCE_CHECK(topo.size() == n);

  std::vector<DynamicBitset> reach(n, DynamicBitset(n));
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    VertexId v = *it;
    reach[v].Set(v);
    for (VertexId c : dag.Children(v)) reach[v].OrWith(reach[c]);
  }
  auto independent = [&reach](VertexId a, VertexId b) {
    return !reach[a].Test(b) && !reach[b].Test(a);
  };

  for (uint32_t j = 1; j < n; ++j) {
    VertexId uj = order[j];
    bool has_sce = false;
    bool cluster = false;
    for (uint32_t i = 0; i < j; ++i) {
      VertexId ui = order[i];
      if (!independent(ui, uj)) continue;
      has_sce = true;
      if (variant == MatchVariant::kVertexInduced) {
        // Independence between a non-adjacent pair exists only because
        // clusters (or the anchoring condition) pruned the negation
        // dependency; attribute pairs whose star clusters are empty.
        cluster = true;
      } else if (pattern.VertexLabel(ui) != pattern.VertexLabel(uj)) {
        // Injectivity cannot interfere: candidate sets live in
        // label-disjoint clusters, so C \ {v_x} == C (Definition 1).
        cluster = true;
      }
    }
    if (has_sce) ++stats.sce_vertices;
    if (has_sce && cluster) ++stats.cluster_attributed;
  }
  return stats;
}

}  // namespace csce
