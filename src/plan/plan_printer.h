#ifndef CSCE_PLAN_PLAN_PRINTER_H_
#define CSCE_PLAN_PLAN_PRINTER_H_

#include <string>

#include "plan/planner.h"

namespace csce {

/// Human-readable multi-line dump of a compiled plan: matching order,
/// per-position constraints (edge clusters, negations, dependency
/// positions, cache aliases, degree filters) and the SCE summary. Used
/// by `csce_match --explain` and handy in test failure messages.
std::string PlanToString(const Plan& plan);

}  // namespace csce

#endif  // CSCE_PLAN_PLAN_PRINTER_H_
