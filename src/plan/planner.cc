#include "plan/planner.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/cost_model.h"
#include "plan/descendants.h"
#include "plan/gcf.h"
#include "plan/ldsf.h"
#include "plan/nec.h"
#include "util/logging.h"
#include "util/timer.h"

namespace csce {
namespace {

struct PlanMetrics {
  obs::Counter plans;
  obs::Counter gcf_orders;
  obs::Counter cost_based_orders;
  obs::Counter ldsf_refinements;
  obs::Counter nec_aliases;
  obs::Histogram nec_class_size;

  static const PlanMetrics& Get() {
    static const PlanMetrics m = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Global();
      return PlanMetrics{r.counter("plan.plans"),
                         r.counter("plan.gcf_orders"),
                         r.counter("plan.cost_based_orders"),
                         r.counter("plan.ldsf_refinements"),
                         r.counter("plan.nec_aliases"),
                         r.histogram("plan.nec_class_size")};
    }();
    return m;
  }
};

bool StarNonEmpty(const Ccsr* gc, Label a, Label b) {
  if (gc == nullptr) return true;
  for (const CompressedCluster* c : gc->StarClusters(a, b)) {
    if (c->num_edges > 0) return true;
  }
  return false;
}

// Fills `pos->edges` with the backward edge constraints of pattern
// vertex u at position j.
void CompileEdgeConstraints(const Graph& pattern, VertexId u, uint32_t j,
                            const std::vector<uint32_t>& pos_of,
                            PlanPosition* pos) {
  if (!pattern.directed()) {
    for (const Neighbor& n : pattern.OutNeighbors(u)) {
      uint32_t i = pos_of[n.v];
      if (i >= j) continue;
      ClusterId id = ClusterId::Undirected(pattern.VertexLabel(u),
                                           pattern.VertexLabel(n.v), n.elabel);
      pos->edges.push_back(EdgeConstraint{i, id, /*incoming=*/false});
    }
    return;
  }
  for (const Neighbor& n : pattern.OutNeighbors(u)) {
    uint32_t i = pos_of[n.v];
    if (i >= j) continue;
    // Pattern arc u -> w: candidates are incoming cluster-neighbors of
    // f(w) in the (L(u), L(w)) cluster.
    ClusterId id = ClusterId::Directed(pattern.VertexLabel(u),
                                       pattern.VertexLabel(n.v), n.elabel);
    pos->edges.push_back(EdgeConstraint{i, id, /*incoming=*/true});
  }
  for (const Neighbor& n : pattern.InNeighbors(u)) {
    uint32_t i = pos_of[n.v];
    if (i >= j) continue;
    // Pattern arc w -> u: candidates are outgoing cluster-neighbors.
    ClusterId id = ClusterId::Directed(pattern.VertexLabel(n.v),
                                       pattern.VertexLabel(u), n.elabel);
    pos->edges.push_back(EdgeConstraint{i, id, /*incoming=*/false});
  }
}

void CompileNegConstraints(const Graph& pattern, const Ccsr* gc, VertexId u,
                           uint32_t j, std::span<const VertexId> order,
                           PlanPosition* pos) {
  for (uint32_t i = 0; i < j; ++i) {
    VertexId w = order[i];
    bool forbid_to;
    bool forbid_from;
    if (pattern.directed()) {
      forbid_to = !pattern.HasEdge(u, w);
      forbid_from = !pattern.HasEdge(w, u);
    } else {
      bool adjacent = pattern.HasEdge(u, w);
      forbid_to = !adjacent;
      forbid_from = !adjacent;
    }
    if (!forbid_to && !forbid_from) continue;
    Label lu = pattern.VertexLabel(u);
    Label lw = pattern.VertexLabel(w);
    if (!StarNonEmpty(gc, lu, lw)) continue;  // vacuous: no such data edges
    pos->negations.push_back(NegConstraint{i, forbid_to, forbid_from, lw});
  }
}

// Chooses the seed cluster for a position with no backward edges: the
// smallest cluster among the vertex's incident pattern edges.
void CompileSeed(const Graph& pattern, const Ccsr* gc, VertexId u,
                 PlanPosition* pos) {
  uint64_t best_size = std::numeric_limits<uint64_t>::max();
  auto consider = [&](const ClusterId& id, bool use_sources) {
    uint64_t size = gc == nullptr ? 0 : gc->ClusterSize(id);
    if (!pos->seed_valid || size < best_size) {
      pos->seed_valid = true;
      pos->seed_cluster = id;
      pos->seed_use_sources = use_sources;
      best_size = size;
    }
  };
  if (!pattern.directed()) {
    for (const Neighbor& n : pattern.OutNeighbors(u)) {
      consider(ClusterId::Undirected(pattern.VertexLabel(u),
                                     pattern.VertexLabel(n.v), n.elabel),
               /*use_sources=*/true);
    }
    return;
  }
  for (const Neighbor& n : pattern.OutNeighbors(u)) {
    consider(ClusterId::Directed(pattern.VertexLabel(u),
                                 pattern.VertexLabel(n.v), n.elabel),
             /*use_sources=*/true);
  }
  for (const Neighbor& n : pattern.InNeighbors(u)) {
    consider(ClusterId::Directed(pattern.VertexLabel(n.v),
                                 pattern.VertexLabel(u), n.elabel),
             /*use_sources=*/false);
  }
}

bool SameBaseCandidates(const PlanPosition& a, const PlanPosition& b) {
  if (a.label != b.label) return false;
  if (a.edges != b.edges || a.negations != b.negations) return false;
  // The lpi prefilter is applied inside the shared candidate
  // computation, so aliased positions must demand identical masks.
  if (a.lpi_req_out != b.lpi_req_out || a.lpi_req_in != b.lpi_req_in) {
    return false;
  }
  if (a.edges.empty()) {
    // Seeded positions: same seed source required.
    if (a.seed_valid != b.seed_valid) return false;
    if (a.seed_valid &&
        (a.seed_cluster != b.seed_cluster ||
         a.seed_use_sources != b.seed_use_sources)) {
      return false;
    }
  }
  return true;
}

}  // namespace

Status Planner::MakePlan(const Graph& pattern, MatchVariant variant,
                         const PlanOptions& options, Plan* out) const {
  if (pattern.NumVertices() == 0) {
    return Status::InvalidArgument("empty pattern");
  }
  if (data_ != nullptr && pattern.directed() != data_->directed()) {
    return Status::InvalidArgument(
        "pattern and data graph directedness differ");
  }
  WallTimer timer;
  obs::Span span("plan.make");
  const PlanMetrics& metrics = PlanMetrics::Get();
  metrics.plans.Increment();
  Plan plan;
  plan.variant = variant;
  plan.use_sce = options.use_sce;

  // Step 1: initial order (GCF, paper Section VI), or the systematic
  // cost-based order when requested.
  std::vector<VertexId> initial;
  const bool cost_based = options.use_cost_based && data_ != nullptr;
  if (cost_based) {
    metrics.cost_based_orders.Increment();
    initial = CostBasedOrder(pattern, *data_, options.cost_beam_width);
  } else if (options.use_gcf) {
    metrics.gcf_orders.Increment();
    GcfOptions gcf;
    gcf.use_cluster_tiebreak = options.use_cluster_tiebreak;
    initial = GreatestConstraintFirstOrder(pattern, data_, gcf);
  } else {
    initial.resize(pattern.NumVertices());
    std::iota(initial.begin(), initial.end(), 0);
  }

  // Step 2: dependency DAG (Algorithm 2).
  DependencyDag dag = DependencyDag::Build(pattern, initial, variant, data_);

  // Step 3: LDSF fine-tuning (Algorithms 3 and 4). Cost-based orders
  // are kept verbatim: reordering would invalidate their cost estimate.
  if (options.use_ldsf && !cost_based) {
    metrics.ldsf_refinements.Increment();
    std::vector<uint32_t> descendant_sizes = ComputeDescendantSizes(dag);
    plan.order = LargestDescendantFirstOrder(
        dag, pattern, options.use_cluster_tiebreak ? data_ : nullptr,
        descendant_sizes);
    // The final order may imply a (slightly) different DAG for
    // vertex-induced matching, where negation dependencies are
    // position-sensitive; rebuild for faithful statistics.
    dag = DependencyDag::Build(pattern, plan.order, variant, data_);
  } else {
    plan.order = std::move(initial);
  }
  plan.dag_edges = dag.NumEdges();
  plan.sce = ComputeSceStats(pattern, plan.order, variant, dag);

  // Compile per-position constraints.
  const uint32_t n = pattern.NumVertices();
  std::vector<uint32_t> pos_of(n, 0);
  for (uint32_t j = 0; j < n; ++j) pos_of[plan.order[j]] = j;
  plan.positions.resize(n);
  for (uint32_t j = 0; j < n; ++j) {
    PlanPosition& pos = plan.positions[j];
    pos.u = plan.order[j];
    pos.label = pattern.VertexLabel(pos.u);
    if (variant != MatchVariant::kHomomorphic && options.use_degree_filter) {
      // LDF: injectivity forces f(u) to host distinct images of all of
      // u's pattern neighbors. Not valid under homomorphism, where
      // neighbors may collapse onto one data vertex.
      pos.min_out_degree = pattern.OutDegree(pos.u);
      pos.min_in_degree = pattern.directed() ? pattern.InDegree(pos.u) : 0;
    }
    CompileEdgeConstraints(pattern, pos.u, j, pos_of, &pos);
    if (variant == MatchVariant::kVertexInduced) {
      CompileNegConstraints(pattern, data_, pos.u, j, plan.order, &pos);
    }
    std::sort(pos.edges.begin(), pos.edges.end(),
              [](const EdgeConstraint& a, const EdgeConstraint& b) {
                return std::tie(a.pos, a.cluster, a.incoming) <
                       std::tie(b.pos, b.cluster, b.incoming);
              });
    if (pos.edges.empty()) CompileSeed(pattern, data_, pos.u, &pos);
    for (const EdgeConstraint& e : pos.edges) pos.deps.push_back(e.pos);
    for (const NegConstraint& c : pos.negations) pos.deps.push_back(c.pos);
    std::sort(pos.deps.begin(), pos.deps.end());
    pos.deps.erase(std::unique(pos.deps.begin(), pos.deps.end()),
                   pos.deps.end());
  }

  // Proactive pruning directives (engine/prune/prune.h), compiled into
  // the plan so the executor, the morsel workers, and (over the wire)
  // the shard workers all act on one consistent directive set.
  plan.prune = options.prune;
  if (options.prune.lpi) {
    // Each backward edge constraint at a later position q demands that
    // the vertex placed at position e.pos can still reach a neighbor
    // with q's label in the right direction. Folded into per-position
    // bitmasks checked against the CCSR label-pair index; edges toward
    // EARLIER positions are already enforced by intersection.
    for (uint32_t q = 0; q < n; ++q) {
      const uint64_t bit = Ccsr::LabelBit(plan.positions[q].label);
      for (const EdgeConstraint& e : plan.positions[q].edges) {
        PlanPosition& dep = plan.positions[e.pos];
        if (e.incoming) {
          dep.lpi_req_in |= bit;
        } else {
          dep.lpi_req_out |= bit;
        }
      }
    }
  }
  if (options.prune.aux) {
    ChooseAuxTargets(data_, &plan);
  }
  if (options.prune.ree) {
    // Never the root (morsel splitting would make skip counts depend on
    // the thread count) and never the last position (the count-only
    // fast path has no subtree to memoize).
    for (uint32_t j = 1; j + 1 < n; ++j) {
      plan.positions[j].ree_enabled = true;
    }
  }

  // NEC cache sharing: positions with identical base-candidate
  // definitions share one cache slot. ComputeNecClasses narrows the
  // search; compiled-constraint equality is the correctness test.
  if (options.use_nec) {
    std::vector<uint32_t> nec = ComputeNecClasses(pattern);
    for (uint32_t j = 1; j < n; ++j) {
      for (uint32_t i = 0; i < j; ++i) {
        if (nec[plan.positions[i].u] != nec[plan.positions[j].u]) continue;
        if (!SameBaseCandidates(plan.positions[i], plan.positions[j])) {
          continue;
        }
        int32_t root = plan.positions[i].cache_alias >= 0
                           ? plan.positions[i].cache_alias
                           : static_cast<int32_t>(i);
        plan.positions[j].cache_alias = root;
        metrics.nec_aliases.Increment();
        break;
      }
    }
    // NEC class-size distribution over the pattern's vertices.
    std::vector<uint32_t> class_count(n, 0);
    for (VertexId u = 0; u < n; ++u) ++class_count[nec[u]];
    for (uint32_t c = 0; c < n; ++c) {
      if (class_count[c] > 0) {
        metrics.nec_class_size.Record(class_count[c]);
      }
    }
  }

  plan.plan_seconds = timer.Seconds();
  *out = std::move(plan);
  return Status::OK();
}

}  // namespace csce
