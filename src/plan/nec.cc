#include "plan/nec.h"

#include <algorithm>

namespace csce {
namespace {

// u's neighborhood in one direction with v (and u itself) removed.
std::vector<Neighbor> NeighborhoodExcluding(std::span<const Neighbor> nbrs,
                                            VertexId u, VertexId v) {
  std::vector<Neighbor> out;
  out.reserve(nbrs.size());
  for (const Neighbor& n : nbrs) {
    if (n.v == u || n.v == v) continue;
    out.push_back(n);
  }
  return out;
}

bool Equivalent(const Graph& p, VertexId u, VertexId v) {
  if (p.VertexLabel(u) != p.VertexLabel(v)) return false;
  // If adjacent, the connecting edges must be mutual with equal labels
  // (e.g. both endpoints of a triangle edge can be equivalent).
  if (NeighborhoodExcluding(p.OutNeighbors(u), u, v) !=
      NeighborhoodExcluding(p.OutNeighbors(v), v, u)) {
    return false;
  }
  if (p.directed() && NeighborhoodExcluding(p.InNeighbors(u), u, v) !=
                          NeighborhoodExcluding(p.InNeighbors(v), v, u)) {
    return false;
  }
  // Arc labels between u and v themselves must be symmetric, otherwise
  // swapping u and v changes the pattern.
  auto arcs_between = [&p](VertexId a, VertexId b) {
    std::vector<Label> labels;
    for (const Neighbor& n : p.OutNeighbors(a)) {
      if (n.v == b) labels.push_back(n.elabel);
    }
    return labels;
  };
  if (arcs_between(u, v) != arcs_between(v, u)) return false;
  return true;
}

}  // namespace

std::vector<uint32_t> ComputeNecClasses(const Graph& pattern) {
  const uint32_t n = pattern.NumVertices();
  std::vector<uint32_t> cls(n, 0);
  std::vector<VertexId> representative;  // class id -> smallest member
  for (VertexId v = 0; v < n; ++v) {
    bool assigned = false;
    for (uint32_t c = 0; c < representative.size() && !assigned; ++c) {
      if (Equivalent(pattern, representative[c], v)) {
        cls[v] = c;
        assigned = true;
      }
    }
    if (!assigned) {
      cls[v] = static_cast<uint32_t>(representative.size());
      representative.push_back(v);
    }
  }
  return cls;
}

}  // namespace csce
