#include "plan/validate.h"

#include <algorithm>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

namespace csce {
namespace {

std::string PosStr(uint32_t j, VertexId u) {
  return "position " + std::to_string(j) + " (pattern vertex " +
         std::to_string(u) + ")";
}

// Mirrors planner.cc's StarNonEmpty: a negation dependency is vacuous
// when no data edge connects the two vertex labels at all.
bool StarNonEmpty(const Ccsr* gc, Label a, Label b) {
  if (gc == nullptr) return true;
  for (const CompressedCluster* c : gc->StarClusters(a, b)) {
    if (c->num_edges > 0) return true;
  }
  return false;
}

// Independent recompilation of the backward edge constraints of pattern
// vertex u at position j — the reference the compiled plan is checked
// against.
std::vector<EdgeConstraint> ExpectedEdgeConstraints(
    const Graph& pattern, VertexId u, uint32_t j,
    const std::vector<uint32_t>& pos_of) {
  std::vector<EdgeConstraint> expected;
  if (!pattern.directed()) {
    for (const Neighbor& n : pattern.OutNeighbors(u)) {
      uint32_t i = pos_of[n.v];
      if (i >= j) continue;
      ClusterId id = ClusterId::Undirected(pattern.VertexLabel(u),
                                           pattern.VertexLabel(n.v), n.elabel);
      expected.push_back(EdgeConstraint{i, id, /*incoming=*/false});
    }
  } else {
    for (const Neighbor& n : pattern.OutNeighbors(u)) {
      uint32_t i = pos_of[n.v];
      if (i >= j) continue;
      ClusterId id = ClusterId::Directed(pattern.VertexLabel(u),
                                         pattern.VertexLabel(n.v), n.elabel);
      expected.push_back(EdgeConstraint{i, id, /*incoming=*/true});
    }
    for (const Neighbor& n : pattern.InNeighbors(u)) {
      uint32_t i = pos_of[n.v];
      if (i >= j) continue;
      ClusterId id = ClusterId::Directed(pattern.VertexLabel(n.v),
                                         pattern.VertexLabel(u), n.elabel);
      expected.push_back(EdgeConstraint{i, id, /*incoming=*/false});
    }
  }
  std::sort(expected.begin(), expected.end(),
            [](const EdgeConstraint& a, const EdgeConstraint& b) {
              return std::tie(a.pos, a.cluster, a.incoming) <
                     std::tie(b.pos, b.cluster, b.incoming);
            });
  return expected;
}

std::vector<NegConstraint> ExpectedNegConstraints(
    const Graph& pattern, const Ccsr* gc, VertexId u, uint32_t j,
    std::span<const VertexId> order) {
  std::vector<NegConstraint> expected;
  for (uint32_t i = 0; i < j; ++i) {
    VertexId w = order[i];
    bool forbid_to;
    bool forbid_from;
    if (pattern.directed()) {
      forbid_to = !pattern.HasEdge(u, w);
      forbid_from = !pattern.HasEdge(w, u);
    } else {
      bool adjacent = pattern.HasEdge(u, w);
      forbid_to = !adjacent;
      forbid_from = !adjacent;
    }
    if (!forbid_to && !forbid_from) continue;
    Label lu = pattern.VertexLabel(u);
    Label lw = pattern.VertexLabel(w);
    if (!StarNonEmpty(gc, lu, lw)) continue;
    expected.push_back(NegConstraint{i, forbid_to, forbid_from, lw});
  }
  return expected;
}

// Mirrors planner.cc's CompileSeed: the smallest incident cluster.
void ExpectedSeed(const Graph& pattern, const Ccsr* gc, VertexId u,
                  bool* seed_valid, ClusterId* seed_cluster,
                  bool* seed_use_sources) {
  *seed_valid = false;
  uint64_t best_size = std::numeric_limits<uint64_t>::max();
  auto consider = [&](const ClusterId& id, bool use_sources) {
    uint64_t size = gc == nullptr ? 0 : gc->ClusterSize(id);
    if (!*seed_valid || size < best_size) {
      *seed_valid = true;
      *seed_cluster = id;
      *seed_use_sources = use_sources;
      best_size = size;
    }
  };
  if (!pattern.directed()) {
    for (const Neighbor& n : pattern.OutNeighbors(u)) {
      consider(ClusterId::Undirected(pattern.VertexLabel(u),
                                     pattern.VertexLabel(n.v), n.elabel),
               /*use_sources=*/true);
    }
    return;
  }
  for (const Neighbor& n : pattern.OutNeighbors(u)) {
    consider(ClusterId::Directed(pattern.VertexLabel(u),
                                 pattern.VertexLabel(n.v), n.elabel),
             /*use_sources=*/true);
  }
  for (const Neighbor& n : pattern.InNeighbors(u)) {
    consider(ClusterId::Directed(pattern.VertexLabel(n.v),
                                 pattern.VertexLabel(u), n.elabel),
             /*use_sources=*/false);
  }
}

// Mirrors planner.cc's SameBaseCandidates — the correctness condition
// for two positions sharing one SCE cache slot.
bool SameBaseCandidates(const PlanPosition& a, const PlanPosition& b) {
  if (a.label != b.label) return false;
  if (a.edges != b.edges || a.negations != b.negations) return false;
  if (a.edges.empty()) {
    if (a.seed_valid != b.seed_valid) return false;
    if (a.seed_valid &&
        (a.seed_cluster != b.seed_cluster ||
         a.seed_use_sources != b.seed_use_sources)) {
      return false;
    }
  }
  return true;
}

// True if exchanging u and v (fixing everything else) maps the labeled
// pattern onto itself.
bool SwapIsAutomorphism(const Graph& p, VertexId u, VertexId v) {
  if (p.VertexLabel(u) != p.VertexLabel(v)) return false;
  auto swap_image = [u, v](VertexId x) {
    if (x == u) return v;
    if (x == v) return u;
    return x;
  };
  bool ok = true;
  p.ForEachEdge([&](const Edge& e) {
    if (!ok) return;
    if (!p.HasEdge(swap_image(e.src), swap_image(e.dst), e.elabel)) {
      ok = false;
    }
  });
  return ok;
}

}  // namespace

Status ValidateDag(const DependencyDag& dag) {
  const uint32_t n = dag.NumVertices();
  size_t child_edges = 0;
  size_t parent_edges = 0;
  for (VertexId v = 0; v < n; ++v) {
    const std::vector<VertexId>& children = dag.Children(v);
    const std::vector<VertexId>& parents = dag.Parents(v);
    child_edges += children.size();
    parent_edges += parents.size();
    for (size_t k = 0; k < children.size(); ++k) {
      VertexId c = children[k];
      if (c >= n) {
        return Status::Corruption("dag: child " + std::to_string(c) +
                                  " of vertex " + std::to_string(v) +
                                  " out of range");
      }
      if (k > 0 && children[k] <= children[k - 1]) {
        return Status::Corruption("dag: children of vertex " +
                                  std::to_string(v) +
                                  " not sorted strictly increasing");
      }
      const std::vector<VertexId>& mirror = dag.Parents(c);
      if (!std::binary_search(mirror.begin(), mirror.end(), v)) {
        return Status::Corruption(
            "dag: edge " + std::to_string(v) + " -> " + std::to_string(c) +
            " missing from the child's parent list");
      }
    }
    for (size_t k = 1; k < parents.size(); ++k) {
      if (parents[k] <= parents[k - 1]) {
        return Status::Corruption("dag: parents of vertex " +
                                  std::to_string(v) +
                                  " not sorted strictly increasing");
      }
    }
  }
  if (child_edges != parent_edges || child_edges != dag.NumEdges()) {
    return Status::Corruption(
        "dag: edge count mismatch (children " + std::to_string(child_edges) +
        ", parents " + std::to_string(parent_edges) + ", declared " +
        std::to_string(dag.NumEdges()) + ")");
  }

  // Kahn's algorithm: all vertices must drain, else there is a cycle.
  std::vector<uint32_t> indegree(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    indegree[v] = static_cast<uint32_t>(dag.Parents(v).size());
  }
  std::vector<VertexId> ready;
  for (VertexId v = 0; v < n; ++v) {
    if (indegree[v] == 0) ready.push_back(v);
  }
  uint32_t drained = 0;
  while (!ready.empty()) {
    VertexId v = ready.back();
    ready.pop_back();
    ++drained;
    for (VertexId c : dag.Children(v)) {
      if (--indegree[c] == 0) ready.push_back(c);
    }
  }
  if (drained != n) {
    return Status::Corruption("dag: cycle detected (" +
                              std::to_string(n - drained) +
                              " vertices never became ready)");
  }
  return Status::OK();
}

Status ValidateTopologicalOrder(const DependencyDag& dag,
                                std::span<const VertexId> order) {
  const uint32_t n = dag.NumVertices();
  if (order.size() != n) {
    return Status::Corruption("order has " + std::to_string(order.size()) +
                              " entries for " + std::to_string(n) +
                              " dag vertices");
  }
  std::vector<uint32_t> pos(n, n);
  for (uint32_t j = 0; j < n; ++j) {
    VertexId u = order[j];
    if (u >= n) {
      return Status::Corruption("order entry " + std::to_string(j) +
                                " out of range");
    }
    if (pos[u] != n) {
      return Status::Corruption("vertex " + std::to_string(u) +
                                " appears twice in the order");
    }
    pos[u] = j;
  }
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId c : dag.Children(u)) {
      if (pos[u] >= pos[c]) {
        return Status::Corruption(
            "order is not topological: dependency " + std::to_string(u) +
            " -> " + std::to_string(c) + " but positions " +
            std::to_string(pos[u]) + " >= " + std::to_string(pos[c]));
      }
    }
  }
  return Status::OK();
}

Status ValidateNecClasses(const Graph& pattern,
                          std::span<const uint32_t> classes) {
  const uint32_t n = pattern.NumVertices();
  if (classes.size() != n) {
    return Status::Corruption("nec: " + std::to_string(classes.size()) +
                              " class entries for " + std::to_string(n) +
                              " pattern vertices");
  }
  // Dense ids ordered by first appearance.
  uint32_t next_new = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (classes[v] > next_new) {
      return Status::Corruption("nec: class ids not dense/ordered at vertex " +
                                std::to_string(v));
    }
    if (classes[v] == next_new) ++next_new;
  }
  // Soundness: every same-class pair must be exchangeable.
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (classes[u] != classes[v]) continue;
      if (!SwapIsAutomorphism(pattern, u, v)) {
        return Status::Corruption(
            "nec: vertices " + std::to_string(u) + " and " +
            std::to_string(v) + " share class " + std::to_string(classes[u]) +
            " but exchanging them is not an automorphism");
      }
    }
  }
  return Status::OK();
}

Status ValidatePlan(const Ccsr* data, const Graph& pattern, const Plan& plan) {
  const uint32_t n = pattern.NumVertices();
  if (plan.order.size() != n || plan.positions.size() != n) {
    return Status::Corruption(
        "plan: order/positions sized " + std::to_string(plan.order.size()) +
        "/" + std::to_string(plan.positions.size()) + " for a pattern of " +
        std::to_string(n) + " vertices");
  }
  std::vector<uint32_t> pos_of(n, n);
  for (uint32_t j = 0; j < n; ++j) {
    VertexId u = plan.order[j];
    if (u >= n) {
      return Status::Corruption("plan: order entry " + std::to_string(j) +
                                " out of range");
    }
    if (pos_of[u] != n) {
      return Status::Corruption("plan: vertex " + std::to_string(u) +
                                " appears twice in the order");
    }
    pos_of[u] = j;
  }

  for (uint32_t j = 0; j < n; ++j) {
    const PlanPosition& pos = plan.positions[j];
    const VertexId u = plan.order[j];
    if (pos.u != u) {
      return Status::Corruption("plan: " + PosStr(j, u) +
                                " compiled for vertex " +
                                std::to_string(pos.u) +
                                " (order and positions disagree)");
    }
    if (pos.label != pattern.VertexLabel(u)) {
      return Status::Corruption("plan: " + PosStr(j, u) + " has label " +
                                std::to_string(pos.label) +
                                ", pattern says " +
                                std::to_string(pattern.VertexLabel(u)));
    }

    std::vector<EdgeConstraint> expected_edges =
        ExpectedEdgeConstraints(pattern, u, j, pos_of);
    if (pos.edges != expected_edges) {
      return Status::Corruption(
          "plan: " + PosStr(j, u) + " has " +
          std::to_string(pos.edges.size()) + " edge constraints, expected " +
          std::to_string(expected_edges.size()) +
          " (recompiled from the pattern)");
    }

    std::vector<NegConstraint> expected_negs;
    if (plan.variant == MatchVariant::kVertexInduced) {
      expected_negs = ExpectedNegConstraints(pattern, data, u, j, plan.order);
    }
    if (pos.negations != expected_negs) {
      return Status::Corruption(
          "plan: " + PosStr(j, u) + " has " +
          std::to_string(pos.negations.size()) +
          " negation constraints, expected " +
          std::to_string(expected_negs.size()));
    }

    std::vector<uint32_t> expected_deps;
    for (const EdgeConstraint& e : pos.edges) expected_deps.push_back(e.pos);
    for (const NegConstraint& c : pos.negations) {
      expected_deps.push_back(c.pos);
    }
    std::sort(expected_deps.begin(), expected_deps.end());
    expected_deps.erase(
        std::unique(expected_deps.begin(), expected_deps.end()),
        expected_deps.end());
    if (pos.deps != expected_deps) {
      return Status::Corruption("plan: " + PosStr(j, u) +
                                " dependency list is not the sorted unique "
                                "union of its constraints");
    }

    if (pos.edges.empty()) {
      bool seed_valid = false;
      ClusterId seed_cluster;
      bool seed_use_sources = true;
      ExpectedSeed(pattern, data, u, &seed_valid, &seed_cluster,
                   &seed_use_sources);
      if (pos.seed_valid != seed_valid ||
          (seed_valid && (pos.seed_cluster != seed_cluster ||
                          pos.seed_use_sources != seed_use_sources))) {
        return Status::Corruption("plan: " + PosStr(j, u) +
                                  " seed cluster differs from the smallest "
                                  "incident cluster");
      }
    } else if (pos.seed_valid) {
      return Status::Corruption("plan: " + PosStr(j, u) +
                                " carries both edge constraints and a seed");
    }

    const bool expect_filter = plan.variant != MatchVariant::kHomomorphic;
    uint32_t expect_out = pattern.OutDegree(u);
    uint32_t expect_in = pattern.directed() ? pattern.InDegree(u) : 0;
    bool filter_off = pos.min_out_degree == 0 && pos.min_in_degree == 0;
    bool filter_exact =
        pos.min_out_degree == expect_out && pos.min_in_degree == expect_in;
    if (expect_filter ? (!filter_off && !filter_exact) : !filter_off) {
      return Status::Corruption("plan: " + PosStr(j, u) +
                                " degree filter (" +
                                std::to_string(pos.min_out_degree) + ", " +
                                std::to_string(pos.min_in_degree) +
                                ") does not match the pattern degrees");
    }

    if (pos.cache_alias >= 0) {
      uint32_t alias = static_cast<uint32_t>(pos.cache_alias);
      if (alias >= j) {
        return Status::Corruption("plan: " + PosStr(j, u) +
                                  " aliases a later position " +
                                  std::to_string(alias));
      }
      if (plan.positions[alias].cache_alias >= 0) {
        return Status::Corruption("plan: " + PosStr(j, u) +
                                  " aliases a non-root cache slot");
      }
      if (!SameBaseCandidates(plan.positions[alias], pos)) {
        return Status::Corruption(
            "plan: " + PosStr(j, u) + " shares a cache slot with position " +
            std::to_string(alias) +
            " but their base candidate definitions differ");
      }
    }
  }

  // The order must be a topological order of its dependency DAG (the
  // LDSF contract), and the recorded diagnostics must match.
  DependencyDag dag =
      DependencyDag::Build(pattern, plan.order, plan.variant, data);
  CSCE_RETURN_IF_ERROR(ValidateDag(dag));
  CSCE_RETURN_IF_ERROR(ValidateTopologicalOrder(dag, plan.order));
  if (plan.dag_edges != dag.NumEdges()) {
    return Status::Corruption("plan: records " +
                              std::to_string(plan.dag_edges) +
                              " dag edges, rebuild found " +
                              std::to_string(dag.NumEdges()));
  }
  return Status::OK();
}

}  // namespace csce
