#ifndef CSCE_PLAN_PLANNER_H_
#define CSCE_PLAN_PLANNER_H_

#include <cstdint>
#include <vector>

#include "ccsr/ccsr.h"
#include "engine/prune/prune.h"
#include "graph/graph.h"
#include "graph/variant.h"
#include "plan/dag.h"
#include "util/status.h"

namespace csce {

/// One backward edge constraint of a plan position: the candidates of
/// this position must be cluster-neighbors of the mapping at `pos`.
struct EdgeConstraint {
  uint32_t pos;       // earlier position holding the matched neighbor w
  ClusterId cluster;  // cluster of the pattern edge between w and u
  /// true: the pattern arc is u -> w, so candidates come from the
  /// cluster's incoming side of f(w); false: w -> u (or undirected),
  /// candidates come from the outgoing side of f(w).
  bool incoming;

  friend bool operator==(const EdgeConstraint&,
                         const EdgeConstraint&) = default;
};

/// One negation constraint (vertex-induced only): candidates of this
/// position must have no data arc to/from the mapping at `pos` in the
/// flagged directions.
struct NegConstraint {
  uint32_t pos;
  bool forbid_to;    // forbid data arc f(u) -> f(w)
  bool forbid_from;  // forbid data arc f(w) -> f(u)
  Label other_label;  // L(w), for "(x,y)*-cluster" lookup

  friend bool operator==(const NegConstraint&, const NegConstraint&) = default;
};

/// Everything the executor needs at one position of the matching order.
struct PlanPosition {
  VertexId u = kInvalidVertex;  // pattern vertex at this position
  Label label = kNoLabel;       // its vertex label
  std::vector<EdgeConstraint> edges;
  std::vector<NegConstraint> negations;
  /// Positions this candidate set depends on (sorted, unique): the
  /// union of edge and negation positions. The SCE cache at this
  /// position stays valid while the mappings at these positions are
  /// unchanged (Definition 1).
  std::vector<uint32_t> deps;
  /// If >= 0, this position's base candidates equal those of the given
  /// earlier position (NEC sharing); both use one cache slot.
  int32_t cache_alias = -1;
  /// Position 0 (or any position with no edge constraints) seeds its
  /// candidates from this cluster. Invalid when `edges` is non-empty.
  ClusterId seed_cluster;
  bool seed_valid = false;
  bool seed_use_sources = true;  // Sources() vs Targets() of the cluster
  /// LDF degree filter: injective variants require f(u) to have at
  /// least the pattern vertex's degrees (0 disables the check).
  uint32_t min_out_degree = 0;
  uint32_t min_in_degree = 0;

  // --- Proactive pruning directives (engine/prune/prune.h) ----------
  /// lpi: neighbor-label bitmasks every candidate at this position must
  /// cover — one bit per pattern neighbor matched at a LATER position,
  /// folded the same way as Ccsr::LabelBit. Zero masks disable the
  /// filter. Emitted only when PlanOptions::prune.lpi is set.
  uint64_t lpi_req_out = 0;
  uint64_t lpi_req_in = 0;
  /// aux: maintain an incremental adjacency projection for this
  /// position while its dependency vertices are placed (empty partial
  /// projections cut the subtree early). Chosen by the cost model;
  /// emitted only when PlanOptions::prune.aux is set.
  bool aux_enabled = false;
  /// ree: the executor may skip siblings at this position whose
  /// adjacency is interchangeable with an already-enumerated
  /// zero-embedding sibling. Emitted only when PlanOptions::prune.ree
  /// is set, never for the first or last position.
  bool ree_enabled = false;
};

/// A compiled matching plan: the optimized order Phi* plus per-position
/// constraints, dependencies and cache aliases, and the paper-facing
/// DAG statistics.
struct Plan {
  MatchVariant variant = MatchVariant::kEdgeInduced;
  std::vector<VertexId> order;          // Phi*
  std::vector<PlanPosition> positions;  // one per order entry
  bool use_sce = true;                  // executor honors candidate reuse
  /// Which proactive pruning passes the per-position directives were
  /// compiled for; the matcher forwards this into ExecOptions so the
  /// executor only acts on directives the user asked for.
  PruneOptions prune;

  // Diagnostics (Fig. 12 / Fig. 13 / tests).
  SceStats sce;
  size_t dag_edges = 0;
  double plan_seconds = 0.0;
};

struct PlanOptions {
  /// Use GCF for the initial order; false keeps pattern-vertex-id order
  /// restricted to connectivity (ablation baseline).
  bool use_gcf = true;
  /// Graphflow-style systematic ordering: beam search over orders with
  /// a cluster-statistics cardinality model (plan/cost_model.h). When
  /// set, the cost-based order is used verbatim (GCF and LDSF are
  /// bypassed); SCE/NEC still apply.
  bool use_cost_based = false;
  uint32_t cost_beam_width = 4;
  /// CCSR cluster-size tie-breaking inside GCF and LDSF ("RI+Cluster").
  bool use_cluster_tiebreak = true;
  /// LDSF reordering over the dependency DAG; false keeps the GCF order.
  bool use_ldsf = true;
  /// SCE candidate-cache reuse during execution.
  bool use_sce = true;
  /// NEC cache sharing between equivalent pattern vertices.
  bool use_nec = true;
  /// LDF candidate degree filtering (injective variants only).
  bool use_degree_filter = true;
  /// Proactive pruning passes to compile directives for (--prune=...).
  PruneOptions prune;
};

/// Generates plans for patterns against one CCSR-indexed data graph.
class Planner {
 public:
  explicit Planner(const Ccsr* data) : data_(data) {}

  /// Runs the full optimization pipeline: GCF -> BuildDAG -> descendant
  /// sizes -> LDSF -> compile (constraints, deps, NEC aliases).
  Status MakePlan(const Graph& pattern, MatchVariant variant,
                  const PlanOptions& options, Plan* out) const;

 private:
  const Ccsr* data_;
};

}  // namespace csce

#endif  // CSCE_PLAN_PLANNER_H_
