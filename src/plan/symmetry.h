#ifndef CSCE_PLAN_SYMMETRY_H_
#define CSCE_PLAN_SYMMETRY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace csce {

/// Pattern symmetry-breaking restrictions (GraphPi/GraphZero style).
/// An enumerator that enforces every `f(first) < f(second)` restriction
/// finds exactly one canonical embedding per automorphism class; the
/// true embedding count is canonical_count * automorphism_count.
///
/// Generating this requires enumerating the automorphism group, which
/// is what fails to scale on large unlabeled patterns (the paper's
/// Finding 2) — `generation_seconds` exposes that cost.
struct SymmetryInfo {
  uint64_t automorphism_count = 1;
  std::vector<std::pair<VertexId, VertexId>> restrictions;
  double generation_seconds = 0.0;
};

SymmetryInfo ComputeSymmetryBreaking(const Graph& pattern);

}  // namespace csce

#endif  // CSCE_PLAN_SYMMETRY_H_
