#ifndef CSCE_PLAN_DAG_H_
#define CSCE_PLAN_DAG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "ccsr/ccsr.h"
#include "graph/graph.h"
#include "graph/variant.h"

namespace csce {

/// The candidate-dependency DAG H of a pattern under a matching order
/// (paper Section V, Algorithm 2). A directed edge (u_i -> u_j) means
/// the candidate set of u_j depends on the chosen mapping of u_i.
/// Vertices are pattern vertices (not positions).
class DependencyDag {
 public:
  /// Algorithm 2 (BuildDAG). `order` is a permutation of the pattern's
  /// vertices. For edge-induced and homomorphic matching, H's edges are
  /// exactly the pattern edges oriented earlier -> later. For
  /// vertex-induced matching, negation dependencies are added between
  /// non-adjacent pairs, except where every "(x,y)*-cluster" is empty
  /// (lines 7-8) — clustering is what prunes those.
  static DependencyDag Build(const Graph& pattern,
                             std::span<const VertexId> order,
                             MatchVariant variant, const Ccsr* gc);

  uint32_t NumVertices() const {
    return static_cast<uint32_t>(children_.size());
  }
  size_t NumEdges() const { return num_edges_; }

  const std::vector<VertexId>& Children(VertexId u) const {
    return children_[u];
  }
  const std::vector<VertexId>& Parents(VertexId u) const {
    return parents_[u];
  }

  /// Vertices with no incoming dependency edge.
  std::vector<VertexId> Roots() const;

  /// True if v is reachable from u following dependency edges (BFS).
  bool HasPath(VertexId u, VertexId v) const;

  /// True if u and v are mutually unreachable — the SCE condition of
  /// Definition 1.
  bool Independent(VertexId u, VertexId v) const {
    return !HasPath(u, v) && !HasPath(v, u);
  }

 private:
  size_t num_edges_ = 0;
  std::vector<std::vector<VertexId>> children_;
  std::vector<std::vector<VertexId>> parents_;
};

/// Fig. 12 statistics: how many pattern vertices exhibit SCE under the
/// given order, and how many of those owe it to cluster pruning.
struct SceStats {
  uint32_t pattern_vertices = 0;
  /// Vertices u_j with at least one earlier vertex u_i independent of
  /// them in H.
  uint32_t sce_vertices = 0;
  /// SCE vertices whose every independent earlier partner would carry a
  /// dependency if clusters had not pruned it (vertex-induced), or whose
  /// independence additionally satisfies the injectivity condition via
  /// label disjointness (edge-induced; see EXPERIMENTS.md).
  uint32_t cluster_attributed = 0;
};

SceStats ComputeSceStats(const Graph& pattern,
                         std::span<const VertexId> order,
                         MatchVariant variant, const DependencyDag& dag);

}  // namespace csce

#endif  // CSCE_PLAN_DAG_H_
