#ifndef CSCE_PLAN_DESCENDANTS_H_
#define CSCE_PLAN_DESCENDANTS_H_

#include <cstdint>
#include <vector>

#include "plan/dag.h"

namespace csce {

/// Algorithm 3 (ComputeDescendant): for every DAG vertex, the number of
/// distinct direct and indirect descendants. Vertices can share
/// descendants, so this unions descendant *sets* bottom-up (dynamic
/// programming over a reverse topological order) rather than summing
/// child counts.
std::vector<uint32_t> ComputeDescendantSizes(const DependencyDag& dag);

}  // namespace csce

#endif  // CSCE_PLAN_DESCENDANTS_H_
