#include "plan/symmetry.h"

#include <algorithm>

#include "graph/isomorphism.h"
#include "util/timer.h"

namespace csce {

SymmetryInfo ComputeSymmetryBreaking(const Graph& pattern) {
  WallTimer timer;
  SymmetryInfo info;
  std::vector<std::vector<VertexId>> autos = EnumerateAutomorphisms(pattern);
  info.automorphism_count = autos.size();

  // Stabilizer-chain restriction generation: repeatedly pick the
  // smallest vertex v moved by the remaining automorphisms, emit
  // f(v) < f(g(v)) for every image, then keep only the stabilizer of v.
  // Orbit-stabilizer guarantees each automorphism class keeps exactly
  // one representative satisfying all restrictions.
  std::vector<std::vector<VertexId>> group = std::move(autos);
  const uint32_t n = pattern.NumVertices();
  while (group.size() > 1) {
    VertexId pivot = kInvalidVertex;
    for (VertexId v = 0; v < n && pivot == kInvalidVertex; ++v) {
      for (const auto& g : group) {
        if (g[v] != v) {
          pivot = v;
          break;
        }
      }
    }
    if (pivot == kInvalidVertex) break;  // only the identity remains
    std::vector<VertexId> orbit;
    for (const auto& g : group) {
      if (g[pivot] != pivot) orbit.push_back(g[pivot]);
    }
    std::sort(orbit.begin(), orbit.end());
    orbit.erase(std::unique(orbit.begin(), orbit.end()), orbit.end());
    for (VertexId img : orbit) {
      info.restrictions.emplace_back(pivot, img);
    }
    // Stabilizer of the pivot.
    std::vector<std::vector<VertexId>> stabilizer;
    for (auto& g : group) {
      if (g[pivot] == pivot) stabilizer.push_back(std::move(g));
    }
    group = std::move(stabilizer);
  }
  info.generation_seconds = timer.Seconds();
  return info;
}

}  // namespace csce
