#include "plan/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "plan/planner.h"
#include "util/logging.h"

namespace csce {
namespace {

constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();
// Selectivity applied per backward edge beyond the tightest one.
constexpr double kExtraEdgeSelectivity = 0.2;

struct ClusterStats {
  double size = 0;               // edges in the cluster
  double distinct_sources = 1;   // non-empty out rows
  double distinct_targets = 1;   // non-empty in rows
};

ClusterStats StatsFor(const Ccsr& gc, const ClusterId& id) {
  ClusterStats s;
  const CompressedCluster* c = gc.Find(id);
  if (c == nullptr) return s;  // empty cluster: size 0
  s.size = static_cast<double>(c->num_edges);
  s.distinct_sources =
      std::max<double>(1, static_cast<double>(c->out_rows.num_runs()) - 1);
  if (id.directed) {
    s.distinct_targets =
        std::max<double>(1, static_cast<double>(c->in_rows.num_runs()) - 1);
  } else {
    // Undirected clusters store both orientations in one CSR.
    s.distinct_targets = s.distinct_sources;
  }
  return s;
}

// Expected number of cluster-neighbors of a mapped vertex when
// extending through the pattern arc (w -> u if `incoming` is false,
// u -> w otherwise, matching EdgeConstraint semantics).
double Fanout(const Graph& pattern, const Ccsr& gc, VertexId u, VertexId w,
              Label elabel, bool arc_from_w) {
  ClusterId id;
  if (!pattern.directed()) {
    id = ClusterId::Undirected(pattern.VertexLabel(u), pattern.VertexLabel(w),
                               elabel);
    ClusterStats s = StatsFor(gc, id);
    if (s.size == 0) return 0;
    // 2 * edges arcs over distinct endpoints.
    return 2.0 * s.size / s.distinct_sources;
  }
  if (arc_from_w) {
    id = ClusterId::Directed(pattern.VertexLabel(w), pattern.VertexLabel(u),
                             elabel);
    ClusterStats s = StatsFor(gc, id);
    return s.size == 0 ? 0 : s.size / s.distinct_sources;
  }
  id = ClusterId::Directed(pattern.VertexLabel(u), pattern.VertexLabel(w),
                           elabel);
  ClusterStats s = StatsFor(gc, id);
  return s.size == 0 ? 0 : s.size / s.distinct_targets;
}

// Seed cardinality of starting at pattern vertex u: the distinct
// endpoint count of its smallest incident cluster (or the label
// frequency for isolated vertices).
double SeedCardinality(const Graph& pattern, const Ccsr& gc, VertexId u) {
  double best = kInfiniteCost;
  for (const Neighbor& n : pattern.OutNeighbors(u)) {
    if (!pattern.directed()) {
      ClusterStats s = StatsFor(
          gc, ClusterId::Undirected(pattern.VertexLabel(u),
                                    pattern.VertexLabel(n.v), n.elabel));
      best = std::min(best, s.size == 0 ? 0.0 : s.distinct_sources);
    } else {
      ClusterStats s = StatsFor(
          gc, ClusterId::Directed(pattern.VertexLabel(u),
                                  pattern.VertexLabel(n.v), n.elabel));
      best = std::min(best, s.size == 0 ? 0.0 : s.distinct_sources);
    }
  }
  if (pattern.directed()) {
    for (const Neighbor& n : pattern.InNeighbors(u)) {
      ClusterStats s = StatsFor(
          gc, ClusterId::Directed(pattern.VertexLabel(n.v),
                                  pattern.VertexLabel(u), n.elabel));
      best = std::min(best, s.size == 0 ? 0.0 : s.distinct_targets);
    }
  }
  if (best == kInfiniteCost) {
    best = gc.LabelFrequency(pattern.VertexLabel(u));  // isolated vertex
  }
  return best;
}

// Expected extensions when appending u to a prefix whose membership is
// given by `chosen`: the tightest backward fan-out discounted per
// additional backward edge. Returns -1 if u has no backward edge.
double ExtensionFactor(const Graph& pattern, const Ccsr& gc, VertexId u,
                       const std::vector<bool>& chosen) {
  double best_fan = kInfiniteCost;
  int backward_edges = 0;
  for (const Neighbor& n : pattern.OutNeighbors(u)) {
    if (!chosen[n.v]) continue;
    ++backward_edges;
    best_fan = std::min(
        best_fan,
        Fanout(pattern, gc, u, n.v, n.elabel, !pattern.directed()));
  }
  if (pattern.directed()) {
    for (const Neighbor& n : pattern.InNeighbors(u)) {
      if (!chosen[n.v]) continue;
      ++backward_edges;
      best_fan = std::min(
          best_fan, Fanout(pattern, gc, u, n.v, n.elabel, true));
    }
  }
  if (backward_edges == 0) return -1;
  return best_fan * std::pow(kExtraEdgeSelectivity, backward_edges - 1);
}

}  // namespace

double EstimateOrderCost(const Graph& pattern, const Ccsr& gc,
                         std::span<const VertexId> order) {
  CSCE_CHECK(order.size() == pattern.NumVertices());
  if (order.empty()) return 0;
  std::vector<bool> chosen(pattern.NumVertices(), false);
  double card = SeedCardinality(pattern, gc, order[0]);
  double cost = card;
  chosen[order[0]] = true;
  for (size_t j = 1; j < order.size(); ++j) {
    double factor = ExtensionFactor(pattern, gc, order[j], chosen);
    if (factor < 0) {
      // Disconnected extension: Cartesian with its seed candidates.
      factor = SeedCardinality(pattern, gc, order[j]);
    }
    card = std::max(card * factor, 0.0);
    cost += card;
    chosen[order[j]] = true;
  }
  return cost;
}

std::vector<VertexId> CostBasedOrder(const Graph& pattern, const Ccsr& gc,
                                     uint32_t beam_width) {
  const uint32_t n = pattern.NumVertices();
  CSCE_CHECK(beam_width >= 1);
  if (n == 0) return {};

  struct State {
    std::vector<VertexId> order;
    std::vector<bool> chosen;
    double card = 0;
    double cost = 0;
  };

  // Initial beam: the cheapest seed vertices.
  std::vector<State> beam;
  {
    std::vector<std::pair<double, VertexId>> seeds;
    for (VertexId u = 0; u < n; ++u) {
      seeds.emplace_back(SeedCardinality(pattern, gc, u), u);
    }
    std::sort(seeds.begin(), seeds.end());
    for (uint32_t i = 0; i < beam_width && i < seeds.size(); ++i) {
      State s;
      s.order = {seeds[i].second};
      s.chosen.assign(n, false);
      s.chosen[seeds[i].second] = true;
      s.card = seeds[i].first;
      s.cost = s.card;
      beam.push_back(std::move(s));
    }
  }

  for (uint32_t step = 1; step < n; ++step) {
    std::vector<State> next;
    for (const State& s : beam) {
      bool any_connected = false;
      for (VertexId u = 0; u < n; ++u) {
        if (s.chosen[u]) continue;
        double factor = ExtensionFactor(pattern, gc, u, s.chosen);
        if (factor < 0) continue;  // prefer connected extensions
        any_connected = true;
        State t = s;
        t.order.push_back(u);
        t.chosen[u] = true;
        t.card = s.card * factor;
        t.cost = s.cost + t.card;
        next.push_back(std::move(t));
      }
      if (!any_connected) {
        // Disconnected pattern: fall back to the cheapest seed.
        VertexId best = kInvalidVertex;
        double best_seed = kInfiniteCost;
        for (VertexId u = 0; u < n; ++u) {
          if (s.chosen[u]) continue;
          double seed = SeedCardinality(pattern, gc, u);
          if (seed < best_seed) {
            best_seed = seed;
            best = u;
          }
        }
        State t = s;
        t.order.push_back(best);
        t.chosen[best] = true;
        t.card = s.card * std::max(best_seed, 1.0);
        t.cost = s.cost + t.card;
        next.push_back(std::move(t));
      }
    }
    std::sort(next.begin(), next.end(), [](const State& a, const State& b) {
      if (a.cost != b.cost) return a.cost < b.cost;
      return a.order < b.order;  // deterministic tie-break
    });
    if (next.size() > beam_width) next.resize(beam_width);
    beam = std::move(next);
  }
  CSCE_CHECK(!beam.empty());
  return beam[0].order;
}

void ChooseAuxTargets(const Ccsr* data, Plan* plan) {
  for (uint32_t t = 0; t < plan->positions.size(); ++t) {
    PlanPosition& pos = plan->positions[t];
    const size_t k = pos.edges.size();
    if (k == 0) continue;  // seeded position: nothing to project
    const uint32_t d1 = pos.edges.front().pos;
    if (k >= 2) {
      // Multi-edge target: the prefix intersections are hoisted to the
      // dependency depths and shared across the whole subtree between
      // consecutive dependencies, so materializing always pays.
      pos.aux_enabled = true;
      continue;
    }
    if (t - d1 < 2) continue;  // single edge, no empty-cut window
    // Single-edge target with a gap: the projection is just the
    // dependency's row, known t-d1 levels early. Worth carrying only
    // if that row can be empty — i.e. the cluster leaves some vertices
    // of the dependency's label row-less on the relevant side.
    if (data != nullptr) {
      const EdgeConstraint& e = pos.edges.front();
      const CompressedCluster* c = data->Find(e.cluster);
      const Label dep_label = plan->positions[d1].label;
      if (c != nullptr) {
        const CompressedRowIndex& rows =
            e.incoming && e.cluster.directed ? c->in_rows : c->out_rows;
        // num_runs - 1 approximates the non-empty row count (each run
        // boundary is one row-offset change) — the same statistic the
        // cardinality model uses for distinct endpoints.
        const uint64_t rows_with_arcs =
            rows.num_runs() == 0 ? 0 : rows.num_runs() - 1;
        if (rows_with_arcs >= data->LabelFrequency(dep_label)) continue;
      }
    }
    pos.aux_enabled = true;
  }
}

}  // namespace csce
