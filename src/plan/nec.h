#ifndef CSCE_PLAN_NEC_H_
#define CSCE_PLAN_NEC_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace csce {

/// Neighborhood Equivalence Classes (TurboISO): pattern vertices u, u'
/// are equivalent iff they share a vertex label and identical
/// neighborhoods — excluding each other — with matching edge labels and
/// directions. Equivalent vertices always have identical base candidate
/// sets, enabling candidate-cache sharing in the executor.
///
/// Returns vertex -> class id; class ids are dense, starting at 0, and
/// ordered by the class's smallest vertex.
std::vector<uint32_t> ComputeNecClasses(const Graph& pattern);

}  // namespace csce

#endif  // CSCE_PLAN_NEC_H_
