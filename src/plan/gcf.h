#ifndef CSCE_PLAN_GCF_H_
#define CSCE_PLAN_GCF_H_

#include <vector>

#include "ccsr/ccsr.h"
#include "graph/graph.h"

namespace csce {

struct GcfOptions {
  /// Break RI's frequent ties using CCSR cluster sizes (paper Section
  /// VI, Eq. 2). With false (or without data statistics) this is plain
  /// RI, which ignores the data graph entirely.
  bool use_cluster_tiebreak = true;
};

/// Greatest-Constraint-First matching order (RI's three rules, paper
/// Eq. 1) with CCSR-based tie-breaking (Eq. 2). `gc` may be nullptr, in
/// which case ties fall through to the lowest vertex id
/// (deterministically), exactly like data-oblivious RI.
std::vector<VertexId> GreatestConstraintFirstOrder(const Graph& pattern,
                                                   const Ccsr* gc,
                                                   const GcfOptions& options);

}  // namespace csce

#endif  // CSCE_PLAN_GCF_H_
