#include "plan/ldsf.h"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "util/logging.h"

namespace csce {
namespace {

constexpr uint64_t kNoCluster = std::numeric_limits<uint64_t>::max();

uint64_t MinClusterToOrdered(const Graph& p, const Ccsr* gc, VertexId x,
                             const std::vector<bool>& ordered) {
  if (gc == nullptr) return kNoCluster;
  uint64_t best = kNoCluster;
  auto consider = [&](VertexId src, VertexId dst, VertexId other) {
    if (!ordered[other]) return;
    for (const Neighbor& n : p.OutNeighbors(src)) {
      if (n.v != dst) continue;
      ClusterId id = ClusterId::ForPatternEdge(p, Edge{src, dst, n.elabel});
      best = std::min(best, gc->ClusterSize(id));
    }
  };
  for (const Neighbor& n : p.OutNeighbors(x)) consider(x, n.v, n.v);
  if (p.directed()) {
    for (const Neighbor& n : p.InNeighbors(x)) consider(n.v, x, n.v);
  }
  return best;
}

uint64_t LabelFrequency(const Graph& p, const Ccsr* gc, VertexId x) {
  Label l = p.VertexLabel(x);
  // Prefer the data-graph frequency; the pattern's own frequency is the
  // data-oblivious fallback.
  return gc != nullptr ? gc->LabelFrequency(l) : p.LabelFrequency(l);
}

}  // namespace

std::vector<VertexId> LargestDescendantFirstOrder(
    const DependencyDag& dag, const Graph& pattern, const Ccsr* gc,
    std::span<const uint32_t> descendant_sizes) {
  const uint32_t n = dag.NumVertices();
  CSCE_CHECK(descendant_sizes.size() == n);
  std::vector<VertexId> order;
  order.reserve(n);

  std::vector<uint32_t> pending_parents(n, 0);
  std::vector<bool> ready(n, false);
  std::vector<bool> ordered(n, false);
  for (uint32_t v = 0; v < n; ++v) {
    pending_parents[v] = static_cast<uint32_t>(dag.Parents(v).size());
    if (pending_parents[v] == 0) ready[v] = true;
  }

  // The ready set is tiny (<= pattern size) so a linear scan with the
  // composite rank beats maintaining a priority queue whose keys (the
  // cluster tie-break) change as vertices get ordered.
  //
  // Rank: (1) greatest constraint count — a ready vertex is anchored by
  // all of its DAG parents, and matching the most-constrained vertex
  // first prunes fastest (GCF's principle carries over to the
  // reordering); (2) largest descendant size, the LDSF tie-break that
  // maximizes candidate reuse; (3) smallest cluster; (4) rarest label.
  for (uint32_t step = 0; step < n; ++step) {
    VertexId best = kInvalidVertex;
    uint32_t best_parents = 0;
    uint32_t best_desc = 0;
    uint64_t best_cluster = kNoCluster;
    uint64_t best_freq = kNoCluster;
    for (VertexId v = 0; v < n; ++v) {
      if (!ready[v] || ordered[v]) continue;
      uint32_t parents = static_cast<uint32_t>(dag.Parents(v).size());
      uint32_t desc = descendant_sizes[v];
      uint64_t cluster = 0;
      uint64_t freq = 0;
      bool need_ties = best != kInvalidVertex && parents == best_parents &&
                       desc == best_desc;
      if (best == kInvalidVertex || parents > best_parents ||
          (parents == best_parents && desc > best_desc) || need_ties) {
        cluster = MinClusterToOrdered(pattern, gc, v, ordered);
        freq = LabelFrequency(pattern, gc, v);
      }
      bool better;
      if (best == kInvalidVertex) {
        better = true;
      } else if (parents != best_parents) {
        better = parents > best_parents;
      } else if (desc != best_desc) {
        better = desc > best_desc;
      } else if (cluster != best_cluster) {
        better = cluster < best_cluster;
      } else if (freq != best_freq) {
        better = freq < best_freq;
      } else {
        better = v < best;
      }
      if (better) {
        best = v;
        best_parents = parents;
        best_desc = desc;
        best_cluster = cluster;
        best_freq = freq;
      }
    }
    CSCE_CHECK(best != kInvalidVertex);
    order.push_back(best);
    ordered[best] = true;
    ready[best] = false;
    for (VertexId c : dag.Children(best)) {
      if (--pending_parents[c] == 0) ready[c] = true;
    }
  }
  return order;
}

}  // namespace csce
