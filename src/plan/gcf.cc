#include "plan/gcf.h"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "util/logging.h"

namespace csce {
namespace {

constexpr uint64_t kNoCluster = std::numeric_limits<uint64_t>::max();

// Direction-blind adjacency of the pattern, deduplicated.
std::vector<std::vector<VertexId>> UndirectedAdjacency(const Graph& p) {
  std::vector<std::vector<VertexId>> adj(p.NumVertices());
  for (VertexId v = 0; v < p.NumVertices(); ++v) {
    for (const Neighbor& n : p.OutNeighbors(v)) adj[v].push_back(n.v);
    if (p.directed()) {
      for (const Neighbor& n : p.InNeighbors(v)) adj[v].push_back(n.v);
    }
    std::sort(adj[v].begin(), adj[v].end());
    adj[v].erase(std::unique(adj[v].begin(), adj[v].end()), adj[v].end());
  }
  return adj;
}

// Smallest data cluster among all pattern arcs between a and b
// (the paper's |I_C(u_a, u_b)|); kNoCluster if not adjacent.
uint64_t MinClusterSizeBetween(const Graph& p, const Ccsr* gc, VertexId a,
                               VertexId b) {
  if (gc == nullptr) return kNoCluster;
  uint64_t best = kNoCluster;
  auto consider = [&](VertexId src, VertexId dst) {
    for (const Neighbor& n : p.OutNeighbors(src)) {
      if (n.v != dst) continue;
      ClusterId id = ClusterId::ForPatternEdge(p, Edge{src, dst, n.elabel});
      best = std::min(best, gc->ClusterSize(id));
    }
  };
  consider(a, b);
  if (p.directed()) consider(b, a);
  return best;
}

uint64_t MinIncidentClusterSize(const Graph& p, const Ccsr* gc, VertexId x,
                                const std::vector<VertexId>& neighbors) {
  uint64_t best = kNoCluster;
  for (VertexId n : neighbors) {
    best = std::min(best, MinClusterSizeBetween(p, gc, x, n));
  }
  return best;
}

// Ranking key for the next-vertex choice: maximize (t1, t2, t3), then
// minimize (w1, w2, w3, vertex id). Implemented as lexicographic
// comparison on a normalized tuple.
struct Rank {
  uint32_t t1 = 0;
  uint32_t t2 = 0;
  uint32_t t3 = 0;
  uint64_t w1 = kNoCluster;
  uint64_t w2 = kNoCluster;
  uint64_t w3 = kNoCluster;
  VertexId vertex = kInvalidVertex;

  bool BetterThan(const Rank& o) const {
    if (t1 != o.t1) return t1 > o.t1;
    if (t2 != o.t2) return t2 > o.t2;
    if (t3 != o.t3) return t3 > o.t3;
    if (w1 != o.w1) return w1 < o.w1;
    if (w2 != o.w2) return w2 < o.w2;
    if (w3 != o.w3) return w3 < o.w3;
    return vertex < o.vertex;
  }
};

}  // namespace

std::vector<VertexId> GreatestConstraintFirstOrder(const Graph& pattern,
                                                   const Ccsr* gc,
                                                   const GcfOptions& options) {
  const uint32_t n = pattern.NumVertices();
  std::vector<VertexId> order;
  if (n == 0) return order;
  order.reserve(n);

  const Ccsr* stats = options.use_cluster_tiebreak ? gc : nullptr;
  std::vector<std::vector<VertexId>> adj = UndirectedAdjacency(pattern);
  std::vector<bool> matched(n, false);

  // First vertex: highest degree; ties by smallest incident cluster.
  {
    VertexId best = 0;
    uint64_t best_cluster = kNoCluster;
    uint32_t best_degree = 0;
    for (VertexId v = 0; v < n; ++v) {
      uint32_t deg = static_cast<uint32_t>(adj[v].size());
      uint64_t cluster = stats == nullptr
                             ? kNoCluster
                             : MinIncidentClusterSize(pattern, stats, v,
                                                      adj[v]);
      bool better = deg > best_degree ||
                    (deg == best_degree && cluster < best_cluster);
      if (v == 0 || better) {
        best = v;
        best_degree = deg;
        best_cluster = cluster;
      }
    }
    order.push_back(best);
    matched[best] = true;
  }

  for (uint32_t step = 1; step < n; ++step) {
    Rank best;
    for (VertexId x = 0; x < n; ++x) {
      if (matched[x]) continue;
      Rank r;
      r.vertex = x;
      for (VertexId j : adj[x]) {
        if (matched[j]) {
          // Rule 1: edges to already-matched vertices.
          ++r.t1;
          if (stats != nullptr) {
            r.w1 = std::min(r.w1, MinClusterSizeBetween(pattern, stats, j, x));
          }
          continue;
        }
        // j is an unmatched neighbor of x: rule 2 if it touches the
        // matched prefix, rule 3 otherwise.
        bool touches_matched = false;
        for (VertexId k : adj[j]) {
          if (matched[k]) {
            touches_matched = true;
            break;
          }
        }
        if (touches_matched) {
          ++r.t2;
          if (stats != nullptr) {
            r.w2 = std::min(r.w2, MinClusterSizeBetween(pattern, stats, x, j));
          }
        } else {
          ++r.t3;
          if (stats != nullptr) {
            r.w3 = std::min(r.w3, MinClusterSizeBetween(pattern, stats, x, j));
          }
        }
      }
      if (best.vertex == kInvalidVertex || r.BetterThan(best)) best = r;
    }
    CSCE_CHECK(best.vertex != kInvalidVertex);
    order.push_back(best.vertex);
    matched[best.vertex] = true;
  }
  return order;
}

}  // namespace csce
