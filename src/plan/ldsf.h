#ifndef CSCE_PLAN_LDSF_H_
#define CSCE_PLAN_LDSF_H_

#include <span>
#include <vector>

#include "ccsr/ccsr.h"
#include "graph/graph.h"
#include "plan/dag.h"

namespace csce {

/// Algorithm 4 (GeneratePlan): Largest-Descendant-Size-First topological
/// order of the dependency DAG. Among ready vertices it prefers, in
/// order: largest descendant size; smallest cluster among edges to
/// already-ordered pattern neighbors; lowest data-graph label frequency;
/// lowest vertex id (determinism). Unlike Kahn's algorithm, which picks
/// an arbitrary topological order, this one maximizes candidate reuse.
///
/// `gc` may be nullptr (skips the data-dependent tie-breaks).
std::vector<VertexId> LargestDescendantFirstOrder(
    const DependencyDag& dag, const Graph& pattern, const Ccsr* gc,
    std::span<const uint32_t> descendant_sizes);

}  // namespace csce

#endif  // CSCE_PLAN_LDSF_H_
