#ifndef CSCE_PLAN_VALIDATE_H_
#define CSCE_PLAN_VALIDATE_H_

#include <cstdint>
#include <span>

#include "ccsr/ccsr.h"
#include "graph/graph.h"
#include "graph/variant.h"
#include "plan/dag.h"
#include "plan/planner.h"
#include "util/status.h"

namespace csce {

/// Structural validation of a dependency DAG: children/parents lists
/// mirror each other exactly, are sorted and duplicate-free, the edge
/// count matches, and the graph is acyclic.
Status ValidateDag(const DependencyDag& dag);

/// Checks that `order` is a permutation of the DAG's vertices and a
/// topological order of it: every dependency edge points from an
/// earlier to a later position. This is the contract LDSF must satisfy
/// (Algorithm 4 refines a topological order, it never breaks one).
Status ValidateTopologicalOrder(const DependencyDag& dag,
                                std::span<const VertexId> order);

/// Checks that same-class vertex pairs are true neighborhood
/// equivalences: swapping the two vertices is an automorphism of the
/// labeled pattern (the ground truth that makes NEC candidate-cache
/// sharing sound). Also enforces the contract of ComputeNecClasses:
/// dense class ids ordered by the class's smallest vertex. Soundness
/// only — a finer-than-necessary partition passes.
Status ValidateNecClasses(const Graph& pattern,
                          std::span<const uint32_t> classes);

/// Deep validation of a compiled plan against its pattern and data
/// index: the order is a permutation; per-position labels, edge
/// constraints (recompiled from the pattern and compared), negation
/// constraints (vertex-induced only, star-pruned against `data`),
/// dependency lists, degree filters, seed clusters, and NEC cache
/// aliases are all consistent; and the order is a topological order of
/// the dependency DAG rebuilt for it. `data` must be the index the
/// plan was made for (it prunes vacuous negation dependencies).
Status ValidatePlan(const Ccsr* data, const Graph& pattern, const Plan& plan);

}  // namespace csce

#endif  // CSCE_PLAN_VALIDATE_H_
