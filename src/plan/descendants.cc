#include "plan/descendants.h"

#include <queue>

#include "util/bitset.h"
#include "util/logging.h"

namespace csce {

std::vector<uint32_t> ComputeDescendantSizes(const DependencyDag& dag) {
  const uint32_t n = dag.NumVertices();
  std::vector<uint32_t> sizes(n, 0);
  if (n == 0) return sizes;

  // Kahn peeling from childless vertices, mirroring Algorithm 3: a
  // vertex is processed once all of its children are done.
  std::vector<uint32_t> pending_children(n, 0);
  std::queue<VertexId> ready;
  for (uint32_t v = 0; v < n; ++v) {
    pending_children[v] = static_cast<uint32_t>(dag.Children(v).size());
    if (pending_children[v] == 0) ready.push(v);
  }

  std::vector<DynamicBitset> descendants(n, DynamicBitset(n));
  uint32_t processed = 0;
  while (!ready.empty()) {
    VertexId v = ready.front();
    ready.pop();
    ++processed;
    for (VertexId c : dag.Children(v)) {
      descendants[v].Set(c);
      descendants[v].OrWith(descendants[c]);
    }
    sizes[v] = static_cast<uint32_t>(descendants[v].Count());
    for (VertexId p : dag.Parents(v)) {
      if (--pending_children[p] == 0) ready.push(p);
    }
  }
  CSCE_CHECK(processed == n);  // H must be acyclic
  return sizes;
}

}  // namespace csce
