#ifndef CSCE_OBS_METRICS_H_
#define CSCE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace csce {
namespace obs {

/// Aggregated state of one histogram metric. Values are bucketed by
/// power of two: bucket i counts values in (2^(i-1), 2^i] (bucket 0 is
/// values <= 1), which is coarse but cheap and enough to tell "SCE
/// candidate sets are tiny" from "candidate sets explode at depth 3".
struct HistogramData {
  static constexpr size_t kBuckets = 64;
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // meaningful only when count > 0
  double max = 0.0;
  std::array<uint64_t, kBuckets> buckets{};

  double Mean() const { return count == 0 ? 0.0 : sum / count; }

  /// The bucket a value lands in; shared by every recording path so
  /// local accumulation and direct Record calls agree exactly.
  static size_t BucketOf(double value);
  /// Branch-light integer fast path (sizes, counts): same bucket as
  /// BucketOf(double(n)) for every n.
  static size_t BucketOfCount(uint64_t n) {
    if (n <= 1) return 0;
    size_t b = static_cast<size_t>(64 - __builtin_clzll(n - 1));
    return b < kBuckets ? b : kBuckets - 1;
  }
};

/// Unsynchronized histogram accumulator for hot paths that must not
/// touch the (thread-local, but still indirected) registry shards per
/// sample. Code records into a LocalHistogram it owns — e.g. one
/// embedded in ExecStats — and flushes once via Histogram::Merge, so
/// the aggregate is sample-exact while the hot path costs an array
/// bump. Plain struct: copy/merge freely, zero-initialized.
struct LocalHistogram {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // meaningful only when count > 0
  double max = 0.0;
  std::array<uint64_t, HistogramData::kBuckets> buckets{};

  void Record(double value) {
    if (count == 0 || value < min) min = value;
    if (count == 0 || value > max) max = value;
    ++count;
    sum += value;
    ++buckets[HistogramData::BucketOf(value)];
  }

  /// Integer fast path: no log2 on the hot path.
  void RecordCount(uint64_t n) {
    double value = static_cast<double>(n);
    if (count == 0 || value < min) min = value;
    if (count == 0 || value > max) max = value;
    ++count;
    sum += value;
    ++buckets[HistogramData::BucketOfCount(n)];
  }

  void Merge(const LocalHistogram& other) {
    if (other.count == 0) return;
    if (count == 0 || other.min < min) min = other.min;
    if (count == 0 || other.max > max) max = other.max;
    count += other.count;
    sum += other.sum;
    for (size_t b = 0; b < buckets.size(); ++b) buckets[b] += other.buckets[b];
  }
};

/// One aggregated view of a registry, taken under the registry lock but
/// summed from per-thread shards without ever having blocked a writer.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  /// The machine-readable document: {"counters": {...}, "gauges":
  /// {...}, "histograms": {name: {count, sum, mean, min, max}}}.
  /// Histogram buckets are elided unless `with_buckets`.
  JsonValue ToJson(bool with_buckets = false) const;
};

class MetricRegistry;

/// Cheap copyable handle to a counter. `Add` is a thread-local bump
/// (no lock, no shared cache line): each thread owns a shard of cells
/// and only the aggregating `Snapshot()` reads across threads, with
/// relaxed atomics so the hot path costs an indexed add.
class Counter {
 public:
  Counter() = default;
  void Add(uint64_t n = 1) const;
  void Increment() const { Add(1); }

 private:
  friend class MetricRegistry;
  Counter(MetricRegistry* registry, uint32_t slot)
      : registry_(registry), slot_(slot) {}
  MetricRegistry* registry_ = nullptr;
  uint32_t slot_ = 0;
};

/// Last-write-wins instantaneous value. Gauges are set rarely (sizes,
/// configuration), so they are a single shared atomic, not sharded.
class Gauge {
 public:
  Gauge() = default;
  void Set(double value) const;
  /// Raise to `value` if it exceeds the current value (peak tracking).
  void SetMax(double value) const;

 private:
  friend class MetricRegistry;
  Gauge(MetricRegistry* registry, uint32_t slot)
      : registry_(registry), slot_(slot) {}
  MetricRegistry* registry_ = nullptr;
  uint32_t slot_ = 0;
};

/// Sharded histogram handle; `Record` is a thread-local bucket bump
/// plus sum/min/max updates, same cost class as Counter::Add.
class Histogram {
 public:
  Histogram() = default;
  void Record(double value) const;
  /// Adds a locally accumulated batch of samples in one shard update —
  /// the flush half of the LocalHistogram contract (see above).
  void Merge(const LocalHistogram& local) const;

 private:
  friend class MetricRegistry;
  Histogram(MetricRegistry* registry, uint32_t slot)
      : registry_(registry), slot_(slot) {}
  MetricRegistry* registry_ = nullptr;
  uint32_t slot_ = 0;
};

/// A namespace of named metrics with thread-local sharded storage.
///
/// Registration (`counter("engine.embeddings")`) is idempotent and
/// mutex-protected; handles are then valid for the registry's lifetime
/// and safe to use concurrently from any number of threads. Each thread
/// lazily gets one shard per registry — flat arrays indexed by metric
/// slot — that survives thread exit (shards are owned by the registry),
/// so counts from finished worker threads are never lost.
///
/// `Global()` is the process-wide registry every subsystem reports
/// into; tests that need exact values call `ResetForTesting()` first.
class MetricRegistry {
 public:
  /// Fixed shard capacities; registering beyond them aborts. Generous
  /// for a system that names its metrics statically (~40 today).
  static constexpr uint32_t kMaxCounters = 256;
  static constexpr uint32_t kMaxGauges = 64;
  static constexpr uint32_t kMaxHistograms = 64;

  MetricRegistry();
  ~MetricRegistry();

  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  static MetricRegistry& Global();

  Counter counter(std::string_view name) CSCE_EXCLUDES(mu_);
  Gauge gauge(std::string_view name) CSCE_EXCLUDES(mu_);
  Histogram histogram(std::string_view name) CSCE_EXCLUDES(mu_);

  /// Sums every thread's shard. Concurrent writers are not blocked;
  /// the snapshot is consistent per-cell (relaxed reads), which is the
  /// right contract for monotone counters.
  MetricsSnapshot Snapshot() const CSCE_EXCLUDES(mu_);

  /// Zeroes every cell of every shard and every gauge. Metric
  /// registrations (names and handles) survive. Deterministic-counter
  /// tests call this between runs; concurrent use with active writers
  /// is allowed but the subsequent snapshot is then unspecified.
  void ResetForTesting() CSCE_EXCLUDES(mu_);

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

  /// Sharded histogram cells. The owning thread is the only writer
  /// (plain relaxed stores); atomics exist so the aggregator may read
  /// concurrently.
  struct HistogramCells {
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};
    std::atomic<double> max{0.0};
    std::array<std::atomic<uint64_t>, HistogramData::kBuckets> buckets{};
  };

  /// One thread's private slice of the registry.
  struct Shard {
    std::array<std::atomic<uint64_t>, kMaxCounters> counters{};
    std::array<HistogramCells, kMaxHistograms> histograms{};
  };

  uint32_t Register(std::string_view name, Kind kind) CSCE_EXCLUDES(mu_);
  Shard* ShardForThisThread() CSCE_EXCLUDES(mu_);

  /// Const after construction (process-unique, guards stale TLS
  /// entries).
  const uint64_t epoch_ CSCE_NOT_GUARDED;

  mutable Mutex mu_;
  // Name, kind and slot of every registered metric, in slot order per
  // kind (snapshot iterates this).
  struct MetricInfo {
    std::string name;
    Kind kind;
    uint32_t slot;
  };
  std::vector<MetricInfo> metrics_ CSCE_GUARDED_BY(mu_);
  std::map<std::string, uint32_t, std::less<>> by_name_
      CSCE_GUARDED_BY(mu_);  // -> metrics_ index
  /// The vector (growth) is guarded; the pointed-to Shards are each
  /// written lock-free by their owning thread (atomic cells — see
  /// ShardForThisThread), which the analysis cannot express per-element.
  std::vector<std::unique_ptr<Shard>> shards_ CSCE_GUARDED_BY(mu_);
  uint32_t next_counter_ CSCE_GUARDED_BY(mu_) = 0;
  uint32_t next_gauge_ CSCE_GUARDED_BY(mu_) = 0;
  uint32_t next_histogram_ CSCE_GUARDED_BY(mu_) = 0;
  /// Atomic cells written directly by Gauge handles; no lock involved.
  std::array<std::atomic<double>, kMaxGauges> gauge_values_
      CSCE_NOT_GUARDED{};
};

/// Writes `registry`'s snapshot as the csce.metrics.v1 document:
/// {"schema": "csce.metrics.v1", "metrics": {"counters": ..., "gauges":
/// ..., "histograms": ...}}. The file the tools' --metrics-json flag
/// produces and tests/trace_schema_test.cc validates.
Status WriteMetricsFile(const MetricRegistry& registry,
                        const std::string& path, bool with_buckets = true);

/// Merges several csce.metrics.v1 documents (serialized JSON) into one:
/// counters sum, gauges keep the max, histograms merge count/sum/min/
/// max and their sparse log2 buckets, with the mean recomputed from the
/// merged totals. The sharded coordinator uses this to fold per-worker-
/// process registries into the single artifact --metrics-json promises.
/// Documents must carry the csce.metrics.v1 schema tag; metrics missing
/// from some documents merge as if absent there (zero contribution).
Status MergeMetricsDocuments(const std::vector<std::string>& docs,
                             JsonValue* out);

/// Writes an already-built document the way WriteMetricsFile would.
Status WriteMetricsDocument(const JsonValue& doc, const std::string& path);

}  // namespace obs
}  // namespace csce

#endif  // CSCE_OBS_METRICS_H_
