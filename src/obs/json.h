#ifndef CSCE_OBS_JSON_H_
#define CSCE_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace csce {
namespace obs {

/// A small owning JSON document tree. Every machine-readable artifact
/// the observability layer emits (metrics snapshots, Chrome trace
/// files, BENCH_*.json) is built as a JsonValue and serialized through
/// one writer, so the emitters cannot produce invalid JSON by
/// construction — and the schema tests parse the output back through
/// the same type to prove it.
///
/// Numbers are stored as one of int64/uint64/double; `Dump` renders
/// integers without a decimal point and doubles with enough precision
/// to round-trip. Object keys are kept in insertion order so emitted
/// documents are stable across runs (a requirement for golden tests).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kUint, kDouble, kString, kArray,
                    kObject };

  JsonValue() = default;  // null
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}                // NOLINT
  JsonValue(int64_t i) : type_(Type::kInt), int_(i) {}               // NOLINT
  JsonValue(int i) : type_(Type::kInt), int_(i) {}                   // NOLINT
  JsonValue(uint64_t u) : type_(Type::kUint), uint_(u) {}            // NOLINT
  JsonValue(uint32_t u)                                              // NOLINT
      : type_(Type::kUint), uint_(u) {}
  JsonValue(double d) : type_(Type::kDouble), double_(d) {}          // NOLINT
  JsonValue(std::string s)                                           // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}     // NOLINT

  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kUint ||
           type_ == Type::kDouble;
  }

  bool AsBool() const { return bool_; }
  const std::string& AsString() const { return string_; }
  /// Numeric accessors coerce across the three numeric storages.
  double AsDouble() const;
  int64_t AsInt() const;
  uint64_t AsUint() const;

  /// Object access. `Set` inserts or overwrites; `Find` returns nullptr
  /// when the key is absent (or the value is not an object). Allocates
  /// by design (JSON documents are built in reporting paths only, never
  /// during enumeration), hence the hot-path exemption.
  CSCE_ALLOC_OK JsonValue& Set(std::string_view key, JsonValue value);
  const JsonValue* Find(std::string_view key) const;
  bool Has(std::string_view key) const { return Find(key) != nullptr; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Array access.
  JsonValue& Append(JsonValue value);
  const std::vector<JsonValue>& items() const { return items_; }
  size_t size() const {
    return type_ == Type::kArray ? items_.size() : members_.size();
  }

  /// Serializes the tree. `indent` 0 renders one line with ", " / ": "
  /// separators; > 0 pretty-prints with that many spaces per level.
  std::string Dump(int indent = 0) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Strict recursive-descent parse of a complete JSON document (trailing
/// whitespace allowed, trailing garbage rejected). Returns
/// InvalidArgument with a byte offset on malformed input. Used by the
/// schema tests to round-trip every emitted artifact.
Status JsonParse(std::string_view text, JsonValue* out);

}  // namespace obs
}  // namespace csce

#endif  // CSCE_OBS_JSON_H_
