#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace csce {
namespace obs {

double JsonValue::AsDouble() const {
  switch (type_) {
    case Type::kInt: return static_cast<double>(int_);
    case Type::kUint: return static_cast<double>(uint_);
    case Type::kDouble: return double_;
    default: return 0.0;
  }
}

int64_t JsonValue::AsInt() const {
  switch (type_) {
    case Type::kInt: return int_;
    case Type::kUint: return static_cast<int64_t>(uint_);
    case Type::kDouble: return static_cast<int64_t>(double_);
    default: return 0;
  }
}

uint64_t JsonValue::AsUint() const {
  switch (type_) {
    case Type::kInt: return static_cast<uint64_t>(int_);
    case Type::kUint: return uint_;
    case Type::kDouble: return static_cast<uint64_t>(double_);
    default: return 0;
  }
}

JsonValue& JsonValue::Set(std::string_view key, JsonValue value) {
  type_ = Type::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return v;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
  return members_.back().second;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue& JsonValue::Append(JsonValue value) {
  type_ = Type::kArray;
  items_.push_back(std::move(value));
  return items_.back();
}

namespace {

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void DumpInto(const JsonValue& v, int indent, int depth, std::string* out) {
  const bool pretty = indent > 0;
  auto newline = [&](int d) {
    if (pretty) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent) * d, ' ');
    }
  };
  switch (v.type()) {
    case JsonValue::Type::kNull:
      out->append("null");
      break;
    case JsonValue::Type::kBool:
      out->append(v.AsBool() ? "true" : "false");
      break;
    case JsonValue::Type::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(v.AsInt()));
      out->append(buf);
      break;
    }
    case JsonValue::Type::kUint: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(v.AsUint()));
      out->append(buf);
      break;
    }
    case JsonValue::Type::kDouble: {
      double d = v.AsDouble();
      // JSON has no NaN/Inf; observability values are measurements, so
      // clamp to null rather than emit an unparsable token.
      if (!std::isfinite(d)) {
        out->append("null");
        break;
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      // Trim to the shortest representation that round-trips.
      for (int prec = 1; prec < 17; ++prec) {
        char shorter[40];
        std::snprintf(shorter, sizeof(shorter), "%.*g", prec, d);
        double back;
        if (std::sscanf(shorter, "%lf", &back) == 1 && back == d) {
          std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
          break;
        }
      }
      out->append(buf);
      break;
    }
    case JsonValue::Type::kString:
      EscapeInto(v.AsString(), out);
      break;
    case JsonValue::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) out->append(pretty ? "," : ", ");
        first = false;
        newline(depth + 1);
        DumpInto(item, indent, depth + 1, out);
      }
      if (!v.items().empty()) newline(depth);
      out->push_back(']');
      break;
    }
    case JsonValue::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.members()) {
        if (!first) out->append(pretty ? "," : ", ");
        first = false;
        newline(depth + 1);
        EscapeInto(key, out);
        out->append(": ");
        DumpInto(value, indent, depth + 1, out);
      }
      if (!v.members().empty()) newline(depth);
      out->push_back('}');
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Status Parse(JsonValue* out) {
    CSCE_RETURN_IF_ERROR(ParseValue(out, 0));
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing garbage");
    return Status::OK();
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const char* what) const {
    return Status::InvalidArgument("json: " + std::string(what) +
                                   " at offset " + std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': {
        std::string s;
        CSCE_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue(std::move(s));
        return Status::OK();
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          *out = JsonValue(true);
          return Status::OK();
        }
        return Error("bad literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          *out = JsonValue(false);
          return Status::OK();
        }
        return Error("bad literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          *out = JsonValue();
          return Status::OK();
        }
        return Error("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("bad escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (emitters only produce
          // \u00xx control escapes; surrogate pairs are out of scope).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
      // sign consumed below via the full-token scan
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        if (c == '.' || c == 'e' || c == 'E') is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return Error("bad number");
    if (!is_double) {
      if (token[0] == '-') {
        int64_t value = 0;
        auto [p, ec] = std::from_chars(token.begin(), token.end(), value);
        if (ec == std::errc() && p == token.end()) {
          *out = JsonValue(value);
          return Status::OK();
        }
      } else {
        uint64_t value = 0;
        auto [p, ec] = std::from_chars(token.begin(), token.end(), value);
        if (ec == std::errc() && p == token.end()) {
          *out = JsonValue(value);
          return Status::OK();
        }
      }
    }
    double value = 0;
    if (std::sscanf(std::string(token).c_str(), "%lf", &value) != 1) {
      return Error("bad number");
    }
    *out = JsonValue(value);
    return Status::OK();
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    *out = JsonValue::Object();
    SkipSpace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipSpace();
      std::string key;
      CSCE_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      CSCE_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Set(key, std::move(value));
      SkipSpace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    *out = JsonValue::Array();
    SkipSpace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      CSCE_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Append(std::move(value));
      SkipSpace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpInto(*this, indent, 0, &out);
  return out;
}

Status JsonParse(std::string_view text, JsonValue* out) {
  return Parser(text).Parse(out);
}

}  // namespace obs
}  // namespace csce
