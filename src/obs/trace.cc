#include "obs/trace.h"

#include <algorithm>
#include <fstream>

namespace csce {
namespace obs {
namespace {

std::atomic<TraceRecorder*> g_recorder{nullptr};
std::atomic<uint64_t> g_next_trace_epoch{1};

struct TlsTrackEntry {
  const void* recorder;
  uint64_t epoch;
  void* track;
};
thread_local std::vector<TlsTrackEntry> t_tracks;

}  // namespace

TraceRecorder::TraceRecorder()
    : epoch_(g_next_trace_epoch.fetch_add(1, std::memory_order_relaxed)),
      start_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() {
  // Guard against a recorder destroyed while still installed.
  TraceRecorder* expected = this;
  g_recorder.compare_exchange_strong(expected, nullptr,
                                     std::memory_order_acq_rel);
}

TraceRecorder* TraceRecorder::Current() {
  return g_recorder.load(std::memory_order_acquire);
}

void TraceRecorder::Install(TraceRecorder* recorder) {
  g_recorder.store(recorder, std::memory_order_release);
}

double TraceRecorder::NowMicros() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

TraceRecorder::ThreadTrack* TraceRecorder::TrackForThisThread() {
  for (const TlsTrackEntry& entry : t_tracks) {
    if (entry.recorder == this && entry.epoch == epoch_) {
      return static_cast<ThreadTrack*>(entry.track);
    }
  }
  MutexLock lock(mu_);
  auto track = std::make_unique<ThreadTrack>();
  track->tid = static_cast<uint32_t>(tracks_.size());
  tracks_.push_back(std::move(track));
  ThreadTrack* raw = tracks_.back().get();
  t_tracks.push_back(TlsTrackEntry{this, epoch_, raw});
  return raw;
}

void TraceRecorder::RecordSpan(std::string name, std::string category,
                               double ts_us, double dur_us) {
  ThreadTrack* track = TrackForThisThread();
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.tid = track->tid;
  // The track is appended to only by its owning thread; the lock exists
  // for readers (ToChromeJson) that snapshot while threads still run.
  MutexLock lock(mu_);
  track->events.push_back(std::move(event));
}

size_t TraceRecorder::NumEvents() const {
  MutexLock lock(mu_);
  size_t n = 0;
  for (const auto& track : tracks_) n += track->events.size();
  return n;
}

JsonValue TraceRecorder::ToChromeJson() const {
  MutexLock lock(mu_);
  JsonValue events = JsonValue::Array();
  for (const auto& track : tracks_) {
    JsonValue meta = JsonValue::Object();
    meta.Set("name", "thread_name");
    meta.Set("ph", "M");
    meta.Set("pid", 1);
    meta.Set("tid", track->tid);
    JsonValue args = JsonValue::Object();
    args.Set("name", track->tid == 0
                         ? std::string("main")
                         : "worker-" + std::to_string(track->tid));
    meta.Set("args", std::move(args));
    events.Append(std::move(meta));

    // Chrome sorts internally, but ordered output keeps the artifact
    // deterministic for golden tests.
    std::vector<const TraceEvent*> ordered;
    ordered.reserve(track->events.size());
    for (const TraceEvent& e : track->events) ordered.push_back(&e);
    std::sort(ordered.begin(), ordered.end(),
              [](const TraceEvent* a, const TraceEvent* b) {
                if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
                return a->dur_us > b->dur_us;  // parents before children
              });
    for (const TraceEvent* e : ordered) {
      JsonValue event = JsonValue::Object();
      event.Set("name", e->name);
      event.Set("cat", e->category);
      event.Set("ph", "X");
      event.Set("ts", e->ts_us);
      event.Set("dur", e->dur_us);
      event.Set("pid", 1);
      event.Set("tid", e->tid);
      events.Append(std::move(event));
    }
  }
  JsonValue doc = JsonValue::Object();
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", "ms");
  return doc;
}

Status TraceRecorder::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open trace file: " + path);
  out << ToChromeJson().Dump(1) << "\n";
  if (!out) return Status::IOError("cannot write trace file: " + path);
  return Status::OK();
}

Span::Span(const char* name, const char* category)
    : recorder_(TraceRecorder::Current()), name_(name), category_(category) {
  if (recorder_ != nullptr) start_us_ = recorder_->NowMicros();
}

Span::~Span() {
  // Report to the recorder captured at construction so a span that
  // crosses an uninstall still lands in the file it started in.
  if (recorder_ == nullptr || TraceRecorder::Current() != recorder_) return;
  double end_us = recorder_->NowMicros();
  recorder_->RecordSpan(name_, category_, start_us_, end_us - start_us_);
}

}  // namespace obs
}  // namespace csce
